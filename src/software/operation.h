// Operation instances: the run-time execution of a message cascade.
//
// An OperationInstance walks its cascade step by step. Every message expands
// into a *route* of hardware-component stages (origin NIC -> WAN links ->
// destination switch -> tier link -> NIC -> CPU -> storage, with memory-cache
// bypass and occupancy, per Eq. 3.2-3.5 of the thesis). Stage completions
// arrive on whichever worker thread ticked the serving component; branch
// state is only ever touched by the single thread holding that branch's
// current stage, and step joins go through an atomic counter, so execution
// is race-free and — thanks to per-branch sequence numbers — deterministic.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/archive.h"
#include "core/rng.h"
#include "core/types.h"
#include "hardware/topology.h"
#include "software/cascade.h"

namespace gdisim {

/// Resolves cascade endpoints to concrete hardware and builds stage routes.
class OperationContext {
 public:
  OperationContext(Topology& topology, DcId master_dc)
      : topology_(&topology), master_dc_(master_dc) {}

  Topology& topology() { return *topology_; }
  DcId master_dc() const { return master_dc_; }

  /// Sub-tick threshold: a stage whose idle service time is below this
  /// fraction of a tick is accounted-and-skipped instead of enqueued (see
  /// hardware/component.h). 0 disables the optimization entirely.
  double instant_fraction() const { return instant_fraction_; }
  void set_instant_fraction(double f) { instant_fraction_ = f; }

  /// Resolves an endpoint to a data center id. `Owner` falls back to the
  /// MDC when owner_dc is invalid.
  DcId resolve_dc(const Endpoint& ep, DcId origin_dc, DcId owner_dc) const;

  /// The tier serving `role` for traffic resolved to `dc`; if the tier does
  /// not exist there (slave data centers have no app/db/idx tiers) the
  /// request is routed to the MDC's tier.
  struct ResolvedServer {
    DcId dc = kInvalidDc;
    Server* server = nullptr;  ///< null when the endpoint is a client
  };
  ResolvedServer resolve(const Endpoint& ep, DcId origin_dc, DcId owner_dc,
                         std::uint64_t balance_key) const;

 private:
  Topology* topology_;
  DcId master_dc_;
  double instant_fraction_ = 0.25;
};

struct LaunchParams {
  DcId origin_dc = 0;
  DcId owner_dc = kInvalidDc;  ///< kInvalidDc => master
  double size_mb = 0.0;
  std::uint64_t instance_serial = 0;  ///< per-launcher, deterministic
  AgentId launcher_id = kInvalidAgent;
  std::uint64_t rng_seed = 0;  ///< instance RNG stream seed
  /// Opaque launcher bookkeeping (ClientPopulation stores the slot index) so
  /// completion callbacks need not capture per-launch state.
  std::uint32_t launcher_tag = 0;
};

class OperationInstance final : public StageCompletionHandler {
 public:
  /// `done` is invoked from a worker thread when the operation finishes; it
  /// must only perform thread-safe actions (typically an Inbox post).
  using DoneFn = std::function<void(OperationInstance&, Tick end_tick)>;

  OperationInstance(const CascadeSpec& spec, OperationContext& ctx, LaunchParams params,
                    DoneFn done);

  /// Re-arms a finished (pooled) instance for a fresh launch, preserving the
  /// done callback, the context wiring and — the point of pooling — the
  /// branch/stage vector capacities warmed by earlier cascades.
  void reset(const CascadeSpec& spec, const LaunchParams& params);

  /// Launches the first step. Called from the launcher's tick phase at tick
  /// `now`; all submissions become visible at now + 1.
  void start(Tick now);

  void on_stage_complete(Component& at, Tick now, std::uint64_t tag) override;

  const std::string& op_name() const { return spec_->name; }
  /// Interned catalog id of the cascade (see OperationCatalog::op_count).
  std::uint32_t op_id() const { return spec_->op_id; }
  Tick start_tick() const { return start_tick_; }
  const LaunchParams& params() const { return params_; }

  /// Total simulated seconds, valid once done has fired.
  double duration_seconds(const TickClock& clock, Tick end_tick) const {
    return clock.to_seconds(end_tick - start_tick_);
  }

  /// Snapshot round trip of the cascade walk: step/repeat position and each
  /// live branch (message/stage cursor, pending route, held memory, RNG
  /// stream). Pointers travel as stable ids — stage targets as AgentIds,
  /// held memory as its server key, the sequence as the step/branch index.
  /// On read the instance must be freshly constructed and NOT started;
  /// start() is replaced by this call.
  void archive_state(StateArchive& ar, HandlerRegistry& reg);

 private:
  struct Stage {
    /// Snapshots travel as the component's AgentId, never as an address.
    Component* target = nullptr;  // NOLINT(gdisim-snapshot-ptr) travels as the component's AgentId
    double work = 0.0;
    unsigned parallelism = 1;
  };
  struct BranchState {
    /// Re-derived on restore from (step_idx_, branch index) into the spec.
    const Sequence* sequence = nullptr;  // NOLINT(gdisim-snapshot-ptr) re-derived from the spec on restore
    std::size_t msg_idx = 0;
    std::vector<Stage> stages;
    std::size_t stage_idx = 0;
    std::uint32_t local_seq = 0;
    /// Snapshots travel as the owning server's key, never as an address.
    MemoryComponent* held_memory = nullptr;  // NOLINT(gdisim-snapshot-ptr) travels as the owning CPU's AgentId
    double held_bytes = 0.0;
    Rng rng{0};
  };

  void start_step(Tick now);
  void start_message(std::size_t branch_idx, Tick now);
  void submit_stage(std::size_t branch_idx, Tick now);
  void finish_message(std::size_t branch_idx, Tick now);
  void finish_branch(Tick now);

  /// Builds the component route for one message (Eq. 3.2-3.5) into
  /// `branch.stages`, reusing its capacity. `now` stamps the sub-tick
  /// ("instant") work accounted against bypassed components.
  void build_route(const MessageSpec& m, BranchState& branch, Tick now);

  // Construction-time wiring, identical in the restored process.
  const CascadeSpec* spec_;  // NOLINT(gdisim-snapshot-ptr) construction-time wiring
  OperationContext* ctx_;  // NOLINT(gdisim-snapshot-ptr) ARCHIVE-TRANSIENT: construction-time wiring
  LaunchParams params_;  // ARCHIVE-TRANSIENT: rebuilt by the relaunching owner before archive_state runs
  DoneFn done_;  // ARCHIVE-TRANSIENT: completion callback wired by the owner
  std::uint64_t name_hash_ = 0;  // ARCHIVE-TRANSIENT: cached stable_hash(spec name)
  std::size_t step_idx_ = 0;
  unsigned repeats_left_ = 0;
  std::vector<BranchState> branches_;
  // GDISIM-SHARED: join counter decremented by branches completing on any worker
  std::atomic<unsigned> branches_outstanding_{0};
  Tick start_tick_ = 0;
};

}  // namespace gdisim
