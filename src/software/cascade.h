// Message cascades (thesis §3.5.2, Figures 3-11/3-12, 5-2..5-5).
//
// An operation is a collection of sequential *steps*; each step contains one
// or more *branches* that run in parallel (the pull phases of SYNCHREP, the
// fan-out of INDEXBUILD); each branch is a *sequence* of messages executed
// strictly in order. A message names its endpoint holon roles — the concrete
// data center, tier and server instance are resolved at run time by the
// simulator based on workload and load-balancing policy, exactly as §3.5.2
// prescribes.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/archive.h"
#include "core/rng.h"
#include "hardware/datacenter.h"
#include "software/resource.h"

namespace gdisim {

enum class Role : unsigned {
  Client,      ///< the launching client (or daemon process)
  AppServer,   ///< T_app
  DbServer,    ///< T_db
  FileServer,  ///< T_fs
  IdxServer,   ///< T_idx
};

/// Which data center hosts the endpoint.
enum class DcSelector : unsigned {
  Local,     ///< the operation's origin data center
  Owner,     ///< the data center owning the file/metadata (Ch. 7); in a
             ///< single-master infrastructure this is always the MDC
  Explicit,  ///< a fixed data center (used by daemon-built cascades)
};

struct Endpoint {
  Role role = Role::Client;
  DcSelector dc = DcSelector::Local;
  DcId explicit_dc = kInvalidDc;

  static Endpoint client() { return {Role::Client, DcSelector::Local, kInvalidDc}; }
  static Endpoint app_owner() { return {Role::AppServer, DcSelector::Owner, kInvalidDc}; }
  static Endpoint db_owner() { return {Role::DbServer, DcSelector::Owner, kInvalidDc}; }
  static Endpoint idx_owner() { return {Role::IdxServer, DcSelector::Owner, kInvalidDc}; }
  static Endpoint fs_local() { return {Role::FileServer, DcSelector::Local, kInvalidDc}; }
  static Endpoint at(Role role, DcId dc) { return {role, DcSelector::Explicit, dc}; }
};

struct MessageSpec {
  Endpoint from;
  Endpoint to;
  ResourceVector fixed;
  ResourceVector per_mb;
  /// When set, overrides the launch-level size for this message (used by
  /// daemon cascades whose branches move different volumes).
  std::optional<double> size_mb_override;
  /// Cores the destination CPU stage may fork across (thesis §9.1.1).
  unsigned cpu_parallelism = 1;
};

struct Sequence {
  std::vector<MessageSpec> messages;
};

struct Step {
  std::vector<Sequence> branches;
  /// The step is executed this many times back-to-back (the xN multipliers
  /// in the thesis cascade figures).
  unsigned repeat = 1;
};

struct CascadeSpec {
  std::string name;
  std::vector<Step> steps;
  /// Cached stable_hash(name) so hot launch paths never re-hash the string;
  /// 0 means "not sealed yet" and readers fall back to hashing on demand.
  std::uint64_t name_hash = 0;  // ARCHIVE-TRANSIENT: derived from name, recomputed on read
  /// Dense catalog id (assigned by OperationCatalog::add); launchers index
  /// per-operation statistics tables by this instead of by name.
  std::uint32_t op_id = 0;  // ARCHIVE-TRANSIENT: catalog wiring; archived specs are daemon-built

  std::size_t total_messages() const {
    std::size_t n = 0;
    for (const auto& s : steps) {
      std::size_t per = 0;
      for (const auto& b : s.branches) per += b.messages.size();
      n += per * s.repeat;
    }
    return n;
  }
};

/// Full snapshot round trip of a dynamically-built cascade (background
/// daemons synthesize their specs at launch time, so a restored run cannot
/// look its spec up in any catalog).
inline void archive_resource_vector(StateArchive& ar, ResourceVector& r) {
  ar.f64(r.cpu_cycles);
  ar.f64(r.net_bytes);
  ar.f64(r.mem_bytes);
  ar.f64(r.disk_bytes);
}

inline void archive_endpoint(StateArchive& ar, Endpoint& ep) {
  std::uint8_t role = static_cast<std::uint8_t>(ep.role);
  ar.u8(role);
  ep.role = static_cast<Role>(role);
  std::uint8_t dc = static_cast<std::uint8_t>(ep.dc);
  ar.u8(dc);
  ep.dc = static_cast<DcSelector>(dc);
  ar.u32(ep.explicit_dc);
}

inline void archive_cascade_spec(StateArchive& ar, CascadeSpec& spec) {
  ar.section("cascade");
  ar.str(spec.name);
  if (ar.reading()) spec.name_hash = stable_hash(spec.name);
  std::size_t nsteps = spec.steps.size();
  ar.size_value(nsteps);
  if (ar.reading()) spec.steps.resize(nsteps);
  for (Step& step : spec.steps) {
    ar.u32(step.repeat);
    std::size_t nbranches = step.branches.size();
    ar.size_value(nbranches);
    if (ar.reading()) step.branches.resize(nbranches);
    for (Sequence& seq : step.branches) {
      std::size_t nmsgs = seq.messages.size();
      ar.size_value(nmsgs);
      if (ar.reading()) seq.messages.resize(nmsgs);
      for (MessageSpec& m : seq.messages) {
        archive_endpoint(ar, m.from);
        archive_endpoint(ar, m.to);
        archive_resource_vector(ar, m.fixed);
        archive_resource_vector(ar, m.per_mb);
        bool has_override = m.size_mb_override.has_value();
        ar.boolean(has_override);
        if (has_override) {
          double v = ar.writing() ? *m.size_mb_override : 0.0;
          ar.f64(v);
          if (ar.reading()) m.size_mb_override = v;
        } else if (ar.reading()) {
          m.size_mb_override.reset();
        }
        ar.u32(m.cpu_parallelism);
      }
    }
  }
}

/// Fluent builder for the common single-branch cascade shapes.
class CascadeBuilder {
 public:
  explicit CascadeBuilder(std::string name) { spec_.name = std::move(name); }

  /// Starts a new sequential step with one branch, repeated `repeat` times.
  CascadeBuilder& step(unsigned repeat = 1) {
    spec_.steps.push_back(Step{{Sequence{}}, repeat});
    return *this;
  }

  /// Adds a message to the last branch of the current step.
  CascadeBuilder& msg(Endpoint from, Endpoint to, ResourceVector fixed,
                      ResourceVector per_mb = {}) {
    if (spec_.steps.empty()) step();
    spec_.steps.back().branches.back().messages.push_back(
        MessageSpec{from, to, fixed, per_mb, std::nullopt, 1});
    return *this;
  }

  /// Sets the CPU parallelism of the most recently added message.
  CascadeBuilder& spec_last_parallelism(unsigned cores) {
    spec_.steps.back().branches.back().messages.back().cpu_parallelism = cores;
    return *this;
  }

  /// Sets the per-MB cost of the most recently added message.
  CascadeBuilder& spec_last_per_mb(ResourceVector per_mb) {
    spec_.steps.back().branches.back().messages.back().per_mb = per_mb;
    return *this;
  }

  /// Opens an additional parallel branch in the current step.
  CascadeBuilder& branch() {
    if (spec_.steps.empty()) step();
    spec_.steps.back().branches.push_back(Sequence{});
    return *this;
  }

  CascadeSpec build() {
    spec_.name_hash = stable_hash(spec_.name);
    return std::move(spec_);
  }

 private:
  CascadeSpec spec_;
};

}  // namespace gdisim
