// Client holons: workload-driven operation launchers.
//
// ClientPopulation models the client population of one (application, data
// center) pair: the logged-in count follows the workload curve; each client
// cycles launch -> wait-for-completion -> think. SeriesLauncher reproduces
// the Ch. 5 validation protocol: a new client enters every `interval` and
// runs a fixed series of operations once.
//
// Both launchers receive completion callbacks on component worker threads;
// those callbacks only post to the launcher's own inbox, and all state is
// mutated in the launcher's own phases, keeping execution deterministic.
//
// Hot-state layout (DESIGN.md "Memory layout"): per-operation statistics
// live in dense vectors indexed by the catalog's interned op ids
// (OpStatsTable); the name-keyed std::map views the figures and the
// fingerprint consume are materialized lazily. Client slots are plain
// structs-of-scalars, and the launch scan is driven by a ready_at min-heap
// plus a parked-index list so clients that are thinking or above the
// workload curve cost nothing per tick.
#pragma once

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/agent.h"
#include "core/rng.h"
#include "software/catalog.h"
#include "software/operation.h"
#include "software/workload.h"

namespace gdisim {

/// Accumulated response-time statistics per operation type, plus half-hour
/// binned means for the time-of-day figures (6-14..6-20).
struct OpStats {
  std::uint64_t count = 0;
  double total_s = 0.0;
  double min_s = 0.0;
  double max_s = 0.0;
  double sum_sq = 0.0;

  void record(double s) {
    if (count == 0) {
      min_s = max_s = s;
    } else {
      if (s < min_s) min_s = s;
      if (s > max_s) max_s = s;
    }
    ++count;
    total_s += s;
    sum_sq += s * s;
  }
  double mean() const { return count ? total_s / static_cast<double>(count) : 0.0; }

  void archive_state(StateArchive& ar) {
    ar.u64(count);
    ar.f64(total_s);
    ar.f64(min_s);
    ar.f64(max_s);
    ar.f64(sum_sq);
  }
};

/// Mean response time per (operation, half-hour-of-day bin).
class BinnedResponse {
 public:
  static constexpr int kBins = 48;
  void record(double hour_of_day, double seconds);
  /// (bin center hour, mean seconds) for bins with samples.
  std::vector<std::pair<double, double>> series() const;

  bool empty() const {
    for (auto c : count_)
      if (c != 0) return false;
    return true;
  }

  void archive_state(StateArchive& ar) {
    for (auto& s : sum_) ar.f64(s);
    for (auto& c : count_) ar.u64(c);
  }

 private:
  std::array<double, kBins> sum_{};
  std::array<std::uint64_t, kBins> count_{};
};

/// Per-operation statistics in struct-of-arrays form: dense vectors indexed
/// by the catalog's interned op id, so the per-completion hot path is two
/// vector indexations instead of two string-keyed map lookups. The legacy
/// name-keyed map views (consumed by figures, benches and the result
/// fingerprint) are materialized lazily and cached until the next record.
class OpStatsTable {
 public:
  /// `with_binned` additionally keeps half-hour binned response means.
  void init(const OperationCatalog& catalog, bool with_binned) {
    catalog_ = &catalog;
    with_binned_ = with_binned;
    stats_.assign(catalog.op_count(), OpStats{});
    if (with_binned) binned_.assign(catalog.op_count(), BinnedResponse{});
    dirty_ = true;
  }

  void record(std::uint32_t op_id, double seconds) {
    stats_[op_id].record(seconds);
    dirty_ = true;
  }
  void record_binned(std::uint32_t op_id, double hour_of_day, double seconds) {
    binned_[op_id].record(hour_of_day, seconds);
  }

  /// Name-keyed views: entries exist exactly for ops with count > 0, in name
  /// order — identical content and iteration order to the former live maps.
  /// The returned reference stays stable (and its iterators valid) until the
  /// next record()/archive_state().
  const std::map<std::string, OpStats>& stats_view() const {
    if (dirty_) rebuild_views();
    return stats_view_;
  }
  const std::map<std::string, BinnedResponse>& binned_view() const {
    if (dirty_) rebuild_views();
    return binned_view_;
  }

  /// Byte stream identical to archiving the name-keyed maps directly:
  /// count, then (name, payload) pairs in name order, stats then (when
  /// enabled) binned.
  void archive_state(StateArchive& ar);

 private:
  void rebuild_views() const;

  const OperationCatalog* catalog_ = nullptr;  // NOLINT(gdisim-snapshot-ptr) ARCHIVE-TRANSIENT: construction-time wiring
  bool with_binned_ = false;  // ARCHIVE-TRANSIENT: construction-time configuration
  std::vector<OpStats> stats_;
  std::vector<BinnedResponse> binned_;
  mutable std::map<std::string, OpStats> stats_view_;  // ARCHIVE-TRANSIENT: derived cache
  mutable std::map<std::string, BinnedResponse> binned_view_;  // ARCHIVE-TRANSIENT: derived cache
  mutable bool dirty_ = true;  // ARCHIVE-TRANSIENT: derived-cache validity flag
};

/// Samples the owning data center of the file an operation touches; used in
/// Ch. 7 (multiple masters). Returns kInvalidDc for "the master".
using OwnerSampler = std::function<DcId(DcId origin_dc, double uniform01)>;

/// Observes every operation launch (time, op, origin, owner, size); used by
/// the workload recorder (software/replay.h). Must be thread-safe: launches
/// happen in parallel agent phases.
using LaunchRecorder = std::function<void(double t_seconds, const std::string& op,
                                          DcId origin, DcId owner, double size_mb)>;

/// How a client chooses its next operation (thesis §9.2.1 extends the iid
/// mix with realistic session behaviour).
enum class ClientBehavior {
  kIndependentMix,  ///< sample each operation iid from the mix
  kSessionScript,   ///< each client walks `session_script` in order, looping
};

enum class ThinkTimeModel {
  kExponential,  ///< memoryless think times (default)
  kFixed,        ///< deterministic think times (clockwork clients)
};

struct ClientPopulationConfig {
  std::string name;  ///< e.g. "CAD@NA"
  DcId dc = 0;
  WorkloadCurve curve;  ///< logged-in clients vs GMT hour
  OperationMix mix;
  double think_time_mean_s = 40.0;
  double file_size_mb = 50.0;       ///< size of files moved by OPEN/SAVE/...
  double file_size_jitter = 0.0;    ///< +- uniform fraction of file_size_mb
  std::uint64_t seed = 1;
  ClientBehavior behavior = ClientBehavior::kIndependentMix;
  /// Ordered workflow for kSessionScript (e.g. LOGIN, TEXT-SEARCH, OPEN,
  /// SAVE); each client starts at a deterministic offset so the population
  /// does not move in lockstep.
  std::vector<std::string> session_script;
  ThinkTimeModel think_model = ThinkTimeModel::kExponential;
};

class ClientPopulation final : public Agent {
 public:
  ClientPopulation(ClientPopulationConfig config, const OperationCatalog& catalog,
                   OperationContext& ctx, TickClock clock);

  void on_tick(Tick now) override;
  void on_interactions(Tick now) override;

  /// Sleeps until the next launch-scan boundary; operation completions post
  /// to the inbox, which wakes the population immediately.
  Tick next_wake_tick(Tick next_now) const override {
    if (!completions_.empty()) return next_now;
    return std::max(next_scan_, next_now);
  }

  void on_engine_serial(bool serial) override { completions_.set_serial(serial); }

  void set_owner_sampler(OwnerSampler sampler) { owner_sampler_ = std::move(sampler); }
  void set_launch_recorder(LaunchRecorder recorder) { recorder_ = std::move(recorder); }

  /// Target logged-in population right now.
  std::size_t logged_in() const { return logged_in_; }
  /// Clients with an operation currently in flight.
  std::size_t active() const { return active_; }

  const std::map<std::string, OpStats>& stats() const { return op_stats_.stats_view(); }
  const std::map<std::string, BinnedResponse>& binned() const {
    return op_stats_.binned_view();
  }
  const ClientPopulationConfig& config() const { return config_; }
  std::uint64_t completed_operations() const { return completed_; }
  std::size_t slot_count() const { return slots_.size(); }

  /// Snapshot round trip: client slots, in-flight operations (rebuilt from
  /// the catalog and re-bound in the handler registry), pending completions
  /// (re-linked by instance serial), and response statistics.
  void archive_state(StateArchive& ar, HandlerRegistry& reg) override;

 private:
  struct Slot {
    Tick ready_at = 0;
    bool busy = false;
    std::uint32_t script_pos = 0;
  };
  struct CompletionMsg {
    /// Resolved on restore via the instance serial, never serialized.
    OperationInstance* instance;  // NOLINT(gdisim-snapshot-ptr) travels as (launcher id, serial)
    std::size_t slot;
    Tick end_tick;
  };
  /// Min-heap entry of the think-time wake index: (ready_at, slot index).
  using ThinkEntry = std::pair<Tick, std::uint32_t>;

  void launch(std::size_t slot, Tick now);
  std::unique_ptr<OperationInstance> acquire_instance(const CascadeSpec& spec,
                                                      const LaunchParams& params);
  void rebuild_wake_index();
  void park(std::uint32_t idx);

  ClientPopulationConfig config_;
  // Construction-time wiring, identical in the restored process.
  const OperationCatalog* catalog_;  // NOLINT(gdisim-snapshot-ptr) ARCHIVE-TRANSIENT: construction-time wiring
  OperationContext* ctx_;  // NOLINT(gdisim-snapshot-ptr) ARCHIVE-TRANSIENT: construction-time wiring
  TickClock clock_;  // ARCHIVE-TRANSIENT: tick<->seconds conversion fixed at construction
  Rng rng_;
  OwnerSampler owner_sampler_;  // ARCHIVE-TRANSIENT: stateless callback; draws come from the archived rng_
  LaunchRecorder recorder_;  // ARCHIVE-TRANSIENT: observer callback wiring
  std::vector<Slot> slots_;
  Tick scan_every_ = 1;  // ARCHIVE-TRANSIENT: derived from config at construction
  Tick next_scan_ = 0;
  std::uint64_t name_hash_ = 0;  // ARCHIVE-TRANSIENT: stable_hash(config.name), cached
  /// Mix entries / session script pre-resolved to catalog specs so a launch
  /// never does a string-keyed lookup.
  std::vector<const CascadeSpec*> mix_specs_;  // NOLINT(gdisim-snapshot-ptr) ARCHIVE-TRANSIENT: construction-time wiring
  std::vector<const CascadeSpec*> script_specs_;  // NOLINT(gdisim-snapshot-ptr) ARCHIVE-TRANSIENT: construction-time wiring
  OperationInstance::DoneFn done_;  // ARCHIVE-TRANSIENT: completion callback wiring, shared by all instances
  /// In-flight operation per slot (at most one: a busy client is exactly a
  /// client with an operation in flight). Snapshots key entries by the
  /// instance serial — a stable id, never an address.
  std::vector<std::unique_ptr<OperationInstance>> live_by_slot_;
  /// Finished instances recycled into later launches; keeps each instance's
  /// branch/stage vectors warm and removes the per-launch allocation.
  std::vector<std::unique_ptr<OperationInstance>> instance_pool_;  // ARCHIVE-TRANSIENT: allocation recycling pool, logically empty
  // Launch-scan wake index (rebuilt from slots_ on restore): every non-busy
  // slot is exactly once in the think-heap (still thinking or not yet
  // examined) or the parked list (ready but above the logged-in waterline).
  std::vector<ThinkEntry> think_heap_;  // ARCHIVE-TRANSIENT: derived index over slots_
  std::vector<std::uint32_t> parked_;  // ARCHIVE-TRANSIENT: derived index over slots_
  std::uint32_t parked_min_ = kNoParked;  // ARCHIVE-TRANSIENT: derived index over slots_
  bool parked_sorted_ = true;  // ARCHIVE-TRANSIENT: derived index over slots_
  std::vector<std::uint32_t> launch_scratch_;  // ARCHIVE-TRANSIENT: per-scan scratch
  std::vector<Delivery<CompletionMsg>> drain_scratch_;  // ARCHIVE-TRANSIENT: per-wake scratch
  static constexpr std::uint32_t kNoParked = 0xffffffffu;
  Inbox<CompletionMsg> completions_;
  std::uint64_t next_serial_ = 0;
  std::size_t logged_in_ = 0;
  std::size_t active_ = 0;
  std::uint64_t completed_ = 0;
  OpStatsTable op_stats_;
};

/// One entry of a Ch. 5 series: operation name + file size it manipulates.
struct SeriesOp {
  std::string op;
  double size_mb = 0.0;
};

struct SeriesLauncherConfig {
  std::string name;  ///< e.g. "light"
  DcId dc = 0;
  std::vector<SeriesOp> series;
  double interval_s = 15.0;  ///< a new series client enters this often
  double stop_after_s = -1.0;  ///< stop launching after this time (<0 = never)
  std::uint64_t seed = 1;
};

class SeriesLauncher final : public Agent {
 public:
  SeriesLauncher(SeriesLauncherConfig config, const OperationCatalog& catalog,
                 OperationContext& ctx, TickClock clock);

  void on_tick(Tick now) override;
  void on_interactions(Tick now) override;

  /// Sleeps until the next scheduled series entry; parked for good once the
  /// stop time passes (completions still arrive via inbox wakes).
  Tick next_wake_tick(Tick next_now) const override {
    if (!completions_.empty()) return next_now;
    if (config_.series.empty() || next_launch_ >= stop_tick_) return kNeverTick;
    return std::max(next_launch_, next_now);
  }

  void on_engine_serial(bool serial) override { completions_.set_serial(serial); }

  /// Series currently in flight (the "concurrent clients" of Figure 5-6).
  std::size_t concurrent() const { return live_.size(); }
  std::uint64_t series_completed() const { return series_completed_; }
  const std::map<std::string, OpStats>& stats() const { return op_stats_.stats_view(); }

  /// Snapshot round trip; live series are rebuilt from (serial, next_op).
  void archive_state(StateArchive& ar, HandlerRegistry& reg) override;

 private:
  struct Run {
    std::size_t next_op = 0;
  };
  struct LiveOp {
    std::unique_ptr<OperationInstance> instance;
    Run run;
  };
  struct CompletionMsg {
    /// Resolved on restore via the instance serial, never serialized.
    OperationInstance* instance;  // NOLINT(gdisim-snapshot-ptr) travels as (launcher id, serial)
    Tick end_tick;
  };

  void launch_op(OperationInstance* prev, Run run, Tick now);
  std::unique_ptr<OperationInstance> make_instance(const SeriesOp& so, LaunchParams params);

  SeriesLauncherConfig config_;
  // Construction-time wiring, identical in the restored process.
  const OperationCatalog* catalog_;  // NOLINT(gdisim-snapshot-ptr) ARCHIVE-TRANSIENT: construction-time wiring
  OperationContext* ctx_;  // NOLINT(gdisim-snapshot-ptr) ARCHIVE-TRANSIENT: construction-time wiring
  TickClock clock_;  // ARCHIVE-TRANSIENT: tick<->seconds conversion fixed at construction
  Rng rng_;
  Tick next_launch_ = 0;
  Tick interval_ticks_ = 1;  // ARCHIVE-TRANSIENT: derived from config at construction
  Tick stop_tick_ = kNeverTick;  // ARCHIVE-TRANSIENT: derived from config at construction
  std::uint64_t name_hash_ = 0;  // ARCHIVE-TRANSIENT: stable_hash(config.name), cached
  /// In-flight series keyed by instance serial (stable id, never an address).
  std::unordered_map<std::uint64_t, LiveOp> live_;
  Inbox<CompletionMsg> completions_;
  std::vector<Delivery<CompletionMsg>> drain_scratch_;  // ARCHIVE-TRANSIENT: per-wake scratch
  std::uint64_t next_serial_ = 0;
  std::uint64_t series_completed_ = 0;
  OpStatsTable op_stats_;
};

}  // namespace gdisim
