// The R parameter array (thesis §3.3.2/§3.5.2): hardware-agnostic resource
// costs conveyed by each message of an operation.
//
// Costs are split into a fixed part and a per-megabyte part so a single
// cascade definition covers the Light/Average/Heavy series of Ch. 5 and the
// volume-driven background transfers of Ch. 6/7: the effective cost of a
// message is fixed + per_mb * size_mb.
#pragma once

namespace gdisim {

struct ResourceVector {
  double cpu_cycles = 0.0;  ///< Rp — computation at the destination holon
  double net_bytes = 0.0;   ///< Rt — bytes moved across NICs/switches/links
  double mem_bytes = 0.0;   ///< Rm — memory held while the message is processed
  double disk_bytes = 0.0;  ///< Rd — storage I/O at the destination holon

  ResourceVector operator+(const ResourceVector& o) const {
    return {cpu_cycles + o.cpu_cycles, net_bytes + o.net_bytes, mem_bytes + o.mem_bytes,
            disk_bytes + o.disk_bytes};
  }
  ResourceVector operator*(double k) const {
    return {cpu_cycles * k, net_bytes * k, mem_bytes * k, disk_bytes * k};
  }
};

/// Convenience literals for cost tables.
inline constexpr double KB = 1024.0;
inline constexpr double MB = 1024.0 * 1024.0;
inline constexpr double GB = 1024.0 * 1024.0 * 1024.0;
inline constexpr double Kcycles = 1e3;
inline constexpr double Mcycles = 1e6;
inline constexpr double Gcycles = 1e9;

}  // namespace gdisim
