#include "software/cascade.h"

namespace gdisim {}  // namespace gdisim
