// The standard operation catalog: CAD, VIS and PDM cascades (thesis §5.2.2,
// §6.3.2, Figures 5-2..5-5) plus builders for the SYNCHREP and INDEXBUILD
// daemon cascades (Figures 6-8/6-9).
//
// The R parameter arrays here are the *synthetic canonical costs* replacing
// the thesis' proprietary profiling data (DESIGN.md §1); they are calibrated
// so that a single isolated operation on the Ch. 5 validation infrastructure
// reproduces the Table 5.1 durations (pinned by tests/software/
// catalog_calibration_test.cc).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "software/cascade.h"

namespace gdisim {

class OperationCatalog {
 public:
  /// Catalog with every CAD/VIS/PDM operation of the thesis.
  static OperationCatalog standard();

  void add(CascadeSpec spec);
  const CascadeSpec& get(const std::string& name) const;  // e.g. "CAD.OPEN"
  bool contains(const std::string& name) const { return ops_.count(name) > 0; }

  /// All operation names with the given application prefix ("CAD", ...).
  std::vector<std::string> operations_of(const std::string& app) const;

  /// Dense-id view: every op gets a stable `CascadeSpec::op_id` in
  /// [0, op_count()) at add() time; launchers size per-op statistics tables
  /// from op_count() and index them by id instead of by name.
  std::size_t op_count() const { return by_id_.size(); }
  const CascadeSpec& by_id(std::uint32_t id) const { return *by_id_.at(id); }

  /// Visits every spec in name order (the map's iteration order).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [name, spec] : ops_) fn(spec);
  }

 private:
  std::map<std::string, CascadeSpec> ops_;
  std::vector<const CascadeSpec*> by_id_;  // values in ops_ are node-stable
};

/// File sizes (MB) of the three Ch. 5 validation series.
struct SeriesSizes {
  static constexpr double kLightMb = 25.0;
  static constexpr double kAverageMb = 56.0;
  static constexpr double kHeavyMb = 85.0;
};

/// SYNCHREP (Figure 6-8): pull phase — one parallel branch per source data
/// center moving `pull.second` MB to the master; push phase — one parallel
/// branch per destination moving `push.second` MB from the master.
CascadeSpec make_synchrep_cascade(DcId master_dc,
                                  const std::vector<std::pair<DcId, double>>& pull_mb,
                                  const std::vector<std::pair<DcId, double>>& push_mb);

/// INDEXBUILD (Figure 6-9): moves `volume_mb` of flagged files from the
/// master file tier through the index tier and registers results in the db.
/// `index_parallelism` > 1 models the thesis' §9.1.1 what-if of a
/// parallelizable index build (the thesis treats it as single-threaded
/// because relationship analysis "might not be parallelizable").
CascadeSpec make_indexbuild_cascade(DcId master_dc, double volume_mb,
                                    unsigned index_parallelism = 1);

}  // namespace gdisim
