#include "software/replay.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace gdisim {

void WorkloadTrace::record(TraceEntry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  entry.serial = next_serial_++;
  entries_.push_back(std::move(entry));
}

void WorkloadTrace::finalize() {
  std::lock_guard<std::mutex> lock(mu_);
  std::sort(entries_.begin(), entries_.end(), [](const TraceEntry& a, const TraceEntry& b) {
    if (a.t_seconds != b.t_seconds) return a.t_seconds < b.t_seconds;
    if (a.origin != b.origin) return a.origin < b.origin;
    if (a.op != b.op) return a.op < b.op;
    return a.serial < b.serial;
  });
}

std::size_t WorkloadTrace::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void WorkloadTrace::save(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  os << "t_seconds,op,origin,owner,size_mb\n";
  for (const TraceEntry& e : entries_) {
    os << e.t_seconds << ',' << e.op << ',' << e.origin << ','
       << (e.owner == kInvalidDc ? -1 : static_cast<long long>(e.owner)) << ',' << e.size_mb
       << '\n';
  }
}

WorkloadTrace WorkloadTrace::load(std::istream& is) {
  WorkloadTrace trace;
  std::string line;
  if (!std::getline(is, line)) throw std::invalid_argument("WorkloadTrace: empty stream");
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string field;
    TraceEntry e;
    if (!std::getline(ls, field, ',')) throw std::invalid_argument("WorkloadTrace: bad row");
    e.t_seconds = std::stod(field);
    if (!std::getline(ls, e.op, ',')) throw std::invalid_argument("WorkloadTrace: bad row");
    if (!std::getline(ls, field, ',')) throw std::invalid_argument("WorkloadTrace: bad row");
    e.origin = static_cast<DcId>(std::stoul(field));
    if (!std::getline(ls, field, ',')) throw std::invalid_argument("WorkloadTrace: bad row");
    const long long owner = std::stoll(field);
    e.owner = owner < 0 ? kInvalidDc : static_cast<DcId>(owner);
    if (!std::getline(ls, field, ',')) throw std::invalid_argument("WorkloadTrace: bad row");
    e.size_mb = std::stod(field);
    trace.record(e);
  }
  trace.finalize();
  return trace;
}

LaunchRecorder WorkloadTrace::recorder() {
  return [this](double t_seconds, const std::string& op, DcId origin, DcId owner,
                double size_mb) {
    record(TraceEntry{t_seconds, op, origin, owner, size_mb, 0});
  };
}

TraceLauncher::TraceLauncher(const WorkloadTrace& trace, const OperationCatalog& catalog,
                             OperationContext& ctx, TickClock clock, std::uint64_t seed)
    : trace_(&trace), catalog_(&catalog), ctx_(&ctx), clock_(clock), seed_(seed) {
  set_name("replay");
  completions_.bind_owner(this);
}

void TraceLauncher::on_tick(Tick now) {
  const double t = clock_.to_seconds(now);
  const auto& entries = trace_->entries();
  while (cursor_ < entries.size() && entries[cursor_].t_seconds <= t) {
    const TraceEntry& e = entries[cursor_];

    LaunchParams params;
    params.origin_dc = e.origin;
    params.owner_dc = e.owner;
    params.size_mb = e.size_mb;
    params.instance_serial = cursor_;
    params.launcher_id = id();
    params.rng_seed = seed_ ^ (static_cast<std::uint64_t>(cursor_) * 0x9e3779b97f4a7c15ULL);

    auto instance = make_instance(e, params);
    OperationInstance* raw = instance.get();
    live_.emplace(params.instance_serial, std::move(instance));
    raw->start(now);
    ++cursor_;
  }
}

std::unique_ptr<OperationInstance> TraceLauncher::make_instance(const TraceEntry& e,
                                                                LaunchParams params) {
  return std::make_unique<OperationInstance>(
      catalog_->get(e.op), *ctx_, params, [this](OperationInstance& inst, Tick end_tick) {
        completions_.post(end_tick, id(), inst.params().instance_serial,
                          CompletionMsg{&inst, end_tick});
      });
}

void TraceLauncher::archive_state(StateArchive& ar, HandlerRegistry& reg) {
  Agent::archive_state(ar, reg);
  ar.section("trace_launcher");
  ar.size_value(cursor_);
  ar.u64(completed_);

  std::size_t nlive = live_.size();
  ar.size_value(nlive);
  if (ar.writing()) {
    std::vector<std::uint64_t> serials;
    serials.reserve(live_.size());
    for (auto& [serial, op] : live_) serials.push_back(serial);
    std::sort(serials.begin(), serials.end());
    for (std::uint64_t serial : serials) {
      std::uint64_t s = serial;
      ar.u64(s);
      OperationInstance* instance = live_.at(serial).get();
      reg.bind(id(), serial, instance);
      instance->archive_state(ar, reg);
    }
  } else {
    live_.clear();
    for (std::size_t i = 0; i < nlive; ++i) {
      std::uint64_t serial = 0;
      ar.u64(serial);
      // The serial is the cursor position the entry was launched from, so
      // every launch parameter comes straight back out of the trace.
      const TraceEntry& e = trace_->entries().at(serial);
      LaunchParams params;
      params.origin_dc = e.origin;
      params.owner_dc = e.owner;
      params.size_mb = e.size_mb;
      params.instance_serial = serial;
      params.launcher_id = id();
      params.rng_seed = seed_ ^ (serial * 0x9e3779b97f4a7c15ULL);
      auto instance = make_instance(e, params);
      reg.bind(id(), serial, instance.get());
      instance->archive_state(ar, reg);
      live_.emplace(serial, std::move(instance));
    }
  }

  completions_.archive_state(ar, [this](StateArchive& a, CompletionMsg& msg) {
    std::uint64_t serial = a.writing() ? msg.instance->params().instance_serial : 0;
    a.u64(serial);
    a.i64(msg.end_tick);
    if (a.reading()) msg.instance = live_.at(serial).get();
  });

  std::size_t nstats = stats_.size();
  ar.size_value(nstats);
  if (ar.writing()) {
    for (auto& [name, s] : stats_) {
      std::string key = name;
      ar.str(key);
      s.archive_state(ar);
    }
  } else {
    stats_.clear();
    for (std::size_t i = 0; i < nstats; ++i) {
      std::string key;
      ar.str(key);
      stats_[key].archive_state(ar);
    }
  }
}

void TraceLauncher::on_interactions(Tick now) {
  for (auto& d : completions_.drain_visible(now)) {
    const CompletionMsg& msg = d.payload;
    stats_[msg.instance->op_name()].record(msg.instance->duration_seconds(clock_, msg.end_tick));
    ++completed_;
    live_.erase(msg.instance->params().instance_serial);
  }
}

}  // namespace gdisim
