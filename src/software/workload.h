// Application workload model (thesis §3.5.1, Figures 3-10 and 6-5..6-7).
//
// A WorkloadCurve gives the number of logged-in clients as a function of the
// GMT hour of day (piecewise-linear over 24 hourly control points, periodic).
// An OperationMix gives the distribution of operation types launched by
// active clients.
#pragma once

#include <array>
#include <string>
#include <utility>
#include <vector>

namespace gdisim {

class WorkloadCurve {
 public:
  WorkloadCurve() { hourly_.fill(0.0); }
  explicit WorkloadCurve(const std::array<double, 24>& hourly) : hourly_(hourly) {}

  static WorkloadCurve constant(double value);

  /// Business-hours trapezoid: ramps from `base` to `peak` over `ramp_hours`
  /// starting at `start_hour` (GMT), stays at peak, and ramps down to finish
  /// at `end_hour`. Handles shifts that wrap midnight (e.g. Australia).
  static WorkloadCurve business_hours(double peak, double base, double start_hour,
                                      double end_hour, double ramp_hours = 2.0);

  /// Linear interpolation between hourly control points; periodic in 24 h.
  double at_hour(double hour) const;
  double at_seconds(double seconds_since_midnight) const {
    return at_hour(seconds_since_midnight / 3600.0);
  }

  double peak() const;
  const std::array<double, 24>& hourly() const { return hourly_; }

  WorkloadCurve scaled(double factor) const;

 private:
  std::array<double, 24> hourly_;
};

class OperationMix {
 public:
  OperationMix() = default;
  explicit OperationMix(std::vector<std::pair<std::string, double>> entries);

  static OperationMix uniform(const std::vector<std::string>& ops);

  /// Deterministic inverse-CDF sampling from a uniform in [0, 1).
  const std::string& sample(double uniform01) const;

  /// Index form of sample(): same inverse-CDF walk, for callers that keyed
  /// the entries to pre-resolved cascade specs.
  std::size_t sample_index(double uniform01) const;

  const std::vector<std::pair<std::string, double>>& entries() const { return entries_; }
  bool empty() const { return entries_.empty(); }

 private:
  std::vector<std::pair<std::string, double>> entries_;  // normalized weights
  std::vector<double> cdf_;
};

}  // namespace gdisim
