// Workload recording and replay.
//
// A WorkloadTrace captures every operation launch — time, operation, origin
// data center, resolved owner and file size. Replaying the identical trace
// against a *different* infrastructure is the purest form of the thesis'
// "what if" methodology (Figure 1-1): same demand, changed hardware or
// topology, directly comparable outputs.
#pragma once

#include <algorithm>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/agent.h"
#include "software/catalog.h"
#include "software/client.h"
#include "software/operation.h"

namespace gdisim {

struct TraceEntry {
  double t_seconds = 0.0;
  std::string op;
  DcId origin = 0;
  DcId owner = kInvalidDc;
  double size_mb = 0.0;
  std::uint64_t serial = 0;  ///< recording order tie-break
};

class WorkloadTrace {
 public:
  WorkloadTrace() = default;
  // Movable (the mutex only guards concurrent recording; moves happen while
  // no recording is in progress).
  WorkloadTrace(WorkloadTrace&& other) noexcept
      : entries_(std::move(other.entries_)), next_serial_(other.next_serial_) {}
  WorkloadTrace& operator=(WorkloadTrace&& other) noexcept {
    entries_ = std::move(other.entries_);
    next_serial_ = other.next_serial_;
    return *this;
  }

  /// Thread-safe append (populations launch from parallel worker phases).
  void record(TraceEntry entry);

  /// Sorts entries by (time, origin, op, serial); call once after recording.
  void finalize();

  const std::vector<TraceEntry>& entries() const { return entries_; }
  std::size_t size() const;
  bool empty() const { return size() == 0; }

  /// CSV round trip: "t_seconds,op,origin,owner,size_mb".
  void save(std::ostream& os) const;
  static WorkloadTrace load(std::istream& is);

  /// Hook suitable for ClientPopulation::set_launch_recorder.
  LaunchRecorder recorder();

 private:
  mutable std::mutex mu_;  // GDISIM-SHARED: serializes trace appends from concurrent launch sites
  std::vector<TraceEntry> entries_;
  std::uint64_t next_serial_ = 0;
};

/// Agent that replays a finalized trace: each entry's operation is launched
/// at its recorded instant with its recorded origin/owner/size.
class TraceLauncher final : public Agent {
 public:
  TraceLauncher(const WorkloadTrace& trace, const OperationCatalog& catalog,
                OperationContext& ctx, TickClock clock, std::uint64_t seed = 1);

  void on_tick(Tick now) override;
  void on_interactions(Tick now) override;

  /// Sleeps until the next trace entry is due; parked once the trace is
  /// exhausted (completions still arrive via inbox wakes).
  Tick next_wake_tick(Tick next_now) const override {
    if (!completions_.empty()) return next_now;
    const auto& entries = trace_->entries();
    if (cursor_ >= entries.size()) return kNeverTick;
    return std::max(next_now, clock_.to_ticks(entries[cursor_].t_seconds));
  }

  void on_engine_serial(bool serial) override { completions_.set_serial(serial); }

  std::size_t launched() const { return cursor_; }
  std::size_t in_flight() const { return live_.size(); }
  std::uint64_t completed() const { return completed_; }
  const std::map<std::string, OpStats>& stats() const { return stats_; }

  /// Snapshot round trip; live operations are rebuilt from their trace
  /// cursor position (the instance serial IS the cursor index).
  void archive_state(StateArchive& ar, HandlerRegistry& reg) override;

 private:
  struct CompletionMsg {
    /// Resolved on restore via the instance serial, never serialized.
    OperationInstance* instance;  // NOLINT(gdisim-snapshot-ptr) travels as (launcher id, serial)
    Tick end_tick;
  };

  std::unique_ptr<OperationInstance> make_instance(const TraceEntry& e, LaunchParams params);

  // Construction-time wiring, identical in the restored process.
  const WorkloadTrace* trace_;       // NOLINT(gdisim-snapshot-ptr) construction-time wiring
  const OperationCatalog* catalog_;  // NOLINT(gdisim-snapshot-ptr) ARCHIVE-TRANSIENT: construction-time wiring
  OperationContext* ctx_;  // NOLINT(gdisim-snapshot-ptr) ARCHIVE-TRANSIENT: construction-time wiring
  TickClock clock_;  // ARCHIVE-TRANSIENT: tick<->seconds conversion fixed at construction
  std::uint64_t seed_;
  std::size_t cursor_ = 0;
  /// In-flight operations keyed by instance serial (stable id, never an
  /// address).
  std::unordered_map<std::uint64_t, std::unique_ptr<OperationInstance>> live_;
  Inbox<CompletionMsg> completions_;
  std::uint64_t completed_ = 0;
  std::map<std::string, OpStats> stats_;
};

}  // namespace gdisim
