#include "software/workload.h"

#include <cmath>
#include <stdexcept>

namespace gdisim {

WorkloadCurve WorkloadCurve::constant(double value) {
  std::array<double, 24> h;
  h.fill(value);
  return WorkloadCurve(h);
}

WorkloadCurve WorkloadCurve::business_hours(double peak, double base, double start_hour,
                                            double end_hour, double ramp_hours) {
  std::array<double, 24> h;
  const double shift_len = std::fmod(end_hour - start_hour + 24.0, 24.0);
  for (int i = 0; i < 24; ++i) {
    const double into = std::fmod(static_cast<double>(i) - start_hour + 24.0, 24.0);
    double level = 0.0;
    if (into <= shift_len) {
      const double from_start = into;
      const double to_end = shift_len - into;
      level = 1.0;
      if (from_start < ramp_hours) level = from_start / ramp_hours;
      if (to_end < ramp_hours) level = std::min(level, to_end / ramp_hours);
    }
    h[i] = base + (peak - base) * level;
  }
  return WorkloadCurve(h);
}

double WorkloadCurve::at_hour(double hour) const {
  double t = std::fmod(hour, 24.0);
  if (t < 0) t += 24.0;
  const int i0 = static_cast<int>(t) % 24;
  const int i1 = (i0 + 1) % 24;
  const double frac = t - std::floor(t);
  return hourly_[i0] * (1.0 - frac) + hourly_[i1] * frac;
}

double WorkloadCurve::peak() const {
  double m = 0.0;
  for (double v : hourly_) m = std::max(m, v);
  return m;
}

WorkloadCurve WorkloadCurve::scaled(double factor) const {
  std::array<double, 24> h = hourly_;
  for (double& v : h) v *= factor;
  return WorkloadCurve(h);
}

OperationMix::OperationMix(std::vector<std::pair<std::string, double>> entries)
    : entries_(std::move(entries)) {
  double total = 0.0;
  for (const auto& [name, w] : entries_) {
    if (w < 0.0) throw std::invalid_argument("OperationMix: negative weight for " + name);
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("OperationMix: zero total weight");
  double acc = 0.0;
  cdf_.reserve(entries_.size());
  for (auto& [name, w] : entries_) {
    w /= total;
    acc += w;
    cdf_.push_back(acc);
  }
  cdf_.back() = 1.0;
}

OperationMix OperationMix::uniform(const std::vector<std::string>& ops) {
  std::vector<std::pair<std::string, double>> entries;
  entries.reserve(ops.size());
  for (const auto& op : ops) entries.emplace_back(op, 1.0);
  return OperationMix(std::move(entries));
}

const std::string& OperationMix::sample(double uniform01) const {
  return entries_[sample_index(uniform01)].first;
}

std::size_t OperationMix::sample_index(double uniform01) const {
  if (entries_.empty()) throw std::logic_error("OperationMix: empty");
  for (std::size_t i = 0; i < cdf_.size(); ++i) {
    if (uniform01 < cdf_[i]) return i;
  }
  return entries_.size() - 1;
}

}  // namespace gdisim
