#include "software/operation.h"

#include <stdexcept>

#include "core/audit.h"

namespace gdisim {

namespace {

TierKind role_tier(Role role) {
  switch (role) {
    case Role::AppServer: return TierKind::App;
    case Role::DbServer: return TierKind::Db;
    case Role::FileServer: return TierKind::Fs;
    case Role::IdxServer: return TierKind::Idx;
    default: throw std::logic_error("role_tier: not a server role");
  }
}

}  // namespace

DcId OperationContext::resolve_dc(const Endpoint& ep, DcId origin_dc, DcId owner_dc) const {
  switch (ep.dc) {
    case DcSelector::Local: return origin_dc;
    case DcSelector::Owner: return owner_dc == kInvalidDc ? master_dc_ : owner_dc;
    case DcSelector::Explicit: return ep.explicit_dc;
  }
  return origin_dc;
}

OperationContext::ResolvedServer OperationContext::resolve(const Endpoint& ep, DcId origin_dc,
                                                           DcId owner_dc,
                                                           std::uint64_t balance_key) const {
  ResolvedServer out;
  out.dc = resolve_dc(ep, origin_dc, owner_dc);
  if (ep.role == Role::Client) return out;

  const TierKind kind = role_tier(ep.role);
  Tier* tier = topology_->dc(out.dc).tier(kind);
  if (tier == nullptr) {
    // Slave data centers have no app/db/idx tiers: such traffic is served
    // by the master data center (thesis §6.3.1).
    out.dc = master_dc_;
    tier = topology_->dc(out.dc).tier(kind);
    if (tier == nullptr) {
      throw std::logic_error(std::string("OperationContext: no tier '") + tier_kind_name(kind) +
                             "' anywhere for role resolution");
    }
  }
  out.server = &tier->pick_server(balance_key);
  return out;
}

OperationInstance::OperationInstance(const CascadeSpec& spec, OperationContext& ctx,
                                     LaunchParams params, DoneFn done)
    : spec_(&spec), ctx_(&ctx), params_(params), done_(std::move(done)) {
  if (spec_->steps.empty()) throw std::invalid_argument("OperationInstance: empty cascade");
  name_hash_ = spec_->name_hash != 0 ? spec_->name_hash : stable_hash(spec_->name);
}

void OperationInstance::reset(const CascadeSpec& spec, const LaunchParams& params) {
  if (spec.steps.empty()) throw std::invalid_argument("OperationInstance: empty cascade");
  spec_ = &spec;
  params_ = params;
  name_hash_ = spec.name_hash != 0 ? spec.name_hash : stable_hash(spec.name);
  step_idx_ = 0;
  repeats_left_ = 0;
  start_tick_ = 0;
  branches_outstanding_.store(0, std::memory_order_relaxed);
  // branches_ keeps its (possibly oversized) storage: start_step()
  // re-initializes every field of the branches a step actually uses, and
  // archive_state only walks the current step's branch count.
}

void OperationInstance::start(Tick now) {
  GDISIM_AUDIT_JOB_SPAWNED(audit::Category::kOperation);
  start_tick_ = now;
  step_idx_ = 0;
  repeats_left_ = spec_->steps[0].repeat;
  start_step(now);
}

void OperationInstance::start_step(Tick now) {
  const Step& step = spec_->steps[step_idx_];
  // Reset in place instead of clear+resize: each branch's stage vector keeps
  // its capacity across steps/repeats, so route building stops allocating
  // after the first pass. Field values match a freshly-constructed
  // BranchState exactly (including local_seq, which feeds inbox ordering).
  if (branches_.size() < step.branches.size()) branches_.resize(step.branches.size());
  branches_outstanding_.store(static_cast<unsigned>(step.branches.size()),
                              std::memory_order_relaxed);
  for (std::size_t b = 0; b < step.branches.size(); ++b) {
    BranchState& br = branches_[b];
    br.sequence = &step.branches[b];
    br.msg_idx = 0;
    br.stages.clear();
    br.stage_idx = 0;
    br.local_seq = 0;
    br.held_memory = nullptr;
    br.held_bytes = 0.0;
    // Bit-identical to Rng(seed).split(name).split(to_string(...)) — the
    // hashes are cached/derived instead of re-hashing strings per step.
    br.rng = Rng(params_.rng_seed)
                 .split_hashed(name_hash_)
                 .split_hashed(stable_hash_decimal(step_idx_ * 1000 + b));
    start_message(b, now);
  }
}

void OperationInstance::start_message(std::size_t branch_idx, Tick now) {
  BranchState& br = branches_[branch_idx];
  // Loop past messages whose every stage was sub-tick ("instant").
  while (br.msg_idx < br.sequence->messages.size()) {
    const MessageSpec& m = br.sequence->messages[br.msg_idx];
    build_route(m, br, now);
    br.stage_idx = 0;
    if (!br.stages.empty()) {
      submit_stage(branch_idx, now);
      return;
    }
    finish_message(branch_idx, now);  // releases memory
    ++br.msg_idx;
  }
  finish_branch(now);
}

void OperationInstance::submit_stage(std::size_t branch_idx, Tick now) {
  BranchState& br = branches_[branch_idx];
  const Stage& stage = br.stages[br.stage_idx];
  // Per-branch sequence numbers keep inbox ordering deterministic even when
  // sibling branches post concurrently from different worker threads.
  const std::uint64_t seq = (params_.instance_serial << 24) |
                            (static_cast<std::uint64_t>(branch_idx) << 16) | br.local_seq++;
  stage.target->submit(now + 1, params_.launcher_id, seq,
                       StageJob{stage.work, this, branch_idx, stage.parallelism});
}

void OperationInstance::on_stage_complete(Component& /*at*/, Tick now, std::uint64_t tag) {
  const std::size_t branch_idx = static_cast<std::size_t>(tag);
  BranchState& br = branches_[branch_idx];
  if (++br.stage_idx < br.stages.size()) {
    submit_stage(branch_idx, now);
    return;
  }
  finish_message(branch_idx, now);
  ++br.msg_idx;  // finish_message leaves msg_idx on the finished message
  start_message(branch_idx, now);
}

void OperationInstance::finish_message(std::size_t branch_idx, Tick /*now*/) {
  BranchState& br = branches_[branch_idx];
  if (br.held_memory != nullptr) {
    br.held_memory->release(br.held_bytes);
    br.held_memory = nullptr;
    br.held_bytes = 0.0;
  }
}

void OperationInstance::finish_branch(Tick now) {
  if (branches_outstanding_.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
  // Last branch of the step: advance the cascade.
  if (--repeats_left_ > 0) {
    start_step(now);
    return;
  }
  if (++step_idx_ < spec_->steps.size()) {
    repeats_left_ = spec_->steps[step_idx_].repeat;
    start_step(now);
    return;
  }
  GDISIM_AUDIT_JOB_COMPLETED(audit::Category::kOperation);
  if (done_) done_(*this, now + 1);
}

void OperationInstance::archive_state(StateArchive& ar, HandlerRegistry& reg) {
  ar.section("op_instance");
  ar.i64(start_tick_);
  ar.size_value(step_idx_);
  std::uint32_t repeats = repeats_left_;
  ar.u32(repeats);
  repeats_left_ = repeats;
  std::uint32_t outstanding = branches_outstanding_.load(std::memory_order_relaxed);
  ar.u32(outstanding);
  branches_outstanding_.store(outstanding, std::memory_order_relaxed);

  // A finished instance parked in its launcher's completion inbox has
  // step_idx_ == steps.size() and no live branches; its kOperation spawn was
  // already balanced by a completion before the snapshot, so it is not
  // re-counted on read.
  const bool finished = step_idx_ >= spec_->steps.size();
  std::size_t nb = finished ? 0 : spec_->steps[step_idx_].branches.size();
  ar.size_value(nb);
  if (ar.reading()) {
    if (!finished) {
      ar.expect_equal(nb, spec_->steps[step_idx_].branches.size(), "cascade branch count");
      GDISIM_AUDIT_JOB_SPAWNED(audit::Category::kOperation);
    }
    // Exact-size the branch vector (it only ever grows during a run) so a
    // re-snapshot of the restored instance is byte-identical.
    branches_.resize(nb);
  }
  for (std::size_t b = 0; b < nb; ++b) {
    BranchState& br = branches_[b];
    if (ar.reading()) br.sequence = &spec_->steps[step_idx_].branches[b];
    ar.size_value(br.msg_idx);
    ar.size_value(br.stage_idx);
    ar.u32(br.local_seq);
    bool holds_memory = br.held_memory != nullptr;
    ar.boolean(holds_memory);
    if (holds_memory) {
      AgentId key = ar.writing() ? reg.memory_key(br.held_memory) : kInvalidAgent;
      ar.u32(key);
      if (ar.reading()) br.held_memory = reg.resolve_memory(key);
    } else if (ar.reading()) {
      br.held_memory = nullptr;
    }
    ar.f64(br.held_bytes);
    br.rng.archive_state(ar);
    std::size_t nstages = br.stages.size();
    ar.size_value(nstages);
    if (ar.reading()) br.stages.resize(nstages);
    for (std::size_t s = 0; s < nstages; ++s) {
      Stage& stage = br.stages[s];
      AgentId target = ar.writing() ? stage.target->id() : kInvalidAgent;
      ar.u32(target);
      if (ar.reading()) stage.target = static_cast<Component*>(reg.resolve_agent(target));
      ar.f64(stage.work);
      std::uint32_t parallelism = stage.parallelism;
      ar.u32(parallelism);
      stage.parallelism = parallelism;
    }
  }
}

void OperationInstance::build_route(const MessageSpec& m, BranchState& br, Tick now) {
  const double size_mb = m.size_mb_override.value_or(params_.size_mb);
  const ResourceVector cost = m.fixed + m.per_mb * size_mb;
  Topology& topo = ctx_->topology();

  const std::uint64_t from_key = br.rng.next_u64();
  const std::uint64_t to_key = br.rng.next_u64();
  const auto from = ctx_->resolve(m.from, params_.origin_dc, params_.owner_dc, from_key);
  const auto to = ctx_->resolve(m.to, params_.origin_dc, params_.owner_dc, to_key);

  const double tick = topo.dc(to.dc).dc_switch().tick_seconds();
  const double instant_below = ctx_->instant_fraction() * tick;

  std::vector<Stage>& stages = br.stages;
  stages.clear();
  auto add = [&stages, instant_below, now](Component* c, double work) {
    if (c == nullptr || work <= 0.0) return;
    const double rate = c->single_job_rate();
    if (rate > 0.0 && work / rate < instant_below) {
      c->account_instant(work, now);
      return;
    }
    stages.push_back(Stage{c, work});
  };

  const double bits = cost.net_bytes * 8.0;

  // Origin-side egress (server NICs are shared resources; client NICs are
  // folded into the client delay, thesis Eq. 3.3 note in DESIGN.md).
  if (from.server != nullptr) add(&from.server->nic(), bits);

  // WAN hops; a link stage always queues (never "instant") because its
  // propagation latency applies even to tiny payloads.
  for (LinkComponent* link : topo.route(from.dc, to.dc)) {
    stages.push_back(Stage{link, bits});
  }

  // Destination data center fabric.
  add(&topo.dc(to.dc).dc_switch(), bits);

  if (to.server != nullptr) {
    Tier* tier = topo.dc(to.dc).tier(role_tier(m.to.role));
    if (tier != nullptr) add(&tier->local_link(), bits);
    add(&to.server->nic(), bits);

    // Memory occupancy is held from the start of destination processing
    // until the message finishes (thesis Figure 3-5).
    if (cost.mem_bytes > 0.0) {
      to.server->memory().allocate(cost.mem_bytes);
      br.held_memory = &to.server->memory();
      br.held_bytes = cost.mem_bytes;
    }

    add(&to.server->cpu(), cost.cpu_cycles);
    if (m.cpu_parallelism > 1 && !stages.empty() &&
        stages.back().target == &to.server->cpu()) {
      stages.back().parallelism = m.cpu_parallelism;
    }

    if (cost.disk_bytes > 0.0) {
      const bool cache_hit =
          to.server->memory().storage_access_hits_cache(br.rng.next_double());
      if (!cache_hit) add(to.server->storage(), cost.disk_bytes);
    }
  } else {
    // Client destination: contention-free processing delay in seconds.
    const ClientMachineSpec& cm = topo.dc(to.dc).client_machine();
    const double delay =
        cost.cpu_cycles / cm.cpu_hz + cost.disk_bytes / cm.disk_Bps;
    add(&topo.dc(to.dc).client_station(), delay);
  }
}

}  // namespace gdisim
