#include "software/catalog.h"

#include <stdexcept>

namespace gdisim {

namespace {

// Client machines are nominally 2.4 GHz (hardware/datacenter.h); client-side
// work is specified here in seconds and converted to cycles.
constexpr double kClientHz = 2.4e9;

double client_s(double seconds) { return seconds * kClientHz; }

/// Request message client -> app server with the given app CPU seconds
/// (at the reference 2.5 GHz server core) and small metadata payload.
ResourceVector app_work(double cpu_seconds, double net_kb = 30.0, double mem_mb = 5.0,
                        double disk_kb = 0.0) {
  return {cpu_seconds * 2.5e9, net_kb * KB, mem_mb * MB, disk_kb * KB};
}

/// Response message server -> client with the given *client* CPU seconds.
ResourceVector client_work(double cpu_seconds, double net_kb = 80.0, double disk_kb = 0.0) {
  return {client_s(cpu_seconds), net_kb * KB, 0.0, disk_kb * KB};
}

/// A client <-> app round trip: request processed at the app tier, response
/// processed at the client.
void round_trip(CascadeBuilder& b, double app_cpu_s, double client_cpu_s,
                double req_kb = 30.0, double resp_kb = 80.0) {
  b.msg(Endpoint::client(), Endpoint::app_owner(), app_work(app_cpu_s, req_kb));
  b.msg(Endpoint::app_owner(), Endpoint::client(), client_work(client_cpu_s, resp_kb));
}

/// A client -> app -> {db|idx} -> app -> client metadata interaction.
void tiered_trip(CascadeBuilder& b, Endpoint mid, double app_cpu_s, double mid_cpu_s,
                 double client_cpu_s, double mid_disk_kb = 64.0) {
  b.msg(Endpoint::client(), Endpoint::app_owner(), app_work(app_cpu_s));
  b.msg(Endpoint::app_owner(), mid,
        ResourceVector{mid_cpu_s * 2.5e9, 24.0 * KB, 8.0 * MB, mid_disk_kb * KB});
  b.msg(mid, Endpoint::app_owner(), app_work(app_cpu_s * 0.5, 48.0));
  b.msg(Endpoint::app_owner(), Endpoint::client(), client_work(client_cpu_s, 40.0));
}

CascadeSpec cad_login() {
  CascadeBuilder b("CAD.LOGIN");
  b.step(2);
  round_trip(b, 0.75, 0.30);
  return b.build();
}

CascadeSpec cad_text_search() {
  // Queries the text index file hosted by T_app (thesis §5.2.2 op 2).
  CascadeBuilder b("CAD.TEXT-SEARCH");
  b.step(2);
  round_trip(b, 2.20, 0.50, 40.0, 120.0);
  return b.build();
}

CascadeSpec cad_filter() {
  CascadeBuilder b("CAD.FILTER");
  b.step(2);
  round_trip(b, 1.10, 0.30, 40.0, 100.0);
  return b.build();
}

CascadeSpec cad_explore() {
  CascadeBuilder b("CAD.EXPLORE");
  b.step(13);
  tiered_trip(b, Endpoint::db_owner(), 0.10, 0.20, 0.10);
  return b.build();
}

CascadeSpec cad_spatial_search() {
  CascadeBuilder b("CAD.SPATIAL-SEARCH");
  b.step(14);
  tiered_trip(b, Endpoint::idx_owner(), 0.10, 0.25, 0.45, 256.0);
  return b.build();
}

CascadeSpec cad_select() {
  CascadeBuilder b("CAD.SELECT");
  b.step(7);
  tiered_trip(b, Endpoint::db_owner(), 0.30, 0.30, 0.12);
  return b.build();
}

/// File transfer costs per MB shared by OPEN and SAVE. Client-side
/// processing (parsing/rendering CAD geometry) dominates, per the Ch. 5
/// observation that metadata operations are size-invariant while OPEN/SAVE
/// scale with the file.
struct TransferCost {
  double fs_cpu_s_per_mb;
  double fs_disk_mb_per_mb;
  double client_s_per_mb;
};

void file_transfer(CascadeBuilder& b, const TransferCost& t, bool upload) {
  if (upload) {
    // Client pushes the file: fs-side CPU + disk write on the request; a
    // small acknowledgement returns.
    b.msg(Endpoint::client(), Endpoint::fs_local(),
          ResourceVector{client_s(0.02), 16.0 * KB, 4.0 * MB, 0.0});
    b.spec_last_per_mb({t.fs_cpu_s_per_mb * 2.5e9, 1.0 * MB, 0.2 * MB, t.fs_disk_mb_per_mb * MB});
    b.msg(Endpoint::fs_local(), Endpoint::client(), client_work(0.05, 16.0));
    b.spec_last_per_mb({client_s(t.client_s_per_mb), 0.0, 0.0, 0.0});
  } else {
    // Token-less request, then the download whose payload and client-side
    // processing scale with the file size.
    b.msg(Endpoint::client(), Endpoint::fs_local(),
          ResourceVector{0.05 * 2.5e9, 16.0 * KB, 4.0 * MB, 0.0});
    b.spec_last_per_mb({t.fs_cpu_s_per_mb * 2.5e9, 0.0, 0.2 * MB, t.fs_disk_mb_per_mb * MB});
    b.msg(Endpoint::fs_local(), Endpoint::client(), client_work(0.05, 32.0));
    b.spec_last_per_mb({client_s(t.client_s_per_mb), 1.0 * MB, 0.0, 0.02 * MB});
  }
}

void token_trip(CascadeBuilder& b) {
  // OPEN/SAVE segment (1): obtain the file token and verify freshness in
  // T_db via T_app (thesis Figure 3-11).
  b.msg(Endpoint::client(), Endpoint::app_owner(), app_work(0.50));
  b.msg(Endpoint::app_owner(), Endpoint::db_owner(),
        ResourceVector{0.90 * 2.5e9, 24.0 * KB, 12.0 * MB, 3096.0 * KB});
  b.msg(Endpoint::db_owner(), Endpoint::app_owner(), app_work(0.28, 48.0));
  b.msg(Endpoint::app_owner(), Endpoint::client(), client_work(0.20, 40.0));
}

CascadeSpec cad_open() {
  CascadeBuilder b("CAD.OPEN");
  b.step();
  token_trip(b);
  b.step();
  file_transfer(b, TransferCost{0.070, 1.0, 1.00}, /*upload=*/false);
  return b.build();
}

CascadeSpec cad_save() {
  // ~20% more expensive than OPEN (thesis §5.2.3); the extra fixed cost is
  // client-side preparation (serialize/compress) before the upload.
  CascadeBuilder b("CAD.SAVE");
  b.step();
  token_trip(b);
  b.step();
  b.msg(Endpoint::app_owner(), Endpoint::client(), client_work(2.30, 16.0));
  b.step();
  file_transfer(b, TransferCost{0.088, 1.2, 1.15}, /*upload=*/true);
  return b.build();
}

/// VIS operations reuse the CAD cascades; only the R arrays differ
/// (thesis §6.3.2: "identical to the CAD operations ... the volume of the
/// data manipulated during file opening and saving is considerably
/// smaller"). The size difference comes from launch-time size_mb; the
/// lighter interactive costs are reflected here.
CascadeSpec vis_variant(const CascadeSpec& cad, const std::string& name, double cost_scale) {
  CascadeSpec out = cad;
  out.name = name;
  out.name_hash = stable_hash(name);  // the copy carries CAD's cached hash
  for (auto& step : out.steps) {
    for (auto& branch : step.branches) {
      for (auto& m : branch.messages) {
        m.fixed = m.fixed * cost_scale;
        m.per_mb = m.per_mb * cost_scale;
      }
    }
  }
  return out;
}

CascadeSpec vis_validate() {
  CascadeBuilder b("VIS.VALIDATE");
  b.step(4);
  tiered_trip(b, Endpoint::db_owner(), 0.04, 0.22, 0.16);
  return b.build();
}

/// PDM operations: long sequences of database transactions via T_app
/// (thesis §6.4.2).
CascadeSpec pdm_op(const std::string& name, unsigned db_trips, double db_cpu_s,
                   double transfer_scale = 0.0) {
  CascadeBuilder b(name);
  b.step(db_trips);
  tiered_trip(b, Endpoint::db_owner(), 0.04, db_cpu_s, 0.10);
  if (transfer_scale > 0.0) {
    b.step();
    b.msg(Endpoint::client(), Endpoint::fs_local(),
          ResourceVector{0.04 * 2.5e9, 16.0 * KB, 4.0 * MB, 0.0});
    b.spec_last_per_mb({0.05 * 2.5e9 * transfer_scale, 0.0, 0.0, transfer_scale * MB});
    b.msg(Endpoint::fs_local(), Endpoint::client(), client_work(0.05, 32.0));
    b.spec_last_per_mb({client_s(0.25 * transfer_scale), transfer_scale * MB, 0.0, 0.0});
  }
  return b.build();
}

}  // namespace

OperationCatalog OperationCatalog::standard() {
  OperationCatalog c;
  const CascadeSpec login = cad_login();
  const CascadeSpec text = cad_text_search();
  const CascadeSpec filter = cad_filter();
  const CascadeSpec explore = cad_explore();
  const CascadeSpec spatial = cad_spatial_search();
  const CascadeSpec select = cad_select();
  const CascadeSpec open = cad_open();
  const CascadeSpec save = cad_save();

  c.add(login);
  c.add(text);
  c.add(filter);
  c.add(explore);
  c.add(spatial);
  c.add(select);
  c.add(open);
  c.add(save);

  // VIS: same shapes, lighter interactive cost, much smaller files.
  c.add(vis_variant(login, "VIS.LOGIN", 0.8));
  c.add(vis_variant(text, "VIS.TEXT-SEARCH", 0.7));
  c.add(vis_variant(filter, "VIS.FILTER", 0.7));
  c.add(vis_variant(explore, "VIS.EXPLORE", 0.8));
  c.add(vis_variant(spatial, "VIS.SPATIAL-SEARCH", 0.8));
  c.add(vis_variant(select, "VIS.SELECT", 0.8));
  c.add(vis_variant(open, "VIS.OPEN", 0.9));
  c.add(vis_variant(save, "VIS.SAVE", 0.9));
  c.add(vis_validate());

  c.add(pdm_op("PDM.BILL-OF-MATERIALS", 10, 0.30));
  c.add(pdm_op("PDM.EXPAND", 8, 0.28));
  c.add(pdm_op("PDM.PROMOTE", 6, 0.32));
  c.add(pdm_op("PDM.UPDATE", 4, 0.35));
  c.add(pdm_op("PDM.EDIT", 4, 0.30));
  c.add(pdm_op("PDM.DOWNLOAD", 2, 0.20, /*transfer_scale=*/1.0));
  c.add(pdm_op("PDM.EXPORT", 3, 0.25, /*transfer_scale=*/0.5));
  return c;
}

void OperationCatalog::add(CascadeSpec spec) {
  // Always recompute: a spec derived by copy-and-rename (e.g. the VIS
  // variants of the CAD cascades) would otherwise carry the source's hash.
  spec.name_hash = stable_hash(spec.name);
  auto it = ops_.find(spec.name);
  if (it == ops_.end()) {
    spec.op_id = static_cast<std::uint32_t>(by_id_.size());
    it = ops_.emplace(spec.name, std::move(spec)).first;
    by_id_.push_back(&it->second);
  } else {
    // Replacing an existing op keeps its dense id so launcher stats tables
    // built against the old catalog stay index-compatible.
    spec.op_id = it->second.op_id;
    it->second = std::move(spec);
    by_id_[it->second.op_id] = &it->second;
  }
}

const CascadeSpec& OperationCatalog::get(const std::string& name) const {
  auto it = ops_.find(name);
  if (it == ops_.end()) throw std::out_of_range("OperationCatalog: unknown op " + name);
  return it->second;
}

std::vector<std::string> OperationCatalog::operations_of(const std::string& app) const {
  std::vector<std::string> out;
  const std::string prefix = app + ".";
  for (const auto& [name, spec] : ops_) {
    if (name.rfind(prefix, 0) == 0) out.push_back(name);
  }
  return out;
}

CascadeSpec make_synchrep_cascade(DcId master_dc,
                                  const std::vector<std::pair<DcId, double>>& pull_mb,
                                  const std::vector<std::pair<DcId, double>>& push_mb) {
  CascadeSpec spec;
  spec.name = "BG.SYNCHREP";
  const Endpoint app_m = Endpoint::at(Role::AppServer, master_dc);
  const Endpoint db_m = Endpoint::at(Role::DbServer, master_dc);
  const Endpoint fs_m = Endpoint::at(Role::FileServer, master_dc);
  const Endpoint daemon{Role::Client, DcSelector::Explicit, master_dc};

  // Pull phase: parallel branches, one per source data center.
  Step pull;
  for (const auto& [dc, mb] : pull_mb) {
    Sequence s;
    // Daemon asks the db (via app) for the modified file list.
    s.messages.push_back(MessageSpec{daemon, app_m, ResourceVector{0.05 * 2.5e9, 16 * KB, 4 * MB, 0}, {}, std::nullopt});
    s.messages.push_back(MessageSpec{app_m, db_m, ResourceVector{0.20 * 2.5e9, 24 * KB, 8 * MB, 512 * KB}, {}, std::nullopt});
    s.messages.push_back(MessageSpec{db_m, app_m, ResourceVector{0.05 * 2.5e9, 24 * KB, 4 * MB, 0}, {}, std::nullopt});
    // Bulk copy: remote fs -> master fs. Work scales with the branch volume.
    MessageSpec bulk{Endpoint::at(Role::FileServer, dc), fs_m,
                     ResourceVector{0.02 * 2.5e9, 64 * KB, 8 * MB, 0},
                     ResourceVector{0.01 * 2.5e9, 1.0 * MB, 0.05 * MB, 1.0 * MB},
                     mb};
    s.messages.push_back(bulk);
    // Registration of received versions.
    s.messages.push_back(MessageSpec{fs_m, db_m, ResourceVector{0.10 * 2.5e9, 32 * KB, 4 * MB, 256 * KB}, {}, std::nullopt});
    s.messages.push_back(MessageSpec{db_m, daemon, ResourceVector{0, 16 * KB, 0, 0}, {}, std::nullopt});
    pull.branches.push_back(std::move(s));
  }
  if (!pull.branches.empty()) spec.steps.push_back(std::move(pull));

  // Push phase: parallel branches, one per destination data center.
  Step push;
  for (const auto& [dc, mb] : push_mb) {
    Sequence s;
    s.messages.push_back(MessageSpec{daemon, db_m, ResourceVector{0.10 * 2.5e9, 16 * KB, 4 * MB, 256 * KB}, {}, std::nullopt});
    MessageSpec bulk{fs_m, Endpoint::at(Role::FileServer, dc),
                     ResourceVector{0.02 * 2.5e9, 64 * KB, 8 * MB, 0},
                     ResourceVector{0.01 * 2.5e9, 1.0 * MB, 0.05 * MB, 1.0 * MB},
                     mb};
    s.messages.push_back(bulk);
    s.messages.push_back(MessageSpec{Endpoint::at(Role::FileServer, dc), db_m,
                                     ResourceVector{0.05 * 2.5e9, 32 * KB, 4 * MB, 128 * KB}, {},
                                     std::nullopt});
    s.messages.push_back(MessageSpec{db_m, daemon, ResourceVector{0, 16 * KB, 0, 0}, {}, std::nullopt});
    push.branches.push_back(std::move(s));
  }
  if (!push.branches.empty()) spec.steps.push_back(std::move(push));

  if (spec.steps.empty()) {
    // Nothing to move: a single daemon<->db heartbeat keeps duration small
    // but nonzero.
    Step s;
    Sequence seq;
    seq.messages.push_back(MessageSpec{daemon, db_m, ResourceVector{0.02 * 2.5e9, 8 * KB, 1 * MB, 0}, {}, std::nullopt});
    seq.messages.push_back(MessageSpec{db_m, daemon, ResourceVector{0, 8 * KB, 0, 0}, {}, std::nullopt});
    s.branches.push_back(std::move(seq));
    spec.steps.push_back(std::move(s));
  }
  return spec;
}

CascadeSpec make_indexbuild_cascade(DcId master_dc, double volume_mb,
                                    unsigned index_parallelism) {
  CascadeSpec spec;
  spec.name = "BG.INDEXBUILD";
  const Endpoint fs_m = Endpoint::at(Role::FileServer, master_dc);
  const Endpoint idx_m = Endpoint::at(Role::IdxServer, master_dc);
  const Endpoint db_m = Endpoint::at(Role::DbServer, master_dc);
  const Endpoint daemon{Role::Client, DcSelector::Explicit, master_dc};

  Step s;
  Sequence seq;
  seq.messages.push_back(MessageSpec{daemon, db_m, ResourceVector{0.10 * 2.5e9, 16 * KB, 4 * MB, 256 * KB}, {}, std::nullopt});
  // Flagged files stream from fs into the index tier; indexing is CPU-heavy
  // (relationship analysis + snapshot generation) and hard to parallelize.
  seq.messages.push_back(MessageSpec{db_m, fs_m, ResourceVector{0.05 * 2.5e9, 16 * KB, 4 * MB, 0},
                                     ResourceVector{0, 0, 0, 0.2 * MB}, volume_mb});
  seq.messages.push_back(MessageSpec{fs_m, idx_m,
                                     ResourceVector{0.10 * 2.5e9, 64 * KB, 16 * MB, 0},
                                     ResourceVector{1.80 * 2.5e9, 1.0 * MB, 0.1 * MB, 0.4 * MB},
                                     volume_mb, index_parallelism});
  seq.messages.push_back(MessageSpec{idx_m, db_m, ResourceVector{0.10 * 2.5e9, 64 * KB, 4 * MB, 512 * KB}, {}, std::nullopt});
  seq.messages.push_back(MessageSpec{db_m, daemon, ResourceVector{0, 16 * KB, 0, 0}, {}, std::nullopt});
  s.branches.push_back(std::move(seq));
  spec.steps.push_back(std::move(s));
  return spec;
}

}  // namespace gdisim
