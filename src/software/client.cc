#include "software/client.h"

#include <algorithm>
#include <cmath>

namespace gdisim {

void BinnedResponse::record(double hour_of_day, double seconds) {
  double h = std::fmod(hour_of_day, 24.0);
  if (h < 0) h += 24.0;
  int bin = static_cast<int>(h * 2.0);
  if (bin >= kBins) bin = kBins - 1;
  sum_[bin] += seconds;
  ++count_[bin];
}

std::vector<std::pair<double, double>> BinnedResponse::series() const {
  std::vector<std::pair<double, double>> out;
  for (int b = 0; b < kBins; ++b) {
    if (count_[b] == 0) continue;
    out.emplace_back((b + 0.5) / 2.0, sum_[b] / static_cast<double>(count_[b]));
  }
  return out;
}

ClientPopulation::ClientPopulation(ClientPopulationConfig config, const OperationCatalog& catalog,
                                   OperationContext& ctx, TickClock clock)
    : config_(std::move(config)),
      catalog_(&catalog),
      ctx_(&ctx),
      clock_(clock),
      rng_(Rng(config_.seed).split(config_.name)) {
  set_name("clients/" + config_.name);
  completions_.bind_owner(this);
  if (config_.behavior == ClientBehavior::kSessionScript && config_.session_script.empty()) {
    throw std::invalid_argument("ClientPopulation: session script behavior without a script");
  }
  const std::size_t cap = static_cast<std::size_t>(config_.curve.peak()) + 1;
  slots_.resize(cap);
  // Stagger session starting points so scripted clients do not stampede the
  // same operation simultaneously.
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    slots_[i].script_pos = static_cast<std::uint32_t>(
        config_.session_script.empty() ? 0 : i % config_.session_script.size());
  }
  // Scanning every slot on every tick dominates large scenarios; a 0.25 s
  // launch granularity is negligible against multi-second think times.
  scan_every_ = std::max<Tick>(1, clock_.to_ticks(0.25));
}

void ClientPopulation::on_tick(Tick now) {
  if (now < next_scan_) return;
  next_scan_ = now + scan_every_;
  const double hour = clock_.to_seconds(now) / 3600.0;
  logged_in_ = static_cast<std::size_t>(std::lround(config_.curve.at_hour(hour)));
  logged_in_ = std::min(logged_in_, slots_.size());
  for (std::size_t i = 0; i < logged_in_; ++i) {
    Slot& slot = slots_[i];
    if (!slot.busy && slot.ready_at <= now) launch(i, now);
  }
}

void ClientPopulation::launch(std::size_t slot_idx, Tick now) {
  Slot& slot = slots_[slot_idx];
  const std::string& op_name =
      config_.behavior == ClientBehavior::kSessionScript
          ? config_.session_script[slot.script_pos++ % config_.session_script.size()]
          : config_.mix.sample(rng_.next_double());
  double size_mb = config_.file_size_mb;
  if (config_.file_size_jitter > 0.0) {
    size_mb *= 1.0 + config_.file_size_jitter * (2.0 * rng_.next_double() - 1.0);
  }
  DcId owner = kInvalidDc;
  if (owner_sampler_) owner = owner_sampler_(config_.dc, rng_.next_double());

  LaunchParams params;
  params.origin_dc = config_.dc;
  params.owner_dc = owner;
  params.size_mb = size_mb;
  params.instance_serial = next_serial_++;
  params.launcher_id = id();
  params.rng_seed = stable_hash(config_.name) ^ (params.instance_serial * 0x9e3779b97f4a7c15ULL);

  auto instance = make_instance(op_name, params, slot_idx);
  OperationInstance* raw = instance.get();
  live_.emplace(params.instance_serial, LiveOp{std::move(instance), slot_idx});
  slots_[slot_idx].busy = true;
  ++active_;
  if (recorder_) recorder_(clock_.to_seconds(now), op_name, config_.dc, owner, size_mb);
  raw->start(now);
}

std::unique_ptr<OperationInstance> ClientPopulation::make_instance(const std::string& op_name,
                                                                   LaunchParams params,
                                                                   std::size_t slot_idx) {
  return std::make_unique<OperationInstance>(
      catalog_->get(op_name), *ctx_, params,
      [this, slot_idx](OperationInstance& inst, Tick end_tick) {
        completions_.post(end_tick, id(), inst.params().instance_serial,
                          CompletionMsg{&inst, slot_idx, end_tick});
      });
}

void ClientPopulation::on_interactions(Tick now) {
  for (auto& d : completions_.drain_visible(now)) {
    const CompletionMsg& msg = d.payload;
    const double duration =
        msg.instance->duration_seconds(clock_, msg.end_tick);
    const double end_hour = clock_.to_seconds(msg.end_tick) / 3600.0;
    const std::string& op = msg.instance->op_name();
    stats_[op].record(duration);
    binned_[op].record(end_hour, duration);
    ++completed_;

    Slot& slot = slots_[msg.slot];
    slot.busy = false;
    const double think = config_.think_model == ThinkTimeModel::kFixed
                             ? config_.think_time_mean_s
                             : rng_.next_exponential(config_.think_time_mean_s);
    slot.ready_at = msg.end_tick + clock_.to_ticks(think);
    --active_;
    live_.erase(msg.instance->params().instance_serial);
  }
}

namespace {

/// std::map keeps the byte stream in key order on both directions.
template <typename T>
void archive_stats_map(StateArchive& ar, std::map<std::string, T>& m) {
  std::size_t n = m.size();
  ar.size_value(n);
  if (ar.writing()) {
    for (auto& [name, value] : m) {
      std::string key = name;
      ar.str(key);
      value.archive_state(ar);
    }
  } else {
    m.clear();
    for (std::size_t i = 0; i < n; ++i) {
      std::string key;
      ar.str(key);
      m[key].archive_state(ar);
    }
  }
}

}  // namespace

void ClientPopulation::archive_state(StateArchive& ar, HandlerRegistry& reg) {
  Agent::archive_state(ar, reg);
  ar.section("population");
  rng_.archive_state(ar);
  std::size_t nslots = slots_.size();
  ar.size_value(nslots);
  ar.expect_equal(nslots, slots_.size(), "client slot count");
  for (Slot& slot : slots_) {
    ar.i64(slot.ready_at);
    ar.boolean(slot.busy);
    ar.u32(slot.script_pos);
  }
  ar.i64(next_scan_);
  ar.u64(next_serial_);
  ar.size_value(logged_in_);
  ar.size_value(active_);
  ar.u64(completed_);

  // Live operations travel sorted by serial. Every instance is (re)bound in
  // the handler registry under (launcher id, serial) before any component
  // archives the queue entries that point at it.
  std::size_t nlive = live_.size();
  ar.size_value(nlive);
  if (ar.writing()) {
    std::vector<std::uint64_t> serials;
    serials.reserve(live_.size());
    for (auto& [serial, op] : live_) serials.push_back(serial);
    std::sort(serials.begin(), serials.end());
    for (std::uint64_t serial : serials) {
      LiveOp& op = live_.at(serial);
      std::uint64_t s = serial;
      ar.u64(s);
      std::string op_name = op.instance->op_name();
      ar.str(op_name);
      std::uint32_t owner = op.instance->params().owner_dc;
      ar.u32(owner);
      double size_mb = op.instance->params().size_mb;
      ar.f64(size_mb);
      ar.size_value(op.slot);
      reg.bind(id(), serial, op.instance.get());
      op.instance->archive_state(ar, reg);
    }
  } else {
    live_.clear();
    for (std::size_t i = 0; i < nlive; ++i) {
      std::uint64_t serial = 0;
      ar.u64(serial);
      std::string op_name;
      ar.str(op_name);
      std::uint32_t owner = kInvalidDc;
      ar.u32(owner);
      double size_mb = 0.0;
      ar.f64(size_mb);
      std::size_t slot_idx = 0;
      ar.size_value(slot_idx);
      LaunchParams params;
      params.origin_dc = config_.dc;
      params.owner_dc = owner;
      params.size_mb = size_mb;
      params.instance_serial = serial;
      params.launcher_id = id();
      params.rng_seed = stable_hash(config_.name) ^ (serial * 0x9e3779b97f4a7c15ULL);
      auto instance = make_instance(op_name, params, slot_idx);
      reg.bind(id(), serial, instance.get());
      instance->archive_state(ar, reg);
      live_.emplace(serial, LiveOp{std::move(instance), slot_idx});
    }
  }

  // Pending completion messages re-link their instance pointer through the
  // freshly-rebuilt live table.
  completions_.archive_state(ar, [this](StateArchive& a, CompletionMsg& msg) {
    std::uint64_t serial = a.writing() ? msg.instance->params().instance_serial : 0;
    a.u64(serial);
    a.size_value(msg.slot);
    a.i64(msg.end_tick);
    if (a.reading()) msg.instance = live_.at(serial).instance.get();
  });

  archive_stats_map(ar, stats_);
  archive_stats_map(ar, binned_);
}

SeriesLauncher::SeriesLauncher(SeriesLauncherConfig config, const OperationCatalog& catalog,
                               OperationContext& ctx, TickClock clock)
    : config_(std::move(config)),
      catalog_(&catalog),
      ctx_(&ctx),
      clock_(clock),
      rng_(Rng(config_.seed).split(config_.name)) {
  set_name("series/" + config_.name);
  completions_.bind_owner(this);
  interval_ticks_ = std::max<Tick>(1, clock_.to_ticks(config_.interval_s));
  if (config_.stop_after_s >= 0.0) stop_tick_ = clock_.to_ticks(config_.stop_after_s);
}

void SeriesLauncher::on_tick(Tick now) {
  if (now >= next_launch_ && now < stop_tick_ && !config_.series.empty()) {
    launch_op(nullptr, Run{0}, now);
    next_launch_ = now + interval_ticks_;
  }
}

void SeriesLauncher::launch_op(OperationInstance* /*prev*/, Run run, Tick now) {
  const SeriesOp& so = config_.series[run.next_op];

  LaunchParams params;
  params.origin_dc = config_.dc;
  params.owner_dc = kInvalidDc;
  params.size_mb = so.size_mb;
  params.instance_serial = next_serial_++;
  params.launcher_id = id();
  params.rng_seed = stable_hash(config_.name) ^ (params.instance_serial * 0x9e3779b97f4a7c15ULL);

  auto instance = make_instance(so, params);
  OperationInstance* raw = instance.get();
  live_.emplace(params.instance_serial, LiveOp{std::move(instance), run});
  raw->start(now);
}

std::unique_ptr<OperationInstance> SeriesLauncher::make_instance(const SeriesOp& so,
                                                                 LaunchParams params) {
  return std::make_unique<OperationInstance>(
      catalog_->get(so.op), *ctx_, params,
      [this](OperationInstance& inst, Tick end_tick) {
        completions_.post(end_tick, id(), inst.params().instance_serial,
                          CompletionMsg{&inst, end_tick});
      });
}

void SeriesLauncher::archive_state(StateArchive& ar, HandlerRegistry& reg) {
  Agent::archive_state(ar, reg);
  ar.section("series_launcher");
  rng_.archive_state(ar);
  ar.i64(next_launch_);
  ar.u64(next_serial_);
  ar.u64(series_completed_);

  std::size_t nlive = live_.size();
  ar.size_value(nlive);
  if (ar.writing()) {
    std::vector<std::uint64_t> serials;
    serials.reserve(live_.size());
    for (auto& [serial, op] : live_) serials.push_back(serial);
    std::sort(serials.begin(), serials.end());
    for (std::uint64_t serial : serials) {
      LiveOp& op = live_.at(serial);
      std::uint64_t s = serial;
      ar.u64(s);
      ar.size_value(op.run.next_op);
      reg.bind(id(), serial, op.instance.get());
      op.instance->archive_state(ar, reg);
    }
  } else {
    live_.clear();
    for (std::size_t i = 0; i < nlive; ++i) {
      std::uint64_t serial = 0;
      ar.u64(serial);
      Run run;
      ar.size_value(run.next_op);
      const SeriesOp& so = config_.series.at(run.next_op);
      LaunchParams params;
      params.origin_dc = config_.dc;
      params.owner_dc = kInvalidDc;
      params.size_mb = so.size_mb;
      params.instance_serial = serial;
      params.launcher_id = id();
      params.rng_seed = stable_hash(config_.name) ^ (serial * 0x9e3779b97f4a7c15ULL);
      auto instance = make_instance(so, params);
      reg.bind(id(), serial, instance.get());
      instance->archive_state(ar, reg);
      live_.emplace(serial, LiveOp{std::move(instance), run});
    }
  }

  completions_.archive_state(ar, [this](StateArchive& a, CompletionMsg& msg) {
    std::uint64_t serial = a.writing() ? msg.instance->params().instance_serial : 0;
    a.u64(serial);
    a.i64(msg.end_tick);
    if (a.reading()) msg.instance = live_.at(serial).instance.get();
  });

  archive_stats_map(ar, stats_);
}

void SeriesLauncher::on_interactions(Tick now) {
  for (auto& d : completions_.drain_visible(now)) {
    const CompletionMsg& msg = d.payload;
    const double duration = msg.instance->duration_seconds(clock_, msg.end_tick);
    stats_[msg.instance->op_name()].record(duration);

    Run run = live_.at(msg.instance->params().instance_serial).run;
    live_.erase(msg.instance->params().instance_serial);

    run.next_op += 1;
    if (run.next_op < config_.series.size()) {
      launch_op(nullptr, run, now);
    } else {
      ++series_completed_;
    }
  }
}

}  // namespace gdisim
