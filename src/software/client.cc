#include "software/client.h"

#include <algorithm>
#include <cmath>
#include <functional>

namespace gdisim {

void BinnedResponse::record(double hour_of_day, double seconds) {
  double h = std::fmod(hour_of_day, 24.0);
  if (h < 0) h += 24.0;
  int bin = static_cast<int>(h * 2.0);
  if (bin >= kBins) bin = kBins - 1;
  sum_[bin] += seconds;
  ++count_[bin];
}

std::vector<std::pair<double, double>> BinnedResponse::series() const {
  std::vector<std::pair<double, double>> out;
  for (int b = 0; b < kBins; ++b) {
    if (count_[b] == 0) continue;
    out.emplace_back((b + 0.5) / 2.0, sum_[b] / static_cast<double>(count_[b]));
  }
  return out;
}

void OpStatsTable::archive_state(StateArchive& ar) {
  // Byte layout identical to archiving std::map<std::string, T> directly
  // (count, then name-sorted (key, payload) pairs): an op is present exactly
  // when its stats count > 0, and — the recording invariant of both
  // launchers — binned data is recorded iff stats are, so the same presence
  // test drives both blocks.
  if (ar.writing()) {
    std::size_t n = 0;
    catalog_->for_each([&](const CascadeSpec& s) {
      if (stats_[s.op_id].count > 0) ++n;
    });
    ar.size_value(n);
    catalog_->for_each([&](const CascadeSpec& s) {
      if (stats_[s.op_id].count == 0) return;
      std::string key = s.name;
      ar.str(key);
      stats_[s.op_id].archive_state(ar);
    });
  } else {
    stats_.assign(catalog_->op_count(), OpStats{});
    std::size_t n = 0;
    ar.size_value(n);
    for (std::size_t i = 0; i < n; ++i) {
      std::string key;
      ar.str(key);
      stats_[catalog_->get(key).op_id].archive_state(ar);
    }
    dirty_ = true;
  }
  if (!with_binned_) return;
  if (ar.writing()) {
    std::size_t n = 0;
    catalog_->for_each([&](const CascadeSpec& s) {
      if (stats_[s.op_id].count > 0) ++n;
    });
    ar.size_value(n);
    catalog_->for_each([&](const CascadeSpec& s) {
      if (stats_[s.op_id].count == 0) return;
      std::string key = s.name;
      ar.str(key);
      binned_[s.op_id].archive_state(ar);
    });
  } else {
    binned_.assign(catalog_->op_count(), BinnedResponse{});
    std::size_t n = 0;
    ar.size_value(n);
    for (std::size_t i = 0; i < n; ++i) {
      std::string key;
      ar.str(key);
      binned_[catalog_->get(key).op_id].archive_state(ar);
    }
  }
}

void OpStatsTable::rebuild_views() const {
  stats_view_.clear();
  binned_view_.clear();
  catalog_->for_each([&](const CascadeSpec& s) {
    const OpStats& st = stats_[s.op_id];
    if (st.count == 0) return;
    stats_view_.emplace(s.name, st);
    if (with_binned_) binned_view_.emplace(s.name, binned_[s.op_id]);
  });
  dirty_ = false;
}

ClientPopulation::ClientPopulation(ClientPopulationConfig config, const OperationCatalog& catalog,
                                   OperationContext& ctx, TickClock clock)
    : config_(std::move(config)),
      catalog_(&catalog),
      ctx_(&ctx),
      clock_(clock),
      rng_(Rng(config_.seed).split(config_.name)) {
  set_name("clients/" + config_.name);
  completions_.bind_owner(this);
  if (config_.behavior == ClientBehavior::kSessionScript && config_.session_script.empty()) {
    throw std::invalid_argument("ClientPopulation: session script behavior without a script");
  }
  const std::size_t cap = static_cast<std::size_t>(config_.curve.peak()) + 1;
  slots_.resize(cap);
  // Stagger session starting points so scripted clients do not stampede the
  // same operation simultaneously.
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    slots_[i].script_pos = static_cast<std::uint32_t>(
        config_.session_script.empty() ? 0 : i % config_.session_script.size());
  }
  // Scanning every slot on every tick dominates large scenarios; a 0.25 s
  // launch granularity is negligible against multi-second think times.
  scan_every_ = std::max<Tick>(1, clock_.to_ticks(0.25));

  name_hash_ = stable_hash(config_.name);
  live_by_slot_.resize(slots_.size());
  // Every slot can have at most one operation in flight, so the completion
  // inbox never holds more than slot-capacity deliveries: reserve that once
  // and the mailbox never regrows mid-run.
  completions_.reserve_total(slots_.size());
  op_stats_.init(catalog, /*with_binned=*/true);
  mix_specs_.reserve(config_.mix.entries().size());
  for (const auto& [op, weight] : config_.mix.entries()) {
    mix_specs_.push_back(&catalog.get(op));
  }
  script_specs_.reserve(config_.session_script.size());
  for (const auto& op : config_.session_script) script_specs_.push_back(&catalog.get(op));
  done_ = [this](OperationInstance& inst, Tick end_tick) {
    completions_.post(end_tick, id(), inst.params().instance_serial,
                      CompletionMsg{&inst, inst.params().launcher_tag, end_tick});
  };
  rebuild_wake_index();
}

void ClientPopulation::rebuild_wake_index() {
  think_heap_.clear();
  parked_.clear();
  parked_min_ = kNoParked;
  parked_sorted_ = true;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (!slots_[i].busy) {
      think_heap_.emplace_back(slots_[i].ready_at, static_cast<std::uint32_t>(i));
    }
  }
  std::make_heap(think_heap_.begin(), think_heap_.end(), std::greater<>());
}

void ClientPopulation::park(std::uint32_t idx) {
  if (!parked_.empty() && idx < parked_.back()) parked_sorted_ = false;
  parked_.push_back(idx);
  if (idx < parked_min_) parked_min_ = idx;
}

void ClientPopulation::on_tick(Tick now) {
  if (now < next_scan_) return;
  next_scan_ = now + scan_every_;
  const double hour = clock_.to_seconds(now) / 3600.0;
  logged_in_ = static_cast<std::size_t>(std::lround(config_.curve.at_hour(hour)));
  logged_in_ = std::min(logged_in_, slots_.size());

  // Collect this scan's launch set: think times that just expired, plus any
  // parked (long-ready) slots the rising workload curve now covers. Slots
  // above the waterline park with no further per-scan cost; busy or still-
  // thinking slots are never visited — idle clients cost zero.
  launch_scratch_.clear();
  while (!think_heap_.empty() && think_heap_.front().first <= now) {
    std::pop_heap(think_heap_.begin(), think_heap_.end(), std::greater<>());
    const std::uint32_t idx = think_heap_.back().second;
    think_heap_.pop_back();
    if (idx < logged_in_) {
      launch_scratch_.push_back(idx);
    } else {
      park(idx);
    }
  }
  if (parked_min_ < logged_in_) {
    if (!parked_sorted_) {
      std::sort(parked_.begin(), parked_.end());
      parked_sorted_ = true;
    }
    const auto split = std::lower_bound(parked_.begin(), parked_.end(),
                                        static_cast<std::uint32_t>(logged_in_));
    launch_scratch_.insert(launch_scratch_.end(), parked_.begin(), split);
    parked_.erase(parked_.begin(), split);
    parked_min_ = parked_.empty() ? kNoParked : parked_.front();
  }
  if (launch_scratch_.empty()) return;
  // Ascending slot order: the exact launch (and therefore RNG draw) order
  // the former linear 0..logged_in_ scan produced.
  std::sort(launch_scratch_.begin(), launch_scratch_.end());
  for (std::uint32_t idx : launch_scratch_) launch(idx, now);
}

void ClientPopulation::launch(std::size_t slot_idx, Tick now) {
  Slot& slot = slots_[slot_idx];
  const CascadeSpec* spec =
      config_.behavior == ClientBehavior::kSessionScript
          ? script_specs_[slot.script_pos++ % script_specs_.size()]
          : mix_specs_[config_.mix.sample_index(rng_.next_double())];
  double size_mb = config_.file_size_mb;
  if (config_.file_size_jitter > 0.0) {
    size_mb *= 1.0 + config_.file_size_jitter * (2.0 * rng_.next_double() - 1.0);
  }
  DcId owner = kInvalidDc;
  if (owner_sampler_) owner = owner_sampler_(config_.dc, rng_.next_double());

  LaunchParams params;
  params.origin_dc = config_.dc;
  params.owner_dc = owner;
  params.size_mb = size_mb;
  params.instance_serial = next_serial_++;
  params.launcher_id = id();
  params.rng_seed = name_hash_ ^ (params.instance_serial * 0x9e3779b97f4a7c15ULL);
  params.launcher_tag = static_cast<std::uint32_t>(slot_idx);

  auto instance = acquire_instance(*spec, params);
  OperationInstance* raw = instance.get();
  live_by_slot_[slot_idx] = std::move(instance);
  slot.busy = true;
  ++active_;
  if (recorder_) recorder_(clock_.to_seconds(now), spec->name, config_.dc, owner, size_mb);
  raw->start(now);
}

std::unique_ptr<OperationInstance> ClientPopulation::acquire_instance(
    const CascadeSpec& spec, const LaunchParams& params) {
  if (!instance_pool_.empty()) {
    auto instance = std::move(instance_pool_.back());
    instance_pool_.pop_back();
    instance->reset(spec, params);
    return instance;
  }
  return std::make_unique<OperationInstance>(spec, *ctx_, params, done_);
}

void ClientPopulation::on_interactions(Tick now) {
  completions_.drain_visible_into(now, drain_scratch_);
  for (auto& d : drain_scratch_) {
    const CompletionMsg& msg = d.payload;
    const double duration = msg.instance->duration_seconds(clock_, msg.end_tick);
    const double end_hour = clock_.to_seconds(msg.end_tick) / 3600.0;
    const std::uint32_t op_id = msg.instance->op_id();
    op_stats_.record(op_id, duration);
    op_stats_.record_binned(op_id, end_hour, duration);
    ++completed_;

    Slot& slot = slots_[msg.slot];
    slot.busy = false;
    const double think = config_.think_model == ThinkTimeModel::kFixed
                             ? config_.think_time_mean_s
                             : rng_.next_exponential(config_.think_time_mean_s);
    slot.ready_at = msg.end_tick + clock_.to_ticks(think);
    --active_;
    think_heap_.emplace_back(slot.ready_at, static_cast<std::uint32_t>(msg.slot));
    std::push_heap(think_heap_.begin(), think_heap_.end(), std::greater<>());
    instance_pool_.push_back(std::move(live_by_slot_[msg.slot]));
  }
}

void ClientPopulation::archive_state(StateArchive& ar, HandlerRegistry& reg) {
  Agent::archive_state(ar, reg);
  ar.section("population");
  rng_.archive_state(ar);
  std::size_t nslots = slots_.size();
  ar.size_value(nslots);
  ar.expect_equal(nslots, slots_.size(), "client slot count");
  for (Slot& slot : slots_) {
    ar.i64(slot.ready_at);
    ar.boolean(slot.busy);
    ar.u32(slot.script_pos);
  }
  ar.i64(next_scan_);
  ar.u64(next_serial_);
  ar.size_value(logged_in_);
  ar.size_value(active_);
  ar.u64(completed_);

  // Live operations travel sorted by serial. Every instance is (re)bound in
  // the handler registry under (launcher id, serial) before any component
  // archives the queue entries that point at it.
  std::size_t nlive = 0;
  for (const auto& inst : live_by_slot_) {
    if (inst) ++nlive;
  }
  ar.size_value(nlive);
  if (ar.writing()) {
    std::vector<std::pair<std::uint64_t, std::uint32_t>> order;  // (serial, slot)
    order.reserve(nlive);
    for (std::size_t i = 0; i < live_by_slot_.size(); ++i) {
      if (live_by_slot_[i]) {
        order.emplace_back(live_by_slot_[i]->params().instance_serial,
                           static_cast<std::uint32_t>(i));
      }
    }
    std::sort(order.begin(), order.end());
    for (const auto& [serial, slot_idx] : order) {
      OperationInstance* inst = live_by_slot_[slot_idx].get();
      std::uint64_t s = serial;
      ar.u64(s);
      std::string op_name = inst->op_name();
      ar.str(op_name);
      std::uint32_t owner = inst->params().owner_dc;
      ar.u32(owner);
      double size_mb = inst->params().size_mb;
      ar.f64(size_mb);
      std::size_t slot_sz = slot_idx;
      ar.size_value(slot_sz);
      reg.bind(id(), serial, inst);
      inst->archive_state(ar, reg);
    }
  } else {
    live_by_slot_.clear();
    live_by_slot_.resize(slots_.size());
    instance_pool_.clear();
    for (std::size_t i = 0; i < nlive; ++i) {
      std::uint64_t serial = 0;
      ar.u64(serial);
      std::string op_name;
      ar.str(op_name);
      std::uint32_t owner = kInvalidDc;
      ar.u32(owner);
      double size_mb = 0.0;
      ar.f64(size_mb);
      std::size_t slot_idx = 0;
      ar.size_value(slot_idx);
      LaunchParams params;
      params.origin_dc = config_.dc;
      params.owner_dc = owner;
      params.size_mb = size_mb;
      params.instance_serial = serial;
      params.launcher_id = id();
      params.rng_seed = name_hash_ ^ (serial * 0x9e3779b97f4a7c15ULL);
      params.launcher_tag = static_cast<std::uint32_t>(slot_idx);
      auto instance = std::make_unique<OperationInstance>(catalog_->get(op_name), *ctx_,
                                                          params, done_);
      reg.bind(id(), serial, instance.get());
      instance->archive_state(ar, reg);
      live_by_slot_.at(slot_idx) = std::move(instance);
    }
  }

  // Pending completion messages re-link their instance pointer through the
  // freshly-rebuilt live table.
  std::unordered_map<std::uint64_t, OperationInstance*> by_serial;
  if (ar.reading()) {
    for (const auto& inst : live_by_slot_) {
      if (inst) by_serial.emplace(inst->params().instance_serial, inst.get());
    }
  }
  completions_.archive_state(ar, [&by_serial](StateArchive& a, CompletionMsg& msg) {
    std::uint64_t serial = a.writing() ? msg.instance->params().instance_serial : 0;
    a.u64(serial);
    a.size_value(msg.slot);
    a.i64(msg.end_tick);
    if (a.reading()) msg.instance = by_serial.at(serial);
  });

  op_stats_.archive_state(ar);
  if (ar.reading()) rebuild_wake_index();
}

SeriesLauncher::SeriesLauncher(SeriesLauncherConfig config, const OperationCatalog& catalog,
                               OperationContext& ctx, TickClock clock)
    : config_(std::move(config)),
      catalog_(&catalog),
      ctx_(&ctx),
      clock_(clock),
      rng_(Rng(config_.seed).split(config_.name)) {
  set_name("series/" + config_.name);
  completions_.bind_owner(this);
  interval_ticks_ = std::max<Tick>(1, clock_.to_ticks(config_.interval_s));
  if (config_.stop_after_s >= 0.0) stop_tick_ = clock_.to_ticks(config_.stop_after_s);
  name_hash_ = stable_hash(config_.name);
  op_stats_.init(catalog, /*with_binned=*/false);
}

void SeriesLauncher::on_tick(Tick now) {
  if (now >= next_launch_ && now < stop_tick_ && !config_.series.empty()) {
    launch_op(nullptr, Run{0}, now);
    next_launch_ = now + interval_ticks_;
  }
}

void SeriesLauncher::launch_op(OperationInstance* /*prev*/, Run run, Tick now) {
  const SeriesOp& so = config_.series[run.next_op];

  LaunchParams params;
  params.origin_dc = config_.dc;
  params.owner_dc = kInvalidDc;
  params.size_mb = so.size_mb;
  params.instance_serial = next_serial_++;
  params.launcher_id = id();
  params.rng_seed = name_hash_ ^ (params.instance_serial * 0x9e3779b97f4a7c15ULL);

  auto instance = make_instance(so, params);
  OperationInstance* raw = instance.get();
  live_.emplace(params.instance_serial, LiveOp{std::move(instance), run});
  raw->start(now);
}

std::unique_ptr<OperationInstance> SeriesLauncher::make_instance(const SeriesOp& so,
                                                                 LaunchParams params) {
  return std::make_unique<OperationInstance>(
      catalog_->get(so.op), *ctx_, params,
      [this](OperationInstance& inst, Tick end_tick) {
        completions_.post(end_tick, id(), inst.params().instance_serial,
                          CompletionMsg{&inst, end_tick});
      });
}

void SeriesLauncher::archive_state(StateArchive& ar, HandlerRegistry& reg) {
  Agent::archive_state(ar, reg);
  ar.section("series_launcher");
  rng_.archive_state(ar);
  ar.i64(next_launch_);
  ar.u64(next_serial_);
  ar.u64(series_completed_);

  std::size_t nlive = live_.size();
  ar.size_value(nlive);
  if (ar.writing()) {
    std::vector<std::uint64_t> serials;
    serials.reserve(live_.size());
    for (auto& [serial, op] : live_) serials.push_back(serial);
    std::sort(serials.begin(), serials.end());
    for (std::uint64_t serial : serials) {
      LiveOp& op = live_.at(serial);
      std::uint64_t s = serial;
      ar.u64(s);
      ar.size_value(op.run.next_op);
      reg.bind(id(), serial, op.instance.get());
      op.instance->archive_state(ar, reg);
    }
  } else {
    live_.clear();
    for (std::size_t i = 0; i < nlive; ++i) {
      std::uint64_t serial = 0;
      ar.u64(serial);
      Run run;
      ar.size_value(run.next_op);
      const SeriesOp& so = config_.series.at(run.next_op);
      LaunchParams params;
      params.origin_dc = config_.dc;
      params.owner_dc = kInvalidDc;
      params.size_mb = so.size_mb;
      params.instance_serial = serial;
      params.launcher_id = id();
      params.rng_seed = name_hash_ ^ (serial * 0x9e3779b97f4a7c15ULL);
      auto instance = make_instance(so, params);
      reg.bind(id(), serial, instance.get());
      instance->archive_state(ar, reg);
      live_.emplace(serial, LiveOp{std::move(instance), run});
    }
  }

  completions_.archive_state(ar, [this](StateArchive& a, CompletionMsg& msg) {
    std::uint64_t serial = a.writing() ? msg.instance->params().instance_serial : 0;
    a.u64(serial);
    a.i64(msg.end_tick);
    if (a.reading()) msg.instance = live_.at(serial).instance.get();
  });

  op_stats_.archive_state(ar);
}

void SeriesLauncher::on_interactions(Tick now) {
  completions_.drain_visible_into(now, drain_scratch_);
  for (auto& d : drain_scratch_) {
    const CompletionMsg& msg = d.payload;
    const double duration = msg.instance->duration_seconds(clock_, msg.end_tick);
    op_stats_.record(msg.instance->op_id(), duration);

    Run run = live_.at(msg.instance->params().instance_serial).run;
    live_.erase(msg.instance->params().instance_serial);

    run.next_op += 1;
    if (run.next_op < config_.series.size()) {
      launch_op(nullptr, run, now);
    } else {
      ++series_completed_;
    }
  }
}

}  // namespace gdisim
