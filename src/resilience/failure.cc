#include "resilience/failure.h"

#include <stdexcept>

namespace gdisim {

FailureEvent FailureEvent::link_down(double at_s, DcId from, DcId to) {
  FailureEvent e;
  e.at_seconds = at_s;
  e.kind = Kind::kLinkDown;
  e.from = from;
  e.to = to;
  return e;
}

FailureEvent FailureEvent::link_up(double at_s, DcId from, DcId to) {
  FailureEvent e = link_down(at_s, from, to);
  e.kind = Kind::kLinkUp;
  return e;
}

FailureEvent FailureEvent::server_down(double at_s, DcId dc, TierKind tier, std::size_t index) {
  FailureEvent e;
  e.at_seconds = at_s;
  e.kind = Kind::kServerDown;
  e.dc = dc;
  e.tier = tier;
  e.server_index = index;
  return e;
}

FailureEvent FailureEvent::server_up(double at_s, DcId dc, TierKind tier, std::size_t index) {
  FailureEvent e = server_down(at_s, dc, tier, index);
  e.kind = Kind::kServerUp;
  return e;
}

void FailureInjector::schedule(FailureEvent event) {
  schedule_.push_back(event);
  done_.push_back(false);
}

void FailureInjector::install(SimulationLoop& loop) {
  const TickClock clock = loop.clock();
  loop.add_pre_tick_hook([this, clock](Tick now) { apply_due(now, clock); });
}

std::size_t FailureInjector::pending() const {
  std::size_t n = 0;
  for (bool d : done_) {
    if (!d) ++n;
  }
  return n;
}

void FailureInjector::apply_due(Tick now, const TickClock& clock) {
  const double t = clock.to_seconds(now);
  for (std::size_t i = 0; i < schedule_.size(); ++i) {
    if (done_[i] || schedule_[i].at_seconds > t) continue;
    apply(schedule_[i], t);
    done_[i] = true;
  }
}

void FailureInjector::apply(const FailureEvent& event, double at_seconds) {
  AppliedFailure record;
  record.at_seconds = at_seconds;
  switch (event.kind) {
    case FailureEvent::Kind::kLinkDown:
      topology_->set_link_usable(event.from, event.to, false);
      record.description = "link down: " + topology_->dc(event.from).name() + "->" +
                           topology_->dc(event.to).name();
      break;
    case FailureEvent::Kind::kLinkUp:
      topology_->set_link_usable(event.from, event.to, true);
      record.description = "link up: " + topology_->dc(event.from).name() + "->" +
                           topology_->dc(event.to).name();
      break;
    case FailureEvent::Kind::kServerDown:
    case FailureEvent::Kind::kServerUp: {
      Tier* tier = topology_->dc(event.dc).tier(event.tier);
      if (tier == nullptr) throw std::logic_error("FailureInjector: no such tier");
      const bool up = event.kind == FailureEvent::Kind::kServerUp;
      tier->set_server_alive(event.server_index, up);
      record.description = std::string(up ? "server up: " : "server down: ") + tier->name() +
                           "/s" + std::to_string(event.server_index);
      break;
    }
  }
  applied_.push_back(std::move(record));
}

}  // namespace gdisim
