// Failure injection (thesis §1.1 motivation #3 "Continuous Failure" and
// Figure 1-1 applications #5 "Bottleneck Detection" / #7 "Internet Attack
// Protection").
//
// A FailureInjector holds a schedule of infrastructure events — WAN links
// going down/up, servers crashing/recovering — and applies them from a
// single-threaded pre-tick hook, so routing tables and load-balancer state
// mutate only between agent phases. Semantics: work already queued on a
// failed element drains; *new* messages route around it (links fail over to
// backup links, tiers skip dead servers).
#pragma once

#include <string>
#include <vector>

#include "core/sim_loop.h"
#include "hardware/topology.h"

namespace gdisim {

struct FailureEvent {
  enum class Kind {
    kLinkDown,
    kLinkUp,
    kServerDown,
    kServerUp,
  };

  double at_seconds = 0.0;
  Kind kind = Kind::kLinkDown;
  // Link events.
  DcId from = kInvalidDc;
  DcId to = kInvalidDc;
  // Server events.
  DcId dc = kInvalidDc;
  TierKind tier = TierKind::App;
  std::size_t server_index = 0;

  static FailureEvent link_down(double at_s, DcId from, DcId to);
  static FailureEvent link_up(double at_s, DcId from, DcId to);
  static FailureEvent server_down(double at_s, DcId dc, TierKind tier, std::size_t index);
  static FailureEvent server_up(double at_s, DcId dc, TierKind tier, std::size_t index);
};

/// Record of an applied event, for reports and assertions.
struct AppliedFailure {
  double at_seconds = 0.0;
  std::string description;
};

class FailureInjector {
 public:
  explicit FailureInjector(Topology& topology) : topology_(&topology) {}

  /// Schedules an event; events may be added in any order.
  void schedule(FailureEvent event);

  /// Registers the pre-tick hook on the loop. Call once, after all agents
  /// are registered.
  void install(SimulationLoop& loop);

  const std::vector<AppliedFailure>& applied() const { return applied_; }
  std::size_t pending() const;

 private:
  void apply_due(Tick now, const TickClock& clock);
  void apply(const FailureEvent& event, double at_seconds);

  Topology* topology_;
  std::vector<FailureEvent> schedule_;
  std::vector<bool> done_;
  std::vector<AppliedFailure> applied_;
};

}  // namespace gdisim
