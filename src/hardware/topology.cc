#include "hardware/topology.h"

#include <deque>
#include <stdexcept>

#include "core/archive.h"

namespace gdisim {

DcId Topology::add_datacenter(std::unique_ptr<DataCenter> dc) {
  const DcId id = static_cast<DcId>(dcs_.size());
  dc->set_id(id);
  dcs_.push_back(std::move(dc));
  routes_ready_ = false;
  return id;
}

LinkComponent& Topology::add_link(DcId from, DcId to, const LinkSpec& spec, bool usable) {
  auto key = std::make_pair(from, to);
  if (links_.count(key)) throw std::logic_error("Topology: duplicate link");
  auto link = std::make_unique<LinkComponent>(spec);
  link->set_name("link/" + dcs_[from]->name() + "->" + dcs_[to]->name());
  LinkComponent& ref = *link;
  links_[key] = std::move(link);
  link_usable_[key] = usable;
  routes_ready_ = false;
  return ref;
}

void Topology::add_duplex_link(DcId a, DcId b, const LinkSpec& spec, bool usable) {
  add_link(a, b, spec, usable);
  add_link(b, a, spec, usable);
}

DcId Topology::find_dc(const std::string& name) const {
  for (const auto& dc : dcs_) {
    if (dc->name() == name) return dc->id();
  }
  throw std::out_of_range("Topology: no data center named " + name);
}

LinkComponent* Topology::link(DcId from, DcId to) {
  auto it = links_.find(std::make_pair(from, to));
  return it == links_.end() ? nullptr : it->second.get();
}

void Topology::compute_routes() {
  const std::size_t n = dcs_.size();
  routes_.assign(n, std::vector<std::vector<LinkComponent*>>(n));
  for (DcId src = 0; src < n; ++src) {
    // BFS from src over usable links; neighbors visited in ascending id
    // order (std::map iteration), so tie-breaking is deterministic.
    std::vector<DcId> parent(n, kInvalidDc);
    std::vector<bool> seen(n, false);
    std::deque<DcId> frontier{src};
    seen[src] = true;
    while (!frontier.empty()) {
      const DcId u = frontier.front();
      frontier.pop_front();
      for (auto& [key, link] : links_) {
        if (key.first != u || !link_usable_[key]) continue;
        const DcId v = key.second;
        if (seen[v]) continue;
        seen[v] = true;
        parent[v] = u;
        frontier.push_back(v);
      }
    }
    for (DcId dst = 0; dst < n; ++dst) {
      if (dst == src || !seen[dst]) continue;
      std::vector<LinkComponent*> hops;
      for (DcId v = dst; v != src; v = parent[v]) {
        hops.push_back(links_.at(std::make_pair(parent[v], v)).get());
      }
      routes_[src][dst].assign(hops.rbegin(), hops.rend());
    }
  }
  routes_ready_ = true;
}

void Topology::set_link_usable(DcId from, DcId to, bool usable) {
  auto key = std::make_pair(from, to);
  if (!links_.count(key)) throw std::out_of_range("Topology: no such link");
  link_usable_[key] = usable;
  compute_routes();
}

bool Topology::link_usable(DcId from, DcId to) const {
  auto it = link_usable_.find(std::make_pair(from, to));
  return it != link_usable_.end() && it->second;
}

const std::vector<LinkComponent*>& Topology::route(DcId from, DcId to) const {
  if (!routes_ready_) throw std::logic_error("Topology: compute_routes() not called");
  const auto& r = routes_[from][to];
  if (from != to && r.empty()) {
    throw std::logic_error("Topology: no route " + dcs_[from]->name() + "->" + dcs_[to]->name());
  }
  return r;
}

std::vector<Component*> Topology::all_components() {
  std::vector<Component*> out;
  for (auto& dc : dcs_) {
    for (Component* c : dc->owned_components()) out.push_back(c);
  }
  for (auto& [key, link] : links_) out.push_back(link.get());
  return out;
}

void Topology::archive_failure_state(StateArchive& ar) {
  ar.section("topology");
  std::size_t ndc = dcs_.size();
  ar.size_value(ndc);
  ar.expect_equal(ndc, dcs_.size(), "data center count");
  for (auto& dc : dcs_) {
    for (unsigned k = 0; k < static_cast<unsigned>(TierKind::kCount); ++k) {
      if (Tier* tier = dc->tier(static_cast<TierKind>(k))) {
        tier->archive_failure_state(ar);
      }
    }
  }
  std::size_t nlinks = link_usable_.size();
  ar.size_value(nlinks);
  ar.expect_equal(nlinks, link_usable_.size(), "WAN link count");
  for (auto& [key, usable] : link_usable_) {
    bool value = usable;
    ar.boolean(value);
    usable = value;
  }
  if (ar.reading()) compute_routes();
}

void Topology::register_with(SimulationLoop& loop) {
  for (Component* c : all_components()) {
    c->set_tick_seconds(loop.clock().tick_seconds());
    loop.add_agent(c);
  }
}

}  // namespace gdisim
