#include "hardware/datacenter.h"

#include <stdexcept>

namespace gdisim {

DataCenter::DataCenter(std::string name, const SwitchSpec& sw, std::optional<SanSpec> san,
                       Rng rng)
    : name_(std::move(name)), rng_(rng) {
  switch_ = std::make_unique<SwitchComponent>(sw);
  switch_->set_name(name_ + "/switch");
  client_station_ = std::make_unique<DelayComponent>();
  client_station_->set_name(name_ + "/clients");
  if (san.has_value()) {
    san_ = std::make_unique<SanComponent>(*san, rng_.split("san"));
    san_->set_name(name_ + "/san");
  }
}

Tier& DataCenter::add_tier(TierKind kind, unsigned count, const ServerSpec& server_spec,
                           const LinkSpec& local_link_spec) {
  auto& slot = tiers_[static_cast<unsigned>(kind)];
  if (slot) throw std::logic_error("DataCenter: tier already present: " + name_);
  if (!server_spec.raid.has_value() && !san_) {
    throw std::logic_error("DataCenter: server without RAID requires a SAN: " + name_);
  }
  std::vector<std::unique_ptr<Server>> servers;
  servers.reserve(count);
  const std::string tier_name = name_ + "/" + tier_kind_name(kind);
  for (unsigned i = 0; i < count; ++i) {
    const std::string srv_name = tier_name + "/s" + std::to_string(i);
    servers.push_back(
        std::make_unique<Server>(server_spec, srv_name, rng_.split(srv_name), san_.get()));
  }
  slot = std::make_unique<Tier>(kind, tier_name, std::move(servers), local_link_spec);
  return *slot;
}

std::vector<Component*> DataCenter::owned_components() {
  std::vector<Component*> out{switch_.get(), client_station_.get()};
  if (san_) out.push_back(san_.get());
  for (auto& t : tiers_) {
    if (!t) continue;
    for (Component* c : t->owned_components()) out.push_back(c);
  }
  return out;
}

}  // namespace gdisim
