// Component: the agent base class for all hardware models.
//
// A component is a low-level hardware element (CPU, NIC, link, RAID, ...)
// modeled as a queue or network of queues (thesis §3.4.2). Stage jobs are
// submitted through a thread-safe, deterministic inbox; the interaction
// phase absorbs them into the discipline queue and the tick phase serves
// them. Completions are reported synchronously to the stage handler, which
// routes the in-flight message to its next component.
//
// Sub-tick stages: the route builder may decide that a stage's service
// demand is far below one tick (a 2 KB request on a 10 Gb/s switch). Such
// stages are not enqueued — their work is *accounted* against the component
// via account_instant() so utilization stays correct, and the message skips
// straight to its next stage. Heavily-loaded stages (bulk transfers, CPU
// bursts, disk I/O) always queue, so contention effects are preserved where
// they matter. This keeps the tick length an order of magnitude below the
// canonical costs, as the thesis requires, without making every metadata
// hop cost a full tick.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#include "core/agent.h"
#include "core/types.h"
#include "queueing/job.h"

namespace gdisim {

class Component;

/// Implemented by the software layer's in-flight message state. Called from
/// a component's tick phase when the message's current stage finishes; the
/// handler forwards the message to the next stage with visible_at = now + 1.
class StageCompletionHandler {
 public:
  virtual ~StageCompletionHandler() = default;
  virtual void on_stage_complete(Component& at, Tick now, std::uint64_t tag) = 0;
};

/// One unit of routed work: `work` is in the receiving component's service
/// unit (cycles, bits, bytes, seconds). `tag` is opaque handler context.
/// `parallelism` (thesis §9.1.1 "Multithreading", future work): CPU stages
/// with parallelism > 1 fork their cycles across up to that many cores and
/// join on completion; other components ignore it.
struct StageJob {
  double work = 0.0;
  /// Runtime-only pointer; snapshots re-express it as a HandlerKey
  /// (launcher AgentId + instance serial) via archive_stage_job.
  StageCompletionHandler* handler = nullptr;  // NOLINT(gdisim-snapshot-ptr) archived as a HandlerKey
  std::uint64_t tag = 0;
  unsigned parallelism = 1;
};

/// Snapshot round trip for one StageJob: the handler pointer travels as its
/// stable HandlerKey and is re-resolved against the live instances the
/// software layer (re)bound into the registry.
inline void archive_stage_job(StateArchive& ar, HandlerRegistry& reg, StageJob& job) {
  ar.f64(job.work);
  AgentId owner = kInvalidAgent;
  std::uint64_t serial = 0;
  if (ar.writing() && job.handler != nullptr) {
    const HandlerKey key = reg.key_of(job.handler);
    owner = key.owner;
    serial = key.serial;
  }
  ar.u32(owner);
  ar.u64(serial);
  if (ar.reading()) {
    job.handler = owner == kInvalidAgent ? nullptr : reg.resolve(HandlerKey{owner, serial});
  }
  ar.u64(job.tag);
  std::uint32_t parallelism = job.parallelism;
  ar.u32(parallelism);
  job.parallelism = parallelism;
}

/// Shared discipline archiver for single-queue components whose JobCtx is a
/// pool-owned StageJob copy (NIC, switch, link). The job table is streamed
/// in queue-enumeration order, so the ctx code for each queued job is simply
/// its enumeration position — stable, dense, and address-free.
template <typename Queue>
void archive_stagejob_queue(StateArchive& ar, HandlerRegistry& reg, Queue& queue,
                            JobPool<StageJob>& pool) {
  if (ar.writing()) {
    std::vector<StageJob*> order;
    queue.for_each_ctx([&order](JobCtx ctx) { order.push_back(static_cast<StageJob*>(ctx)); });
    std::size_t n = order.size();
    ar.size_value(n);
    for (StageJob* job : order) archive_stage_job(ar, reg, *job);
    std::uint64_t next = 0;
    queue.archive_state(ar, [&next](JobCtx) { return next++; }, {});
  } else {
    std::size_t n = 0;
    ar.size_value(n);
    std::vector<JobCtx> loaded;
    loaded.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      StageJob job;
      archive_stage_job(ar, reg, job);
      loaded.push_back(pool.create(job));
    }
    queue.archive_state(ar, {}, [&loaded](std::uint64_t idx) { return loaded.at(idx); });
  }
}

class Component : public Agent {
 public:
  Component() { inbox_.bind_owner(this); }

  /// Thread-safe submission; the job becomes serviceable at `visible_at`.
  /// (sender, seq) make the inbox drain order deterministic.
  void submit(Tick visible_at, AgentId sender, std::uint64_t seq, StageJob job) {
    inbox_.post(visible_at, sender, seq, job);
  }

  void on_interactions(Tick now) override {
    if (inbox_.empty()) return;
    inbox_.drain_visible_into(now, drain_scratch_);
    for (auto& d : drain_scratch_) accept(d.payload);
  }

  void on_engine_serial(bool serial) override { inbox_.set_serial(serial); }

  void on_tick(Tick now) final {
    // Load-then-store beats an unconditional exchange here: the bucket is
    // almost always zero, and any writer during tick `now` targets the
    // *other* parity bucket, so the non-atomic-looking sequence cannot lose
    // an update.
    std::atomic<double>& bucket = instant_buckets_[static_cast<std::size_t>(now) & 1];
    const double instant = bucket.load(std::memory_order_relaxed);
    if (instant != 0.0) {
      bucket.store(0.0, std::memory_order_relaxed);
      const double cap = capacity_per_second() * tick_seconds_;
      instant_fraction_ = cap > 0.0 ? instant / cap : 0.0;
    } else {
      instant_fraction_ = 0.0;  // 0 / cap — skip the virtual capacity call
    }
    advance_tick(now, tick_seconds_);
    window_accum_ += utilization();
  }

  /// Set by the infrastructure builder before the run starts.
  void set_tick_seconds(double s) { tick_seconds_ = s; }
  double tick_seconds() const { return tick_seconds_; }

  /// Capacity fraction used during the last tick, in [0, 1]; includes
  /// sub-tick accounted work.
  double utilization() const {
    return std::min(1.0, raw_utilization() + instant_fraction_);
  }

  /// Mean utilization since the previous call — what the measurement
  /// collection signal samples (thesis: snapshots average many per-tick
  /// samples). `now` is the sample tick; the denominator is wall ticks, not
  /// ticks executed, so a component parked by the active-set scheduler
  /// (which would have accumulated exactly zero on every skipped tick)
  /// reports the same mean as under the dense sweep. Resets the window.
  double take_window_utilization(Tick now) {
    const Tick span = now - window_start_tick_;
    const double u = span > 0 ? window_accum_ / static_cast<double>(span) : utilization();
    window_accum_ = 0.0;
    window_start_tick_ = now;
    return u;
  }

  /// Records work served "instantly" (below the sub-tick threshold) at tick
  /// `now`. Thread-safe; callable from any worker during routing. The work
  /// is folded into utilization at tick now + 1 regardless of how the
  /// accounting interleaves with this component's own tick phase — two
  /// buckets indexed by tick parity separate "accumulating" from "folding",
  /// which makes utilization attribution deterministic under any thread
  /// schedule and identical between scheduler modes.
  void account_instant(double work, Tick now) {
    GDISIM_AUDIT_NONNEG(work, "Component: negative instant work accounted");
    instant_buckets_[static_cast<std::size_t>(now + 1) & 1].fetch_add(
        work, std::memory_order_relaxed);
    request_wake();
  }

  /// Active when it has queued/in-service jobs, pending deliveries, or
  /// pending instant work; otherwise parked until a delivery or instant
  /// accounting wakes it. Residual state (last tick's raw_utilization /
  /// instant_fraction_) does NOT keep the component awake: the decay tick
  /// that would zero them contributes exactly 0 to every window accumulator
  /// (empty queue, empty bucket), so all collected series are unchanged —
  /// only the stale instantaneous utilization() value lingers, and nothing
  /// in the simulator probes it between wakes.
  Tick next_wake_tick(Tick next_now) const override {
    if (queue_length() > 0 || !inbox_.empty() ||
        instant_buckets_[0].load(std::memory_order_relaxed) != 0.0 ||
        instant_buckets_[1].load(std::memory_order_relaxed) != 0.0) {
      return next_now;
    }
    return kNeverTick;
  }

  /// Aggregate service capacity in work units per second (all servers).
  virtual double capacity_per_second() const = 0;

  /// Approximate service rate seen by a single job when the component is
  /// idle; used by the route builder's sub-tick decision.
  virtual double single_job_rate() const { return capacity_per_second(); }

  /// Jobs currently queued or in service.
  virtual std::size_t queue_length() const = 0;

  /// Snapshot round trip shared by every hardware component: agent base,
  /// undrained inbox, instant-work buckets and the utilization window, then
  /// the subclass discipline via archive_discipline().
  void archive_state(StateArchive& ar, HandlerRegistry& reg) override {
    Agent::archive_state(ar, reg);
    ar.section("component");
    inbox_.archive_state(ar, [&reg](StateArchive& a, StageJob& job) {
      archive_stage_job(a, reg, job);
    });
    double b0 = instant_buckets_[0].load(std::memory_order_relaxed);
    double b1 = instant_buckets_[1].load(std::memory_order_relaxed);
    ar.f64(b0);
    ar.f64(b1);
    if (ar.reading()) {
      instant_buckets_[0].store(b0, std::memory_order_relaxed);
      instant_buckets_[1].store(b1, std::memory_order_relaxed);
    }
    ar.f64(instant_fraction_);
    ar.f64(window_accum_);
    ar.i64(window_start_tick_);
    archive_discipline(ar, reg);
  }

 protected:
  /// Subclass hook: serialize the discipline queues and in-flight job
  /// contexts. Default: stateless discipline.
  virtual void archive_discipline(StateArchive& /*ar*/, HandlerRegistry& /*reg*/) {}
  /// Moves an absorbed job into the service discipline.
  virtual void accept(StageJob job) = 0;

  /// Advances the discipline by `dt` simulated seconds ending at tick now+1.
  virtual void advance_tick(Tick now, double dt) = 0;

  /// Utilization of the discipline queues during the last tick.
  virtual double raw_utilization() const = 0;

 private:
  Inbox<StageJob> inbox_;
  /// Reused drain buffer; its capacity amortizes across interaction phases.
  std::vector<Delivery<StageJob>> drain_scratch_;  // ARCHIVE-TRANSIENT: per-tick scratch; empty between ticks
  double tick_seconds_ = 0.0;  // ARCHIVE-TRANSIENT: clock configuration fixed at construction
  /// Tick-parity double buffer: work accounted at tick t lands in bucket
  /// (t+1)&1 and is folded by on_tick(t+1), which reads bucket (t+1)&1. The
  /// phase barrier separates all writers of a bucket from its reader.
  // GDISIM-SHARED: cross-agent work accounting; tick-parity buffering splits writers/reader
  std::atomic<double> instant_buckets_[2] = {0.0, 0.0};
  double instant_fraction_ = 0.0;
  double window_accum_ = 0.0;
  Tick window_start_tick_ = 0;
};

}  // namespace gdisim
