// Global topology: data centers connected by directed WAN links, with
// fewest-hop routing (thesis §3.2.1 "Global Topology" input).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/sim_loop.h"
#include "hardware/datacenter.h"
#include "hardware/link.h"

namespace gdisim {

class Topology {
 public:
  DcId add_datacenter(std::unique_ptr<DataCenter> dc);

  /// Directed WAN link. Secondary/backup links can be added with
  /// `usable == false`: they exist (and report utilization 0) but routing
  /// ignores them, matching the Ch. 6 treatment of L_EU->AFR / L_EU->AS1.
  LinkComponent& add_link(DcId from, DcId to, const LinkSpec& spec, bool usable = true);

  /// Adds both directions with the same spec.
  void add_duplex_link(DcId a, DcId b, const LinkSpec& spec, bool usable = true);

  DataCenter& dc(DcId id) { return *dcs_[id]; }
  const DataCenter& dc(DcId id) const { return *dcs_[id]; }
  std::size_t dc_count() const { return dcs_.size(); }
  DcId find_dc(const std::string& name) const;

  LinkComponent* link(DcId from, DcId to);

  /// Must be called after all links are added; computes fewest-hop routes
  /// (ties broken toward the lowest DC id, so routing is deterministic).
  void compute_routes();

  /// Runtime failover: marks a directed link (un)usable and recomputes
  /// routes. Must only be called while no agent phase is executing (e.g.
  /// from a SimulationLoop pre-tick hook). In-flight transfers drain on the
  /// old link; new messages follow the updated routes.
  void set_link_usable(DcId from, DcId to, bool usable);
  bool link_usable(DcId from, DcId to) const;

  /// The ordered list of links a transfer traverses from `from` to `to`
  /// (empty for from == to). Throws if unreachable.
  const std::vector<LinkComponent*>& route(DcId from, DcId to) const;

  /// Every component in the topology (links, switches, tiers, SANs, ...).
  std::vector<Component*> all_components();

  /// Registers all components with the loop and sets their tick length.
  void register_with(SimulationLoop& loop);

  /// Snapshot round trip of the failure-injection state: per-tier server
  /// liveness and per-link usability. Routes are recomputed on read.
  void archive_failure_state(StateArchive& ar);

 private:
  std::vector<std::unique_ptr<DataCenter>> dcs_;
  std::map<std::pair<DcId, DcId>, std::unique_ptr<LinkComponent>> links_;  // ARCHIVE-TRANSIENT: structural owners; links archive via the component walk
  std::map<std::pair<DcId, DcId>, bool> link_usable_;
  // routes_[from][to] = ordered links.
  std::vector<std::vector<std::vector<LinkComponent*>>> routes_;  // ARCHIVE-TRANSIENT: derived cache; compute_routes() rebuilds on load
  bool routes_ready_ = false;  // ARCHIVE-TRANSIENT: derived cache; compute_routes() rebuilds on load
};

}  // namespace gdisim
