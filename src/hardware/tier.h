// Tier holon: an array of identical server holons plus the local network
// link that connects them to the data center switch (thesis §3.4.3).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "hardware/link.h"
#include "hardware/server.h"

namespace gdisim {

enum class TierKind : unsigned { App = 0, Db, Fs, Idx, kCount };

const char* tier_kind_name(TierKind kind);

class Tier {
 public:
  Tier(TierKind kind, std::string name, std::vector<std::unique_ptr<Server>> servers,
       const LinkSpec& local_link_spec);

  TierKind kind() const { return kind_; }
  const std::string& name() const { return name_; }
  std::size_t server_count() const { return servers_.size(); }
  Server& server(std::size_t i) { return *servers_[i]; }

  /// Deterministic load balancing: the selection key (derived from the
  /// operation instance) maps uniformly onto *alive* servers, which
  /// converges to round-robin in aggregate while staying independent of
  /// thread timing. With every server down, requests still land on the
  /// first server (a degraded-mode choice: the alternative is dropping
  /// operations, which the cascade model cannot express).
  Server& pick_server(std::uint64_t key);

  /// Failure injection: dead servers are skipped by the load balancer; jobs
  /// already in their queues drain normally. Must only be called between
  /// agent phases (e.g. from a pre-tick hook).
  void set_server_alive(std::size_t index, bool alive);
  bool server_alive(std::size_t index) const { return alive_.at(index); }
  std::size_t alive_count() const;

  LinkComponent& local_link() { return *local_link_; }

  /// Mean CPU utilization across the tier's servers (the quantity plotted
  /// in Figures 5-7..5-10 and 6-12/6-13).
  double mean_cpu_utilization() const;

  /// Windowed variant for the collector: mean over all ticks since the
  /// previous collection signal (`now` is the sample tick).
  double take_window_cpu_utilization(Tick now);

  /// Total memory occupied across the tier, bytes (workload-driven model).
  double total_memory_occupied() const;

  std::vector<Component*> owned_components();

  /// Snapshot round trip of the failure-injection state (which servers are
  /// alive); the alive index is rebuilt on read.
  void archive_failure_state(StateArchive& ar);

 private:
  TierKind kind_;  // ARCHIVE-TRANSIENT: construction-time identity
  std::string name_;  // ARCHIVE-TRANSIENT: construction-time identity
  std::vector<std::unique_ptr<Server>> servers_;
  std::vector<bool> alive_;
  std::vector<std::size_t> alive_index_;  ///< indices of alive servers
  std::unique_ptr<LinkComponent> local_link_;  // ARCHIVE-TRANSIENT: structural owner; the link archives via the component walk
};

}  // namespace gdisim
