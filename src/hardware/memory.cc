#include "hardware/memory.h"

// MemoryComponent is header-only; this TU anchors the module in the build.

namespace gdisim {}  // namespace gdisim
