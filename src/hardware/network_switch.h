// Network switch: M/M/1 FCFS over bits (thesis Figure 3-6, center).
// Typically an order of magnitude faster than a NIC.
#pragma once

#include <memory>

#include "hardware/component.h"
#include "queueing/fcfs_queue.h"

namespace gdisim {

struct SwitchSpec {
  double rate_bps = 1e10;  ///< bits per second
};

class SwitchComponent final : public Component {
 public:
  explicit SwitchComponent(const SwitchSpec& spec) : spec_(spec), queue_(1, spec.rate_bps) {}

  std::size_t queue_length() const override { return queue_.total_jobs(); }
  const SwitchSpec& spec() const { return spec_; }
  double capacity_per_second() const override { return spec_.rate_bps; }

 protected:
  double raw_utilization() const override { return queue_.last_utilization(); }
  void accept(StageJob job) override { queue_.enqueue(job.work, pool_.create(job)); }

  void advance_tick(Tick now, double dt) override {
    queue_.advance(dt, completed_);
    for (JobCtx ctx : completed_) {
      StageJob* job = static_cast<StageJob*>(ctx);
      job->handler->on_stage_complete(*this, now, job->tag);
      pool_.destroy(job);
    }
  }

  void archive_discipline(StateArchive& ar, HandlerRegistry& reg) override {
    ar.section("switch");
    archive_stagejob_queue(ar, reg, queue_, pool_);
  }

 private:
  SwitchSpec spec_;  // ARCHIVE-TRANSIENT: hardware spec; construction-time configuration
  FcfsMultiServerQueue queue_;
  JobPool<StageJob> pool_;
  std::vector<JobCtx> completed_;  // ARCHIVE-TRANSIENT: per-tick scratch; drained before the tick ends
};

}  // namespace gdisim
