// Data center holon: tiers interconnected through a switch, an optional
// shared SAN, and a client-side delay station (thesis §3.4.3, Figure 3-9).
#pragma once

#include <array>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/rng.h"
#include "hardware/delay.h"
#include "hardware/network_switch.h"
#include "hardware/san.h"
#include "hardware/tier.h"

namespace gdisim {

using DcId = std::uint32_t;
inline constexpr DcId kInvalidDc = static_cast<DcId>(-1);

/// Client machine model used to turn client-side R costs into delay seconds
/// (clients are modeled without contention; see hardware/delay.h).
struct ClientMachineSpec {
  double cpu_hz = 2.4e9;
  double disk_Bps = 100e6;
};

class DataCenter {
 public:
  DataCenter(std::string name, const SwitchSpec& sw, std::optional<SanSpec> san, Rng rng);

  /// Adds a tier of `count` identical servers. Servers without a RaidSpec
  /// use the data center SAN.
  Tier& add_tier(TierKind kind, unsigned count, const ServerSpec& server_spec,
                 const LinkSpec& local_link_spec);

  /// Returns the tier of the given kind, or null if absent.
  Tier* tier(TierKind kind) { return tiers_[static_cast<unsigned>(kind)].get(); }
  const Tier* tier(TierKind kind) const { return tiers_[static_cast<unsigned>(kind)].get(); }

  SwitchComponent& dc_switch() { return *switch_; }
  DelayComponent& client_station() { return *client_station_; }
  SanComponent* san() { return san_.get(); }

  const std::string& name() const { return name_; }
  DcId id() const { return id_; }
  void set_id(DcId id) { id_ = id; }

  ClientMachineSpec& client_machine() { return client_machine_; }
  const ClientMachineSpec& client_machine() const { return client_machine_; }

  std::vector<Component*> owned_components();

 private:
  std::string name_;
  DcId id_ = kInvalidDc;
  Rng rng_;
  std::unique_ptr<SwitchComponent> switch_;
  std::unique_ptr<DelayComponent> client_station_;
  std::unique_ptr<SanComponent> san_;
  std::array<std::unique_ptr<Tier>, static_cast<unsigned>(TierKind::kCount)> tiers_;
  ClientMachineSpec client_machine_;
};

}  // namespace gdisim
