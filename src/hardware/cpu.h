// Multi-socket multi-core CPU: p x M/M/q FCFS (thesis §3.4.2, Figure 3-4).
//
// Each socket is an independent FCFS queue with q core-servers; the service
// rate of a core is its clock frequency in cycles per second. Incoming jobs
// (work = cycles) are placed on the socket with the fewest outstanding jobs
// (ties to the lowest index) — a deterministic stand-in for the OS
// scheduler. Hyper-threading is modeled by inflating q by an empirical
// speedup factor, as the thesis prescribes.
//
// Multithreaded jobs (thesis §9.1.1, future work): a stage with
// parallelism > 1 forks its cycles across up to that many cores of one
// socket and completes when every share has been served.
#pragma once

#include <vector>

#include "hardware/component.h"
#include "queueing/fcfs_queue.h"

namespace gdisim {

struct CpuSpec {
  unsigned sockets = 1;
  unsigned cores_per_socket = 4;
  double frequency_hz = 2.5e9;
  /// Effective-core multiplier for hyper-threading (1.0 = disabled).
  double smt_speedup = 1.0;

  unsigned effective_cores_per_socket() const {
    const double c = cores_per_socket * smt_speedup;
    return c < 1.0 ? 1u : static_cast<unsigned>(c);
  }
  unsigned total_cores() const { return sockets * cores_per_socket; }
};

class CpuComponent final : public Component {
 public:
  explicit CpuComponent(const CpuSpec& spec);

  std::size_t queue_length() const override;
  const CpuSpec& spec() const { return spec_; }

  double capacity_per_second() const override {
    return static_cast<double>(spec_.sockets) * spec_.effective_cores_per_socket() *
           spec_.frequency_hz;
  }
  double single_job_rate() const override { return spec_.frequency_hz; }

 protected:
  void accept(StageJob job) override;
  void advance_tick(Tick now, double dt) override;
  double raw_utilization() const override { return last_utilization_; }
  void archive_discipline(StateArchive& ar, HandlerRegistry& reg) override;

 private:
  struct PendingJob {
    StageJob stage;
    unsigned outstanding = 1;  ///< shares still in service (>1 for parallel jobs)
  };

  CpuSpec spec_;  // ARCHIVE-TRANSIENT: hardware spec; construction-time configuration
  std::vector<FcfsMultiServerQueue> sockets_;
  JobPool<PendingJob> pool_;
  std::vector<JobCtx> completed_;  // ARCHIVE-TRANSIENT: per-tick scratch; drained before the tick ends
  double last_utilization_ = 0.0;
};

}  // namespace gdisim
