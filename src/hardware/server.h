// Server holon (thesis §3.3.2): encapsulates a NIC, a multi-socket CPU,
// memory, and either a local RAID or a reference to the data center's shared
// SAN. The holon's state is the composition of its agents' states; the
// server itself is not an agent.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/rng.h"
#include "hardware/cpu.h"
#include "hardware/memory.h"
#include "hardware/nic.h"
#include "hardware/raid.h"
#include "hardware/san.h"

namespace gdisim {

struct ServerSpec {
  CpuSpec cpu;
  MemorySpec memory;
  NicSpec nic;
  /// Local storage; absent when the server uses the data center SAN.
  std::optional<RaidSpec> raid;
};

class Server {
 public:
  /// `san` may be null; then `spec.raid` must be present for servers that
  /// perform disk work.
  Server(const ServerSpec& spec, std::string name, Rng rng, SanComponent* san);

  NicComponent& nic() { return *nic_; }
  CpuComponent& cpu() { return *cpu_; }
  MemoryComponent& memory() { return *memory_; }

  /// The storage component serving this server's Rd work (RAID or shared
  /// SAN); null when the server has neither.
  Component* storage();

  const std::string& name() const { return name_; }
  const ServerSpec& spec() const { return spec_; }

  /// Agents owned by this holon (excludes the shared SAN).
  std::vector<Component*> owned_components();

 private:
  ServerSpec spec_;
  std::string name_;
  std::unique_ptr<NicComponent> nic_;
  std::unique_ptr<CpuComponent> cpu_;
  std::unique_ptr<MemoryComponent> memory_;
  std::unique_ptr<RaidComponent> raid_;
  SanComponent* san_ = nullptr;
};

}  // namespace gdisim
