// Network link: M/M/1/k PS with constant propagation latency (thesis
// Figure 3-6, right). Bandwidth is shared uniformly among up to k
// simultaneous transfers; latency is added to each task's processing time.
#pragma once

#include <memory>

#include "hardware/component.h"
#include "queueing/ps_queue.h"

namespace gdisim {

struct LinkSpec {
  double bandwidth_bps = 1e9;
  double latency_seconds = 0.0;
  std::size_t max_concurrent = 0;  ///< k; 0 = unlimited
  /// Fraction of raw bandwidth allocated to the simulated applications
  /// (Ch. 6 requirement: 20% of WAN capacity). Utilization is reported
  /// against the *allocated* capacity.
  double allocated_fraction = 1.0;
};

class LinkComponent final : public Component {
 public:
  explicit LinkComponent(const LinkSpec& spec)
      : spec_(spec),
        queue_(spec.bandwidth_bps * spec.allocated_fraction, spec.max_concurrent,
               spec.latency_seconds) {}

  std::size_t queue_length() const override { return queue_.total_jobs(); }
  const LinkSpec& spec() const { return spec_; }
  std::size_t active_transfers() const { return queue_.active(); }
  std::uint64_t completed_transfers() const { return queue_.completed_jobs(); }
  double capacity_per_second() const override {
    return spec_.bandwidth_bps * spec_.allocated_fraction;
  }

 protected:
  double raw_utilization() const override { return queue_.last_utilization(); }
  void accept(StageJob job) override { queue_.enqueue(job.work, pool_.create(job)); }

  void advance_tick(Tick now, double dt) override {
    queue_.advance(dt, completed_);
    for (JobCtx ctx : completed_) {
      StageJob* job = static_cast<StageJob*>(ctx);
      job->handler->on_stage_complete(*this, now, job->tag);
      pool_.destroy(job);
    }
  }

  void archive_discipline(StateArchive& ar, HandlerRegistry& reg) override {
    ar.section("link");
    archive_stagejob_queue(ar, reg, queue_, pool_);
  }

 private:
  LinkSpec spec_;  // ARCHIVE-TRANSIENT: hardware spec; construction-time configuration
  PsQueue queue_;
  JobPool<StageJob> pool_;
  std::vector<JobCtx> completed_;  // ARCHIVE-TRANSIENT: per-tick scratch; drained before the tick ends
};

}  // namespace gdisim
