// Memory model: caching + occupancy (thesis §3.4.2, Figure 3-5).
//
// Memory is the one component *not* modeled as a queue. It addresses two
// effects: (1) cache hits bypass the I/O queues entirely, and (2) occupancy
// — a message holds its Rm bytes allocated for the duration of its CPU/I/O
// processing. Occupancy uses an atomic counter because allocations arrive
// from whichever worker thread is executing the allocating agent.
//
// §5.3.3 of the thesis finds that real servers exhibit a *flat* memory
// profile dominated by kernel/runtime pools; `pool_reserved_bytes` models
// that floor so the bench for §5.3.3 can reproduce both behaviours.
#pragma once

#include <atomic>
#include <cstdint>

#include "core/archive.h"
#include "core/audit.h"
#include "core/rng.h"

namespace gdisim {

struct MemorySpec {
  double capacity_bytes = 32.0 * (1ull << 30);
  double cache_hit_rate = 0.0;  ///< probability an Rd access is served from RAM
  double pool_reserved_bytes = 0.0;  ///< OS/runtime pool floor (§5.3.3)
};

class MemoryComponent {
 public:
  explicit MemoryComponent(const MemorySpec& spec) : spec_(spec) {}

  /// Cache decision. The uniform variate is supplied by the *caller's* RNG
  /// stream (the operation instance), so concurrent routing from different
  /// worker threads stays deterministic and race-free.
  bool storage_access_hits_cache(double uniform01) const {
    return uniform01 < spec_.cache_hit_rate;
  }

  void allocate(double bytes) {
    GDISIM_AUDIT_NONNEG(bytes, "MemoryComponent: negative allocation");
    occupied_milli_.fetch_add(to_milli(bytes), std::memory_order_relaxed);
  }
  void release(double bytes) {
    GDISIM_AUDIT_NONNEG(bytes, "MemoryComponent: negative release");
#if GDISIM_AUDIT_ENABLED
    const std::int64_t before = occupied_milli_.fetch_sub(to_milli(bytes), std::memory_order_relaxed);
    GDISIM_AUDIT_CHECK(before - to_milli(bytes) >= 0,
                       "MemoryComponent: occupancy underflow (released more than allocated)");
#else
    occupied_milli_.fetch_sub(to_milli(bytes), std::memory_order_relaxed);
#endif
  }

  /// Workload-driven occupancy only (the model of §3.4.2).
  double occupied_bytes() const {
    return static_cast<double>(occupied_milli_.load(std::memory_order_relaxed)) / 1000.0;
  }

  /// Occupancy including the pool floor (the physical behaviour of §5.3.3).
  double observed_bytes() const {
    const double dynamic = occupied_bytes();
    return dynamic > spec_.pool_reserved_bytes ? dynamic : spec_.pool_reserved_bytes;
  }

  double utilization() const { return occupied_bytes() / spec_.capacity_bytes; }
  const MemorySpec& spec() const { return spec_; }

  /// Snapshot round trip: occupancy only — the spec is configuration. The
  /// held-allocation bookkeeping lives with the operation instances, which
  /// re-reference this component by its server's CPU AgentId.
  void archive_state(StateArchive& ar) {
    ar.section("memory");
    std::int64_t occupied = occupied_milli_.load(std::memory_order_relaxed);
    ar.i64(occupied);
    if (ar.reading()) occupied_milli_.store(occupied, std::memory_order_relaxed);
  }

 private:
  static std::int64_t to_milli(double bytes) { return static_cast<std::int64_t>(bytes * 1000.0); }

  MemorySpec spec_;  // ARCHIVE-TRANSIENT: hardware spec; construction-time configuration
  // GDISIM-SHARED: occupancy counter bumped by concurrent operation steps
  std::atomic<std::int64_t> occupied_milli_{0};
};

}  // namespace gdisim
