#include "hardware/tier.h"

#include <stdexcept>

#include "core/archive.h"

namespace gdisim {

const char* tier_kind_name(TierKind kind) {
  switch (kind) {
    case TierKind::App: return "app";
    case TierKind::Db: return "db";
    case TierKind::Fs: return "fs";
    case TierKind::Idx: return "idx";
    default: return "?";
  }
}

Tier::Tier(TierKind kind, std::string name, std::vector<std::unique_ptr<Server>> servers,
           const LinkSpec& local_link_spec)
    : kind_(kind), name_(std::move(name)), servers_(std::move(servers)) {
  if (servers_.empty()) throw std::invalid_argument("Tier: no servers");
  alive_.assign(servers_.size(), true);
  alive_index_.resize(servers_.size());
  for (std::size_t i = 0; i < servers_.size(); ++i) alive_index_[i] = i;
  local_link_ = std::make_unique<LinkComponent>(local_link_spec);
  local_link_->set_name(name_ + "/link");
}

Server& Tier::pick_server(std::uint64_t key) {
  if (alive_index_.empty()) return *servers_[0];  // degraded mode
  return *servers_[alive_index_[key % alive_index_.size()]];
}

void Tier::set_server_alive(std::size_t index, bool alive) {
  alive_.at(index) = alive;
  alive_index_.clear();
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    if (alive_[i]) alive_index_.push_back(i);
  }
}

std::size_t Tier::alive_count() const { return alive_index_.size(); }

void Tier::archive_failure_state(StateArchive& ar) {
  ar.section("tier");
  std::size_t n = alive_.size();
  ar.size_value(n);
  ar.expect_equal(n, alive_.size(), "tier server count");
  for (std::size_t i = 0; i < alive_.size(); ++i) {
    bool alive = alive_[i];
    ar.boolean(alive);
    alive_[i] = alive;
  }
  if (ar.reading()) {
    alive_index_.clear();
    for (std::size_t i = 0; i < servers_.size(); ++i) {
      if (alive_[i]) alive_index_.push_back(i);
    }
  }
}

double Tier::mean_cpu_utilization() const {
  double sum = 0.0;
  for (const auto& s : servers_) sum += s->cpu().utilization();
  return sum / static_cast<double>(servers_.size());
}

double Tier::take_window_cpu_utilization(Tick now) {
  double sum = 0.0;
  for (auto& s : servers_) sum += s->cpu().take_window_utilization(now);
  return sum / static_cast<double>(servers_.size());
}

double Tier::total_memory_occupied() const {
  double sum = 0.0;
  for (const auto& s : servers_) sum += s->memory().occupied_bytes();
  return sum;
}

std::vector<Component*> Tier::owned_components() {
  std::vector<Component*> out;
  for (auto& s : servers_) {
    for (Component* c : s->owned_components()) out.push_back(c);
  }
  out.push_back(local_link_.get());
  return out;
}

}  // namespace gdisim
