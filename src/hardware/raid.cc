#include "hardware/raid.h"

#include <stdexcept>
#include <unordered_map>

#include "core/archive.h"
#include "core/audit.h"

namespace gdisim {

RaidComponent::RaidComponent(const RaidSpec& spec, Rng rng)
    : spec_(spec), rng_(rng), dacc_(1, spec.dacc_rate_Bps) {
  if (spec.disks == 0) throw std::invalid_argument("RaidComponent: zero disks");
  dcc_.reserve(spec.disks);
  hdd_.reserve(spec.disks);
  for (unsigned i = 0; i < spec.disks; ++i) {
    dcc_.emplace_back(1, spec.dcc_rate_Bps);
    hdd_.emplace_back(1, spec.hdd_rate_Bps);
  }
}

void RaidComponent::accept(StageJob job) {
  GDISIM_AUDIT_NONNEG(job.work, "RaidComponent: negative work accepted");
  GDISIM_AUDIT_JOB_SPAWNED(audit::Category::kRaidJob);
  RaidJob* rj = jobs_.create(RaidJob{job, 0});
  dacc_.enqueue(job.work, rj);
}

void RaidComponent::complete(RaidJob* job, Tick now) {
  job->stage.handler->on_stage_complete(*this, now, job->stage.tag);
  GDISIM_AUDIT_JOB_COMPLETED(audit::Category::kRaidJob);
  jobs_.destroy(job);
}

void RaidComponent::fork(RaidJob* job) {
  job->outstanding = spec_.disks;
  const double share = job->stage.work / static_cast<double>(spec_.disks);
  for (unsigned i = 0; i < spec_.disks; ++i) {
    dcc_[i].enqueue(share, branch_jobs_.create(BranchJob{job}));
  }
}

void RaidComponent::finish_branch(BranchJob* branch, Tick now) {
  RaidJob* parent = branch->parent;
  branch_jobs_.destroy(branch);
  GDISIM_AUDIT_CHECK(parent->outstanding > 0,
                     "RaidComponent: branch completion with no outstanding branches");
  if (--parent->outstanding == 0) complete(parent, now);
}

void RaidComponent::advance_tick(Tick now, double dt) {
  // Stages drain into the shared scratch (cleared by the queue) so a busy
  // array advances without allocating.
  // 1. Disk array controller cache.
  dacc_.advance(dt, scratch_);
  for (JobCtx ctx : scratch_) {
    auto* job = static_cast<RaidJob*>(ctx);
    if (rng_.next_double() < spec_.dacc_hit_rate) {
      complete(job, now);
    } else {
      fork(job);
    }
  }

  // 2. Per-disk controller caches.
  for (unsigned i = 0; i < spec_.disks; ++i) {
    dcc_[i].advance(dt, scratch_);
    for (JobCtx ctx : scratch_) {
      auto* branch = static_cast<BranchJob*>(ctx);
      if (rng_.next_double() < spec_.dcc_hit_rate) {
        finish_branch(branch, now);
      } else {
        // Re-derive the branch share from the parent job.
        const double share =
            branch->parent->stage.work / static_cast<double>(spec_.disks);
        hdd_[i].enqueue(share, branch);
      }
    }
  }

  // 3. Disk drives.
  double disk_util = 0.0;
  for (unsigned i = 0; i < spec_.disks; ++i) {
    hdd_[i].advance(dt, scratch_);
    for (JobCtx ctx : scratch_) {
      finish_branch(static_cast<BranchJob*>(ctx), now);
    }
    disk_util += hdd_[i].last_utilization();
  }
  scratch_.clear();
  last_disk_utilization_ = disk_util / static_cast<double>(spec_.disks);
}

std::size_t RaidComponent::queue_length() const {
  return jobs_.live();
}

void RaidComponent::archive_discipline(StateArchive& ar, HandlerRegistry& reg) {
  ar.section("raid");
  std::size_t disks = dcc_.size();
  ar.size_value(disks);
  ar.expect_equal(disks, dcc_.size(), "raid disk count");
  rng_.archive_state(ar);
  if (ar.writing()) {
    // Pre-pass: enumerate every in-flight RaidJob/BranchJob in the same
    // deterministic order the queues will serialize (dacc, then dcc[i],
    // then hdd[i]); tables are streamed first so the read path can rebuild
    // the pool objects before re-linking the queue entries. Maps are
    // lookup-only, never iterated.
    std::vector<RaidJob*> job_order;
    std::unordered_map<RaidJob*, std::uint64_t> job_index;  // NOLINT(gdisim-ptr-key-decl) archive-local lookup; never iterated
    std::vector<BranchJob*> branch_order;
    std::unordered_map<BranchJob*, std::uint64_t> branch_index;  // NOLINT(gdisim-ptr-key-decl) archive-local lookup; never iterated
    const auto note_job = [&](RaidJob* job) {
      if (job_index.emplace(job, job_order.size()).second) job_order.push_back(job);
    };
    const auto note_branch = [&](BranchJob* branch) {
      note_job(branch->parent);
      if (branch_index.emplace(branch, branch_order.size()).second) {
        branch_order.push_back(branch);
      }
    };
    dacc_.for_each_ctx([&](JobCtx ctx) { note_job(static_cast<RaidJob*>(ctx)); });
    for (auto& q : dcc_) q.for_each_ctx([&](JobCtx ctx) { note_branch(static_cast<BranchJob*>(ctx)); });
    for (auto& q : hdd_) q.for_each_ctx([&](JobCtx ctx) { note_branch(static_cast<BranchJob*>(ctx)); });

    std::size_t nj = job_order.size();
    ar.size_value(nj);
    for (RaidJob* job : job_order) {
      archive_stage_job(ar, reg, job->stage);
      std::uint32_t outstanding = job->outstanding;
      ar.u32(outstanding);
    }
    std::size_t nb = branch_order.size();
    ar.size_value(nb);
    for (BranchJob* branch : branch_order) {
      std::uint64_t parent = job_index.at(branch->parent);
      ar.u64(parent);
    }
    const JobCtxEncoder enc_job = [&](JobCtx ctx) {
      return job_index.at(static_cast<RaidJob*>(ctx));
    };
    const JobCtxEncoder enc_branch = [&](JobCtx ctx) {
      return branch_index.at(static_cast<BranchJob*>(ctx));
    };
    dacc_.archive_state(ar, enc_job, {});
    for (auto& q : dcc_) q.archive_state(ar, enc_branch, {});
    for (auto& q : hdd_) q.archive_state(ar, enc_branch, {});
  } else {
    std::size_t nj = 0;
    ar.size_value(nj);
    std::vector<RaidJob*> jobs;
    jobs.reserve(nj);
    for (std::size_t i = 0; i < nj; ++i) {
      StageJob stage;
      archive_stage_job(ar, reg, stage);
      std::uint32_t outstanding = 0;
      ar.u32(outstanding);
      jobs.push_back(jobs_.create(RaidJob{stage, outstanding}));
      GDISIM_AUDIT_JOB_SPAWNED(audit::Category::kRaidJob);
    }
    std::size_t nb = 0;
    ar.size_value(nb);
    std::vector<BranchJob*> branches;
    branches.reserve(nb);
    for (std::size_t i = 0; i < nb; ++i) {
      std::uint64_t parent = 0;
      ar.u64(parent);
      branches.push_back(branch_jobs_.create(BranchJob{jobs.at(parent)}));
    }
    const JobCtxDecoder dec_job = [&](std::uint64_t idx) -> JobCtx { return jobs.at(idx); };
    const JobCtxDecoder dec_branch = [&](std::uint64_t idx) -> JobCtx { return branches.at(idx); };
    dacc_.archive_state(ar, {}, dec_job);
    for (auto& q : dcc_) q.archive_state(ar, {}, dec_branch);
    for (auto& q : hdd_) q.archive_state(ar, {}, dec_branch);
  }
  ar.f64(last_disk_utilization_);
}

}  // namespace gdisim
