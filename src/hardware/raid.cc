#include "hardware/raid.h"

#include <stdexcept>

#include "core/audit.h"

namespace gdisim {

RaidComponent::RaidComponent(const RaidSpec& spec, Rng rng)
    : spec_(spec), rng_(rng), dacc_(1, spec.dacc_rate_Bps) {
  if (spec.disks == 0) throw std::invalid_argument("RaidComponent: zero disks");
  dcc_.reserve(spec.disks);
  hdd_.reserve(spec.disks);
  for (unsigned i = 0; i < spec.disks; ++i) {
    dcc_.emplace_back(1, spec.dcc_rate_Bps);
    hdd_.emplace_back(1, spec.hdd_rate_Bps);
  }
}

void RaidComponent::accept(StageJob job) {
  GDISIM_AUDIT_NONNEG(job.work, "RaidComponent: negative work accepted");
  GDISIM_AUDIT_JOB_SPAWNED(audit::Category::kRaidJob);
  RaidJob* rj = jobs_.create(RaidJob{job, 0});
  dacc_.enqueue(job.work, rj);
}

void RaidComponent::complete(RaidJob* job, Tick now) {
  job->stage.handler->on_stage_complete(*this, now, job->stage.tag);
  GDISIM_AUDIT_JOB_COMPLETED(audit::Category::kRaidJob);
  jobs_.destroy(job);
}

void RaidComponent::fork(RaidJob* job) {
  job->outstanding = spec_.disks;
  const double share = job->stage.work / static_cast<double>(spec_.disks);
  for (unsigned i = 0; i < spec_.disks; ++i) {
    dcc_[i].enqueue(share, branch_jobs_.create(BranchJob{job}));
  }
}

void RaidComponent::finish_branch(BranchJob* branch, Tick now) {
  RaidJob* parent = branch->parent;
  branch_jobs_.destroy(branch);
  GDISIM_AUDIT_CHECK(parent->outstanding > 0,
                     "RaidComponent: branch completion with no outstanding branches");
  if (--parent->outstanding == 0) complete(parent, now);
}

void RaidComponent::advance_tick(Tick now, double dt) {
  // 1. Disk array controller cache.
  for (JobCtx ctx : dacc_.advance(dt).completed) {
    auto* job = static_cast<RaidJob*>(ctx);
    if (rng_.next_double() < spec_.dacc_hit_rate) {
      complete(job, now);
    } else {
      fork(job);
    }
  }

  // 2. Per-disk controller caches.
  for (unsigned i = 0; i < spec_.disks; ++i) {
    for (JobCtx ctx : dcc_[i].advance(dt).completed) {
      auto* branch = static_cast<BranchJob*>(ctx);
      if (rng_.next_double() < spec_.dcc_hit_rate) {
        finish_branch(branch, now);
      } else {
        // Re-derive the branch share from the parent job.
        const double share =
            branch->parent->stage.work / static_cast<double>(spec_.disks);
        hdd_[i].enqueue(share, branch);
      }
    }
  }

  // 3. Disk drives.
  double disk_util = 0.0;
  for (unsigned i = 0; i < spec_.disks; ++i) {
    for (JobCtx ctx : hdd_[i].advance(dt).completed) {
      finish_branch(static_cast<BranchJob*>(ctx), now);
    }
    disk_util += hdd_[i].last_utilization();
  }
  last_disk_utilization_ = disk_util / static_cast<double>(spec_.disks);
}

std::size_t RaidComponent::queue_length() const {
  return jobs_.live();
}

}  // namespace gdisim
