#include "hardware/raid.h"

#include <stdexcept>

namespace gdisim {

RaidComponent::RaidComponent(const RaidSpec& spec, Rng rng)
    : spec_(spec), rng_(rng), dacc_(1, spec.dacc_rate_Bps) {
  if (spec.disks == 0) throw std::invalid_argument("RaidComponent: zero disks");
  dcc_.reserve(spec.disks);
  hdd_.reserve(spec.disks);
  for (unsigned i = 0; i < spec.disks; ++i) {
    dcc_.emplace_back(1, spec.dcc_rate_Bps);
    hdd_.emplace_back(1, spec.hdd_rate_Bps);
  }
}

RaidComponent::~RaidComponent() {
  for (RaidJob* job : live_jobs_) delete job;
}

void RaidComponent::accept(StageJob job) {
  auto* rj = new RaidJob{job, 0};
  live_jobs_.insert(rj);
  dacc_.enqueue(job.work, rj);
}

void RaidComponent::complete(RaidJob* job, Tick now) {
  job->stage.handler->on_stage_complete(*this, now, job->stage.tag);
  live_jobs_.erase(job);
  delete job;
}

void RaidComponent::fork(RaidJob* job) {
  job->outstanding = spec_.disks;
  const double share = job->stage.work / static_cast<double>(spec_.disks);
  for (unsigned i = 0; i < spec_.disks; ++i) {
    dcc_[i].enqueue(share, new BranchJob{job});
  }
}

void RaidComponent::finish_branch(BranchJob* branch, Tick now) {
  RaidJob* parent = branch->parent;
  delete branch;
  if (--parent->outstanding == 0) complete(parent, now);
}

void RaidComponent::advance_tick(Tick now, double dt) {
  // 1. Disk array controller cache.
  for (JobCtx ctx : dacc_.advance(dt).completed) {
    auto* job = static_cast<RaidJob*>(ctx);
    if (rng_.next_double() < spec_.dacc_hit_rate) {
      complete(job, now);
    } else {
      fork(job);
    }
  }

  // 2. Per-disk controller caches.
  for (unsigned i = 0; i < spec_.disks; ++i) {
    const double share_rate = 1.0;  // share already computed at fork time
    (void)share_rate;
    for (JobCtx ctx : dcc_[i].advance(dt).completed) {
      auto* branch = static_cast<BranchJob*>(ctx);
      if (rng_.next_double() < spec_.dcc_hit_rate) {
        finish_branch(branch, now);
      } else {
        // Re-derive the branch share from the parent job.
        const double share =
            branch->parent->stage.work / static_cast<double>(spec_.disks);
        hdd_[i].enqueue(share, branch);
      }
    }
  }

  // 3. Disk drives.
  double disk_util = 0.0;
  for (unsigned i = 0; i < spec_.disks; ++i) {
    for (JobCtx ctx : hdd_[i].advance(dt).completed) {
      finish_branch(static_cast<BranchJob*>(ctx), now);
    }
    disk_util += hdd_[i].last_utilization();
  }
  last_disk_utilization_ = disk_util / static_cast<double>(spec_.disks);
}

std::size_t RaidComponent::queue_length() const {
  return live_jobs_.size();
}

}  // namespace gdisim
