#include "hardware/nic.h"

namespace gdisim {}  // namespace gdisim
