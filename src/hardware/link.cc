#include "hardware/link.h"

namespace gdisim {}  // namespace gdisim
