// Storage Area Network (thesis §3.4.2, Figure 3-8).
//
// Pipeline: fiber-channel switch Q_fcsw, then the disk-array controller
// cache Q_dacc (hit -> done, bypassing everything downstream), then the
// fiber-channel arbitrated loop Q_fcal, then an n-way fork-join of
// per-disk (Q_dcc -> Q_hdd) branches. A SAN is shared by the tiers of a
// data center, so unlike a RAID it typically serves many servers at once.
#pragma once

#include <vector>

#include "core/rng.h"
#include "hardware/component.h"
#include "queueing/fcfs_queue.h"
#include "queueing/job.h"

namespace gdisim {

struct SanSpec {
  unsigned disks = 20;
  double fcsw_rate_Bps = 8e9 / 8.0;   ///< fiber channel switch, bytes/s
  double dacc_rate_Bps = 4e9 / 8.0;   ///< disk array controller cache
  double dacc_hit_rate = 0.0;
  double fcal_rate_Bps = 4e9 / 8.0;   ///< fiber channel arbitrated loop
  double dcc_rate_Bps = 3e9 / 8.0;
  double dcc_hit_rate = 0.0;
  double hdd_rate_Bps = 150e6;
};

class SanComponent final : public Component {
 public:
  SanComponent(const SanSpec& spec, Rng rng);

  SanComponent(const SanComponent&) = delete;
  SanComponent& operator=(const SanComponent&) = delete;

  std::size_t queue_length() const override;
  const SanSpec& spec() const { return spec_; }
  double capacity_per_second() const override {
    return static_cast<double>(spec_.disks) * spec_.hdd_rate_Bps;
  }

 protected:
  double raw_utilization() const override { return last_disk_utilization_; }
  void accept(StageJob job) override;
  void advance_tick(Tick now, double dt) override;
  void archive_discipline(StateArchive& ar, HandlerRegistry& reg) override;

 private:
  struct SanJob {
    StageJob stage;
    unsigned outstanding = 0;
  };
  struct BranchJob {
    /// Pool-owned parent; snapshots travel as an index into the streamed
    /// job table, never as an address.
    SanJob* parent;  // NOLINT(gdisim-snapshot-ptr) travels as a job-table index
  };

  void complete(SanJob* job, Tick now);
  void finish_branch(BranchJob* branch, Tick now);

  SanSpec spec_;  // ARCHIVE-TRANSIENT: hardware spec; construction-time configuration
  Rng rng_;
  FcfsMultiServerQueue fcsw_;
  FcfsMultiServerQueue dacc_;
  FcfsMultiServerQueue fcal_;
  std::vector<FcfsMultiServerQueue> dcc_;
  std::vector<FcfsMultiServerQueue> hdd_;
  /// Own every job/branch context; in-flight contexts are reclaimed by the
  /// pools on destruction, so no pointer-keyed live set is needed.
  JobPool<SanJob> jobs_;
  JobPool<BranchJob> branch_jobs_;
  std::vector<JobCtx> scratch_;  // ARCHIVE-TRANSIENT: per-advance completion scratch, empty between ticks
  double last_disk_utilization_ = 0.0;
};

}  // namespace gdisim
