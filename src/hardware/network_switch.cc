#include "hardware/network_switch.h"

namespace gdisim {}  // namespace gdisim
