// Redundant Array of Identical Disks (thesis §3.4.2, Figure 3-7).
//
// Pipeline: disk-array controller cache Q_dacc (FCFS), then — on a cache
// miss — an n-way fork-join where each branch is a per-disk controller
// cache Q_dcc followed (on a branch-level miss) by the disk drive Q_hdd.
// Cache hits at either level bypass the downstream queues. All work is in
// bytes; rates are bytes/second.
#pragma once

#include <vector>

#include "core/rng.h"
#include "hardware/component.h"
#include "queueing/fcfs_queue.h"
#include "queueing/job.h"

namespace gdisim {

struct RaidSpec {
  unsigned disks = 2;
  double dacc_rate_Bps = 4e9 / 8.0;   ///< disk array controller, bytes/s
  double dacc_hit_rate = 0.0;
  double dcc_rate_Bps = 3e9 / 8.0;    ///< per-disk controller, bytes/s
  double dcc_hit_rate = 0.0;
  double hdd_rate_Bps = 150e6;        ///< drive, bytes/s
};

class RaidComponent final : public Component {
 public:
  RaidComponent(const RaidSpec& spec, Rng rng);

  RaidComponent(const RaidComponent&) = delete;
  RaidComponent& operator=(const RaidComponent&) = delete;

  std::size_t queue_length() const override;
  const RaidSpec& spec() const { return spec_; }
  double controller_utilization() const { return dacc_.last_utilization(); }
  double capacity_per_second() const override {
    return static_cast<double>(spec_.disks) * spec_.hdd_rate_Bps;
  }

 protected:
  /// Mean utilization of the disk drives (the usual "disk busy" metric).
  double raw_utilization() const override { return last_disk_utilization_; }
  void accept(StageJob job) override;
  void advance_tick(Tick now, double dt) override;
  void archive_discipline(StateArchive& ar, HandlerRegistry& reg) override;

 private:
  struct RaidJob {
    StageJob stage;
    unsigned outstanding = 0;  ///< branches still serving (0 while in dacc)
  };
  struct BranchJob {
    /// Pool-owned parent; snapshots travel as an index into the streamed
    /// job table, never as an address.
    RaidJob* parent;  // NOLINT(gdisim-snapshot-ptr) travels as a job-table index
  };

  void complete(RaidJob* job, Tick now);
  void fork(RaidJob* job);
  void finish_branch(BranchJob* branch, Tick now);

  RaidSpec spec_;  // ARCHIVE-TRANSIENT: hardware spec; construction-time configuration
  Rng rng_;
  FcfsMultiServerQueue dacc_;
  std::vector<FcfsMultiServerQueue> dcc_;
  std::vector<FcfsMultiServerQueue> hdd_;
  /// Own every job/branch context; in-flight contexts (including branch jobs
  /// still queued in dcc_/hdd_) are reclaimed by the pools on destruction,
  /// so no pointer-keyed live set is needed.
  JobPool<RaidJob> jobs_;
  JobPool<BranchJob> branch_jobs_;
  std::vector<JobCtx> scratch_;  // ARCHIVE-TRANSIENT: per-advance completion scratch, empty between ticks
  double last_disk_utilization_ = 0.0;
};

}  // namespace gdisim
