#include "hardware/san.h"

#include <stdexcept>
#include <unordered_map>

#include "core/archive.h"
#include "core/audit.h"

namespace gdisim {

SanComponent::SanComponent(const SanSpec& spec, Rng rng)
    : spec_(spec),
      rng_(rng),
      fcsw_(1, spec.fcsw_rate_Bps),
      dacc_(1, spec.dacc_rate_Bps),
      fcal_(1, spec.fcal_rate_Bps) {
  if (spec.disks == 0) throw std::invalid_argument("SanComponent: zero disks");
  dcc_.reserve(spec.disks);
  hdd_.reserve(spec.disks);
  for (unsigned i = 0; i < spec.disks; ++i) {
    dcc_.emplace_back(1, spec.dcc_rate_Bps);
    hdd_.emplace_back(1, spec.hdd_rate_Bps);
  }
}

void SanComponent::accept(StageJob job) {
  GDISIM_AUDIT_NONNEG(job.work, "SanComponent: negative work accepted");
  GDISIM_AUDIT_JOB_SPAWNED(audit::Category::kSanJob);
  SanJob* sj = jobs_.create(SanJob{job, 0});
  fcsw_.enqueue(job.work, sj);
}

void SanComponent::complete(SanJob* job, Tick now) {
  job->stage.handler->on_stage_complete(*this, now, job->stage.tag);
  GDISIM_AUDIT_JOB_COMPLETED(audit::Category::kSanJob);
  jobs_.destroy(job);
}

void SanComponent::finish_branch(BranchJob* branch, Tick now) {
  SanJob* parent = branch->parent;
  branch_jobs_.destroy(branch);
  GDISIM_AUDIT_CHECK(parent->outstanding > 0,
                     "SanComponent: branch completion with no outstanding branches");
  if (--parent->outstanding == 0) complete(parent, now);
}

void SanComponent::advance_tick(Tick now, double dt) {
  // Every stage drains into the shared scratch (cleared by the queue) so a
  // busy SAN advances without allocating; the downstream enqueues never
  // touch the scratch mid-iteration.
  // 1. Fiber channel switch -> disk array controller cache.
  fcsw_.advance(dt, scratch_);
  for (JobCtx ctx : scratch_) {
    auto* job = static_cast<SanJob*>(ctx);
    dacc_.enqueue(job->stage.work, job);
  }

  // 2. Controller cache: hit bypasses the loop and the disks.
  dacc_.advance(dt, scratch_);
  for (JobCtx ctx : scratch_) {
    auto* job = static_cast<SanJob*>(ctx);
    if (rng_.next_double() < spec_.dacc_hit_rate) {
      complete(job, now);
    } else {
      fcal_.enqueue(job->stage.work, job);
    }
  }

  // 3. Arbitrated loop -> fork across disks.
  fcal_.advance(dt, scratch_);
  for (JobCtx ctx : scratch_) {
    auto* job = static_cast<SanJob*>(ctx);
    job->outstanding = spec_.disks;
    const double share = job->stage.work / static_cast<double>(spec_.disks);
    for (unsigned i = 0; i < spec_.disks; ++i) {
      dcc_[i].enqueue(share, branch_jobs_.create(BranchJob{job}));
    }
  }

  // 4. Per-disk controller caches.
  for (unsigned i = 0; i < spec_.disks; ++i) {
    dcc_[i].advance(dt, scratch_);
    for (JobCtx ctx : scratch_) {
      auto* branch = static_cast<BranchJob*>(ctx);
      if (rng_.next_double() < spec_.dcc_hit_rate) {
        finish_branch(branch, now);
      } else {
        const double share =
            branch->parent->stage.work / static_cast<double>(spec_.disks);
        hdd_[i].enqueue(share, branch);
      }
    }
  }

  // 5. Disk drives.
  double disk_util = 0.0;
  for (unsigned i = 0; i < spec_.disks; ++i) {
    hdd_[i].advance(dt, scratch_);
    for (JobCtx ctx : scratch_) {
      finish_branch(static_cast<BranchJob*>(ctx), now);
    }
    disk_util += hdd_[i].last_utilization();
  }
  scratch_.clear();
  last_disk_utilization_ = disk_util / static_cast<double>(spec_.disks);
}

std::size_t SanComponent::queue_length() const {
  return jobs_.live();
}

void SanComponent::archive_discipline(StateArchive& ar, HandlerRegistry& reg) {
  ar.section("san");
  std::size_t disks = dcc_.size();
  ar.size_value(disks);
  ar.expect_equal(disks, dcc_.size(), "san disk count");
  rng_.archive_state(ar);
  if (ar.writing()) {
    // Same table-then-queues layout as RaidComponent; enumeration order is
    // fcsw, dacc, fcal, then the per-disk branches. Maps are lookup-only.
    std::vector<SanJob*> job_order;
    std::unordered_map<SanJob*, std::uint64_t> job_index;  // NOLINT(gdisim-ptr-key-decl) archive-local lookup; never iterated
    std::vector<BranchJob*> branch_order;
    std::unordered_map<BranchJob*, std::uint64_t> branch_index;  // NOLINT(gdisim-ptr-key-decl) archive-local lookup; never iterated
    const auto note_job = [&](SanJob* job) {
      if (job_index.emplace(job, job_order.size()).second) job_order.push_back(job);
    };
    const auto note_branch = [&](BranchJob* branch) {
      note_job(branch->parent);
      if (branch_index.emplace(branch, branch_order.size()).second) {
        branch_order.push_back(branch);
      }
    };
    fcsw_.for_each_ctx([&](JobCtx ctx) { note_job(static_cast<SanJob*>(ctx)); });
    dacc_.for_each_ctx([&](JobCtx ctx) { note_job(static_cast<SanJob*>(ctx)); });
    fcal_.for_each_ctx([&](JobCtx ctx) { note_job(static_cast<SanJob*>(ctx)); });
    for (auto& q : dcc_) q.for_each_ctx([&](JobCtx ctx) { note_branch(static_cast<BranchJob*>(ctx)); });
    for (auto& q : hdd_) q.for_each_ctx([&](JobCtx ctx) { note_branch(static_cast<BranchJob*>(ctx)); });

    std::size_t nj = job_order.size();
    ar.size_value(nj);
    for (SanJob* job : job_order) {
      archive_stage_job(ar, reg, job->stage);
      std::uint32_t outstanding = job->outstanding;
      ar.u32(outstanding);
    }
    std::size_t nb = branch_order.size();
    ar.size_value(nb);
    for (BranchJob* branch : branch_order) {
      std::uint64_t parent = job_index.at(branch->parent);
      ar.u64(parent);
    }
    const JobCtxEncoder enc_job = [&](JobCtx ctx) {
      return job_index.at(static_cast<SanJob*>(ctx));
    };
    const JobCtxEncoder enc_branch = [&](JobCtx ctx) {
      return branch_index.at(static_cast<BranchJob*>(ctx));
    };
    fcsw_.archive_state(ar, enc_job, {});
    dacc_.archive_state(ar, enc_job, {});
    fcal_.archive_state(ar, enc_job, {});
    for (auto& q : dcc_) q.archive_state(ar, enc_branch, {});
    for (auto& q : hdd_) q.archive_state(ar, enc_branch, {});
  } else {
    std::size_t nj = 0;
    ar.size_value(nj);
    std::vector<SanJob*> jobs;
    jobs.reserve(nj);
    for (std::size_t i = 0; i < nj; ++i) {
      StageJob stage;
      archive_stage_job(ar, reg, stage);
      std::uint32_t outstanding = 0;
      ar.u32(outstanding);
      jobs.push_back(jobs_.create(SanJob{stage, outstanding}));
      GDISIM_AUDIT_JOB_SPAWNED(audit::Category::kSanJob);
    }
    std::size_t nb = 0;
    ar.size_value(nb);
    std::vector<BranchJob*> branches;
    branches.reserve(nb);
    for (std::size_t i = 0; i < nb; ++i) {
      std::uint64_t parent = 0;
      ar.u64(parent);
      branches.push_back(branch_jobs_.create(BranchJob{jobs.at(parent)}));
    }
    const JobCtxDecoder dec_job = [&](std::uint64_t idx) -> JobCtx { return jobs.at(idx); };
    const JobCtxDecoder dec_branch = [&](std::uint64_t idx) -> JobCtx { return branches.at(idx); };
    fcsw_.archive_state(ar, {}, dec_job);
    dacc_.archive_state(ar, {}, dec_job);
    fcal_.archive_state(ar, {}, dec_job);
    for (auto& q : dcc_) q.archive_state(ar, {}, dec_branch);
    for (auto& q : hdd_) q.archive_state(ar, {}, dec_branch);
  }
  ar.f64(last_disk_utilization_);
}

}  // namespace gdisim
