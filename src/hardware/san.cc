#include "hardware/san.h"

#include <stdexcept>

#include "core/audit.h"

namespace gdisim {

SanComponent::SanComponent(const SanSpec& spec, Rng rng)
    : spec_(spec),
      rng_(rng),
      fcsw_(1, spec.fcsw_rate_Bps),
      dacc_(1, spec.dacc_rate_Bps),
      fcal_(1, spec.fcal_rate_Bps) {
  if (spec.disks == 0) throw std::invalid_argument("SanComponent: zero disks");
  dcc_.reserve(spec.disks);
  hdd_.reserve(spec.disks);
  for (unsigned i = 0; i < spec.disks; ++i) {
    dcc_.emplace_back(1, spec.dcc_rate_Bps);
    hdd_.emplace_back(1, spec.hdd_rate_Bps);
  }
}

void SanComponent::accept(StageJob job) {
  GDISIM_AUDIT_NONNEG(job.work, "SanComponent: negative work accepted");
  GDISIM_AUDIT_JOB_SPAWNED(audit::Category::kSanJob);
  SanJob* sj = jobs_.create(SanJob{job, 0});
  fcsw_.enqueue(job.work, sj);
}

void SanComponent::complete(SanJob* job, Tick now) {
  job->stage.handler->on_stage_complete(*this, now, job->stage.tag);
  GDISIM_AUDIT_JOB_COMPLETED(audit::Category::kSanJob);
  jobs_.destroy(job);
}

void SanComponent::finish_branch(BranchJob* branch, Tick now) {
  SanJob* parent = branch->parent;
  branch_jobs_.destroy(branch);
  GDISIM_AUDIT_CHECK(parent->outstanding > 0,
                     "SanComponent: branch completion with no outstanding branches");
  if (--parent->outstanding == 0) complete(parent, now);
}

void SanComponent::advance_tick(Tick now, double dt) {
  // 1. Fiber channel switch -> disk array controller cache.
  for (JobCtx ctx : fcsw_.advance(dt).completed) {
    auto* job = static_cast<SanJob*>(ctx);
    dacc_.enqueue(job->stage.work, job);
  }

  // 2. Controller cache: hit bypasses the loop and the disks.
  for (JobCtx ctx : dacc_.advance(dt).completed) {
    auto* job = static_cast<SanJob*>(ctx);
    if (rng_.next_double() < spec_.dacc_hit_rate) {
      complete(job, now);
    } else {
      fcal_.enqueue(job->stage.work, job);
    }
  }

  // 3. Arbitrated loop -> fork across disks.
  for (JobCtx ctx : fcal_.advance(dt).completed) {
    auto* job = static_cast<SanJob*>(ctx);
    job->outstanding = spec_.disks;
    const double share = job->stage.work / static_cast<double>(spec_.disks);
    for (unsigned i = 0; i < spec_.disks; ++i) {
      dcc_[i].enqueue(share, branch_jobs_.create(BranchJob{job}));
    }
  }

  // 4. Per-disk controller caches.
  for (unsigned i = 0; i < spec_.disks; ++i) {
    for (JobCtx ctx : dcc_[i].advance(dt).completed) {
      auto* branch = static_cast<BranchJob*>(ctx);
      if (rng_.next_double() < spec_.dcc_hit_rate) {
        finish_branch(branch, now);
      } else {
        const double share =
            branch->parent->stage.work / static_cast<double>(spec_.disks);
        hdd_[i].enqueue(share, branch);
      }
    }
  }

  // 5. Disk drives.
  double disk_util = 0.0;
  for (unsigned i = 0; i < spec_.disks; ++i) {
    for (JobCtx ctx : hdd_[i].advance(dt).completed) {
      finish_branch(static_cast<BranchJob*>(ctx), now);
    }
    disk_util += hdd_[i].last_utilization();
  }
  last_disk_utilization_ = disk_util / static_cast<double>(spec_.disks);
}

std::size_t SanComponent::queue_length() const {
  return jobs_.live();
}

}  // namespace gdisim
