#include "hardware/server.h"

namespace gdisim {

Server::Server(const ServerSpec& spec, std::string name, Rng rng, SanComponent* san)
    : spec_(spec), name_(std::move(name)), san_(san) {
  nic_ = std::make_unique<NicComponent>(spec.nic);
  nic_->set_name(name_ + "/nic");
  cpu_ = std::make_unique<CpuComponent>(spec.cpu);
  cpu_->set_name(name_ + "/cpu");
  memory_ = std::make_unique<MemoryComponent>(spec.memory);
  if (spec.raid.has_value()) {
    raid_ = std::make_unique<RaidComponent>(*spec.raid, rng.split("raid"));
    raid_->set_name(name_ + "/raid");
  }
}

Component* Server::storage() {
  if (raid_) return raid_.get();
  return san_;
}

std::vector<Component*> Server::owned_components() {
  std::vector<Component*> out{nic_.get(), cpu_.get()};
  if (raid_) out.push_back(raid_.get());
  return out;
}

}  // namespace gdisim
