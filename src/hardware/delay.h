// Infinite-server delay station (M/G/inf).
//
// Used for client-side processing: thousands of client machines are not a
// shared bottleneck, so their per-message CPU/disk cost is modeled as a pure
// delay with no contention (work = seconds of delay).
//
// Hot-state layout (DESIGN.md "Memory layout"): the in-flight set is
// struct-of-arrays — the countdown streams over a dense array of `work`
// doubles, and the cross-tick minimum is cached so a tick where the
// smallest job survives (`fl(min - dt) > 1e-12`, which by monotonicity of
// IEEE subtraction means every job survives) reduces to one vectorizable
// subtract pass. Arithmetic per element is identical to the former
// array-of-structs loop, so results are bit-identical.
#pragma once

#include <algorithm>
#include <limits>
#include <vector>

#include "hardware/component.h"

namespace gdisim {

class DelayComponent final : public Component {
 public:
  DelayComponent() = default;

  std::size_t queue_length() const override { return work_.size(); }
  double capacity_per_second() const override { return 0.0; }
  /// Delay stations serve work measured in seconds at unit rate.
  double single_job_rate() const override { return 1.0; }

 protected:
  double raw_utilization() const override { return work_.empty() ? 0.0 : 1.0; }
  void accept(StageJob job) override {
    min_work_ = std::min(min_work_, job.work);
    work_.push_back(job.work);
    rest_.push_back(job);
  }

  void advance_tick(Tick now, double dt) override {
    const std::size_t n = work_.size();
    if (n == 0) return;

    // No-finish fast path: subtraction by a constant is monotone in IEEE
    // arithmetic, so if the smallest job survives the threshold every job
    // does and the survivors' minimum is exactly fl(min - dt). The loop
    // below would store the identical fl(work[i] - dt) for every job and
    // touch nothing else, so this branch is bit-for-bit equivalent.
    const double survivor_min = min_work_ - dt;
    if (survivor_min > 1e-12) {
      double* w = work_.data();
      for (std::size_t i = 0; i < n; ++i) w[i] -= dt;
      min_work_ = survivor_min;
      return;
    }

    // In-place compaction (stable, same survivor order as a copy pass) so a
    // busy station does not allocate every tick. Completion handlers never
    // touch the in-flight set directly — forwarded work goes through
    // inboxes. The same pass rebuilds the survivors' cached minimum.
    std::size_t keep = 0;
    double min_w = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < n; ++i) {
      const double w = work_[i] - dt;
      if (w <= 1e-12) {
        rest_[i].handler->on_stage_complete(*this, now, rest_[i].tag);
      } else {
        min_w = std::min(min_w, w);
        work_[keep] = w;
        if (keep != i) rest_[keep] = rest_[i];
        ++keep;
      }
    }
    work_.resize(keep);
    rest_.resize(keep);
    min_work_ = min_w;
  }

  void archive_discipline(StateArchive& ar, HandlerRegistry& reg) override {
    ar.section("delay");
    std::size_t n = work_.size();
    ar.size_value(n);
    if (ar.reading()) {
      work_.assign(n, 0.0);
      rest_.assign(n, StageJob{});
    }
    // Byte layout identical to the former vector<StageJob>: each job's
    // `work` field is synced from the dense work_ array before writing and
    // back into it after reading.
    for (std::size_t i = 0; i < n; ++i) {
      if (ar.writing()) rest_[i].work = work_[i];
      archive_stage_job(ar, reg, rest_[i]);
      if (ar.reading()) work_[i] = rest_[i].work;
    }
    if (ar.reading()) {
      min_work_ = std::numeric_limits<double>::infinity();
      for (double w : work_) min_work_ = std::min(min_work_, w);
    }
  }

 private:
  // In-flight set, struct-of-arrays: parallel (work countdown, job fields).
  // rest_[i].work is stale between archives; work_[i] is authoritative.
  std::vector<double> work_;
  std::vector<StageJob> rest_;
  /// Cached min of work_ (infinity when empty); maintained on accept and by
  /// the countdown pass. ARCHIVE-TRANSIENT: derived, rebuilt on restore.
  double min_work_ = std::numeric_limits<double>::infinity();
};

}  // namespace gdisim
