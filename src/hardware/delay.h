// Infinite-server delay station (M/G/inf).
//
// Used for client-side processing: thousands of client machines are not a
// shared bottleneck, so their per-message CPU/disk cost is modeled as a pure
// delay with no contention (work = seconds of delay).
#pragma once

#include <vector>

#include "hardware/component.h"

namespace gdisim {

class DelayComponent final : public Component {
 public:
  DelayComponent() = default;

  std::size_t queue_length() const override { return in_flight_.size(); }
  double capacity_per_second() const override { return 0.0; }
  /// Delay stations serve work measured in seconds at unit rate.
  double single_job_rate() const override { return 1.0; }

 protected:
  double raw_utilization() const override { return in_flight_.empty() ? 0.0 : 1.0; }
  void accept(StageJob job) override { in_flight_.push_back(job); }

  void advance_tick(Tick now, double dt) override {
    // In-place compaction (stable, same survivor order as a copy pass) so a
    // busy station does not allocate every tick. Completion handlers never
    // touch in_flight_ directly — forwarded work goes through inboxes.
    std::size_t keep = 0;
    for (std::size_t i = 0; i < in_flight_.size(); ++i) {
      StageJob& job = in_flight_[i];
      job.work -= dt;
      if (job.work <= 1e-12) {
        job.handler->on_stage_complete(*this, now, job.tag);
      } else {
        if (keep != i) in_flight_[keep] = job;
        ++keep;
      }
    }
    in_flight_.resize(keep);
  }

  void archive_discipline(StateArchive& ar, HandlerRegistry& reg) override {
    ar.section("delay");
    std::size_t n = in_flight_.size();
    ar.size_value(n);
    if (ar.reading()) in_flight_.assign(n, StageJob{});
    for (StageJob& job : in_flight_) archive_stage_job(ar, reg, job);
  }

 private:
  std::vector<StageJob> in_flight_;
};

}  // namespace gdisim
