#include "hardware/cpu.h"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <unordered_map>

#include "core/archive.h"

namespace gdisim {

CpuComponent::CpuComponent(const CpuSpec& spec) : spec_(spec) {
  sockets_.reserve(spec.sockets);
  for (unsigned p = 0; p < spec.sockets; ++p) {
    sockets_.emplace_back(spec.effective_cores_per_socket(), spec.frequency_hz);
  }
}

void CpuComponent::accept(StageJob job) {
  // Deterministic least-loaded socket placement.
  std::size_t best = 0;
  for (std::size_t p = 1; p < sockets_.size(); ++p) {
    if (sockets_[p].total_jobs() < sockets_[best].total_jobs()) best = p;
  }
  // Parallel jobs (§9.1.1) fork across up to `parallelism` cores of the
  // chosen socket; total cycles are unchanged, latency shrinks.
  const unsigned shares =
      std::max(1u, std::min(job.parallelism, spec_.effective_cores_per_socket()));
  PendingJob* pending = pool_.create(PendingJob{job, shares});
  const double share_work = job.work / static_cast<double>(shares);
  for (unsigned k = 0; k < shares; ++k) sockets_[best].enqueue(share_work, pending);
}

void CpuComponent::advance_tick(Tick now, double dt) {
  double util_sum = 0.0;
  for (auto& socket : sockets_) {
    socket.advance(dt, completed_);
    util_sum += socket.last_utilization();
    for (JobCtx ctx : completed_) {
      auto* pending = static_cast<PendingJob*>(ctx);
      if (--pending->outstanding > 0) continue;
      pending->stage.handler->on_stage_complete(*this, now, pending->stage.tag);
      pool_.destroy(pending);
    }
  }
  last_utilization_ = util_sum / static_cast<double>(sockets_.size());
}

void CpuComponent::archive_discipline(StateArchive& ar, HandlerRegistry& reg) {
  ar.section("cpu");
  std::size_t sockets = sockets_.size();
  ar.size_value(sockets);
  ar.expect_equal(sockets, sockets_.size(), "cpu socket count");
  if (ar.writing()) {
    // First-encounter index over the pending jobs referenced by the socket
    // queues (a parallel job appears once per share); the map is
    // lookup-only, never iterated.
    std::vector<PendingJob*> order;
    std::unordered_map<PendingJob*, std::uint64_t> index;  // NOLINT(gdisim-ptr-key-decl) archive-local lookup; never iterated
    const JobCtxEncoder enc = [&](JobCtx ctx) -> std::uint64_t {
      auto* pending = static_cast<PendingJob*>(ctx);
      const auto [it, fresh] = index.emplace(pending, order.size());
      if (fresh) order.push_back(pending);
      return it->second;
    };
    for (auto& socket : sockets_) socket.archive_state(ar, enc, {});
    std::size_t n = order.size();
    ar.size_value(n);
    for (PendingJob* pending : order) {
      archive_stage_job(ar, reg, pending->stage);
      std::uint32_t outstanding = pending->outstanding;
      ar.u32(outstanding);
    }
  } else {
    std::vector<PendingJob*> loaded;
    const JobCtxDecoder dec = [&](std::uint64_t idx) -> JobCtx {
      while (loaded.size() <= idx) loaded.push_back(pool_.create(PendingJob{}));
      return loaded[idx];
    };
    for (auto& socket : sockets_) socket.archive_state(ar, {}, dec);
    std::size_t n = 0;
    ar.size_value(n);
    if (n != loaded.size()) {
      throw std::runtime_error("snapshot: cpu pending-job table disagrees with socket queues");
    }
    for (PendingJob* pending : loaded) {
      archive_stage_job(ar, reg, pending->stage);
      std::uint32_t outstanding = 0;
      ar.u32(outstanding);
      pending->outstanding = outstanding;
    }
  }
  ar.f64(last_utilization_);
}

std::size_t CpuComponent::queue_length() const {
  std::size_t n = 0;
  for (const auto& socket : sockets_) n += socket.total_jobs();
  return n;
}

}  // namespace gdisim
