#include "hardware/cpu.h"

#include <algorithm>
#include <memory>

namespace gdisim {

CpuComponent::CpuComponent(const CpuSpec& spec) : spec_(spec) {
  sockets_.reserve(spec.sockets);
  for (unsigned p = 0; p < spec.sockets; ++p) {
    sockets_.emplace_back(spec.effective_cores_per_socket(), spec.frequency_hz);
  }
}

void CpuComponent::accept(StageJob job) {
  // Deterministic least-loaded socket placement.
  std::size_t best = 0;
  for (std::size_t p = 1; p < sockets_.size(); ++p) {
    if (sockets_[p].total_jobs() < sockets_[best].total_jobs()) best = p;
  }
  // Parallel jobs (§9.1.1) fork across up to `parallelism` cores of the
  // chosen socket; total cycles are unchanged, latency shrinks.
  const unsigned shares =
      std::max(1u, std::min(job.parallelism, spec_.effective_cores_per_socket()));
  PendingJob* pending = pool_.create(PendingJob{job, shares});
  const double share_work = job.work / static_cast<double>(shares);
  for (unsigned k = 0; k < shares; ++k) sockets_[best].enqueue(share_work, pending);
}

void CpuComponent::advance_tick(Tick now, double dt) {
  double util_sum = 0.0;
  for (auto& socket : sockets_) {
    socket.advance(dt, completed_);
    util_sum += socket.last_utilization();
    for (JobCtx ctx : completed_) {
      auto* pending = static_cast<PendingJob*>(ctx);
      if (--pending->outstanding > 0) continue;
      pending->stage.handler->on_stage_complete(*this, now, pending->stage.tag);
      pool_.destroy(pending);
    }
  }
  last_utilization_ = util_sum / static_cast<double>(sockets_.size());
}

std::size_t CpuComponent::queue_length() const {
  std::size_t n = 0;
  for (const auto& socket : sockets_) n += socket.total_jobs();
  return n;
}

}  // namespace gdisim
