// Plain-text table/series reporters used by the bench binaries to print the
// rows and series the thesis tables and figures report.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "metrics/series.h"

namespace gdisim {

/// Fixed-width ASCII table.
class TableReport {
 public:
  explicit TableReport(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;

  static std::string fmt(double v, int precision = 2);
  static std::string pct(double fraction, int precision = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a time series as "t  value" rows, optionally downsampled.
void print_series(std::ostream& os, const TimeSeries& series, std::size_t max_rows = 48);

/// CSV dump of several aligned series (first column: time).
void print_csv(std::ostream& os, const std::vector<const TimeSeries*>& series);

}  // namespace gdisim
