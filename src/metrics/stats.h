// Statistical helpers for the validation chapter: mean/stddev summaries and
// the Root Mean Square Error of Eq. 5.5.
#pragma once

#include <span>
#include <vector>

#include "metrics/series.h"

namespace gdisim {

double mean(std::span<const double> xs);
double stddev(std::span<const double> xs);

/// RMSE between paired samples (Eq. 5.5). Series are truncated to the
/// shorter length.
double rmse(std::span<const double> physical, std::span<const double> simulated);
double rmse(const TimeSeries& physical, const TimeSeries& simulated);

/// Pearson correlation (extra diagnostic, not in the thesis tables).
double correlation(std::span<const double> a, std::span<const double> b);

}  // namespace gdisim
