#include "metrics/stats.h"

#include <algorithm>
#include <cmath>

namespace gdisim {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double mu = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - mu) * (x - mu);
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

double rmse(std::span<const double> physical, std::span<const double> simulated) {
  const std::size_t n = std::min(physical.size(), simulated.size());
  if (n == 0) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = physical[i] - simulated[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(n));
}

double rmse(const TimeSeries& physical, const TimeSeries& simulated) {
  const auto a = physical.values();
  const auto b = simulated.values();
  return rmse(std::span<const double>(a), std::span<const double>(b));
}

double correlation(std::span<const double> a, std::span<const double> b) {
  const std::size_t n = std::min(a.size(), b.size());
  if (n < 2) return 0.0;
  const double ma = mean(a.subspan(0, n));
  const double mb = mean(b.subspan(0, n));
  double num = 0.0, da = 0.0, db = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    num += (a[i] - ma) * (b[i] - mb);
    da += (a[i] - ma) * (a[i] - ma);
    db += (b[i] - mb) * (b[i] - mb);
  }
  const double den = std::sqrt(da * db);
  return den > 0.0 ? num / den : 0.0;
}

}  // namespace gdisim
