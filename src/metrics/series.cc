#include "metrics/series.h"

#include <algorithm>
#include <cmath>

namespace gdisim {

TimeSeries TimeSeries::snapshot(std::size_t window) const {
  TimeSeries out(label_);
  if (window == 0) window = 1;
  for (std::size_t i = 0; i + window <= samples_.size(); i += window) {
    double sum = 0.0;
    for (std::size_t j = i; j < i + window; ++j) sum += samples_[j].value;
    out.append(samples_[i + window - 1].t_seconds, sum / static_cast<double>(window));
  }
  return out;
}

double TimeSeries::mean_between(double t0, double t1) const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const Sample& s : samples_) {
    if (s.t_seconds >= t0 && s.t_seconds < t1) {
      sum += s.value;
      ++n;
    }
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

double TimeSeries::stddev_between(double t0, double t1) const {
  const double mu = mean_between(t0, t1);
  double acc = 0.0;
  std::size_t n = 0;
  for (const Sample& s : samples_) {
    if (s.t_seconds >= t0 && s.t_seconds < t1) {
      acc += (s.value - mu) * (s.value - mu);
      ++n;
    }
  }
  return n ? std::sqrt(acc / static_cast<double>(n)) : 0.0;
}

double TimeSeries::max_value() const {
  double m = 0.0;
  for (const Sample& s : samples_) m = std::max(m, s.value);
  return m;
}

std::vector<double> TimeSeries::values() const {
  std::vector<double> out;
  out.reserve(samples_.size());
  for (const Sample& s : samples_) out.push_back(s.value);
  return out;
}

}  // namespace gdisim
