#include "metrics/report.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace gdisim {

TableReport::TableReport(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TableReport::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TableReport: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string TableReport::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TableReport::pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

void TableReport::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << "| " << cells[c];
      for (std::size_t pad = cells[c].size(); pad < width[c]; ++pad) os << ' ';
      os << ' ';
    }
    os << "|\n";
  };
  line(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << "|-" << std::string(width[c], '-') << '-';
  }
  os << "|\n";
  for (const auto& row : rows_) line(row);
}

void print_series(std::ostream& os, const TimeSeries& series, std::size_t max_rows) {
  const auto& samples = series.samples();
  if (samples.empty()) {
    os << "(no samples)\n";
    return;
  }
  const std::size_t stride = std::max<std::size_t>(1, samples.size() / max_rows);
  os << "# " << series.label() << "\n";
  for (std::size_t i = 0; i < samples.size(); i += stride) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%10.1f  %12.4f\n", samples[i].t_seconds, samples[i].value);
    os << buf;
  }
}

void print_csv(std::ostream& os, const std::vector<const TimeSeries*>& series) {
  if (series.empty()) return;
  os << "t_seconds";
  for (const auto* s : series) os << ',' << s->label();
  os << '\n';
  std::size_t n = series[0]->size();
  for (const auto* s : series) n = std::min(n, s->size());
  for (std::size_t i = 0; i < n; ++i) {
    os << series[0]->samples()[i].t_seconds;
    for (const auto* s : series) os << ',' << s->samples()[i].value;
    os << '\n';
  }
}

}  // namespace gdisim
