#include "metrics/collector.h"

namespace gdisim {

std::size_t Collector::add_probe(std::string label, Probe probe) {
  probes_.push_back(std::move(probe));
  series_.emplace_back(std::move(label));
  return probes_.size() - 1;
}

void Collector::collect(Tick now) {
  const double t = static_cast<double>(now) * tick_seconds_;
  for (std::size_t i = 0; i < probes_.size(); ++i) {
    series_[i].append(t, probes_[i](now));
  }
}

const TimeSeries* Collector::find(const std::string& label) const {
  for (const auto& s : series_) {
    if (s.label() == label) return &s;
  }
  return nullptr;
}

}  // namespace gdisim
