// Collector Component (thesis §4.3.1): periodically samples registered
// probes into time series. Wired to SimulationLoop::set_collect_callback;
// the collection signal runs between phases, so probes may read agent state
// without synchronization.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/types.h"
#include "metrics/series.h"

namespace gdisim {

class Collector {
 public:
  explicit Collector(double tick_seconds) : tick_seconds_(tick_seconds) {}

  /// Probes receive the sample tick so windowed metrics can use wall ticks
  /// as their denominator (exact under the active-set scheduler, where
  /// agents do not execute every tick).
  using Probe = std::function<double(Tick)>;

  /// Registers a probe; returns its index.
  std::size_t add_probe(std::string label, Probe probe);

  /// The collection control signal.
  void collect(Tick now);

  const TimeSeries& series(std::size_t index) const { return series_[index]; }
  const TimeSeries* find(const std::string& label) const;
  std::size_t probe_count() const { return probes_.size(); }

  /// Snapshot round trip of every probe's series. Probe count and labels are
  /// structural: the restored scenario registers the same probes in the same
  /// order before restore is called.
  void archive_state(StateArchive& ar) {
    ar.section("collector");
    std::size_t n = series_.size();
    ar.size_value(n);
    ar.expect_equal(n, series_.size(), "collector probe count");
    for (TimeSeries& s : series_) s.archive_state(ar);
  }

 private:
  double tick_seconds_;  // ARCHIVE-TRANSIENT: clock configuration fixed at construction
  std::vector<Probe> probes_;  // ARCHIVE-TRANSIENT: probe wiring bound at build; sampled series are archived
  std::vector<TimeSeries> series_;
};

}  // namespace gdisim
