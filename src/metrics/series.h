// Time series of sampled measurements (the Collector Component's output,
// thesis §4.3.1): raw samples plus snapshot averaging over windows.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/archive.h"

namespace gdisim {

struct Sample {
  double t_seconds = 0.0;
  double value = 0.0;
};

class TimeSeries {
 public:
  TimeSeries() = default;
  explicit TimeSeries(std::string label) : label_(std::move(label)) {}

  void append(double t_seconds, double value) { samples_.push_back({t_seconds, value}); }

  const std::vector<Sample>& samples() const { return samples_; }
  const std::string& label() const { return label_; }
  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  /// Averages consecutive groups of `window` samples into snapshots — the
  /// thesis averages e.g. 600 intermediate samples into one reported
  /// snapshot and dismisses the intermediates.
  TimeSeries snapshot(std::size_t window) const;

  /// Mean of samples with t in [t0, t1).
  double mean_between(double t0, double t1) const;

  /// Standard deviation of samples with t in [t0, t1).
  double stddev_between(double t0, double t1) const;

  double max_value() const;

  /// Value series only (aligned comparisons).
  std::vector<double> values() const;

  /// Snapshot round trip of the accumulated samples; the label is structural
  /// (probes are re-registered by the scenario builder, not restored).
  void archive_state(StateArchive& ar) {
    ar.section("series");
    std::size_t n = samples_.size();
    ar.size_value(n);
    if (ar.reading()) samples_.resize(n);
    for (Sample& s : samples_) {
      ar.f64(s.t_seconds);
      ar.f64(s.value);
    }
  }

 private:
  std::string label_;  // ARCHIVE-TRANSIENT: construction-time identity
  std::vector<Sample> samples_;
};

}  // namespace gdisim
