// GdiSimulator: the top-level facade (thesis Figure 3-1).
//
// Takes a Scenario (software applications + background jobs + data centers +
// global topology) and produces the output estimates: response times per
// operation and location, CPU/memory utilization per tier, and network
// utilization per link — all sampled by the collector.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "config/scenarios.h"
#include "core/h_dispatch.h"
#include "core/sim_loop.h"
#include "metrics/collector.h"
#include "metrics/report.h"

namespace gdisim {

class StateArchive;

struct SimulatorConfig {
  /// Sampling period for the measurement-collection signal (thesis Ch. 5
  /// samples every six seconds).
  double collect_every_s = 6.0;
  /// Worker threads for the H-Dispatch engine; 0 = run phases inline.
  std::size_t threads = 0;
  std::size_t agent_set_size = 64;
  /// Active-set scheduling by default; kDenseSweep is the A/B oracle
  /// (DESIGN.md "Scheduler").
  SchedulerMode scheduler = SchedulerMode::kActiveSet;
};

class GdiSimulator {
 public:
  GdiSimulator(Scenario scenario, SimulatorConfig config = {});

  /// Advances the simulation by the given number of simulated seconds.
  void run_for(double seconds);

  /// Runs until the given *absolute* simulated time (no-op if already past).
  /// Restored runs use this so a checkpoint→restore→continue sequence lands
  /// on exactly the same end tick as the uninterrupted run.
  void run_until_seconds(double seconds);

  /// Saves the complete simulation state to `path` (DESIGN.md §8). Safe at
  /// any point where no agent phase is executing — i.e. between run calls.
  void checkpoint(const std::string& path);

  /// Replaces this simulator's state with the snapshot at `path`. The
  /// simulator must have been built from a structurally identical scenario
  /// (rates/intervals may differ — warm-start forking); throws
  /// std::runtime_error with a line diff otherwise. Decode errors are
  /// reported as `path:byte N: why` (the scenario loader's diagnostic
  /// shape) and leave the simulator in its pre-restore state.
  void restore(const std::string& path);

  /// In-memory snapshot/restore (scenario forking without touching disk).
  /// By default a payload that fails mid-decode is rolled back: the live
  /// simulator is restored to its pre-call state before the exception
  /// propagates. Pass `rollback_on_error = false` to skip the backup
  /// snapshot in trusted hot paths (warm-start fork loops replaying a
  /// payload this process just produced).
  std::vector<std::uint8_t> save_state();
  void load_state(const std::vector<std::uint8_t>& payload,
                  bool rollback_on_error = true);

  double now_seconds() const { return loop_->now_seconds(); }
  Scenario& scenario() { return scenario_; }
  Collector& collector() { return *collector_; }
  SimulationLoop& loop() { return *loop_; }

 private:
  void load_archive(StateArchive& ar, bool rollback_on_error);

  Scenario scenario_;
  SimulatorConfig config_;
  std::unique_ptr<HDispatchEngine> engine_;
  std::unique_ptr<SimulationLoop> loop_;
  std::unique_ptr<Collector> collector_;
};

}  // namespace gdisim
