#include "sim/snapshot.h"

#include <stdexcept>
#include <string>

#include "config/compat.h"
#include "config/scenarios.h"
#include "core/sim_loop.h"
#include "hardware/component.h"
#include "hardware/topology.h"
#include "metrics/collector.h"

namespace gdisim {

namespace {

/// Deterministic walk over every server in the topology (DC id, then tier
/// kind, then server index) — the one ordering both the memory pre-bind and
/// the occupancy stream rely on.
template <typename Fn>
void for_each_server(Topology& topo, Fn&& fn) {
  for (DcId d = 0; d < static_cast<DcId>(topo.dc_count()); ++d) {
    DataCenter& dc = topo.dc(d);
    for (unsigned k = 0; k < static_cast<unsigned>(TierKind::kCount); ++k) {
      Tier* tier = dc.tier(static_cast<TierKind>(k));
      if (tier == nullptr) continue;
      for (std::size_t s = 0; s < tier->server_count(); ++s) fn(tier->server(s));
    }
  }
}

}  // namespace

void archive_simulation(StateArchive& ar, Scenario& scenario, SimulationLoop& loop,
                        Collector& collector) {
  // Header: the structural descriptor. On read, reject scenarios whose shape
  // differs from the snapshot's (perturbed rates are fine; perturbed
  // structure is not — stale AgentIds would alias unrelated agents).
  const SnapshotCompat current = SnapshotCompat::describe(scenario, loop, collector);
  SnapshotCompat stored = current;
  stored.archive_state(ar);
  if (ar.reading()) {
    const std::string d = SnapshotCompat::diff(stored, current);
    if (!d.empty()) {
      throw std::runtime_error("snapshot is structurally incompatible with this scenario:\n" +
                               d);
    }
  }

  // The registry translates pointer-linked state to stable ids; rebuilt from
  // scratch on every save *and* restore. Memory components are not agents,
  // so they are pre-bound here, keyed by their server's CPU agent.
  HandlerRegistry reg;
  SimulationLoop* loop_p = &loop;
  reg.set_agent_resolver([loop_p](AgentId id) { return loop_p->agent(id); });
  Topology& topo = *scenario.topology;
  for_each_server(topo,
                  [&reg](Server& server) { reg.bind_memory(server.cpu().id(), &server.memory()); });

  loop.archive_state(ar);

  for (auto& p : scenario.populations) p->archive_state(ar, reg);
  for (auto& l : scenario.launchers) l->archive_state(ar, reg);
  for (auto& d : scenario.synchreps) d->archive_state(ar, reg);
  for (auto& d : scenario.indexbuilds) d->archive_state(ar, reg);

  // Hardware components in AgentId order. Software agents are Agents but not
  // Components, so the dynamic_cast filter skips them (they archived above).
  for (std::size_t id = 0; id < loop.agent_count(); ++id) {
    if (auto* c = dynamic_cast<Component*>(loop.agent(static_cast<AgentId>(id)))) {
      c->archive_state(ar, reg);
    }
  }

  // Memory occupancy (memories are not agents; same deterministic walk).
  for_each_server(topo, [&ar](Server& server) { server.memory().archive_state(ar); });

  topo.archive_failure_state(ar);
  collector.archive_state(ar);
}

}  // namespace gdisim
