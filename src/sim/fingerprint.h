// Result fingerprint: a single stable 64-bit digest of a finished run.
//
// Folds everything the simulator promises to reproduce bit-identically —
// per-operation response statistics, background-job ledgers, and every
// collected time series — into one FNV-1a hash. Two runs of the same
// scenario and seed must produce the same fingerprint regardless of engine,
// thread count, or scheduler mode; CI's determinism smoke step diffs the
// fingerprint of a -j1 run against a -jN run (tools/ci.sh smoke).
//
// Doubles are folded via their IEEE-754 bit patterns (std::bit_cast), so
// the digest detects any bit-level divergence, not just "close enough".
#pragma once

#include <cstdint>

namespace gdisim {

class GdiSimulator;

/// Digest of the run's observable results. Deterministic iteration only:
/// populations/launchers in scenario order, stats in std::map (name) order,
/// ledger runs in record order, series in probe-registration order.
std::uint64_t result_fingerprint(GdiSimulator& sim);

}  // namespace gdisim
