#include "sim/gdisim.h"

#include <stdexcept>

#include "core/archive.h"
#include "sim/snapshot.h"

namespace gdisim {

GdiSimulator::GdiSimulator(Scenario scenario, SimulatorConfig config)
    : scenario_(std::move(scenario)), config_(config) {
  if (scenario_.tick_seconds <= 0.0) {
    throw std::invalid_argument("GdiSimulator: scenario has no tick length");
  }
  engine_ = std::make_unique<HDispatchEngine>(config_.threads, config_.agent_set_size);

  SimLoopConfig loop_cfg;
  loop_cfg.tick_seconds = scenario_.tick_seconds;
  loop_cfg.collect_every =
      std::max<Tick>(1, static_cast<Tick>(config_.collect_every_s / scenario_.tick_seconds));
  loop_cfg.scheduler = config_.scheduler;
  loop_ = std::make_unique<SimulationLoop>(loop_cfg, *engine_);

  scenario_.register_with(*loop_);

  collector_ = std::make_unique<Collector>(scenario_.tick_seconds);
  install_standard_probes(*collector_, scenario_);
  // Scheduler introspection (not a simulation output): mean active-set size
  // per iteration since the previous sample. Under kDenseSweep this equals
  // the agent count.
  SimulationLoop* loop = loop_.get();
  collector_->add_probe("scheduler/active_agents",
                        [loop](Tick) { return loop->take_window_active_mean(); });
  Collector* collector = collector_.get();
  loop_->set_collect_callback([collector](Tick now) { collector->collect(now); });
}

void GdiSimulator::run_for(double seconds) {
  loop_->run_for_seconds(seconds);
}

void GdiSimulator::run_until_seconds(double seconds) {
  const Tick end = loop_->clock().to_ticks(seconds);
  if (end > loop_->now()) loop_->run_until(end);
}

void GdiSimulator::checkpoint(const std::string& path) {
  StateArchive ar(StateArchive::Mode::kWrite);
  archive_simulation(ar, scenario_, *loop_, *collector_);
  ar.write_to_file(path);
}

void GdiSimulator::restore(const std::string& path) {
  StateArchive ar = StateArchive::read_file(path);
  try {
    load_archive(ar, /*rollback_on_error=*/true);
  } catch (const std::exception& e) {
    const std::string why = e.what();
    // read_file diagnostics are already `path:byte N: why`; decode errors
    // from inside the payload gain the same prefix with the stream cursor.
    if (why.rfind(path, 0) == 0) throw;
    throw std::runtime_error(path + ":byte " + std::to_string(ar.cursor()) + ": " + why);
  }
}

std::vector<std::uint8_t> GdiSimulator::save_state() {
  StateArchive ar(StateArchive::Mode::kWrite);
  archive_simulation(ar, scenario_, *loop_, *collector_);
  return ar.payload();
}

void GdiSimulator::load_state(const std::vector<std::uint8_t>& payload, bool rollback_on_error) {
  StateArchive ar = StateArchive::reader(payload);
  load_archive(ar, rollback_on_error);
}

void GdiSimulator::load_archive(StateArchive& ar, bool rollback_on_error) {
  if (!rollback_on_error) {
    archive_simulation(ar, scenario_, *loop_, *collector_);
    return;
  }
  // Transactional load: a payload that fails mid-decode (truncated stream,
  // flipped bytes past the checksum, structural mismatch) must not leave the
  // simulator half-mutated. Back up first, roll back on any throw; the
  // rollback decode cannot fail because this simulator just produced it.
  std::vector<std::uint8_t> backup = save_state();
  try {
    archive_simulation(ar, scenario_, *loop_, *collector_);
  } catch (...) {
    StateArchive undo = StateArchive::reader(std::move(backup));
    archive_simulation(undo, scenario_, *loop_, *collector_);
    throw;
  }
}

}  // namespace gdisim
