// Whole-simulation snapshot orchestrator (DESIGN.md §8).
//
// Byte-stream order (identical on save and load):
//   compat header → loop state → software agents in registration order
//   (populations, series launchers, synchreps, indexbuilds — these bind
//   their live operation instances into the handler registry) → hardware
//   components in AgentId order (their queues encode completion-handler
//   pointers through the registry) → per-server memory occupancy →
//   topology failure state → collector series.
//
// Software agents come before hardware so that every handler key a
// component writes or resolves is already bound, in both directions.
#pragma once

#include "core/archive.h"

namespace gdisim {

class Collector;
class SimulationLoop;
struct Scenario;

/// Serializes (write mode) or restores (read mode) the complete mutable
/// state of a built simulation. On read the scenario/loop/collector must be
/// freshly constructed with the same structure as the one that saved the
/// snapshot; a structural mismatch throws std::runtime_error carrying a
/// line-by-line diff (rates/intervals may differ — that is warm-start
/// forking).
void archive_simulation(StateArchive& ar, Scenario& scenario, SimulationLoop& loop,
                        Collector& collector);

}  // namespace gdisim
