#include "sim/fingerprint.h"

#include <bit>
#include <cstdint>
#include <string_view>

#include "sim/gdisim.h"

namespace gdisim {
namespace {

constexpr std::uint64_t kOffset = 1469598103934665603ull;
constexpr std::uint64_t kPrime = 1099511628211ull;

struct Fnv {
  std::uint64_t h = kOffset;

  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= kPrime;
    }
  }
  void mix(double d) { mix(std::bit_cast<std::uint64_t>(d)); }
  void mix(std::string_view s) {
    for (const char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= kPrime;
    }
    mix(static_cast<std::uint64_t>(s.size()));
  }
  void mix(const OpStats& s) {
    mix(s.count);
    mix(s.total_s);
    mix(s.min_s);
    mix(s.max_s);
    mix(s.sum_sq);
  }
  void mix(const FreshnessLedger& ledger) {
    mix(static_cast<std::uint64_t>(ledger.runs().size()));
    for (const BackgroundRunRecord& r : ledger.runs()) {
      mix(r.launch_hour);
      mix(r.duration_s);
      mix(r.cover_from_hour);
      mix(r.cover_to_hour);
      mix(r.total_mb);
      for (const auto& [dc, mb] : r.pull_mb) {
        mix(static_cast<std::uint64_t>(dc));
        mix(mb);
      }
      for (const auto& [dc, mb] : r.push_mb) {
        mix(static_cast<std::uint64_t>(dc));
        mix(mb);
      }
    }
  }
};

}  // namespace

std::uint64_t result_fingerprint(GdiSimulator& sim) {
  Fnv f;
  Scenario& sc = sim.scenario();

  for (const auto& p : sc.populations) {
    f.mix(std::string_view(p->config().name));
    for (const auto& [op, stats] : p->stats()) {
      f.mix(std::string_view(op));
      f.mix(stats);
    }
  }
  for (const auto& l : sc.launchers) {
    f.mix(std::string_view(l->name()));
    for (const auto& [op, stats] : l->stats()) {
      f.mix(std::string_view(op));
      f.mix(stats);
    }
  }
  for (const auto& sr : sc.synchreps) {
    f.mix(std::string_view(sr->name()));
    f.mix(sr->ledger());
  }
  for (const auto& ib : sc.indexbuilds) {
    f.mix(std::string_view(ib->name()));
    f.mix(ib->ledger());
  }

  const Collector& col = sim.collector();
  for (std::size_t i = 0; i < col.probe_count(); ++i) {
    const TimeSeries& s = col.series(i);
    // Scheduler telemetry (active-agent counts etc.) legitimately differs
    // between active-set and dense-sweep modes; the fingerprint covers the
    // *simulation results*, which must not.
    if (s.label().rfind("scheduler/", 0) == 0) continue;
    f.mix(static_cast<std::uint64_t>(s.size()));
    for (const auto& sample : s.samples()) {
      f.mix(sample.t_seconds);
      f.mix(sample.value);
    }
  }

  f.mix(static_cast<std::uint64_t>(sim.loop().now()));
  return f.h;
}

}  // namespace gdisim
