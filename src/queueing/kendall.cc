#include "queueing/kendall.h"

#include <cctype>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace gdisim {

namespace {

[[noreturn]] void fail(const std::string& notation, const std::string& why) {
  throw std::invalid_argument("Kendall notation '" + notation + "': " + why);
}

ArrivalProcess parse_arrival(const std::string& s, const std::string& notation) {
  if (s == "M") return ArrivalProcess::kMarkov;
  if (s == "D") return ArrivalProcess::kDeterministic;
  if (s == "G" || s == "GI") return ArrivalProcess::kGeneral;
  fail(notation, "unknown arrival process '" + s + "'");
}

ServiceProcess parse_service(const std::string& s, const std::string& notation) {
  if (s == "M") return ServiceProcess::kMarkov;
  if (s == "D") return ServiceProcess::kDeterministic;
  if (s == "G") return ServiceProcess::kGeneral;
  fail(notation, "unknown service process '" + s + "'");
}

unsigned parse_positive(const std::string& s, const std::string& notation, const char* what) {
  if (s.empty()) fail(notation, std::string("empty ") + what);
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      fail(notation, std::string("non-numeric ") + what + " '" + s + "'");
    }
  }
  const unsigned long v = std::stoul(s);
  if (v == 0 || v > 1000000) fail(notation, std::string(what) + " out of range");
  return static_cast<unsigned>(v);
}

}  // namespace

std::string KendallSpec::to_string() const {
  std::ostringstream os;
  os << (arrival == ArrivalProcess::kMarkov ? "M"
         : arrival == ArrivalProcess::kDeterministic ? "D" : "G");
  os << '/'
     << (service == ServiceProcess::kMarkov ? "M"
         : service == ServiceProcess::kDeterministic ? "D" : "G");
  os << '/' << servers;
  if (capacity.has_value()) os << '/' << *capacity;
  os << (discipline == Discipline::kProcessorSharing ? "-PS" : "-FCFS");
  return os.str();
}

KendallSpec parse_kendall(const std::string& notation) {
  std::string body = notation;
  KendallSpec spec;

  // Split off an optional "-DISC" suffix.
  if (const auto dash = body.rfind('-'); dash != std::string::npos) {
    const std::string disc = body.substr(dash + 1);
    if (disc == "PS") {
      spec.discipline = Discipline::kProcessorSharing;
    } else if (disc == "FCFS") {
      spec.discipline = Discipline::kFcfs;
    } else {
      fail(notation, "unknown discipline '" + disc + "'");
    }
    body = body.substr(0, dash);
  }

  std::vector<std::string> parts;
  std::string field;
  std::istringstream is(body);
  while (std::getline(is, field, '/')) parts.push_back(field);
  if (parts.size() < 3 || parts.size() > 4) {
    fail(notation, "expected A/B/C or A/B/C/K factors");
  }

  spec.arrival = parse_arrival(parts[0], notation);
  spec.service = parse_service(parts[1], notation);
  spec.servers = parse_positive(parts[2], notation, "server count");
  if (parts.size() == 4) spec.capacity = parse_positive(parts[3], notation, "capacity");
  return spec;
}

std::unique_ptr<FcfsMultiServerQueue> make_fcfs_queue(const KendallSpec& spec,
                                                      double rate_per_server) {
  if (spec.discipline != Discipline::kFcfs) {
    throw std::invalid_argument("make_fcfs_queue: spec discipline is not FCFS");
  }
  return std::make_unique<FcfsMultiServerQueue>(spec.servers, rate_per_server);
}

std::unique_ptr<PsQueue> make_ps_queue(const KendallSpec& spec, double total_rate,
                                       double latency_seconds) {
  if (spec.discipline != Discipline::kProcessorSharing) {
    throw std::invalid_argument("make_ps_queue: spec discipline is not PS");
  }
  if (spec.servers != 1) {
    throw std::invalid_argument("make_ps_queue: PS queues are single-server (M/M/1/k-PS)");
  }
  return std::make_unique<PsQueue>(total_rate, spec.capacity.value_or(0), latency_seconds);
}

}  // namespace gdisim
