// Kendall's notation (thesis Appendix A): parser for the A/B/C and
// A/B/C/K/N-D forms used throughout the thesis ("M/M/c FCFS",
// "M/M/1/k-PS", "M/G/1/K-PS", ...), mapped onto the discrete-time queue
// implementations of this library.
//
// Supported:
//   A (arrival process)  : M, D, G, GI    — informational; the simulator is
//                                           trace/deterministic-demand driven
//   B (service process)  : M, D, G
//   C (servers)          : positive integer
//   K (system capacity)  : positive integer (optional)
//   discipline           : -FCFS (default) or -PS
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "queueing/fcfs_queue.h"
#include "queueing/ps_queue.h"

namespace gdisim {

enum class ArrivalProcess { kMarkov, kDeterministic, kGeneral };
enum class ServiceProcess { kMarkov, kDeterministic, kGeneral };
enum class Discipline { kFcfs, kProcessorSharing };

struct KendallSpec {
  ArrivalProcess arrival = ArrivalProcess::kMarkov;
  ServiceProcess service = ServiceProcess::kMarkov;
  unsigned servers = 1;
  std::optional<unsigned> capacity;  ///< K; absent = infinite
  Discipline discipline = Discipline::kFcfs;

  std::string to_string() const;
};

/// Parses e.g. "M/M/4", "M/M/1/32-PS", "G/G/2-FCFS".
/// Throws std::invalid_argument on malformed input.
KendallSpec parse_kendall(const std::string& notation);

/// Materializes a FCFS spec into a queue serving `rate_per_server`.
/// Throws if the spec's discipline is PS.
std::unique_ptr<FcfsMultiServerQueue> make_fcfs_queue(const KendallSpec& spec,
                                                      double rate_per_server);

/// Materializes a PS spec (servers must be 1; capacity becomes the
/// admission cap k) into a queue with the given total rate and latency.
std::unique_ptr<PsQueue> make_ps_queue(const KendallSpec& spec, double total_rate,
                                       double latency_seconds = 0.0);

}  // namespace gdisim
