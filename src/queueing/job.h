// Job abstraction shared by all queue disciplines.
//
// A job carries an amount of *work* in the unit the serving queue defines
// (CPU cycles, bits on a link, bytes from a disk...). Queues are advanced in
// discrete time steps; completed jobs are reported back to the owner via an
// opaque context pointer, which the hardware layer maps to the in-flight
// message/operation state.
#pragma once

#include <cstdint>
#include <vector>

namespace gdisim {

/// Opaque owner context attached to a queued job.
using JobCtx = void*;

struct QueuedJob {
  double remaining = 0.0;  ///< work left, in the queue's service unit
  JobCtx ctx = nullptr;
  std::uint64_t enqueue_seq = 0;  ///< FCFS tie-break / diagnostics
};

/// Result of advancing a queue by one time step.
struct AdvanceResult {
  std::vector<JobCtx> completed;  ///< jobs finished during the step, in order
  double work_done = 0.0;         ///< total work served during the step
};

}  // namespace gdisim
