// Job abstraction shared by all queue disciplines.
//
// A job carries an amount of *work* in the unit the serving queue defines
// (CPU cycles, bits on a link, bytes from a disk...). Queues are advanced in
// discrete time steps; completed jobs are reported back to the owner via an
// opaque context pointer, which the hardware layer maps to the in-flight
// message/operation state.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace gdisim {

class StateArchive;

/// Opaque owner context attached to a queued job.
using JobCtx = void*;

/// Snapshot translation between opaque job contexts and stable indices: the
/// owning component assigns indices (typically first-encounter order over
/// its JobPool contexts) because only it knows what a ctx points at.
using JobCtxEncoder = std::function<std::uint64_t(JobCtx)>;
using JobCtxDecoder = std::function<JobCtx(std::uint64_t)>;

/// Recycling allocator for per-job owner contexts. Queues identify in-flight
/// jobs by an opaque pointer that must stay stable until completion, so
/// components allocate one context per accepted job and free it when the job
/// finishes — at millions of jobs per run that malloc/free pair dominates the
/// accept/complete path. The pool hands back freed slots instead. Not
/// thread-safe: each component touches its own pool only from its own phases.
///
/// The pool also replaces the pointer-keyed live-job sets the components used
/// to carry for teardown: it owns every slot (in-flight contexts are freed by
/// the pool destructor in allocation order, never by iterating an
/// address-ordered container), and live() counts the in-flight contexts.
template <typename T>
class JobPool {
 public:
  T* create(const T& value) {
    ++live_;
    if (!free_.empty()) {
      T* slot = free_.back();
      free_.pop_back();
      *slot = value;
      return slot;
    }
    slots_.push_back(std::make_unique<T>(value));
    return slots_.back().get();
  }
  void destroy(T* slot) {
    --live_;
    free_.push_back(slot);
  }

  /// Contexts created and not yet destroyed.
  std::size_t live() const { return live_; }

 private:
  std::vector<std::unique_ptr<T>> slots_;  // ARCHIVE-TRANSIENT: pool storage; load re-allocates live jobs via archive_stagejob_queue
  std::vector<T*> free_;  // ARCHIVE-TRANSIENT: pool storage; load re-allocates live jobs via archive_stagejob_queue
  std::size_t live_ = 0;  // ARCHIVE-TRANSIENT: pool storage; load re-allocates live jobs via archive_stagejob_queue
};

struct QueuedJob {
  double remaining = 0.0;  ///< work left, in the queue's service unit
  JobCtx ctx = nullptr;
  std::uint64_t enqueue_seq = 0;  ///< FCFS tie-break / diagnostics
};

/// Result of advancing a queue by one time step.
struct AdvanceResult {
  std::vector<JobCtx> completed;  ///< jobs finished during the step, in order
  double work_done = 0.0;         ///< total work served during the step
};

}  // namespace gdisim
