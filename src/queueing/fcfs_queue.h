// First-Come-First-Served multi-server queue — the discrete-time realization
// of the M/M/c-FCFS stations the thesis uses for CPUs, NICs, switches and
// disk controllers (§3.4.2). Service demands are supplied per job (profiled
// canonical costs), so the "M" service assumption is generalized to
// deterministic-per-job demands; with exponential demands the queue matches
// the closed-form M/M/c predictions (property-tested against
// queueing/analytic.h).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "queueing/job.h"

namespace gdisim {

class FcfsMultiServerQueue {
 public:
  /// `servers` parallel servers, each serving `rate_per_server` work units
  /// per second.
  FcfsMultiServerQueue(unsigned servers, double rate_per_server);

  void enqueue(double work, JobCtx ctx);

  /// Advances the queue by `dt` seconds. Leftover capacity of a server that
  /// finishes a job mid-step is spent on the next waiting job, so accuracy
  /// does not degrade when job demands are smaller than the step.
  AdvanceResult advance(double dt);

  /// Same, appending completed job contexts to `completed` (cleared first)
  /// and returning the work done. Hot callers reuse one scratch vector
  /// across ticks instead of constructing a result per advance; the idle
  /// path stays inline and is identical to the general path with no jobs.
  double advance(double dt, std::vector<JobCtx>& completed) {
    completed.clear();
    if (dt <= 0.0) return 0.0;
    if (in_service_.empty()) {
      last_utilization_ = 0.0;
      elapsed_seconds_ += dt;
      return 0.0;
    }
    return advance_busy(dt, completed);
  }

  /// Instantaneous state.
  std::size_t in_service() const { return in_service_.size(); }
  std::size_t waiting() const { return waiting_.size(); }
  std::size_t total_jobs() const { return in_service() + waiting(); }
  unsigned servers() const { return servers_; }
  double rate_per_server() const { return rate_per_server_; }

  /// Fraction of server-seconds that were busy during the last advance().
  double last_utilization() const { return last_utilization_; }

  /// Cumulative statistics since construction.
  double busy_server_seconds() const { return busy_server_seconds_; }
  double elapsed_seconds() const { return elapsed_seconds_; }
  std::uint64_t completed_jobs() const { return completed_jobs_; }

  /// Snapshot round trip. Contexts are opaque to the queue, so the caller
  /// supplies `enc` (write: ctx -> stable index) and `dec` (read: index ->
  /// ctx). Jobs are visited in deterministic order: service slots first,
  /// then the waiting line. If the restored service set exceeds the current
  /// server count (a scenario fork shrank the station), the overflow spills
  /// back onto the waiting line.
  void archive_state(StateArchive& ar, const JobCtxEncoder& enc, const JobCtxDecoder& dec);

  /// Calls fn(ctx) for every in-flight context, in the same deterministic
  /// order archive_state serializes them.
  template <typename Fn>
  void for_each_ctx(Fn&& fn) const {
    for (const QueuedJob& j : in_service_) fn(j.ctx);
    for (const QueuedJob& j : waiting_) fn(j.ctx);
  }

 private:
  double advance_busy(double dt, std::vector<JobCtx>& completed);

  unsigned servers_;
  double rate_per_server_;  // ARCHIVE-TRANSIENT: immutable service-rate configuration
  std::vector<QueuedJob> in_service_;
  std::deque<QueuedJob> waiting_;
  std::uint64_t seq_ = 0;
  double last_utilization_ = 0.0;
  double busy_server_seconds_ = 0.0;
  double elapsed_seconds_ = 0.0;
  std::uint64_t completed_jobs_ = 0;
};

}  // namespace gdisim
