#include "queueing/analytic.h"

#include <cmath>
#include <stdexcept>

namespace gdisim::analytic {

namespace {
void require(bool cond, const char* msg) {
  if (!cond) throw std::invalid_argument(msg);
}
}  // namespace

double offered_load(double lambda, double mu) {
  require(lambda >= 0 && mu > 0, "offered_load: need lambda >= 0, mu > 0");
  return lambda / mu;
}

double erlang_c(unsigned c, double lambda, double mu) {
  require(c > 0, "erlang_c: c == 0");
  const double a = offered_load(lambda, mu);
  const double rho = a / c;
  require(rho < 1.0, "erlang_c: unstable queue (rho >= 1)");
  // Iteratively compute a^c / c! relative to the partial sum to stay stable.
  double term = 1.0;  // a^k / k! at k = 0
  double sum = 1.0;
  for (unsigned k = 1; k < c; ++k) {
    term *= a / k;
    sum += term;
  }
  term *= a / c;  // a^c / c!
  const double numer = term / (1.0 - rho);
  return numer / (sum + numer);
}

double mm1_mean_in_system(double lambda, double mu) {
  const double rho = offered_load(lambda, mu);
  require(rho < 1.0, "mm1: unstable");
  return rho / (1.0 - rho);
}

double mm1_mean_response_time(double lambda, double mu) {
  require(mu > lambda, "mm1: unstable");
  return 1.0 / (mu - lambda);
}

double mm1_mean_wait(double lambda, double mu) {
  require(mu > lambda, "mm1: unstable");
  return offered_load(lambda, mu) / (mu - lambda);
}

double mmc_mean_wait(unsigned c, double lambda, double mu) {
  const double pw = erlang_c(c, lambda, mu);
  return pw / (c * mu - lambda);
}

double mmc_mean_response_time(unsigned c, double lambda, double mu) {
  return mmc_mean_wait(c, lambda, mu) + 1.0 / mu;
}

double mmc_mean_in_system(unsigned c, double lambda, double mu) {
  return lambda * mmc_mean_response_time(c, lambda, mu);
}

double mmc_utilization(unsigned c, double lambda, double mu) {
  require(c > 0 && mu > 0, "mmc_utilization: bad parameters");
  return lambda / (static_cast<double>(c) * mu);
}

double mm1_ps_mean_response_time(double lambda, double mu) {
  return mm1_mean_response_time(lambda, mu);
}

double mm1k_blocking_probability(double lambda, double mu, unsigned k) {
  require(mu > 0, "mm1k: mu <= 0");
  const double rho = lambda / mu;
  if (std::abs(rho - 1.0) < 1e-12) return 1.0 / (k + 1);
  const double num = (1.0 - rho) * std::pow(rho, k);
  const double den = 1.0 - std::pow(rho, k + 1);
  return num / den;
}

}  // namespace gdisim::analytic
