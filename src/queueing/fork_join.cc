#include "queueing/fork_join.h"

#include <stdexcept>
#include <unordered_map>

#include "core/archive.h"
#include "core/audit.h"

namespace gdisim {

ForkJoinQueue::ForkJoinQueue(unsigned branches, double rate_per_branch) {
  if (branches == 0) throw std::invalid_argument("ForkJoinQueue: zero branches");
  branches_.reserve(branches);
  for (unsigned i = 0; i < branches; ++i) branches_.emplace_back(1, rate_per_branch);
}

void ForkJoinQueue::enqueue(double work, JobCtx ctx) {
  GDISIM_AUDIT_NONNEG(work, "ForkJoinQueue: negative work enqueued");
  GDISIM_AUDIT_JOB_SPAWNED(audit::Category::kForkJoinJob);
  JoinState* join = joins_.create(JoinState{branches(), ctx});
  const double share = work / static_cast<double>(branches());
  for (auto& branch : branches_) branch.enqueue(share, join);
}

AdvanceResult ForkJoinQueue::advance(double dt) {
  AdvanceResult result;
  double util_sum = 0.0;
  for (auto& branch : branches_) {
    AdvanceResult r = branch.advance(dt);
    util_sum += branch.last_utilization();
    for (JobCtx jc : r.completed) {
      auto* join = static_cast<JoinState*>(jc);
      GDISIM_AUDIT_CHECK(join->outstanding > 0,
                         "ForkJoinQueue: branch completion with no outstanding shares");
      if (--join->outstanding == 0) {
        result.completed.push_back(join->ctx);
        ++completed_jobs_;
        GDISIM_AUDIT_JOB_COMPLETED(audit::Category::kForkJoinJob);
        joins_.destroy(join);
      }
    }
    result.work_done += r.work_done;
  }
  last_utilization_ = util_sum / static_cast<double>(branches_.size());
  return result;
}

std::size_t ForkJoinQueue::total_jobs() const {
  return joins_.live();
}

void ForkJoinQueue::archive_state(StateArchive& ar, const JobCtxEncoder& enc,
                                  const JobCtxDecoder& dec) {
  ar.section("fork_join");
  std::size_t nb = branches_.size();
  ar.size_value(nb);
  ar.expect_equal(nb, branches_.size(), "fork-join branch count");
  if (ar.writing()) {
    // First-encounter index over the JoinStates referenced from the branch
    // queues. Every live join has outstanding > 0 shares queued, so this
    // enumeration is exhaustive. The map is lookup-only, never iterated.
    std::vector<JoinState*> order;
    std::unordered_map<JoinState*, std::uint64_t> index;  // NOLINT(gdisim-ptr-key-decl) archive-local lookup; never iterated
    const JobCtxEncoder branch_enc = [&](JobCtx ctx) -> std::uint64_t {
      auto* join = static_cast<JoinState*>(ctx);
      const auto [it, fresh] = index.emplace(join, order.size());
      if (fresh) order.push_back(join);
      return it->second;
    };
    for (auto& branch : branches_) branch.archive_state(ar, branch_enc, {});
    std::size_t nj = order.size();
    ar.size_value(nj);
    for (JoinState* join : order) {
      std::uint32_t outstanding = join->outstanding;
      ar.u32(outstanding);
      std::uint64_t code = enc(join->ctx);
      ar.u64(code);
    }
  } else {
    std::vector<JoinState*> loaded;
    const JobCtxDecoder branch_dec = [&](std::uint64_t idx) -> JobCtx {
      while (loaded.size() <= idx) {
        loaded.push_back(joins_.create(JoinState{0, nullptr}));
        GDISIM_AUDIT_JOB_SPAWNED(audit::Category::kForkJoinJob);
      }
      return loaded[idx];
    };
    for (auto& branch : branches_) branch.archive_state(ar, {}, branch_dec);
    std::size_t nj = 0;
    ar.size_value(nj);
    if (nj != loaded.size()) {
      throw std::runtime_error("snapshot: fork-join join table disagrees with branch shares");
    }
    for (JoinState* join : loaded) {
      std::uint32_t outstanding = 0;
      ar.u32(outstanding);
      join->outstanding = outstanding;
      std::uint64_t code = 0;
      ar.u64(code);
      join->ctx = dec(code);
    }
  }
  ar.f64(last_utilization_);
  ar.u64(completed_jobs_);
}

}  // namespace gdisim
