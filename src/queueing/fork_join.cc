#include "queueing/fork_join.h"

#include <stdexcept>

namespace gdisim {

ForkJoinQueue::ForkJoinQueue(unsigned branches, double rate_per_branch) {
  if (branches == 0) throw std::invalid_argument("ForkJoinQueue: zero branches");
  branches_.reserve(branches);
  for (unsigned i = 0; i < branches; ++i) branches_.emplace_back(1, rate_per_branch);
}

ForkJoinQueue::~ForkJoinQueue() {
  for (JoinState* join : live_joins_) delete join;
}

void ForkJoinQueue::enqueue(double work, JobCtx ctx) {
  auto* join = new JoinState{branches(), ctx};
  live_joins_.insert(join);
  const double share = work / static_cast<double>(branches());
  for (auto& branch : branches_) branch.enqueue(share, join);
}

AdvanceResult ForkJoinQueue::advance(double dt) {
  AdvanceResult result;
  double util_sum = 0.0;
  for (auto& branch : branches_) {
    AdvanceResult r = branch.advance(dt);
    util_sum += branch.last_utilization();
    for (JobCtx jc : r.completed) {
      auto* join = static_cast<JoinState*>(jc);
      if (--join->outstanding == 0) {
        result.completed.push_back(join->ctx);
        ++completed_jobs_;
        live_joins_.erase(join);
        delete join;
      }
    }
    result.work_done += r.work_done;
  }
  last_utilization_ = util_sum / static_cast<double>(branches_.size());
  return result;
}

std::size_t ForkJoinQueue::total_jobs() const {
  return live_joins_.size();
}

}  // namespace gdisim
