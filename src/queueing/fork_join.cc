#include "queueing/fork_join.h"

#include <stdexcept>

#include "core/audit.h"

namespace gdisim {

ForkJoinQueue::ForkJoinQueue(unsigned branches, double rate_per_branch) {
  if (branches == 0) throw std::invalid_argument("ForkJoinQueue: zero branches");
  branches_.reserve(branches);
  for (unsigned i = 0; i < branches; ++i) branches_.emplace_back(1, rate_per_branch);
}

void ForkJoinQueue::enqueue(double work, JobCtx ctx) {
  GDISIM_AUDIT_NONNEG(work, "ForkJoinQueue: negative work enqueued");
  GDISIM_AUDIT_JOB_SPAWNED(audit::Category::kForkJoinJob);
  JoinState* join = joins_.create(JoinState{branches(), ctx});
  const double share = work / static_cast<double>(branches());
  for (auto& branch : branches_) branch.enqueue(share, join);
}

AdvanceResult ForkJoinQueue::advance(double dt) {
  AdvanceResult result;
  double util_sum = 0.0;
  for (auto& branch : branches_) {
    AdvanceResult r = branch.advance(dt);
    util_sum += branch.last_utilization();
    for (JobCtx jc : r.completed) {
      auto* join = static_cast<JoinState*>(jc);
      GDISIM_AUDIT_CHECK(join->outstanding > 0,
                         "ForkJoinQueue: branch completion with no outstanding shares");
      if (--join->outstanding == 0) {
        result.completed.push_back(join->ctx);
        ++completed_jobs_;
        GDISIM_AUDIT_JOB_COMPLETED(audit::Category::kForkJoinJob);
        joins_.destroy(join);
      }
    }
    result.work_done += r.work_done;
  }
  last_utilization_ = util_sum / static_cast<double>(branches_.size());
  return result;
}

std::size_t ForkJoinQueue::total_jobs() const {
  return joins_.live();
}

}  // namespace gdisim
