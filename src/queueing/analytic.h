// Closed-form queueing theory results (Kendall's notation, thesis App. A).
//
// These are the *analytic models* of thesis Chapter 2 — the baseline
// technique GDISim is contrasted against. They serve two purposes here:
//   1. as the comparator implementation for the analytic-vs-simulation
//      benchmarks and examples, and
//   2. as oracles for property tests: the discrete-time queues must converge
//      to these predictions under Poisson arrivals / exponential demands.
#pragma once

#include <cstdint>

namespace gdisim::analytic {

/// Offered load a = lambda / mu (Erlang).
double offered_load(double lambda, double mu);

/// Erlang-C: probability an arriving customer must wait in an M/M/c queue.
double erlang_c(unsigned c, double lambda, double mu);

/// M/M/1 mean number in system: rho / (1 - rho). Requires rho < 1.
double mm1_mean_in_system(double lambda, double mu);

/// M/M/1 mean response (sojourn) time: 1 / (mu - lambda).
double mm1_mean_response_time(double lambda, double mu);

/// M/M/1 mean waiting time in queue: rho / (mu - lambda).
double mm1_mean_wait(double lambda, double mu);

/// M/M/c mean waiting time in queue (Erlang-C / (c*mu - lambda)).
double mmc_mean_wait(unsigned c, double lambda, double mu);

/// M/M/c mean response time (wait + service).
double mmc_mean_response_time(unsigned c, double lambda, double mu);

/// M/M/c mean number in system (Little's law on response time).
double mmc_mean_in_system(unsigned c, double lambda, double mu);

/// Server utilization of an M/M/c queue: lambda / (c * mu).
double mmc_utilization(unsigned c, double lambda, double mu);

/// M/M/1-PS mean response time — identical to M/M/1-FCFS in the mean, but
/// kept separate because callers reason about the PS discipline explicitly.
double mm1_ps_mean_response_time(double lambda, double mu);

/// M/M/1/K loss system: blocking probability (Erlang-like with finite room).
double mm1k_blocking_probability(double lambda, double mu, unsigned k);

}  // namespace gdisim::analytic
