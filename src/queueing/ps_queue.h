// Processor-Sharing queue with admission cap and propagation latency — the
// M/M/1/k-PS model the thesis uses for network links (§3.4.2, Figure 3-6)
// and the PS discipline used for time-shared CPUs in related analytic work.
//
// Up to `max_concurrent` jobs are served simultaneously, splitting the total
// service rate equally; additional jobs wait FCFS for an admission slot.
// After a job's work is fully served it remains in a latency pipe for the
// configured propagation delay before completing (thesis: "the latency in
// milliseconds is a constant value ... added to the processing time").
//
// Hot-state layout (DESIGN.md "Memory layout"): the active set and the
// latency pipe are struct-of-arrays — the per-tick serve pass streams over a
// dense array of `remaining` doubles (8 bytes/job) instead of 24-byte job
// structs, and the cross-tick minimum of `remaining` is cached so the pass
// never rescans just to size the first sub-step. All arithmetic (order of
// subtractions, comparisons and min updates) is identical to the
// array-of-structs implementation, so results are bit-identical.
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <vector>

#include "queueing/job.h"

namespace gdisim {

class PsQueue {
 public:
  /// `total_rate`: work units per second shared among active jobs.
  /// `max_concurrent`: admission cap k (0 means unlimited).
  /// `latency_seconds`: constant delay appended after service.
  PsQueue(double total_rate, std::size_t max_concurrent, double latency_seconds);

  void enqueue(double work, JobCtx ctx);

  AdvanceResult advance(double dt);

  /// Same, appending completed job contexts to `completed` (cleared first)
  /// and returning the work done. Hot callers reuse one scratch vector
  /// across ticks; the idle path stays inline and is identical to the
  /// general path with no jobs (waiting_ is necessarily empty when active_
  /// is — jobs only wait while the active set is at the admission cap).
  double advance(double dt, std::vector<JobCtx>& completed) {
    completed.clear();
    if (dt <= 0.0) return 0.0;
    if (active_rem_.empty() && pipe_delay_.empty()) {
      last_utilization_ = 0.0;
      elapsed_seconds_ += dt;
      return 0.0;
    }
    return advance_busy(dt, completed);
  }

  std::size_t active() const { return active_rem_.size(); }
  std::size_t waiting() const { return waiting_.size(); }
  std::size_t in_latency() const { return pipe_delay_.size(); }
  std::size_t total_jobs() const { return active() + waiting() + in_latency(); }

  double total_rate() const { return total_rate_; }
  double latency_seconds() const { return latency_seconds_; }
  std::size_t max_concurrent() const { return max_concurrent_; }

  /// Fraction of capacity used during the last advance().
  double last_utilization() const { return last_utilization_; }
  double busy_seconds() const { return busy_seconds_; }
  double elapsed_seconds() const { return elapsed_seconds_; }
  std::uint64_t completed_jobs() const { return completed_jobs_; }

  /// Snapshot round trip; see FcfsMultiServerQueue::archive_state for the
  /// enc/dec contract. Order: active set, waiting line, latency pipe. If a
  /// scenario fork lowered the admission cap, restored overflow jobs spill
  /// from the active set back onto the waiting line.
  void archive_state(StateArchive& ar, const JobCtxEncoder& enc, const JobCtxDecoder& dec);

  /// Calls fn(ctx) for every in-flight context, in archive order.
  template <typename Fn>
  void for_each_ctx(Fn&& fn) const {
    for (JobCtx ctx : active_ctx_) fn(ctx);
    for (const QueuedJob& j : waiting_) fn(j.ctx);
    for (JobCtx ctx : pipe_ctx_) fn(ctx);
  }

 private:
  struct FinishedJob {
    std::uint64_t seq;
    JobCtx ctx;
  };

  void push_active(double remaining, JobCtx ctx, std::uint64_t seq) {
    active_rem_.push_back(remaining);
    active_ctx_.push_back(ctx);
    active_seq_.push_back(seq);
    active_min_ = std::min(active_min_, remaining);
  }
  void push_pipe(double delay, JobCtx ctx, std::uint64_t seq) {
    pipe_delay_.push_back(delay);
    pipe_ctx_.push_back(ctx);
    pipe_seq_.push_back(seq);
  }

  void admit_waiting();
  double advance_busy(double dt, std::vector<JobCtx>& completed);

  double total_rate_;  // ARCHIVE-TRANSIENT: immutable service-rate configuration
  std::size_t max_concurrent_;
  double latency_seconds_;  // ARCHIVE-TRANSIENT: immutable service-time configuration
  // Active set, struct-of-arrays: parallel (remaining, ctx, enqueue_seq).
  std::vector<double> active_rem_;
  std::vector<JobCtx> active_ctx_;
  std::vector<std::uint64_t> active_seq_;
  /// Cached min of active_rem_ (infinity when empty); maintained on enqueue
  /// and by the serve pass. ARCHIVE-TRANSIENT: derived, rebuilt on restore.
  double active_min_ = std::numeric_limits<double>::infinity();
  std::deque<QueuedJob> waiting_;
  // Latency pipe, struct-of-arrays: parallel (remaining_delay, ctx, seq).
  std::vector<double> pipe_delay_;
  std::vector<JobCtx> pipe_ctx_;
  std::vector<std::uint64_t> pipe_seq_;
  // ARCHIVE-TRANSIENT: per-advance scratch, empty between ticks
  std::vector<FinishedJob> finished_scratch_;
  std::uint64_t seq_ = 0;
  double last_utilization_ = 0.0;
  double busy_seconds_ = 0.0;
  double elapsed_seconds_ = 0.0;
  std::uint64_t completed_jobs_ = 0;
};

}  // namespace gdisim
