#include "queueing/fcfs_queue.h"

#include <stdexcept>

#include "core/archive.h"
#include "core/audit.h"

namespace gdisim {

FcfsMultiServerQueue::FcfsMultiServerQueue(unsigned servers, double rate_per_server)
    : servers_(servers), rate_per_server_(rate_per_server) {
  if (servers == 0) throw std::invalid_argument("FcfsMultiServerQueue: zero servers");
  if (rate_per_server <= 0.0) throw std::invalid_argument("FcfsMultiServerQueue: rate <= 0");
  in_service_.reserve(servers);
}

void FcfsMultiServerQueue::enqueue(double work, JobCtx ctx) {
  GDISIM_AUDIT_NONNEG(work, "FcfsMultiServerQueue: negative work enqueued");
  GDISIM_AUDIT_JOB_SPAWNED(audit::Category::kFcfsJob);
  QueuedJob job{work, ctx, seq_++};
  if (in_service_.size() < servers_) {
    in_service_.push_back(job);
  } else {
    waiting_.push_back(job);
  }
}

void FcfsMultiServerQueue::archive_state(StateArchive& ar, const JobCtxEncoder& enc,
                                         const JobCtxDecoder& dec) {
  ar.section("fcfs");
  const auto rw_jobs = [&](auto& container) {
    std::size_t n = container.size();
    ar.size_value(n);
    if (ar.writing()) {
      for (QueuedJob& j : container) {
        ar.f64(j.remaining);
        std::uint64_t code = enc(j.ctx);
        ar.u64(code);
        ar.u64(j.enqueue_seq);
      }
    } else {
      container.clear();
      for (std::size_t i = 0; i < n; ++i) {
        QueuedJob j;
        ar.f64(j.remaining);
        std::uint64_t code = 0;
        ar.u64(code);
        j.ctx = dec(code);
        ar.u64(j.enqueue_seq);
        container.push_back(j);
        // Restored jobs were spawned before the checkpoint; replay the spawn
        // so the job-conservation ledger balances across the restore.
        GDISIM_AUDIT_JOB_SPAWNED(audit::Category::kFcfsJob);
      }
    }
  };
  rw_jobs(in_service_);
  rw_jobs(waiting_);
  if (ar.reading()) {
    // A scenario fork may have shrunk the station; spill overflow back onto
    // the head of the waiting line, preserving FCFS order.
    while (in_service_.size() > servers_) {
      waiting_.push_front(in_service_.back());
      in_service_.pop_back();
    }
  }
  ar.u64(seq_);
  ar.f64(last_utilization_);
  ar.f64(busy_server_seconds_);
  ar.f64(elapsed_seconds_);
  ar.u64(completed_jobs_);
}

AdvanceResult FcfsMultiServerQueue::advance(double dt) {
  AdvanceResult result;
  result.work_done = advance(dt, result.completed);
  return result;
}

double FcfsMultiServerQueue::advance_busy(double dt, std::vector<JobCtx>& completed) {
  const double budget_per_server = rate_per_server_ * dt;
  double total_work = 0.0;

  // Each server slot gets an independent budget; leftover capacity after a
  // completion is immediately spent on the next waiting job.
  for (std::size_t slot = 0; slot < in_service_.size();) {
    double budget = budget_per_server;
    bool slot_occupied = true;
    while (budget > 0.0 && slot_occupied) {
      QueuedJob& job = in_service_[slot];
      const double served = (job.remaining <= budget) ? job.remaining : budget;
      job.remaining -= served;
      budget -= served;
      total_work += served;
      if (job.remaining <= 0.0) {
        completed.push_back(job.ctx);
        ++completed_jobs_;
        GDISIM_AUDIT_JOB_COMPLETED(audit::Category::kFcfsJob);
        if (!waiting_.empty()) {
          in_service_[slot] = waiting_.front();
          waiting_.pop_front();
        } else {
          // Compact: move last slot into this one; do not advance `slot` so
          // the moved job also gets served this step with its own budget...
          // but it already had its budget if it came from an earlier slot.
          // To keep budgets exact, swap with the back and mark empty.
          in_service_[slot] = in_service_.back();
          in_service_.pop_back();
          slot_occupied = false;
        }
      }
    }
    if (slot_occupied) ++slot;
    // If the slot became empty we re-examine the swapped-in job at the same
    // index on the next loop iteration — with a fresh budget. That is
    // acceptable only if it had not been served yet this step; to guarantee
    // that, the swap above pulls from the *back*, which is always a
    // not-yet-visited slot when iterating forward. When slot == back the
    // pop simply shrinks the vector and the loop ends.
  }

  last_utilization_ = total_work / (static_cast<double>(servers_) * budget_per_server);
  busy_server_seconds_ += total_work / rate_per_server_;
  elapsed_seconds_ += dt;
  return total_work;
}

}  // namespace gdisim
