// Fork-join array of FCFS queues — the n-way structure the thesis uses for
// RAID disk arrays and SAN back-ends (§3.4.2, Figures 3-7/3-8): an incoming
// request is striped across all branches and completes when every branch has
// finished its share.
#pragma once

#include <memory>
#include <vector>

#include "queueing/fcfs_queue.h"
#include "queueing/job.h"

namespace gdisim {

class ForkJoinQueue {
 public:
  /// `branches` parallel branches (disks), each a single-server FCFS queue
  /// serving `rate_per_branch` work units per second.
  ForkJoinQueue(unsigned branches, double rate_per_branch);

  ForkJoinQueue(const ForkJoinQueue&) = delete;
  ForkJoinQueue& operator=(const ForkJoinQueue&) = delete;
  ForkJoinQueue(ForkJoinQueue&&) = default;
  ForkJoinQueue& operator=(ForkJoinQueue&&) = default;

  /// Stripes `work` evenly across branches; `ctx` completes when all shares
  /// have been served.
  void enqueue(double work, JobCtx ctx);

  AdvanceResult advance(double dt);

  unsigned branches() const { return static_cast<unsigned>(branches_.size()); }
  std::size_t total_jobs() const;
  double last_utilization() const { return last_utilization_; }
  std::uint64_t completed_jobs() const { return completed_jobs_; }

  /// Snapshot round trip; enc/dec translate the *external* join contexts
  /// (the ctx passed to enqueue). In-flight branch shares are re-linked to
  /// their join records through first-encounter indices over the branch
  /// queues, so the JobPool-owned JoinStates round-trip without ever
  /// serializing an address.
  void archive_state(StateArchive& ar, const JobCtxEncoder& enc, const JobCtxDecoder& dec);

 private:
  struct JoinState {
    unsigned outstanding;
    JobCtx ctx;
  };

  std::vector<FcfsMultiServerQueue> branches_;
  /// Owns every join context; in-flight joins are reclaimed by the pool on
  /// destruction, so no pointer-keyed live set is needed.
  JobPool<JoinState> joins_;
  double last_utilization_ = 0.0;
  std::uint64_t completed_jobs_ = 0;
};

}  // namespace gdisim
