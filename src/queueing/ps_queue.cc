#include "queueing/ps_queue.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "core/archive.h"
#include "core/audit.h"

namespace gdisim {

PsQueue::PsQueue(double total_rate, std::size_t max_concurrent, double latency_seconds)
    : total_rate_(total_rate),
      max_concurrent_(max_concurrent == 0 ? std::numeric_limits<std::size_t>::max()
                                          : max_concurrent),
      latency_seconds_(latency_seconds) {
  if (total_rate <= 0.0) throw std::invalid_argument("PsQueue: rate <= 0");
  if (latency_seconds < 0.0) throw std::invalid_argument("PsQueue: negative latency");
}

void PsQueue::enqueue(double work, JobCtx ctx) {
  GDISIM_AUDIT_NONNEG(work, "PsQueue: negative work enqueued");
  GDISIM_AUDIT_JOB_SPAWNED(audit::Category::kPsJob);
  QueuedJob job{work, ctx, seq_++};
  if (work <= 0.0) {
    // Pure-latency job (e.g. zero-byte control message): skip service.
    latency_pipe_.push_back(LatencyJob{latency_seconds_, ctx, job.enqueue_seq});
    return;
  }
  if (active_.size() < max_concurrent_) {
    active_.push_back(job);
  } else {
    waiting_.push_back(job);
  }
}

void PsQueue::admit_waiting() {
  while (active_.size() < max_concurrent_ && !waiting_.empty()) {
    active_.push_back(waiting_.front());
    waiting_.pop_front();
  }
}

void PsQueue::archive_state(StateArchive& ar, const JobCtxEncoder& enc,
                            const JobCtxDecoder& dec) {
  ar.section("ps");
  const auto rw_jobs = [&](auto& container) {
    std::size_t n = container.size();
    ar.size_value(n);
    if (ar.writing()) {
      for (QueuedJob& j : container) {
        ar.f64(j.remaining);
        std::uint64_t code = enc(j.ctx);
        ar.u64(code);
        ar.u64(j.enqueue_seq);
      }
    } else {
      container.clear();
      for (std::size_t i = 0; i < n; ++i) {
        QueuedJob j;
        ar.f64(j.remaining);
        std::uint64_t code = 0;
        ar.u64(code);
        j.ctx = dec(code);
        ar.u64(j.enqueue_seq);
        container.push_back(j);
        GDISIM_AUDIT_JOB_SPAWNED(audit::Category::kPsJob);
      }
    }
  };
  rw_jobs(active_);
  rw_jobs(waiting_);
  if (ar.reading()) {
    // A scenario fork may have lowered the admission cap.
    while (active_.size() > max_concurrent_) {
      waiting_.push_front(active_.back());
      active_.pop_back();
    }
  }
  std::size_t pipe = latency_pipe_.size();
  ar.size_value(pipe);
  if (ar.writing()) {
    for (LatencyJob& j : latency_pipe_) {
      ar.f64(j.remaining_delay);
      std::uint64_t code = enc(j.ctx);
      ar.u64(code);
      ar.u64(j.seq);
    }
  } else {
    latency_pipe_.clear();
    for (std::size_t i = 0; i < pipe; ++i) {
      LatencyJob j{0.0, nullptr, 0};
      ar.f64(j.remaining_delay);
      std::uint64_t code = 0;
      ar.u64(code);
      j.ctx = dec(code);
      ar.u64(j.seq);
      latency_pipe_.push_back(j);
      GDISIM_AUDIT_JOB_SPAWNED(audit::Category::kPsJob);
    }
  }
  ar.u64(seq_);
  ar.f64(last_utilization_);
  ar.f64(busy_seconds_);
  ar.f64(elapsed_seconds_);
  ar.u64(completed_jobs_);
}

AdvanceResult PsQueue::advance(double dt) {
  AdvanceResult result;
  result.work_done = advance(dt, result.completed);
  return result;
}

double PsQueue::advance_busy(double dt, std::vector<JobCtx>& completed) {
  // 1. Serve the active set, splitting capacity equally. Jobs that finish
  //    mid-step release their share to the others; iterate in sub-steps
  //    until the budget is exhausted or nothing is active.
  double remaining_dt = dt;
  double work_done = 0.0;
  while (remaining_dt > 0.0 && !active_.empty()) {
    const double share = total_rate_ / static_cast<double>(active_.size());
    // Time until the first active job finishes at the current share.
    double min_finish = std::numeric_limits<double>::infinity();
    for (const QueuedJob& j : active_) min_finish = std::min(min_finish, j.remaining / share);
    const double step = std::min(remaining_dt, min_finish);
    const double served_each = share * step;
    // Sub-step end measured from the start of this advance(); used so a job
    // entering the latency pipe mid-step is not charged delay for time that
    // elapsed before it finished service (phase 2 subtracts the full dt).
    const double elapsed_at_finish = (dt - remaining_dt) + step;

    // In-place compaction (stable, same order a copy-the-survivors pass
    // would produce) so a busy queue does not allocate every sub-step.
    std::size_t keep = 0;
    for (std::size_t i = 0; i < active_.size(); ++i) {
      QueuedJob& j = active_[i];
      j.remaining -= served_each;
      work_done += served_each;
      if (j.remaining <= 1e-12) {
        latency_pipe_.push_back(LatencyJob{latency_seconds_ + elapsed_at_finish, j.ctx, j.enqueue_seq});
      } else {
        if (keep != i) active_[keep] = j;
        ++keep;
      }
    }
    active_.resize(keep);
    admit_waiting();
    remaining_dt -= step;
    if (step <= 0.0) break;  // numerical safety
  }

  // 2. Drain the latency pipe (in place, same compaction argument as above).
  // Sort by seq so completion order is deterministic and FIFO-like.
  if (latency_pipe_.size() > 1) {
    std::sort(latency_pipe_.begin(), latency_pipe_.end(),
              [](const LatencyJob& a, const LatencyJob& b) { return a.seq < b.seq; });
  }
  std::size_t delayed_keep = 0;
  for (std::size_t i = 0; i < latency_pipe_.size(); ++i) {
    LatencyJob& j = latency_pipe_[i];
    j.remaining_delay -= dt;
    if (j.remaining_delay <= 1e-12) {
      completed.push_back(j.ctx);
      ++completed_jobs_;
      GDISIM_AUDIT_JOB_COMPLETED(audit::Category::kPsJob);
    } else {
      if (delayed_keep != i) latency_pipe_[delayed_keep] = j;
      ++delayed_keep;
    }
  }
  latency_pipe_.resize(delayed_keep);

  const double capacity = total_rate_ * dt;
  last_utilization_ = capacity > 0.0 ? work_done / capacity : 0.0;
  busy_seconds_ += dt - remaining_dt;
  elapsed_seconds_ += dt;
  return work_done;
}

}  // namespace gdisim
