#include "queueing/ps_queue.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "core/archive.h"
#include "core/audit.h"

namespace gdisim {

PsQueue::PsQueue(double total_rate, std::size_t max_concurrent, double latency_seconds)
    : total_rate_(total_rate),
      max_concurrent_(max_concurrent == 0 ? std::numeric_limits<std::size_t>::max()
                                          : max_concurrent),
      latency_seconds_(latency_seconds) {
  if (total_rate <= 0.0) throw std::invalid_argument("PsQueue: rate <= 0");
  if (latency_seconds < 0.0) throw std::invalid_argument("PsQueue: negative latency");
}

void PsQueue::enqueue(double work, JobCtx ctx) {
  GDISIM_AUDIT_NONNEG(work, "PsQueue: negative work enqueued");
  GDISIM_AUDIT_JOB_SPAWNED(audit::Category::kPsJob);
  const std::uint64_t seq = seq_++;
  if (work <= 0.0) {
    // Pure-latency job (e.g. zero-byte control message): skip service.
    push_pipe(latency_seconds_, ctx, seq);
    return;
  }
  if (active_rem_.size() < max_concurrent_) {
    push_active(work, ctx, seq);
  } else {
    waiting_.push_back(QueuedJob{work, ctx, seq});
  }
}

void PsQueue::admit_waiting() {
  while (active_rem_.size() < max_concurrent_ && !waiting_.empty()) {
    const QueuedJob& j = waiting_.front();
    // The caller (serve pass) folds newly admitted jobs into its running
    // minimum itself, so push_active's min update is redundant but harmless.
    push_active(j.remaining, j.ctx, j.enqueue_seq);
    waiting_.pop_front();
  }
}

void PsQueue::archive_state(StateArchive& ar, const JobCtxEncoder& enc,
                            const JobCtxDecoder& dec) {
  ar.section("ps");
  // Byte layout identical to the former array-of-structs implementation:
  // count, then (remaining, ctx, seq) triples per job.
  const auto write_soa = [&](std::vector<double>& rem, std::vector<JobCtx>& ctx,
                             std::vector<std::uint64_t>& seq) {
    std::size_t n = rem.size();
    ar.size_value(n);
    if (ar.writing()) {
      for (std::size_t i = 0; i < n; ++i) {
        ar.f64(rem[i]);
        std::uint64_t code = enc(ctx[i]);
        ar.u64(code);
        ar.u64(seq[i]);
      }
    } else {
      rem.clear();
      ctx.clear();
      seq.clear();
      for (std::size_t i = 0; i < n; ++i) {
        double r = 0.0;
        ar.f64(r);
        std::uint64_t code = 0;
        ar.u64(code);
        std::uint64_t s = 0;
        ar.u64(s);
        rem.push_back(r);
        ctx.push_back(dec(code));
        seq.push_back(s);
        GDISIM_AUDIT_JOB_SPAWNED(audit::Category::kPsJob);
      }
    }
  };
  write_soa(active_rem_, active_ctx_, active_seq_);
  {
    std::size_t n = waiting_.size();
    ar.size_value(n);
    if (ar.writing()) {
      for (QueuedJob& j : waiting_) {
        ar.f64(j.remaining);
        std::uint64_t code = enc(j.ctx);
        ar.u64(code);
        ar.u64(j.enqueue_seq);
      }
    } else {
      waiting_.clear();
      for (std::size_t i = 0; i < n; ++i) {
        QueuedJob j;
        ar.f64(j.remaining);
        std::uint64_t code = 0;
        ar.u64(code);
        j.ctx = dec(code);
        ar.u64(j.enqueue_seq);
        waiting_.push_back(j);
        GDISIM_AUDIT_JOB_SPAWNED(audit::Category::kPsJob);
      }
    }
  }
  if (ar.reading()) {
    // A scenario fork may have lowered the admission cap.
    while (active_rem_.size() > max_concurrent_) {
      waiting_.push_front(
          QueuedJob{active_rem_.back(), active_ctx_.back(), active_seq_.back()});
      active_rem_.pop_back();
      active_ctx_.pop_back();
      active_seq_.pop_back();
    }
  }
  write_soa(pipe_delay_, pipe_ctx_, pipe_seq_);
  ar.u64(seq_);
  ar.f64(last_utilization_);
  ar.f64(busy_seconds_);
  ar.f64(elapsed_seconds_);
  ar.u64(completed_jobs_);
  if (ar.reading()) {
    active_min_ = std::numeric_limits<double>::infinity();
    for (double r : active_rem_) active_min_ = std::min(active_min_, r);
  }
}

AdvanceResult PsQueue::advance(double dt) {
  AdvanceResult result;
  result.work_done = advance(dt, result.completed);
  return result;
}

double PsQueue::advance_busy(double dt, std::vector<JobCtx>& completed) {
  // 1. Serve the active set, splitting capacity equally. Jobs that finish
  //    mid-step release their share to the others; iterate in sub-steps
  //    until the budget is exhausted or nothing is active.
  //
  // The per-sub-step minimum is maintained over `remaining` (not the
  // quotient): division by the positive constant `share` is monotone in
  // IEEE arithmetic, so min(remaining)/share == min(remaining/share)
  // bit-for-bit and the fused serve+min pass below reproduces the exact
  // step sizes a separate min-scan would compute. The entry minimum comes
  // from the cached cross-tick active_min_ (maintained by enqueue and by
  // the previous serve pass), so the pass never rescans just to start.
  double remaining_dt = dt;
  double work_done = 0.0;
  double min_remaining = active_min_;
  while (remaining_dt > 0.0 && !active_rem_.empty()) {
    const std::size_t n = active_rem_.size();
    const double share = total_rate_ / static_cast<double>(n);
    // Time until the first active job finishes at the current share.
    const double min_finish = min_remaining / share;
    const double step = std::min(remaining_dt, min_finish);
    const double served_each = share * step;

    // No-finish fast path. IEEE subtraction by a constant is monotone
    // (a <= b implies fl(a-c) <= fl(b-c)), so if the smallest job survives
    // the threshold test — fl(min - c) > 1e-12 — every job does, and the
    // survivors' minimum is exactly fl(min - c). The fused loop below would
    // store the identical fl(rem[i] - c) for every job, touch no ctx/seq
    // (keep == i throughout), admit nothing (the active set did not shrink)
    // and accumulate the identical n sequential `work_done += c` adds, so
    // this branch is bit-for-bit equivalent — it only skips the per-element
    // finish test, compaction bookkeeping and the min reduction chain,
    // letting the subtraction stream vectorize. This is the common sub-step:
    // the last sub-step of every busy advance ends by exhausting dt, not by
    // finishing a job.
    const double survivor_min = min_remaining - served_each;
    if (survivor_min > 1e-12) {
      const std::size_t n_active = active_rem_.size();
      double* rem = active_rem_.data();
      for (std::size_t i = 0; i < n_active; ++i) rem[i] -= served_each;
      // Same n sequential adds the fused loop performs; the interleaving
      // with the (independent) subtractions does not affect the bits.
      for (std::size_t i = 0; i < n_active; ++i) work_done += served_each;
      min_remaining = survivor_min;
      remaining_dt -= step;
      if (step <= 0.0) break;  // numerical safety
      continue;
    }

    // Sub-step end measured from the start of this advance(); used so a job
    // entering the latency pipe mid-step is not charged delay for time that
    // elapsed before it finished service (phase 2 subtracts the full dt).
    const double elapsed_at_finish = (dt - remaining_dt) + step;

    // In-place compaction (stable, same order a copy-the-survivors pass
    // would produce) so a busy queue does not allocate every sub-step.
    // The same pass computes the survivors' minimum for the next sub-step.
    // The serve arithmetic streams over the dense remaining[] array; ctx/seq
    // are only touched for jobs that finish or move during compaction.
    std::size_t keep = 0;
    min_remaining = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < n; ++i) {
      const double r = active_rem_[i] - served_each;
      work_done += served_each;
      if (r <= 1e-12) {
        push_pipe(latency_seconds_ + elapsed_at_finish, active_ctx_[i], active_seq_[i]);
      } else {
        min_remaining = std::min(min_remaining, r);
        active_rem_[keep] = r;
        if (keep != i) {
          active_ctx_[keep] = active_ctx_[i];
          active_seq_[keep] = active_seq_[i];
        }
        ++keep;
      }
    }
    active_rem_.resize(keep);
    active_ctx_.resize(keep);
    active_seq_.resize(keep);
    admit_waiting();
    for (std::size_t i = keep; i < active_rem_.size(); ++i)
      min_remaining = std::min(min_remaining, active_rem_[i]);
    remaining_dt -= step;
    if (step <= 0.0) break;  // numerical safety
  }
  active_min_ = min_remaining;

  // 2. Drain the latency pipe (in place, same compaction argument as above).
  // Each entry's delay countdown is independent of container order, so the
  // pipe itself is left unsorted; only the (few) jobs completing this tick
  // are sorted by their unique seq, which yields exactly the completion
  // order the previous sort-the-whole-pipe-every-advance scheme produced
  // while skipping the O(n log n) pass on every busy tick.
  finished_scratch_.clear();
  std::size_t delayed_keep = 0;
  const std::size_t pipe_n = pipe_delay_.size();
  for (std::size_t i = 0; i < pipe_n; ++i) {
    const double d = pipe_delay_[i] - dt;
    if (d <= 1e-12) {
      finished_scratch_.push_back(FinishedJob{pipe_seq_[i], pipe_ctx_[i]});
    } else {
      pipe_delay_[delayed_keep] = d;
      if (delayed_keep != i) {
        pipe_ctx_[delayed_keep] = pipe_ctx_[i];
        pipe_seq_[delayed_keep] = pipe_seq_[i];
      }
      ++delayed_keep;
    }
  }
  pipe_delay_.resize(delayed_keep);
  pipe_ctx_.resize(delayed_keep);
  pipe_seq_.resize(delayed_keep);
  if (finished_scratch_.size() > 1) {
    std::sort(finished_scratch_.begin(), finished_scratch_.end(),
              [](const FinishedJob& a, const FinishedJob& b) { return a.seq < b.seq; });
  }
  for (const FinishedJob& f : finished_scratch_) {
    completed.push_back(f.ctx);
    ++completed_jobs_;
    GDISIM_AUDIT_JOB_COMPLETED(audit::Category::kPsJob);
  }

  const double capacity = total_rate_ * dt;
  last_utilization_ = capacity > 0.0 ? work_done / capacity : 0.0;
  busy_seconds_ += dt - remaining_dt;
  elapsed_seconds_ += dt;
  return work_done;
}

}  // namespace gdisim
