// H-Dispatch engine (thesis §4.3.5, Figure 4-5; adaptation of Holmes et al.).
//
// A fixed pool of worker threads — as many as cores dedicated to the
// simulator — stays alive for the whole run. At each phase, workers *pull*
// agent sets (index chunks of `agent_set_size`) from a shared H-Dispatch
// queue until it is empty, reusing their stacks and local allocations. This
// converts the push-per-handler scatter-gather into a pull model with load
// balancing and near-zero per-agent overhead (Table 4.2 / Figure 4-6).
//
// Phases arrive back-to-back (twice per simulated tick), so workers spin on
// an atomic generation counter before falling back to a condition variable;
// a futex round-trip per phase per worker would dominate small scenarios.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "core/engine.h"

namespace gdisim {

class HDispatchEngine final : public ExecutionEngine {
 public:
  /// `threads` == 0 means run phases inline on the caller (serial).
  HDispatchEngine(std::size_t threads, std::size_t agent_set_size);
  ~HDispatchEngine() override;

  void for_each(std::size_t count, const std::function<void(std::size_t)>& fn) override;
  bool serial() const override { return workers_.empty(); }
  std::string_view name() const override { return "h-dispatch"; }

  std::size_t agent_set_size() const { return agent_set_size_; }
  std::size_t thread_count() const { return workers_.size(); }

 private:
  void worker_loop();

  std::size_t agent_set_size_;
  std::vector<std::thread> workers_;

  // Phase handshake. phase_count_/phase_fn_ are published by the release
  // store on generation_ and read after the acquire load; they are atomics
  // (relaxed accesses) so the master's clear of phase_fn_ after the
  // acquire/release handshake on finished_workers_ is formally race-free
  // against a straggler's read, keeping TSan clean.
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> phase_count_{0};
  std::atomic<const std::function<void(std::size_t)>*> phase_fn_{nullptr};
  std::atomic<std::size_t> cursor_{0};
  std::atomic<std::size_t> finished_workers_{0};

  // Sleep fallback for long idle gaps (e.g. the master doing setup).
  std::mutex mu_;
  std::condition_variable phase_cv_;
  std::condition_variable done_cv_;
};

}  // namespace gdisim
