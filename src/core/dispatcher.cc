#include "core/dispatcher.h"

namespace gdisim {

Dispatcher::Dispatcher(std::size_t thread_count) {
  threads_.reserve(thread_count);
  for (std::size_t i = 0; i < thread_count; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

Dispatcher::~Dispatcher() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void Dispatcher::post(WorkItem item) {
  if (threads_.empty()) {
    item();
    std::lock_guard<std::mutex> lock(mu_);
    ++executed_;
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(item));
  }
  cv_.notify_one();
}

void Dispatcher::drain() {
  if (threads_.empty()) return;
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

std::uint64_t Dispatcher::executed_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return executed_;
}

void Dispatcher::worker_loop() {
  for (;;) {
    WorkItem item;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      item = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    item();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      ++executed_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace gdisim
