// Execution engines: strategies for running one phase of agent work.
//
// The simulation loop is engine-agnostic; an engine's only job is to apply a
// function to indices [0, count) with some parallelization strategy. Three
// engines are provided:
//   * SerialEngine         — plain loop (reference semantics)
//   * ScatterGatherEngine  — one dispatcher work item per agent (thesis
//                            §4.3.4; does not scale, reproduced by
//                            bench_scalability_scatter_gather)
//   * HDispatchEngine      — fixed worker pool pulling agent *sets* from a
//                            shared queue (thesis §4.3.5; scales, reproduced
//                            by bench_scalability_h_dispatch)
// All engines must produce identical simulation results; only wall-clock
// performance differs (tested in tests/core/engine_equivalence_test.cc).
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string_view>

namespace gdisim {

class ExecutionEngine {
 public:
  virtual ~ExecutionEngine() = default;

  /// Applies `fn` to every index in [0, count). Returns when all are done.
  /// `fn` must be safe to call concurrently for distinct indices.
  virtual void for_each(std::size_t count, const std::function<void(std::size_t)>& fn) = 0;

  /// True when for_each runs entirely inline on the caller's thread. Lets
  /// the simulation loop skip the std::function indirection (one virtual
  /// dispatch per agent per phase — measurable at hundreds of millions of
  /// agent-phases per run) and loop directly.
  virtual bool serial() const { return false; }

  virtual std::string_view name() const = 0;
};

class SerialEngine final : public ExecutionEngine {
 public:
  void for_each(std::size_t count, const std::function<void(std::size_t)>& fn) override;
  bool serial() const override { return true; }
  std::string_view name() const override { return "serial"; }
};

/// Factory helpers (definitions in scatter_gather.cc / h_dispatch.cc).
std::unique_ptr<ExecutionEngine> make_scatter_gather_engine(std::size_t threads);
std::unique_ptr<ExecutionEngine> make_h_dispatch_engine(std::size_t threads,
                                                        std::size_t agent_set_size);

}  // namespace gdisim
