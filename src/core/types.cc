#include "core/types.h"

#include <cstdio>

namespace gdisim {

std::string format_sim_time(double seconds) {
  const bool neg = seconds < 0;
  if (neg) seconds = -seconds;
  const auto total = static_cast<long long>(seconds);
  const long long h = total / 3600;
  const long long m = (total % 3600) / 60;
  const long long s = total % 60;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s%lld:%02lld:%02lld", neg ? "-" : "", h, m, s);
  return buf;
}

}  // namespace gdisim
