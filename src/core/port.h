// Port-based programming abstraction (thesis §4.2.2, Figure 4-1).
//
// A Port<T> is the only point of entry to a stateful agent. Messages posted
// to a port are paired with the port's registered receiver by the arbiter
// and submitted to a dispatcher as work items ("active messages").
//
// Receivers are registered through the coordination primitives in
// coordination.h (single-item, multiple-item, join, choice, interleave);
// this header provides the raw port and the arbiter hook they build upon.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>

#include "core/dispatcher.h"

namespace gdisim {

namespace detail {

/// Type-erased receiver hook installed on a port by a coordination primitive.
/// `on_post` is invoked (under the port lock released) after each message is
/// enqueued; the receiver decides whether to consume messages and schedule
/// handler work items.
class ReceiverHook {
 public:
  virtual ~ReceiverHook() = default;
  virtual void on_post() = 0;
};

}  // namespace detail

template <typename T>
class Port {
 public:
  Port() = default;
  Port(const Port&) = delete;
  Port& operator=(const Port&) = delete;

  /// Posts a message. If a receiver is attached it is notified so it can
  /// evaluate its firing condition.
  void post(T message) {
    std::shared_ptr<detail::ReceiverHook> hook;
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back(std::move(message));
      hook = hook_;
    }
    if (hook) hook->on_post();
  }

  /// Non-blocking test-and-take.
  std::optional<T> try_take() {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return std::nullopt;
    T front = std::move(queue_.front());
    queue_.pop_front();
    return front;
  }

  /// Takes up to `n` messages at once (used by multiple-item receivers).
  std::deque<T> take_up_to(std::size_t n) {
    std::lock_guard<std::mutex> lock(mu_);
    std::deque<T> out;
    while (!queue_.empty() && out.size() < n) {
      out.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    return out;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
  }

  /// Installs/replaces the receiver hook. Passing nullptr detaches.
  void attach(std::shared_ptr<detail::ReceiverHook> hook) {
    std::shared_ptr<detail::ReceiverHook> installed;
    {
      std::lock_guard<std::mutex> lock(mu_);
      hook_ = std::move(hook);
      installed = hook_;
    }
    // Fire once in case messages were already waiting.
    if (installed) installed->on_post();
  }

 private:
  mutable std::mutex mu_;
  std::deque<T> queue_;
  std::shared_ptr<detail::ReceiverHook> hook_;
};

}  // namespace gdisim
