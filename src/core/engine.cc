#include "core/engine.h"

namespace gdisim {

void SerialEngine::for_each(std::size_t count, const std::function<void(std::size_t)>& fn) {
  for (std::size_t i = 0; i < count; ++i) fn(i);
}

}  // namespace gdisim
