// The discrete time loop (thesis §4.3.1).
//
// A centralized timer drives the heartbeat: at every step all agents receive
// the time-increment signal, then the interaction step absorbs deliveries,
// and periodically the measurement-collection signal samples agent state.
//
// Iteration with now == T means:
//   1. tick phase:        every agent advances through (T, T+1]; work that
//                         completes is forwarded stamped visible_at = T+1.
//   2. interaction phase: every agent absorbs deliveries visible_at <= T+1
//                         into its service queues; they first receive
//                         service during tick T+1 (consistency rule §4.3.3).
//   3. collection phase:  every `collect_every` iterations the registered
//                         collection callback samples the whole system.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/agent.h"
#include "core/engine.h"
#include "core/types.h"

namespace gdisim {

struct SimLoopConfig {
  double tick_seconds = 0.01;
  /// Interval (in ticks) between measurement-collection signals; 0 disables.
  Tick collect_every = 0;
};

class SimulationLoop {
 public:
  SimulationLoop(SimLoopConfig config, ExecutionEngine& engine)
      : config_(config), clock_(config.tick_seconds), engine_(&engine) {}

  /// Registers an agent (non-owning) and assigns its dense id.
  AgentId add_agent(Agent* agent);

  /// Runs until simulated `end_tick` (exclusive).
  void run_until(Tick end_tick);

  /// Runs a given simulated duration in seconds from the current time.
  void run_for_seconds(double seconds);

  /// Executes exactly one iteration (tick + interaction + maybe collection).
  void step();

  Tick now() const { return now_; }
  double now_seconds() const { return clock_.to_seconds(now_); }
  const TickClock& clock() const { return clock_; }
  const SimLoopConfig& config() const { return config_; }
  std::size_t agent_count() const { return agents_.size(); }

  /// Measurement-collection control signal target (thesis Collector
  /// Component). Invoked with the tick at which the sample is taken.
  void set_collect_callback(std::function<void(Tick)> cb) { collect_cb_ = std::move(cb); }

  /// Pre-tick hooks run single-threaded at the start of each iteration,
  /// before any agent phase — the safe place to mutate shared state such as
  /// routing tables (used by the failure injector).
  void add_pre_tick_hook(std::function<void(Tick)> hook) {
    pre_tick_hooks_.push_back(std::move(hook));
  }

  ExecutionEngine& engine() { return *engine_; }
  void set_engine(ExecutionEngine& engine) { engine_ = &engine; }

 private:
  SimLoopConfig config_;
  TickClock clock_;
  ExecutionEngine* engine_;
  std::vector<Agent*> agents_;
  std::function<void(Tick)> collect_cb_;
  std::vector<std::function<void(Tick)>> pre_tick_hooks_;
  Tick now_ = 0;
};

}  // namespace gdisim
