// The discrete time loop (thesis §4.3.1).
//
// A centralized timer drives the heartbeat: at every step all *active*
// agents receive the time-increment signal, then the interaction step
// absorbs deliveries, and periodically the measurement-collection signal
// samples agent state.
//
// Iteration with now == T means:
//   1. tick phase:        every active agent advances through (T, T+1]; work
//                         that completes is forwarded stamped visible_at = T+1.
//   2. interaction phase: every active agent absorbs deliveries
//                         visible_at <= T+1 into its service queues; they
//                         first receive service during tick T+1 (consistency
//                         rule §4.3.3).
//   3. collection phase:  every `collect_every` iterations the registered
//                         collection callback samples the whole system.
//
// Scheduler modes (DESIGN.md "Scheduler"): the default active-set scheduler
// runs the phases only for agents that are due — always-active agents,
// calendar wakes reported via Agent::next_wake_tick, and agents woken by a
// delivery posted to their inbox. kDenseSweep restores the original
// run-everyone-every-tick loop and serves as the reference-run oracle.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/agent.h"
#include "core/engine.h"
#include "core/types.h"
#include "core/wake_calendar.h"

namespace gdisim {

enum class SchedulerMode {
  kActiveSet,   ///< phase cost proportional to active agents (default)
  kDenseSweep,  ///< original dense sweep; A/B oracle for the active set
};

struct SimLoopConfig {
  double tick_seconds = 0.01;
  /// Interval (in ticks) between measurement-collection signals; 0 disables.
  Tick collect_every = 0;
  SchedulerMode scheduler = SchedulerMode::kActiveSet;
};

/// Active-set occupancy counters (exposed as a collector series and by the
/// bench JSON emitter). Under the dense sweep every agent counts as active,
/// so occupancy() == 1.
struct SchedulerStats {
  std::uint64_t iterations = 0;
  /// Sum over iterations of the interaction-phase active-set size.
  std::uint64_t agent_phase_runs = 0;
  std::size_t last_active = 0;
  std::size_t agents = 0;
  /// Iterations each agent participated in — the per-agent occupancy
  /// breakdown behind mean_active() (who keeps the set hot).
  std::vector<std::uint64_t> per_agent_runs;

  double mean_active() const {
    return iterations > 0 ? static_cast<double>(agent_phase_runs) /
                                static_cast<double>(iterations)
                          : 0.0;
  }
  double occupancy() const {
    return agents > 0 && iterations > 0 ? mean_active() / static_cast<double>(agents) : 1.0;
  }
};

class SimulationLoop : public AgentWakeScheduler {
 public:
  SimulationLoop(SimLoopConfig config, ExecutionEngine& engine)
      : config_(config),
        clock_(config.tick_seconds),
        engine_(&engine),
        active_mode_(config.scheduler == SchedulerMode::kActiveSet) {}

  /// Registers an agent (non-owning) and assigns its dense id. Under the
  /// active-set scheduler this also binds the agent's wake hook; agents must
  /// be registered before the run starts.
  AgentId add_agent(Agent* agent);

  /// Runs until simulated `end_tick` (exclusive).
  void run_until(Tick end_tick);

  /// Runs a given simulated duration in seconds from the current time.
  void run_for_seconds(double seconds);

  /// Executes exactly one iteration (tick + interaction + maybe collection).
  void step();

  Tick now() const { return now_; }
  Agent* agent(AgentId id) const { return agents_[id]; }
  double now_seconds() const { return clock_.to_seconds(now_); }
  const TickClock& clock() const { return clock_; }
  const SimLoopConfig& config() const { return config_; }
  std::size_t agent_count() const { return agents_.size(); }
  SchedulerMode scheduler_mode() const {
    return active_mode_ ? SchedulerMode::kActiveSet : SchedulerMode::kDenseSweep;
  }

  /// Thread-safe (AgentWakeScheduler): ensures the agent participates in the
  /// next phase. Posting to a bound Inbox calls this automatically.
  void wake(AgentId id) override;

  const SchedulerStats& scheduler_stats() const { return stats_; }

  /// Mean interaction-phase active-set size since the previous call — the
  /// collector probe behind the "scheduler/active_agents" series. Resets the
  /// window.
  double take_window_active_mean();

  /// Measurement-collection control signal target (thesis Collector
  /// Component). Invoked with the tick at which the sample is taken.
  void set_collect_callback(std::function<void(Tick)> cb) { collect_cb_ = std::move(cb); }

  /// Pre-tick hooks run single-threaded at the start of each iteration,
  /// before any agent phase — the safe place to mutate shared state such as
  /// routing tables (used by the failure injector).
  void add_pre_tick_hook(std::function<void(Tick)> hook) {
    pre_tick_hooks_.push_back(std::move(hook));
  }

  ExecutionEngine& engine() { return *engine_; }
  void set_engine(ExecutionEngine& engine) { engine_ = &engine; }

  /// Snapshot round trip of the loop's own state: the clock position and the
  /// scheduler statistics. Active-set bookkeeping (calendar, wake flags,
  /// shards) is deliberately *not* serialized — on read every agent is
  /// re-marked immediate, which is result-neutral: each agent's own
  /// next_wake_tick answer takes over after one iteration, exactly like the
  /// post-registration warm-up.
  void archive_state(StateArchive& ar);

 private:
  void step_dense(Tick now);
  void step_active(Tick now);
  void admit(AgentId id);
  void drain_woken();
  void rearm_active(Tick now);
  void maybe_collect(Tick now);

  /// Runs one phase body over [0, n). When the engine executes inline this
  /// skips the std::function indirection entirely — one indirect call per
  /// agent per phase adds up to hundreds of millions per run.
  template <typename F>
  void run_phase(std::size_t n, F&& f) {
    if (engine_serial_) {
      for (std::size_t i = 0; i < n; ++i) f(i);
    } else {
      engine_->for_each(n, std::forward<F>(f));
    }
  }

  SimLoopConfig config_;  // ARCHIVE-TRANSIENT: construction-time configuration
  TickClock clock_;  // ARCHIVE-TRANSIENT: construction-time configuration
  ExecutionEngine* engine_;  // NOLINT(gdisim-snapshot-ptr) ARCHIVE-TRANSIENT: construction-time wiring
  std::vector<Agent*> agents_;
  std::function<void(Tick)> collect_cb_;  // ARCHIVE-TRANSIENT: construction-time wiring
  std::vector<std::function<void(Tick)>> pre_tick_hooks_;  // ARCHIVE-TRANSIENT: construction-time wiring
  Tick now_ = 0;
  bool active_mode_;
  bool engine_serial_ = false;  // ARCHIVE-TRANSIENT: derived from the engine at construction
  /// -1 until the first step binds the engine-mode hint to every agent;
  /// then 0/1 mirroring engine_serial_ so a set_engine swap rebinds.
  int serial_hint_state_ = -1;  // ARCHIVE-TRANSIENT: engine wiring, rebound each run
  bool hints_bound_ = false;  // ARCHIVE-TRANSIENT: wiring flag; hints rebind on restore

  // --- Active-set scheduler state (master-only except where noted). ---
  /// Ids whose phases run this iteration; grows mid-iteration when tick-phase
  /// deliveries wake their recipients for the interaction phase.
  std::vector<AgentId> active_;
  /// next_wake_tick answers gathered during the interaction phase (indexed
  /// like active_; each slot written by exactly one worker).
  std::vector<Tick> rearm_;  // ARCHIVE-TRANSIENT: active-set scratch; restore re-wakes every agent
  /// Agents that answered kEveryTick — sticky members of every active set.
  std::vector<AgentId> always_active_;
  std::vector<char> in_always_;
  /// Agents due next iteration (wake <= now + 1); bypasses the wheel.
  std::vector<AgentId> immediate_;
  WakeCalendar calendar_;
  /// Per-iteration dedup for admissions.
  std::vector<std::uint64_t> epoch_mark_;  // ARCHIVE-TRANSIENT: per-iteration dedup; restore re-wakes every agent
  std::uint64_t epoch_ = 0;  // ARCHIVE-TRANSIENT: per-iteration dedup; restore re-wakes every agent

  // Cross-thread wake path: a per-agent flag dedups requests (cleared by the
  // master when the wake is consumed at a barrier), sharded id lists absorb
  // the surviving pushes. Safe for any thread; merged only at barriers. The
  // flags live in a flat array (reallocated only in add_agent, which is
  // master-only and pre-run) because wake() is called once per delivery.
  std::unique_ptr<std::atomic<bool>[]> wake_flag_;
  std::size_t wake_flag_count_ = 0;  // ARCHIVE-TRANSIENT: flag-array bookkeeping sized pre-run
  std::size_t wake_flag_cap_ = 0;  // ARCHIVE-TRANSIENT: flag-array bookkeeping sized pre-run
  /// Number of ids sitting in the woken shards; lets drain_woken skip the
  /// shard sweep (16 lock round-trips) on quiet iterations.
  std::atomic<std::size_t> woken_pending_{0};
  static constexpr std::size_t kWokenShards = 8;
  struct alignas(64) WokenShard {
    SpinLock lock;
    std::vector<AgentId> ids;
  };
  std::array<WokenShard, kWokenShards> woken_;
  std::vector<AgentId> woken_scratch_;

  SchedulerStats stats_;
  double window_active_accum_ = 0.0;
  std::uint64_t window_iters_ = 0;
};

}  // namespace gdisim
