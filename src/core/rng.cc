#include "core/rng.h"

#include <cmath>

#include "core/archive.h"

namespace gdisim {

double Rng::next_exponential(double mean) {
  // Inverse-CDF; clamp the uniform away from 0 to avoid log(0).
  double u = next_double();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::next_normal(double mean, double stddev) {
  // Box–Muller. Draws two uniforms per variate; simple and stream-stable.
  double u1 = next_double();
  double u2 = next_double();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  return mean + stddev * r * std::cos(theta);
}

Rng Rng::split(std::string_view purpose) const {
  // Fold the current state with the purpose hash through SplitMix64 so child
  // streams are decorrelated from the parent and from each other.
  return split_hashed(stable_hash(purpose));
}

void Rng::archive_state(StateArchive& ar) {
  for (auto& word : s_) ar.u64(word);
}

std::uint64_t stable_hash(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t stable_hash_decimal(std::uint64_t v) {
  char buf[20];  // 2^64 has 20 decimal digits
  char* end = buf + sizeof(buf);
  char* p = end;
  do {
    *--p = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  return stable_hash(std::string_view(p, static_cast<std::size_t>(end - p)));
}

}  // namespace gdisim
