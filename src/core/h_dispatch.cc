#include "core/h_dispatch.h"

#include <algorithm>
#include <thread>

namespace gdisim {

namespace {
// Hot-spinning between phases only helps when another core can make
// progress; on a single-core host it would steal time from the worker that
// holds the work.
int spin_budget() {
  static const int budget = std::thread::hardware_concurrency() > 1 ? 20000 : 0;
  return budget;
}
}

HDispatchEngine::HDispatchEngine(std::size_t threads, std::size_t agent_set_size)
    : agent_set_size_(std::max<std::size_t>(1, agent_set_size)) {
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

HDispatchEngine::~HDispatchEngine() {
  stop_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(mu_);
  }
  phase_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void HDispatchEngine::for_each(std::size_t count, const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (workers_.empty()) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  phase_count_.store(count, std::memory_order_relaxed);
  phase_fn_.store(&fn, std::memory_order_relaxed);
  cursor_.store(0, std::memory_order_relaxed);
  finished_workers_.store(0, std::memory_order_relaxed);
  generation_.fetch_add(1, std::memory_order_release);
  {
    // Pairing with the sleepers' predicate check: without taking the mutex
    // the notify could land between a worker's predicate evaluation and its
    // wait(), losing the wakeup for good.
    std::lock_guard<std::mutex> lock(mu_);
  }
  phase_cv_.notify_all();

  // The master also pulls agent sets — it would otherwise idle while
  // holding a core the thesis counts as a worker.
  for (;;) {
    const std::size_t begin = cursor_.fetch_add(agent_set_size_, std::memory_order_relaxed);
    if (begin >= count) break;
    const std::size_t end = std::min(begin + agent_set_size_, count);
    for (std::size_t i = begin; i < end; ++i) fn(i);
  }

  // Wait for stragglers: spin, then sleep. The acquire load of
  // finished_workers_ pairs with each worker's acq_rel increment, so every
  // worker's final read of phase_fn_ happens-before the clear below.
  for (int spin = 0; spin < spin_budget(); ++spin) {
    if (finished_workers_.load(std::memory_order_acquire) == workers_.size()) {
      phase_fn_.store(nullptr, std::memory_order_relaxed);
      return;
    }
    if ((spin & 63) == 63) std::this_thread::yield();
  }
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] {
    return finished_workers_.load(std::memory_order_acquire) == workers_.size();
  });
  phase_fn_.store(nullptr, std::memory_order_relaxed);
}

void HDispatchEngine::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    // Wait for a new generation: lock-free spin first, condvar fallback.
    bool have_phase = false;
    for (int spin = 0; spin < spin_budget(); ++spin) {
      if (stop_.load(std::memory_order_acquire)) return;
      if (generation_.load(std::memory_order_acquire) != seen_generation) {
        have_phase = true;
        break;
      }
      if ((spin & 63) == 63) std::this_thread::yield();
    }
    if (!have_phase) {
      std::unique_lock<std::mutex> lock(mu_);
      phase_cv_.wait(lock, [this, seen_generation] {
        return stop_.load(std::memory_order_acquire) ||
               generation_.load(std::memory_order_acquire) != seen_generation;
      });
      if (stop_.load(std::memory_order_acquire)) return;
    }
    seen_generation = generation_.load(std::memory_order_acquire);
    const std::size_t count = phase_count_.load(std::memory_order_relaxed);
    const std::function<void(std::size_t)>* fn = phase_fn_.load(std::memory_order_relaxed);

    // Pull agent sets from the H-Dispatch queue until it runs dry.
    for (;;) {
      const std::size_t begin = cursor_.fetch_add(agent_set_size_, std::memory_order_relaxed);
      if (begin >= count) break;
      const std::size_t end = std::min(begin + agent_set_size_, count);
      for (std::size_t i = begin; i < end; ++i) (*fn)(i);
    }

    if (finished_workers_.fetch_add(1, std::memory_order_acq_rel) + 1 == workers_.size()) {
      std::lock_guard<std::mutex> lock(mu_);
      done_cv_.notify_one();
    }
  }
}

std::unique_ptr<ExecutionEngine> make_h_dispatch_engine(std::size_t threads,
                                                        std::size_t agent_set_size) {
  return std::make_unique<HDispatchEngine>(threads, agent_set_size);
}

}  // namespace gdisim
