// Runtime invariant auditor (DESIGN.md "Correctness tooling").
//
// A compile-time-gated referee for the invariants the determinism and
// conservation claims rest on: every job spawned is eventually completed
// (spawned = completed + live), work amounts and occupancies never go
// negative, each agent observes a strictly increasing tick clock, and the
// multiset of inbox drains folds into a thread-schedule-independent hash
// that must match across engines and thread counts.
//
// The auditor is enabled by the GDISIM_AUDIT compile definition (CMake
// option GDISIM_AUDIT / the `audit` preset). In release builds every
// GDISIM_AUDIT_* macro expands to `((void)0)` and no auditor state exists,
// so the hooks are zero-cost. All counters are process-global atomics:
// instrumentation sites are spread across worker threads, and the checks
// only need monotone counts, not per-component attribution.
//
// Failure policy: a tripped invariant calls the installed failure handler
// with a description. The default handler prints the message and aborts;
// tests install a throwing/recording handler via set_failure_handler to
// assert that specific corruptions are caught.
#pragma once

#include <cstdint>

namespace gdisim::audit {

/// Conservation ledger categories. One spawned/completed counter pair each.
enum class Category : unsigned {
  kFcfsJob = 0,   ///< jobs through FcfsMultiServerQueue
  kPsJob,         ///< jobs through PsQueue
  kForkJoinJob,   ///< joins through ForkJoinQueue
  kRaidJob,       ///< RAID pipeline jobs (dacc + fork-join)
  kSanJob,        ///< SAN pipeline jobs
  kOperation,     ///< OperationInstance cascades
  kCount
};

const char* category_name(Category c);

/// Snapshot of the auditor state (audit builds; zeroed otherwise).
struct Report {
  std::uint64_t spawned[static_cast<unsigned>(Category::kCount)] = {};
  std::uint64_t completed[static_cast<unsigned>(Category::kCount)] = {};
  /// Commutative (xor-folded) hash over every inbox drain. Equal multisets
  /// of drains produce equal hashes regardless of thread schedule, so two
  /// runs of the same workload must report the same value at the same tick
  /// whatever the engine or thread count.
  std::uint64_t drain_hash = 0;
  /// Invariant violations observed (nonzero only when a non-aborting
  /// failure handler is installed).
  std::uint64_t failures = 0;

  std::uint64_t live(Category c) const {
    const auto i = static_cast<unsigned>(c);
    return spawned[i] - completed[i];
  }
};

using FailureHandler = void (*)(const char* message);

#if defined(GDISIM_AUDIT) && GDISIM_AUDIT
#define GDISIM_AUDIT_ENABLED 1
#else
#define GDISIM_AUDIT_ENABLED 0
#endif

// The engine-serial fast-path guard (Inbox: serial mode must only ever be
// exercised from the thread that enabled it) is active whenever the auditor
// is — trips route through the replaceable failure handler — and in plain
// debug builds, where it downgrades to assert.
#if GDISIM_AUDIT_ENABLED || !defined(NDEBUG)
#define GDISIM_SERIAL_GUARD_ENABLED 1
#else
#define GDISIM_SERIAL_GUARD_ENABLED 0
#endif

#if GDISIM_AUDIT_ENABLED

inline constexpr bool kEnabled = true;

/// Reports an invariant violation through the installed handler.
void fail(const char* message);

/// Installs a failure handler; returns the previous one. Passing nullptr
/// restores the default print-and-abort handler. Not thread-safe against
/// concurrent failures: install before the run starts.
FailureHandler set_failure_handler(FailureHandler handler);

void job_spawned(Category c);
/// Fails if the category would have more completions than spawns
/// (double-complete / completion of a job that was never spawned).
void job_completed(Category c);

void check(bool ok, const char* what);
void check_nonneg(double value, const char* what);

/// Folds one drain's hash into the global accumulator (xor: commutative,
/// so the result is independent of drain interleaving across threads).
void fold_drain(std::uint64_t h);
std::uint64_t drain_hash();

/// Fails unless spawned == completed for the category — call once the
/// simulation has fully drained (no operations in flight).
void check_drained(Category c, const char* what);

Report snapshot();
/// Clears all counters and the drain hash (test isolation).
void reset();

#else  // !GDISIM_AUDIT_ENABLED

inline constexpr bool kEnabled = false;

inline void fail(const char*) {}
inline FailureHandler set_failure_handler(FailureHandler) { return nullptr; }
inline void job_spawned(Category) {}
inline void job_completed(Category) {}
inline void check(bool, const char*) {}
inline void check_nonneg(double, const char*) {}
inline void fold_drain(std::uint64_t) {}
inline std::uint64_t drain_hash() { return 0; }
inline void check_drained(Category, const char*) {}
inline Report snapshot() { return {}; }
inline void reset() {}

#endif  // GDISIM_AUDIT_ENABLED

}  // namespace gdisim::audit

// Hook macros. In release builds they expand to `((void)0)` without
// evaluating their arguments, so instrumentation sites cost nothing.
#if GDISIM_AUDIT_ENABLED
#define GDISIM_AUDIT_JOB_SPAWNED(cat) ::gdisim::audit::job_spawned(cat)
#define GDISIM_AUDIT_JOB_COMPLETED(cat) ::gdisim::audit::job_completed(cat)
#define GDISIM_AUDIT_CHECK(cond, what) ::gdisim::audit::check((cond), (what))
#define GDISIM_AUDIT_NONNEG(value, what) ::gdisim::audit::check_nonneg((value), (what))
#define GDISIM_AUDIT_FOLD_DRAIN(hash) ::gdisim::audit::fold_drain(hash)
/// Per-agent clock monotonicity: the tick phase must observe strictly
/// increasing `now` values (Agent::audit_tick_signal).
#define GDISIM_AUDIT_AGENT_TICK(agent, now) (agent)->audit_tick_signal(now)
#else
#define GDISIM_AUDIT_JOB_SPAWNED(cat) ((void)0)
#define GDISIM_AUDIT_JOB_COMPLETED(cat) ((void)0)
#define GDISIM_AUDIT_CHECK(cond, what) ((void)0)
#define GDISIM_AUDIT_NONNEG(value, what) ((void)0)
#define GDISIM_AUDIT_FOLD_DRAIN(hash) ((void)0)
#define GDISIM_AUDIT_AGENT_TICK(agent, now) ((void)0)
#endif
