#include "core/scatter_gather.h"

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <vector>

#include "core/coordination.h"
#include "core/port.h"

namespace gdisim {

/// Per-agent scatter machinery: a typed port plus its persistent
/// single-item receiver (thesis Figure 4-2: "a message of type M is posted
/// to each port in an array of ports ... each registered with a Single-Item
/// Receiver").
struct ScatterGatherEngine::AgentPort {
  Port<std::size_t> port;
  std::shared_ptr<SingleItemReceiver<std::size_t>> receiver;
};

ScatterGatherEngine::ScatterGatherEngine(std::size_t threads)
    : dispatcher_(std::make_unique<Dispatcher>(threads)) {}

ScatterGatherEngine::~ScatterGatherEngine() = default;

void ScatterGatherEngine::ensure_ports(std::size_t count) {
  while (ports_.size() < count) {
    auto ap = std::make_unique<AgentPort>();
    AgentPort* raw = ap.get();
    // The handler resolves the current phase function at invocation time;
    // the receiver itself is registered once and lives for the engine.
    ap->receiver = SingleItemReceiver<std::size_t>::attach(
        raw->port, *dispatcher_, [this](std::size_t index) {
          const auto* fn = current_fn_.load(std::memory_order_acquire);
          (*fn)(index);
          if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            std::lock_guard<std::mutex> lock(gather_mu_);
            gather_done_ = true;
            gather_cv_.notify_one();
          }
        });
    ports_.push_back(std::move(ap));
  }
}

void ScatterGatherEngine::for_each(std::size_t count, const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  ensure_ports(count);

  current_fn_.store(&fn, std::memory_order_release);
  remaining_.store(count, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(gather_mu_);
    gather_done_ = false;
  }

  // Scatter: one control-signal message per agent port. The arbiter pairs
  // each with the registered handler into a work item on the dispatcher —
  // deliberately allocation- and queue-heavy, which is exactly the
  // overhead Table 4.1 measures.
  for (std::size_t i = 0; i < count; ++i) ports_[i]->port.post(i);

  // Gather: wait for the acknowledgement countdown (the time
  // synchronization port role of Figure 4-3).
  std::unique_lock<std::mutex> lock(gather_mu_);
  gather_cv_.wait(lock, [this] { return gather_done_; });
}

std::unique_ptr<ExecutionEngine> make_scatter_gather_engine(std::size_t threads) {
  return std::make_unique<ScatterGatherEngine>(threads);
}

}  // namespace gdisim
