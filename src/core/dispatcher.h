// Work-item dispatcher (thesis §4.2.2, Figure 4-1).
//
// The dispatcher owns a queue of *work items* — active messages already
// paired with their handler by an arbiter — and a pool of threads that
// continuously pull and execute them. Handlers run on the stack of the
// pulling thread: no per-message thread is ever spawned.
//
// A thread count of zero selects inline execution (post() runs the item on
// the calling thread), which is useful for tests and for the serial engine.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gdisim {

using WorkItem = std::function<void()>;

class Dispatcher {
 public:
  explicit Dispatcher(std::size_t thread_count);
  ~Dispatcher();

  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  /// Enqueues a work item; wakes one worker. With zero threads the item runs
  /// synchronously on the caller's stack.
  void post(WorkItem item);

  /// Blocks until the queue is empty and all workers are idle.
  void drain();

  std::size_t thread_count() const { return threads_.size(); }

  /// Total items executed since construction (approximate under concurrency).
  std::uint64_t executed_count() const;

 private:
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable cv_;        // signals work available / shutdown
  std::condition_variable idle_cv_;   // signals possible idleness for drain()
  std::deque<WorkItem> queue_;
  std::vector<std::thread> threads_;
  std::size_t active_ = 0;
  std::uint64_t executed_ = 0;
  bool stop_ = false;
};

}  // namespace gdisim
