// StateArchive: versioned, deterministic, endian-stable binary snapshot
// reader/writer (DESIGN.md §8 "Snapshot format & forking").
//
// One class serves both directions. Every primitive is symmetric and
// by-reference — `ar.u64(x)` appends x when writing and assigns x when
// reading — so each layer implements a single `archive_state()` that is its
// own inverse. All multi-byte values are encoded little-endian byte by byte,
// independent of host endianness; doubles travel as their IEEE-754 bit
// pattern. Named section markers catch save/load asymmetry bugs at the exact
// field where the streams diverge instead of as garbage 40 fields later.
//
// The file wrapper adds a magic string, a format version and an FNV-1a
// payload checksum, so a truncated or foreign file fails loudly before any
// state is touched.
//
// HandlerRegistry lives here too: it re-expresses the pointer-linked runtime
// state (StageJob completion handlers, held MemoryComponent references,
// route component pointers) through the stable ids PR 3 introduced
// (AgentId, instance_serial), which is what makes those pointers
// round-trippable at all.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/types.h"

namespace gdisim {

class Agent;
class StageCompletionHandler;
class MemoryComponent;

class StateArchive {
 public:
  enum class Mode { kWrite, kRead };

  static constexpr std::uint32_t kFormatVersion = 1;

  explicit StateArchive(Mode mode) : mode_(mode) {}

  /// Read-mode archive over an in-memory payload (unit tests, forking).
  static StateArchive reader(std::vector<std::uint8_t> payload);

  bool writing() const { return mode_ == Mode::kWrite; }
  bool reading() const { return mode_ == Mode::kRead; }

  // Symmetric primitives: append on write, assign on read.
  void u8(std::uint8_t& v);
  void u32(std::uint32_t& v);
  void u64(std::uint64_t& v);
  void i64(std::int64_t& v);
  void f64(double& v);
  void boolean(bool& v);
  void str(std::string& v);
  /// std::size_t helper (encoded as u64).
  void size_value(std::size_t& v);

  /// Stream marker. On write, records `name`; on read, verifies the next
  /// marker matches and throws std::runtime_error naming both sides if not.
  void section(const char* name);

  /// On read: require `v == expected` (structural invariant baked into the
  /// live object, e.g. a queue's server count). Message names the field.
  template <typename T>
  void expect_equal(const T& v, const T& expected, const char* what) {
    if (reading() && !(v == expected)) {
      throw std::runtime_error(std::string("snapshot mismatch: ") + what);
    }
  }

  const std::vector<std::uint8_t>& payload() const { return buf_; }
  std::size_t cursor() const { return cursor_; }
  /// True when a read-mode archive has consumed every payload byte.
  bool exhausted() const { return cursor_ >= buf_.size(); }

  void write_to_file(const std::string& path) const;
  static StateArchive read_file(const std::string& path);

 private:
  void put(const std::uint8_t* bytes, std::size_t n);
  void get(std::uint8_t* bytes, std::size_t n);

  Mode mode_;
  std::vector<std::uint8_t> buf_;
  std::size_t cursor_ = 0;
};

/// Stable-id key for a StageJob completion handler: the launching agent plus
/// the operation-instance serial it assigned (unique per launcher).
struct HandlerKey {
  AgentId owner = kInvalidAgent;
  std::uint64_t serial = 0;
};

/// Two-way translation between runtime pointers and stable snapshot ids,
/// rebuilt from scratch on every checkpoint *and* every restore. Software
/// agents bind their live operation instances while archiving; hardware
/// components then encode/decode the handler pointers buried in their
/// queues. Memory components (not agents) are keyed by the AgentId of the
/// CPU on the same server, bound by the snapshot orchestrator's topology
/// walk.
class HandlerRegistry {
 public:
  void bind(AgentId owner, std::uint64_t serial, StageCompletionHandler* handler);
  HandlerKey key_of(StageCompletionHandler* handler) const;
  StageCompletionHandler* resolve(const HandlerKey& key) const;

  void bind_memory(AgentId cpu_id, MemoryComponent* memory);
  AgentId memory_key(MemoryComponent* memory) const;
  MemoryComponent* resolve_memory(AgentId cpu_id) const;

  void set_agent_resolver(std::function<Agent*(AgentId)> resolver) {
    agent_resolver_ = std::move(resolver);
  }
  Agent* resolve_agent(AgentId id) const;

 private:
  // Pointer-keyed maps are lookup-only (never iterated), so allocator
  // addresses cannot influence any ordering decision.
  std::unordered_map<const StageCompletionHandler*, HandlerKey> key_by_handler_;  // NOLINT(gdisim-ptr-key-decl) lookup table; never iterated
  std::map<std::pair<AgentId, std::uint64_t>, StageCompletionHandler*> handler_by_key_;
  std::unordered_map<const MemoryComponent*, AgentId> key_by_memory_;  // NOLINT(gdisim-ptr-key-decl) lookup table; never iterated
  std::map<AgentId, MemoryComponent*> memory_by_key_;
  std::function<Agent*(AgentId)> agent_resolver_;
};

}  // namespace gdisim
