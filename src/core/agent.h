// Agent base class and the deterministic interaction inbox.
//
// Thesis §4.3.2/§4.3.3: agents receive two control signals (time increment,
// measurement collection) plus interaction signals from other agents. The
// engine guarantees that an interaction scheduled for time t is never
// processed by an agent whose local clock has not yet reached t; the Inbox
// enforces this with visibility timestamps and restores determinism under
// multithreading by sorting deliveries on (visible_at, sender, sequence).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "core/types.h"

namespace gdisim {

class Agent {
 public:
  virtual ~Agent() = default;

  /// Stable diagnostic name ("dc=NA/tier=app/server=2/cpu").
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  AgentId id() const { return id_; }
  void set_id(AgentId id) { id_ = id; }

  /// Time increment control signal: advance through (now, now+1].
  virtual void on_tick(Tick now) = 0;

  /// Interaction step: absorb deliveries that became visible at <= now+1.
  virtual void on_interactions(Tick /*now*/) {}

  /// Monotonic per-agent sequence for deterministic delivery ordering.
  std::uint64_t next_send_seq() { return send_seq_++; }

 private:
  std::string name_;
  AgentId id_ = kInvalidAgent;
  std::uint64_t send_seq_ = 0;
};

/// A timestamped delivery from one agent to another.
template <typename T>
struct Delivery {
  Tick visible_at = 0;
  AgentId sender = kInvalidAgent;
  std::uint64_t seq = 0;
  T payload;
};

/// Thread-safe inbox with deterministic drain order. Senders post from any
/// worker thread during the tick phase; the owner drains during its own
/// interaction phase.
template <typename T>
class Inbox {
 public:
  void post(Tick visible_at, AgentId sender, std::uint64_t seq, T payload) {
    std::lock_guard<std::mutex> lock(mu_);
    pending_.push_back(Delivery<T>{visible_at, sender, seq, std::move(payload)});
    approx_size_.store(pending_.size(), std::memory_order_release);
  }

  /// Removes and returns all deliveries with visible_at <= now, sorted by
  /// (visible_at, sender, seq) so the result does not depend on thread
  /// scheduling.
  std::vector<Delivery<T>> drain_visible(Tick now) {
    std::vector<Delivery<T>> ready;
    // Fast path: agents poll their inbox every tick; most polls find it
    // empty, and taking the mutex 200M times dominates the profile.
    if (approx_size_.load(std::memory_order_acquire) == 0) return ready;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto split = std::partition(pending_.begin(), pending_.end(),
                                  [now](const Delivery<T>& d) { return d.visible_at > now; });
      ready.assign(std::make_move_iterator(split), std::make_move_iterator(pending_.end()));
      pending_.erase(split, pending_.end());
      approx_size_.store(pending_.size(), std::memory_order_release);
    }
    std::sort(ready.begin(), ready.end(), [](const Delivery<T>& a, const Delivery<T>& b) {
      if (a.visible_at != b.visible_at) return a.visible_at < b.visible_at;
      if (a.sender != b.sender) return a.sender < b.sender;
      return a.seq < b.seq;
    });
    return ready;
  }

  bool empty() const { return approx_size_.load(std::memory_order_acquire) == 0; }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return pending_.size();
  }

 private:
  mutable std::mutex mu_;
  std::vector<Delivery<T>> pending_;
  std::atomic<std::size_t> approx_size_{0};
};

}  // namespace gdisim
