// Agent base class and the deterministic interaction inbox.
//
// Thesis §4.3.2/§4.3.3: agents receive two control signals (time increment,
// measurement collection) plus interaction signals from other agents. The
// engine guarantees that an interaction scheduled for time t is never
// processed by an agent whose local clock has not yet reached t; the Inbox
// enforces this with visibility timestamps and restores determinism under
// multithreading by sorting deliveries on (visible_at, sender, sequence).
//
// Quiescence (active-set scheduling, DESIGN.md "Scheduler"): after its
// phases an agent reports the next tick at which it needs the time-increment
// signal. Agents that cannot predict their next activity return kEveryTick
// (the dense-sweep default); truly idle agents return kNeverTick and are
// re-armed by the loop when a delivery lands in their inbox, which forwards
// a wake request through the bound AgentWakeScheduler.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/archive.h"
#include "core/audit.h"
#include "core/types.h"

namespace gdisim {

/// Wake-request sink bound to agents by the simulation loop when active-set
/// scheduling is enabled. wake() may be called from any worker thread.
class AgentWakeScheduler {
 public:
  virtual ~AgentWakeScheduler() = default;
  virtual void wake(AgentId id) = 0;
};

/// Test-and-test-and-set spinlock guarding the short inbox critical
/// sections; yields while contended so a preempted holder on a small host
/// does not cost the waiter a full scheduling quantum of spinning.
class SpinLock {
 public:
  void lock() noexcept {
    int spins = 0;
    while (flag_.exchange(true, std::memory_order_acquire)) {
      while (flag_.load(std::memory_order_relaxed)) {
        if (++spins >= 64) {
          std::this_thread::yield();
          spins = 0;
        }
      }
    }
  }
  void unlock() noexcept { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

/// Small dense id for the calling thread, used to pick a staging shard.
/// Ids are assigned on first use, so any thread — engine worker, master, or
/// a raw std::thread in a test — gets a stable shard.
inline std::size_t this_thread_shard() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t shard = next.fetch_add(1, std::memory_order_relaxed);
  return shard;
}

class Agent {
 public:
  virtual ~Agent() = default;

  /// Stable diagnostic name ("dc=NA/tier=app/server=2/cpu").
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  AgentId id() const { return id_; }
  void set_id(AgentId id) { id_ = id; }

  /// Time increment control signal: advance through (now, now+1].
  virtual void on_tick(Tick now) = 0;

  /// Interaction step: absorb deliveries that became visible at <= now+1.
  virtual void on_interactions(Tick /*now*/) {}

  /// Queried by the loop after the interaction phase: the next tick at which
  /// this agent needs its phases to run. `next_now` is the upcoming tick
  /// (now + 1). Returning kEveryTick keeps the agent permanently in the
  /// active set (dense behaviour — the safe default); kNeverTick parks it
  /// until a delivery wakes it; any other value schedules a calendar wake
  /// (values <= next_now mean "next iteration").
  virtual Tick next_wake_tick(Tick next_now) const {
    (void)next_now;
    return kEveryTick;
  }

  /// Bound by the loop when active-set scheduling is on; unbound otherwise,
  /// which makes request_wake() a no-op under the dense sweep.
  void bind_wake_scheduler(AgentWakeScheduler* scheduler) { wake_scheduler_ = scheduler; }

  /// Optional pointer to this agent's "wake already pending/scheduled" flag,
  /// bound by the loop once agent registration is complete. Lets the hot
  /// request_wake path (one call per delivery) skip the virtual dispatch
  /// when a wake would be redundant anyway.
  void set_wake_hint(const std::atomic<bool>* hint) { wake_hint_ = hint; }

  /// Engine-mode hint bound by the loop at the start of each step when the
  /// mode changes (see SimulationLoop::step): true means a serial engine is
  /// running every phase on the master thread, so agents may drop
  /// cross-thread synchronization from their inboxes. Default no-op for
  /// agents without inboxes. The hint is process wiring, never archived.
  virtual void on_engine_serial(bool /*serial*/) {}

  /// Thread-safe: ensure this agent participates in the next phase.
  void request_wake() {
    if (wake_hint_ != nullptr && wake_hint_->load(std::memory_order_relaxed)) return;
    if (wake_scheduler_ != nullptr && id_ != kInvalidAgent) wake_scheduler_->wake(id_);
  }

  /// Monotonic per-agent sequence for deterministic delivery ordering.
  std::uint64_t next_send_seq() { return send_seq_++; }

  /// Snapshot round trip (DESIGN.md §8). Subclasses with state beyond the
  /// send sequence override and call the base first so every agent's bytes
  /// start identically. The wake-scheduler binding, wake hint and audit
  /// monotonicity fields are intentionally not serialized: they are
  /// process-local plumbing, re-established when the agent registers with a
  /// loop (restore conservatively re-wakes everyone, which is result-neutral
  /// because an idle tick contributes nothing).
  virtual void archive_state(StateArchive& ar, HandlerRegistry& /*registry*/) {
    ar.section("agent");
    ar.u64(send_seq_);
  }

#if GDISIM_AUDIT_ENABLED
  /// Audit hook (GDISIM_AUDIT_AGENT_TICK): the time-increment signal must
  /// arrive with strictly increasing `now` — an agent ticked twice at the
  /// same tick, or backwards, means the scheduler double-admitted it.
  void audit_tick_signal(Tick now) {
    if (audit_ticked_ && now <= audit_last_tick_) {
      audit::fail("agent clock not monotonic: tick signal repeated or reversed");
    }
    audit_last_tick_ = now;
    audit_ticked_ = true;
  }
#endif

 private:
  std::string name_;  // ARCHIVE-TRANSIENT: construction-time identity; SnapshotCompat guards agent order
  AgentId id_ = kInvalidAgent;  // ARCHIVE-TRANSIENT: construction-time identity; SnapshotCompat guards agent order
  // Loop wiring, rebound at registration; never archived.
  AgentWakeScheduler* wake_scheduler_ = nullptr;  // NOLINT(gdisim-snapshot-ptr) ARCHIVE-TRANSIENT: loop wiring; rebound when agents register
  const std::atomic<bool>* wake_hint_ = nullptr;  // NOLINT(gdisim-snapshot-ptr) ARCHIVE-TRANSIENT: loop wiring; rebound when agents register
  std::uint64_t send_seq_ = 0;
#if GDISIM_AUDIT_ENABLED
  Tick audit_last_tick_ = 0;  // ARCHIVE-TRANSIENT: audit diagnostic; re-arms after restore
  bool audit_ticked_ = false;  // ARCHIVE-TRANSIENT: audit diagnostic; re-arms after restore
#endif
};

/// A timestamped delivery from one agent to another.
template <typename T>
struct Delivery {
  Tick visible_at = 0;
  AgentId sender = kInvalidAgent;
  std::uint64_t seq = 0;
  T payload;
};

/// Thread-safe inbox with deterministic drain order. Senders post from any
/// worker thread during the tick phase; the owner drains during its own
/// interaction phase.
///
/// The hot path is sharded: posts go to one of kShards staging buffers
/// picked by the calling thread's id, each guarded by its own spinlock, so
/// concurrent senders do not serialize on a single per-agent mutex. The
/// shards are merged at drain time and sorted on (visible_at, sender, seq),
/// which makes the drained order independent of both thread scheduling and
/// shard assignment — the determinism argument is unchanged from the
/// single-mutex version.
template <typename T>
class Inbox {
 public:
  /// Binds the owning agent so posts can request a wake when the owner is
  /// parked by the active-set scheduler.
  // GDISIM-SERIAL-OK: construction-time wiring, runs before the engine starts
  void bind_owner(Agent* owner) { owner_ = owner; }

  /// Pre-sizes the staging shards for an expected in-flight delivery count
  /// (e.g. a population's slot capacity). Every shard gets the full
  /// expectation: shard choice follows the *sender's* thread id, so in a
  /// single-threaded engine one shard carries everything. This trades a few
  /// KB per inbox for never regrowing the shard buffers mid-run.
  void reserve_total(std::size_t expected) {
    for (Shard& s : shards_) {
      s.lock.lock();
      s.pending.reserve(expected);
      s.lock.unlock();
    }
  }

  /// Engine-serial fast path toggle (see Agent::on_engine_serial). Under a
  /// serial engine one thread both posts and drains, so the shard spinlock
  /// and the atomic read-modify-writes reduce to plain loads and stores —
  /// measurable at tens of millions of posts per run. Content and drain
  /// order are unchanged: serial posts all land in shard 0 and drains merge
  /// and sort shards the same way in both modes.
  void set_serial(bool serial) {
    serial_ = serial;
#if GDISIM_SERIAL_GUARD_ENABLED
    serial_owner_ = serial ? std::this_thread::get_id() : std::thread::id{};
#endif
  }

  void post(Tick visible_at, AgentId sender, std::uint64_t seq, T payload) {
    if (serial_) {
      check_serial_owner();
      approx_size_.store(approx_size_.load(std::memory_order_relaxed) + 1,
                         std::memory_order_relaxed);
      Shard& s = shards_[0];
      s.count.store(s.count.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
      s.pending.push_back(Delivery<T>{visible_at, sender, seq, std::move(payload)});
      if (owner_ != nullptr) owner_->request_wake();
      return;
    }
    // Conservative count first: empty() may report false positives while a
    // post is in flight, but never a false "empty" for a delivery that
    // happened-before the check.
    approx_size_.fetch_add(1, std::memory_order_release);
    Shard& s = shards_[this_thread_shard() & (kShards - 1)];
    s.count.fetch_add(1, std::memory_order_release);
    s.lock.lock();
    s.pending.push_back(Delivery<T>{visible_at, sender, seq, std::move(payload)});
    s.lock.unlock();
    if (owner_ != nullptr) owner_->request_wake();
  }

  /// Removes all deliveries with visible_at <= now into `ready` (cleared
  /// first), sorted by (visible_at, sender, seq) so the result does not
  /// depend on thread scheduling. Callers that drain every tick should pass
  /// a reusable scratch vector so its capacity amortizes across drains.
  void drain_visible_into(Tick now, std::vector<Delivery<T>>& ready) {
    if (serial_) check_serial_owner();
    ready.clear();
    // Fast path: agents poll their inbox every active tick; most polls find
    // it empty, and touching 8 locks 200M times would dominate the profile.
    if (approx_size_.load(std::memory_order_acquire) == 0) return;
    for (Shard& s : shards_) {
      // Per-shard count: posts land on the sender's own shard, so most
      // drains only need the one or two shards that actually have mail.
      if (s.count.load(std::memory_order_acquire) == 0) continue;
      if (!serial_) s.lock.lock();
      auto split = std::partition(s.pending.begin(), s.pending.end(),
                                  [now](const Delivery<T>& d) { return d.visible_at > now; });
      const std::size_t taken = static_cast<std::size_t>(s.pending.end() - split);
      for (auto it = split; it != s.pending.end(); ++it) ready.push_back(std::move(*it));
      s.pending.erase(split, s.pending.end());
      if (!serial_) s.lock.unlock();
      if (taken > 0) {
        if (serial_) {
          s.count.store(s.count.load(std::memory_order_relaxed) -
                            static_cast<std::uint32_t>(taken),
                        std::memory_order_relaxed);
        } else {
          s.count.fetch_sub(static_cast<std::uint32_t>(taken), std::memory_order_release);
        }
      }
    }
    if (!ready.empty()) {
      if (serial_) {
        approx_size_.store(approx_size_.load(std::memory_order_relaxed) -
                               static_cast<std::int64_t>(ready.size()),
                           std::memory_order_relaxed);
      } else {
        approx_size_.fetch_sub(static_cast<std::int64_t>(ready.size()),
                               std::memory_order_release);
      }
      GDISIM_AUDIT_CHECK(approx_size_.load(std::memory_order_relaxed) >= 0,
                         "inbox occupancy underflow: drained more than was posted");
    }
    if (ready.size() > 1) {
      std::sort(ready.begin(), ready.end(), [](const Delivery<T>& a, const Delivery<T>& b) {
        if (a.visible_at != b.visible_at) return a.visible_at < b.visible_at;
        if (a.sender != b.sender) return a.sender < b.sender;
        return a.seq < b.seq;
      });
    }
#if GDISIM_AUDIT_ENABLED
    // Drain-order hash: FNV-fold this drain (owner, tick, sorted delivery
    // keys), then xor it into the global accumulator. Identical workloads
    // must produce identical drain multisets whatever the engine or thread
    // count, and xor makes the fold order irrelevant.
    if (!ready.empty()) {
      std::uint64_t h = 0xcbf29ce484222325ULL;
      const auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 0x100000001b3ULL;
      };
      mix(owner_ != nullptr ? owner_->id() : kInvalidAgent);
      mix(static_cast<std::uint64_t>(now));
      for (const Delivery<T>& d : ready) {
        mix(static_cast<std::uint64_t>(d.visible_at));
        mix(d.sender);
        mix(d.seq);
      }
      GDISIM_AUDIT_FOLD_DRAIN(h);
    }
#endif
  }

  /// Convenience wrapper returning a fresh vector; prefer drain_visible_into
  /// on hot paths.
  std::vector<Delivery<T>> drain_visible(Tick now) {
    std::vector<Delivery<T>> ready;
    drain_visible_into(now, ready);
    return ready;
  }

  bool empty() const { return approx_size_.load(std::memory_order_acquire) == 0; }

  /// Snapshot round trip. `payload_fn(ar, payload)` archives one payload.
  ///
  /// Saving is strictly read-only (a checkpoint must not perturb the run):
  /// the shards are copied out under their locks, merged and sorted on
  /// (visible_at, sender, seq) — the same canonical order a drain would use —
  /// so the bytes are independent of which thread posted what. Loading
  /// places everything in shard 0; drains merge and re-sort anyway, so
  /// delivery order is unaffected and a restore→re-save round trip is
  /// byte-identical.
  template <typename Fn>
  void archive_state(StateArchive& ar, Fn&& payload_fn) {
    ar.section("inbox");
    if (ar.writing()) {
      std::vector<Delivery<T>> all;
      for (Shard& s : shards_) {
        s.lock.lock();
        all.insert(all.end(), s.pending.begin(), s.pending.end());
        s.lock.unlock();
      }
      std::sort(all.begin(), all.end(), [](const Delivery<T>& a, const Delivery<T>& b) {
        if (a.visible_at != b.visible_at) return a.visible_at < b.visible_at;
        if (a.sender != b.sender) return a.sender < b.sender;
        return a.seq < b.seq;
      });
      std::size_t n = all.size();
      ar.size_value(n);
      for (Delivery<T>& d : all) {
        ar.i64(d.visible_at);
        ar.u32(d.sender);
        ar.u64(d.seq);
        payload_fn(ar, d.payload);
      }
    } else {
      for (Shard& s : shards_) {
        s.lock.lock();
        s.pending.clear();
        s.lock.unlock();
        s.count.store(0, std::memory_order_release);
      }
      std::size_t n = 0;
      ar.size_value(n);
      Shard& s0 = shards_[0];
      s0.pending.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        Delivery<T> d;
        ar.i64(d.visible_at);
        ar.u32(d.sender);
        ar.u64(d.seq);
        payload_fn(ar, d.payload);
        s0.pending.push_back(std::move(d));
      }
      s0.count.store(static_cast<std::uint32_t>(n), std::memory_order_release);
      approx_size_.store(static_cast<std::int64_t>(n), std::memory_order_release);
    }
  }

  /// Exact once all posters have synchronized with the caller (the counter
  /// is adjusted on every post/drain).
  std::size_t size() const {
    const std::int64_t n = approx_size_.load(std::memory_order_acquire);
    return n > 0 ? static_cast<std::size_t>(n) : 0;
  }

 private:
  /// Serial mode strips the shard locks, which is only sound while a single
  /// thread both posts and drains. Audit builds report a violation through
  /// the failure handler; plain debug builds assert; release builds compile
  /// the check away.
  void check_serial_owner() const {
#if GDISIM_SERIAL_GUARD_ENABLED
    const bool ok = std::this_thread::get_id() == serial_owner_;
#if GDISIM_AUDIT_ENABLED
    GDISIM_AUDIT_CHECK(ok,
                       "inbox serial fast path used from a thread other than "
                       "the one that enabled it");
#else
    assert(ok && "inbox serial fast path used off the owning thread");
#endif
    (void)ok;
#endif
  }

  static constexpr std::size_t kShards = 8;
  struct alignas(64) Shard {
    SpinLock lock;
    /// Deliveries staged in this shard; same conservative semantics as
    /// approx_size_ but lets the drain skip empty shards' locks.
    std::atomic<std::uint32_t> count{0};
    std::vector<Delivery<T>> pending;
  };

  std::array<Shard, kShards> shards_;
  Agent* owner_ = nullptr;  // NOLINT(gdisim-snapshot-ptr) ARCHIVE-TRANSIENT: bound at construction
  std::atomic<std::int64_t> approx_size_{0};
  bool serial_ = false;  // ARCHIVE-TRANSIENT: engine wiring, rebound by the loop each run
#if GDISIM_SERIAL_GUARD_ENABLED
  /// Thread that enabled serial mode; only it may use the unlocked paths.
  std::thread::id serial_owner_{};  // ARCHIVE-TRANSIENT: guard diagnostic, rebound with serial_
#endif
};

}  // namespace gdisim
