// Deterministic, splittable random number generation.
//
// GDISim guarantees bit-identical results regardless of execution engine or
// thread count (DESIGN.md §4). Every stochastic decision therefore draws from
// a stream derived deterministically from the run seed plus a stable purpose
// string, never from shared mutable RNG state.
#pragma once

#include <cstdint>
#include <string_view>

namespace gdisim {

class StateArchive;

/// SplitMix64: tiny, fast, passes BigCrush when used as a stream; ideal for
/// deriving independent streams from a seed.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — the workhorse generator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, n).
  std::uint64_t next_below(std::uint64_t n) {
    // Lemire's multiply-shift rejection method.
    if (n == 0) return 0;
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Exponential variate with the given mean (> 0).
  double next_exponential(double mean);

  /// Normal variate (Box–Muller, stateless variant using two uniforms).
  double next_normal(double mean, double stddev);

  /// Derives an independent child stream; stable across platforms.
  Rng split(std::string_view purpose) const;

  /// Same derivation from a pre-computed purpose hash: split_hashed(
  /// stable_hash(s)) is bit-identical to split(s). Hot launch paths cache
  /// the hash once instead of re-hashing a string per operation.
  Rng split_hashed(std::uint64_t purpose_hash) const {
    const std::uint64_t folded =
        s_[0] ^ (s_[1] * 0x9e3779b97f4a7c15ULL) ^ purpose_hash;
    return Rng(SplitMix64(folded).next());
  }

  /// Snapshot round trip: the four xoshiro256** state words, i.e. the exact
  /// stream position.
  void archive_state(StateArchive& ar);

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

/// FNV-1a hash used to fold purpose strings into seeds.
std::uint64_t stable_hash(std::string_view s);

/// stable_hash of the decimal rendering of `v` without materializing the
/// string: stable_hash_decimal(v) == stable_hash(std::to_string(v)).
std::uint64_t stable_hash_decimal(std::uint64_t v);

}  // namespace gdisim
