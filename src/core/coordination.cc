#include "core/coordination.h"

// The coordination primitives are header-only templates; this translation
// unit exists to ensure the header is self-contained and to anchor vtables
// where the compiler chooses to emit them.

namespace gdisim {}  // namespace gdisim
