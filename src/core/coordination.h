// Coordination primitives built on port-based programming (thesis §4.2.3).
//
// These mirror the CCR-style primitives the thesis lists:
//   * SingleItemReceiver   — handler per message on one port
//   * MultipleItemReceiver — handler once n messages (successes + failures)
//                            have accumulated; both payload sets delivered
//   * JoinReceiver         — handler when one message is present on each of
//                            two ports
//   * Choice               — two handlers racing over a variant port
//   * Interleave           — teardown / exclusive / concurrent execution
//                            groups guarding shared agent state
//
// All handlers execute as dispatcher work items (active messages): they run
// on a pool thread's stack and must not block.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <variant>
#include <vector>

#include "core/port.h"

namespace gdisim {

/// Fires `handler` for every message posted to `port`. Persistent until the
/// returned registration object is destroyed.
template <typename T>
class SingleItemReceiver : public detail::ReceiverHook,
                           public std::enable_shared_from_this<SingleItemReceiver<T>> {
 public:
  using Handler = std::function<void(T)>;

  static std::shared_ptr<SingleItemReceiver> attach(Port<T>& port, Dispatcher& dispatcher,
                                                    Handler handler) {
    auto r = std::shared_ptr<SingleItemReceiver>(
        new SingleItemReceiver(port, dispatcher, std::move(handler)));
    port.attach(r);
    return r;
  }

  void on_post() override {
    // Drain greedily: each waiting message becomes one work item.
    while (auto msg = port_.try_take()) {
      auto self = this->shared_from_this();
      dispatcher_.post([self, m = std::move(*msg)]() mutable { self->handler_(std::move(m)); });
    }
  }

 private:
  SingleItemReceiver(Port<T>& port, Dispatcher& dispatcher, Handler handler)
      : port_(port), dispatcher_(dispatcher), handler_(std::move(handler)) {}

  Port<T>& port_;
  Dispatcher& dispatcher_;
  Handler handler_;
};

/// Collects `expected` messages across a success port and a failure port and
/// then fires the handler exactly once with both payload vectors.
template <typename M, typename E>
class MultipleItemReceiver
    : public std::enable_shared_from_this<MultipleItemReceiver<M, E>> {
 public:
  using Handler = std::function<void(std::vector<M>, std::vector<E>)>;

  static std::shared_ptr<MultipleItemReceiver> attach(Port<M>& successes, Port<E>& failures,
                                                      std::size_t expected,
                                                      Dispatcher& dispatcher, Handler handler) {
    auto r = std::shared_ptr<MultipleItemReceiver>(
        new MultipleItemReceiver(successes, failures, expected, dispatcher, std::move(handler)));
    successes.attach(std::make_shared<Hook>(r));
    failures.attach(std::make_shared<Hook>(r));
    r->evaluate();
    return r;
  }

 private:
  struct Hook : detail::ReceiverHook {
    explicit Hook(std::shared_ptr<MultipleItemReceiver> owner) : owner_(std::move(owner)) {}
    void on_post() override { owner_->evaluate(); }
    std::shared_ptr<MultipleItemReceiver> owner_;
  };

  MultipleItemReceiver(Port<M>& successes, Port<E>& failures, std::size_t expected,
                       Dispatcher& dispatcher, Handler handler)
      : successes_(successes),
        failures_(failures),
        expected_(expected),
        dispatcher_(dispatcher),
        handler_(std::move(handler)) {}

  void evaluate() {
    std::lock_guard<std::mutex> lock(mu_);
    if (fired_) return;
    while (collected_m_.size() + collected_e_.size() < expected_) {
      if (auto m = successes_.try_take()) {
        collected_m_.push_back(std::move(*m));
        continue;
      }
      if (auto e = failures_.try_take()) {
        collected_e_.push_back(std::move(*e));
        continue;
      }
      return;  // not enough yet
    }
    fired_ = true;
    auto self = this->shared_from_this();
    dispatcher_.post([self, ms = std::move(collected_m_), es = std::move(collected_e_)]() mutable {
      self->handler_(std::move(ms), std::move(es));
    });
  }

  Port<M>& successes_;
  Port<E>& failures_;
  std::size_t expected_;
  Dispatcher& dispatcher_;
  Handler handler_;
  std::mutex mu_;
  std::vector<M> collected_m_;
  std::vector<E> collected_e_;
  bool fired_ = false;
};

/// Fires once when one message is available on each of two ports.
template <typename A, typename B>
class JoinReceiver : public std::enable_shared_from_this<JoinReceiver<A, B>> {
 public:
  using Handler = std::function<void(A, B)>;

  static std::shared_ptr<JoinReceiver> attach(Port<A>& pa, Port<B>& pb, Dispatcher& dispatcher,
                                              Handler handler) {
    auto r = std::shared_ptr<JoinReceiver>(new JoinReceiver(pa, pb, dispatcher, std::move(handler)));
    pa.attach(std::make_shared<HookA>(r));
    pb.attach(std::make_shared<HookB>(r));
    r->evaluate();
    return r;
  }

 private:
  struct HookA : detail::ReceiverHook {
    explicit HookA(std::shared_ptr<JoinReceiver> o) : o_(std::move(o)) {}
    void on_post() override { o_->evaluate(); }
    std::shared_ptr<JoinReceiver> o_;
  };
  struct HookB : detail::ReceiverHook {
    explicit HookB(std::shared_ptr<JoinReceiver> o) : o_(std::move(o)) {}
    void on_post() override { o_->evaluate(); }
    std::shared_ptr<JoinReceiver> o_;
  };

  JoinReceiver(Port<A>& pa, Port<B>& pb, Dispatcher& dispatcher, Handler handler)
      : pa_(pa), pb_(pb), dispatcher_(dispatcher), handler_(std::move(handler)) {}

  void evaluate() {
    std::lock_guard<std::mutex> lock(mu_);
    while (pa_.size() > 0 && pb_.size() > 0) {
      auto a = pa_.try_take();
      auto b = pb_.try_take();
      if (!a || !b) {
        // One side raced away; put back is impossible with this queue, so
        // fire only when both were actually obtained.
        if (a) stash_a_.push_back(std::move(*a));
        if (b) stash_b_.push_back(std::move(*b));
        break;
      }
      auto self = this->shared_from_this();
      dispatcher_.post([self, av = std::move(*a), bv = std::move(*b)]() mutable {
        self->handler_(std::move(av), std::move(bv));
      });
    }
    // Re-pair any stashed leftovers.
    while (!stash_a_.empty() && !stash_b_.empty()) {
      auto a = std::move(stash_a_.back());
      stash_a_.pop_back();
      auto b = std::move(stash_b_.back());
      stash_b_.pop_back();
      auto self = this->shared_from_this();
      dispatcher_.post([self, av = std::move(a), bv = std::move(b)]() mutable {
        self->handler_(std::move(av), std::move(bv));
      });
    }
  }

  Port<A>& pa_;
  Port<B>& pb_;
  Dispatcher& dispatcher_;
  Handler handler_;
  std::mutex mu_;
  std::vector<A> stash_a_;
  std::vector<B> stash_b_;
};

/// Choice over a variant port: handler X consumes messages of type M,
/// handler Y messages of type N.
template <typename M, typename N>
class Choice : public detail::ReceiverHook, public std::enable_shared_from_this<Choice<M, N>> {
 public:
  using Message = std::variant<M, N>;
  using HandlerM = std::function<void(M)>;
  using HandlerN = std::function<void(N)>;

  static std::shared_ptr<Choice> attach(Port<Message>& port, Dispatcher& dispatcher,
                                        HandlerM hm, HandlerN hn) {
    auto r = std::shared_ptr<Choice>(new Choice(port, dispatcher, std::move(hm), std::move(hn)));
    port.attach(r);
    return r;
  }

  void on_post() override {
    while (auto msg = port_.try_take()) {
      auto self = this->shared_from_this();
      dispatcher_.post([self, m = std::move(*msg)]() mutable {
        if (std::holds_alternative<M>(m)) {
          self->hm_(std::get<M>(std::move(m)));
        } else {
          self->hn_(std::get<N>(std::move(m)));
        }
      });
    }
  }

 private:
  Choice(Port<Message>& port, Dispatcher& dispatcher, HandlerM hm, HandlerN hn)
      : port_(port), dispatcher_(dispatcher), hm_(std::move(hm)), hn_(std::move(hn)) {}

  Port<Message>& port_;
  Dispatcher& dispatcher_;
  HandlerM hm_;
  HandlerN hn_;
};

/// Interleave execution-policy guard (thesis §4.2.3): wraps handlers so that
///   * concurrent handlers run in parallel with each other,
///   * exclusive handlers run alone,
///   * teardown handlers run alone and at most once.
class Interleave {
 public:
  Interleave() = default;

  /// Wraps a handler into the concurrent group.
  template <typename F>
  auto concurrent(F f) {
    return [this, f = std::move(f)](auto&&... args) {
      std::shared_lock<std::shared_mutex> lock(mu_);
      if (torn_down_.load(std::memory_order_acquire)) return;
      f(std::forward<decltype(args)>(args)...);
    };
  }

  /// Wraps a handler into the exclusive group.
  template <typename F>
  auto exclusive(F f) {
    return [this, f = std::move(f)](auto&&... args) {
      std::unique_lock<std::shared_mutex> lock(mu_);
      if (torn_down_.load(std::memory_order_acquire)) return;
      f(std::forward<decltype(args)>(args)...);
    };
  }

  /// Wraps a handler into the teardown group: exclusive and at-most-once;
  /// afterwards all other handlers become no-ops.
  template <typename F>
  auto teardown(F f) {
    return [this, f = std::move(f)](auto&&... args) {
      std::unique_lock<std::shared_mutex> lock(mu_);
      bool expected = false;
      if (!torn_down_.compare_exchange_strong(expected, true)) return;
      f(std::forward<decltype(args)>(args)...);
    };
  }

  bool torn_down() const { return torn_down_.load(std::memory_order_acquire); }

 private:
  std::shared_mutex mu_;
  std::atomic<bool> torn_down_{false};
};

}  // namespace gdisim
