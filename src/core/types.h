// Fundamental simulation types shared by every GDISim module.
//
// The simulator is time-stepped (thesis §4.3.1): a central timer advances a
// discrete clock and every agent consumes one tick of simulated time per
// heartbeat. All durations inside the engine are expressed in integer ticks;
// the tick length in seconds is a run parameter chosen at least an order of
// magnitude below the smallest canonical operation cost.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace gdisim {

/// Discrete simulation time, in ticks since the start of the run.
using Tick = std::int64_t;

/// Sentinel for "no deadline / never".
inline constexpr Tick kNeverTick = std::numeric_limits<Tick>::max();

/// Wake-policy sentinel (Agent::next_wake_tick): the agent wants the
/// time-increment signal on every tick, like the original dense sweep.
inline constexpr Tick kEveryTick = -1;

/// Identifier of an agent registered with the simulation loop. Dense,
/// assigned at registration time, usable as a vector index.
using AgentId = std::uint32_t;

inline constexpr AgentId kInvalidAgent = std::numeric_limits<AgentId>::max();

/// Converts between wall-clock seconds of *simulated* time and ticks.
class TickClock {
 public:
  explicit TickClock(double tick_seconds) : tick_seconds_(tick_seconds) {}

  double tick_seconds() const { return tick_seconds_; }

  double to_seconds(Tick t) const { return static_cast<double>(t) * tick_seconds_; }

  /// Rounds up so that a nonzero duration never becomes zero ticks.
  Tick to_ticks(double seconds) const {
    if (seconds <= 0.0) return 0;
    const double t = seconds / tick_seconds_;
    const Tick whole = static_cast<Tick>(t);
    return (static_cast<double>(whole) >= t) ? whole : whole + 1;
  }

 private:
  double tick_seconds_;
};

/// Hour-of-day in GMT as used throughout the evaluation chapters.
inline double hour_of_day(double seconds_since_midnight) {
  return seconds_since_midnight / 3600.0;
}

/// Human-readable h:mm:ss for reports.
std::string format_sim_time(double seconds);

}  // namespace gdisim
