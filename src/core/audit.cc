#include "core/audit.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace gdisim::audit {

const char* category_name(Category c) {
  switch (c) {
    case Category::kFcfsJob:
      return "fcfs";
    case Category::kPsJob:
      return "ps";
    case Category::kForkJoinJob:
      return "fork_join";
    case Category::kRaidJob:
      return "raid";
    case Category::kSanJob:
      return "san";
    case Category::kOperation:
      return "operation";
    case Category::kCount:
      break;
  }
  return "?";
}

#if GDISIM_AUDIT_ENABLED

namespace {

constexpr unsigned kCategories = static_cast<unsigned>(Category::kCount);

struct State {
  std::atomic<std::uint64_t> spawned[kCategories] = {};
  std::atomic<std::uint64_t> completed[kCategories] = {};
  std::atomic<std::uint64_t> drain_hash{0};
  std::atomic<std::uint64_t> failures{0};
  std::atomic<FailureHandler> handler{nullptr};
};

State& state() {
  static State s;  // GDISIM-SHARED: process-wide audit counters, all members atomic
  return s;
}

void default_handler(const char* message) {
  std::fprintf(stderr, "GDISIM_AUDIT violation: %s\n", message);
  std::fflush(stderr);
  std::abort();
}

}  // namespace

void fail(const char* message) {
  State& s = state();
  s.failures.fetch_add(1, std::memory_order_relaxed);
  FailureHandler h = s.handler.load(std::memory_order_acquire);
  (h != nullptr ? h : default_handler)(message);
}

FailureHandler set_failure_handler(FailureHandler handler) {
  return state().handler.exchange(handler, std::memory_order_acq_rel);
}

void job_spawned(Category c) {
  state().spawned[static_cast<unsigned>(c)].fetch_add(1, std::memory_order_relaxed);
}

void job_completed(Category c) {
  State& s = state();
  const unsigned i = static_cast<unsigned>(c);
  const std::uint64_t done = s.completed[i].fetch_add(1, std::memory_order_relaxed) + 1;
  // The spawn of a job happens-before its completion, so a concurrent load
  // can only under-report completions relative to spawns, never the reverse;
  // completed > spawned is therefore a genuine double-complete (or a
  // completion for a job that was never spawned).
  if (done > s.spawned[i].load(std::memory_order_relaxed)) {
    fail("job conservation: more completions than spawns");
  }
}

void check(bool ok, const char* what) {
  if (!ok) fail(what);
}

void check_nonneg(double value, const char* what) {
  // Also catches NaN: the comparison is false for NaN, which is exactly the
  // kind of silent corruption the auditor exists to surface.
  if (!(value >= 0.0)) fail(what);
}

void fold_drain(std::uint64_t h) {
  state().drain_hash.fetch_xor(h, std::memory_order_relaxed);
}

std::uint64_t drain_hash() {
  return state().drain_hash.load(std::memory_order_relaxed);
}

void check_drained(Category c, const char* what) {
  const Report r = snapshot();
  if (r.live(c) != 0) fail(what);
}

Report snapshot() {
  State& s = state();
  Report r;
  for (unsigned i = 0; i < kCategories; ++i) {
    r.spawned[i] = s.spawned[i].load(std::memory_order_relaxed);
    r.completed[i] = s.completed[i].load(std::memory_order_relaxed);
  }
  r.drain_hash = s.drain_hash.load(std::memory_order_relaxed);
  r.failures = s.failures.load(std::memory_order_relaxed);
  return r;
}

void reset() {
  State& s = state();
  for (unsigned i = 0; i < kCategories; ++i) {
    s.spawned[i].store(0, std::memory_order_relaxed);
    s.completed[i].store(0, std::memory_order_relaxed);
  }
  s.drain_hash.store(0, std::memory_order_relaxed);
  s.failures.store(0, std::memory_order_relaxed);
}

#endif  // GDISIM_AUDIT_ENABLED

}  // namespace gdisim::audit
