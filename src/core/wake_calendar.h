// Bucketed wake calendar for the active-set scheduler (DESIGN.md
// "Scheduler"): a timing wheel over Tick with a min-heap overflow for wakes
// beyond the wheel horizon.
//
// The wheel has a power-of-two number of slots; a wake armed for tick t with
// t - now < slots lands in slot (t & mask) and cannot alias another pending
// tick because the loop visits every tick in order. Entries are lazy: the
// authoritative arm time lives in armed_[id], so re-arming an agent simply
// overwrites it and stale wheel/heap entries are dropped (or re-filed, when
// the agent was re-armed for a later tick) as their slot comes due. All
// calls are master-only; cross-thread wakes go through the loop's woken
// lists, not the calendar.
#pragma once

#include <cstddef>
#include <queue>
#include <utility>
#include <vector>

#include "core/types.h"

namespace gdisim {

class WakeCalendar {
 public:
  explicit WakeCalendar(std::size_t wheel_slots = 4096) {
    std::size_t pow2 = 1;
    while (pow2 < wheel_slots) pow2 <<= 1;
    wheel_.resize(pow2);
    mask_ = pow2 - 1;
  }

  /// Grows the per-agent arm-time table; new agents start disarmed.
  void ensure_agents(std::size_t count) {
    if (armed_.size() < count) armed_.resize(count, kNeverTick);
  }

  /// Arms (or re-arms) `id` to wake at tick `at` (> now). Idempotent for an
  /// unchanged `at`.
  void arm(AgentId id, Tick at, Tick now) {
    if (armed_[id] == at) return;
    armed_[id] = at;
    file_entry(id, at, now);
  }

  /// Forgets a pending wake; any stale wheel/heap entries are dropped when
  /// their slot comes due.
  void disarm(AgentId id) { armed_[id] = kNeverTick; }

  Tick armed_at(AgentId id) const { return armed_[id]; }

  std::size_t wheel_slots() const { return wheel_.size(); }

  /// Calls admit(id) for every agent whose wake time is `now`. Must be
  /// invoked for every tick in order (the loop never skips ticks).
  template <typename Fn>
  void collect_due(Tick now, Fn&& admit) {
    auto& slot = wheel_[static_cast<std::size_t>(now) & mask_];
    scratch_.clear();
    scratch_.swap(slot);
    for (AgentId id : scratch_) {
      const Tick at = armed_[id];
      if (at == now) {
        armed_[id] = kNeverTick;
        admit(id);
      } else if (at != kNeverTick && at > now) {
        // Re-armed for a later tick after this entry was filed; keep the
        // reservation alive in its new slot.
        file_entry(id, at, now);
      }
    }
    while (!far_.empty() && far_.top().first <= now) {
      const AgentId id = far_.top().second;
      const Tick at = far_.top().first;
      far_.pop();
      if (armed_[id] == at) {
        armed_[id] = kNeverTick;
        admit(id);
      }
    }
  }

 private:
  void file_entry(AgentId id, Tick at, Tick now) {
    if (at - now < static_cast<Tick>(wheel_.size())) {
      wheel_[static_cast<std::size_t>(at) & mask_].push_back(id);
    } else {
      far_.emplace(at, id);
    }
  }

  std::vector<std::vector<AgentId>> wheel_;
  std::size_t mask_ = 0;
  std::vector<AgentId> scratch_;
  std::priority_queue<std::pair<Tick, AgentId>, std::vector<std::pair<Tick, AgentId>>,
                      std::greater<>>
      far_;
  std::vector<Tick> armed_;
};

}  // namespace gdisim
