#include "core/archive.h"

#include <cstring>
#include <fstream>

namespace gdisim {
namespace {

constexpr char kMagic[8] = {'G', 'D', 'I', 'S', 'N', 'A', 'P', '1'};
constexpr std::uint32_t kSectionMagic = 0x5EC7105Eu;

std::uint64_t fnv1a(const std::vector<std::uint8_t>& bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

StateArchive StateArchive::reader(std::vector<std::uint8_t> payload) {
  StateArchive ar(Mode::kRead);
  ar.buf_ = std::move(payload);
  return ar;
}

void StateArchive::put(const std::uint8_t* bytes, std::size_t n) {
  buf_.insert(buf_.end(), bytes, bytes + n);
}

void StateArchive::get(std::uint8_t* bytes, std::size_t n) {
  if (cursor_ + n > buf_.size()) {
    throw std::runtime_error("snapshot truncated: need " + std::to_string(n) +
                             " byte(s) at byte " + std::to_string(cursor_) +
                             ", payload holds " + std::to_string(buf_.size()));
  }
  std::memcpy(bytes, buf_.data() + cursor_, n);
  cursor_ += n;
}

void StateArchive::u8(std::uint8_t& v) {
  if (writing()) {
    put(&v, 1);
  } else {
    get(&v, 1);
  }
}

void StateArchive::u32(std::uint32_t& v) {
  std::uint8_t b[4];
  if (writing()) {
    for (int i = 0; i < 4; ++i) b[i] = static_cast<std::uint8_t>(v >> (8 * i));
    put(b, 4);
  } else {
    get(b, 4);
    v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
  }
}

void StateArchive::u64(std::uint64_t& v) {
  std::uint8_t b[8];
  if (writing()) {
    for (int i = 0; i < 8; ++i) b[i] = static_cast<std::uint8_t>(v >> (8 * i));
    put(b, 8);
  } else {
    get(b, 8);
    v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
  }
}

void StateArchive::i64(std::int64_t& v) {
  auto u = static_cast<std::uint64_t>(v);
  u64(u);
  v = static_cast<std::int64_t>(u);
}

void StateArchive::f64(double& v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(double) == sizeof(std::uint64_t));
  if (writing()) std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
  if (reading()) std::memcpy(&v, &bits, sizeof(bits));
}

void StateArchive::boolean(bool& v) {
  std::uint8_t b = v ? 1 : 0;
  u8(b);
  if (reading()) {
    if (b > 1) throw std::runtime_error("snapshot corrupt: boolean byte not 0/1");
    v = b != 0;
  }
}

void StateArchive::str(std::string& v) {
  auto n = static_cast<std::uint64_t>(v.size());
  u64(n);
  if (writing()) {
    put(reinterpret_cast<const std::uint8_t*>(v.data()), v.size());
  } else {
    v.resize(static_cast<std::size_t>(n));
    if (n > 0) get(reinterpret_cast<std::uint8_t*>(v.data()), v.size());
  }
}

void StateArchive::size_value(std::size_t& v) {
  auto n = static_cast<std::uint64_t>(v);
  u64(n);
  v = static_cast<std::size_t>(n);
}

void StateArchive::section(const char* name) {
  std::uint32_t magic = kSectionMagic;
  u32(magic);
  if (reading() && magic != kSectionMagic) {
    throw std::runtime_error(std::string("snapshot stream desynchronized before section '") +
                             name + "'");
  }
  std::string label = name;
  str(label);
  if (reading() && label != name) {
    throw std::runtime_error(std::string("snapshot section mismatch: expected '") + name +
                             "', stream holds '" + label + "'");
  }
}

void StateArchive::write_to_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("snapshot: cannot open '" + path + "' for writing");

  auto put_u32 = [&out](std::uint32_t v) {
    char b[4];
    for (int i = 0; i < 4; ++i) b[i] = static_cast<char>(v >> (8 * i));
    out.write(b, 4);
  };
  auto put_u64 = [&out](std::uint64_t v) {
    char b[8];
    for (int i = 0; i < 8; ++i) b[i] = static_cast<char>(v >> (8 * i));
    out.write(b, 8);
  };

  out.write(kMagic, sizeof(kMagic));
  put_u32(kFormatVersion);
  put_u64(buf_.size());
  out.write(reinterpret_cast<const char*>(buf_.data()),
            static_cast<std::streamsize>(buf_.size()));
  put_u64(fnv1a(buf_));
  out.flush();
  if (!out) throw std::runtime_error("snapshot: short write to '" + path + "'");
}

StateArchive StateArchive::read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error(path + ": cannot open snapshot file");

  // Diagnostics carry the byte offset of the failing header field, in the
  // same `source:position: why` shape the scenario loader uses.
  auto fail = [&path](std::uint64_t offset, const std::string& why) {
    throw std::runtime_error(path + ":byte " + std::to_string(offset) + ": " + why);
  };
  auto get_u32 = [&in, &fail](std::uint64_t offset, const char* what) {
    std::uint8_t b[4];
    if (!in.read(reinterpret_cast<char*>(b), 4)) {
      fail(offset, std::string("truncated header: missing ") + what);
    }
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
    return v;
  };
  auto get_u64 = [&in, &fail](std::uint64_t offset, const char* what) {
    std::uint8_t b[8];
    if (!in.read(reinterpret_cast<char*>(b), 8)) {
      fail(offset, std::string("truncated header: missing ") + what);
    }
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
    return v;
  };

  char magic[8];
  if (!in.read(magic, sizeof(magic)) || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    fail(0, "not a GDISim snapshot (bad magic)");
  }
  const std::uint32_t version = get_u32(sizeof(kMagic), "format version");
  if (version != kFormatVersion) {
    fail(sizeof(kMagic), "format version " + std::to_string(version) +
                             ", this build reads " + std::to_string(kFormatVersion));
  }
  const std::uint64_t size_offset = sizeof(kMagic) + sizeof(std::uint32_t);
  const std::uint64_t payload_size = get_u64(size_offset, "payload size");
  const std::uint64_t payload_offset = size_offset + sizeof(std::uint64_t);
  // Validate the declared size against the actual file length before
  // allocating: a corrupted size field must fail cleanly, not bad_alloc.
  const auto data_pos = in.tellg();
  in.seekg(0, std::ios::end);
  const auto end_pos = in.tellg();
  in.seekg(data_pos);
  const std::uint64_t remaining =
      end_pos > data_pos ? static_cast<std::uint64_t>(end_pos - data_pos) : 0;
  if (payload_size + sizeof(std::uint64_t) != remaining) {
    fail(size_offset, "declared payload size " + std::to_string(payload_size) +
                          " disagrees with the " + std::to_string(remaining) +
                          " byte(s) after the header (truncated or corrupt file)");
  }
  std::vector<std::uint8_t> payload(static_cast<std::size_t>(payload_size));
  if (payload_size > 0 &&
      !in.read(reinterpret_cast<char*>(payload.data()),
               static_cast<std::streamsize>(payload_size))) {
    fail(payload_offset, "truncated payload");
  }
  const std::uint64_t checksum = get_u64(payload_offset + payload_size, "checksum");
  if (checksum != fnv1a(payload)) {
    fail(payload_offset + payload_size, "checksum mismatch (corrupt file)");
  }
  return reader(std::move(payload));
}

void HandlerRegistry::bind(AgentId owner, std::uint64_t serial,
                           StageCompletionHandler* handler) {
  key_by_handler_[handler] = HandlerKey{owner, serial};
  handler_by_key_[{owner, serial}] = handler;
}

HandlerKey HandlerRegistry::key_of(StageCompletionHandler* handler) const {
  const auto it = key_by_handler_.find(handler);
  if (it == key_by_handler_.end()) {
    throw std::runtime_error(
        "snapshot: stage handler not bound to a stable id — a live job references an "
        "operation instance its launcher did not archive");
  }
  return it->second;
}

StageCompletionHandler* HandlerRegistry::resolve(const HandlerKey& key) const {
  const auto it = handler_by_key_.find({key.owner, key.serial});
  if (it == handler_by_key_.end()) {
    throw std::runtime_error("snapshot: no live instance for handler key (owner=" +
                             std::to_string(key.owner) + ", serial=" +
                             std::to_string(key.serial) + ")");
  }
  return it->second;
}

void HandlerRegistry::bind_memory(AgentId cpu_id, MemoryComponent* memory) {
  key_by_memory_[memory] = cpu_id;
  memory_by_key_[cpu_id] = memory;
}

AgentId HandlerRegistry::memory_key(MemoryComponent* memory) const {
  const auto it = key_by_memory_.find(memory);
  if (it == key_by_memory_.end()) {
    throw std::runtime_error("snapshot: memory component not bound to a stable id");
  }
  return it->second;
}

MemoryComponent* HandlerRegistry::resolve_memory(AgentId cpu_id) const {
  const auto it = memory_by_key_.find(cpu_id);
  if (it == memory_by_key_.end()) {
    throw std::runtime_error("snapshot: no memory component bound for cpu agent " +
                             std::to_string(cpu_id));
  }
  return it->second;
}

Agent* HandlerRegistry::resolve_agent(AgentId id) const {
  if (!agent_resolver_) {
    throw std::runtime_error("snapshot: no agent resolver bound to the registry");
  }
  Agent* agent = agent_resolver_(id);
  if (agent == nullptr) {
    throw std::runtime_error("snapshot: agent id " + std::to_string(id) +
                             " does not exist in this simulation");
  }
  return agent;
}

}  // namespace gdisim
