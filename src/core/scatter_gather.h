// Classic Scatter-Gather engine (thesis §4.3.4, Figures 4-2/4-3).
//
// At every phase a control-signal message is posted to each agent's port;
// the arbiter pairs it with the agent handler into a work item and the
// dispatcher's thread pool executes one work item per agent. Completion is
// gathered via an acknowledgement countdown (the time-synchronization port
// of Figure 4-3). Per-handler overhead makes this mechanism scale poorly —
// that is the phenomenon Table 4.1 documents, reproduced by
// bench_scalability_scatter_gather.
#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <vector>

#include "core/dispatcher.h"
#include "core/engine.h"

namespace gdisim {

class ScatterGatherEngine final : public ExecutionEngine {
 public:
  explicit ScatterGatherEngine(std::size_t threads);
  ~ScatterGatherEngine() override;

  void for_each(std::size_t count, const std::function<void(std::size_t)>& fn) override;
  std::string_view name() const override { return "scatter-gather"; }

  Dispatcher& dispatcher() { return *dispatcher_; }

 private:
  struct AgentPort;

  void ensure_ports(std::size_t count);

  std::unique_ptr<Dispatcher> dispatcher_;
  std::vector<std::unique_ptr<AgentPort>> ports_;
  std::atomic<const std::function<void(std::size_t)>*> current_fn_{nullptr};
  std::atomic<std::size_t> remaining_{0};
  std::mutex gather_mu_;
  std::condition_variable gather_cv_;
  bool gather_done_ = false;
};

}  // namespace gdisim
