#include "core/sim_loop.h"

#include <algorithm>
#include <stdexcept>

#include "core/archive.h"
#include "core/audit.h"

namespace gdisim {

AgentId SimulationLoop::add_agent(Agent* agent) {
  if (agent == nullptr) throw std::invalid_argument("SimulationLoop: null agent");
  const AgentId id = static_cast<AgentId>(agents_.size());
  agent->set_id(id);
  agents_.push_back(agent);
  if (active_mode_) {
    agent->bind_wake_scheduler(this);
    if (wake_flag_count_ == wake_flag_cap_) {
      const std::size_t cap = wake_flag_cap_ == 0 ? 64 : wake_flag_cap_ * 2;
      auto grown = std::make_unique<std::atomic<bool>[]>(cap);
      for (std::size_t i = 0; i < wake_flag_count_; ++i) {
        grown[i].store(wake_flag_[i].load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
      }
      wake_flag_ = std::move(grown);
      wake_flag_cap_ = cap;
    }
    // Starts true: the agent is scheduled (immediate_) for its first
    // iteration, so setup-time posts need no shard push.
    wake_flag_[wake_flag_count_].store(true, std::memory_order_relaxed);
    ++wake_flag_count_;
    epoch_mark_.push_back(0);
    in_always_.push_back(0);
    calendar_.ensure_agents(agents_.size());
    // Every agent runs its first iteration, exactly like the dense sweep;
    // its own next_wake_tick answer takes over from there.
    immediate_.push_back(id);
  }
  if (serial_hint_state_ == 1) agent->on_engine_serial(true);
  stats_.agents = agents_.size();
  stats_.per_agent_runs.push_back(0);
  return id;
}

void SimulationLoop::wake(AgentId id) {
  if (id >= wake_flag_count_) return;
  std::atomic<bool>& flag = wake_flag_[id];
  // Test-and-test-and-set. The flag means "a wake would be redundant": the
  // agent is pending in a woken shard, admitted to the current iteration, or
  // already scheduled in immediate_ — in every case it runs an interaction
  // phase at the earliest tick a delivery could require, and rearm_active
  // re-queries its wake time after the barrier before parking it.
  if (flag.load(std::memory_order_relaxed)) return;
  if (engine_serial_) {
    // Only the master posts: no contention, so the shard lock and the atomic
    // read-modify-writes reduce to plain operations.
    flag.store(true, std::memory_order_relaxed);
    woken_[0].ids.push_back(id);
    woken_pending_.store(woken_pending_.load(std::memory_order_relaxed) + 1,
                         std::memory_order_relaxed);
    return;
  }
  if (flag.exchange(true, std::memory_order_acq_rel)) return;
  WokenShard& s = woken_[this_thread_shard() & (kWokenShards - 1)];
  s.lock.lock();
  s.ids.push_back(id);
  s.lock.unlock();
  woken_pending_.fetch_add(1, std::memory_order_release);
}

void SimulationLoop::admit(AgentId id) {
  if (epoch_mark_[id] == epoch_) return;
  epoch_mark_[id] = epoch_;
  // Admitted agents need no delivery wakes until rearm_active decides
  // otherwise; the flag suppresses the per-post shard traffic.
  wake_flag_[id].store(true, std::memory_order_relaxed);
  active_.push_back(id);
}

void SimulationLoop::drain_woken() {
  // Master-only, called at phase barriers: the engine handshake guarantees
  // no worker is still posting, so the flags can be cleared without racing
  // a concurrent wake() — which also makes the fast path exact, not racy.
  if (woken_pending_.load(std::memory_order_acquire) == 0) return;
  woken_pending_.store(0, std::memory_order_relaxed);
  woken_scratch_.clear();
  if (engine_serial_) {
    // Serial wakes all land in shard 0 (see wake()); no locks to take.
    woken_scratch_.swap(woken_[0].ids);
    woken_[0].ids.clear();
  } else {
    for (WokenShard& s : woken_) {
      s.lock.lock();
      woken_scratch_.insert(woken_scratch_.end(), s.ids.begin(), s.ids.end());
      s.ids.clear();
      s.lock.unlock();
    }
  }
  // Shard assignment depends on thread identity; sorting makes the admission
  // order reproducible. Flags stay set: the agents are active now, and
  // rearm_active clears the flag if and when it parks them.
  std::sort(woken_scratch_.begin(), woken_scratch_.end());
  for (AgentId id : woken_scratch_) admit(id);
}

void SimulationLoop::maybe_collect(Tick now) {
  if (config_.collect_every > 0 && collect_cb_ && (now + 1) % config_.collect_every == 0) {
    collect_cb_(now + 1);
  }
}

void SimulationLoop::step_dense(Tick now) {
  const std::size_t n = agents_.size();

  // 1. Time increment control signals.
  run_phase(n, [this, now](std::size_t i) {
    GDISIM_AUDIT_AGENT_TICK(agents_[i], now);
    agents_[i]->on_tick(now);
  });

  // 2. Agent interaction step: absorb everything that became visible during
  //    this tick (visible_at <= now + 1).
  run_phase(n, [this, now](std::size_t i) { agents_[i]->on_interactions(now + 1); });

  stats_.agent_phase_runs += n;
  stats_.last_active = n;
  for (std::size_t i = 0; i < n; ++i) ++stats_.per_agent_runs[i];
  window_active_accum_ += static_cast<double>(n);
  ++window_iters_;

  // 3. Measurement collection control signal.
  maybe_collect(now);
}

void SimulationLoop::step_active(Tick now) {
  // Build this iteration's active set: sticky always-active agents, agents
  // due immediately, calendar wakes, and delivery wakes from the previous
  // interaction phase / collection / pre-tick hooks.
  active_.clear();
  ++epoch_;
  for (AgentId id : always_active_) admit(id);
  for (AgentId id : immediate_) admit(id);
  immediate_.clear();
  calendar_.collect_due(now, [this](AgentId id) { admit(id); });
  drain_woken();

  // 1. Time increment control signals for the active set.
  const std::size_t n_tick = active_.size();
  run_phase(n_tick, [this, now](std::size_t i) {
    GDISIM_AUDIT_AGENT_TICK(agents_[active_[i]], now);
    agents_[active_[i]]->on_tick(now);
  });

  // Deliveries posted during the tick phase carry visible_at == now + 1 and
  // must be absorbed in *this* iteration's interaction phase (consistency
  // rule §4.3.3), so recipients woken by those posts join the set here.
  drain_woken();

  // 2. Interaction step; each agent also reports its next wake time, which
  //    the master files after the barrier.
  const std::size_t n_inter = active_.size();
  rearm_.resize(n_inter);
  run_phase(n_inter, [this, now](std::size_t i) {
    Agent* a = agents_[active_[i]];
    a->on_interactions(now + 1);
    rearm_[i] = a->next_wake_tick(now + 1);
  });

  stats_.agent_phase_runs += n_inter;
  stats_.last_active = n_inter;
  window_active_accum_ += static_cast<double>(n_inter);
  ++window_iters_;

  // 3. Measurement collection control signal.
  maybe_collect(now);

  rearm_active(now);
}

void SimulationLoop::rearm_active(Tick now) {
  const Tick next = now + 1;
  for (std::size_t i = 0; i < rearm_.size(); ++i) {
    const AgentId id = active_[i];
    ++stats_.per_agent_runs[id];  // piggybacks on this pass over the set
    Tick at = rearm_[i];
    if (at == kEveryTick) {
      if (!in_always_[id]) {
        in_always_[id] = 1;
        always_active_.push_back(id);
      }
      continue;  // wake flag stays set: the agent runs every iteration
    }
    if (in_always_[id]) {
      in_always_[id] = 0;
      always_active_.erase(std::find(always_active_.begin(), always_active_.end(), id));
    }
    if (at > next) {
      // The worker computed rearm_[i] mid-phase; posts that landed after it
      // (same interaction phase, or the collection callback) were suppressed
      // by the still-set wake flag. All posters have passed the barrier, so
      // one authoritative re-query closes that window before the agent is
      // parked or calendar-armed.
      at = agents_[id]->next_wake_tick(next);
    }
    if (at <= next) {
      immediate_.push_back(id);  // flag stays set: already scheduled
    } else if (at == kNeverTick) {
      wake_flag_[id].store(false, std::memory_order_relaxed);
    } else {
      // Calendar naps must remain interruptible by deliveries.
      wake_flag_[id].store(false, std::memory_order_relaxed);
      calendar_.arm(id, at, next);
    }
  }
}

void SimulationLoop::step() {
  const Tick now = now_;
  engine_serial_ = engine_->serial();
  // Bind (or rebind after a set_engine swap) the engine-mode hint: under a
  // serial engine, inboxes drop their cross-thread synchronization. Checked
  // every step so the hint can never be stale for the phases that follow.
  const int serial_now = engine_serial_ ? 1 : 0;
  if (serial_hint_state_ != serial_now) {
    for (Agent* agent : agents_) agent->on_engine_serial(engine_serial_);
    serial_hint_state_ = serial_now;
  }
  if (active_mode_ && !hints_bound_) {
    // The flag array no longer reallocates (agents register before the run
    // starts), so each agent can keep a direct pointer to its flag.
    for (AgentId id = 0; id < static_cast<AgentId>(agents_.size()); ++id) {
      agents_[id]->set_wake_hint(&wake_flag_[id]);
    }
    hints_bound_ = true;
  }

  // 0. Single-threaded pre-tick hooks (failure events, route updates, ...).
  for (auto& hook : pre_tick_hooks_) hook(now);

  if (active_mode_) {
    step_active(now);
  } else {
    step_dense(now);
  }

  ++stats_.iterations;
  ++now_;
}

double SimulationLoop::take_window_active_mean() {
  const double mean = window_iters_ > 0
                          ? window_active_accum_ / static_cast<double>(window_iters_)
                          : static_cast<double>(stats_.last_active);
  window_active_accum_ = 0.0;
  window_iters_ = 0;
  return mean;
}

void SimulationLoop::archive_state(StateArchive& ar) {
  ar.section("loop");
  ar.i64(now_);
  ar.u64(stats_.iterations);
  ar.u64(stats_.agent_phase_runs);
  ar.size_value(stats_.last_active);
  std::size_t n_agents = agents_.size();
  ar.size_value(n_agents);
  ar.expect_equal(n_agents, agents_.size(), "loop agent count");
  for (auto& runs : stats_.per_agent_runs) ar.u64(runs);
  ar.f64(window_active_accum_);
  ar.u64(window_iters_);
  if (ar.reading() && active_mode_) {
    // Conservative re-wake: discard the saved scheduling state and mark every
    // agent due for the next iteration. Each agent's next_wake_tick answer
    // re-parks it after one phase, so this cannot change results — it only
    // costs one dense-sized iteration, the same as the initial warm-up.
    active_.clear();
    always_active_.clear();
    std::fill(in_always_.begin(), in_always_.end(), 0);
    immediate_.clear();
    calendar_ = WakeCalendar(calendar_.wheel_slots());
    calendar_.ensure_agents(agents_.size());
    for (WokenShard& s : woken_) {
      s.lock.lock();
      s.ids.clear();
      s.lock.unlock();
    }
    woken_pending_.store(0, std::memory_order_relaxed);
    woken_scratch_.clear();
    for (AgentId id = 0; id < static_cast<AgentId>(agents_.size()); ++id) {
      wake_flag_[id].store(true, std::memory_order_relaxed);
      immediate_.push_back(id);
    }
  }
}

void SimulationLoop::run_until(Tick end_tick) {
  while (now_ < end_tick) step();
}

void SimulationLoop::run_for_seconds(double seconds) {
  run_until(now_ + clock_.to_ticks(seconds));
}

}  // namespace gdisim
