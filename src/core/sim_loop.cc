#include "core/sim_loop.h"

#include <stdexcept>

namespace gdisim {

AgentId SimulationLoop::add_agent(Agent* agent) {
  if (agent == nullptr) throw std::invalid_argument("SimulationLoop: null agent");
  const AgentId id = static_cast<AgentId>(agents_.size());
  agent->set_id(id);
  agents_.push_back(agent);
  return id;
}

void SimulationLoop::step() {
  const Tick now = now_;
  const std::size_t n = agents_.size();

  // 0. Single-threaded pre-tick hooks (failure events, route updates, ...).
  for (auto& hook : pre_tick_hooks_) hook(now);

  // 1. Time increment control signals.
  engine_->for_each(n, [this, now](std::size_t i) { agents_[i]->on_tick(now); });

  // 2. Agent interaction step: absorb everything that became visible during
  //    this tick (visible_at <= now + 1).
  engine_->for_each(n, [this, now](std::size_t i) { agents_[i]->on_interactions(now + 1); });

  // 3. Measurement collection control signal.
  if (config_.collect_every > 0 && collect_cb_ && (now + 1) % config_.collect_every == 0) {
    collect_cb_(now + 1);
  }

  ++now_;
}

void SimulationLoop::run_until(Tick end_tick) {
  while (now_ < end_tick) step();
}

void SimulationLoop::run_for_seconds(double seconds) {
  run_until(now_ + clock_.to_ticks(seconds));
}

}  // namespace gdisim
