// Plain-text scenario loader: the simulator-inputs file format.
//
// GDISim is pitched as an operator tool (thesis Fig 1-1); operators describe
// their infrastructure in a small declarative format instead of C++:
//
//   # comments with '#'
//   tick 0.02
//   seed 42
//   master HQ
//
//   datacenter HQ
//     switch 40                 # Gbps
//     san 2 24 15000            # controllers disks rpm
//     tier app 2 4 32           # kind servers cores ram_gb
//     tier db 1 8 64
//     tier fs 1 4 16
//   end
//
//   link HQ BRANCH 0.155 40 0.2         # gbps latency_ms allocated_fraction
//   backup_link HQ OTHER 0.045 80 0.2   # exists but unused by routing
//
//   population CAD@BRANCH BRANCH CAD 20   # name dc app peak_clients
//     hours 8 17                          # optional business window (GMT)
//     think 30                            # mean think time, seconds
//     size 25                             # file size, MB
//   end
//
//   synchrep HQ 900          # home_dc interval_seconds
//   indexbuild HQ 300        # home_dc delay_seconds
//   growth HQ 2000           # peak MB/h (business-hours shaped)
//
// Unknown directives are errors (typos should not silently change runs).
#pragma once

#include <iosfwd>
#include <string>

#include "config/scenarios.h"

namespace gdisim {

/// Parses a scenario description. Throws std::invalid_argument on malformed
/// input; messages use the editor-friendly "<source>:<line>: ..." form and
/// quote the offending token.
///
/// `scale` multiplies the declared population peaks and growth rates
/// (clamped so every population keeps at least one client). Hardware stays
/// exactly as declared — the file is the operator's inventory; only the
/// offered load is scaled. Must be > 0.
Scenario load_scenario(std::istream& is, const std::string& source = "<stream>",
                       double scale = 1.0);

/// Convenience: load from a file path (errors carry the path as the source).
Scenario load_scenario_file(const std::string& path, double scale = 1.0);

}  // namespace gdisim
