// InfrastructureBuilder: assembles a Topology from blueprint descriptions
// written in the thesis notation (the "Data Centers" and "Global Topology"
// simulator inputs of Figure 3-1).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "config/spec.h"
#include "core/rng.h"
#include "hardware/topology.h"

namespace gdisim {

struct DataCenterBlueprint {
  std::string name;
  std::map<TierKind, TierNotation> tiers;
  std::optional<SanNotation> san;
  /// Local link from each tier to the data center switch.
  LinkNotation tier_link{1.0, 0.5, 1.0};
  double switch_gbps = 40.0;
  /// Tiers whose servers use the shared SAN instead of a local RAID.
  bool fs_on_san = true;
  bool db_on_san = true;
};

class InfrastructureBuilder {
 public:
  explicit InfrastructureBuilder(std::uint64_t seed = 12345);

  DcId add_datacenter(const DataCenterBlueprint& bp);

  /// Directed WAN link a -> b (call twice or use duplex for both ways).
  void connect(const std::string& a, const std::string& b, const LinkNotation& link,
               bool usable = true);
  void connect_duplex(const std::string& a, const std::string& b, const LinkNotation& link,
                      bool usable = true);

  Topology& topology() { return *topology_; }

  /// Finalizes routing and releases the topology.
  std::unique_ptr<Topology> finish();

 private:
  Rng rng_;
  std::unique_ptr<Topology> topology_;
};

}  // namespace gdisim
