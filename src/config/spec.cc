#include "config/spec.h"

namespace gdisim {

ServerSpec make_server_spec(const TierNotation& t, bool has_local_raid) {
  ServerSpec spec;
  const unsigned sockets = t.cores_per_server >= 8 ? 2u : 1u;
  spec.cpu.sockets = sockets;
  spec.cpu.cores_per_socket = t.cores_per_server / sockets;
  spec.cpu.frequency_hz = t.core_ghz * 1e9;

  spec.memory.capacity_bytes = t.mem_gb * (1ull << 30);
  spec.memory.cache_hit_rate = t.mem_cache_hit;
  spec.memory.pool_reserved_bytes = t.mem_pool_gb * (1ull << 30);

  spec.nic.rate_bps = 10e9;

  if (has_local_raid) {
    RaidSpec raid;
    raid.disks = 2;
    raid.dacc_rate_Bps = 4e9 / 8.0;
    raid.dacc_hit_rate = 0.2;
    raid.dcc_rate_Bps = 3e9 / 8.0;
    raid.dcc_hit_rate = 0.1;
    raid.hdd_rate_Bps = 150e6;
    spec.raid = raid;
  }
  return spec;
}

SanSpec make_san_spec(const SanNotation& s) {
  SanSpec spec;
  spec.disks = s.disks;
  double hdd = 110e6;
  if (s.rpm >= 15000.0) {
    hdd = 180e6;
  } else if (s.rpm >= 10000.0) {
    hdd = 140e6;
  }
  spec.hdd_rate_Bps = hdd;
  spec.fcsw_rate_Bps = s.controllers * 8e9 / 8.0;
  spec.dacc_rate_Bps = s.controllers * 4e9 / 8.0;
  spec.dacc_hit_rate = 0.25;
  spec.fcal_rate_Bps = s.controllers * 4e9 / 8.0;
  spec.dcc_rate_Bps = 3e9 / 8.0;
  spec.dcc_hit_rate = 0.1;
  return spec;
}

LinkSpec make_link_spec(const LinkNotation& l) {
  LinkSpec spec;
  spec.bandwidth_bps = l.gbps * 1e9;
  spec.latency_seconds = l.latency_ms / 1000.0;
  spec.max_concurrent = 0;
  spec.allocated_fraction = l.allocated_fraction;
  return spec;
}

}  // namespace gdisim
