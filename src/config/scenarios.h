// Canned scenarios reproducing the thesis evaluation setups:
//   * make_validation_scenario   — Ch. 5 downscaled single-DC infrastructure
//                                  with the three series experiments
//   * make_consolidated_scenario — Ch. 6 six-continent consolidated
//                                  infrastructure, single master (D_NA)
//   * make_multimaster_scenario  — Ch. 7 multiple-master infrastructure with
//                                  data ownership per Table 7.2
//
// Populations and data volumes can be scaled down uniformly (hardware is
// scaled with them) to keep bench runtimes reasonable; utilization *shapes*
// are preserved. EXPERIMENTS.md records the scales used for each figure.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "background/indexbuild.h"
#include "background/synchrep.h"
#include "config/builder.h"
#include "metrics/collector.h"
#include "software/client.h"

namespace gdisim {

/// Tick lengths the scenario factories assume; the simulation loop driving a
/// scenario must be built with the matching tick (launchers capture it).
inline constexpr double kValidationTickSeconds = 0.010;
inline constexpr double kGlobalTickSeconds = 0.050;

struct Scenario {
  /// Tick length the scenario's launchers were built with.
  double tick_seconds = 0.0;  // ARCHIVE-TRANSIENT: build-time structure; SnapshotCompat guards shape instead

  std::unique_ptr<Topology> topology;
  std::unique_ptr<OperationContext> ctx;  // ARCHIVE-TRANSIENT: stateless routing wiring built with the scenario
  std::unique_ptr<OperationCatalog> catalog;  // ARCHIVE-TRANSIENT: immutable operation specs built with the scenario
  DataGrowthModel growth;  // ARCHIVE-TRANSIENT: construction-time configuration
  AccessPatternMatrix apm;  // ARCHIVE-TRANSIENT: construction-time configuration
  DcId master_dc = 0;  // ARCHIVE-TRANSIENT: build-time structure; SnapshotCompat guards shape instead

  /// Population/hardware scale the scenario was built with (1.0 for
  /// unscaled/config-file scenarios unless a loader override was given).
  double scale = 1.0;  // ARCHIVE-TRANSIENT: build-time structure; SnapshotCompat guards shape instead

  std::vector<std::unique_ptr<ClientPopulation>> populations;
  std::vector<std::unique_ptr<SeriesLauncher>> launchers;
  std::vector<std::unique_ptr<SynchRepDaemon>> synchreps;
  std::vector<std::unique_ptr<IndexBuildDaemon>> indexbuilds;

  /// Registers every component and launcher agent with the loop.
  void register_with(SimulationLoop& loop);

  DataCenter& dc(const std::string& name) {
    return topology->dc(topology->find_dc(name));
  }
  ClientPopulation* population(const std::string& name);
  SynchRepDaemon* synchrep_at(DcId dc);
  IndexBuildDaemon* indexbuild_at(DcId dc);

  /// Sum of logged-in / active clients across populations (optionally
  /// filtered by application prefix and/or data center).
  std::size_t total_logged_in(const std::string& app_prefix = "", DcId dc = kInvalidDc) const;
  std::size_t total_active(const std::string& app_prefix = "", DcId dc = kInvalidDc) const;
};

/// Installs the standard probe set (tier CPU %, link %, client counts) on a
/// collector. Returns probe labels installed.
std::vector<std::string> install_standard_probes(Collector& collector, Scenario& scenario);

// ---------------------------------------------------------------------------
// Chapter 5: validation.

struct ValidationOptions {
  /// 1 => 15-36-60s, 2 => 12-29-48s, 3 => 10-24-40s series intervals.
  int experiment = 1;
  /// Stop launching new series after this much simulated time.
  double stop_launch_s = 35.0 * 60.0;
  std::uint64_t seed = 42;
  /// Memory cache-hit rate applied to every tier (ablation knob; the
  /// validation experiments of Ch. 5 ran with 0.30).
  double mem_cache_hit = 0.30;
};

Scenario make_validation_scenario(const ValidationOptions& options);

/// The three series the validation workload uses (Light / Average / Heavy).
std::vector<SeriesOp> validation_series(double size_mb);

// ---------------------------------------------------------------------------
// Chapters 6/7: global infrastructure.

struct GlobalOptions {
  /// Scale on client populations AND tier capacities (0.1 => one tenth of
  /// the thesis populations on one tenth of the hardware).
  double scale = 0.10;
  double think_time_mean_s = 14.0;
  double synchrep_interval_s = 15.0 * 60.0;
  double indexbuild_delay_s = 5.0 * 60.0;
  /// §9.1.1 what-if: parallelizable index build (thesis default: 1 core).
  unsigned indexbuild_parallelism = 1;
  bool background_enabled = true;
  std::uint64_t seed = 42;
};

/// Data center names used by the global scenarios, in id order:
/// NA, EU, AS1, SA, AFR, AUS, AS2 (AS2 is a client-only satellite site).
extern const char* const kGlobalDcNames[7];

Scenario make_consolidated_scenario(const GlobalOptions& options);
Scenario make_multimaster_scenario(const GlobalOptions& options);

/// Table 7.2 (percentages), extended with the AS2 satellite which accesses
/// like AS1 and owns nothing.
AccessPatternMatrix multimaster_apm();

}  // namespace gdisim
