#include "config/builder.h"

namespace gdisim {

InfrastructureBuilder::InfrastructureBuilder(std::uint64_t seed)
    : rng_(seed), topology_(std::make_unique<Topology>()) {}

DcId InfrastructureBuilder::add_datacenter(const DataCenterBlueprint& bp) {
  std::optional<SanSpec> san;
  if (bp.san.has_value()) san = make_san_spec(*bp.san);

  auto dc = std::make_unique<DataCenter>(bp.name, SwitchSpec{bp.switch_gbps * 1e9}, san,
                                         rng_.split("dc/" + bp.name));

  for (const auto& [kind, notation] : bp.tiers) {
    bool on_san = false;
    if (kind == TierKind::Fs) on_san = bp.fs_on_san && bp.san.has_value();
    if (kind == TierKind::Db) on_san = bp.db_on_san && bp.san.has_value();
    const ServerSpec server = make_server_spec(notation, /*has_local_raid=*/!on_san);
    dc->add_tier(kind, notation.servers, server, make_link_spec(bp.tier_link));
  }
  return topology_->add_datacenter(std::move(dc));
}

void InfrastructureBuilder::connect(const std::string& a, const std::string& b,
                                    const LinkNotation& link, bool usable) {
  topology_->add_link(topology_->find_dc(a), topology_->find_dc(b), make_link_spec(link),
                      usable);
}

void InfrastructureBuilder::connect_duplex(const std::string& a, const std::string& b,
                                           const LinkNotation& link, bool usable) {
  connect(a, b, link, usable);
  connect(b, a, link, usable);
}

std::unique_ptr<Topology> InfrastructureBuilder::finish() {
  topology_->compute_routes();
  return std::move(topology_);
}

}  // namespace gdisim
