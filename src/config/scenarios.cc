#include "config/scenarios.h"

#include <algorithm>
#include <cmath>

namespace gdisim {

void Scenario::register_with(SimulationLoop& loop) {
  topology->register_with(loop);
  for (auto& p : populations) loop.add_agent(p.get());
  for (auto& l : launchers) loop.add_agent(l.get());
  for (auto& d : synchreps) loop.add_agent(d.get());
  for (auto& d : indexbuilds) loop.add_agent(d.get());
}

ClientPopulation* Scenario::population(const std::string& name) {
  for (auto& p : populations) {
    if (p->config().name == name) return p.get();
  }
  return nullptr;
}

SynchRepDaemon* Scenario::synchrep_at(DcId dc) {
  for (auto& d : synchreps) {
    if (d->home_dc() == dc) return d.get();
  }
  return nullptr;
}

IndexBuildDaemon* Scenario::indexbuild_at(DcId dc) {
  for (auto& d : indexbuilds) {
    if (d->home_dc() == dc) return d.get();
  }
  return nullptr;
}

std::size_t Scenario::total_logged_in(const std::string& app_prefix, DcId dc) const {
  std::size_t n = 0;
  for (const auto& p : populations) {
    if (!app_prefix.empty() && p->config().name.rfind(app_prefix, 0) != 0) continue;
    if (dc != kInvalidDc && p->config().dc != dc) continue;
    n += p->logged_in();
  }
  return n;
}

std::size_t Scenario::total_active(const std::string& app_prefix, DcId dc) const {
  std::size_t n = 0;
  for (const auto& p : populations) {
    if (!app_prefix.empty() && p->config().name.rfind(app_prefix, 0) != 0) continue;
    if (dc != kInvalidDc && p->config().dc != dc) continue;
    n += p->active();
  }
  return n;
}

std::vector<std::string> install_standard_probes(Collector& collector, Scenario& scenario) {
  std::vector<std::string> labels;
  Topology& topo = *scenario.topology;
  for (DcId d = 0; d < topo.dc_count(); ++d) {
    DataCenter& dc = topo.dc(d);
    for (unsigned k = 0; k < static_cast<unsigned>(TierKind::kCount); ++k) {
      Tier* tier = dc.tier(static_cast<TierKind>(k));
      if (tier == nullptr) continue;
      std::string label = "cpu/" + dc.name() + "/" + tier_kind_name(static_cast<TierKind>(k));
      collector.add_probe(label,
                          [tier](Tick now) { return tier->take_window_cpu_utilization(now); });
      labels.push_back(label);
      std::string mem_label =
          "mem/" + dc.name() + "/" + tier_kind_name(static_cast<TierKind>(k));
      collector.add_probe(mem_label, [tier](Tick) { return tier->total_memory_occupied(); });
      labels.push_back(mem_label);
    }
  }
  for (DcId a = 0; a < topo.dc_count(); ++a) {
    for (DcId b = 0; b < topo.dc_count(); ++b) {
      LinkComponent* link = topo.link(a, b);
      if (link == nullptr) continue;
      std::string label = "net/" + topo.dc(a).name() + "->" + topo.dc(b).name();
      collector.add_probe(label,
                          [link](Tick now) { return link->take_window_utilization(now); });
      labels.push_back(label);
    }
  }
  Scenario* sc = &scenario;
  collector.add_probe("clients/logged_in", [sc](Tick) {
    return static_cast<double>(sc->total_logged_in());
  });
  labels.push_back("clients/logged_in");
  collector.add_probe("clients/active", [sc](Tick) {
    return static_cast<double>(sc->total_active());
  });
  labels.push_back("clients/active");
  for (auto& l : scenario.launchers) {
    SeriesLauncher* sl = l.get();
    std::string label = "series/" + std::string(sl->name());
    collector.add_probe(label, [sl](Tick) { return static_cast<double>(sl->concurrent()); });
    labels.push_back(label);
  }
  return labels;
}

// ---------------------------------------------------------------------------
// Chapter 5 validation scenario.

std::vector<SeriesOp> validation_series(double size_mb) {
  return {
      {"CAD.LOGIN", size_mb},          {"CAD.TEXT-SEARCH", size_mb},
      {"CAD.FILTER", size_mb},         {"CAD.EXPLORE", size_mb},
      {"CAD.SPATIAL-SEARCH", size_mb}, {"CAD.SELECT", size_mb},
      {"CAD.OPEN", size_mb},           {"CAD.SAVE", size_mb},
  };
}

Scenario make_validation_scenario(const ValidationOptions& options) {
  Scenario s;
  InfrastructureBuilder builder(options.seed);

  // Downscaled single data center (Figure 5-1). The thesis' two identical
  // SANs are modeled as one SAN with doubled controllers/disks.
  const double hit = options.mem_cache_hit;
  DataCenterBlueprint na;
  na.name = "NA";
  na.tiers[TierKind::App] = TierNotation{2, 2, 32.0, 2.2, hit, 32.0};
  na.tiers[TierKind::Db] = TierNotation{1, 2, 64.0, 2.5, hit, 28.0};
  na.tiers[TierKind::Fs] = TierNotation{1, 2, 12.0, 2.5, hit, 12.0};
  na.tiers[TierKind::Idx] = TierNotation{1, 2, 64.0, 2.5, hit, 12.0};
  na.san = SanNotation{2, 40, 15000.0};
  na.tier_link = LinkNotation{1.0, 4.5, 1.0};  // L^(1,4.5) — 1 Gbps, 4.5 ms
  builder.add_datacenter(na);
  s.topology = builder.finish();

  s.master_dc = s.topology->find_dc("NA");
  s.ctx = std::make_unique<OperationContext>(*s.topology, s.master_dc);
  s.catalog = std::make_unique<OperationCatalog>(OperationCatalog::standard());
  s.apm = AccessPatternMatrix::single_master(1, s.master_dc);

  // Series intervals per experiment (§5.2.4).
  double light_s = 15.0, avg_s = 36.0, heavy_s = 60.0;
  if (options.experiment == 2) {
    light_s = 12.0;
    avg_s = 29.0;
    heavy_s = 48.0;
  } else if (options.experiment == 3) {
    light_s = 10.0;
    avg_s = 24.0;
    heavy_s = 40.0;
  }

  // NOTE: the TickClock used by launchers is fixed here; benches must build
  // the loop with the same tick length.
  s.tick_seconds = kValidationTickSeconds;
  const TickClock clock(kValidationTickSeconds);

  auto add_series = [&](const std::string& name, double size_mb, double interval) {
    SeriesLauncherConfig cfg;
    cfg.name = name;
    cfg.dc = s.master_dc;
    cfg.series = validation_series(size_mb);
    cfg.interval_s = interval;
    cfg.stop_after_s = options.stop_launch_s;
    cfg.seed = options.seed;
    s.launchers.push_back(
        std::make_unique<SeriesLauncher>(cfg, *s.catalog, *s.ctx, clock));
  };
  add_series("light", SeriesSizes::kLightMb, light_s);
  add_series("average", SeriesSizes::kAverageMb, avg_s);
  add_series("heavy", SeriesSizes::kHeavyMb, heavy_s);
  return s;
}

// ---------------------------------------------------------------------------
// Chapters 6/7 global scenarios.

const char* const kGlobalDcNames[7] = {"NA", "EU", "AS1", "SA", "AFR", "AUS", "AS2"};

namespace {

constexpr int kNumDcs = 7;
// Business-hour windows by DC (GMT): start, end.
constexpr double kShiftStart[kNumDcs] = {13.0, 7.0, 0.0, 11.0, 6.0, 22.0, 0.0};
constexpr double kShiftEnd[kNumDcs] = {22.0, 16.0, 9.0, 20.0, 15.0, 7.0, 9.0};

// Peak logged-in clients per application and DC at scale 1.0 (shapes of
// Figures 6-5..6-7: CAD global peak ~2000, VIS ~2500, PDM ~1400).
constexpr double kCadPeak[kNumDcs] = {850, 700, 230, 180, 60, 160, 60};
constexpr double kVisPeak[kNumDcs] = {1000, 900, 300, 220, 80, 200, 80};
constexpr double kPdmPeak[kNumDcs] = {600, 500, 160, 120, 40, 100, 40};

// Peak data growth MB/h at scale 1.0 (shape of Figure 6-10).
constexpr double kGrowthPeak[kNumDcs] = {14000, 10100, 3900, 2000, 700, 2000, 700};

unsigned scaled_count(double base, double scale) {
  return std::max(1u, static_cast<unsigned>(std::lround(base * scale)));
}

/// WAN blueprint shared by Ch. 6 and Ch. 7 (Figure 6-4): 155 Mbps trunk
/// links from NA, 45 Mbps spokes from the AS1 hub, EU backup links unused.
void build_wan(InfrastructureBuilder& builder) {
  const double alloc = 0.20;  // applications may use 20% of WAN capacity
  const LinkNotation trunk{0.155, 70.0, alloc};
  const LinkNotation trunk_as{0.155, 150.0, alloc};
  const LinkNotation spoke{0.045, 110.0, alloc};
  const LinkNotation spoke_short{0.045, 50.0, alloc};
  builder.connect_duplex("NA", "EU", trunk);
  builder.connect_duplex("NA", "SA", LinkNotation{0.155, 60.0, alloc});
  builder.connect_duplex("NA", "AS1", trunk_as);
  builder.connect_duplex("AS1", "AFR", spoke);
  builder.connect_duplex("AS1", "AS2", spoke_short);
  builder.connect_duplex("AS1", "AUS", spoke);
  // Backup links (exist, unused by routing — Table 6.1 rows at 0%).
  builder.connect_duplex("EU", "AFR", spoke, /*usable=*/false);
  builder.connect_duplex("EU", "AS1", trunk_as, /*usable=*/false);
}

void add_population(Scenario& s, const std::string& app, DcId dc, double peak, double scale,
                    const GlobalOptions& options, const TickClock& clock, double size_mb,
                    double jitter) {
  // Tiny scales used to drop a small population entirely when its peak
  // rounded below one client, which silently changed the (app, DC) coverage
  // of a scale sweep. Clamp to at least one client instead so every
  // population exists at every scale; the shapes stay linear above that.
  const double scaled_peak = std::max(peak * scale, 1.0);
  ClientPopulationConfig cfg;
  cfg.name = app + "@" + kGlobalDcNames[dc];
  cfg.dc = dc;
  cfg.curve = WorkloadCurve::business_hours(scaled_peak, 0.05 * scaled_peak,
                                            kShiftStart[dc], kShiftEnd[dc]);
  cfg.mix = OperationMix::uniform(s.catalog->operations_of(app));
  cfg.think_time_mean_s = options.think_time_mean_s;
  cfg.file_size_mb = size_mb;
  cfg.file_size_jitter = jitter;
  cfg.seed = options.seed;
  s.populations.push_back(
      std::make_unique<ClientPopulation>(cfg, *s.catalog, *s.ctx, clock));
}

void add_workloads(Scenario& s, const GlobalOptions& options, const TickClock& clock) {
  for (DcId d = 0; d < kNumDcs; ++d) {
    add_population(s, "CAD", d, kCadPeak[d], options.scale, options, clock, 50.0, 0.5);
    add_population(s, "VIS", d, kVisPeak[d], options.scale, options, clock, 5.0, 0.5);
    add_population(s, "PDM", d, kPdmPeak[d], options.scale, options, clock, 8.0, 0.5);
  }
}

DataGrowthModel make_growth(const GlobalOptions& options) {
  DataGrowthModel growth;
  for (DcId d = 0; d < kNumDcs; ++d) {
    growth.set_curve(d, WorkloadCurve::business_hours(kGrowthPeak[d] * options.scale,
                                                      0.03 * kGrowthPeak[d] * options.scale,
                                                      kShiftStart[d], kShiftEnd[d]));
  }
  growth.set_average_file_mb(50.0);
  return growth;
}

std::vector<DcId> all_dcs() {
  std::vector<DcId> v(kNumDcs);
  for (int i = 0; i < kNumDcs; ++i) v[i] = static_cast<DcId>(i);
  return v;
}

}  // namespace

AccessPatternMatrix multimaster_apm() {
  // Table 7.2, reordered to (NA, EU, AS1, SA, AFR, AUS) and extended with
  // the AS2 satellite (accesses like AS1, owns nothing).
  // Thesis order was (EU, NA, AUS, SA, AFR, AS) for rows "data access" and
  // columns "data owner".
  //                    NA     EU     AS1   SA     AFR    AUS   AS2
  std::vector<std::vector<double>> rows = {
      /*NA*/ {81.87, 15.47, 0.18, 0.91, 0.01, 1.56, 0.0},
      /*EU*/ {12.71, 83.65, 0.81, 1.04, 0.13, 1.67, 0.0},
      /*AS1*/ {30.45, 61.00, 5.27, 0.85, 0.04, 2.39, 0.0},
      /*SA*/ {17.55, 38.99, 0.09, 39.87, 0.08, 3.42, 0.0},
      /*AFR*/ {31.38, 36.49, 0.78, 0.26, 17.66, 13.45, 0.0},
      /*AUS*/ {13.72, 31.24, 0.23, 0.18, 4.35, 50.28, 0.0},
      /*AS2*/ {30.45, 61.00, 5.27, 0.85, 0.04, 2.39, 0.0},
  };
  return AccessPatternMatrix(std::move(rows));
}

Scenario make_consolidated_scenario(const GlobalOptions& options) {
  Scenario s;
  InfrastructureBuilder builder(options.seed);
  const double sc = options.scale;

  for (DcId d = 0; d < kNumDcs; ++d) {
    DataCenterBlueprint bp;
    bp.name = kGlobalDcNames[d];
    bp.san = SanNotation{2, std::max(8u, scaled_count(120, sc)), 15000.0};
    bp.tier_link = LinkNotation{1.0, 0.5, 1.0};
    if (d == 0) {
      // Master data center: full file-management capability (Figure 6-2).
      bp.tiers[TierKind::App] = TierNotation{8, scaled_count(40, sc), 32.0, 2.5, 0.30, 32.0};
      bp.tiers[TierKind::Db] = TierNotation{1, scaled_count(480, sc), 64.0, 2.5, 0.30, 28.0};
      bp.tiers[TierKind::Fs] = TierNotation{2, scaled_count(50, sc), 16.0, 2.5, 0.30, 12.0};
      bp.tiers[TierKind::Idx] = TierNotation{1, scaled_count(160, sc), 64.0, 2.5, 0.30, 12.0};
    } else {
      // Slave data centers: file serving only.
      const unsigned fs_servers = (d == 1) ? 2u : (d == 2 || d == 5 ? 2u : 1u);
      bp.tiers[TierKind::Fs] =
          TierNotation{fs_servers, scaled_count(40, sc), 16.0, 2.5, 0.30, 12.0};
    }
    builder.add_datacenter(bp);
  }
  build_wan(builder);
  s.topology = builder.finish();

  s.master_dc = s.topology->find_dc("NA");
  s.ctx = std::make_unique<OperationContext>(*s.topology, s.master_dc);
  s.catalog = std::make_unique<OperationCatalog>(OperationCatalog::standard());
  s.apm = AccessPatternMatrix::single_master(kNumDcs, s.master_dc);
  s.growth = make_growth(options);
  s.scale = options.scale;

  s.tick_seconds = kGlobalTickSeconds;
  const TickClock clock(kGlobalTickSeconds);
  add_workloads(s, options, clock);

  if (options.background_enabled) {
    SynchRepConfig sr;
    sr.name = "bg/synchrep@NA";
    sr.home_dc = s.master_dc;
    sr.interval_s = options.synchrep_interval_s;
    sr.participant_dcs = all_dcs();
    sr.seed = options.seed;
    s.synchreps.push_back(std::make_unique<SynchRepDaemon>(
        sr, s.growth, AccessPatternMatrix(), *s.ctx, clock));

    IndexBuildConfig ib;
    ib.name = "bg/indexbuild@NA";
    ib.home_dc = s.master_dc;
    ib.delay_after_completion_s = options.indexbuild_delay_s;
    ib.producer_dcs = all_dcs();
    ib.seed = options.seed;
    ib.index_parallelism = options.indexbuild_parallelism;
    s.indexbuilds.push_back(std::make_unique<IndexBuildDaemon>(
        ib, s.growth, AccessPatternMatrix(), *s.ctx, clock));
  }
  return s;
}

Scenario make_multimaster_scenario(const GlobalOptions& options) {
  Scenario s;
  InfrastructureBuilder builder(options.seed);
  const double sc = options.scale;

  for (DcId d = 0; d < kNumDcs; ++d) {
    DataCenterBlueprint bp;
    bp.name = kGlobalDcNames[d];
    bp.san = SanNotation{2, std::max(8u, scaled_count(120, sc)), 15000.0};
    bp.tier_link = LinkNotation{1.0, 0.5, 1.0};
    if (d == 0) {
      // D_NA scaled down: half the app servers, half the db cores (§7.3.1).
      bp.tiers[TierKind::App] = TierNotation{4, scaled_count(40, sc), 32.0, 2.5, 0.30, 32.0};
      bp.tiers[TierKind::Db] = TierNotation{1, scaled_count(240, sc), 64.0, 2.5, 0.30, 28.0};
      bp.tiers[TierKind::Fs] = TierNotation{2, scaled_count(50, sc), 16.0, 2.5, 0.30, 12.0};
      bp.tiers[TierKind::Idx] = TierNotation{1, scaled_count(160, sc), 64.0, 2.5, 0.30, 12.0};
    } else if (d == 1) {
      // D_EU: second-largest owner (it owns the majority of global accesses
      // per Table 7.2) — three large app servers and a 16-core-class db.
      bp.tiers[TierKind::App] = TierNotation{3, scaled_count(70, sc), 32.0, 2.5, 0.30, 32.0};
      bp.tiers[TierKind::Db] = TierNotation{1, scaled_count(160, sc), 64.0, 2.5, 0.30, 28.0};
      bp.tiers[TierKind::Fs] = TierNotation{2, scaled_count(40, sc), 16.0, 2.5, 0.30, 12.0};
      bp.tiers[TierKind::Idx] = TierNotation{1, scaled_count(80, sc), 64.0, 2.5, 0.30, 12.0};
    } else if (d != 6) {
      // Remaining masters: one app server, 8-core-class db (§7.3.1).
      bp.tiers[TierKind::App] = TierNotation{1, scaled_count(40, sc), 32.0, 2.5, 0.30, 32.0};
      bp.tiers[TierKind::Db] = TierNotation{1, scaled_count(60, sc), 64.0, 2.5, 0.30, 28.0};
      bp.tiers[TierKind::Fs] = TierNotation{2, scaled_count(40, sc), 16.0, 2.5, 0.30, 12.0};
      bp.tiers[TierKind::Idx] = TierNotation{1, scaled_count(40, sc), 64.0, 2.5, 0.30, 12.0};
    } else {
      // AS2 remains a client-only satellite with file serving.
      bp.tiers[TierKind::Fs] = TierNotation{1, scaled_count(40, sc), 16.0, 2.5, 0.30, 12.0};
    }
    builder.add_datacenter(bp);
  }
  build_wan(builder);
  s.topology = builder.finish();

  s.master_dc = s.topology->find_dc("NA");
  s.ctx = std::make_unique<OperationContext>(*s.topology, s.master_dc);
  s.catalog = std::make_unique<OperationCatalog>(OperationCatalog::standard());
  s.apm = multimaster_apm();
  s.growth = make_growth(options);
  s.scale = options.scale;

  s.tick_seconds = kGlobalTickSeconds;
  const TickClock clock(kGlobalTickSeconds);
  add_workloads(s, options, clock);

  // Ownership-aware routing: clients sample the owner of each operation's
  // file from the APM.
  const AccessPatternMatrix apm = s.apm;
  for (auto& p : s.populations) {
    p->set_owner_sampler(
        [apm](DcId origin, double u) { return apm.sample_owner(origin, u); });
  }

  if (options.background_enabled) {
    // One SR + IB daemon per master data center (Figure 7-3).
    for (DcId d = 0; d < 6; ++d) {
      SynchRepConfig sr;
      sr.name = std::string("bg/synchrep@") + kGlobalDcNames[d];
      sr.home_dc = d;
      sr.interval_s = options.synchrep_interval_s;
      sr.participant_dcs = all_dcs();
      sr.seed = options.seed + d;
      s.synchreps.push_back(
          std::make_unique<SynchRepDaemon>(sr, s.growth, s.apm, *s.ctx, clock));

      IndexBuildConfig ib;
      ib.name = std::string("bg/indexbuild@") + kGlobalDcNames[d];
      ib.home_dc = d;
      ib.delay_after_completion_s = options.indexbuild_delay_s;
      ib.producer_dcs = all_dcs();
      ib.seed = options.seed + 100 + d;
      ib.index_parallelism = options.indexbuild_parallelism;
      s.indexbuilds.push_back(
          std::make_unique<IndexBuildDaemon>(ib, s.growth, s.apm, *s.ctx, clock));
    }
  }
  return s;
}

}  // namespace gdisim
