// Scenario-level hardware notation following the thesis conventions:
//   T^(a,b,c)   — tier with a servers, b cores per server, c GB RAM
//   san^(s,b,c) — SAN with s controllers, b disks, c rpm drives
//   L^(a,b)     — link with a Gbps bandwidth and b ms latency
// plus converters to the component-level specs in src/hardware.
#pragma once

#include <optional>

#include "hardware/link.h"
#include "hardware/raid.h"
#include "hardware/san.h"
#include "hardware/server.h"

namespace gdisim {

struct TierNotation {
  unsigned servers = 1;
  unsigned cores_per_server = 4;
  double mem_gb = 32.0;
  double core_ghz = 2.5;
  /// Probability that a storage access is served from RAM cache.
  double mem_cache_hit = 0.30;
  /// OS/runtime memory-pool floor observed in §5.3.3, GB.
  double mem_pool_gb = 0.0;
};

struct SanNotation {
  unsigned controllers = 1;
  unsigned disks = 20;
  double rpm = 15000.0;
};

struct LinkNotation {
  double gbps = 1.0;
  double latency_ms = 0.0;
  double allocated_fraction = 1.0;  ///< Ch. 6: apps may use 20% of WAN links
};

/// Converts T^(a,b,c) to a per-server spec. Servers with >= 8 cores are
/// modeled as dual-socket (p=2), matching the thesis examples.
ServerSpec make_server_spec(const TierNotation& t, bool has_local_raid);

/// Converts san^(s,b,c): drive throughput is derived from spindle speed
/// (15K rpm ~ 180 MB/s sustained, 10K ~ 140, 7.2K ~ 110).
SanSpec make_san_spec(const SanNotation& s);

LinkSpec make_link_spec(const LinkNotation& l);

}  // namespace gdisim
