#include "config/compat.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "config/scenarios.h"
#include "core/archive.h"
#include "core/sim_loop.h"
#include "metrics/collector.h"

namespace gdisim {

namespace {

// %.17g round-trips every double exactly, so tick lines are stable across
// save and restore hosts.
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

SnapshotCompat SnapshotCompat::describe(Scenario& scenario, const SimulationLoop& loop,
                                        const Collector& collector) {
  SnapshotCompat c;
  c.lines.push_back("format " + std::to_string(StateArchive::kFormatVersion));
  c.lines.push_back("tick " + fmt_double(scenario.tick_seconds));
  c.lines.push_back("scale " + fmt_double(scenario.scale));
  c.lines.push_back("master " + std::to_string(scenario.master_dc));
  c.lines.push_back("agents " + std::to_string(loop.agent_count()));
  for (std::size_t id = 0; id < loop.agent_count(); ++id) {
    c.lines.push_back("agent " + std::to_string(id) + " " +
                      loop.agent(static_cast<AgentId>(id))->name());
  }
  for (const auto& p : scenario.populations) {
    c.lines.push_back("population " + p->name() + " slots " + std::to_string(p->slot_count()));
  }
  for (std::size_t i = 0; i < collector.probe_count(); ++i) {
    c.lines.push_back("probe " + collector.series(i).label());
  }
  return c;
}

std::uint64_t SnapshotCompat::digest() const {
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](unsigned char b) {
    h ^= b;
    h *= 0x100000001b3ull;
  };
  for (const std::string& line : lines) {
    for (char ch : line) mix(static_cast<unsigned char>(ch));
    mix(static_cast<unsigned char>('\n'));
  }
  return h;
}

std::string SnapshotCompat::diff(const SnapshotCompat& saved, const SnapshotCompat& current) {
  if (saved.lines == current.lines) return "";
  std::string out;
  const std::size_t n = std::max(saved.lines.size(), current.lines.size());
  int reported = 0;
  for (std::size_t i = 0; i < n && reported < 8; ++i) {
    const std::string& a = i < saved.lines.size() ? saved.lines[i] : "<absent>";
    const std::string& b = i < current.lines.size() ? current.lines[i] : "<absent>";
    if (a == b) continue;
    out += "  snapshot: " + a + "\n  scenario: " + b + "\n";
    ++reported;
  }
  if (reported == 8) out += "  ...\n";
  return out;
}

void SnapshotCompat::archive_state(StateArchive& ar) {
  ar.section("compat");
  std::size_t n = lines.size();
  ar.size_value(n);
  if (ar.reading()) lines.resize(n);
  for (std::string& line : lines) ar.str(line);
  // The digest travels alongside the lines as a quick header-level identity;
  // on read it must match the digest recomputed from the lines themselves.
  std::uint64_t d = digest();
  ar.u64(d);
  if (ar.reading() && d != digest()) {
    throw std::runtime_error("snapshot compat digest does not match its own lines");
  }
}

}  // namespace gdisim
