// Snapshot/scenario compatibility descriptor (DESIGN.md §8).
//
// A snapshot is only restorable into a scenario with the *same structure*:
// same tick length, same agents in the same registration order, same
// population slot counts, same probe set. Rates, intervals and think times
// are deliberately absent — those are the knobs a warm-start fork perturbs.
//
// The descriptor is a list of human-readable lines ("agent 12 cpu/HQ/db0")
// plus an FNV-1a digest. The full lines travel in the snapshot header so a
// mismatch can be reported as a line-by-line diff instead of a bare hash.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gdisim {

class Collector;
class SimulationLoop;
class StateArchive;
struct Scenario;

struct SnapshotCompat {
  std::vector<std::string> lines;

  /// FNV-1a over the lines (newline-separated).
  std::uint64_t digest() const;

  /// Describes the structural shape of a built simulation: tick, master DC,
  /// every registered agent (id + name), population slot counts, probe
  /// labels. Scheduler mode and thread count are *not* structural — a
  /// snapshot restores across both.
  static SnapshotCompat describe(Scenario& scenario, const SimulationLoop& loop,
                                 const Collector& collector);

  /// Line-by-line diff; empty string when the two descriptors match.
  static std::string diff(const SnapshotCompat& saved, const SnapshotCompat& current);

  void archive_state(StateArchive& ar);
};

}  // namespace gdisim
