#include "config/loader.h"

#include <fstream>
#include <istream>
#include <map>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace gdisim {

namespace {

struct Line {
  std::string source;  ///< file path (or "<stream>") for error messages
  int number = 0;
  std::vector<std::string> tokens;
};

/// Errors carry "<source>:<line>: ..." so editors can jump straight to the
/// offending spot; every message quotes the token that caused it.
[[noreturn]] void fail(const std::string& source, int line, const std::string& why) {
  throw std::invalid_argument(source + ":" + std::to_string(line) + ": " + why);
}

[[noreturn]] void fail(const Line& line, const std::string& why) {
  fail(line.source, line.number, why);
}

double to_double(const Line& line, std::size_t idx) {
  try {
    return std::stod(line.tokens.at(idx));
  } catch (const std::exception&) {
    fail(line, "expected a number, got '" + line.tokens.at(idx) + "'");
  }
}

unsigned to_unsigned(const Line& line, std::size_t idx) {
  const double v = to_double(line, idx);
  if (v < 0 || v != static_cast<unsigned>(v)) {
    fail(line, "expected a non-negative integer, got '" + line.tokens.at(idx) + "'");
  }
  return static_cast<unsigned>(v);
}

void expect_argc(const Line& line, std::size_t n) {
  if (line.tokens.size() != n) {
    fail(line, "expected " + std::to_string(n - 1) + " argument(s) after '" +
                   line.tokens[0] + "'");
  }
}

TierKind parse_tier_kind(const Line& line, const std::string& s) {
  if (s == "app") return TierKind::App;
  if (s == "db") return TierKind::Db;
  if (s == "fs") return TierKind::Fs;
  if (s == "idx") return TierKind::Idx;
  fail(line, "unknown tier kind '" + s + "' (app|db|fs|idx)");
}

std::vector<Line> tokenize(std::istream& is, const std::string& source) {
  std::vector<Line> lines;
  std::string raw;
  int number = 0;
  while (std::getline(is, raw)) {
    ++number;
    if (const auto hash = raw.find('#'); hash != std::string::npos) raw.resize(hash);
    std::istringstream ls(raw);
    Line line;
    line.source = source;
    line.number = number;
    std::string token;
    while (ls >> token) line.tokens.push_back(token);
    if (!line.tokens.empty()) lines.push_back(std::move(line));
  }
  return lines;
}

struct PopulationDecl {
  ClientPopulationConfig cfg;
  std::string dc_name;
  std::string app;
  double peak = 0.0;
  std::optional<std::pair<double, double>> hours;
  int line = 0;
};

struct DaemonDecl {
  std::string dc;
  double seconds = 0.0;
  int line = 0;
};

struct GrowthDecl {
  std::string dc;
  double peak_mb_per_hour = 0.0;
  std::optional<std::pair<double, double>> hours;
};

}  // namespace

Scenario load_scenario(std::istream& is, const std::string& source, double scale) {
  if (!(scale > 0.0)) {
    throw std::invalid_argument(source + ": scale override must be > 0, got " +
                                std::to_string(scale));
  }
  const std::vector<Line> lines = tokenize(is, source);

  double tick = 0.02;
  std::uint64_t seed = 42;
  std::string master;
  InfrastructureBuilder builder(seed);
  std::vector<PopulationDecl> populations;
  std::vector<DaemonDecl> synchreps, indexbuilds;
  std::vector<GrowthDecl> growths;
  std::map<std::string, std::pair<double, double>> dc_hours;  // optional per-DC window
  bool any_dc = false;

  std::size_t i = 0;
  auto at_end = [&] { return i >= lines.size(); };

  while (!at_end()) {
    const Line& line = lines[i];
    const std::string& head = line.tokens[0];

    if (head == "tick") {
      expect_argc(line, 2);
      tick = to_double(line, 1);
      if (tick <= 0) fail(line, "tick must be positive, got '" + line.tokens[1] + "'");
      ++i;
    } else if (head == "seed") {
      expect_argc(line, 2);
      seed = static_cast<std::uint64_t>(to_double(line, 1));
      ++i;
    } else if (head == "master") {
      expect_argc(line, 2);
      master = line.tokens[1];
      ++i;
    } else if (head == "datacenter") {
      expect_argc(line, 2);
      DataCenterBlueprint bp;
      bp.name = line.tokens[1];
      ++i;
      bool closed = false;
      while (!at_end()) {
        const Line& sub = lines[i];
        const std::string& key = sub.tokens[0];
        if (key == "end") {
          closed = true;
          ++i;
          break;
        } else if (key == "switch") {
          expect_argc(sub, 2);
          bp.switch_gbps = to_double(sub, 1);
        } else if (key == "san") {
          expect_argc(sub, 4);
          bp.san = SanNotation{to_unsigned(sub, 1), to_unsigned(sub, 2), to_double(sub, 3)};
        } else if (key == "tier") {
          expect_argc(sub, 5);
          const TierKind kind = parse_tier_kind(sub, sub.tokens[1]);
          bp.tiers[kind] =
              TierNotation{to_unsigned(sub, 2), to_unsigned(sub, 3), to_double(sub, 4)};
        } else if (key == "tier_link") {
          expect_argc(sub, 3);
          bp.tier_link = LinkNotation{to_double(sub, 1), to_double(sub, 2), 1.0};
        } else {
          fail(sub, "unknown datacenter directive '" + key + "'");
        }
        ++i;
      }
      if (!closed) fail(line, "datacenter block not closed with 'end'");
      builder.add_datacenter(bp);
      any_dc = true;
    } else if (head == "link" || head == "backup_link") {
      if (line.tokens.size() < 5 || line.tokens.size() > 6) {
        fail(line, "expected: link <a> <b> <gbps> <latency_ms> [alloc]");
      }
      LinkNotation ln;
      ln.gbps = to_double(line, 3);
      ln.latency_ms = to_double(line, 4);
      ln.allocated_fraction = line.tokens.size() == 6 ? to_double(line, 5) : 1.0;
      builder.connect_duplex(line.tokens[1], line.tokens[2], ln, head == "link");
      ++i;
    } else if (head == "population") {
      expect_argc(line, 5);
      PopulationDecl decl;
      decl.cfg.name = line.tokens[1];
      decl.line = line.number;
      decl.cfg.seed = seed;
      decl.dc_name = line.tokens[2];
      decl.app = line.tokens[3];
      decl.peak = to_double(line, 4);
      decl.cfg.think_time_mean_s = 30.0;
      decl.cfg.file_size_mb = 25.0;
      populations.push_back(decl);
      ++i;
      while (!at_end()) {
        const Line& sub = lines[i];
        const std::string& key = sub.tokens[0];
        if (key == "end") {
          ++i;
          break;
        } else if (key == "hours") {
          expect_argc(sub, 3);
          populations.back().hours = {to_double(sub, 1), to_double(sub, 2)};
        } else if (key == "think") {
          expect_argc(sub, 2);
          populations.back().cfg.think_time_mean_s = to_double(sub, 1);
        } else if (key == "size") {
          expect_argc(sub, 2);
          populations.back().cfg.file_size_mb = to_double(sub, 1);
        } else {
          fail(sub, "unknown population directive '" + key + "'");
        }
        ++i;
      }
    } else if (head == "synchrep" || head == "indexbuild") {
      expect_argc(line, 3);
      DaemonDecl decl{line.tokens[1], to_double(line, 2), line.number};
      (head == "synchrep" ? synchreps : indexbuilds).push_back(decl);
      ++i;
    } else if (head == "growth") {
      if (line.tokens.size() != 3 && line.tokens.size() != 5) {
        fail(line, "expected: growth <dc> <peak_mb_per_hour> [start end]");
      }
      GrowthDecl decl;
      decl.dc = line.tokens[1];
      decl.peak_mb_per_hour = to_double(line, 2);
      if (line.tokens.size() == 5) decl.hours = {to_double(line, 3), to_double(line, 4)};
      growths.push_back(decl);
      ++i;
    } else {
      fail(line, "unknown directive '" + head + "'");
    }
  }

  if (!any_dc) throw std::invalid_argument(source + ": no datacenter defined");

  Scenario s;
  s.tick_seconds = tick;
  s.scale = scale;
  s.topology = builder.finish();
  s.master_dc = master.empty() ? 0 : s.topology->find_dc(master);
  s.ctx = std::make_unique<OperationContext>(*s.topology, s.master_dc);
  s.catalog = std::make_unique<OperationCatalog>(OperationCatalog::standard());
  (void)dc_hours;

  const TickClock clock(tick);
  for (PopulationDecl& decl : populations) {
    DcId dc;
    try {
      dc = s.topology->find_dc(decl.dc_name);
    } catch (const std::out_of_range&) {
      fail(source, decl.line, "population references unknown datacenter '" + decl.dc_name + "'");
    }
    decl.cfg.dc = dc;
    const auto ops = s.catalog->operations_of(decl.app);
    if (ops.empty()) {
      fail(source, decl.line, "population references unknown application '" + decl.app + "'");
    }
    decl.cfg.mix = OperationMix::uniform(ops);
    // Same clamp as the canned scenarios: a scale override never silently
    // deletes a declared population, it just shrinks it to one client.
    const double peak = std::max(decl.peak * scale, 1.0);
    decl.cfg.curve = decl.hours.has_value()
                         ? WorkloadCurve::business_hours(peak, 0.05 * peak,
                                                         decl.hours->first, decl.hours->second)
                         : WorkloadCurve::constant(peak);
    s.populations.push_back(
        std::make_unique<ClientPopulation>(decl.cfg, *s.catalog, *s.ctx, clock));
  }

  for (const GrowthDecl& decl : growths) {
    const DcId dc = s.topology->find_dc(decl.dc);
    const double peak_mb = decl.peak_mb_per_hour * scale;
    s.growth.set_curve(dc, decl.hours.has_value()
                               ? WorkloadCurve::business_hours(
                                     peak_mb, 0.03 * peak_mb,
                                     decl.hours->first, decl.hours->second)
                               : WorkloadCurve::constant(peak_mb));
  }

  std::vector<DcId> all_dcs;
  for (DcId d = 0; d < s.topology->dc_count(); ++d) all_dcs.push_back(d);

  for (const DaemonDecl& decl : synchreps) {
    SynchRepConfig cfg;
    cfg.name = "bg/synchrep@" + decl.dc;
    cfg.home_dc = s.topology->find_dc(decl.dc);
    cfg.interval_s = decl.seconds;
    cfg.participant_dcs = all_dcs;
    cfg.seed = seed;
    s.synchreps.push_back(std::make_unique<SynchRepDaemon>(cfg, s.growth, AccessPatternMatrix(),
                                                           *s.ctx, clock));
  }
  for (const DaemonDecl& decl : indexbuilds) {
    IndexBuildConfig cfg;
    cfg.name = "bg/indexbuild@" + decl.dc;
    cfg.home_dc = s.topology->find_dc(decl.dc);
    cfg.delay_after_completion_s = decl.seconds;
    cfg.producer_dcs = all_dcs;
    cfg.seed = seed;
    s.indexbuilds.push_back(std::make_unique<IndexBuildDaemon>(cfg, s.growth,
                                                               AccessPatternMatrix(), *s.ctx,
                                                               clock));
  }
  return s;
}

Scenario load_scenario_file(const std::string& path, double scale) {
  std::ifstream in(path);
  if (!in) throw std::invalid_argument("cannot open scenario config: " + path);
  return load_scenario(in, path, scale);
}

}  // namespace gdisim
