// Shared machinery for background-process daemons (thesis §6.4.3).
//
// A daemon is an agent that periodically launches a dynamically-built
// cascade. Two scheduling policies exist:
//   * fixed-interval (SYNCHREP): launch every dT regardless of overlap, so
//     several runs may be in flight at once;
//   * after-completion (INDEXBUILD): launch dT after the previous run
//     finished, so exactly one run is in flight and backlog accumulates
//     while it executes (the cumulative effect of Figure 6-14).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <unordered_map>

#include "background/file_catalog.h"
#include "core/agent.h"
#include "core/rng.h"
#include "software/client.h"
#include "software/operation.h"

namespace gdisim {

class BackgroundDaemon : public Agent {
 public:
  BackgroundDaemon(std::string name, DcId home_dc, OperationContext& ctx, TickClock clock,
                   std::uint64_t seed);

  const FreshnessLedger& ledger() const { return ledger_; }
  const BinnedResponse& response_by_hour() const { return response_by_hour_; }
  const OpStats& stats() const { return stats_; }
  DcId home_dc() const { return home_dc_; }
  std::size_t runs_in_flight() const { return live_.size(); }

 protected:
  /// Launches `spec` (ownership of the spec is retained until completion).
  void launch_run(std::unique_ptr<CascadeSpec> spec, BackgroundRunRecord record, Tick now);

  /// Drains completed runs; returns how many completed.
  std::size_t drain_completions(Tick now);

  /// Whether completion messages are waiting in the inbox — daemons that are
  /// otherwise quiescent must stay active to absorb them on time.
  bool completions_pending() const { return !completions_.empty(); }

 public:
  void on_engine_serial(bool serial) override { completions_.set_serial(serial); }

 protected:

  /// Hook invoked (from the interaction phase) when a run completes.
  virtual void on_run_complete(const BackgroundRunRecord& record, Tick end_tick) = 0;

  OperationContext& ctx() { return *ctx_; }
  const TickClock& clock() const { return clock_; }
  Rng& rng() { return rng_; }

  /// Shared snapshot round trip for the daemon base: RNG, in-flight runs
  /// (each run's dynamically-built cascade spec travels in full), pending
  /// completions and the ledger/statistics. Subclasses call this from their
  /// archive_state override before their own scheduling fields.
  void archive_daemon_state(StateArchive& ar, HandlerRegistry& reg);

 private:
  struct LiveRun {
    std::unique_ptr<CascadeSpec> spec;
    std::unique_ptr<OperationInstance> instance;
    BackgroundRunRecord record;
  };
  struct CompletionMsg {
    /// Resolved on restore via the instance serial, never serialized.
    OperationInstance* instance;  // NOLINT(gdisim-snapshot-ptr) travels as (launcher id, serial)
    Tick end_tick;
  };

  std::unique_ptr<OperationInstance> make_instance(const CascadeSpec& spec, LaunchParams params);

  DcId home_dc_;
  OperationContext* ctx_;  // NOLINT(gdisim-snapshot-ptr) ARCHIVE-TRANSIENT: construction-time wiring
  TickClock clock_;  // ARCHIVE-TRANSIENT: tick<->seconds conversion fixed at construction
  Rng rng_;
  /// In-flight runs keyed by instance serial (stable id, never an address).
  std::unordered_map<std::uint64_t, LiveRun> live_;
  Inbox<CompletionMsg> completions_;
  std::vector<Delivery<CompletionMsg>> drain_scratch_;  // ARCHIVE-TRANSIENT: per-drain scratch, empty between ticks
  std::uint64_t next_serial_ = 0;
  FreshnessLedger ledger_;
  BinnedResponse response_by_hour_;
  OpStats stats_;
};

}  // namespace gdisim
