#include "background/indexbuild.h"

#include <algorithm>

#include "software/catalog.h"

namespace gdisim {

IndexBuildDaemon::IndexBuildDaemon(IndexBuildConfig config, const DataGrowthModel& growth,
                                   AccessPatternMatrix apm, OperationContext& ctx,
                                   TickClock clock)
    : BackgroundDaemon(config.name, config.home_dc, ctx, clock, config.seed),
      config_(std::move(config)),
      growth_(growth),
      apm_(std::move(apm)) {
  delay_ticks_ = std::max<Tick>(1, this->clock().to_ticks(config_.delay_after_completion_s));
}

void IndexBuildDaemon::on_tick(Tick now) {
  if (running_ || now < next_launch_) return;

  const double now_hour = clock().to_seconds(now) / 3600.0;
  const double from_hour = cover_from_hour_;

  double volume_mb = 0.0;
  for (DcId d : config_.producer_dcs) {
    const double frac = apm_.empty() ? 1.0 : owned_growth_fraction(apm_, d, home_dc());
    volume_mb += growth_.generated_mb(d, from_hour, now_hour) * frac;
  }
  cover_from_hour_ = now_hour;

  BackgroundRunRecord record;
  record.launch_hour = now_hour;
  record.cover_from_hour = from_hour;
  record.cover_to_hour = now_hour;
  record.total_mb = volume_mb;

  running_ = true;
  auto spec = std::make_unique<CascadeSpec>(
      make_indexbuild_cascade(home_dc(), volume_mb, config_.index_parallelism));
  launch_run(std::move(spec), std::move(record), now);
}

void IndexBuildDaemon::on_run_complete(const BackgroundRunRecord& /*record*/, Tick end_tick) {
  running_ = false;
  next_launch_ = end_tick + delay_ticks_;
}

}  // namespace gdisim
