// Data growth model (thesis §6.4.3, Figure 6-10): MB of new/modified file
// data generated per hour in each data center. The SYNCHREP and INDEXBUILD
// daemons integrate these curves to size their transfers, exactly as GDISim
// "takes information about the data growth in each data center and uses the
// average file size to estimate the number of files to be transferred".
#pragma once

#include <vector>

#include "hardware/datacenter.h"
#include "software/workload.h"

namespace gdisim {

class DataGrowthModel {
 public:
  DataGrowthModel() = default;
  explicit DataGrowthModel(std::vector<WorkloadCurve> mb_per_hour_by_dc)
      : curves_(std::move(mb_per_hour_by_dc)) {}

  void set_curve(DcId dc, WorkloadCurve mb_per_hour);

  /// Instantaneous generation rate, MB/hour.
  double rate_mb_per_hour(DcId dc, double hour) const;

  /// MB generated in `dc` during [hour0, hour1] (trapezoidal integration,
  /// periodic over 24h).
  double generated_mb(DcId dc, double hour0, double hour1) const;

  /// Average file size used to convert volumes to file counts.
  double average_file_mb() const { return average_file_mb_; }
  void set_average_file_mb(double mb) { average_file_mb_ = mb; }

  std::size_t dc_count() const { return curves_.size(); }

 private:
  std::vector<WorkloadCurve> curves_;
  double average_file_mb_ = 50.0;
};

}  // namespace gdisim
