#include "background/data_growth.h"

#include <cmath>

namespace gdisim {

void DataGrowthModel::set_curve(DcId dc, WorkloadCurve mb_per_hour) {
  if (curves_.size() <= dc) curves_.resize(dc + 1);
  curves_[dc] = std::move(mb_per_hour);
}

double DataGrowthModel::rate_mb_per_hour(DcId dc, double hour) const {
  if (dc >= curves_.size()) return 0.0;
  return curves_[dc].at_hour(hour);
}

double DataGrowthModel::generated_mb(DcId dc, double hour0, double hour1) const {
  if (dc >= curves_.size() || hour1 <= hour0) return 0.0;
  // Trapezoidal integration with ~6-minute resolution.
  const double span = hour1 - hour0;
  const int segments = std::max(1, static_cast<int>(std::ceil(span * 10.0)));
  const double dh = span / segments;
  double total = 0.0;
  for (int i = 0; i < segments; ++i) {
    const double a = rate_mb_per_hour(dc, hour0 + i * dh);
    const double b = rate_mb_per_hour(dc, hour0 + (i + 1) * dh);
    total += 0.5 * (a + b) * dh;
  }
  return total;
}

}  // namespace gdisim
