#include "background/file_catalog.h"

#include <algorithm>

namespace gdisim {

double FreshnessLedger::max_exposure_s() const {
  double m = 0.0;
  for (const auto& r : runs_) m = std::max(m, r.exposure_s());
  return m;
}

double FreshnessLedger::max_duration_s() const {
  double m = 0.0;
  for (const auto& r : runs_) m = std::max(m, r.duration_s);
  return m;
}

}  // namespace gdisim
