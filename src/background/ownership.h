// Data ownership & access patterns (thesis §7.2.1, Tables 7.1/7.2).
//
// The Access Pattern Matrix (APM) gives, for each *accessing* data center,
// the distribution of which data center *owns* the files it requests. In the
// consolidated (single-master) infrastructure every row assigns 100% to the
// MDC; the multiple-master infrastructure uses the measured Table 7.2.
#pragma once

#include <stdexcept>
#include <vector>

#include "hardware/datacenter.h"

namespace gdisim {

class AccessPatternMatrix {
 public:
  AccessPatternMatrix() = default;

  /// `rows[i][j]` = fraction (0..1 or percentages summing ~100) of requests
  /// originating in DC i that touch data owned by DC j.
  explicit AccessPatternMatrix(std::vector<std::vector<double>> rows);

  /// Single-master: every request is owned by `master`.
  static AccessPatternMatrix single_master(std::size_t dc_count, DcId master);

  /// Deterministic inverse-CDF owner sampling.
  DcId sample_owner(DcId origin, double uniform01) const;

  /// Fraction of origin's accesses owned by `owner`.
  double fraction(DcId origin, DcId owner) const;

  std::size_t dc_count() const { return cdf_.size(); }
  bool empty() const { return cdf_.empty(); }

 private:
  std::vector<std::vector<double>> fraction_;  // normalized rows
  std::vector<std::vector<double>> cdf_;
};

/// Ownership attribution of *data growth*: new data created in DC d is owned
/// by DC o with the same distribution the APM gives for d's accesses — the
/// thesis assigns files "to the data center that is geographically closest
/// to the largest volume of requests" (Figure 7-1).
double owned_growth_fraction(const AccessPatternMatrix& apm, DcId creator, DcId owner);

}  // namespace gdisim
