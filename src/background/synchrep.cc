#include "background/synchrep.h"

#include <algorithm>

#include "software/catalog.h"

namespace gdisim {

SynchRepDaemon::SynchRepDaemon(SynchRepConfig config, const DataGrowthModel& growth,
                               AccessPatternMatrix apm, OperationContext& ctx, TickClock clock)
    : BackgroundDaemon(config.name, config.home_dc, ctx, clock, config.seed),
      config_(std::move(config)),
      growth_(growth),
      apm_(std::move(apm)) {
  interval_ticks_ = std::max<Tick>(1, this->clock().to_ticks(config_.interval_s));
}

void SynchRepDaemon::on_run_complete(const BackgroundRunRecord& record, Tick end_tick) {
  if (file_tracker_ == nullptr) return;
  const double done_h = clock().to_seconds(end_tick) / 3600.0;
  file_tracker_->on_sync_complete(home_dc(), record.cover_from_hour, record.cover_to_hour,
                                  done_h);
}

void SynchRepDaemon::on_tick(Tick now) {
  if (now < next_launch_) return;
  next_launch_ = now + interval_ticks_;

  const double now_hour = clock().to_seconds(now) / 3600.0;
  const double from_hour = cover_from_hour_;
  cover_from_hour_ = now_hour;

  // New data owned by this daemon's home data center, per creator.
  std::vector<double> new_mb(config_.participant_dcs.size(), 0.0);
  double total_mb = 0.0;
  for (std::size_t i = 0; i < config_.participant_dcs.size(); ++i) {
    const DcId d = config_.participant_dcs[i];
    const double frac = apm_.empty() ? 1.0 : owned_growth_fraction(apm_, d, home_dc());
    new_mb[i] = growth_.generated_mb(d, from_hour, now_hour) * frac;
    total_mb += new_mb[i];
  }

  BackgroundRunRecord record;
  record.launch_hour = now_hour;
  record.cover_from_hour = from_hour;
  record.cover_to_hour = now_hour;
  record.total_mb = total_mb;

  // Pull: producers other than home with fresh owned data.
  for (std::size_t i = 0; i < config_.participant_dcs.size(); ++i) {
    const DcId d = config_.participant_dcs[i];
    if (d == home_dc() || new_mb[i] <= 0.0) continue;
    record.pull_mb.emplace_back(d, new_mb[i]);
  }
  // Push: every replica holder except home receives everything it did not
  // itself create.
  for (std::size_t i = 0; i < config_.participant_dcs.size(); ++i) {
    const DcId d = config_.participant_dcs[i];
    if (d == home_dc()) continue;
    const double vol = total_mb - new_mb[i];
    if (vol > 0.0) record.push_mb.emplace_back(d, vol);
  }

  auto spec = std::make_unique<CascadeSpec>(
      make_synchrep_cascade(home_dc(), record.pull_mb, record.push_mb));
  launch_run(std::move(spec), std::move(record), now);
}

}  // namespace gdisim
