// SYNCHREP daemon (thesis §6.3.2/§6.4.3, Figure 6-8).
//
// Every dT_SR the daemon integrates the data-growth curves since the last
// covered instant, restricted to the subset *owned* by its home data center
// (the full volume in the single-master configuration), and launches a
// SYNCHREP cascade: a parallel pull branch per producing data center and a
// parallel push branch per consuming data center. Overlapping runs are
// allowed, per the thesis.
#pragma once

#include <algorithm>
#include <vector>

#include "background/daemon.h"
#include "background/data_growth.h"
#include "background/file_tracker.h"
#include "background/ownership.h"

namespace gdisim {

struct SynchRepConfig {
  std::string name = "bg/synchrep";
  DcId home_dc = 0;
  double interval_s = 15.0 * 60.0;
  std::vector<DcId> participant_dcs;  ///< all data centers holding replicas
  std::uint64_t seed = 1;
};

class SynchRepDaemon final : public BackgroundDaemon {
 public:
  SynchRepDaemon(SynchRepConfig config, const DataGrowthModel& growth,
                 AccessPatternMatrix apm, OperationContext& ctx, TickClock clock);

  void on_tick(Tick now) override;
  void on_interactions(Tick now) override { drain_completions(now); }

  /// Sleeps until the next fixed-interval launch; in-flight run completions
  /// arrive via inbox wakes.
  Tick next_wake_tick(Tick next_now) const override {
    if (completions_pending()) return next_now;
    return std::max(next_launch_, next_now);
  }

  const SynchRepConfig& config() const { return config_; }

  /// R_SR^max: worst staleness exposure (seconds) observed so far.
  double max_staleness_s() const { return ledger().max_exposure_s(); }

  /// Optional per-file staleness tracking (thesis §9.2.3): the tracker's
  /// partition for this daemon's home DC is updated on every completed run.
  void set_file_tracker(FileTracker* tracker) { file_tracker_ = tracker; }

  void archive_state(StateArchive& ar, HandlerRegistry& reg) override {
    archive_daemon_state(ar, reg);
    ar.section("synchrep");
    ar.i64(next_launch_);
    ar.f64(cover_from_hour_);
  }

 protected:
  void on_run_complete(const BackgroundRunRecord& record, Tick end_tick) override;

 private:
  SynchRepConfig config_;  // ARCHIVE-TRANSIENT: construction-time configuration
  // Stored by value: the daemon outlives scenario moves (Scenario is
  // movable) and the model is read-only here.
  DataGrowthModel growth_;  // ARCHIVE-TRANSIENT: construction-time configuration
  AccessPatternMatrix apm_;  // ARCHIVE-TRANSIENT: construction-time configuration
  Tick next_launch_ = 0;
  Tick interval_ticks_ = 1;  // ARCHIVE-TRANSIENT: derived from config at construction
  double cover_from_hour_ = 0.0;
  FileTracker* file_tracker_ = nullptr;  // NOLINT(gdisim-snapshot-ptr) ARCHIVE-TRANSIENT: wired at build time; the tracker archives itself
};

}  // namespace gdisim
