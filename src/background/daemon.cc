#include "background/daemon.h"

#include <algorithm>
#include <vector>

namespace gdisim {

BackgroundDaemon::BackgroundDaemon(std::string name, DcId home_dc, OperationContext& ctx,
                                   TickClock clock, std::uint64_t seed)
    : home_dc_(home_dc), ctx_(&ctx), clock_(clock), rng_(Rng(seed).split(name)) {
  set_name(std::move(name));
  completions_.bind_owner(this);
}

void BackgroundDaemon::launch_run(std::unique_ptr<CascadeSpec> spec, BackgroundRunRecord record,
                                  Tick now) {
  LaunchParams params;
  params.origin_dc = home_dc_;
  params.owner_dc = home_dc_;
  params.size_mb = 0.0;
  params.instance_serial = next_serial_++;
  params.launcher_id = id();
  params.rng_seed = stable_hash(name()) ^ (params.instance_serial * 0x9e3779b97f4a7c15ULL);

  auto instance = make_instance(*spec, params);
  OperationInstance* raw = instance.get();
  live_.emplace(params.instance_serial,
                LiveRun{std::move(spec), std::move(instance), std::move(record)});
  raw->start(now);
}

std::unique_ptr<OperationInstance> BackgroundDaemon::make_instance(const CascadeSpec& spec,
                                                                   LaunchParams params) {
  return std::make_unique<OperationInstance>(
      spec, *ctx_, params, [this](OperationInstance& inst, Tick end_tick) {
        completions_.post(end_tick, id(), inst.params().instance_serial,
                          CompletionMsg{&inst, end_tick});
      });
}

void BackgroundDaemon::archive_daemon_state(StateArchive& ar, HandlerRegistry& reg) {
  Agent::archive_state(ar, reg);
  ar.section("daemon");
  rng_.archive_state(ar);
  ar.u64(next_serial_);

  std::size_t nlive = live_.size();
  ar.size_value(nlive);
  if (ar.writing()) {
    std::vector<std::uint64_t> serials;
    serials.reserve(live_.size());
    for (auto& [serial, run] : live_) serials.push_back(serial);
    std::sort(serials.begin(), serials.end());
    for (std::uint64_t serial : serials) {
      LiveRun& run = live_.at(serial);
      std::uint64_t s = serial;
      ar.u64(s);
      archive_cascade_spec(ar, *run.spec);
      run.record.archive_state(ar);
      reg.bind(id(), serial, run.instance.get());
      run.instance->archive_state(ar, reg);
    }
  } else {
    live_.clear();
    for (std::size_t i = 0; i < nlive; ++i) {
      std::uint64_t serial = 0;
      ar.u64(serial);
      auto spec = std::make_unique<CascadeSpec>();
      archive_cascade_spec(ar, *spec);
      BackgroundRunRecord record;
      record.archive_state(ar);
      LaunchParams params;
      params.origin_dc = home_dc_;
      params.owner_dc = home_dc_;
      params.size_mb = 0.0;
      params.instance_serial = serial;
      params.launcher_id = id();
      params.rng_seed = stable_hash(name()) ^ (serial * 0x9e3779b97f4a7c15ULL);
      auto instance = make_instance(*spec, params);
      reg.bind(id(), serial, instance.get());
      instance->archive_state(ar, reg);
      live_.emplace(serial,
                    LiveRun{std::move(spec), std::move(instance), std::move(record)});
    }
  }

  completions_.archive_state(ar, [this](StateArchive& a, CompletionMsg& msg) {
    std::uint64_t serial = a.writing() ? msg.instance->params().instance_serial : 0;
    a.u64(serial);
    a.i64(msg.end_tick);
    if (a.reading()) msg.instance = live_.at(serial).instance.get();
  });

  ledger_.archive_state(ar);
  response_by_hour_.archive_state(ar);
  stats_.archive_state(ar);
}

std::size_t BackgroundDaemon::drain_completions(Tick now) {
  std::size_t n = 0;
  completions_.drain_visible_into(now, drain_scratch_);
  for (auto& d : drain_scratch_) {
    const CompletionMsg& msg = d.payload;
    auto it = live_.find(msg.instance->params().instance_serial);
    if (it == live_.end()) continue;
    BackgroundRunRecord record = std::move(it->second.record);
    record.duration_s = msg.instance->duration_seconds(clock_, msg.end_tick);
    stats_.record(record.duration_s);
    response_by_hour_.record(clock_.to_seconds(msg.end_tick) / 3600.0, record.duration_s);
    // Move the live entry out before invoking the hook so re-entrant
    // launches from the hook are safe.
    LiveRun done = std::move(it->second);
    live_.erase(it);
    ledger_.record(record);
    on_run_complete(record, msg.end_tick);
    ++n;
  }
  return n;
}

}  // namespace gdisim
