#include "background/file_tracker.h"

#include <algorithm>
#include <cmath>

namespace gdisim {

void StalenessDistribution::record(double seconds) {
  int bin = static_cast<int>(seconds / kBinSeconds);
  bin = std::clamp(bin, 0, kBins - 1);
  ++bins_[bin];
  ++count_;
  total_ += seconds;
  max_ = std::max(max_, seconds);
}

double StalenessDistribution::percentile_s(double p) const {
  if (count_ == 0) return 0.0;
  const auto target = static_cast<std::uint64_t>(std::ceil(p * static_cast<double>(count_)));
  std::uint64_t seen = 0;
  for (int b = 0; b < kBins; ++b) {
    seen += bins_[b];
    if (seen >= target) return (b + 1) * kBinSeconds;
  }
  return kBins * kBinSeconds;
}

void StalenessDistribution::merge(const StalenessDistribution& other) {
  for (int b = 0; b < kBins; ++b) bins_[b] += other.bins_[b];
  count_ += other.count_;
  total_ += other.total_;
  max_ = std::max(max_, other.max_);
}

FileTracker::FileTracker(const DataGrowthModel& growth, AccessPatternMatrix apm,
                         std::vector<DcId> creator_dcs, DcId single_owner, std::uint64_t seed)
    : growth_(growth),
      apm_(std::move(apm)),
      creator_dcs_(std::move(creator_dcs)),
      single_owner_(single_owner),
      seed_(seed) {
  DcId max_dc = single_owner;
  for (DcId d : creator_dcs_) max_dc = std::max(max_dc, d);
  per_owner_.resize(max_dc + 1);
}

void FileTracker::on_sync_complete(DcId owner, double cover_from_h, double cover_to_h,
                                   double done_h) {
  if (owner >= per_owner_.size() || cover_to_h <= cover_from_h) return;
  StalenessDistribution& dist = per_owner_[owner];
  // Deterministic stream per (owner, window): replays identically across
  // engines and thread counts.
  Rng rng = Rng(seed_).split("file-tracker").split(std::to_string(owner)).split(
      std::to_string(static_cast<long long>(cover_from_h * 3600.0)));

  for (DcId creator : creator_dcs_) {
    const double frac = apm_.empty()
                            ? (owner == single_owner_ ? 1.0 : 0.0)
                            : owned_growth_fraction(apm_, creator, owner);
    const double volume = growth_.generated_mb(creator, cover_from_h, cover_to_h) * frac;
    const auto files =
        static_cast<std::uint64_t>(std::llround(volume / growth_.average_file_mb()));
    for (std::uint64_t f = 0; f < files; ++f) {
      // Creation instant uniform over the covered window; staleness is the
      // gap until the run completed and the fresh version was everywhere.
      const double created_h =
          cover_from_h + rng.next_double() * (cover_to_h - cover_from_h);
      dist.record((done_h - created_h) * 3600.0);
    }
  }
}

StalenessDistribution FileTracker::pooled() const {
  StalenessDistribution out;
  for (const auto& d : per_owner_) out.merge(d);
  return out;
}

std::uint64_t FileTracker::total_files() const {
  std::uint64_t n = 0;
  for (const auto& d : per_owner_) n += d.count();
  return n;
}

}  // namespace gdisim
