// INDEXBUILD daemon (thesis §6.3.2/§6.4.3, Figure 6-9).
//
// A new run launches dT_IB after the previous one *completed*, so only one
// INDEXBUILD is ever in flight; files keep accumulating while a run
// executes, producing the cumulative lag the thesis observes after the peak
// (Figure 6-14: R_IB^max occurs at ~17:00, past the workload peak).
#pragma once

#include <algorithm>
#include <vector>

#include "background/daemon.h"
#include "background/data_growth.h"
#include "background/ownership.h"

namespace gdisim {

struct IndexBuildConfig {
  std::string name = "bg/indexbuild";
  DcId home_dc = 0;
  double delay_after_completion_s = 5.0 * 60.0;
  std::vector<DcId> producer_dcs;  ///< data centers whose new files get indexed here
  std::uint64_t seed = 1;
  /// §9.1.1 what-if: cores the index build may fork across (thesis: 1).
  unsigned index_parallelism = 1;
};

class IndexBuildDaemon final : public BackgroundDaemon {
 public:
  IndexBuildDaemon(IndexBuildConfig config, const DataGrowthModel& growth,
                   AccessPatternMatrix apm, OperationContext& ctx, TickClock clock);

  void on_tick(Tick now) override;
  void on_interactions(Tick now) override { drain_completions(now); }

  /// While a run is in flight the daemon only needs its completion (inbox
  /// wake); otherwise it sleeps until the launch-after-completion deadline.
  Tick next_wake_tick(Tick next_now) const override {
    if (completions_pending()) return next_now;
    if (running_) return kNeverTick;
    return std::max(next_launch_, next_now);
  }

  const IndexBuildConfig& config() const { return config_; }

  /// R_IB^max: worst unsearchability exposure (seconds) observed so far.
  double max_unsearchable_s() const { return ledger().max_exposure_s(); }

  void archive_state(StateArchive& ar, HandlerRegistry& reg) override {
    archive_daemon_state(ar, reg);
    ar.section("indexbuild");
    ar.boolean(running_);
    ar.i64(next_launch_);
    ar.f64(cover_from_hour_);
  }

 protected:
  void on_run_complete(const BackgroundRunRecord& record, Tick end_tick) override;

 private:
  IndexBuildConfig config_;  // ARCHIVE-TRANSIENT: construction-time configuration
  // Stored by value: the daemon outlives scenario moves (Scenario is
  // movable) and the model is read-only here.
  DataGrowthModel growth_;  // ARCHIVE-TRANSIENT: construction-time configuration
  AccessPatternMatrix apm_;  // ARCHIVE-TRANSIENT: construction-time configuration
  bool running_ = false;
  Tick next_launch_ = 0;
  Tick delay_ticks_ = 1;  // ARCHIVE-TRANSIENT: derived from config at construction
  double cover_from_hour_ = 0.0;
};

}  // namespace gdisim
