// Freshness ledger: tracks the effectiveness metrics of background jobs
// (thesis §6.3.3): R_SR — the maximum time a stale file version can survive
// in a data center — and R_IB — the maximum time new data remains
// unsearchable. A run that covers content modified since `cover_from` and
// finishes at `done` exposes a worst-case window of (done - cover_from).
#pragma once

#include <vector>

#include "hardware/datacenter.h"

namespace gdisim {

struct BackgroundRunRecord {
  double launch_hour = 0.0;
  double duration_s = 0.0;
  double cover_from_hour = 0.0;
  double cover_to_hour = 0.0;
  double total_mb = 0.0;
  std::vector<std::pair<DcId, double>> pull_mb;
  std::vector<std::pair<DcId, double>> push_mb;

  /// Worst-case exposure of a file covered by this run, seconds.
  double exposure_s() const {
    return duration_s + (cover_to_hour - cover_from_hour) * 3600.0;
  }
};

class FreshnessLedger {
 public:
  void record(BackgroundRunRecord rec) { runs_.push_back(std::move(rec)); }

  const std::vector<BackgroundRunRecord>& runs() const { return runs_; }

  /// max over runs of exposure — R^max of §6.5.3 / §7.4.3.
  double max_exposure_s() const;

  /// Longest single run, seconds.
  double max_duration_s() const;

 private:
  std::vector<BackgroundRunRecord> runs_;
};

}  // namespace gdisim
