// Freshness ledger: tracks the effectiveness metrics of background jobs
// (thesis §6.3.3): R_SR — the maximum time a stale file version can survive
// in a data center — and R_IB — the maximum time new data remains
// unsearchable. A run that covers content modified since `cover_from` and
// finishes at `done` exposes a worst-case window of (done - cover_from).
#pragma once

#include <vector>

#include "core/archive.h"
#include "hardware/datacenter.h"

namespace gdisim {

struct BackgroundRunRecord {
  double launch_hour = 0.0;
  double duration_s = 0.0;
  double cover_from_hour = 0.0;
  double cover_to_hour = 0.0;
  double total_mb = 0.0;
  std::vector<std::pair<DcId, double>> pull_mb;
  std::vector<std::pair<DcId, double>> push_mb;

  /// Worst-case exposure of a file covered by this run, seconds.
  double exposure_s() const {
    return duration_s + (cover_to_hour - cover_from_hour) * 3600.0;
  }

  void archive_state(StateArchive& ar) {
    ar.f64(launch_hour);
    ar.f64(duration_s);
    ar.f64(cover_from_hour);
    ar.f64(cover_to_hour);
    ar.f64(total_mb);
    auto rw_legs = [&ar](std::vector<std::pair<DcId, double>>& legs) {
      std::size_t n = legs.size();
      ar.size_value(n);
      if (ar.reading()) legs.resize(n);
      for (auto& [dc, mb] : legs) {
        ar.u32(dc);
        ar.f64(mb);
      }
    };
    rw_legs(pull_mb);
    rw_legs(push_mb);
  }
};

class FreshnessLedger {
 public:
  void record(BackgroundRunRecord rec) { runs_.push_back(std::move(rec)); }

  const std::vector<BackgroundRunRecord>& runs() const { return runs_; }

  /// max over runs of exposure — R^max of §6.5.3 / §7.4.3.
  double max_exposure_s() const;

  /// Longest single run, seconds.
  double max_duration_s() const;

  void archive_state(StateArchive& ar) {
    ar.section("ledger");
    std::size_t n = runs_.size();
    ar.size_value(n);
    if (ar.reading()) runs_.resize(n);
    for (BackgroundRunRecord& rec : runs_) rec.archive_state(ar);
  }

 private:
  std::vector<BackgroundRunRecord> runs_;
};

}  // namespace gdisim
