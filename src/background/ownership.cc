#include "background/ownership.h"

namespace gdisim {

AccessPatternMatrix::AccessPatternMatrix(std::vector<std::vector<double>> rows) {
  fraction_.reserve(rows.size());
  cdf_.reserve(rows.size());
  for (auto& row : rows) {
    if (row.size() != rows.size()) {
      throw std::invalid_argument("AccessPatternMatrix: must be square");
    }
    double total = 0.0;
    for (double v : row) {
      if (v < 0.0) throw std::invalid_argument("AccessPatternMatrix: negative entry");
      total += v;
    }
    if (total <= 0.0) throw std::invalid_argument("AccessPatternMatrix: zero row");
    std::vector<double> frac(row.size());
    std::vector<double> cdf(row.size());
    double acc = 0.0;
    for (std::size_t j = 0; j < row.size(); ++j) {
      frac[j] = row[j] / total;
      acc += frac[j];
      cdf[j] = acc;
    }
    cdf.back() = 1.0;
    fraction_.push_back(std::move(frac));
    cdf_.push_back(std::move(cdf));
  }
}

AccessPatternMatrix AccessPatternMatrix::single_master(std::size_t dc_count, DcId master) {
  std::vector<std::vector<double>> rows(dc_count, std::vector<double>(dc_count, 0.0));
  for (std::size_t i = 0; i < dc_count; ++i) rows[i][master] = 100.0;
  return AccessPatternMatrix(std::move(rows));
}

DcId AccessPatternMatrix::sample_owner(DcId origin, double uniform01) const {
  const auto& cdf = cdf_.at(origin);
  for (std::size_t j = 0; j < cdf.size(); ++j) {
    if (uniform01 < cdf[j]) return static_cast<DcId>(j);
  }
  return static_cast<DcId>(cdf.size() - 1);
}

double AccessPatternMatrix::fraction(DcId origin, DcId owner) const {
  return fraction_.at(origin).at(owner);
}

double owned_growth_fraction(const AccessPatternMatrix& apm, DcId creator, DcId owner) {
  return apm.fraction(creator, owner);
}

}  // namespace gdisim
