// Per-file identity tracking (thesis §9.2.3 "File Identity", future work).
//
// The SYNCHREP daemons operate on aggregate volumes; this tracker
// materializes those volumes into discrete files — id, creator, owner,
// creation time — and measures the *per-file* staleness distribution: how
// long each file version existed before a synchronization run propagated
// it. R^max (the ledger's worst case) is the tail of this distribution;
// the tracker also provides mean and percentiles, which the thesis lists as
// the information data center operators actually need for SLA design.
//
// Thread-safety: files are partitioned by owning data center, and each
// owner's SYNCHREP daemon is the only writer of its partition (callbacks
// run in that daemon's interaction phase), so no synchronization is needed.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "background/data_growth.h"
#include "background/ownership.h"
#include "core/archive.h"
#include "core/rng.h"

namespace gdisim {

/// Histogram-backed summary of per-file staleness, seconds.
class StalenessDistribution {
 public:
  static constexpr int kBins = 240;          // 30 s bins ...
  static constexpr double kBinSeconds = 30;  // ... up to 2 h

  void record(double seconds);

  std::uint64_t count() const { return count_; }
  double mean_s() const { return count_ ? total_ / static_cast<double>(count_) : 0.0; }
  double max_s() const { return max_; }
  /// Inverse-CDF lookup from the histogram (upper bin edge).
  double percentile_s(double p) const;

  /// Accumulates another distribution into this one.
  void merge(const StalenessDistribution& other);

  void archive_state(StateArchive& ar) {
    ar.section("staleness");
    for (auto& b : bins_) ar.u64(b);
    ar.u64(count_);
    ar.f64(total_);
    ar.f64(max_);
  }

 private:
  std::array<std::uint64_t, kBins> bins_{};
  std::uint64_t count_ = 0;
  double total_ = 0.0;
  double max_ = 0.0;
};

class FileTracker {
 public:
  /// `apm` may be empty for single-master infrastructures (every file is
  /// owned by `single_owner`).
  FileTracker(const DataGrowthModel& growth, AccessPatternMatrix apm,
              std::vector<DcId> creator_dcs, DcId single_owner, std::uint64_t seed);

  /// Called when the owner's SYNCHREP run that covered content modified in
  /// (cover_from_h, cover_to_h] completes at done_h. Materializes the files
  /// created in that window and records their staleness.
  void on_sync_complete(DcId owner, double cover_from_h, double cover_to_h, double done_h);

  const StalenessDistribution& staleness(DcId owner) const { return per_owner_.at(owner); }

  /// Distribution pooled across owners.
  StalenessDistribution pooled() const;

  std::uint64_t total_files() const;

  /// Snapshot round trip of the accumulated per-owner distributions (the
  /// growth model, matrix and seed are construction-time configuration).
  void archive_state(StateArchive& ar) {
    ar.section("file_tracker");
    std::size_t n = per_owner_.size();
    ar.size_value(n);
    ar.expect_equal(n, per_owner_.size(), "file tracker owner count");
    for (StalenessDistribution& d : per_owner_) d.archive_state(ar);
  }

 private:
  DataGrowthModel growth_;  // ARCHIVE-TRANSIENT: construction-time configuration
  AccessPatternMatrix apm_;  // ARCHIVE-TRANSIENT: construction-time configuration
  std::vector<DcId> creator_dcs_;  // ARCHIVE-TRANSIENT: construction-time configuration
  DcId single_owner_;  // ARCHIVE-TRANSIENT: construction-time configuration
  std::uint64_t seed_;  // ARCHIVE-TRANSIENT: construction-time configuration; evolving state lives in per_owner_
  std::vector<StalenessDistribution> per_owner_;
};

}  // namespace gdisim
