// Background-process optimization study (thesis Ch. 7): compare the
// consolidated single-master infrastructure against the multiple-master
// infrastructure with data ownership, side by side.
//
//   ./build/examples/multimaster_study [hours=4] [scale=0.05]
#include <cstdlib>
#include <iostream>

#include "sim/gdisim.h"

using namespace gdisim;

namespace {

struct StudyResult {
  double sr_max_duration_min = 0.0;
  double sr_staleness_min = 0.0;
  double ib_max_duration_min = 0.0;
  double ib_unsearchable_min = 0.0;
  double na_peak_pull_push_mb = 0.0;
  double na_app_util = 0.0;
  double na_db_util = 0.0;
};

StudyResult run(bool multimaster, double hours, double scale) {
  GlobalOptions opt;
  opt.scale = scale;
  Scenario scenario =
      multimaster ? make_multimaster_scenario(opt) : make_consolidated_scenario(opt);
  GdiSimulator sim(std::move(scenario), SimulatorConfig{30.0, 4, 64});
  sim.run_for(11.0 * 3600.0);
  const double t0 = sim.now_seconds();
  sim.run_for(hours * 3600.0);
  const double t1 = sim.now_seconds();

  StudyResult r;
  SynchRepDaemon* sr = sim.scenario().synchrep_at(0);
  IndexBuildDaemon* ib = sim.scenario().indexbuild_at(0);
  r.sr_max_duration_min = sr->ledger().max_duration_s() / 60.0;
  r.sr_staleness_min = sr->max_staleness_s() / 60.0;
  r.ib_max_duration_min = ib->ledger().max_duration_s() / 60.0;
  r.ib_unsearchable_min = ib->max_unsearchable_s() / 60.0;
  for (const auto& run : sr->ledger().runs()) {
    double total = 0.0;
    for (const auto& [dc, mb] : run.pull_mb) total += mb;
    for (const auto& [dc, mb] : run.push_mb) total += mb;
    r.na_peak_pull_push_mb = std::max(r.na_peak_pull_push_mb, total);
  }
  r.na_app_util = sim.collector().find("cpu/NA/app")->mean_between(t0, t1);
  r.na_db_util = sim.collector().find("cpu/NA/db")->mean_between(t0, t1);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const double hours = argc > 1 ? std::atof(argv[1]) : 4.0;
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.05;

  std::cout << "Comparing single-master vs multiple-master over the peak window\n"
            << "(scale=" << scale << ", " << hours << " h from 11:00 GMT)...\n\n";
  const StudyResult single = run(false, hours, scale);
  const StudyResult multi = run(true, hours, scale);

  TableReport t({"metric", "single master", "multiple master"});
  t.add_row({"SYNCHREP longest run (min)", TableReport::fmt(single.sr_max_duration_min),
             TableReport::fmt(multi.sr_max_duration_min)});
  t.add_row({"R_SR^max staleness (min)", TableReport::fmt(single.sr_staleness_min),
             TableReport::fmt(multi.sr_staleness_min)});
  t.add_row({"INDEXBUILD longest run (min)", TableReport::fmt(single.ib_max_duration_min),
             TableReport::fmt(multi.ib_max_duration_min)});
  t.add_row({"R_IB^max unsearchable (min)", TableReport::fmt(single.ib_unsearchable_min),
             TableReport::fmt(multi.ib_unsearchable_min)});
  t.add_row({"NA peak pull+push volume (MB)", TableReport::fmt(single.na_peak_pull_push_mb),
             TableReport::fmt(multi.na_peak_pull_push_mb)});
  t.add_row({"NA app tier util", TableReport::pct(single.na_app_util),
             TableReport::pct(multi.na_app_util)});
  t.add_row({"NA db tier util", TableReport::pct(single.na_db_util),
             TableReport::pct(multi.na_db_util)});
  t.print(std::cout);

  const double reduction =
      1.0 - multi.na_peak_pull_push_mb / std::max(1.0, single.na_peak_pull_push_mb);
  std::cout << "\nD_NA background transfer volume reduced by "
            << TableReport::pct(reduction)
            << " (thesis reports ~43%), at the price of relaxing index\n"
               "consistency from timeline to eventual (thesis §7.2.2).\n";
  return 0;
}
