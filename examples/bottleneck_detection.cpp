// Bottleneck detection (thesis Figure 1-1, application #5): ramp the client
// population until some resource saturates, and report which component hits
// the wall first and how response times degrade past that point.
//
//   ./build/examples/bottleneck_detection
#include <iostream>
#include <vector>

#include "sim/gdisim.h"

using namespace gdisim;

namespace {

struct RampPoint {
  unsigned clients;
  double app_util, db_util, fs_util, idx_util;
  double explore_mean_s;
};

RampPoint run_point(unsigned clients) {
  InfrastructureBuilder builder(21);
  DataCenterBlueprint dc;
  dc.name = "DC";
  dc.tiers[TierKind::App] = TierNotation{2, 2, 32.0};
  dc.tiers[TierKind::Db] = TierNotation{1, 2, 64.0};
  dc.tiers[TierKind::Fs] = TierNotation{1, 2, 16.0};
  dc.tiers[TierKind::Idx] = TierNotation{1, 2, 32.0};
  dc.san = SanNotation{2, 24, 15000.0};
  builder.add_datacenter(dc);

  Scenario scenario;
  scenario.tick_seconds = 0.02;
  scenario.topology = builder.finish();
  scenario.master_dc = 0;
  scenario.ctx = std::make_unique<OperationContext>(*scenario.topology, 0);
  scenario.catalog = std::make_unique<OperationCatalog>(OperationCatalog::standard());

  const TickClock clock(scenario.tick_seconds);
  ClientPopulationConfig cfg;
  cfg.name = "CAD@DC";
  cfg.dc = 0;
  cfg.curve = WorkloadCurve::constant(clients);
  cfg.mix = OperationMix::uniform(scenario.catalog->operations_of("CAD"));
  cfg.think_time_mean_s = 30.0;
  cfg.file_size_mb = 25.0;
  cfg.seed = 5;
  scenario.populations.push_back(
      std::make_unique<ClientPopulation>(cfg, *scenario.catalog, *scenario.ctx, clock));

  GdiSimulator sim(std::move(scenario), SimulatorConfig{6.0, 4, 64});
  sim.run_for(8.0 * 60.0);

  RampPoint p{};
  p.clients = clients;
  p.app_util = sim.collector().find("cpu/DC/app")->mean_between(240, 480);
  p.db_util = sim.collector().find("cpu/DC/db")->mean_between(240, 480);
  p.fs_util = sim.collector().find("cpu/DC/fs")->mean_between(240, 480);
  p.idx_util = sim.collector().find("cpu/DC/idx")->mean_between(240, 480);
  const auto& stats = sim.scenario().populations[0]->stats();
  if (stats.count("CAD.EXPLORE")) p.explore_mean_s = stats.at("CAD.EXPLORE").mean();
  return p;
}

}  // namespace

int main() {
  std::cout << "Ramping CAD clients against a small data center...\n\n";
  TableReport t({"clients", "app", "db", "fs", "idx", "EXPLORE mean (s)"});
  std::vector<RampPoint> points;
  for (unsigned n : {10u, 20u, 40u, 60u, 80u, 120u}) {
    points.push_back(run_point(n));
    const RampPoint& p = points.back();
    t.add_row({std::to_string(p.clients), TableReport::pct(p.app_util),
               TableReport::pct(p.db_util), TableReport::pct(p.fs_util),
               TableReport::pct(p.idx_util), TableReport::fmt(p.explore_mean_s)});
  }
  t.print(std::cout);

  // Identify the resource closest to saturation at the highest ramp point.
  const RampPoint& last = points.back();
  const char* bottleneck = "app tier";
  double worst = last.app_util;
  if (last.db_util > worst) {
    worst = last.db_util;
    bottleneck = "db tier";
  }
  if (last.fs_util > worst) {
    worst = last.fs_util;
    bottleneck = "fs tier";
  }
  if (last.idx_util > worst) {
    worst = last.idx_util;
    bottleneck = "idx tier";
  }
  std::cout << "\nFirst bottleneck: " << bottleneck << " at "
            << TableReport::pct(worst)
            << " — response times grow nonlinearly once it saturates\n"
               "(the thesis' 'linear operation zone' boundary, §5.2.4).\n";
  return 0;
}
