// Quickstart: build a small two-data-center infrastructure, attach a client
// workload, run 10 simulated minutes and print utilization + response times.
//
//   ./build/examples/quickstart
#include <iostream>

#include "sim/gdisim.h"

using namespace gdisim;

int main() {
  // 1. Describe the hardware in the thesis notation: T^(servers,cores,GB).
  InfrastructureBuilder builder(/*seed=*/2024);

  DataCenterBlueprint hq;
  hq.name = "HQ";
  hq.tiers[TierKind::App] = TierNotation{2, 4, 32.0};
  hq.tiers[TierKind::Db] = TierNotation{1, 8, 64.0};
  hq.tiers[TierKind::Fs] = TierNotation{1, 4, 16.0};
  hq.tiers[TierKind::Idx] = TierNotation{1, 4, 32.0};
  hq.san = SanNotation{1, 16, 15000.0};
  builder.add_datacenter(hq);

  DataCenterBlueprint branch;
  branch.name = "BRANCH";
  branch.tiers[TierKind::Fs] = TierNotation{1, 4, 16.0};
  branch.san = SanNotation{1, 8, 15000.0};
  builder.add_datacenter(branch);

  // 155 Mbps WAN link with 40 ms latency; applications may use 20% of it.
  builder.connect_duplex("HQ", "BRANCH", LinkNotation{0.155, 40.0, 0.2});

  // 2. Assemble the scenario: topology + operation catalog + workloads.
  Scenario scenario;
  scenario.tick_seconds = 0.02;
  scenario.topology = builder.finish();
  scenario.master_dc = scenario.topology->find_dc("HQ");
  scenario.ctx = std::make_unique<OperationContext>(*scenario.topology, scenario.master_dc);
  scenario.catalog = std::make_unique<OperationCatalog>(OperationCatalog::standard());

  const TickClock clock(scenario.tick_seconds);
  ClientPopulationConfig clients;
  clients.name = "CAD@BRANCH";
  clients.dc = scenario.topology->find_dc("BRANCH");
  clients.curve = WorkloadCurve::constant(20.0);  // 20 logged-in designers
  clients.mix = OperationMix::uniform(scenario.catalog->operations_of("CAD"));
  clients.think_time_mean_s = 30.0;
  clients.file_size_mb = 25.0;
  clients.seed = 7;
  scenario.populations.push_back(
      std::make_unique<ClientPopulation>(clients, *scenario.catalog, *scenario.ctx, clock));

  // 3. Run.
  SimulatorConfig cfg;
  cfg.threads = 4;
  GdiSimulator sim(std::move(scenario), cfg);
  std::cout << "Simulating 10 minutes of branch-office CAD work...\n";
  sim.run_for(10.0 * 60.0);

  // 4. Report.
  std::cout << "\nMean utilization over the run:\n";
  TableReport util({"resource", "utilization"});
  for (const char* label : {"cpu/HQ/app", "cpu/HQ/db", "cpu/HQ/fs", "cpu/HQ/idx",
                            "cpu/BRANCH/fs", "net/HQ->BRANCH", "net/BRANCH->HQ"}) {
    const TimeSeries* s = sim.collector().find(label);
    if (s != nullptr) util.add_row({label, TableReport::pct(s->mean_between(60, 600))});
  }
  util.print(std::cout);

  std::cout << "\nResponse times seen by BRANCH clients:\n";
  TableReport resp({"operation", "count", "mean (s)", "max (s)"});
  const ClientPopulation* pop = sim.scenario().populations[0].get();
  for (const auto& [op, stats] : pop->stats()) {
    resp.add_row({op, std::to_string(stats.count), TableReport::fmt(stats.mean()),
                  TableReport::fmt(stats.max_s)});
  }
  resp.print(std::cout);

  std::cout << "\nNote how chatty metadata operations (EXPLORE, SPATIAL-SEARCH)\n"
               "pay the WAN latency on every round trip to HQ, while OPEN/SAVE\n"
               "stream from the local file tier.\n";
  return 0;
}
