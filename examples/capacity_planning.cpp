// Capacity planning (thesis Figure 1-1, application #2): sweep the number of
// application servers and find the smallest deployment that keeps the app
// tier below a target utilization and response times within an SLA.
//
//   ./build/examples/capacity_planning [target_util=0.7]
#include <cstdlib>
#include <iostream>

#include "sim/gdisim.h"

using namespace gdisim;

namespace {

struct SweepPoint {
  unsigned app_servers;
  double app_util;
  double login_mean_s;
  double open_mean_s;
};

SweepPoint run_point(unsigned app_servers) {
  InfrastructureBuilder builder(11);
  DataCenterBlueprint dc;
  dc.name = "DC";
  dc.tiers[TierKind::App] = TierNotation{app_servers, 2, 32.0};
  dc.tiers[TierKind::Db] = TierNotation{1, 8, 64.0};
  dc.tiers[TierKind::Fs] = TierNotation{1, 8, 16.0};
  dc.tiers[TierKind::Idx] = TierNotation{1, 4, 32.0};
  dc.san = SanNotation{2, 24, 15000.0};
  builder.add_datacenter(dc);

  Scenario scenario;
  scenario.tick_seconds = 0.02;
  scenario.topology = builder.finish();
  scenario.master_dc = 0;
  scenario.ctx = std::make_unique<OperationContext>(*scenario.topology, 0);
  scenario.catalog = std::make_unique<OperationCatalog>(OperationCatalog::standard());

  const TickClock clock(scenario.tick_seconds);
  ClientPopulationConfig clients;
  clients.name = "CAD@DC";
  clients.dc = 0;
  clients.curve = WorkloadCurve::constant(60.0);
  clients.mix = OperationMix::uniform(scenario.catalog->operations_of("CAD"));
  clients.think_time_mean_s = 30.0;
  clients.file_size_mb = 25.0;
  clients.seed = 3;
  scenario.populations.push_back(
      std::make_unique<ClientPopulation>(clients, *scenario.catalog, *scenario.ctx, clock));

  GdiSimulator sim(std::move(scenario), SimulatorConfig{6.0, 4, 64});
  sim.run_for(8.0 * 60.0);

  SweepPoint p;
  p.app_servers = app_servers;
  p.app_util = sim.collector().find("cpu/DC/app")->mean_between(120, 480);
  const auto& stats = sim.scenario().populations[0]->stats();
  p.login_mean_s = stats.count("CAD.LOGIN") ? stats.at("CAD.LOGIN").mean() : 0.0;
  p.open_mean_s = stats.count("CAD.OPEN") ? stats.at("CAD.OPEN").mean() : 0.0;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const double target = argc > 1 ? std::atof(argv[1]) : 0.70;
  std::cout << "Sweeping app-server count for 60 concurrent CAD clients\n"
            << "(SLA target: app tier below " << TableReport::pct(target) << ")\n\n";

  TableReport t({"app servers", "app util", "LOGIN mean (s)", "OPEN mean (s)", "meets SLA"});
  unsigned pick = 0;
  for (unsigned n : {1u, 2u, 3u, 4u, 6u, 8u}) {
    const SweepPoint p = run_point(n);
    const bool ok = p.app_util < target;
    if (ok && pick == 0) pick = n;
    t.add_row({std::to_string(p.app_servers), TableReport::pct(p.app_util),
               TableReport::fmt(p.login_mean_s), TableReport::fmt(p.open_mean_s),
               ok ? "yes" : "no"});
  }
  t.print(std::cout);

  if (pick != 0) {
    std::cout << "\nSmallest deployment meeting the SLA: " << pick << " app servers.\n";
  } else {
    std::cout << "\nNo swept deployment meets the SLA; increase server counts.\n";
  }
  return 0;
}
