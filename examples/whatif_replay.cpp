// "What if" via workload replay (thesis Figure 1-1, applications #1 and #3):
// record the live workload of an overloaded data center, then replay the
// *identical* demand against candidate hardware upgrades and compare the
// client experience — the cleanest apples-to-apples what-if methodology.
//
//   ./build/examples/whatif_replay
#include <iostream>

#include "sim/gdisim.h"
#include "software/replay.h"

using namespace gdisim;

namespace {

Scenario make_infra(unsigned app_servers, unsigned db_cores) {
  InfrastructureBuilder builder(17);
  DataCenterBlueprint dc;
  dc.name = "DC";
  dc.tiers[TierKind::App] = TierNotation{app_servers, 2, 32.0};
  dc.tiers[TierKind::Db] = TierNotation{1, db_cores, 64.0};
  dc.tiers[TierKind::Fs] = TierNotation{1, 4, 16.0};
  dc.tiers[TierKind::Idx] = TierNotation{1, 4, 32.0};
  dc.san = SanNotation{2, 24, 15000.0};
  builder.add_datacenter(dc);

  Scenario s;
  s.tick_seconds = 0.02;
  s.topology = builder.finish();
  s.master_dc = 0;
  s.ctx = std::make_unique<OperationContext>(*s.topology, 0);
  s.catalog = std::make_unique<OperationCatalog>(OperationCatalog::standard());
  return s;
}

struct ReplayResult {
  double app_util = 0.0;
  double explore_mean = 0.0;
  double open_mean = 0.0;
};

ReplayResult replay_on(const WorkloadTrace& trace, unsigned app_servers, unsigned db_cores,
                       double horizon_s) {
  Scenario scenario = make_infra(app_servers, db_cores);
  const TickClock clock(scenario.tick_seconds);
  auto launcher =
      std::make_unique<TraceLauncher>(trace, *scenario.catalog, *scenario.ctx, clock);
  TraceLauncher* raw = launcher.get();

  HDispatchEngine engine(0, 64);
  SimulationLoop loop({scenario.tick_seconds, 0}, engine);
  scenario.register_with(loop);
  loop.add_agent(raw);

  Collector collector(scenario.tick_seconds);
  install_standard_probes(collector, scenario);
  loop.set_collect_callback([&collector](Tick now) { collector.collect(now); });
  // Manually set the collection cadence by sampling in the run loop.
  const Tick collect_every = clock.to_ticks(6.0);
  const Tick end = clock.to_ticks(horizon_s);
  while (loop.now() < end) {
    loop.step();
    if (loop.now() % collect_every == 0) collector.collect(loop.now());
  }

  ReplayResult r;
  r.app_util = collector.find("cpu/DC/app")->mean_between(60.0, horizon_s);
  if (raw->stats().count("CAD.EXPLORE")) r.explore_mean = raw->stats().at("CAD.EXPLORE").mean();
  if (raw->stats().count("CAD.OPEN")) r.open_mean = raw->stats().at("CAD.OPEN").mean();
  return r;
}

}  // namespace

int main() {
  std::cout << "Step 1: record 8 minutes of a 70-client CAD workload on the\n"
               "baseline deployment (2 app servers)...\n";
  WorkloadTrace trace;
  {
    Scenario scenario = make_infra(2, 8);
    const TickClock clock(scenario.tick_seconds);
    ClientPopulationConfig cfg;
    cfg.name = "CAD@DC";
    cfg.dc = 0;
    cfg.curve = WorkloadCurve::constant(70.0);
    cfg.mix = OperationMix::uniform(scenario.catalog->operations_of("CAD"));
    cfg.think_time_mean_s = 25.0;
    cfg.file_size_mb = 25.0;
    cfg.seed = 23;
    auto pop = std::make_unique<ClientPopulation>(cfg, *scenario.catalog, *scenario.ctx, clock);
    pop->set_launch_recorder(trace.recorder());
    HDispatchEngine engine(0, 64);
    SimulationLoop loop({scenario.tick_seconds, 0}, engine);
    scenario.register_with(loop);
    loop.add_agent(pop.get());
    loop.run_for_seconds(8.0 * 60.0);
  }
  trace.finalize();
  std::cout << "   recorded " << trace.size() << " operation launches\n\n";

  std::cout << "Step 2: replay the identical demand against candidate upgrades:\n\n";
  TableReport t({"deployment", "app util", "EXPLORE mean (s)", "OPEN mean (s)"});
  struct Candidate {
    const char* label;
    unsigned app_servers;
    unsigned db_cores;
  };
  for (const Candidate c : {Candidate{"baseline: 2 app / 8 db-cores", 2, 8},
                            Candidate{"upgrade A: 4 app / 8 db-cores", 4, 8},
                            Candidate{"upgrade B: 2 app / 16 db-cores", 2, 16},
                            Candidate{"upgrade C: 4 app / 16 db-cores", 4, 16}}) {
    const ReplayResult r = replay_on(trace, c.app_servers, c.db_cores, 10.0 * 60.0);
    t.add_row({c.label, TableReport::pct(r.app_util), TableReport::fmt(r.explore_mean),
               TableReport::fmt(r.open_mean)});
  }
  t.print(std::cout);

  std::cout << "\nBecause every row served the *same* recorded launches, the\n"
               "differences are attributable purely to the hardware change —\n"
               "no workload-sampling noise in the comparison.\n";
  return 0;
}
