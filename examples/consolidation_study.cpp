// Consolidation case study (thesis Ch. 6) in miniature: run the consolidated
// six-continent infrastructure through the global peak window and report
// what a data center operator would look at — tier utilization in the MDC,
// WAN occupancy, background-job effectiveness, and client experience.
//
//   ./build/examples/consolidation_study [hours=6] [scale=0.05]
#include <cstdlib>
#include <iostream>

#include "sim/gdisim.h"

using namespace gdisim;

int main(int argc, char** argv) {
  const double hours = argc > 1 ? std::atof(argv[1]) : 6.0;
  GlobalOptions opt;
  opt.scale = argc > 2 ? std::atof(argv[2]) : 0.05;

  std::cout << "Consolidated infrastructure (single master D_NA), scale=" << opt.scale
            << "\nSimulating " << hours << " h starting at 10:00 GMT...\n";

  Scenario scenario = make_consolidated_scenario(opt);
  GdiSimulator sim(std::move(scenario), SimulatorConfig{30.0, 4, 64});

  // Warp to 10:00 GMT so the run covers the 12:00-16:00 global peak.
  sim.run_for(10.0 * 3600.0);
  const double t0 = sim.now_seconds();
  sim.run_for(hours * 3600.0);
  const double t1 = sim.now_seconds();

  std::cout << "\nMaster data center utilization (mean over window):\n";
  TableReport cpu({"tier", "mean util", "peak util"});
  for (const char* label : {"cpu/NA/app", "cpu/NA/db", "cpu/NA/fs", "cpu/NA/idx"}) {
    const TimeSeries* s = sim.collector().find(label);
    cpu.add_row({label, TableReport::pct(s->mean_between(t0, t1)),
                 TableReport::pct(s->max_value())});
  }
  cpu.print(std::cout);

  std::cout << "\nWAN link occupancy (of the 20% allocated capacity):\n";
  TableReport net({"link", "mean util"});
  for (const char* label : {"net/NA->EU", "net/NA->SA", "net/NA->AS1", "net/AS1->AFR",
                            "net/AS1->AS2", "net/AS1->AUS"}) {
    const TimeSeries* s = sim.collector().find(label);
    net.add_row({label, TableReport::pct(s->mean_between(t0, t1))});
  }
  net.print(std::cout);

  SynchRepDaemon* sr = sim.scenario().synchreps.at(0).get();
  IndexBuildDaemon* ib = sim.scenario().indexbuilds.at(0).get();
  std::cout << "\nBackground processes:\n"
            << "  SYNCHREP runs: " << sr->ledger().runs().size()
            << ", longest " << TableReport::fmt(sr->ledger().max_duration_s() / 60.0)
            << " min, R_SR^max = " << TableReport::fmt(sr->max_staleness_s() / 60.0)
            << " min\n"
            << "  INDEXBUILD runs: " << ib->ledger().runs().size()
            << ", longest " << TableReport::fmt(ib->ledger().max_duration_s() / 60.0)
            << " min, R_IB^max = " << TableReport::fmt(ib->max_unsearchable_s() / 60.0)
            << " min\n";

  std::cout << "\nClient experience (CAD in NA vs AUS):\n";
  TableReport resp({"operation", "NA mean (s)", "AUS mean (s)"});
  ClientPopulation* na = sim.scenario().population("CAD@NA");
  ClientPopulation* aus = sim.scenario().population("CAD@AUS");
  if (na != nullptr && aus != nullptr) {
    for (const auto& [op, stats] : na->stats()) {
      const auto it = aus->stats().find(op);
      resp.add_row({op, TableReport::fmt(stats.mean()),
                    it != aus->stats().end() ? TableReport::fmt(it->second.mean()) : "-"});
    }
  }
  resp.print(std::cout);
  std::cout << "\nChatty operations (EXPLORE, SPATIAL-SEARCH, SELECT) degrade with\n"
               "distance from the master; bulk OPEN/SAVE barely notice it.\n";
  return 0;
}
