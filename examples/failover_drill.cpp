// Failure drill (thesis motivation: "Continuous Failure"; Figure 1-1
// applications #4 network administration and #7 attack protection):
// run the consolidated infrastructure through the peak window while the
// NA->AS1 trunk fails, verify that the EU backup links absorb the traffic,
// and quantify the client-experience impact in the affected regions.
//
//   ./build/examples/failover_drill [scale=0.05]
#include <cstdlib>
#include <iostream>

#include "resilience/failure.h"
#include "sim/gdisim.h"

using namespace gdisim;

namespace {

struct DrillResult {
  double explore_aus_s = 0.0;
  double backup_util = 0.0;
  double primary_util = 0.0;
  std::vector<AppliedFailure> events;
};

DrillResult run(bool with_failure, double scale) {
  GlobalOptions opt;
  opt.scale = scale;
  Scenario scenario = make_consolidated_scenario(opt);
  Topology& topo = *scenario.topology;
  const DcId na = topo.find_dc("NA");
  const DcId eu = topo.find_dc("EU");
  const DcId as1 = topo.find_dc("AS1");

  SimulatorConfig cfg;
  cfg.collect_every_s = 30.0;
  GdiSimulator sim(std::move(scenario), cfg);

  FailureInjector injector(topo);
  if (with_failure) {
    // 13:30 GMT: the NA->AS1 trunk goes dark both ways; operators activate
    // the EU backup path. 15:30: the trunk is repaired.
    const double failure_at = 13.5 * 3600.0;
    const double repair_at = 15.5 * 3600.0;
    injector.schedule(FailureEvent::link_down(failure_at, na, as1));
    injector.schedule(FailureEvent::link_down(failure_at, as1, na));
    injector.schedule(FailureEvent::link_up(failure_at, eu, as1));
    injector.schedule(FailureEvent::link_up(failure_at, as1, eu));
    injector.schedule(FailureEvent::link_up(repair_at, na, as1));
    injector.schedule(FailureEvent::link_up(repair_at, as1, na));
    injector.schedule(FailureEvent::link_down(repair_at, eu, as1));
    injector.schedule(FailureEvent::link_down(repair_at, as1, eu));
  }
  injector.install(sim.loop());

  sim.run_for(12.0 * 3600.0);  // warm to noon
  sim.run_for(5.0 * 3600.0);   // through the failure window

  DrillResult r;
  ClientPopulation* aus = sim.scenario().population("CAD@AUS");
  if (aus != nullptr && aus->stats().count("CAD.EXPLORE")) {
    r.explore_aus_s = aus->stats().at("CAD.EXPLORE").mean();
  }
  const double t0 = 13.5 * 3600.0, t1 = 15.5 * 3600.0;
  if (const TimeSeries* s = sim.collector().find("net/EU->AS1")) {
    r.backup_util = s->mean_between(t0, t1);
  }
  if (const TimeSeries* s = sim.collector().find("net/NA->AS1")) {
    r.primary_util = s->mean_between(t0, t1);
  }
  r.events = injector.applied();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.05;
  std::cout << "Failover drill: NA<->AS1 trunk outage 13:30-15:30 GMT\n"
            << "(scale=" << scale << ")\n\n";

  const DrillResult healthy = run(false, scale);
  const DrillResult drill = run(true, scale);

  std::cout << "Applied events:\n";
  for (const auto& e : drill.events) {
    std::cout << "  t=" << format_sim_time(e.at_seconds) << "  " << e.description << "\n";
  }

  TableReport t({"metric", "healthy", "during drill"});
  t.add_row({"NA->AS1 util (13:30-15:30)", TableReport::pct(healthy.primary_util),
             TableReport::pct(drill.primary_util)});
  t.add_row({"EU->AS1 backup util (13:30-15:30)", TableReport::pct(healthy.backup_util),
             TableReport::pct(drill.backup_util)});
  t.add_row({"CAD EXPLORE mean from AUS (s)", TableReport::fmt(healthy.explore_aus_s),
             TableReport::fmt(drill.explore_aus_s)});
  std::cout << "\n";
  t.print(std::cout);

  std::cout << "\nDuring the outage, Asia/Pacific traffic rides NA->EU->AS1: the\n"
               "backup link lights up, the dead trunk drains to ~0%, and AUS\n"
               "clients pay one extra hop of latency until the repair.\n";
  return 0;
}
