// End-to-end operation instance tests on a two-data-center micro world.
#include "software/operation.h"

#include <gtest/gtest.h>

#include "config/builder.h"
#include "core/engine.h"
#include "core/sim_loop.h"

namespace gdisim {
namespace {

constexpr double kTick = 0.01;

struct MicroWorld {
  std::unique_ptr<Topology> topology;
  std::unique_ptr<OperationContext> ctx;
  std::unique_ptr<SerialEngine> engine;
  std::unique_ptr<SimulationLoop> loop;
  DcId na = 0, eu = 0;

  MicroWorld() {
    InfrastructureBuilder builder(7);
    DataCenterBlueprint na_bp;
    na_bp.name = "NA";
    na_bp.tiers[TierKind::App] = TierNotation{2, 2, 32.0};
    na_bp.tiers[TierKind::Db] = TierNotation{1, 2, 32.0};
    na_bp.tiers[TierKind::Fs] = TierNotation{1, 2, 16.0};
    na_bp.tiers[TierKind::Idx] = TierNotation{1, 2, 16.0};
    na_bp.san = SanNotation{1, 8, 15000.0};
    builder.add_datacenter(na_bp);
    DataCenterBlueprint eu_bp;
    eu_bp.name = "EU";
    eu_bp.tiers[TierKind::Fs] = TierNotation{1, 2, 16.0};
    eu_bp.san = SanNotation{1, 8, 15000.0};
    builder.add_datacenter(eu_bp);
    builder.connect_duplex("NA", "EU", LinkNotation{0.155, 50.0, 0.2});
    topology = builder.finish();
    na = topology->find_dc("NA");
    eu = topology->find_dc("EU");
    ctx = std::make_unique<OperationContext>(*topology, na);
    engine = std::make_unique<SerialEngine>();
    loop = std::make_unique<SimulationLoop>(SimLoopConfig{kTick, 0}, *engine);
    topology->register_with(*loop);
  }
};

struct LaunchResult {
  bool done = false;
  Tick end_tick = 0;
};

/// Runs one instance to completion; returns end tick.
LaunchResult run_instance(MicroWorld& world, const CascadeSpec& spec, LaunchParams params,
                          Tick max_ticks = 200000) {
  LaunchResult result;
  OperationInstance instance(spec, *world.ctx, params,
                             [&result](OperationInstance&, Tick end) {
                               result.done = true;
                               result.end_tick = end;
                             });
  instance.start(world.loop->now());
  while (!result.done && world.loop->now() < max_ticks) world.loop->step();
  return result;
}

LaunchParams params_at(DcId origin, std::uint64_t serial = 0) {
  LaunchParams p;
  p.origin_dc = origin;
  p.owner_dc = kInvalidDc;
  p.size_mb = 10.0;
  p.instance_serial = serial;
  p.launcher_id = 4000;
  p.rng_seed = 77 + serial;
  return p;
}

TEST(OperationInstance, SimpleRoundTripCompletes) {
  MicroWorld world;
  CascadeSpec spec = CascadeBuilder("rt")
                         .step()
                         .msg(Endpoint::client(), Endpoint::app_owner(),
                              {0.1 * 2.5e9, 30 * KB, 5 * MB, 0})
                         .msg(Endpoint::app_owner(), Endpoint::client(),
                              {0.05 * 2.4e9, 250 * KB, 0, 0})
                         .build();
  auto r = run_instance(world, spec, params_at(world.na));
  ASSERT_TRUE(r.done);
  // Roughly 0.1 s server cpu + 0.05 s client + hop ticks.
  const double dur = r.end_tick * kTick;
  EXPECT_GT(dur, 0.14);
  EXPECT_LT(dur, 0.40);
}

TEST(OperationInstance, RepeatedStepScalesDuration) {
  MicroWorld world;
  auto make = [](unsigned repeat) {
    return CascadeBuilder("rep")
        .step(repeat)
        .msg(Endpoint::client(), Endpoint::app_owner(), {0.1 * 2.5e9, 30 * KB, 0, 0})
        .msg(Endpoint::app_owner(), Endpoint::client(), {0.05 * 2.4e9, 100 * KB, 0, 0})
        .build();
  };
  auto r1 = run_instance(world, make(1), params_at(world.na, 1));
  MicroWorld world2;
  auto r4 = run_instance(world2, make(4), params_at(world2.na, 2));
  ASSERT_TRUE(r1.done);
  ASSERT_TRUE(r4.done);
  EXPECT_NEAR(static_cast<double>(r4.end_tick), 4.0 * r1.end_tick, 0.3 * r4.end_tick);
}

TEST(OperationInstance, WanLatencyInflatesRemoteOperations) {
  // The same round trip launched from EU must take >= 2 x 50 ms longer
  // (app tier only exists in NA).
  MicroWorld world;
  CascadeSpec spec = CascadeBuilder("rt")
                         .step()
                         .msg(Endpoint::client(), Endpoint::app_owner(),
                              {0.05 * 2.5e9, 30 * KB, 0, 0})
                         .msg(Endpoint::app_owner(), Endpoint::client(),
                              {0.02 * 2.4e9, 100 * KB, 0, 0})
                         .build();
  auto local = run_instance(world, spec, params_at(world.na, 3));
  MicroWorld world2;
  auto remote = run_instance(world2, spec, params_at(world2.eu, 4));
  ASSERT_TRUE(local.done);
  ASSERT_TRUE(remote.done);
  const double delta = (remote.end_tick - local.end_tick) * kTick;
  EXPECT_GT(delta, 0.09);  // 2 x 50 ms latency minus tick granularity
}

TEST(OperationInstance, SlaveTierFallsBackToMaster) {
  // EU has no app tier; resolution must land on an NA app server without
  // throwing and the route must traverse the WAN link.
  MicroWorld world;
  LinkComponent* eu_to_na = world.topology->link(world.eu, world.na);
  ASSERT_NE(eu_to_na, nullptr);
  CascadeSpec spec =
      CascadeBuilder("req")
          .step()
          .msg(Endpoint::client(), Endpoint::app_owner(), {0.05 * 2.5e9, 5 * MB, 0, 0})
          .build();
  auto r = run_instance(world, spec, params_at(world.eu, 5));
  ASSERT_TRUE(r.done);
  EXPECT_GT(eu_to_na->completed_transfers(), 0u);
}

TEST(OperationInstance, ParallelBranchesJoin) {
  MicroWorld world;
  // Two parallel branches with very different service demands; the
  // operation completes only when the slow one does.
  CascadeBuilder b("fork");
  b.step();
  b.msg(Endpoint::client(), Endpoint::app_owner(), {0.02 * 2.5e9, 30 * KB, 0, 0});
  b.branch();
  b.msg(Endpoint::client(), Endpoint::app_owner(), {0.5 * 2.5e9, 30 * KB, 0, 0});
  CascadeSpec spec = b.build();
  auto r = run_instance(world, spec, params_at(world.na, 6));
  ASSERT_TRUE(r.done);
  EXPECT_GT(r.end_tick * kTick, 0.48);
}

TEST(OperationInstance, PerMbCostsScaleWithLaunchSize) {
  MicroWorld world;
  CascadeSpec spec = CascadeBuilder("dl")
                         .step()
                         .msg(Endpoint::fs_local(), Endpoint::client(), {0, 16 * KB, 0, 0})
                         .spec_last_per_mb({0.1 * 2.4e9, 0, 0, 0})
                         .build();
  LaunchParams small = params_at(world.na, 7);
  small.size_mb = 1.0;
  auto r_small = run_instance(world, spec, small);
  MicroWorld world2;
  LaunchParams big = params_at(world2.na, 8);
  big.size_mb = 20.0;
  auto r_big = run_instance(world2, spec, big);
  ASSERT_TRUE(r_small.done);
  ASSERT_TRUE(r_big.done);
  // 0.1 s/MB of client work: 1 MB -> ~0.1 s, 20 MB -> ~2 s.
  EXPECT_GT((r_big.end_tick - r_small.end_tick) * kTick, 1.5);
}

TEST(OperationInstance, SizeOverrideBeatsLaunchSize) {
  MicroWorld world;
  CascadeSpec spec = CascadeBuilder("dl")
                         .step()
                         .msg(Endpoint::fs_local(), Endpoint::client(), {0, 16 * KB, 0, 0})
                         .spec_last_per_mb({0.1 * 2.4e9, 0, 0, 0})
                         .build();
  spec.steps[0].branches[0].messages[0].size_mb_override = 20.0;
  LaunchParams p = params_at(world.na, 9);
  p.size_mb = 1.0;  // should be ignored
  auto r = run_instance(world, spec, p);
  ASSERT_TRUE(r.done);
  EXPECT_GT(r.end_tick * kTick, 1.8);
}

TEST(OperationInstance, MemoryOccupancyReleasedAtEnd) {
  MicroWorld world;
  CascadeSpec spec = CascadeBuilder("mem")
                         .step()
                         .msg(Endpoint::client(), Endpoint::app_owner(),
                              {0.2 * 2.5e9, 30 * KB, 64 * MB, 0})
                         .build();
  auto total_app_mem = [&world]() {
    return world.topology->dc(world.na).tier(TierKind::App)->total_memory_occupied();
  };
  LaunchResult result;
  OperationInstance instance(spec, *world.ctx, params_at(world.na, 10),
                             [&result](OperationInstance&, Tick end) {
                               result.done = true;
                               result.end_tick = end;
                             });
  instance.start(world.loop->now());
  world.loop->step();
  world.loop->step();
  world.loop->step();
  EXPECT_GT(total_app_mem(), 60.0 * MB);  // held while processing
  while (!result.done && world.loop->now() < 10000) world.loop->step();
  ASSERT_TRUE(result.done);
  EXPECT_NEAR(total_app_mem(), 0.0, 1.0);  // released at completion
}

TEST(OperationInstance, EmptyCascadeRejected) {
  MicroWorld world;
  CascadeSpec empty;
  empty.name = "empty";
  EXPECT_THROW(OperationInstance(empty, *world.ctx, params_at(world.na), nullptr),
               std::invalid_argument);
}

TEST(OperationContext, ResolveSelectors) {
  MicroWorld world;
  OperationContext& ctx = *world.ctx;
  EXPECT_EQ(ctx.resolve_dc(Endpoint::client(), world.eu, kInvalidDc), world.eu);
  EXPECT_EQ(ctx.resolve_dc(Endpoint::app_owner(), world.eu, kInvalidDc), world.na);
  EXPECT_EQ(ctx.resolve_dc(Endpoint::app_owner(), world.eu, world.eu), world.eu);
  EXPECT_EQ(ctx.resolve_dc(Endpoint::at(Role::FileServer, world.eu), world.na, kInvalidDc),
            world.eu);
}

TEST(OperationContext, ResolveServerFallsBackWhenTierMissing) {
  MicroWorld world;
  auto resolved = world.ctx->resolve(Endpoint::app_owner(), world.eu, world.eu, 0);
  // Owner says EU but EU has no app tier -> master NA.
  EXPECT_EQ(resolved.dc, world.na);
  ASSERT_NE(resolved.server, nullptr);
}

}  // namespace
}  // namespace gdisim
