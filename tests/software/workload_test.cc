#include "software/workload.h"

#include <gtest/gtest.h>

namespace gdisim {
namespace {

TEST(WorkloadCurve, ConstantCurve) {
  WorkloadCurve c = WorkloadCurve::constant(42.0);
  EXPECT_DOUBLE_EQ(c.at_hour(0.0), 42.0);
  EXPECT_DOUBLE_EQ(c.at_hour(12.5), 42.0);
  EXPECT_DOUBLE_EQ(c.peak(), 42.0);
}

TEST(WorkloadCurve, BusinessHoursPeakInsideShift) {
  WorkloadCurve c = WorkloadCurve::business_hours(100.0, 10.0, 8.0, 17.0, 2.0);
  EXPECT_NEAR(c.at_hour(12.0), 100.0, 1e-9);
  EXPECT_NEAR(c.at_hour(3.0), 10.0, 1e-9);
  // Ramping at shift start.
  EXPECT_GT(c.at_hour(9.0), 10.0);
  EXPECT_LT(c.at_hour(9.0), 100.0);
}

TEST(WorkloadCurve, WrapsMidnightShift) {
  // Australia-style 22:00-07:00 shift.
  WorkloadCurve c = WorkloadCurve::business_hours(100.0, 5.0, 22.0, 7.0, 2.0);
  EXPECT_NEAR(c.at_hour(2.0), 100.0, 1e-9);
  EXPECT_NEAR(c.at_hour(14.0), 5.0, 1e-9);
}

TEST(WorkloadCurve, InterpolatesBetweenHours) {
  std::array<double, 24> h{};
  h[10] = 0.0;
  h[11] = 100.0;
  WorkloadCurve c(h);
  EXPECT_NEAR(c.at_hour(10.5), 50.0, 1e-9);
  EXPECT_NEAR(c.at_hour(10.25), 25.0, 1e-9);
}

TEST(WorkloadCurve, PeriodicIn24Hours) {
  WorkloadCurve c = WorkloadCurve::business_hours(50.0, 5.0, 9.0, 18.0);
  EXPECT_DOUBLE_EQ(c.at_hour(12.0), c.at_hour(36.0));
  EXPECT_DOUBLE_EQ(c.at_hour(12.0), c.at_hour(-12.0));
}

TEST(WorkloadCurve, AtSecondsMatchesAtHour) {
  WorkloadCurve c = WorkloadCurve::business_hours(50.0, 5.0, 9.0, 18.0);
  EXPECT_DOUBLE_EQ(c.at_seconds(12 * 3600.0), c.at_hour(12.0));
}

TEST(WorkloadCurve, Scaled) {
  WorkloadCurve c = WorkloadCurve::constant(10.0).scaled(2.5);
  EXPECT_DOUBLE_EQ(c.at_hour(1.0), 25.0);
}

TEST(OperationMix, UniformSampling) {
  OperationMix mix = OperationMix::uniform({"a", "b", "c", "d"});
  EXPECT_EQ(mix.sample(0.0), "a");
  EXPECT_EQ(mix.sample(0.26), "b");
  EXPECT_EQ(mix.sample(0.51), "c");
  EXPECT_EQ(mix.sample(0.99), "d");
}

TEST(OperationMix, WeightedSampling) {
  OperationMix mix({{"rare", 1.0}, {"common", 9.0}});
  EXPECT_EQ(mix.sample(0.05), "rare");
  EXPECT_EQ(mix.sample(0.2), "common");
  EXPECT_EQ(mix.sample(0.95), "common");
}

TEST(OperationMix, NormalizesWeights) {
  OperationMix mix({{"a", 2.0}, {"b", 2.0}});
  EXPECT_DOUBLE_EQ(mix.entries()[0].second, 0.5);
  EXPECT_DOUBLE_EQ(mix.entries()[1].second, 0.5);
}

TEST(OperationMix, RejectsBadWeights) {
  EXPECT_THROW(OperationMix({{"a", -1.0}}), std::invalid_argument);
  EXPECT_THROW(OperationMix({{"a", 0.0}}), std::invalid_argument);
  EXPECT_THROW(OperationMix().sample(0.5), std::logic_error);
}

}  // namespace
}  // namespace gdisim
