// Client behaviour extensions (thesis §9.2.1): session scripts and think
// time models, exercised on the validation micro-infrastructure.
#include <gtest/gtest.h>

#include "config/scenarios.h"
#include "core/h_dispatch.h"

namespace gdisim {
namespace {

struct ClientWorld {
  Scenario scenario;
  std::unique_ptr<HDispatchEngine> engine;
  std::unique_ptr<SimulationLoop> loop;

  explicit ClientWorld(ClientPopulationConfig cfg) {
    ValidationOptions opt;
    opt.stop_launch_s = 0.0;  // no validation series; we add our own clients
    scenario = make_validation_scenario(opt);
    const TickClock clock(scenario.tick_seconds);
    cfg.dc = scenario.master_dc;
    scenario.populations.push_back(std::make_unique<ClientPopulation>(
        cfg, *scenario.catalog, *scenario.ctx, clock));
    engine = std::make_unique<HDispatchEngine>(0, 64);
    loop = std::make_unique<SimulationLoop>(SimLoopConfig{scenario.tick_seconds, 0}, *engine);
    scenario.register_with(*loop);
  }

  ClientPopulation& clients() { return *scenario.populations.back(); }
};

ClientPopulationConfig base_config() {
  ClientPopulationConfig cfg;
  cfg.name = "CAD@test";
  cfg.curve = WorkloadCurve::constant(4.0);
  cfg.mix = OperationMix::uniform({"CAD.LOGIN", "CAD.FILTER"});
  cfg.think_time_mean_s = 2.0;
  cfg.file_size_mb = 5.0;
  cfg.seed = 11;
  return cfg;
}

TEST(ClientBehavior, SessionScriptFollowsOrder) {
  ClientPopulationConfig cfg = base_config();
  cfg.behavior = ClientBehavior::kSessionScript;
  cfg.session_script = {"CAD.LOGIN", "CAD.TEXT-SEARCH", "CAD.FILTER"};
  cfg.curve = WorkloadCurve::constant(1.0);  // one client => strict order
  ClientWorld world(cfg);
  world.loop->run_for_seconds(60.0);

  const auto& stats = world.clients().stats();
  ASSERT_TRUE(stats.count("CAD.LOGIN"));
  ASSERT_TRUE(stats.count("CAD.TEXT-SEARCH"));
  ASSERT_TRUE(stats.count("CAD.FILTER"));
  const auto login = stats.at("CAD.LOGIN").count;
  const auto search = stats.at("CAD.TEXT-SEARCH").count;
  const auto filter = stats.at("CAD.FILTER").count;
  // Strict rotation: counts differ by at most one.
  EXPECT_LE(login - filter, 1u);
  EXPECT_LE(login - search, 1u);
  EXPECT_GE(login, 2u);
}

TEST(ClientBehavior, ScriptedClientsAreStaggered) {
  ClientPopulationConfig cfg = base_config();
  cfg.behavior = ClientBehavior::kSessionScript;
  cfg.session_script = {"CAD.LOGIN", "CAD.FILTER"};
  cfg.curve = WorkloadCurve::constant(8.0);
  ClientWorld world(cfg);
  world.loop->run_for_seconds(10.0);
  // With staggering, both script positions launch in the first wave.
  const auto& stats = world.clients().stats();
  EXPECT_TRUE(stats.count("CAD.LOGIN"));
  EXPECT_TRUE(stats.count("CAD.FILTER"));
}

TEST(ClientBehavior, EmptyScriptRejected) {
  ClientPopulationConfig cfg = base_config();
  cfg.behavior = ClientBehavior::kSessionScript;
  EXPECT_THROW(ClientWorld world(cfg), std::invalid_argument);
}

TEST(ClientBehavior, FixedThinkTimeIsClockwork) {
  ClientPopulationConfig cfg = base_config();
  cfg.think_model = ThinkTimeModel::kFixed;
  cfg.curve = WorkloadCurve::constant(1.0);
  cfg.mix = OperationMix::uniform({"CAD.LOGIN"});
  cfg.think_time_mean_s = 5.0;
  ClientWorld world(cfg);
  world.loop->run_for_seconds(120.0);
  // Cycle = LOGIN duration (~2.1 s) + 5 s think => ~16-17 ops in 120 s.
  const auto count = world.clients().stats().at("CAD.LOGIN").count;
  EXPECT_GE(count, 14u);
  EXPECT_LE(count, 19u);
}

TEST(ClientBehavior, MixedModeUsesAllOperations) {
  ClientPopulationConfig cfg = base_config();
  cfg.curve = WorkloadCurve::constant(6.0);
  ClientWorld world(cfg);
  world.loop->run_for_seconds(90.0);
  const auto& stats = world.clients().stats();
  EXPECT_TRUE(stats.count("CAD.LOGIN"));
  EXPECT_TRUE(stats.count("CAD.FILTER"));
}

TEST(ClientBehavior, ActiveNeverExceedsLoggedIn) {
  ClientPopulationConfig cfg = base_config();
  cfg.curve = WorkloadCurve::constant(5.0);
  ClientWorld world(cfg);
  for (int i = 0; i < 4000; ++i) {
    world.loop->step();
    EXPECT_LE(world.clients().active(), world.clients().logged_in() + 1);
  }
}

}  // namespace
}  // namespace gdisim
