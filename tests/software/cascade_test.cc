#include "software/cascade.h"

#include <gtest/gtest.h>

namespace gdisim {
namespace {

TEST(ResourceVector, Arithmetic) {
  ResourceVector a{1, 2, 3, 4};
  ResourceVector b{10, 20, 30, 40};
  ResourceVector sum = a + b;
  EXPECT_DOUBLE_EQ(sum.cpu_cycles, 11);
  EXPECT_DOUBLE_EQ(sum.net_bytes, 22);
  EXPECT_DOUBLE_EQ(sum.mem_bytes, 33);
  EXPECT_DOUBLE_EQ(sum.disk_bytes, 44);
  ResourceVector scaled = a * 2.0;
  EXPECT_DOUBLE_EQ(scaled.cpu_cycles, 2);
  EXPECT_DOUBLE_EQ(scaled.disk_bytes, 8);
}

TEST(CascadeBuilder, SingleStepSingleBranch) {
  CascadeSpec spec = CascadeBuilder("op")
                         .step()
                         .msg(Endpoint::client(), Endpoint::app_owner(), {100, 200, 300, 400})
                         .msg(Endpoint::app_owner(), Endpoint::client(), {1, 2, 3, 4})
                         .build();
  EXPECT_EQ(spec.name, "op");
  ASSERT_EQ(spec.steps.size(), 1u);
  ASSERT_EQ(spec.steps[0].branches.size(), 1u);
  EXPECT_EQ(spec.steps[0].branches[0].messages.size(), 2u);
  EXPECT_EQ(spec.total_messages(), 2u);
}

TEST(CascadeBuilder, RepeatMultipliesMessageCount) {
  CascadeSpec spec = CascadeBuilder("op")
                         .step(13)
                         .msg(Endpoint::client(), Endpoint::app_owner(), {})
                         .msg(Endpoint::app_owner(), Endpoint::client(), {})
                         .build();
  EXPECT_EQ(spec.total_messages(), 26u);
}

TEST(CascadeBuilder, ParallelBranches) {
  CascadeBuilder b("op");
  b.step();
  b.msg(Endpoint::client(), Endpoint::fs_local(), {});
  b.branch();
  b.msg(Endpoint::client(), Endpoint::fs_local(), {});
  b.msg(Endpoint::fs_local(), Endpoint::client(), {});
  CascadeSpec spec = b.build();
  ASSERT_EQ(spec.steps.size(), 1u);
  ASSERT_EQ(spec.steps[0].branches.size(), 2u);
  EXPECT_EQ(spec.steps[0].branches[0].messages.size(), 1u);
  EXPECT_EQ(spec.steps[0].branches[1].messages.size(), 2u);
  EXPECT_EQ(spec.total_messages(), 3u);
}

TEST(CascadeBuilder, PerMbOnLastMessage) {
  CascadeSpec spec = CascadeBuilder("op")
                         .step()
                         .msg(Endpoint::client(), Endpoint::fs_local(), {1, 1, 1, 1})
                         .spec_last_per_mb({0, 5, 0, 7})
                         .build();
  const MessageSpec& m = spec.steps[0].branches[0].messages[0];
  EXPECT_DOUBLE_EQ(m.per_mb.net_bytes, 5);
  EXPECT_DOUBLE_EQ(m.per_mb.disk_bytes, 7);
}

TEST(Endpoint, Factories) {
  EXPECT_EQ(Endpoint::client().role, Role::Client);
  EXPECT_EQ(Endpoint::client().dc, DcSelector::Local);
  EXPECT_EQ(Endpoint::app_owner().role, Role::AppServer);
  EXPECT_EQ(Endpoint::app_owner().dc, DcSelector::Owner);
  EXPECT_EQ(Endpoint::fs_local().dc, DcSelector::Local);
  Endpoint e = Endpoint::at(Role::DbServer, 3);
  EXPECT_EQ(e.dc, DcSelector::Explicit);
  EXPECT_EQ(e.explicit_dc, 3u);
}

}  // namespace
}  // namespace gdisim
