#include "software/catalog.h"

#include <gtest/gtest.h>

namespace gdisim {
namespace {

TEST(Catalog, ContainsAllCadOperations) {
  OperationCatalog c = OperationCatalog::standard();
  for (const char* op : {"LOGIN", "TEXT-SEARCH", "FILTER", "EXPLORE", "SPATIAL-SEARCH",
                         "SELECT", "OPEN", "SAVE"}) {
    EXPECT_TRUE(c.contains(std::string("CAD.") + op)) << op;
    EXPECT_TRUE(c.contains(std::string("VIS.") + op)) << op;
  }
  EXPECT_TRUE(c.contains("VIS.VALIDATE"));
}

TEST(Catalog, ContainsAllPdmOperations) {
  OperationCatalog c = OperationCatalog::standard();
  for (const char* op : {"BILL-OF-MATERIALS", "EXPAND", "PROMOTE", "UPDATE", "EDIT",
                         "DOWNLOAD", "EXPORT"}) {
    EXPECT_TRUE(c.contains(std::string("PDM.") + op)) << op;
  }
}

TEST(Catalog, OperationsOfFiltersByApp) {
  OperationCatalog c = OperationCatalog::standard();
  EXPECT_EQ(c.operations_of("CAD").size(), 8u);
  EXPECT_EQ(c.operations_of("VIS").size(), 9u);
  EXPECT_EQ(c.operations_of("PDM").size(), 7u);
  EXPECT_TRUE(c.operations_of("XYZ").empty());
}

TEST(Catalog, UnknownOperationThrows) {
  OperationCatalog c = OperationCatalog::standard();
  EXPECT_THROW(c.get("CAD.NOPE"), std::out_of_range);
}

TEST(Catalog, ExploreRepeats13Times) {
  OperationCatalog c = OperationCatalog::standard();
  EXPECT_EQ(c.get("CAD.EXPLORE").steps[0].repeat, 13u);
  EXPECT_EQ(c.get("CAD.SPATIAL-SEARCH").steps[0].repeat, 14u);
  EXPECT_EQ(c.get("CAD.SELECT").steps[0].repeat, 7u);
}

TEST(Catalog, OpenAndSaveScaleWithSize) {
  OperationCatalog c = OperationCatalog::standard();
  auto has_per_mb = [](const CascadeSpec& spec) {
    for (const auto& step : spec.steps) {
      for (const auto& br : step.branches) {
        for (const auto& m : br.messages) {
          if (m.per_mb.cpu_cycles > 0 || m.per_mb.net_bytes > 0 || m.per_mb.disk_bytes > 0) {
            return true;
          }
        }
      }
    }
    return false;
  };
  EXPECT_TRUE(has_per_mb(c.get("CAD.OPEN")));
  EXPECT_TRUE(has_per_mb(c.get("CAD.SAVE")));
  EXPECT_FALSE(has_per_mb(c.get("CAD.LOGIN")));
  EXPECT_FALSE(has_per_mb(c.get("CAD.EXPLORE")));
}

TEST(Catalog, MetadataOpsAreSizeInvariantAndTransfersAreNot) {
  // The Ch. 5 observation: LOGIN..SELECT operate on metadata; OPEN/SAVE
  // read/write the file.
  OperationCatalog c = OperationCatalog::standard();
  for (const char* op : {"LOGIN", "TEXT-SEARCH", "FILTER", "EXPLORE"}) {
    const CascadeSpec& spec = c.get(std::string("CAD.") + op);
    for (const auto& step : spec.steps) {
      for (const auto& br : step.branches) {
        for (const auto& m : br.messages) {
          EXPECT_DOUBLE_EQ(m.per_mb.cpu_cycles, 0.0) << op;
        }
      }
    }
  }
}

TEST(Catalog, VisCheaperThanCad) {
  OperationCatalog c = OperationCatalog::standard();
  auto total_cycles = [](const CascadeSpec& spec) {
    double t = 0;
    for (const auto& step : spec.steps) {
      for (const auto& br : step.branches) {
        for (const auto& m : br.messages) t += m.fixed.cpu_cycles * step.repeat;
      }
    }
    return t;
  };
  EXPECT_LT(total_cycles(c.get("VIS.OPEN")), total_cycles(c.get("CAD.OPEN")));
  EXPECT_LT(total_cycles(c.get("VIS.LOGIN")), total_cycles(c.get("CAD.LOGIN")));
}

TEST(SynchrepCascade, PullAndPushPhases) {
  CascadeSpec spec = make_synchrep_cascade(0, {{1, 100.0}, {2, 50.0}}, {{1, 50.0}, {2, 100.0}});
  ASSERT_EQ(spec.steps.size(), 2u);
  EXPECT_EQ(spec.steps[0].branches.size(), 2u);  // pulls run in parallel
  EXPECT_EQ(spec.steps[1].branches.size(), 2u);  // pushes run in parallel
  // Bulk messages carry per-branch size overrides.
  bool found_override = false;
  for (const auto& m : spec.steps[0].branches[0].messages) {
    if (m.size_mb_override.has_value()) {
      EXPECT_DOUBLE_EQ(*m.size_mb_override, 100.0);
      found_override = true;
    }
  }
  EXPECT_TRUE(found_override);
}

TEST(SynchrepCascade, EmptyVolumesYieldHeartbeat) {
  CascadeSpec spec = make_synchrep_cascade(0, {}, {});
  ASSERT_EQ(spec.steps.size(), 1u);
  EXPECT_GE(spec.total_messages(), 2u);
}

TEST(IndexbuildCascade, SingleSequence) {
  CascadeSpec spec = make_indexbuild_cascade(0, 500.0);
  ASSERT_EQ(spec.steps.size(), 1u);
  ASSERT_EQ(spec.steps[0].branches.size(), 1u);
  // Indexing volume flows fs -> idx.
  bool found = false;
  for (const auto& m : spec.steps[0].branches[0].messages) {
    if (m.size_mb_override.has_value() && m.per_mb.cpu_cycles > 0) {
      EXPECT_DOUBLE_EQ(*m.size_mb_override, 500.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Catalog, AddReplaces) {
  OperationCatalog c;
  CascadeSpec a = CascadeBuilder("X.OP").step().msg(Endpoint::client(), Endpoint::app_owner(), {1, 0, 0, 0}).build();
  c.add(a);
  EXPECT_TRUE(c.contains("X.OP"));
  CascadeSpec b = CascadeBuilder("X.OP").step(3).msg(Endpoint::client(), Endpoint::app_owner(), {2, 0, 0, 0}).build();
  c.add(b);
  EXPECT_EQ(c.get("X.OP").steps[0].repeat, 3u);
}

}  // namespace
}  // namespace gdisim
