#include "software/replay.h"

#include <gtest/gtest.h>

#include <sstream>

#include "config/scenarios.h"
#include "core/h_dispatch.h"

namespace gdisim {
namespace {

TEST(WorkloadTrace, RecordAndFinalizeSorts) {
  WorkloadTrace trace;
  trace.record(TraceEntry{5.0, "B", 0, kInvalidDc, 1.0, 0});
  trace.record(TraceEntry{1.0, "A", 0, kInvalidDc, 1.0, 0});
  trace.record(TraceEntry{1.0, "A", 1, kInvalidDc, 1.0, 0});
  trace.finalize();
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_DOUBLE_EQ(trace.entries()[0].t_seconds, 1.0);
  EXPECT_EQ(trace.entries()[0].origin, 0u);
  EXPECT_EQ(trace.entries()[1].origin, 1u);
  EXPECT_EQ(trace.entries()[2].op, "B");
}

TEST(WorkloadTrace, CsvRoundTrip) {
  WorkloadTrace trace;
  trace.record(TraceEntry{1.5, "CAD.OPEN", 2, 0, 25.0, 0});
  trace.record(TraceEntry{3.0, "VIS.LOGIN", 1, kInvalidDc, 5.0, 0});
  trace.finalize();

  std::ostringstream os;
  trace.save(os);
  std::istringstream is(os.str());
  WorkloadTrace loaded = WorkloadTrace::load(is);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.entries()[0].op, "CAD.OPEN");
  EXPECT_EQ(loaded.entries()[0].owner, 0u);
  EXPECT_EQ(loaded.entries()[1].owner, kInvalidDc);
  EXPECT_DOUBLE_EQ(loaded.entries()[1].size_mb, 5.0);
}

TEST(WorkloadTrace, LoadRejectsGarbage) {
  std::istringstream empty("");
  EXPECT_THROW(WorkloadTrace::load(empty), std::invalid_argument);
  std::istringstream bad("header\nnot-a-number,OP,0,0,1\n");
  EXPECT_THROW(WorkloadTrace::load(bad), std::invalid_argument);
}

struct ReplayWorld {
  Scenario scenario;
  std::unique_ptr<HDispatchEngine> engine;
  std::unique_ptr<SimulationLoop> loop;
  std::unique_ptr<TraceLauncher> launcher;

  explicit ReplayWorld(const WorkloadTrace& trace) {
    ValidationOptions opt;
    opt.stop_launch_s = 0.0;
    scenario = make_validation_scenario(opt);
    const TickClock clock(scenario.tick_seconds);
    launcher = std::make_unique<TraceLauncher>(trace, *scenario.catalog, *scenario.ctx, clock);
    engine = std::make_unique<HDispatchEngine>(0, 64);
    loop = std::make_unique<SimulationLoop>(SimLoopConfig{scenario.tick_seconds, 0}, *engine);
    scenario.register_with(*loop);
    loop->add_agent(launcher.get());
  }
};

TEST(TraceLauncher, ReplaysEntriesAtRecordedTimes) {
  WorkloadTrace trace;
  trace.record(TraceEntry{1.0, "CAD.LOGIN", 0, kInvalidDc, 0.0, 0});
  trace.record(TraceEntry{2.0, "CAD.FILTER", 0, kInvalidDc, 0.0, 0});
  trace.record(TraceEntry{30.0, "CAD.LOGIN", 0, kInvalidDc, 0.0, 0});
  trace.finalize();

  ReplayWorld world(trace);
  world.loop->run_for_seconds(10.0);
  EXPECT_EQ(world.launcher->launched(), 2u);  // the t=30 entry not yet due
  world.loop->run_for_seconds(40.0);
  EXPECT_EQ(world.launcher->launched(), 3u);
  EXPECT_EQ(world.launcher->completed(), 3u);
  EXPECT_EQ(world.launcher->stats().at("CAD.LOGIN").count, 2u);
  EXPECT_EQ(world.launcher->stats().at("CAD.FILTER").count, 1u);
}

TEST(TraceLauncher, RecordThenReplayReproducesOperationMix) {
  // Record a live population, then replay the trace on a fresh instance of
  // the same infrastructure: identical operation counts.
  WorkloadTrace trace;
  {
    ValidationOptions opt;
    opt.stop_launch_s = 0.0;
    Scenario scenario = make_validation_scenario(opt);
    const TickClock clock(scenario.tick_seconds);
    ClientPopulationConfig cfg;
    cfg.name = "CAD@rec";
    cfg.dc = scenario.master_dc;
    cfg.curve = WorkloadCurve::constant(3.0);
    cfg.mix = OperationMix::uniform({"CAD.LOGIN", "CAD.FILTER"});
    cfg.think_time_mean_s = 3.0;
    cfg.seed = 5;
    auto pop = std::make_unique<ClientPopulation>(cfg, *scenario.catalog, *scenario.ctx, clock);
    pop->set_launch_recorder(trace.recorder());
    HDispatchEngine engine(0, 64);
    SimulationLoop loop({scenario.tick_seconds, 0}, engine);
    scenario.register_with(loop);
    loop.add_agent(pop.get());
    loop.run_for_seconds(60.0);
  }
  trace.finalize();
  ASSERT_GT(trace.size(), 5u);

  ReplayWorld world(trace);
  world.loop->run_for_seconds(90.0);
  EXPECT_EQ(world.launcher->launched(), trace.size());
  EXPECT_EQ(world.launcher->completed(), trace.size());
}

}  // namespace
}  // namespace gdisim
