#include "core/dispatcher.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

namespace gdisim {
namespace {

TEST(Dispatcher, InlineModeExecutesSynchronously) {
  Dispatcher d(0);
  int calls = 0;
  d.post([&calls] { ++calls; });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(d.executed_count(), 1u);
}

TEST(Dispatcher, ExecutesAllItems) {
  Dispatcher d(4);
  std::atomic<int> calls{0};
  for (int i = 0; i < 1000; ++i) d.post([&calls] { calls.fetch_add(1); });
  d.drain();
  EXPECT_EQ(calls.load(), 1000);
  EXPECT_EQ(d.executed_count(), 1000u);
}

TEST(Dispatcher, DrainOnEmptyQueueReturns) {
  Dispatcher d(2);
  d.drain();  // must not deadlock
  SUCCEED();
}

TEST(Dispatcher, ParallelismActuallyHappens) {
  Dispatcher d(4);
  std::atomic<int> concurrent{0};
  std::atomic<int> max_concurrent{0};
  for (int i = 0; i < 64; ++i) {
    d.post([&] {
      const int c = concurrent.fetch_add(1) + 1;
      int expected = max_concurrent.load();
      while (c > expected && !max_concurrent.compare_exchange_weak(expected, c)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      concurrent.fetch_sub(1);
    });
  }
  d.drain();
  EXPECT_GT(max_concurrent.load(), 1);
}

TEST(Dispatcher, ItemsRunOnWorkerThreads) {
  Dispatcher d(2);
  std::set<std::thread::id> ids;
  std::mutex mu;
  for (int i = 0; i < 100; ++i) {
    d.post([&] {
      std::lock_guard<std::mutex> lock(mu);
      ids.insert(std::this_thread::get_id());
    });
  }
  d.drain();
  EXPECT_FALSE(ids.count(std::this_thread::get_id()));
}

TEST(Dispatcher, DestructorDrainsCleanly) {
  std::atomic<int> calls{0};
  {
    Dispatcher d(2);
    for (int i = 0; i < 100; ++i) d.post([&calls] { calls.fetch_add(1); });
    d.drain();
  }
  EXPECT_EQ(calls.load(), 100);
}

}  // namespace
}  // namespace gdisim
