// Active-set scheduler machinery (DESIGN.md "Scheduler"): the WakeCalendar
// timing wheel (wrap-around, far-horizon heap, re-arm/disarm laziness) and
// the SimulationLoop wake paths — quiescent agents parked via next_wake_tick
// must be revived by calendar wakes, inbox posts, and explicit wake() calls.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/engine.h"
#include "core/sim_loop.h"
#include "core/wake_calendar.h"

namespace gdisim {
namespace {

std::vector<AgentId> due_at(WakeCalendar& cal, Tick now) {
  std::vector<AgentId> out;
  cal.collect_due(now, [&out](AgentId id) { out.push_back(id); });
  return out;
}

TEST(WakeCalendar, RoundsSlotsToPowerOfTwo) {
  WakeCalendar cal(100);
  EXPECT_EQ(cal.wheel_slots(), 128u);
}

TEST(WakeCalendar, ArmAndCollectAtExactTick) {
  WakeCalendar cal(8);
  cal.ensure_agents(2);
  cal.arm(0, 5, 0);
  for (Tick t = 0; t <= 10; ++t) {
    auto due = due_at(cal, t);
    if (t == 5) {
      ASSERT_EQ(due.size(), 1u) << "tick " << t;
      EXPECT_EQ(due[0], 0u);
    } else {
      EXPECT_TRUE(due.empty()) << "tick " << t;
    }
  }
  // Consumed: the arm does not repeat on the next wheel revolution.
  EXPECT_EQ(cal.armed_at(0), kNeverTick);
}

TEST(WakeCalendar, WrapAroundDoesNotAliasAcrossRevolutions) {
  // Ticks 3 and 11 share slot 3 of an 8-slot wheel; the earlier tick must
  // not fire the later reservation.
  WakeCalendar cal(8);
  cal.ensure_agents(2);
  cal.arm(0, 3, 0);
  cal.arm(1, 11, 3);  // filed from tick 3: 11 - 3 == wheel size -> far heap
  std::vector<std::pair<Tick, AgentId>> fired;
  for (Tick t = 0; t <= 12; ++t) {
    for (AgentId id : due_at(cal, t)) fired.emplace_back(t, id);
  }
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0], (std::pair<Tick, AgentId>{3, 0}));
  EXPECT_EQ(fired[1], (std::pair<Tick, AgentId>{11, 1}));
}

TEST(WakeCalendar, SameSlotWithinOneRevolution) {
  // 10 - 2 < 8, so tick 10 files into slot 2 while an arm for tick 2 is
  // still pending there; the slot sweep must separate them by armed time.
  WakeCalendar cal(8);
  cal.ensure_agents(2);
  cal.arm(0, 2, 0);
  cal.arm(1, 10, 2);
  std::vector<std::pair<Tick, AgentId>> fired;
  for (Tick t = 0; t <= 10; ++t) {
    for (AgentId id : due_at(cal, t)) fired.emplace_back(t, id);
  }
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0], (std::pair<Tick, AgentId>{2, 0}));
  EXPECT_EQ(fired[1], (std::pair<Tick, AgentId>{10, 1}));
}

TEST(WakeCalendar, FarHorizonWakesThroughHeap) {
  WakeCalendar cal(8);
  cal.ensure_agents(1);
  const Tick far = 1000;  // >> 8 slots
  cal.arm(0, far, 0);
  for (Tick t = 0; t < far; ++t) EXPECT_TRUE(due_at(cal, t).empty()) << t;
  auto due = due_at(cal, far);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0], 0u);
}

TEST(WakeCalendar, RearmLaterKeepsOnlyTheNewTime) {
  WakeCalendar cal(8);
  cal.ensure_agents(1);
  cal.arm(0, 4, 0);
  cal.arm(0, 6, 0);  // overrides; slot-4 entry is now stale
  std::vector<std::pair<Tick, AgentId>> fired;
  for (Tick t = 0; t <= 8; ++t) {
    for (AgentId id : due_at(cal, t)) fired.emplace_back(t, id);
  }
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], (std::pair<Tick, AgentId>{6, 0}));
}

TEST(WakeCalendar, RearmAcrossWrapRefilesStaleEntry) {
  // Stale slot-3 entry is visited at tick 3 but the agent was re-armed to
  // tick 11 (same slot, next revolution); the sweep must keep the
  // reservation alive rather than dropping it.
  WakeCalendar cal(8);
  cal.ensure_agents(1);
  cal.arm(0, 3, 0);
  cal.arm(0, 11, 0);  // far heap from tick 0, but the slot entry is stale
  std::vector<std::pair<Tick, AgentId>> fired;
  for (Tick t = 0; t <= 12; ++t) {
    for (AgentId id : due_at(cal, t)) fired.emplace_back(t, id);
  }
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], (std::pair<Tick, AgentId>{11, 0}));
}

TEST(WakeCalendar, DisarmCancelsPendingWake) {
  WakeCalendar cal(8);
  cal.ensure_agents(1);
  cal.arm(0, 5, 0);
  cal.disarm(0);
  for (Tick t = 0; t <= 8; ++t) EXPECT_TRUE(due_at(cal, t).empty()) << t;
}

// --- SimulationLoop wake-path tests -------------------------------------

/// Parks until `wake_at`, then goes fully quiescent.
class NapAgent final : public Agent {
 public:
  explicit NapAgent(Tick wake_at) : wake_at_(wake_at) {}
  void on_tick(Tick now) override { ticks.push_back(now); }
  Tick next_wake_tick(Tick next_now) const override {
    return next_now <= wake_at_ ? wake_at_ : kNeverTick;
  }
  std::vector<Tick> ticks;

 private:
  Tick wake_at_;
};

/// Quiescent unless its inbox holds deliveries; drains them on interaction.
class SleeperAgent final : public Agent {
 public:
  SleeperAgent() { inbox.bind_owner(this); }
  void on_tick(Tick now) override { ticks.push_back(now); }
  void on_interactions(Tick now) override {
    interactions.push_back(now);
    for (auto& d : inbox.drain_visible(now)) received.push_back(d.payload);
  }
  Tick next_wake_tick(Tick next_now) const override {
    return inbox.empty() ? kNeverTick : next_now;
  }
  Inbox<int> inbox;
  std::vector<Tick> ticks;
  std::vector<Tick> interactions;
  std::vector<int> received;
};

/// Always active; posts one message to a sleeper at a chosen tick.
class PosterAgent final : public Agent {
 public:
  PosterAgent(SleeperAgent* target, Tick post_at) : target_(target), post_at_(post_at) {}
  void on_tick(Tick now) override {
    if (now == post_at_) target_->inbox.post(now + 1, id(), next_send_seq(), 42);
  }

 private:
  SleeperAgent* target_;
  Tick post_at_;
};

TEST(ActiveSetLoop, CalendarWakeRunsAgentOnlyAtRequestedTick) {
  SerialEngine engine;
  SimulationLoop loop({0.01, 0}, engine);
  ASSERT_EQ(loop.scheduler_mode(), SchedulerMode::kActiveSet);
  NapAgent nap(7);
  loop.add_agent(&nap);
  loop.run_until(12);
  // Every agent runs its first iteration; then nothing until the armed tick.
  ASSERT_EQ(nap.ticks.size(), 2u);
  EXPECT_EQ(nap.ticks[0], 0);
  EXPECT_EQ(nap.ticks[1], 7);
  EXPECT_LT(loop.scheduler_stats().mean_active(), 1.0);
}

TEST(ActiveSetLoop, PostWhileQuiescentWakesReceiverSameIteration) {
  SerialEngine engine;
  SimulationLoop loop({0.01, 0}, engine);
  SleeperAgent sleeper;
  PosterAgent poster(&sleeper, 5);
  loop.add_agent(&sleeper);
  loop.add_agent(&poster);
  loop.run_until(10);
  // Tick-phase post at now=5 (visible_at 6) must be absorbed by the same
  // iteration's interaction phase — one-tick latency, same as dense.
  ASSERT_EQ(sleeper.received.size(), 1u);
  EXPECT_EQ(sleeper.received[0], 42);
  ASSERT_GE(sleeper.interactions.size(), 2u);
  EXPECT_EQ(sleeper.interactions[0], 1);  // initial all-run iteration
  EXPECT_EQ(sleeper.interactions[1], 6);  // woken by the post at now=5
  // The sleeper skipped ticks 1..4 entirely.
  ASSERT_EQ(sleeper.ticks.size(), 1u);
  EXPECT_EQ(sleeper.ticks[0], 0);
}

TEST(ActiveSetLoop, ExplicitWakeReactivatesParkedAgent) {
  SerialEngine engine;
  SimulationLoop loop({0.01, 0}, engine);
  SleeperAgent sleeper;
  const AgentId id = loop.add_agent(&sleeper);
  loop.run_until(4);
  ASSERT_EQ(sleeper.ticks.size(), 1u);  // parked after the initial iteration
  loop.wake(id);
  loop.step();
  ASSERT_EQ(sleeper.ticks.size(), 2u);
  EXPECT_EQ(sleeper.ticks[1], 4);
}

TEST(ActiveSetLoop, CrossThreadWakesAreAbsorbed) {
  SerialEngine engine;
  SimulationLoop loop({0.01, 0}, engine);
  SleeperAgent sleeper;
  const AgentId id = loop.add_agent(&sleeper);
  loop.run_until(2);
  std::thread t([&loop, id] { loop.wake(id); });
  t.join();
  loop.step();
  ASSERT_EQ(sleeper.ticks.size(), 2u);
  EXPECT_EQ(sleeper.ticks[1], 2);
}

TEST(ActiveSetLoop, DenseSweepIgnoresWakePolicy) {
  SerialEngine engine;
  SimulationLoop loop({0.01, 0, SchedulerMode::kDenseSweep}, engine);
  SleeperAgent sleeper;
  loop.add_agent(&sleeper);
  loop.run_until(5);
  EXPECT_EQ(sleeper.ticks.size(), 5u);
  EXPECT_DOUBLE_EQ(loop.scheduler_stats().occupancy(), 1.0);
}

TEST(ActiveSetLoop, EveryTickAgentStaysActive) {
  SerialEngine engine;
  SimulationLoop loop({0.01, 0}, engine);
  // Base Agent answers kEveryTick: active-set behaviour must match dense.
  class Dense final : public Agent {
   public:
    void on_tick(Tick now) override { ticks.push_back(now); }
    std::vector<Tick> ticks;
  } dense;
  loop.add_agent(&dense);
  loop.run_until(6);
  ASSERT_EQ(dense.ticks.size(), 6u);
  EXPECT_DOUBLE_EQ(loop.scheduler_stats().occupancy(), 1.0);
}

TEST(ActiveSetLoop, RepeatedCalendarNapsRearmCorrectly) {
  // An agent that repeatedly naps exercises arm -> fire -> re-arm through
  // the loop's own calendar rather than a hand-driven one.
  class Strider final : public Agent {
   public:
    void on_tick(Tick now) override { ticks.push_back(now); }
    Tick next_wake_tick(Tick next_now) const override {
      const Tick next = ((next_now + 9) / 10) * 10;  // multiples of 10
      return next;
    }
    std::vector<Tick> ticks;
  };
  SerialEngine engine;
  SimulationLoop loop({0.01, 0}, engine);
  Strider s;
  loop.add_agent(&s);
  loop.run_until(55);
  ASSERT_EQ(s.ticks.size(), 6u);  // 0 (initial), 10, 20, 30, 40, 50
  for (std::size_t i = 1; i < s.ticks.size(); ++i) {
    EXPECT_EQ(s.ticks[i], static_cast<Tick>(i) * 10);
  }
}

}  // namespace
}  // namespace gdisim
