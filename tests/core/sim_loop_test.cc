#include "core/sim_loop.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/engine.h"

namespace gdisim {
namespace {

class RecordingAgent final : public Agent {
 public:
  void on_tick(Tick now) override { ticks.push_back(now); }
  void on_interactions(Tick now) override { interactions.push_back(now); }
  std::vector<Tick> ticks;
  std::vector<Tick> interactions;
};

TEST(SimulationLoop, AdvancesTime) {
  SerialEngine engine;
  SimulationLoop loop({0.01, 0}, engine);
  RecordingAgent a;
  loop.add_agent(&a);
  loop.run_until(10);
  EXPECT_EQ(loop.now(), 10);
  EXPECT_DOUBLE_EQ(loop.now_seconds(), 0.1);
  ASSERT_EQ(a.ticks.size(), 10u);
  EXPECT_EQ(a.ticks.front(), 0);
  EXPECT_EQ(a.ticks.back(), 9);
}

TEST(SimulationLoop, InteractionPhaseSeesNowPlusOne) {
  SerialEngine engine;
  SimulationLoop loop({0.01, 0}, engine);
  RecordingAgent a;
  loop.add_agent(&a);
  loop.step();
  ASSERT_EQ(a.interactions.size(), 1u);
  EXPECT_EQ(a.interactions[0], 1);  // tick 0's interaction phase drains <= 1
}

TEST(SimulationLoop, AgentIdsAreDense) {
  SerialEngine engine;
  SimulationLoop loop({0.01, 0}, engine);
  RecordingAgent a, b, c;
  EXPECT_EQ(loop.add_agent(&a), 0u);
  EXPECT_EQ(loop.add_agent(&b), 1u);
  EXPECT_EQ(loop.add_agent(&c), 2u);
  EXPECT_EQ(loop.agent_count(), 3u);
}

TEST(SimulationLoop, CollectCallbackFiresAtConfiguredCadence) {
  SerialEngine engine;
  SimulationLoop loop({0.01, 5}, engine);
  RecordingAgent a;
  loop.add_agent(&a);
  std::vector<Tick> collected;
  loop.set_collect_callback([&collected](Tick t) { collected.push_back(t); });
  loop.run_until(20);
  ASSERT_EQ(collected.size(), 4u);
  EXPECT_EQ(collected[0], 5);
  EXPECT_EQ(collected[3], 20);
}

TEST(SimulationLoop, RunForSecondsRoundsUp) {
  SerialEngine engine;
  SimulationLoop loop({0.01, 0}, engine);
  RecordingAgent a;
  loop.add_agent(&a);
  loop.run_for_seconds(0.095);  // 9.5 ticks -> 10
  EXPECT_EQ(loop.now(), 10);
}

TEST(SimulationLoop, RejectsNullAgent) {
  SerialEngine engine;
  SimulationLoop loop({0.01, 0}, engine);
  EXPECT_THROW(loop.add_agent(nullptr), std::invalid_argument);
}

TEST(Inbox, DrainRespectsVisibility) {
  Inbox<int> inbox;
  inbox.post(5, 0, 0, 100);
  inbox.post(3, 0, 1, 200);
  auto ready = inbox.drain_visible(4);
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0].payload, 200);
  EXPECT_EQ(inbox.size(), 1u);
  ready = inbox.drain_visible(5);
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0].payload, 100);
}

TEST(Inbox, DrainOrderIsDeterministic) {
  // Regardless of post order, drain sorts by (visible_at, sender, seq).
  Inbox<int> a, b;
  a.post(1, 2, 0, 20);
  a.post(1, 1, 1, 11);
  a.post(1, 1, 0, 10);
  b.post(1, 1, 0, 10);
  b.post(1, 2, 0, 20);
  b.post(1, 1, 1, 11);
  auto ra = a.drain_visible(1);
  auto rb = b.drain_visible(1);
  ASSERT_EQ(ra.size(), 3u);
  ASSERT_EQ(rb.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(ra[i].payload, rb[i].payload);
  EXPECT_EQ(ra[0].payload, 10);
  EXPECT_EQ(ra[1].payload, 11);
  EXPECT_EQ(ra[2].payload, 20);
}

TEST(TickClock, Conversions) {
  TickClock clock(0.05);
  EXPECT_DOUBLE_EQ(clock.to_seconds(20), 1.0);
  EXPECT_EQ(clock.to_ticks(1.0), 20);
  EXPECT_EQ(clock.to_ticks(1.01), 21);   // rounds up
  EXPECT_EQ(clock.to_ticks(0.0), 0);
  EXPECT_EQ(clock.to_ticks(-1.0), 0);
}

TEST(FormatSimTime, Format) {
  EXPECT_EQ(format_sim_time(0), "0:00:00");
  EXPECT_EQ(format_sim_time(3661), "1:01:01");
  EXPECT_EQ(format_sim_time(86399), "23:59:59");
}

}  // namespace
}  // namespace gdisim
