#include "core/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace gdisim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, DoubleMeanNearHalf) {
  Rng r(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng r(3);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng r(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.next_below(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng r(13);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.next_exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, ExponentialNonNegative) {
  Rng r(17);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(r.next_exponential(1.0), 0.0);
}

TEST(Rng, NormalMoments) {
  Rng r(19);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = r.next_normal(3.0, 2.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, SplitIsDeterministic) {
  Rng a(42), b(42);
  Rng sa = a.split("purpose");
  Rng sb = b.split("purpose");
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sa.next_u64(), sb.next_u64());
}

TEST(Rng, SplitDifferentPurposesDiverge) {
  Rng a(42);
  Rng s1 = a.split("one");
  Rng s2 = a.split("two");
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (s1.next_u64() == s2.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, SplitIndependentOfParentConsumption) {
  // split() must not advance the parent stream.
  Rng a(42);
  Rng b(42);
  (void)a.split("x");
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(StableHash, StableKnownValues) {
  // FNV-1a must be stable across platforms/runs.
  EXPECT_EQ(stable_hash(""), 0xcbf29ce484222325ULL);
  EXPECT_NE(stable_hash("a"), stable_hash("b"));
  EXPECT_EQ(stable_hash("gdisim"), stable_hash("gdisim"));
}

}  // namespace
}  // namespace gdisim
