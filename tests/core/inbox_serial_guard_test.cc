// Trip tests for the Inbox serial-mode runtime guard (core/agent.h).
//
// The engine-serial fast path strips the shard locks, which is only sound
// while one thread both posts and drains. The guard records which thread
// enabled serial mode and reports any serial-path use from another thread
// through the audit failure handler. These tests verify the guard trips on
// a cross-thread serial post/drain and stays silent for same-thread serial
// use and for parallel-mode posts from any thread. In non-audit builds the
// guard downgrades to assert, so the suite GTEST_SKIPs (the audit preset is
// where it runs for real).
#include "core/agent.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "core/audit.h"

namespace gdisim {
namespace {

#if GDISIM_AUDIT_ENABLED

/// Captures failure messages instead of aborting. The handler is a plain
/// function pointer, so the capture buffer is file-static.
std::string* g_last_failure = nullptr;

void capture_failure(const char* message) {
  if (g_last_failure) *g_last_failure = message;
}

class InboxSerialGuardTest : public ::testing::Test {
 protected:
  void SetUp() override {
    audit::reset();
    g_last_failure = &last_;
    previous_ = audit::set_failure_handler(&capture_failure);
  }
  void TearDown() override {
    audit::set_failure_handler(previous_);
    g_last_failure = nullptr;
    audit::reset();
  }

  std::string last_;
  audit::FailureHandler previous_ = nullptr;
};

TEST_F(InboxSerialGuardTest, SameThreadSerialUseIsSilent) {
  Inbox<int> inbox;
  inbox.set_serial(true);
  inbox.post(1, 0, 0, 7);
  std::vector<Delivery<int>> ready;
  inbox.drain_visible_into(1, ready);
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_TRUE(last_.empty()) << last_;
  EXPECT_EQ(audit::snapshot().failures, 0u);
}

TEST_F(InboxSerialGuardTest, CrossThreadSerialPostTrips) {
  Inbox<int> inbox;
  inbox.set_serial(true);  // this thread owns the serial fast path
  std::thread poster([&] { inbox.post(1, 0, 0, 7); });
  poster.join();
  EXPECT_NE(last_.find("serial fast path"), std::string::npos) << last_;
  EXPECT_GE(audit::snapshot().failures, 1u);
}

TEST_F(InboxSerialGuardTest, CrossThreadSerialDrainTrips) {
  Inbox<int> inbox;
  inbox.set_serial(true);
  inbox.post(1, 0, 0, 7);
  std::thread drainer([&] {
    std::vector<Delivery<int>> ready;
    inbox.drain_visible_into(1, ready);
  });
  drainer.join();
  EXPECT_NE(last_.find("serial fast path"), std::string::npos) << last_;
  EXPECT_GE(audit::snapshot().failures, 1u);
}

TEST_F(InboxSerialGuardTest, ParallelModePostsFromAnyThreadAreSilent) {
  Inbox<int> inbox;  // serial mode never enabled: locked paths, no owner
  std::vector<std::thread> posters;
  for (int t = 0; t < 4; ++t) {
    posters.emplace_back([&inbox, t] {
      for (int i = 0; i < 100; ++i) {
        inbox.post(1, static_cast<AgentId>(t), static_cast<std::uint64_t>(i), i);
      }
    });
  }
  for (std::thread& th : posters) th.join();
  std::vector<Delivery<int>> ready;
  inbox.drain_visible_into(1, ready);
  EXPECT_EQ(ready.size(), 400u);
  EXPECT_TRUE(last_.empty()) << last_;
  EXPECT_EQ(audit::snapshot().failures, 0u);
}

TEST_F(InboxSerialGuardTest, DisablingSerialRestoresLockedPaths) {
  Inbox<int> inbox;
  inbox.set_serial(true);
  inbox.set_serial(false);
  std::thread poster([&] { inbox.post(1, 0, 0, 7); });
  poster.join();
  EXPECT_TRUE(last_.empty()) << last_;
  EXPECT_EQ(audit::snapshot().failures, 0u);
}

#else  // !GDISIM_AUDIT_ENABLED

TEST(InboxSerialGuardTest, SkippedWithoutAudit) {
  GTEST_SKIP() << "serial guard trips route through the audit handler; "
                  "build with -DGDISIM_AUDIT=ON (audit preset) to run";
}

#endif  // GDISIM_AUDIT_ENABLED

}  // namespace
}  // namespace gdisim
