// Concurrency stress tests for the messaging substrate: many producer
// threads against ports and inboxes must lose nothing and preserve the
// deterministic drain order.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/agent.h"
#include "core/coordination.h"
#include "core/engine.h"

namespace gdisim {
namespace {

TEST(PortStress, ConcurrentProducersLoseNothing) {
  Dispatcher dispatcher(4);
  Port<int> port;
  std::atomic<std::uint64_t> sum{0};
  std::atomic<int> received{0};
  auto receiver = SingleItemReceiver<int>::attach(port, dispatcher, [&](int v) {
    sum.fetch_add(static_cast<std::uint64_t>(v));
    received.fetch_add(1);
  });

  constexpr int kProducers = 8;
  constexpr int kPerProducer = 5000;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&port, p] {
      for (int i = 0; i < kPerProducer; ++i) port.post(p * kPerProducer + i);
    });
  }
  for (auto& t : producers) t.join();
  dispatcher.drain();
  // Receivers may still be draining the port after the last post; flush.
  while (port.size() > 0) {
    std::this_thread::yield();
    dispatcher.drain();
  }
  dispatcher.drain();

  const int total = kProducers * kPerProducer;
  EXPECT_EQ(received.load(), total);
  EXPECT_EQ(sum.load(), static_cast<std::uint64_t>(total) * (total - 1) / 2);
}

TEST(InboxStress, ConcurrentPostersDeterministicDrain) {
  Inbox<int> inbox;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> posters;
  for (int t = 0; t < kThreads; ++t) {
    posters.emplace_back([&inbox, t] {
      for (int i = 0; i < kPerThread; ++i) {
        inbox.post(/*visible_at=*/1, /*sender=*/static_cast<AgentId>(t),
                   /*seq=*/static_cast<std::uint64_t>(i), t * kPerThread + i);
      }
    });
  }
  for (auto& t : posters) t.join();

  auto drained = inbox.drain_visible(1);
  ASSERT_EQ(drained.size(), static_cast<std::size_t>(kThreads * kPerThread));
  // Sorted by (sender, seq): payloads are exactly 0..N-1 in order.
  for (std::size_t i = 0; i < drained.size(); ++i) {
    EXPECT_EQ(drained[i].payload, static_cast<int>(i));
  }
  EXPECT_TRUE(inbox.empty());
}

TEST(InboxStress, InterleavedPostAndDrain) {
  Inbox<int> inbox;
  std::atomic<bool> stop{false};
  std::atomic<int> posted{0};
  std::thread producer([&] {
    for (int i = 0; i < 20000; ++i) {
      inbox.post(i / 100, 0, static_cast<std::uint64_t>(i), i);
      posted.fetch_add(1);
    }
    stop.store(true);
  });
  int drained = 0;
  Tick now = 0;
  while (!stop.load() || !inbox.empty()) {
    drained += static_cast<int>(inbox.drain_visible(now).size());
    now += 1;
  }
  drained += static_cast<int>(inbox.drain_visible(1 << 20).size());
  producer.join();
  drained += static_cast<int>(inbox.drain_visible(1 << 20).size());
  EXPECT_EQ(drained, posted.load());
}

TEST(DispatcherStress, PostFromManyThreads) {
  Dispatcher d(4);
  std::atomic<int> executed{0};
  std::vector<std::thread> posters;
  for (int t = 0; t < 6; ++t) {
    posters.emplace_back([&d, &executed] {
      for (int i = 0; i < 3000; ++i) d.post([&executed] { executed.fetch_add(1); });
    });
  }
  for (auto& t : posters) t.join();
  d.drain();
  EXPECT_EQ(executed.load(), 18000);
}

TEST(EngineStress, RepeatedPhasesUnderContention) {
  auto engine = make_h_dispatch_engine(4, 16);
  std::atomic<std::uint64_t> total{0};
  for (int round = 0; round < 500; ++round) {
    engine->for_each(97, [&total](std::size_t i) {
      total.fetch_add(i, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 500ull * (96ull * 97ull / 2ull));
}

}  // namespace
}  // namespace gdisim
