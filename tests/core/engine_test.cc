#include "core/engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "core/h_dispatch.h"
#include "core/scatter_gather.h"

namespace gdisim {
namespace {

class EngineTest : public ::testing::TestWithParam<int> {
 protected:
  std::unique_ptr<ExecutionEngine> make_engine() {
    switch (GetParam()) {
      case 0: return std::make_unique<SerialEngine>();
      case 1: return make_scatter_gather_engine(4);
      case 2: return make_h_dispatch_engine(4, 8);
      default: return make_h_dispatch_engine(0, 8);
    }
  }
};

TEST_P(EngineTest, VisitsEveryIndexExactlyOnce) {
  auto engine = make_engine();
  std::vector<std::atomic<int>> hits(1000);
  engine->for_each(1000, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_P(EngineTest, ZeroCountIsNoop) {
  auto engine = make_engine();
  std::atomic<int> calls{0};
  engine->for_each(0, [&calls](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST_P(EngineTest, SequentialPhasesDoNotOverlap) {
  auto engine = make_engine();
  std::atomic<long> sum{0};
  engine->for_each(100, [&sum](std::size_t i) { sum.fetch_add(static_cast<long>(i)); });
  const long first = sum.load();
  EXPECT_EQ(first, 4950);
  engine->for_each(100, [&sum](std::size_t i) { sum.fetch_add(static_cast<long>(i)); });
  EXPECT_EQ(sum.load(), 2 * 4950);
}

TEST_P(EngineTest, ManySmallPhases) {
  auto engine = make_engine();
  std::atomic<int> total{0};
  for (int round = 0; round < 200; ++round) {
    engine->for_each(7, [&total](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 200 * 7);
}

INSTANTIATE_TEST_SUITE_P(AllEngines, EngineTest, ::testing::Values(0, 1, 2, 3),
                         [](const ::testing::TestParamInfo<int>& tpi) {
                           switch (tpi.param) {
                             case 0: return std::string("serial");
                             case 1: return std::string("scatter_gather");
                             case 2: return std::string("h_dispatch");
                             default: return std::string("h_dispatch_inline");
                           }
                         });

TEST(HDispatchEngine, RespectsAgentSetChunking) {
  // With agent set 64 and 256 items, every item must still be visited once.
  HDispatchEngine engine(3, 64);
  std::vector<std::atomic<int>> hits(256);
  engine.for_each(256, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_EQ(engine.agent_set_size(), 64u);
  EXPECT_EQ(engine.thread_count(), 3u);
}

TEST(HDispatchEngine, CountSmallerThanAgentSet) {
  HDispatchEngine engine(4, 64);
  std::atomic<int> calls{0};
  engine.for_each(3, [&calls](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 3);
}

TEST(ScatterGatherEngine, ReusableAfterManyRounds) {
  ScatterGatherEngine engine(2);
  std::atomic<int> total{0};
  for (int i = 0; i < 50; ++i) {
    engine.for_each(10, [&total](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 500);
}

}  // namespace
}  // namespace gdisim
