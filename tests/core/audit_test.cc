// Trip tests for the runtime invariant auditor (core/audit.h).
//
// Each test injects a specific corruption — a leaked job, a double
// completion, a negative quantity, a reversed agent clock — and asserts the
// auditor fires with a message naming the violated invariant. A capturing
// failure handler replaces the default print-and-abort one so the process
// survives the trip. In non-audit builds every hook is a no-op, so the
// whole suite GTEST_SKIPs (the audit preset is where these run for real).
#include "core/audit.h"

#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "core/agent.h"

namespace gdisim {
namespace {

#if GDISIM_AUDIT_ENABLED

/// Captures failure messages instead of aborting. The handler is a plain
/// function pointer, so the capture buffer is file-static.
std::string* g_last_failure = nullptr;

void capture_failure(const char* message) {
  if (g_last_failure) *g_last_failure = message;
}

class AuditTripTest : public ::testing::Test {
 protected:
  void SetUp() override {
    audit::reset();
    g_last_failure = &last_;
    previous_ = audit::set_failure_handler(&capture_failure);
  }
  void TearDown() override {
    audit::set_failure_handler(previous_);
    g_last_failure = nullptr;
    audit::reset();
  }

  std::string last_;
  audit::FailureHandler previous_ = nullptr;
};

TEST_F(AuditTripTest, LeakedJobTripsDrainCheck) {
  audit::job_spawned(audit::Category::kFcfsJob);
  audit::job_spawned(audit::Category::kFcfsJob);
  audit::job_completed(audit::Category::kFcfsJob);
  // One job still live: the ledger must refuse to call the run drained.
  audit::check_drained(audit::Category::kFcfsJob, "fcfs leak injected");
  EXPECT_NE(last_.find("fcfs leak injected"), std::string::npos) << last_;
  EXPECT_EQ(audit::snapshot().live(audit::Category::kFcfsJob), 1u);
}

TEST_F(AuditTripTest, BalancedLedgerPassesDrainCheck) {
  audit::job_spawned(audit::Category::kPsJob);
  audit::job_completed(audit::Category::kPsJob);
  audit::check_drained(audit::Category::kPsJob, "should not fire");
  EXPECT_TRUE(last_.empty()) << last_;
  EXPECT_EQ(audit::snapshot().failures, 0u);
}

TEST_F(AuditTripTest, DoubleCompletionTripsConservation) {
  audit::job_spawned(audit::Category::kRaidJob);
  audit::job_completed(audit::Category::kRaidJob);
  audit::job_completed(audit::Category::kRaidJob);  // never spawned twice
  EXPECT_NE(last_.find("conservation"), std::string::npos) << last_;
}

TEST_F(AuditTripTest, NegativeQuantityTripsNonneg) {
  audit::check_nonneg(1.0, "positive is fine");
  EXPECT_TRUE(last_.empty()) << last_;
  audit::check_nonneg(-0.25, "negative occupancy injected");
  EXPECT_NE(last_.find("negative occupancy injected"), std::string::npos);
}

TEST_F(AuditTripTest, NanQuantityTripsNonneg) {
  audit::check_nonneg(std::numeric_limits<double>::quiet_NaN(),
                      "NaN work injected");
  EXPECT_NE(last_.find("NaN work injected"), std::string::npos);
}

TEST_F(AuditTripTest, FailedCheckIsCounted) {
  audit::check(true, "fine");
  EXPECT_EQ(audit::snapshot().failures, 0u);
  audit::check(false, "explicit check trip");
  EXPECT_EQ(audit::snapshot().failures, 1u);
  EXPECT_NE(last_.find("explicit check trip"), std::string::npos);
}

TEST_F(AuditTripTest, ReversedAgentClockTrips) {
  class Dummy : public Agent {
   public:
    void on_tick(Tick) override {}
  } agent;
  agent.audit_tick_signal(5);
  agent.audit_tick_signal(6);
  EXPECT_TRUE(last_.empty()) << last_;
  agent.audit_tick_signal(6);  // repeated tick: not strictly increasing
  EXPECT_NE(last_.find("monotonic"), std::string::npos) << last_;
}

TEST_F(AuditTripTest, DrainHashFoldIsCommutative) {
  audit::fold_drain(0x1234u);
  audit::fold_drain(0xabcdu);
  const std::uint64_t forward = audit::drain_hash();
  audit::reset();
  audit::fold_drain(0xabcdu);
  audit::fold_drain(0x1234u);
  EXPECT_EQ(audit::drain_hash(), forward);
  // ...and sensitive to content, not just count:
  audit::reset();
  audit::fold_drain(0x1234u);
  audit::fold_drain(0xabceu);
  EXPECT_NE(audit::drain_hash(), forward);
}

TEST_F(AuditTripTest, SnapshotTracksPerCategoryLedgers) {
  audit::job_spawned(audit::Category::kSanJob);
  audit::job_spawned(audit::Category::kOperation);
  audit::job_completed(audit::Category::kOperation);
  const audit::Report r = audit::snapshot();
  EXPECT_EQ(r.spawned[static_cast<unsigned>(audit::Category::kSanJob)], 1u);
  EXPECT_EQ(r.live(audit::Category::kSanJob), 1u);
  EXPECT_EQ(r.live(audit::Category::kOperation), 0u);
  EXPECT_EQ(r.live(audit::Category::kFcfsJob), 0u);
}

TEST(AuditCategory, NamesCoverAllCategories) {
  for (unsigned i = 0; i < static_cast<unsigned>(audit::Category::kCount); ++i) {
    const char* name = audit::category_name(static_cast<audit::Category>(i));
    ASSERT_NE(name, nullptr);
    EXPECT_GT(std::string(name).size(), 0u);
  }
}

#else  // !GDISIM_AUDIT_ENABLED

TEST(AuditTripTest, SkippedWithoutAuditBuild) {
  // Hooks are ((void)0) in this configuration; nothing to trip. The audit
  // preset (cmake --preset audit) compiles the real checks.
  EXPECT_FALSE(audit::kEnabled);
  GTEST_SKIP() << "GDISIM_AUDIT not compiled in; run under the audit preset";
}

#endif  // GDISIM_AUDIT_ENABLED

}  // namespace
}  // namespace gdisim
