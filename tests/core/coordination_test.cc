#include "core/coordination.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>

namespace gdisim {
namespace {

TEST(Port, PostAndTake) {
  Port<int> p;
  p.post(1);
  p.post(2);
  EXPECT_EQ(p.size(), 2u);
  EXPECT_EQ(p.try_take().value(), 1);
  EXPECT_EQ(p.try_take().value(), 2);
  EXPECT_FALSE(p.try_take().has_value());
}

TEST(Port, TakeUpTo) {
  Port<int> p;
  for (int i = 0; i < 5; ++i) p.post(i);
  auto batch = p.take_up_to(3);
  EXPECT_EQ(batch.size(), 3u);
  EXPECT_EQ(p.size(), 2u);
}

TEST(SingleItemReceiver, FiresPerMessage) {
  Dispatcher d(0);
  Port<int> p;
  std::vector<int> seen;
  auto r = SingleItemReceiver<int>::attach(p, d, [&seen](int v) { seen.push_back(v); });
  p.post(10);
  p.post(20);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], 10);
  EXPECT_EQ(seen[1], 20);
}

TEST(SingleItemReceiver, DeliversPreExistingMessages) {
  Dispatcher d(0);
  Port<int> p;
  p.post(5);
  std::vector<int> seen;
  auto r = SingleItemReceiver<int>::attach(p, d, [&seen](int v) { seen.push_back(v); });
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], 5);
}

TEST(MultipleItemReceiver, FiresWhenExpectedCountReached) {
  Dispatcher d(0);
  Port<int> ok;
  Port<std::string> err;
  std::vector<int> got_ok;
  std::vector<std::string> got_err;
  auto r = MultipleItemReceiver<int, std::string>::attach(
      ok, err, 3, d, [&](std::vector<int> ms, std::vector<std::string> es) {
        got_ok = std::move(ms);
        got_err = std::move(es);
      });
  ok.post(1);
  ok.post(2);
  EXPECT_TRUE(got_ok.empty());
  err.post("boom");
  EXPECT_EQ(got_ok.size(), 2u);
  EXPECT_EQ(got_err.size(), 1u);
  EXPECT_EQ(got_err[0], "boom");
}

TEST(MultipleItemReceiver, FiresOnlyOnce) {
  Dispatcher d(0);
  Port<int> ok;
  Port<int> err;
  std::atomic<int> fires{0};
  auto r = MultipleItemReceiver<int, int>::attach(
      ok, err, 2, d, [&](std::vector<int>, std::vector<int>) { fires.fetch_add(1); });
  ok.post(1);
  ok.post(2);
  ok.post(3);
  ok.post(4);
  EXPECT_EQ(fires.load(), 1);
}

TEST(JoinReceiver, FiresWhenBothPortsHaveMessages) {
  Dispatcher d(0);
  Port<int> a;
  Port<std::string> b;
  std::vector<std::pair<int, std::string>> seen;
  auto r = JoinReceiver<int, std::string>::attach(
      a, b, d, [&](int x, std::string y) { seen.emplace_back(x, std::move(y)); });
  a.post(1);
  EXPECT_TRUE(seen.empty());
  b.post("x");
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].first, 1);
  EXPECT_EQ(seen[0].second, "x");
}

TEST(Choice, RoutesByAlternative) {
  Dispatcher d(0);
  Port<std::variant<int, std::string>> p;
  std::vector<int> ints;
  std::vector<std::string> strs;
  auto r = Choice<int, std::string>::attach(
      p, d, [&](int v) { ints.push_back(v); }, [&](std::string s) { strs.push_back(s); });
  p.post(1);
  p.post(std::string("two"));
  p.post(3);
  EXPECT_EQ(ints.size(), 2u);
  EXPECT_EQ(strs.size(), 1u);
}

TEST(Interleave, ConcurrentHandlersRunInParallel) {
  Interleave il;
  Dispatcher d(4);
  std::atomic<int> concurrent{0};
  std::atomic<int> max_seen{0};
  auto handler = il.concurrent([&]() {
    const int c = concurrent.fetch_add(1) + 1;
    int expected = max_seen.load();
    while (c > expected && !max_seen.compare_exchange_weak(expected, c)) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
    concurrent.fetch_sub(1);
  });
  for (int i = 0; i < 16; ++i) d.post(handler);
  d.drain();
  EXPECT_GT(max_seen.load(), 1);
}

TEST(Interleave, ExclusiveHandlerRunsAlone) {
  Interleave il;
  Dispatcher d(4);
  std::atomic<int> inside{0};
  std::atomic<bool> overlap{false};
  auto conc = il.concurrent([&]() {
    if (inside.load() > 0) overlap.store(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });
  auto excl = il.exclusive([&]() {
    inside.fetch_add(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    inside.fetch_sub(1);
  });
  for (int i = 0; i < 20; ++i) {
    d.post(conc);
    d.post(excl);
  }
  d.drain();
  EXPECT_FALSE(overlap.load());
}

TEST(Interleave, TeardownRunsAtMostOnceAndDisablesOthers) {
  Interleave il;
  std::atomic<int> teardown_calls{0};
  std::atomic<int> concurrent_calls{0};
  auto td = il.teardown([&]() { teardown_calls.fetch_add(1); });
  auto conc = il.concurrent([&]() { concurrent_calls.fetch_add(1); });
  conc();
  td();
  td();
  conc();
  EXPECT_EQ(teardown_calls.load(), 1);
  EXPECT_EQ(concurrent_calls.load(), 1);
  EXPECT_TRUE(il.torn_down());
}

}  // namespace
}  // namespace gdisim
