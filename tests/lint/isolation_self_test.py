#!/usr/bin/env python3
"""Self-test for tools/lint/gdisim_isolation.py, run under ctest.

Pins four behaviours so the analyzer cannot silently rot:
  1. each seeded fixture violation (cross-agent write from a tick path,
     unguarded static/global, serial-only touch, raw sync primitive,
     reasonless annotation) is flagged at its exact line,
  2. the sanctioned patterns (Inbox::post, own-state writes, const statics,
     annotated shared state, gate-checked / lock-held / GDISIM-SERIAL-OK
     touches) produce zero findings — no false positives,
  3. NOLINT suppression and the JSON schema match the gdisim_lint report
     contract,
  4. the real src/ tree scans clean: the agent-isolation model holds, every
     sanctioned shared-state site carries a reason.

Runs the regex backend unconditionally and repeats the fixture checks under
the libclang backend when python clang bindings are importable.
"""

import json
import os
import subprocess
import sys
import tempfile

ROOT = os.environ.get("GDISIM_SOURCE_DIR") or os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", ".."))
TOOL = os.path.join(ROOT, "tools", "lint", "gdisim_isolation.py")
FIXTURES = os.path.join(ROOT, "tools", "lint", "fixtures", "isolation")

EXPECTED = {
    "cross_agent_write.cc": {
        (26, "gdisim-cross-agent-write", False),  # target_->hp_ -= 5
        (31, "gdisim-cross-agent-write", False),  # p.heat_ += 1 (reference)
        (36, "gdisim-cross-agent-write", False),  # via call closure (splash)
    },
    "unguarded_shared.cc": {
        (6, "gdisim-unguarded-shared", False),    # int g_total
        (11, "gdisim-isolation-annotation-no-reason", False),  # bare GDISIM-SHARED
        (14, "gdisim-unguarded-shared", False),   # static int hits
    },
    "serial_only.cc": {
        (28, "gdisim-serial-only", False),        # unsafe_peek touches fast_
    },
    "raw_sync.cc": {
        (17, "gdisim-raw-sync", False),           # std::atomic<long> hits_
        (18, "gdisim-raw-sync", False),           # std::mutex mu_
    },
    "clean.cc": set(),
    "suppressed.cc": {
        (8, "gdisim-unguarded-shared", True),     # NOLINT with reason
        (13, "gdisim-raw-sync", True),            # NOLINTNEXTLINE with reason
        (14, "gdisim-raw-sync", True),            # reasonless NOLINT still suppresses...
        (14, "gdisim-nolint-reason", False),      # ...but is itself flagged
    },
}

TOP_KEYS = {"version", "backend", "scanned_files", "counts", "findings"}
FINDING_KEYS = {"file", "line", "rule", "message", "snippet", "suppressed"}

failures = []


def check(ok, what):
    if not ok:
        failures.append(what)
        print("FAIL:", what)
    else:
        print("ok:", what)


def run_tool(*args, backend="regex"):
    with tempfile.NamedTemporaryFile(mode="r", suffix=".json") as tmp:
        proc = subprocess.run(
            [sys.executable, TOOL, *args, "--root", ROOT,
             "--backend", backend, "--json", tmp.name],
            capture_output=True, text=True)
        report = json.load(open(tmp.name))
    return proc.returncode, report


def have_libclang():
    try:
        from clang import cindex  # noqa: F401
        cindex.Index.create()
        return True
    except Exception:
        return False


def fixture_pass(backend):
    for name, expected in sorted(EXPECTED.items()):
        rc, report = run_tool(os.path.join(FIXTURES, name), backend=backend)
        got = {(f["line"], f["rule"], f["suppressed"])
               for f in report["findings"]}
        check(got == expected,
              f"[{backend}] {name}: findings {sorted(got)} == {sorted(expected)}")
        active = [f for f in report["findings"] if not f["suppressed"]]
        check(rc == (1 if active else 0),
              f"[{backend}] {name}: exit code {rc} matches active={len(active)}")
        check(report["backend"] == backend,
              f"[{backend}] {name}: report backend is {report['backend']}")


# 1+2+3. Fixture violations, sanctioned patterns, suppression — regex always.
fixture_pass("regex")

# Schema contract: same shape as the gdisim_lint report.
rc, report = run_tool(os.path.join(FIXTURES, "suppressed.cc"))
check(set(report.keys()) == TOP_KEYS, "report top-level keys")
check(set(report["counts"].keys()) == {"active", "suppressed"}, "counts keys")
check(report["counts"] == {"active": 1, "suppressed": 3},
      "suppressed.cc counts")
check(all(set(f.keys()) == FINDING_KEYS for f in report["findings"]),
      "per-finding keys")

# Same checks under libclang when the bindings exist (they are optional; the
# regex backend is the floor every environment must meet).
if have_libclang():
    fixture_pass("libclang")
else:
    print("note: python clang bindings unavailable; libclang pass skipped")

# 4. The real tree scans clean: the isolation model is enforced, not assumed.
rc, report = run_tool("src")
check(rc == 0 and report["counts"]["active"] == 0,
      f"src/ scans clean (active={report['counts']['active']})")
check(report["scanned_files"] > 50, "src/ scan covered the tree")

if failures:
    print(f"\n{len(failures)} check(s) failed")
    sys.exit(1)
print("\nall isolation self-test checks passed")
