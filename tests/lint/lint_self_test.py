#!/usr/bin/env python3
"""Self-test for tools/lint/gdisim_lint.py, run under ctest.

Pins three behaviours so the linter cannot silently rot:
  1. every known-bad construct in fixtures/bad.cc is flagged (exact
     line/rule set — a weakened regex shows up as a missing pair),
  2. NOLINT / NOLINTNEXTLINE suppressions are honoured and suppressed
     findings still appear in the JSON report,
  3. the JSON schema (top-level keys and per-finding keys) is stable, and
     the clean fixture plus the real src/ tree produce zero active findings.
"""

import json
import os
import subprocess
import sys

ROOT = os.environ.get("GDISIM_SOURCE_DIR") or os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", ".."))
LINT = os.path.join(ROOT, "tools", "lint", "gdisim_lint.py")
FIXTURES = os.path.join(ROOT, "tools", "lint", "fixtures")

EXPECTED_BAD = {
    (15, "gdisim-ptr-key-decl", False),
    (16, "gdisim-ptr-key-decl", False),
    (17, "gdisim-ptr-key-iter", False),
    (21, "gdisim-ptr-key-iter", False),
    (27, "gdisim-addr-ordered", False),
    (28, "gdisim-addr-ordered", False),
    (34, "gdisim-raw-rand", False),
    (35, "gdisim-raw-rand", False),
    (36, "gdisim-raw-rand", False),
    (40, "gdisim-wall-clock", False),
    (45, "gdisim-getenv", False),
    (52, "gdisim-snapshot-ptr", False),
    (57, "gdisim-snapshot-ptr", False),
    (64, "gdisim-snapshot-ptr", False),
    # Reasonless gdisim suppressions: the NOLINT silences the underlying
    # rule (suppressed=True) but is itself an active nolint-reason finding.
    (72, "gdisim-getenv", True),
    (72, "gdisim-nolint-reason", False),
    (76, "gdisim-nolint-reason", False),
    (77, "gdisim-wall-clock", True),
}

TOP_KEYS = {"version", "backend", "scanned_files", "counts", "findings"}
FINDING_KEYS = {"file", "line", "rule", "message", "snippet", "suppressed"}

failures = []


def check(cond, what):
    if not cond:
        failures.append(what)
        print("FAIL:", what)
    else:
        print("ok:", what)


def run_lint(*args):
    proc = subprocess.run(
        [sys.executable, LINT, *args, "--root", ROOT, "--json", "-"],
        capture_output=True, text=True)
    out = proc.stdout
    payload = out[out.index("{"):out.rindex("}") + 1]
    return proc.returncode, json.loads(payload)


# 1. Known-bad snippets are all flagged, and nothing else.
rc, report = run_lint(os.path.join(FIXTURES, "bad.cc"))
got = {(f["line"], f["rule"], f["suppressed"]) for f in report["findings"]}
check(rc == 1, "bad.cc exits 1")
check(got == EXPECTED_BAD,
      "bad.cc findings match expected set (missing: %s, extra: %s)"
      % (sorted(EXPECTED_BAD - got), sorted(got - EXPECTED_BAD)))

# 2. Suppressions respected; suppressed findings still surface in JSON.
rc, report = run_lint(os.path.join(FIXTURES, "suppressed.cc"))
check(rc == 0, "suppressed.cc exits 0")
check(report["counts"]["active"] == 0, "suppressed.cc has no active findings")
check(report["counts"]["suppressed"] == 5,
      "suppressed.cc reports 5 suppressed findings (got %d)"
      % report["counts"]["suppressed"])
check(all(f["suppressed"] for f in report["findings"]),
      "suppressed.cc findings all marked suppressed")

# 3. Schema stability + clean fixture + the real tree.
check(set(report.keys()) == TOP_KEYS, "JSON top-level keys stable")
check(all(set(f.keys()) == FINDING_KEYS for f in report["findings"]),
      "JSON per-finding keys stable")

rc, report = run_lint(os.path.join(FIXTURES, "clean.cc"))
check(rc == 0 and not report["findings"], "clean.cc produces no findings")

rc, report = run_lint("src")
check(rc == 0, "src/ scan exits 0 (no active findings)")
check(report["counts"]["active"] == 0, "src/ has zero active findings")
check(report["scanned_files"] > 50, "src/ scan saw a realistic file count")

if failures:
    print("\n%d check(s) failed" % len(failures))
    sys.exit(1)
print("\nall checks passed")
