// Integration tests on the Ch. 7 multiple-master scenario, including the
// per-file staleness tracker.
#include <gtest/gtest.h>

#include "sim/gdisim.h"

namespace gdisim {
namespace {

class MultimasterPeak : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    GlobalOptions opt;
    opt.scale = 0.04;
    Scenario scenario = make_multimaster_scenario(opt);

    // Attach the per-file staleness tracker (thesis §9.2.3) to every
    // master's SYNCHREP daemon.
    tracker_ = new FileTracker(scenario.growth, scenario.apm, {0, 1, 2, 3, 4, 5, 6},
                               scenario.master_dc, 99);
    for (auto& sr : scenario.synchreps) sr->set_file_tracker(tracker_);

    sim_ = new GdiSimulator(std::move(scenario), SimulatorConfig{60.0, 0, 64});
    sim_->run_for(12.0 * 3600.0);
    sim_->run_for(4.0 * 3600.0);
  }
  static void TearDownTestSuite() {
    delete sim_;
    delete tracker_;
    sim_ = nullptr;
    tracker_ = nullptr;
  }

  static GdiSimulator* sim_;
  static FileTracker* tracker_;
  static constexpr double kT0 = 12.0 * 3600.0;
  static constexpr double kT1 = 16.0 * 3600.0;
};

GdiSimulator* MultimasterPeak::sim_ = nullptr;
FileTracker* MultimasterPeak::tracker_ = nullptr;

TEST_F(MultimasterPeak, EuMasterServesRealLoad) {
  // Per Table 7.2 the EU master owns the largest slice of global accesses.
  Collector& c = sim_->collector();
  EXPECT_GT(c.find("cpu/EU/app")->mean_between(kT0, kT1), 0.10);
  EXPECT_GT(c.find("cpu/EU/db")->mean_between(kT0, kT1), 0.08);
}

TEST_F(MultimasterPeak, SmallMastersSeeLittleTraffic) {
  // AFR owns ~0.3% of global accesses — its app tier should be near idle
  // relative to NA/EU.
  Collector& c = sim_->collector();
  EXPECT_LT(c.find("cpu/AFR/app")->mean_between(kT0, kT1),
            0.5 * c.find("cpu/EU/app")->mean_between(kT0, kT1));
}

TEST_F(MultimasterPeak, EverySynchRepDaemonRuns) {
  for (auto& sr : sim_->scenario().synchreps) {
    EXPECT_GE(sr->ledger().runs().size(), 30u) << sr->name();
  }
}

TEST_F(MultimasterPeak, NaMovesLessDataThanTheWholeWorld) {
  // Ch. 7 headline: per-owner volume < total generated volume.
  double na_total = 0.0;
  for (const auto& run : sim_->scenario().synchrep_at(0)->ledger().runs()) {
    na_total += run.total_mb;
  }
  double world_total = 0.0;
  for (DcId d = 0; d < 7; ++d) {
    world_total += sim_->scenario().growth.generated_mb(d, 0.0, 16.0);
  }
  EXPECT_LT(na_total, 0.7 * world_total);
  EXPECT_GT(na_total, 0.1 * world_total);
}

TEST_F(MultimasterPeak, FileTrackerObservesStaleness) {
  EXPECT_GT(tracker_->total_files(), 50u);  // scale 0.04 => ~70 files over 16 h
  const StalenessDistribution pooled = tracker_->pooled();
  // Staleness at a 15-minute interval: mean within (0, interval + max run].
  EXPECT_GT(pooled.mean_s(), 60.0);
  EXPECT_LT(pooled.mean_s(), 45.0 * 60.0);
  EXPECT_GE(pooled.max_s(), pooled.percentile_s(0.95) - StalenessDistribution::kBinSeconds);
  // NA and EU both own files.
  EXPECT_GT(tracker_->staleness(0).count(), 0u);
  EXPECT_GT(tracker_->staleness(1).count(), 0u);
}

TEST_F(MultimasterPeak, OwnerRoutingSpreadsAppTraffic) {
  // In the consolidated scenario all app work lands on NA; here at least
  // NA and EU both serve significant app load.
  Collector& c = sim_->collector();
  const double na = c.find("cpu/NA/app")->mean_between(kT0, kT1);
  const double eu = c.find("cpu/EU/app")->mean_between(kT0, kT1);
  EXPECT_GT(na, 0.05);
  EXPECT_GT(eu, 0.05);
}

TEST_F(MultimasterPeak, IndexConsistencyIsEventualPerOwner) {
  // Six INDEXBUILD daemons run independently — each at most one in flight.
  for (auto& ib : sim_->scenario().indexbuilds) {
    EXPECT_LE(ib->runs_in_flight(), 1u) << ib->name();
    EXPECT_GE(ib->ledger().runs().size(), 5u) << ib->name();
  }
}

}  // namespace
}  // namespace gdisim
