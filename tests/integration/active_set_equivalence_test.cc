// Property test for the active-set scheduler (DESIGN.md "Scheduler"): the
// dense sweep is the reference oracle, and a run under kActiveSet must
// produce bit-identical results — every collector series, operation stats,
// and background-run ledgers — because quiescent agents contribute exactly
// nothing to any observable. Only the "scheduler/" series differ by design
// (they measure the scheduler itself).
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "sim/gdisim.h"

namespace gdisim {
namespace {

struct RunResult {
  std::vector<std::string> labels;
  std::vector<std::vector<double>> series;
  std::map<std::string, std::uint64_t> op_counts;
  std::map<std::string, double> op_total_s;
  std::vector<double> sr_durations;
  std::vector<double> ib_durations;
  double sr_max_staleness = 0.0;
  double occupancy = 1.0;
};

RunResult summarize(GdiSimulator& sim) {
  RunResult out;
  for (std::size_t i = 0; i < sim.collector().probe_count(); ++i) {
    const TimeSeries& s = sim.collector().series(i);
    out.labels.push_back(s.label());
    out.series.push_back(s.values());
  }
  for (auto& p : sim.scenario().populations) {
    for (const auto& [op, stats] : p->stats()) {
      out.op_counts[op] += stats.count;
      out.op_total_s[op] += stats.total_s;
    }
  }
  for (auto& l : sim.scenario().launchers) {
    for (const auto& [op, stats] : l->stats()) {
      out.op_counts[op] += stats.count;
      out.op_total_s[op] += stats.total_s;
    }
  }
  for (auto& sr : sim.scenario().synchreps) {
    out.sr_max_staleness += sr->max_staleness_s();
    for (const auto& run : sr->ledger().runs()) out.sr_durations.push_back(run.duration_s);
  }
  for (auto& ib : sim.scenario().indexbuilds) {
    for (const auto& run : ib->ledger().runs()) out.ib_durations.push_back(run.duration_s);
  }
  out.occupancy = sim.loop().scheduler_stats().occupancy();
  return out;
}

bool scheduler_series(const std::string& label) {
  return label.rfind("scheduler/", 0) == 0;
}

void expect_identical(const RunResult& dense, const RunResult& active) {
  ASSERT_EQ(dense.labels.size(), active.labels.size());
  for (std::size_t i = 0; i < dense.labels.size(); ++i) {
    ASSERT_EQ(dense.labels[i], active.labels[i]);
    if (scheduler_series(dense.labels[i])) continue;  // differs by design
    ASSERT_EQ(dense.series[i].size(), active.series[i].size()) << dense.labels[i];
    for (std::size_t j = 0; j < dense.series[i].size(); ++j) {
      EXPECT_EQ(dense.series[i][j], active.series[i][j])
          << dense.labels[i] << " sample " << j;
    }
  }
  ASSERT_EQ(dense.op_counts.size(), active.op_counts.size());
  for (const auto& [op, count] : dense.op_counts) {
    ASSERT_TRUE(active.op_counts.count(op)) << op;
    EXPECT_EQ(count, active.op_counts.at(op)) << op;
    EXPECT_EQ(dense.op_total_s.at(op), active.op_total_s.at(op)) << op;
  }
  EXPECT_EQ(dense.sr_durations, active.sr_durations);
  EXPECT_EQ(dense.ib_durations, active.ib_durations);
  EXPECT_EQ(dense.sr_max_staleness, active.sr_max_staleness);
}

RunResult run_validation(SchedulerMode mode, std::size_t threads) {
  ValidationOptions opt;
  opt.stop_launch_s = 4.0 * 60.0;
  Scenario scenario = make_validation_scenario(opt);
  SimulatorConfig cfg;
  cfg.collect_every_s = 6.0;
  cfg.threads = threads;
  cfg.scheduler = mode;
  GdiSimulator sim(std::move(scenario), cfg);
  sim.run_for(5.0 * 60.0);
  return summarize(sim);
}

RunResult run_consolidated(SchedulerMode mode, std::size_t threads, double minutes) {
  GlobalOptions opt;
  opt.scale = 0.02;
  Scenario scenario = make_consolidated_scenario(opt);
  SimulatorConfig cfg;
  cfg.collect_every_s = 30.0;
  cfg.threads = threads;
  cfg.scheduler = mode;
  GdiSimulator sim(std::move(scenario), cfg);
  sim.run_for(minutes * 60.0);
  return summarize(sim);
}

TEST(ActiveSetEquivalence, ValidationScenarioSerial) {
  expect_identical(run_validation(SchedulerMode::kDenseSweep, 0),
                   run_validation(SchedulerMode::kActiveSet, 0));
}

TEST(ActiveSetEquivalence, ValidationScenarioActiveSetThreaded) {
  // Dense serial oracle vs active set under a thread pool: exercises the
  // cross-thread wake path and the sharded inbox merge.
  expect_identical(run_validation(SchedulerMode::kDenseSweep, 0),
                   run_validation(SchedulerMode::kActiveSet, 4));
}

TEST(ActiveSetEquivalence, ConsolidatedScenarioSerial) {
  const RunResult dense = run_consolidated(SchedulerMode::kDenseSweep, 0, 12.0);
  const RunResult active = run_consolidated(SchedulerMode::kActiveSet, 0, 12.0);
  expect_identical(dense, active);
  // The whole point: the consolidated scenario has long quiet stretches, so
  // the active set must actually be sparse, not just correct.
  EXPECT_LT(active.occupancy, 0.9);
  EXPECT_DOUBLE_EQ(dense.occupancy, 1.0);
}

TEST(ActiveSetEquivalence, ConsolidatedScenarioThreaded) {
  expect_identical(run_consolidated(SchedulerMode::kDenseSweep, 0, 8.0),
                   run_consolidated(SchedulerMode::kActiveSet, 3, 8.0));
}

}  // namespace
}  // namespace gdisim
