// Integration tests on the Ch. 6 consolidated scenario at reduced scale:
// the qualitative claims of the evaluation must hold in-sim.
#include <gtest/gtest.h>

#include "sim/gdisim.h"

namespace gdisim {
namespace {

/// One shared run covering the 12:00-16:00 GMT peak (expensive — build once).
class ConsolidatedPeak : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    GlobalOptions opt;
    opt.scale = 0.04;
    Scenario scenario = make_consolidated_scenario(opt);
    sim_ = new GdiSimulator(std::move(scenario), SimulatorConfig{60.0, 0, 64});
    sim_->run_for(12.0 * 3600.0);
    sim_->run_for(4.0 * 3600.0);
  }
  static void TearDownTestSuite() {
    delete sim_;
    sim_ = nullptr;
  }

  static GdiSimulator* sim_;
  static constexpr double kT0 = 12.0 * 3600.0;
  static constexpr double kT1 = 16.0 * 3600.0;
};

GdiSimulator* ConsolidatedPeak::sim_ = nullptr;

TEST_F(ConsolidatedPeak, EveryRegionCompletesOperations) {
  for (const char* dc : {"NA", "EU", "SA"}) {  // in business hours during the window
    ClientPopulation* pop = sim_->scenario().population(std::string("CAD@") + dc);
    ASSERT_NE(pop, nullptr) << dc;
    EXPECT_GT(pop->completed_operations(), 10u) << dc;
  }
}

TEST_F(ConsolidatedPeak, MasterAppTierIsTheHottest) {
  Collector& c = sim_->collector();
  const double app = c.find("cpu/NA/app")->mean_between(kT0, kT1);
  EXPECT_GT(app, c.find("cpu/NA/db")->mean_between(kT0, kT1));
  EXPECT_GT(app, c.find("cpu/NA/idx")->mean_between(kT0, kT1));
  EXPECT_GT(app, c.find("cpu/EU/fs")->mean_between(kT0, kT1));
  EXPECT_GT(app, 0.25);
  EXPECT_LT(app, 0.98);
}

TEST_F(ConsolidatedPeak, BackupLinksStayIdle) {
  EXPECT_DOUBLE_EQ(sim_->collector().find("net/EU->AFR")->max_value(), 0.0);
  EXPECT_DOUBLE_EQ(sim_->collector().find("net/EU->AS1")->max_value(), 0.0);
}

TEST_F(ConsolidatedPeak, WanLinksCarryTraffic) {
  for (const char* link : {"net/NA->EU", "net/NA->AS1", "net/AS1->AUS"}) {
    EXPECT_GT(sim_->collector().find(link)->mean_between(kT0, kT1), 0.02) << link;
  }
}

TEST_F(ConsolidatedPeak, FileServingIsLocal) {
  // EU's fs tier serves EU clients during the window; AUS is asleep, so its
  // fs tier is near idle (Figure 6-13).
  const double eu_fs = sim_->collector().find("cpu/EU/fs")->mean_between(kT0, kT1);
  const double aus_fs = sim_->collector().find("cpu/AUS/fs")->mean_between(kT0, kT1);
  EXPECT_GT(eu_fs, 2.0 * aus_fs);
}

TEST_F(ConsolidatedPeak, RemoteRegionsPayLatencyOnChattyOpsOnly) {
  ClientPopulation* na = sim_->scenario().population("CAD@NA");
  ClientPopulation* sa = sim_->scenario().population("CAD@SA");
  ASSERT_NE(na, nullptr);
  ASSERT_NE(sa, nullptr);
  const auto& na_stats = na->stats();
  const auto& sa_stats = sa->stats();
  if (na_stats.count("CAD.EXPLORE") && sa_stats.count("CAD.EXPLORE")) {
    EXPECT_GT(sa_stats.at("CAD.EXPLORE").mean(), na_stats.at("CAD.EXPLORE").mean() * 1.15);
  }
  if (na_stats.count("CAD.OPEN") && sa_stats.count("CAD.OPEN")) {
    EXPECT_NEAR(sa_stats.at("CAD.OPEN").mean(), na_stats.at("CAD.OPEN").mean(),
                0.15 * na_stats.at("CAD.OPEN").mean());
  }
}

TEST_F(ConsolidatedPeak, BackgroundJobsMakeProgress) {
  SynchRepDaemon* sr = sim_->scenario().synchreps.at(0).get();
  IndexBuildDaemon* ib = sim_->scenario().indexbuilds.at(0).get();
  EXPECT_GE(sr->ledger().runs().size(), 40u);  // 16 h / 15 min
  EXPECT_GE(ib->ledger().runs().size(), 10u);
  EXPECT_GT(sr->max_staleness_s(), 15.0 * 60.0);  // at least the interval
  // Volumes move: pull+push recorded at the peak runs.
  double max_mb = 0.0;
  for (const auto& run : sr->ledger().runs()) max_mb = std::max(max_mb, run.total_mb);
  EXPECT_GT(max_mb, 10.0);
}

TEST_F(ConsolidatedPeak, MemoryModelStaysFarBelowPools) {
  // §5.3.3: workload-driven memory is orders of magnitude below capacity.
  const double app_mem = sim_->collector().find("mem/NA/app")->max_value();
  const double capacity =
      sim_->scenario().dc("NA").tier(TierKind::App)->server(0).memory().spec().capacity_bytes;
  EXPECT_LT(app_mem, 0.2 * capacity);
  EXPECT_GT(app_mem, 0.0);
}

}  // namespace
}  // namespace gdisim
