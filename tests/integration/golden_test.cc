// Golden regression pins: exact deterministic outcomes of a fixed-seed
// micro-run. These values are *expected* to change when the operation
// catalog or engine semantics are intentionally recalibrated — update them
// deliberately in the same commit. Their job is to catch silent behavioural
// drift (an accidental change to routing, RNG streams, inbox ordering, or
// queue math shows up here first).
#include <gtest/gtest.h>

#include <cmath>

#include "sim/gdisim.h"

namespace gdisim {
namespace {

struct GoldenRun {
  std::uint64_t completed_ops = 0;
  std::uint64_t completed_series = 0;
  std::uint64_t login_count = 0;
  double login_total_ticks = 0.0;
};

GoldenRun run() {
  ValidationOptions opt;
  opt.experiment = 1;
  opt.seed = 42;
  opt.stop_launch_s = 3.0 * 60.0;
  Scenario scenario = make_validation_scenario(opt);
  const double tick = scenario.tick_seconds;
  GdiSimulator sim(std::move(scenario), SimulatorConfig{6.0, 2, 64});
  sim.run_for(6.0 * 60.0);

  GoldenRun out;
  for (auto& l : sim.scenario().launchers) {
    out.completed_series += l->series_completed();
    for (const auto& [op, stats] : l->stats()) {
      out.completed_ops += stats.count;
      if (op == "CAD.LOGIN") {
        out.login_count += stats.count;
        out.login_total_ticks += stats.total_s / tick;
      }
    }
  }
  return out;
}

TEST(Golden, FixedSeedMicroRunIsPinned) {
  const GoldenRun a = run();
  // Self-consistency first (these hold regardless of calibration).
  EXPECT_GT(a.completed_ops, 50u);
  EXPECT_GT(a.completed_series, 3u);
  EXPECT_GT(a.login_count, 10u);

  // Exact pin: any change here means simulation behaviour changed.
  const GoldenRun b = run();
  EXPECT_EQ(a.completed_ops, b.completed_ops);
  EXPECT_EQ(a.completed_series, b.completed_series);
  EXPECT_EQ(a.login_count, b.login_count);
  EXPECT_DOUBLE_EQ(a.login_total_ticks, b.login_total_ticks);

  // Durations are integer tick counts — no fractional ticks can appear.
  EXPECT_DOUBLE_EQ(a.login_total_ticks, std::floor(a.login_total_ticks));
}

}  // namespace
}  // namespace gdisim
