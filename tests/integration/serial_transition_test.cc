// Serial↔parallel transition equivalence: a run that crosses thread-count
// boundaries through checkpoints — threads=N, checkpoint, restore under
// threads=1 (inline serial engine, where Inbox drops its locks on the
// engine-serial hint), checkpoint again, restore back under threads=N —
// must reproduce the uninterrupted run's result fingerprint bit-for-bit.
// This is the end-to-end proof that the engine-serial fast path (PR 6) and
// the concurrency-isolation model it leans on survive arbitrary
// serial/parallel interleavings, not just same-configuration restores.
// The ci.sh tsan leg runs this suite under -fsanitize=thread.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "config/loader.h"
#include "sim/fingerprint.h"
#include "sim/gdisim.h"

namespace gdisim {
namespace {

std::string two_site_text() {
  std::ifstream in(GDISIM_SOURCE_DIR "/configs/two_site.gdisim");
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::unique_ptr<GdiSimulator> make_sim(const std::string& text, std::size_t threads,
                                       SchedulerMode mode) {
  std::istringstream is(text);
  Scenario s = load_scenario(is, "<test>");
  SimulatorConfig cfg;
  cfg.threads = threads;
  cfg.scheduler = mode;
  return std::make_unique<GdiSimulator>(std::move(s), cfg);
}

/// Runs the staged chain: threads=N to t1, snapshot, restore threads=S to
/// t2, snapshot, restore threads=N to t3. Returns the final fingerprint.
std::uint64_t staged_fp(const std::string& text, SchedulerMode mode, std::size_t n,
                        std::size_t s, double t1, double t2, double t3) {
  auto first = make_sim(text, n, mode);
  first->run_until_seconds(t1);
  const std::vector<std::uint8_t> snap1 = first->save_state();

  auto serial = make_sim(text, s, mode);
  serial->load_state(snap1);
  EXPECT_DOUBLE_EQ(serial->now_seconds(), first->now_seconds());
  serial->run_until_seconds(t2);
  const std::vector<std::uint8_t> snap2 = serial->save_state();

  auto last = make_sim(text, n, mode);
  last->load_state(snap2);
  EXPECT_DOUBLE_EQ(last->now_seconds(), serial->now_seconds());
  last->run_until_seconds(t3);
  return result_fingerprint(*last);
}

class SerialTransitionTest : public ::testing::TestWithParam<SchedulerMode> {};

TEST_P(SerialTransitionTest, ParallelSerialParallelMatchesUninterrupted) {
  const std::string text = two_site_text();
  const SchedulerMode mode = GetParam();

  auto reference = make_sim(text, 3, mode);
  reference->run_until_seconds(180.0);
  const std::uint64_t want = result_fingerprint(*reference);

  EXPECT_EQ(staged_fp(text, mode, 3, 1, 60.0, 120.0, 180.0), want);
}

TEST_P(SerialTransitionTest, InlineSerialLegMatchesToo) {
  // threads=0 runs phases inline (no worker pool at all) — the strongest
  // serial configuration; the chain must still land on the same bytes.
  const std::string text = two_site_text();
  const SchedulerMode mode = GetParam();

  auto reference = make_sim(text, 3, mode);
  reference->run_until_seconds(180.0);
  const std::uint64_t want = result_fingerprint(*reference);

  EXPECT_EQ(staged_fp(text, mode, 3, 0, 60.0, 120.0, 180.0), want);
}

INSTANTIATE_TEST_SUITE_P(Schedulers, SerialTransitionTest,
                         ::testing::Values(SchedulerMode::kActiveSet,
                                           SchedulerMode::kDenseSweep),
                         [](const ::testing::TestParamInfo<SchedulerMode>& pi) {
                           return pi.param == SchedulerMode::kActiveSet ? "ActiveSet"
                                                                        : "DenseSweep";
                         });

}  // namespace
}  // namespace gdisim
