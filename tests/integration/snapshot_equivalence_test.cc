// Checkpoint/restore equivalence (DESIGN.md §8): a run interrupted by a
// checkpoint→restore cycle must produce the *bit-identical* result
// fingerprint of the uninterrupted run — across thread counts and scheduler
// modes, and even when the snapshot is restored under a different engine
// configuration than the one that saved it. Also covers warm-start forking
// (one snapshot, several perturbed scenarios) and structural-mismatch
// rejection.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "config/loader.h"
#include "sim/fingerprint.h"
#include "sim/gdisim.h"

namespace gdisim {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string two_site_text() {
  return read_file(GDISIM_SOURCE_DIR "/configs/two_site.gdisim");
}

std::string three_continents_text() {
  return read_file(GDISIM_SOURCE_DIR "/configs/three_continents.gdisim");
}

/// Replaces the first occurrence of `from` with `to` (scenario perturbation).
std::string replaced(std::string text, const std::string& from, const std::string& to) {
  const auto pos = text.find(from);
  EXPECT_NE(pos, std::string::npos) << "perturbation target missing: " << from;
  text.replace(pos, from.size(), to);
  return text;
}

std::unique_ptr<GdiSimulator> make_sim(const std::string& text, std::size_t threads,
                                       SchedulerMode mode) {
  std::istringstream is(text);
  Scenario s = load_scenario(is, "<test>");
  SimulatorConfig cfg;
  cfg.threads = threads;
  cfg.scheduler = mode;
  return std::make_unique<GdiSimulator>(std::move(s), cfg);
}

std::uint64_t uninterrupted_fp(const std::string& text, std::size_t threads, SchedulerMode mode,
                               double t2) {
  auto sim = make_sim(text, threads, mode);
  sim->run_until_seconds(t2);
  return result_fingerprint(*sim);
}

/// Core check: run to t1, checkpoint to disk, restore into a fresh simulator,
/// continue to t2 — fingerprint must equal the uninterrupted run's.
void expect_restore_equivalence(const std::string& text, std::size_t threads, SchedulerMode mode,
                                double t1, double t2, const std::string& tag) {
  const std::uint64_t want = uninterrupted_fp(text, threads, mode, t2);

  auto warm = make_sim(text, threads, mode);
  warm->run_until_seconds(t1);
  const std::string snap = std::string(::testing::TempDir()) + "snap_" + tag + ".gdisnap";
  warm->checkpoint(snap);

  auto resumed = make_sim(text, threads, mode);
  resumed->restore(snap);
  EXPECT_DOUBLE_EQ(resumed->now_seconds(), warm->now_seconds());
  resumed->run_until_seconds(t2);
  EXPECT_EQ(result_fingerprint(*resumed), want) << tag;
  std::remove(snap.c_str());
}

TEST(SnapshotEquivalence, TwoSiteSerialActiveSet) {
  expect_restore_equivalence(two_site_text(), 0, SchedulerMode::kActiveSet, 60.0, 180.0,
                             "two_site_serial_active");
}

TEST(SnapshotEquivalence, TwoSiteSerialDenseSweep) {
  expect_restore_equivalence(two_site_text(), 0, SchedulerMode::kDenseSweep, 60.0, 180.0,
                             "two_site_serial_dense");
}

TEST(SnapshotEquivalence, TwoSiteThreadedActiveSet) {
  expect_restore_equivalence(two_site_text(), 4, SchedulerMode::kActiveSet, 60.0, 180.0,
                             "two_site_threaded");
}

TEST(SnapshotEquivalence, TwoSiteAcrossSynchrepLaunch) {
  // t1 sits after the first synchrep launch (interval 900 s), so daemon
  // in-flight cascades cross the checkpoint boundary.
  expect_restore_equivalence(two_site_text(), 0, SchedulerMode::kActiveSet, 950.0, 1100.0,
                             "two_site_synchrep");
}

TEST(SnapshotEquivalence, ThreeContinentsThreaded) {
  expect_restore_equivalence(three_continents_text(), 4, SchedulerMode::kActiveSet, 60.0, 150.0,
                             "three_continents");
}

TEST(SnapshotEquivalence, RestoresAcrossThreadCountAndScheduler) {
  // Save on a serial dense-sweep run; restore under a threaded active-set
  // engine. The fingerprint must still match the uninterrupted run — the
  // snapshot carries simulation state only, never engine configuration.
  const std::string text = two_site_text();
  const std::uint64_t want = uninterrupted_fp(text, 0, SchedulerMode::kActiveSet, 180.0);

  auto warm = make_sim(text, 0, SchedulerMode::kDenseSweep);
  warm->run_until_seconds(60.0);
  const std::vector<std::uint8_t> snap = warm->save_state();

  auto resumed = make_sim(text, 4, SchedulerMode::kActiveSet);
  resumed->load_state(snap);
  resumed->run_until_seconds(180.0);
  EXPECT_EQ(result_fingerprint(*resumed), want);
}

TEST(SnapshotEquivalence, CheckpointDoesNotPerturbTheRun) {
  // Taking a mid-run checkpoint and continuing in the *same* simulator must
  // leave the run byte-identical (saving is strictly read-only).
  const std::string text = two_site_text();
  const std::uint64_t want = uninterrupted_fp(text, 0, SchedulerMode::kActiveSet, 180.0);

  auto sim = make_sim(text, 0, SchedulerMode::kActiveSet);
  sim->run_until_seconds(60.0);
  (void)sim->save_state();
  sim->run_until_seconds(120.0);
  (void)sim->save_state();
  sim->run_until_seconds(180.0);
  EXPECT_EQ(result_fingerprint(*sim), want);
}

TEST(SnapshotEquivalence, RestoredResaveIsByteIdentical) {
  // save → load into a fresh sim → save again must reproduce the original
  // byte stream exactly (no state is lost or reordered by a round trip).
  const std::string text = two_site_text();
  auto a = make_sim(text, 0, SchedulerMode::kActiveSet);
  a->run_until_seconds(90.0);
  const std::vector<std::uint8_t> first = a->save_state();

  auto b = make_sim(text, 0, SchedulerMode::kActiveSet);
  b->load_state(first);
  const std::vector<std::uint8_t> second = b->save_state();
  EXPECT_EQ(first, second);
}

TEST(SnapshotEquivalence, WarmStartForking) {
  // One warm snapshot, three perturbed scenarios: think time and growth rate
  // are fork-safe knobs (non-structural). Every fork must restore, run to
  // the horizon, and produce a distinct result.
  const std::string base = two_site_text();
  auto warm = make_sim(base, 0, SchedulerMode::kActiveSet);
  warm->run_until_seconds(120.0);
  const std::vector<std::uint8_t> snap = warm->save_state();

  const std::string forks[] = {
      base,
      replaced(base, "think 30", "think 12"),
      replaced(base, "think 30", "think 55"),
      replaced(base, "growth HQ 1500 8 17", "growth HQ 4000 8 17"),
  };
  std::vector<std::uint64_t> fps;
  for (const std::string& text : forks) {
    auto fork = make_sim(text, 0, SchedulerMode::kActiveSet);
    fork->load_state(snap);
    EXPECT_DOUBLE_EQ(fork->now_seconds(), warm->now_seconds());
    fork->run_until_seconds(300.0);
    fps.push_back(result_fingerprint(*fork));
  }
  // The think-time forks must diverge from the unperturbed continuation.
  EXPECT_NE(fps[1], fps[0]);
  EXPECT_NE(fps[2], fps[0]);
  EXPECT_NE(fps[1], fps[2]);
}

TEST(SnapshotEquivalence, StructuralMismatchIsRejected) {
  const std::string base = two_site_text();
  auto warm = make_sim(base, 0, SchedulerMode::kActiveSet);
  warm->run_until_seconds(30.0);
  const std::vector<std::uint8_t> snap = warm->save_state();

  // More servers in a tier: different agents — must be rejected.
  {
    auto fork = make_sim(replaced(base, "tier app 2 4 32", "tier app 3 4 32"), 0,
                         SchedulerMode::kActiveSet);
    EXPECT_THROW(fork->load_state(snap), std::runtime_error);
  }
  // Different peak population: different slot count — must be rejected.
  {
    auto fork = make_sim(replaced(base, "population CAD@BRANCH BRANCH CAD 20",
                                  "population CAD@BRANCH BRANCH CAD 24"),
                         0, SchedulerMode::kActiveSet);
    EXPECT_THROW(fork->load_state(snap), std::runtime_error);
  }
}

}  // namespace
}  // namespace gdisim
