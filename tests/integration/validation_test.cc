// Integration tests on the Ch. 5 validation scenario: canonical operation
// durations must reproduce Table 5.1 and the system must stay in the linear
// operating zone under Experiment-1 load.
#include <gtest/gtest.h>

#include "sim/gdisim.h"

namespace gdisim {
namespace {

/// Measures the canonical (single, isolated) duration of one operation on
/// the validation infrastructure — the thesis' canonical-cost procedure.
double canonical_duration_s(const std::string& op, double size_mb) {
  ValidationOptions opt;
  opt.stop_launch_s = 0.0;  // no background series
  Scenario scenario = make_validation_scenario(opt);

  HDispatchEngine engine(0, 64);
  SimulationLoop loop({scenario.tick_seconds, 0}, engine);
  scenario.register_with(loop);

  LaunchParams params;
  params.origin_dc = scenario.master_dc;
  params.size_mb = size_mb;
  params.instance_serial = 1;
  params.launcher_id = 9999;
  params.rng_seed = 4242;

  bool done = false;
  Tick end = 0;
  OperationInstance instance(scenario.catalog->get(op), *scenario.ctx, params,
                             [&](OperationInstance&, Tick t) {
                               done = true;
                               end = t;
                             });
  instance.start(loop.now());
  while (!done && loop.now() < 60000) loop.step();
  EXPECT_TRUE(done) << op;
  return end * scenario.tick_seconds;
}

struct DurationCase {
  const char* op;
  double light, average, heavy;  // Table 5.1 targets, seconds
};

class Table51 : public ::testing::TestWithParam<DurationCase> {};

TEST_P(Table51, CanonicalDurationWithinBand) {
  const DurationCase& c = GetParam();
  const double tol = 0.35;  // ±35% of the thesis' measured values
  const double light = canonical_duration_s(c.op, SeriesSizes::kLightMb);
  const double average = canonical_duration_s(c.op, SeriesSizes::kAverageMb);
  const double heavy = canonical_duration_s(c.op, SeriesSizes::kHeavyMb);
  EXPECT_NEAR(light, c.light, tol * c.light) << c.op << " light";
  EXPECT_NEAR(average, c.average, tol * c.average) << c.op << " average";
  EXPECT_NEAR(heavy, c.heavy, tol * c.heavy) << c.op << " heavy";
}

INSTANTIATE_TEST_SUITE_P(
    CadOps, Table51,
    ::testing::Values(DurationCase{"CAD.LOGIN", 1.94, 2.2, 2.35},
                      DurationCase{"CAD.TEXT-SEARCH", 4.9, 5.11, 4.99},
                      DurationCase{"CAD.FILTER", 2.89, 2.6, 3.0},
                      DurationCase{"CAD.EXPLORE", 6.6, 6.43, 5.92},
                      DurationCase{"CAD.SPATIAL-SEARCH", 12.18, 12.15, 12.38},
                      DurationCase{"CAD.SELECT", 5.7, 6.2, 5.34},
                      DurationCase{"CAD.OPEN", 30.67, 64.68, 96.48},
                      DurationCase{"CAD.SAVE", 36.8, 78.21, 113.01}),
    [](const ::testing::TestParamInfo<DurationCase>& tpi) {
      std::string n = tpi.param.op;
      for (char& ch : n) {
        if (ch == '.' || ch == '-') ch = '_';
      }
      return n;
    });

TEST(Table51, SizeInvarianceOfMetadataOps) {
  // Metadata operations must not depend on the series file size.
  for (const char* op : {"CAD.LOGIN", "CAD.EXPLORE"}) {
    const double light = canonical_duration_s(op, SeriesSizes::kLightMb);
    const double heavy = canonical_duration_s(op, SeriesSizes::kHeavyMb);
    EXPECT_NEAR(light, heavy, 0.05 * light) << op;
  }
}

TEST(Table51, TransfersScaleLinearly) {
  const double open25 = canonical_duration_s("CAD.OPEN", 25.0);
  const double open85 = canonical_duration_s("CAD.OPEN", 85.0);
  const double slope = (open85 - open25) / 60.0;
  // Thesis slope: (96.48 - 30.67) / 60 = 1.097 s/MB.
  EXPECT_NEAR(slope, 1.097, 0.25);
}

TEST(ValidationExperiment1, SteadyStateBehaviour) {
  ValidationOptions opt;
  opt.experiment = 1;
  opt.stop_launch_s = 12.0 * 60.0;
  Scenario scenario = make_validation_scenario(opt);

  SimulatorConfig cfg;
  cfg.collect_every_s = 6.0;
  cfg.threads = 4;
  GdiSimulator sim(std::move(scenario), cfg);
  sim.run_for(12.0 * 60.0);

  // Concurrent clients (series) in steady state: thesis Figure 5-6 shows
  // ~22 for Experiment-1. Allow a generous band.
  std::size_t concurrent = 0;
  for (auto& l : sim.scenario().launchers) concurrent += l->concurrent();
  EXPECT_GE(concurrent, 12u);
  EXPECT_LE(concurrent, 36u);

  // All four tiers must be busy but below saturation (linear zone).
  const TimeSeries* app = sim.collector().find("cpu/NA/app");
  const TimeSeries* db = sim.collector().find("cpu/NA/db");
  const TimeSeries* fs = sim.collector().find("cpu/NA/fs");
  const TimeSeries* idx = sim.collector().find("cpu/NA/idx");
  ASSERT_NE(app, nullptr);
  ASSERT_NE(db, nullptr);
  ASSERT_NE(fs, nullptr);
  ASSERT_NE(idx, nullptr);
  const double t0 = 6.0 * 60.0, t1 = 12.0 * 60.0;  // past the initial transient
  EXPECT_GT(app->mean_between(t0, t1), 0.25);
  EXPECT_LT(app->mean_between(t0, t1), 0.90);
  EXPECT_GT(db->mean_between(t0, t1), 0.10);
  EXPECT_LT(db->mean_between(t0, t1), 0.85);
  EXPECT_GT(fs->mean_between(t0, t1), 0.10);
  EXPECT_GT(idx->mean_between(t0, t1), 0.05);

  // App tier must be the hottest (Figure 5-7 vs 5-8..5-10).
  EXPECT_GT(app->mean_between(t0, t1), db->mean_between(t0, t1));
  EXPECT_GT(app->mean_between(t0, t1), idx->mean_between(t0, t1));

  // Series complete and their per-op durations stay near canonical values
  // (linear zone: no saturation-induced degradation).
  std::uint64_t completed = 0;
  for (auto& l : sim.scenario().launchers) completed += l->series_completed();
  EXPECT_GT(completed, 20u);
}

TEST(ValidationExperiments, PressureOrdering) {
  // Experiment-3 must load the system more than Experiment-1 (Table 5.2).
  auto run = [](int exp) {
    ValidationOptions opt;
    opt.experiment = exp;
    opt.stop_launch_s = 8.0 * 60.0;
    Scenario scenario = make_validation_scenario(opt);
    SimulatorConfig cfg;
    cfg.threads = 4;
    GdiSimulator sim(std::move(scenario), cfg);
    sim.run_for(8.0 * 60.0);
    return sim.collector().find("cpu/NA/app")->mean_between(4.0 * 60.0, 8.0 * 60.0);
  };
  const double u1 = run(1);
  const double u3 = run(3);
  EXPECT_GT(u3, u1 * 1.15);
}

}  // namespace
}  // namespace gdisim
