// GDISim guarantees identical simulation results regardless of execution
// engine or thread count (DESIGN.md §4). These tests run the same scenario
// under different parallelization regimes and require matching outcomes.
#include <gtest/gtest.h>

#include <map>

#include "sim/gdisim.h"

namespace gdisim {
namespace {

struct RunSummary {
  std::map<std::string, std::uint64_t> op_counts;
  std::map<std::string, double> op_total_s;
  std::uint64_t completed_series = 0;
};

RunSummary run_validation(std::size_t threads, int experiment = 1) {
  ValidationOptions opt;
  opt.experiment = experiment;
  opt.stop_launch_s = 4.0 * 60.0;
  Scenario scenario = make_validation_scenario(opt);
  SimulatorConfig cfg;
  cfg.threads = threads;
  GdiSimulator sim(std::move(scenario), cfg);
  sim.run_for(5.0 * 60.0);

  RunSummary out;
  for (auto& l : sim.scenario().launchers) {
    out.completed_series += l->series_completed();
    for (const auto& [op, stats] : l->stats()) {
      out.op_counts[op] += stats.count;
      out.op_total_s[op] += stats.total_s;
    }
  }
  return out;
}

void expect_same(const RunSummary& a, const RunSummary& b) {
  EXPECT_EQ(a.completed_series, b.completed_series);
  ASSERT_EQ(a.op_counts.size(), b.op_counts.size());
  for (const auto& [op, count] : a.op_counts) {
    ASSERT_TRUE(b.op_counts.count(op)) << op;
    EXPECT_EQ(count, b.op_counts.at(op)) << op;
    EXPECT_NEAR(a.op_total_s.at(op), b.op_total_s.at(op), 1e-6) << op;
  }
}

TEST(Determinism, SerialVsFourThreads) {
  expect_same(run_validation(0), run_validation(4));
}

TEST(Determinism, TwoVsEightThreads) {
  expect_same(run_validation(2), run_validation(8));
}

TEST(Determinism, RepeatedRunsIdentical) {
  expect_same(run_validation(3), run_validation(3));
}

TEST(Determinism, GlobalScenarioAcrossThreadCounts) {
  auto run = [](std::size_t threads) {
    GlobalOptions opt;
    opt.scale = 0.02;
    Scenario scenario = make_consolidated_scenario(opt);
    SimulatorConfig cfg;
    cfg.threads = threads;
    GdiSimulator sim(std::move(scenario), cfg);
    sim.run_for(10.0 * 60.0);
    RunSummary out;
    for (auto& p : sim.scenario().populations) {
      for (const auto& [op, stats] : p->stats()) {
        out.op_counts[op] += stats.count;
        out.op_total_s[op] += stats.total_s;
      }
    }
    return out;
  };
  expect_same(run(0), run(6));
}

TEST(Determinism, DifferentSeedsDiverge) {
  ValidationOptions a;
  a.seed = 1;
  a.stop_launch_s = 3.0 * 60.0;
  ValidationOptions b = a;
  b.seed = 2;

  auto run = [](const ValidationOptions& opt) {
    Scenario scenario = make_validation_scenario(opt);
    GdiSimulator sim(std::move(scenario), SimulatorConfig{6.0, 0, 64});
    sim.run_for(4.0 * 60.0);
    double total = 0.0;
    for (auto& l : sim.scenario().launchers) {
      for (const auto& [op, stats] : l->stats()) total += stats.total_s;
    }
    return total;
  };
  // Series launches are deterministic clockwork, but the size jitter and
  // internal streams differ; durations should not be bit-identical.
  EXPECT_NE(run(a), run(b));
}

}  // namespace
}  // namespace gdisim
