// Scale-invariance regression (ISSUE 7): the GlobalOptions::scale knob must
// change *volumes* linearly while preserving *shapes* — the same (app, DC)
// populations exist at every scale, capacities grow proportionally, and
// utilization (hardware is scaled with the population) stays comparable.
// Also pins the snapshot round trip over the dense per-op statistics tables:
// a forked simulator must continue to the same fingerprint as the original.
#include <gtest/gtest.h>

#include "config/scenarios.h"
#include "sim/fingerprint.h"
#include "sim/gdisim.h"

namespace gdisim {
namespace {

constexpr int kExpectedPopulations = 7 * 3;  // 7 DCs x {CAD, VIS, PDM}

double total_capacity(const Scenario& s) {
  double n = 0;
  for (const auto& p : s.populations) n += static_cast<double>(p->slot_count());
  return n;
}

double total_completions(Scenario& s) {
  double n = 0;
  for (auto& p : s.populations) {
    for (const auto& [op, stats] : p->stats()) n += static_cast<double>(stats.count);
  }
  return n;
}

TEST(ScaleInvariance, TinyScaleKeepsEveryPopulation) {
  // Scales that round a small population's peak below one client used to
  // drop the population entirely; now it is clamped to one client so every
  // (app, DC) pair exists at every scale.
  GlobalOptions opt;
  opt.scale = 0.001;
  Scenario s = make_consolidated_scenario(opt);
  EXPECT_EQ(s.populations.size(), static_cast<std::size_t>(kExpectedPopulations));
  for (const auto& p : s.populations) EXPECT_GE(p->slot_count(), 1u) << p->name();
}

TEST(ScaleInvariance, CapacityScalesLinearly) {
  GlobalOptions opt;
  opt.scale = 0.1;
  Scenario s01 = make_consolidated_scenario(opt);
  opt.scale = 0.5;
  Scenario s05 = make_consolidated_scenario(opt);
  ASSERT_EQ(s01.populations.size(), s05.populations.size());
  const double ratio = total_capacity(s05) / total_capacity(s01);
  // Per-population peaks round to whole clients, so the summed ratio is
  // near-linear but not exact.
  EXPECT_NEAR(ratio, 5.0, 0.25);
}

TEST(ScaleInvariance, ShapesAgreeVolumesLinear) {
  // 90 simulated minutes from midnight GMT: the AS1/AS2 (and wrapped AUS)
  // business windows are active, so real work flows at both scales.
  const double horizon_s = 1.5 * 3600.0;
  auto run = [&](double scale) {
    GlobalOptions opt;
    opt.scale = scale;
    SimulatorConfig cfg;
    cfg.collect_every_s = 60.0;
    cfg.threads = 0;
    auto sim = std::make_unique<GdiSimulator>(make_consolidated_scenario(opt), cfg);
    sim->run_for(horizon_s);
    return sim;
  };
  auto sim01 = run(0.1);
  auto sim05 = run(0.5);

  // Volumes: completed operations grow with the population. The workload is
  // stochastic, so only the order of magnitude is pinned.
  const double done01 = total_completions(sim01->scenario());
  const double done05 = total_completions(sim05->scenario());
  ASSERT_GT(done01, 0.0);
  ASSERT_GT(done05, 0.0);
  const double ratio = done05 / done01;
  EXPECT_GT(ratio, 5.0 * 0.65) << "volumes grew sub-linearly";
  EXPECT_LT(ratio, 5.0 * 1.35) << "volumes grew super-linearly";

  // Shapes: hardware scales with the population, so utilization of the busy
  // AS1 file tier must land in the same band at both scales.
  for (const char* label : {"cpu/AS1/fs", "cpu/NA/app"}) {
    const TimeSeries* u01 = sim01->collector().find(label);
    const TimeSeries* u05 = sim05->collector().find(label);
    ASSERT_NE(u01, nullptr) << label;
    ASSERT_NE(u05, nullptr) << label;
    const double m01 = u01->mean_between(0, horizon_s);
    const double m05 = u05->mean_between(0, horizon_s);
    EXPECT_GT(m05, 0.0) << label;
    EXPECT_NEAR(m01, m05, 0.5 * std::max(m01, m05) + 0.02) << label;
  }
}

TEST(ScaleInvariance, SnapshotRoundTripPreservesStatsTables) {
  // Fork mid-run (live operations in flight, per-op stats tables non-empty)
  // and continue both the original and the fork to the same horizon: the
  // result fingerprints — which digest the per-op statistics — must match.
  GlobalOptions opt;
  opt.scale = 0.05;
  SimulatorConfig cfg;
  cfg.threads = 0;
  GdiSimulator original(make_consolidated_scenario(opt), cfg);
  original.run_for(0.5 * 3600.0);
  const std::vector<std::uint8_t> payload = original.save_state();

  GdiSimulator fork(make_consolidated_scenario(opt), cfg);
  fork.load_state(payload);
  EXPECT_DOUBLE_EQ(fork.now_seconds(), original.now_seconds());

  original.run_until_seconds(1.0 * 3600.0);
  fork.run_until_seconds(1.0 * 3600.0);
  EXPECT_EQ(result_fingerprint(original), result_fingerprint(fork));

  // And a re-save of the fork's continued state must round-trip again.
  GdiSimulator fork2(make_consolidated_scenario(opt), cfg);
  fork2.load_state(fork.save_state());
  EXPECT_EQ(result_fingerprint(fork), result_fingerprint(fork2));
}

}  // namespace
}  // namespace gdisim
