#include "config/loader.h"

#include <gtest/gtest.h>

#include <sstream>

#include "sim/gdisim.h"

namespace gdisim {
namespace {

constexpr const char* kSample = R"(
# two-site deployment
tick 0.02
seed 7
master HQ

datacenter HQ
  switch 40
  san 2 24 15000
  tier app 2 4 32
  tier db 1 8 64
  tier fs 1 4 16
  tier idx 1 4 32
end

datacenter BRANCH
  san 1 8 15000
  tier fs 1 4 16
end

link HQ BRANCH 0.155 40 0.2
backup_link HQ BRANCH2 0 0 0   # replaced below; see BadBackup test

population CAD@BRANCH BRANCH CAD 20
  hours 8 17
  think 25
  size 25
end

population VIS@HQ HQ VIS 15
end

growth HQ 2000 8 17
growth BRANCH 500

synchrep HQ 900
indexbuild HQ 300
)";

std::string sample_without_bad_backup() {
  std::string s = kSample;
  const auto pos = s.find("backup_link");
  const auto eol = s.find('\n', pos);
  s.erase(pos, eol - pos);
  return s;
}

TEST(Loader, ParsesFullScenario) {
  std::istringstream is(sample_without_bad_backup());
  Scenario s = load_scenario(is);
  EXPECT_DOUBLE_EQ(s.tick_seconds, 0.02);
  EXPECT_EQ(s.topology->dc_count(), 2u);
  EXPECT_EQ(s.master_dc, s.topology->find_dc("HQ"));
  EXPECT_NE(s.dc("HQ").tier(TierKind::App), nullptr);
  EXPECT_EQ(s.dc("BRANCH").tier(TierKind::App), nullptr);
  ASSERT_EQ(s.populations.size(), 2u);
  EXPECT_EQ(s.populations[0]->config().name, "CAD@BRANCH");
  EXPECT_DOUBLE_EQ(s.populations[0]->config().think_time_mean_s, 25.0);
  EXPECT_DOUBLE_EQ(s.populations[0]->config().curve.peak(), 20.0);
  EXPECT_DOUBLE_EQ(s.populations[1]->config().curve.at_hour(3.0), 15.0);  // constant
  ASSERT_EQ(s.synchreps.size(), 1u);
  ASSERT_EQ(s.indexbuilds.size(), 1u);
  EXPECT_NEAR(s.growth.rate_mb_per_hour(s.topology->find_dc("BRANCH"), 12.0), 500.0, 1e-9);
}

TEST(Loader, LoadedScenarioActuallyRuns) {
  std::istringstream is(sample_without_bad_backup());
  Scenario s = load_scenario(is);
  GdiSimulator sim(std::move(s), SimulatorConfig{6.0, 0, 64});
  sim.run_for(120.0);
  std::uint64_t completed = 0;
  for (auto& p : sim.scenario().populations) completed += p->completed_operations();
  EXPECT_GT(completed, 5u);
  EXPECT_GT(sim.collector().find("cpu/HQ/app")->max_value(), 0.0);
}

TEST(Loader, ScaleOverrideScalesLoadNotHardware) {
  std::istringstream is(sample_without_bad_backup());
  Scenario s = load_scenario(is, "<stream>", 2.0);
  EXPECT_DOUBLE_EQ(s.scale, 2.0);
  // Population peaks and growth rates double; declared hardware (tier
  // shapes, SAN, links) stays exactly as written in the file.
  EXPECT_DOUBLE_EQ(s.populations[0]->config().curve.peak(), 40.0);
  EXPECT_DOUBLE_EQ(s.populations[1]->config().curve.at_hour(3.0), 30.0);
  EXPECT_NEAR(s.growth.rate_mb_per_hour(s.topology->find_dc("BRANCH"), 12.0), 1000.0, 1e-9);
  EXPECT_EQ(s.dc("HQ").tier(TierKind::App)->server_count(), 2u);
}

TEST(Loader, ScaleOverrideClampsToOneClient) {
  std::istringstream is(sample_without_bad_backup());
  Scenario s = load_scenario(is, "<stream>", 0.001);
  ASSERT_EQ(s.populations.size(), 2u);  // no population silently dropped
  for (const auto& p : s.populations) EXPECT_GE(p->slot_count(), 1u) << p->name();
}

TEST(Loader, ScaleOverrideMustBePositive) {
  std::istringstream is(sample_without_bad_backup());
  EXPECT_THROW(load_scenario(is, "<stream>", 0.0), std::invalid_argument);
  std::istringstream is2(sample_without_bad_backup());
  EXPECT_THROW(load_scenario(is2, "<stream>", -1.0), std::invalid_argument);
}

TEST(Loader, CommentsAndBlankLinesIgnored) {
  std::istringstream is("# only comments\n\ndatacenter A\n tier fs 1 2 8\n san 1 4 15000\nend\n");
  Scenario s = load_scenario(is);
  EXPECT_EQ(s.topology->dc_count(), 1u);
}

TEST(Loader, ErrorsCarryLineNumbers) {
  std::istringstream is("tick 0.02\nbogus_directive 1\n");
  try {
    load_scenario(is, "sample.gdisim");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    // Editor-friendly "<source>:<line>:" prefix plus the offending token.
    EXPECT_NE(std::string(e.what()).find("sample.gdisim:2:"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("bogus_directive"), std::string::npos) << e.what();
  }
}

TEST(Loader, ErrorsQuoteOffendingToken) {
  struct Case {
    const char* body;
    const char* want;  // substring the message must contain
  };
  const Case cases[] = {
      {"tick nope\n", "<stream>:1:"},
      {"tick nope\n", "'nope'"},
      {"tick -1\ndatacenter A\nend\n", "'-1'"},
      {"datacenter A\n tier fs 1.5 1 1\nend\n", "'1.5'"},
      {"datacenter A\n weird 1\nend\n", "'weird'"},
      {"datacenter A\n san 1 4 15000\n tier fs 1 1 1\nend\npopulation P NOPE CAD 5\nend\n",
       "unknown datacenter 'NOPE'"},
  };
  for (const Case& c : cases) {
    std::istringstream is(c.body);
    try {
      load_scenario(is);
      FAIL() << "expected throw for: " << c.body;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(c.want), std::string::npos)
          << "message '" << e.what() << "' lacks '" << c.want << "'";
    }
  }
}

TEST(Loader, FileErrorsCarryThePath) {
  try {
    load_scenario_file(GDISIM_SOURCE_DIR "/configs/two_site.gdisim");
  } catch (...) {
    FAIL() << "sample config should parse";
  }
}

TEST(Loader, RejectsMalformedInput) {
  auto expect_throw = [](const std::string& body) {
    std::istringstream is(body);
    EXPECT_THROW(load_scenario(is), std::invalid_argument) << body;
  };
  expect_throw("");                                       // no datacenter
  expect_throw("tick 0\ndatacenter A\nend\n");            // bad tick
  expect_throw("datacenter A\n tier bogus 1 1 1\nend\n"); // bad tier kind
  expect_throw("datacenter A\n tier fs 1 1 1\n");         // unterminated block
  expect_throw("datacenter A\n tier fs 1 1 1\nend\nlink A\n");  // short link
  expect_throw("datacenter A\n tier fs x 1 1\nend\n");    // non-numeric
  // Population referencing unknown dc / app.
  expect_throw(
      "datacenter A\n tier fs 1 1 1\n san 1 4 15000\nend\npopulation P NOPE CAD 5\nend\n");
  expect_throw(
      "datacenter A\n tier fs 1 1 1\n san 1 4 15000\nend\npopulation P A NOPE 5\nend\n");
}

TEST(Loader, BackupLinksAreUnusable) {
  std::istringstream is(R"(
datacenter A
 tier fs 1 2 8
 san 1 4 15000
end
datacenter B
 tier fs 1 2 8
 san 1 4 15000
end
link A B 1 10
backup_link A B 0.5 20
)");
  // Duplicate pair: the second (backup) add throws -> loader surfaces it.
  EXPECT_THROW(load_scenario(is), std::logic_error);
}

TEST(Loader, FileNotFound) {
  EXPECT_THROW(load_scenario_file("/nonexistent/path.gdisim"), std::invalid_argument);
}

TEST(Loader, SampleConfigFileParses) {
  // The repository ships runnable sample configs.
  Scenario s = load_scenario_file(GDISIM_SOURCE_DIR "/configs/two_site.gdisim");
  EXPECT_GE(s.topology->dc_count(), 2u);
  EXPECT_FALSE(s.populations.empty());
}

}  // namespace
}  // namespace gdisim
