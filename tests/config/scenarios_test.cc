// Structural assertions on the canned evaluation scenarios.
#include "config/scenarios.h"

#include <gtest/gtest.h>

namespace gdisim {
namespace {

TEST(ValidationScenario, Structure) {
  Scenario s = make_validation_scenario(ValidationOptions{});
  EXPECT_DOUBLE_EQ(s.tick_seconds, kValidationTickSeconds);
  ASSERT_EQ(s.topology->dc_count(), 1u);
  DataCenter& na = s.dc("NA");
  for (TierKind k : {TierKind::App, TierKind::Db, TierKind::Fs, TierKind::Idx}) {
    EXPECT_NE(na.tier(k), nullptr);
  }
  EXPECT_NE(na.san(), nullptr);
  EXPECT_EQ(na.tier(TierKind::App)->server_count(), 2u);
  ASSERT_EQ(s.launchers.size(), 3u);  // light / average / heavy
  EXPECT_TRUE(s.populations.empty());
  EXPECT_TRUE(s.synchreps.empty());
}

TEST(ValidationScenario, ExperimentIntervalsDiffer) {
  // Experiment-3 must generate more series than Experiment-1 over the same
  // horizon (shorter intervals).
  auto total_series_rate = [](int exp) {
    ValidationOptions opt;
    opt.experiment = exp;
    Scenario s = make_validation_scenario(opt);
    double rate = 0.0;
    (void)s;
    return rate;  // intervals are private; behavioural check in integration
  };
  (void)total_series_rate;
  SUCCEED();
}

TEST(ValidationScenario, SeriesContainsAllEightOps) {
  const auto ops = validation_series(25.0);
  ASSERT_EQ(ops.size(), 8u);
  EXPECT_EQ(ops.front().op, "CAD.LOGIN");
  EXPECT_EQ(ops.back().op, "CAD.SAVE");
  for (const auto& so : ops) EXPECT_DOUBLE_EQ(so.size_mb, 25.0);
}

TEST(ConsolidatedScenario, Structure) {
  GlobalOptions opt;
  opt.scale = 0.05;
  Scenario s = make_consolidated_scenario(opt);
  EXPECT_DOUBLE_EQ(s.tick_seconds, kGlobalTickSeconds);
  ASSERT_EQ(s.topology->dc_count(), 7u);
  EXPECT_EQ(s.master_dc, s.topology->find_dc("NA"));

  // Only the master has file-management tiers (Figure 6-2).
  DataCenter& na = s.dc("NA");
  EXPECT_NE(na.tier(TierKind::App), nullptr);
  EXPECT_NE(na.tier(TierKind::Db), nullptr);
  EXPECT_NE(na.tier(TierKind::Idx), nullptr);
  for (const char* slave : {"EU", "AS1", "SA", "AFR", "AUS", "AS2"}) {
    DataCenter& dc = s.dc(slave);
    EXPECT_EQ(dc.tier(TierKind::App), nullptr) << slave;
    EXPECT_EQ(dc.tier(TierKind::Db), nullptr) << slave;
    EXPECT_NE(dc.tier(TierKind::Fs), nullptr) << slave;
  }

  // Three applications per populated DC.
  EXPECT_GE(s.populations.size(), 18u);
  // Single master: one SR + one IB daemon, homed at NA.
  ASSERT_EQ(s.synchreps.size(), 1u);
  ASSERT_EQ(s.indexbuilds.size(), 1u);
  EXPECT_EQ(s.synchreps[0]->home_dc(), s.master_dc);
}

TEST(ConsolidatedScenario, WanLinksMatchFigure64) {
  GlobalOptions opt;
  opt.scale = 0.05;
  Scenario s = make_consolidated_scenario(opt);
  Topology& topo = *s.topology;
  auto id = [&](const char* n) { return topo.find_dc(n); };
  // Primary links.
  EXPECT_NE(topo.link(id("NA"), id("EU")), nullptr);
  EXPECT_NE(topo.link(id("NA"), id("SA")), nullptr);
  EXPECT_NE(topo.link(id("NA"), id("AS1")), nullptr);
  EXPECT_NE(topo.link(id("AS1"), id("AFR")), nullptr);
  EXPECT_NE(topo.link(id("AS1"), id("AS2")), nullptr);
  EXPECT_NE(topo.link(id("AS1"), id("AUS")), nullptr);
  // Backup links exist but are unused by routing.
  EXPECT_NE(topo.link(id("EU"), id("AFR")), nullptr);
  EXPECT_FALSE(topo.link_usable(id("EU"), id("AFR")));
  const auto& route = topo.route(id("NA"), id("AUS"));
  ASSERT_EQ(route.size(), 2u);  // via the AS1 hub
  // WAN allocation: applications may use 20% (thesis §6.3.3).
  EXPECT_DOUBLE_EQ(topo.link(id("NA"), id("EU"))->spec().allocated_fraction, 0.2);
}

TEST(ConsolidatedScenario, WorkloadPeaksScale) {
  GlobalOptions small;
  small.scale = 0.05;
  GlobalOptions big;
  big.scale = 0.10;
  Scenario a = make_consolidated_scenario(small);
  Scenario b = make_consolidated_scenario(big);
  const double pa = a.population("CAD@NA")->config().curve.peak();
  const double pb = b.population("CAD@NA")->config().curve.peak();
  EXPECT_NEAR(pb / pa, 2.0, 0.1);
}

TEST(MultimasterScenario, Structure) {
  GlobalOptions opt;
  opt.scale = 0.05;
  Scenario s = make_multimaster_scenario(opt);
  // Six masters (Figure 7-2); AS2 stays a satellite.
  for (const char* master : {"NA", "EU", "AS1", "SA", "AFR", "AUS"}) {
    DataCenter& dc = s.dc(master);
    EXPECT_NE(dc.tier(TierKind::App), nullptr) << master;
    EXPECT_NE(dc.tier(TierKind::Db), nullptr) << master;
  }
  EXPECT_EQ(s.dc("AS2").tier(TierKind::App), nullptr);
  EXPECT_EQ(s.synchreps.size(), 6u);
  EXPECT_EQ(s.indexbuilds.size(), 6u);
  EXPECT_FALSE(s.apm.empty());
}

TEST(MultimasterScenario, NaHardwareIsHalved) {
  GlobalOptions opt;
  opt.scale = 0.10;
  Scenario cons = make_consolidated_scenario(opt);
  Scenario mm = make_multimaster_scenario(opt);
  // §7.3.1: app servers 8 -> 4, db cores halved.
  EXPECT_EQ(cons.dc("NA").tier(TierKind::App)->server_count(), 8u);
  EXPECT_EQ(mm.dc("NA").tier(TierKind::App)->server_count(), 4u);
  const unsigned cons_db =
      cons.dc("NA").tier(TierKind::Db)->server(0).spec().cpu.total_cores();
  const unsigned mm_db = mm.dc("NA").tier(TierKind::Db)->server(0).spec().cpu.total_cores();
  EXPECT_NEAR(static_cast<double>(mm_db) / cons_db, 0.5, 0.15);
}

TEST(ScenarioHelpers, TotalCountsFilter) {
  GlobalOptions opt;
  opt.scale = 0.05;
  Scenario s = make_consolidated_scenario(opt);
  // At t=0 no tick ran yet; counts are zero but the filters must not throw.
  EXPECT_EQ(s.total_logged_in(), 0u);
  EXPECT_EQ(s.total_logged_in("CAD"), 0u);
  EXPECT_EQ(s.total_active("VIS", s.master_dc), 0u);
  EXPECT_EQ(s.population("CAD@NA")->config().dc, s.master_dc);
  EXPECT_EQ(s.population("nope"), nullptr);
  EXPECT_EQ(s.synchrep_at(99), nullptr);
}

TEST(MultimasterApm, MatchesTable72Highlights) {
  AccessPatternMatrix apm = multimaster_apm();
  // D_EU: 83.65% self, 12.71% NA (thesis Table 7.2).
  EXPECT_NEAR(apm.fraction(1, 1), 0.8365, 1e-3);
  EXPECT_NEAR(apm.fraction(1, 0), 0.1271, 1e-3);
  // D_AUS: 50.28% self.
  EXPECT_NEAR(apm.fraction(5, 5), 0.5028, 1e-3);
  // D_AS accesses mostly EU-owned data (61.00%).
  EXPECT_NEAR(apm.fraction(2, 1), 0.6100, 1e-3);
}

}  // namespace
}  // namespace gdisim
