#include "background/file_tracker.h"

#include <gtest/gtest.h>

namespace gdisim {
namespace {

TEST(StalenessDistribution, MomentsAndMax) {
  StalenessDistribution d;
  d.record(30.0);
  d.record(90.0);
  d.record(150.0);
  EXPECT_EQ(d.count(), 3u);
  EXPECT_NEAR(d.mean_s(), 90.0, 1e-9);
  EXPECT_DOUBLE_EQ(d.max_s(), 150.0);
}

TEST(StalenessDistribution, PercentileFromHistogram) {
  StalenessDistribution d;
  for (int i = 0; i < 99; ++i) d.record(10.0);  // first bin (0-30 s)
  d.record(3000.0);                             // far tail
  EXPECT_LE(d.percentile_s(0.5), 30.0);
  EXPECT_GE(d.percentile_s(0.999), 2990.0);
}

TEST(StalenessDistribution, MergeAccumulates) {
  StalenessDistribution a, b;
  a.record(10.0);
  b.record(100.0);
  b.record(200.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.max_s(), 200.0);
  EXPECT_NEAR(a.mean_s(), (10.0 + 100.0 + 200.0) / 3.0, 1e-9);
}

TEST(StalenessDistribution, EmptyIsZero) {
  StalenessDistribution d;
  EXPECT_EQ(d.count(), 0u);
  EXPECT_DOUBLE_EQ(d.mean_s(), 0.0);
  EXPECT_DOUBLE_EQ(d.percentile_s(0.95), 0.0);
}

DataGrowthModel constant_growth(double mb_per_hour, std::size_t dcs) {
  DataGrowthModel g;
  for (DcId d = 0; d < dcs; ++d) g.set_curve(d, WorkloadCurve::constant(mb_per_hour));
  g.set_average_file_mb(50.0);
  return g;
}

TEST(FileTracker, MaterializesFilesFromVolume) {
  // 1200 MB/h per DC, 2 DCs, 15-min window => 600 MB => 12 files of 50 MB.
  FileTracker tracker(constant_growth(1200.0, 2), AccessPatternMatrix(), {0, 1}, 0, 7);
  tracker.on_sync_complete(0, 10.0, 10.25, 10.5);
  EXPECT_EQ(tracker.total_files(), 12u);
}

TEST(FileTracker, StalenessBoundedByWindowAndCompletion) {
  FileTracker tracker(constant_growth(2400.0, 1), AccessPatternMatrix(), {0}, 0, 7);
  // Covered (10.0, 10.25], done at 10.5: staleness in [0.25 h, 0.5 h].
  tracker.on_sync_complete(0, 10.0, 10.25, 10.5);
  const StalenessDistribution& d = tracker.staleness(0);
  ASSERT_GT(d.count(), 0u);
  EXPECT_GE(d.mean_s(), 0.25 * 3600.0);
  EXPECT_LE(d.max_s(), 0.50 * 3600.0 + 1.0);
}

TEST(FileTracker, SingleOwnerGetsEverything) {
  FileTracker tracker(constant_growth(1200.0, 3), AccessPatternMatrix(), {0, 1, 2}, 2, 7);
  tracker.on_sync_complete(2, 0.0, 1.0, 1.2);
  EXPECT_EQ(tracker.staleness(2).count(), 3u * 24u);  // 1200 MB / 50 MB per DC
  EXPECT_EQ(tracker.staleness(0).count(), 0u);
  tracker.on_sync_complete(0, 0.0, 1.0, 1.2);  // not the single owner
  EXPECT_EQ(tracker.staleness(0).count(), 0u);
}

TEST(FileTracker, ApmPartitionsOwnership) {
  AccessPatternMatrix apm({{75.0, 25.0}, {25.0, 75.0}});
  FileTracker tracker(constant_growth(4000.0, 2), apm, {0, 1}, 0, 7);
  tracker.on_sync_complete(0, 0.0, 1.0, 1.1);
  tracker.on_sync_complete(1, 0.0, 1.0, 1.1);
  // Owner 0: 0.75*4000 + 0.25*4000 = 4000 MB => 80 files; same for owner 1.
  EXPECT_EQ(tracker.staleness(0).count(), 80u);
  EXPECT_EQ(tracker.staleness(1).count(), 80u);
  EXPECT_EQ(tracker.pooled().count(), 160u);
}

TEST(FileTracker, DeterministicAcrossInstances) {
  auto run = [] {
    FileTracker t(constant_growth(3000.0, 2), AccessPatternMatrix(), {0, 1}, 0, 99);
    t.on_sync_complete(0, 5.0, 5.25, 5.6);
    return t.staleness(0).mean_s();
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(FileTracker, EmptyWindowIsNoop) {
  FileTracker tracker(constant_growth(1200.0, 1), AccessPatternMatrix(), {0}, 0, 7);
  tracker.on_sync_complete(0, 3.0, 3.0, 3.1);
  EXPECT_EQ(tracker.total_files(), 0u);
}

}  // namespace
}  // namespace gdisim
