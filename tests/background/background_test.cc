#include <gtest/gtest.h>

#include "background/data_growth.h"
#include "background/file_catalog.h"
#include "background/indexbuild.h"
#include "background/ownership.h"
#include "background/synchrep.h"
#include "config/scenarios.h"
#include "core/h_dispatch.h"

namespace gdisim {
namespace {

TEST(DataGrowth, ConstantRateIntegration) {
  DataGrowthModel g;
  g.set_curve(0, WorkloadCurve::constant(120.0));  // 120 MB/h
  EXPECT_NEAR(g.generated_mb(0, 0.0, 1.0), 120.0, 1e-6);
  EXPECT_NEAR(g.generated_mb(0, 2.0, 2.5), 60.0, 1e-6);
  EXPECT_NEAR(g.generated_mb(0, 5.0, 5.0), 0.0, 1e-12);
}

TEST(DataGrowth, UnknownDcIsZero) {
  DataGrowthModel g;
  EXPECT_DOUBLE_EQ(g.generated_mb(7, 0.0, 1.0), 0.0);
}

TEST(DataGrowth, BusinessCurveIntegratesPositively) {
  DataGrowthModel g;
  g.set_curve(0, WorkloadCurve::business_hours(1000.0, 10.0, 8.0, 17.0));
  const double off_hours = g.generated_mb(0, 0.0, 4.0);
  const double peak_hours = g.generated_mb(0, 11.0, 15.0);
  EXPECT_GT(peak_hours, 5.0 * off_hours);
}

TEST(AccessPatternMatrix, SingleMasterAssignsAllToMaster) {
  AccessPatternMatrix apm = AccessPatternMatrix::single_master(4, 2);
  for (DcId origin = 0; origin < 4; ++origin) {
    EXPECT_DOUBLE_EQ(apm.fraction(origin, 2), 1.0);
    EXPECT_EQ(apm.sample_owner(origin, 0.5), 2u);
  }
}

TEST(AccessPatternMatrix, NormalizesPercentageRows) {
  AccessPatternMatrix apm({{80.0, 20.0}, {50.0, 50.0}});
  EXPECT_NEAR(apm.fraction(0, 0), 0.8, 1e-12);
  EXPECT_NEAR(apm.fraction(0, 1), 0.2, 1e-12);
  EXPECT_EQ(apm.sample_owner(0, 0.5), 0u);
  EXPECT_EQ(apm.sample_owner(0, 0.9), 1u);
}

TEST(AccessPatternMatrix, RejectsBadMatrices) {
  EXPECT_THROW(AccessPatternMatrix(std::vector<std::vector<double>>{{1.0, 0.0}}),
               std::invalid_argument);  // not square
  EXPECT_THROW(AccessPatternMatrix(std::vector<std::vector<double>>{{0.0}}),
               std::invalid_argument);  // zero row
  EXPECT_THROW(AccessPatternMatrix(std::vector<std::vector<double>>{{-1.0}}),
               std::invalid_argument);
}

TEST(AccessPatternMatrix, MultimasterTableRowsSumToOne) {
  AccessPatternMatrix apm = multimaster_apm();
  ASSERT_EQ(apm.dc_count(), 7u);
  for (DcId origin = 0; origin < 7; ++origin) {
    double total = 0.0;
    for (DcId owner = 0; owner < 7; ++owner) total += apm.fraction(origin, owner);
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
  // Table 7.2 headline facts: NA accesses are mostly NA-owned; EU mostly EU.
  EXPECT_GT(apm.fraction(0, 0), 0.8);
  EXPECT_GT(apm.fraction(1, 1), 0.8);
  // Nobody owns AS2-satellite data.
  for (DcId origin = 0; origin < 7; ++origin) EXPECT_DOUBLE_EQ(apm.fraction(origin, 6), 0.0);
}

TEST(FreshnessLedger, ExposureCombinesIntervalAndDuration) {
  FreshnessLedger ledger;
  BackgroundRunRecord rec;
  rec.cover_from_hour = 10.0;
  rec.cover_to_hour = 10.25;  // 15-minute interval
  rec.duration_s = 16.0 * 60.0;
  ledger.record(rec);
  EXPECT_NEAR(ledger.max_exposure_s(), 31.0 * 60.0, 1e-6);
  EXPECT_NEAR(ledger.max_duration_s(), 16.0 * 60.0, 1e-6);
}

/// Micro world to drive the daemons for a simulated stretch.
struct DaemonWorld {
  Scenario scenario;
  std::unique_ptr<HDispatchEngine> engine;
  std::unique_ptr<SimulationLoop> loop;

  explicit DaemonWorld(bool multimaster = false) {
    GlobalOptions opt;
    opt.scale = 0.02;  // tiny
    opt.seed = 5;
    scenario = multimaster ? make_multimaster_scenario(opt) : make_consolidated_scenario(opt);
    engine = std::make_unique<HDispatchEngine>(0, 64);
    loop = std::make_unique<SimulationLoop>(SimLoopConfig{scenario.tick_seconds, 0}, *engine);
    scenario.register_with(*loop);
  }
};

TEST(SynchRepDaemon, LaunchesAtConfiguredInterval) {
  DaemonWorld world;
  SynchRepDaemon* sr = world.scenario.synchreps.at(0).get();
  // Run one hour of simulated time starting at 13:00 GMT equivalent: the
  // scenario starts at t=0 (midnight); runs still launch every interval.
  world.loop->run_for_seconds(46.0 * 60.0);
  // Launches at t=0, 15, 30, 45 min => at least 3 completed or in flight.
  EXPECT_GE(sr->ledger().runs().size() + sr->runs_in_flight(), 3u);
}

TEST(SynchRepDaemon, RecordsVolumesFromGrowthModel) {
  DaemonWorld world;
  SynchRepDaemon* sr = world.scenario.synchreps.at(0).get();
  world.loop->run_for_seconds(40.0 * 60.0);
  ASSERT_GE(sr->ledger().runs().size(), 1u);
  // The first run covers [0, 0) and is a heartbeat; later runs cover 15 min
  // of (off-peak) growth and must report non-negative volumes.
  for (const auto& run : sr->ledger().runs()) {
    EXPECT_GE(run.total_mb, 0.0);
    for (const auto& [dc, mb] : run.pull_mb) EXPECT_GT(mb, 0.0);
    for (const auto& [dc, mb] : run.push_mb) EXPECT_GT(mb, 0.0);
  }
}

TEST(IndexBuildDaemon, SingleRunInFlight) {
  DaemonWorld world;
  IndexBuildDaemon* ib = world.scenario.indexbuilds.at(0).get();
  for (int i = 0; i < 20000; ++i) {
    world.loop->step();
    EXPECT_LE(ib->runs_in_flight(), 1u);
  }
}

TEST(IndexBuildDaemon, RelaunchesAfterDelay) {
  DaemonWorld world;
  IndexBuildDaemon* ib = world.scenario.indexbuilds.at(0).get();
  world.loop->run_for_seconds(35.0 * 60.0);
  // Delay-after-completion of 5 min + short runs => several runs in 35 min.
  EXPECT_GE(ib->ledger().runs().size(), 2u);
}

TEST(Multimaster, EveryMasterRunsItsOwnDaemons) {
  DaemonWorld world(/*multimaster=*/true);
  EXPECT_EQ(world.scenario.synchreps.size(), 6u);
  EXPECT_EQ(world.scenario.indexbuilds.size(), 6u);
  world.loop->run_for_seconds(20.0 * 60.0);
  for (auto& sr : world.scenario.synchreps) {
    EXPECT_GE(sr->ledger().runs().size() + sr->runs_in_flight(), 1u);
  }
}

TEST(Multimaster, PerDaemonVolumesSmallerThanSingleMaster) {
  // Ch. 7 headline: each master moves only its owned subset.
  GlobalOptions opt;
  opt.scale = 0.02;
  Scenario cons = make_consolidated_scenario(opt);
  Scenario mm = make_multimaster_scenario(opt);
  const double h0 = 13.0, h1 = 13.25;
  double single_total = 0.0, mm_na_total = 0.0;
  for (DcId d = 0; d < 7; ++d) {
    single_total += cons.growth.generated_mb(d, h0, h1);
    mm_na_total +=
        mm.growth.generated_mb(d, h0, h1) * owned_growth_fraction(mm.apm, d, 0);
  }
  EXPECT_LT(mm_na_total, 0.7 * single_total);
  EXPECT_GT(mm_na_total, 0.2 * single_total);
}

}  // namespace
}  // namespace gdisim
