// Per-layer snapshot round trips (DESIGN.md §8). Each test archives
// mid-flight state, restores it into a freshly constructed object, and
// asserts (a) the re-snapshot is byte-identical — nothing was lost or
// reordered — and (b) the restored object behaves exactly like the original
// from that point on.
#include "sim/snapshot.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "config/compat.h"
#include "config/loader.h"
#include "core/archive.h"
#include "core/rng.h"
#include "hardware/nic.h"
#include "queueing/fork_join.h"
#include "sim/fingerprint.h"
#include "sim/gdisim.h"

namespace gdisim {
namespace {

// ---------------------------------------------------------------------------
// StateArchive itself.

TEST(StateArchive, PrimitivesRoundTrip) {
  StateArchive w(StateArchive::Mode::kWrite);
  std::uint8_t a = 0x7f;
  std::uint32_t b = 0xdeadbeef;
  std::uint64_t c = 0x0123456789abcdefULL;
  std::int64_t d = -42;
  double e = 3.141592653589793;
  bool f = true;
  std::string g = "two words";
  std::size_t h = 77;
  w.section("prim");
  w.u8(a);
  w.u32(b);
  w.u64(c);
  w.i64(d);
  w.f64(e);
  w.boolean(f);
  w.str(g);
  w.size_value(h);

  StateArchive r = StateArchive::reader(w.payload());
  std::uint8_t a2 = 0;
  std::uint32_t b2 = 0;
  std::uint64_t c2 = 0;
  std::int64_t d2 = 0;
  double e2 = 0;
  bool f2 = false;
  std::string g2;
  std::size_t h2 = 0;
  r.section("prim");
  r.u8(a2);
  r.u32(b2);
  r.u64(c2);
  r.i64(d2);
  r.f64(e2);
  r.boolean(f2);
  r.str(g2);
  r.size_value(h2);
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(a2, a);
  EXPECT_EQ(b2, b);
  EXPECT_EQ(c2, c);
  EXPECT_EQ(d2, d);
  EXPECT_EQ(e2, e);
  EXPECT_EQ(f2, f);
  EXPECT_EQ(g2, g);
  EXPECT_EQ(h2, h);
}

TEST(StateArchive, SectionMismatchNamesBothSides) {
  StateArchive w(StateArchive::Mode::kWrite);
  w.section("written");
  StateArchive r = StateArchive::reader(w.payload());
  try {
    r.section("expected");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("written"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("expected"), std::string::npos) << e.what();
  }
}

TEST(StateArchive, FileWrapperDetectsCorruption) {
  StateArchive w(StateArchive::Mode::kWrite);
  std::uint64_t v = 12345;
  w.u64(v);
  const std::string path = std::string(::testing::TempDir()) + "corrupt.gdisnap";
  w.write_to_file(path);

  // A clean read works.
  StateArchive ok = StateArchive::read_file(path);
  std::uint64_t v2 = 0;
  ok.u64(v2);
  EXPECT_EQ(v2, v);

  // Flip one payload byte: the checksum must catch it.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(0, std::ios::end);
    const auto size = static_cast<long>(f.tellg());
    f.seekp(size / 2);
    char byte = 0;
    f.seekg(size / 2);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(size / 2);
    f.write(&byte, 1);
  }
  EXPECT_THROW(StateArchive::read_file(path), std::runtime_error);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// RNG stream.

TEST(SnapshotLayer, RngStreamRoundTrip) {
  Rng a(12345);
  for (int i = 0; i < 17; ++i) (void)a.next_u64();  // advance mid-stream

  StateArchive w(StateArchive::Mode::kWrite);
  a.archive_state(w);

  Rng b(999);  // deliberately different seed; restore overwrites position
  StateArchive r = StateArchive::reader(w.payload());
  b.archive_state(r);
  EXPECT_TRUE(r.exhausted());

  StateArchive w2(StateArchive::Mode::kWrite);
  b.archive_state(w2);
  EXPECT_EQ(w.payload(), w2.payload());

  for (int i = 0; i < 32; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_EQ(a.next_exponential(3.0), b.next_exponential(3.0));
}

// ---------------------------------------------------------------------------
// Fork-join queue mid-branch.

JobCtx make_ctx(std::uint64_t i) {
  return reinterpret_cast<JobCtx>(static_cast<std::intptr_t>(i));
}

TEST(SnapshotLayer, ForkJoinMidBranchRoundTrip) {
  ForkJoinQueue a(4, 100.0);
  a.enqueue(400.0, make_ctx(1));
  a.enqueue(200.0, make_ctx(2));
  const auto mid = a.advance(0.5);  // half of job 1 served; both joins live
  EXPECT_TRUE(mid.completed.empty());

  const JobCtxEncoder enc = [](JobCtx c) {
    return static_cast<std::uint64_t>(reinterpret_cast<std::intptr_t>(c));
  };
  const JobCtxDecoder dec = [](std::uint64_t v) { return make_ctx(v); };

  StateArchive w(StateArchive::Mode::kWrite);
  a.archive_state(w, enc, dec);

  ForkJoinQueue b(4, 100.0);
  StateArchive r = StateArchive::reader(w.payload());
  b.archive_state(r, enc, dec);
  EXPECT_TRUE(r.exhausted());

  StateArchive w2(StateArchive::Mode::kWrite);
  b.archive_state(w2, enc, dec);
  EXPECT_EQ(w.payload(), w2.payload());

  // Identical behaviour from the restore point: same completions, same
  // utilization, step by step.
  for (int step = 0; step < 4; ++step) {
    const auto ra = a.advance(0.5);
    const auto rb = b.advance(0.5);
    EXPECT_EQ(ra.completed, rb.completed) << "step " << step;
    EXPECT_DOUBLE_EQ(a.last_utilization(), b.last_utilization()) << "step " << step;
  }
  EXPECT_EQ(a.total_jobs(), b.total_jobs());
  EXPECT_EQ(a.completed_jobs(), b.completed_jobs());
}

// ---------------------------------------------------------------------------
// A single hardware component mid-service, including an undrained inbox.

struct RecordingHandler final : StageCompletionHandler {
  std::vector<std::pair<Tick, std::uint64_t>> done;
  void on_stage_complete(Component& /*at*/, Tick now, std::uint64_t tag) override {
    done.emplace_back(now, tag);
  }
};

TEST(SnapshotLayer, SingleComponentMidServiceRoundTrip) {
  NicSpec spec;
  spec.rate_bps = 1000.0;  // 100 bits per 0.1 s tick

  NicComponent a(spec);
  a.set_tick_seconds(0.1);
  a.set_id(3);
  RecordingHandler ha;
  a.submit(0, /*sender=*/1, /*seq=*/0, StageJob{600.0, &ha, 11, 1});
  a.submit(0, 1, 1, StageJob{250.0, &ha, 22, 1});
  a.on_interactions(0);
  a.on_tick(1);  // 100 of 600 bits served: mid-service
  // A delivery that is still sitting in the inbox at snapshot time.
  a.submit(5, 1, 2, StageJob{100.0, &ha, 33, 1});

  HandlerRegistry rega;
  rega.bind(/*owner=*/7, /*serial=*/1, &ha);
  StateArchive w(StateArchive::Mode::kWrite);
  a.archive_state(w, rega);

  NicComponent b(spec);
  b.set_tick_seconds(0.1);
  b.set_id(3);
  RecordingHandler hb;
  HandlerRegistry regb;
  regb.bind(7, 1, &hb);
  StateArchive r = StateArchive::reader(w.payload());
  b.archive_state(r, regb);
  EXPECT_TRUE(r.exhausted());

  StateArchive w2(StateArchive::Mode::kWrite);
  b.archive_state(w2, regb);
  EXPECT_EQ(w.payload(), w2.payload());

  // Drive both through the same phases; completions must land on the same
  // ticks with the same tags, resolved through each side's own handler.
  for (Tick t = 2; t <= 15; ++t) {
    a.on_tick(t);
    a.on_interactions(t);
    b.on_tick(t);
    b.on_interactions(t);
    EXPECT_DOUBLE_EQ(a.utilization(), b.utilization()) << "tick " << t;
  }
  EXPECT_EQ(ha.done, hb.done);
  EXPECT_EQ(ha.done.size(), 3u);  // all three jobs completed on both sides
  EXPECT_EQ(a.queue_length(), 0u);
  EXPECT_EQ(b.queue_length(), 0u);
}

// ---------------------------------------------------------------------------
// Background daemon mid-synchrep (full-stack mini scenario).

constexpr const char* kMiniScenario = R"(
tick 0.02
seed 5
master A

datacenter A
  switch 40
  san 1 8 15000
  tier app 1 2 8
  tier db 1 2 8
  tier fs 1 2 8
  tier idx 1 2 8
end

datacenter B
  switch 40
  san 1 8 15000
  tier fs 1 2 8
end

link A B 0.155 40 0.2

population P@B B CAD 5
  think 10
  size 25
end

growth A 2000
synchrep A 30
indexbuild A 15
)";

std::unique_ptr<GdiSimulator> make_mini(double think_s = 10.0) {
  std::string text = kMiniScenario;
  if (think_s != 10.0) {
    const auto pos = text.find("think 10");
    text.replace(pos, 8, "think " + std::to_string(static_cast<int>(think_s)));
  }
  std::istringstream is(text);
  Scenario s = load_scenario(is, "<mini>");
  return std::make_unique<GdiSimulator>(std::move(s), SimulatorConfig{});
}

TEST(SnapshotLayer, DaemonMidSynchrepRoundTrip) {
  // 45 s is mid-way through the second 30 s synchrep window, with client
  // operations, daemon cascades and the indexbuild all in flight.
  auto a = make_mini();
  a->run_until_seconds(45.0);
  const std::vector<std::uint8_t> snap = a->save_state();

  auto b = make_mini();
  b->load_state(snap);
  EXPECT_DOUBLE_EQ(b->now_seconds(), a->now_seconds());
  EXPECT_EQ(b->save_state(), snap);  // byte-identical re-snapshot

  // Equivalence from the restore point onward.
  a->run_until_seconds(90.0);
  b->run_until_seconds(90.0);
  EXPECT_EQ(result_fingerprint(*a), result_fingerprint(*b));
}

// ---------------------------------------------------------------------------
// Archive corruption: a payload that fails mid-decode must be rejected
// cleanly — the live simulator keeps its exact pre-load state (transactional
// rollback in GdiSimulator::load_state) and stays deterministic afterwards.

// Locates genuine section frames in a payload: kSectionMagic (0x5EC7105E,
// little-endian) followed by a plausible length-prefixed printable label.
std::vector<std::size_t> section_starts(const std::vector<std::uint8_t>& p) {
  static const std::uint8_t magic[4] = {0x5e, 0x10, 0xc7, 0x5e};
  std::vector<std::size_t> starts;
  for (std::size_t i = 0; i + 12 <= p.size(); ++i) {
    if (std::memcmp(p.data() + i, magic, 4) != 0) continue;
    std::uint64_t len = 0;
    for (int k = 0; k < 8; ++k) len |= static_cast<std::uint64_t>(p[i + 4 + k]) << (8 * k);
    if (len == 0 || len > 64 || i + 12 + len > p.size()) continue;
    bool printable = true;
    for (std::uint64_t k = 0; k < len; ++k) {
      const std::uint8_t c = p[i + 12 + k];
      if (c < 0x20 || c > 0x7e) {
        printable = false;
        break;
      }
    }
    if (printable) starts.push_back(i);
  }
  return starts;
}

// At most `n` evenly spaced picks, always including the first and last.
std::vector<std::size_t> sample(const std::vector<std::size_t>& v, std::size_t n) {
  if (v.size() <= n) return v;
  std::vector<std::size_t> out;
  for (std::size_t k = 0; k < n; ++k) out.push_back(v[k * (v.size() - 1) / (n - 1)]);
  return out;
}

TEST(ArchiveCorruption, PerSectionTruncationRollsBack) {
  auto sim = make_mini();
  sim->run_until_seconds(45.0);
  const std::vector<std::uint8_t> snap = sim->save_state();
  const auto sections = sample(section_starts(snap), 10);
  ASSERT_GT(sections.size(), 3u);

  // Cut the payload inside each sampled section frame, plus one byte short
  // of complete. Every truncated decode must throw, and after the throw the
  // simulator's state must be byte-identical to what it was before the
  // failed load — no partial mutation.
  std::vector<std::size_t> cuts;
  for (const std::size_t s : sections) cuts.push_back(s + 2);
  cuts.push_back(snap.size() - 1);
  for (const std::size_t cut : cuts) {
    const std::vector<std::uint8_t> truncated(snap.begin(),
                                              snap.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_THROW(sim->load_state(truncated), std::runtime_error) << "cut at " << cut;
    EXPECT_EQ(sim->save_state(), snap) << "cut at " << cut;
  }

  // The survivor behaves exactly like a simulator that never saw a bad load.
  auto control = make_mini();
  control->load_state(snap);
  sim->run_until_seconds(90.0);
  control->run_until_seconds(90.0);
  EXPECT_EQ(result_fingerprint(*sim), result_fingerprint(*control));
}

TEST(ArchiveCorruption, BitFlipRollsBack) {
  auto sim = make_mini();
  sim->run_until_seconds(45.0);
  const std::vector<std::uint8_t> snap = sim->save_state();
  const auto sections = sample(section_starts(snap), 8);
  ASSERT_GT(sections.size(), 3u);

  // Flip a bit in each sampled section's magic (stream desync) and in the
  // first byte of its label (section-name mismatch). Both corruptions are
  // guaranteed to be caught by the section framing mid-decode, which is the
  // interesting failure point: some state has already been overwritten when
  // the throw happens, so only the rollback keeps the simulator intact.
  for (const std::size_t s : sections) {
    for (const std::size_t off : {s, s + 12}) {
      std::vector<std::uint8_t> flipped = snap;
      flipped[off] ^= 0x01;
      EXPECT_THROW(sim->load_state(flipped), std::runtime_error) << "flip at " << off;
      EXPECT_EQ(sim->save_state(), snap) << "flip at " << off;
    }
  }
}

TEST(ArchiveCorruption, RestoreDiagnosticsNameFileAndByteOffset) {
  auto sim = make_mini();
  sim->run_until_seconds(10.0);
  const std::string path = std::string(::testing::TempDir()) + "diag.gdisnap";
  sim->checkpoint(path);

  // Truncate the file: the header validator reports `path:byte N: why`, the
  // same source:position shape the scenario loader uses.
  {
    std::ifstream in(path, std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    ASSERT_GT(bytes.size(), 9u);
    bytes.resize(bytes.size() - 9);  // lose the checksum and one payload byte
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  try {
    sim->restore(path);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_EQ(msg.rfind(path + ":byte ", 0), 0u) << msg;
  }
  EXPECT_DOUBLE_EQ(sim->now_seconds(), 10.0);  // pre-restore state survives

  // A well-formed file whose payload fails mid-decode gains the same prefix,
  // with the stream cursor as the offset.
  {
    StateArchive junk(StateArchive::Mode::kWrite);
    std::uint64_t v = 7;
    junk.u64(v);
    junk.write_to_file(path);
  }
  try {
    sim->restore(path);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_EQ(msg.rfind(path + ":byte ", 0), 0u) << msg;
  }
  EXPECT_DOUBLE_EQ(sim->now_seconds(), 10.0);
  std::remove(path.c_str());

  // A missing file names the path.
  try {
    sim->restore("/nonexistent/nope.gdisnap");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("/nonexistent/nope.gdisnap"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Compat descriptor.

TEST(SnapshotCompatTest, DiffIsEmptyForEqualDescriptors) {
  SnapshotCompat a;
  a.lines = {"tick 0.02", "agents 3"};
  EXPECT_EQ(SnapshotCompat::diff(a, a), "");
}

TEST(SnapshotCompatTest, DiffReportsBothSides) {
  SnapshotCompat a, b;
  a.lines = {"tick 0.02", "agent 0 cpu/A"};
  b.lines = {"tick 0.02", "agent 0 cpu/B"};
  const std::string d = SnapshotCompat::diff(a, b);
  EXPECT_NE(d.find("cpu/A"), std::string::npos) << d;
  EXPECT_NE(d.find("cpu/B"), std::string::npos) << d;
  EXPECT_NE(a.digest(), b.digest());
}

TEST(SnapshotCompatTest, RoundTripsThroughArchive) {
  SnapshotCompat a;
  a.lines = {"tick 0.05", "agents 7", "probe cpu/A/app"};
  StateArchive w(StateArchive::Mode::kWrite);
  a.archive_state(w);
  SnapshotCompat b;
  StateArchive r = StateArchive::reader(w.payload());
  b.archive_state(r);
  EXPECT_EQ(a.lines, b.lines);
  EXPECT_EQ(a.digest(), b.digest());
}

}  // namespace
}  // namespace gdisim
