#include "sim/gdisim.h"

#include <gtest/gtest.h>

namespace gdisim {
namespace {

Scenario small_validation() {
  ValidationOptions opt;
  opt.stop_launch_s = 60.0;
  return make_validation_scenario(opt);
}

TEST(GdiSimulator, RejectsScenarioWithoutTick) {
  Scenario empty;
  EXPECT_THROW(GdiSimulator sim(std::move(empty)), std::invalid_argument);
}

TEST(GdiSimulator, RunForAdvancesSimulatedTime) {
  GdiSimulator sim(small_validation(), SimulatorConfig{6.0, 0, 64});
  EXPECT_DOUBLE_EQ(sim.now_seconds(), 0.0);
  sim.run_for(10.0);
  EXPECT_NEAR(sim.now_seconds(), 10.0, sim.scenario().tick_seconds);
  sim.run_for(5.0);
  EXPECT_NEAR(sim.now_seconds(), 15.0, sim.scenario().tick_seconds);
}

TEST(GdiSimulator, CollectorSamplesAtConfiguredPeriod) {
  SimulatorConfig cfg;
  cfg.collect_every_s = 2.0;
  GdiSimulator sim(small_validation(), cfg);
  sim.run_for(20.0);
  const TimeSeries* s = sim.collector().find("cpu/NA/app");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->size(), 10u);
  EXPECT_NEAR(s->samples()[1].t_seconds - s->samples()[0].t_seconds, 2.0, 1e-9);
}

TEST(GdiSimulator, StandardProbesInstalled) {
  GdiSimulator sim(small_validation(), SimulatorConfig{6.0, 0, 64});
  for (const char* label : {"cpu/NA/app", "cpu/NA/db", "cpu/NA/fs", "cpu/NA/idx",
                            "mem/NA/app", "clients/logged_in", "clients/active"}) {
    EXPECT_NE(sim.collector().find(label), nullptr) << label;
  }
}

TEST(GdiSimulator, AgentsRegisteredWithLoop) {
  GdiSimulator sim(small_validation(), SimulatorConfig{6.0, 0, 64});
  // 23 agents: components of the validation DC + three series launchers.
  EXPECT_GT(sim.loop().agent_count(), 20u);
  EXPECT_EQ(sim.loop().agent_count(),
            sim.scenario().topology->all_components().size() +
                sim.scenario().launchers.size());
}

TEST(GdiSimulator, WorkIsActuallySimulated) {
  GdiSimulator sim(small_validation(), SimulatorConfig{6.0, 0, 64});
  sim.run_for(4.0 * 60.0);
  std::uint64_t completed = 0;
  for (auto& l : sim.scenario().launchers) {
    for (const auto& [op, stats] : l->stats()) completed += stats.count;
  }
  EXPECT_GT(completed, 10u);
  EXPECT_GT(sim.collector().find("cpu/NA/app")->max_value(), 0.01);
}

TEST(GdiSimulator, ThreadedAndSerialAgree) {
  auto run = [](std::size_t threads) {
    GdiSimulator sim(small_validation(), SimulatorConfig{6.0, threads, 64});
    sim.run_for(3.0 * 60.0);
    std::uint64_t completed = 0;
    for (auto& l : sim.scenario().launchers) {
      for (const auto& [op, stats] : l->stats()) completed += stats.count;
    }
    return completed;
  };
  EXPECT_EQ(run(0), run(3));
}

}  // namespace
}  // namespace gdisim
