#include <gtest/gtest.h>

#include <sstream>

#include "metrics/collector.h"
#include "metrics/report.h"
#include "metrics/series.h"
#include "metrics/stats.h"

namespace gdisim {
namespace {

TEST(TimeSeries, AppendAndQuery) {
  TimeSeries s("x");
  s.append(0.0, 1.0);
  s.append(1.0, 3.0);
  s.append(2.0, 5.0);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s.mean_between(0.0, 3.0), 3.0);
  EXPECT_DOUBLE_EQ(s.mean_between(0.5, 2.5), 4.0);
  EXPECT_DOUBLE_EQ(s.max_value(), 5.0);
}

TEST(TimeSeries, SnapshotAveragesWindows) {
  TimeSeries s("x");
  for (int i = 0; i < 10; ++i) s.append(i, i);
  TimeSeries snap = s.snapshot(5);
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_DOUBLE_EQ(snap.samples()[0].value, 2.0);  // mean of 0..4
  EXPECT_DOUBLE_EQ(snap.samples()[1].value, 7.0);  // mean of 5..9
}

TEST(TimeSeries, StddevBetween) {
  TimeSeries s("x");
  s.append(0, 2.0);
  s.append(1, 4.0);
  s.append(2, 4.0);
  s.append(3, 4.0);
  s.append(4, 5.0);
  s.append(5, 5.0);
  s.append(6, 7.0);
  s.append(7, 9.0);
  // Known population stddev of {2,4,4,4,5,5,7,9} is 2.
  EXPECT_NEAR(s.stddev_between(0, 8), 2.0, 1e-12);
}

TEST(Stats, MeanAndStddev) {
  std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_NEAR(stddev(xs), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Stats, RmseOfIdenticalSeriesIsZero) {
  std::vector<double> a{1, 2, 3};
  EXPECT_DOUBLE_EQ(rmse(a, a), 0.0);
}

TEST(Stats, RmseKnownValue) {
  std::vector<double> a{1, 2, 3};
  std::vector<double> b{2, 3, 4};
  EXPECT_NEAR(rmse(a, b), 1.0, 1e-12);
}

TEST(Stats, RmseTruncatesToShorter) {
  std::vector<double> a{1, 2, 3, 100};
  std::vector<double> b{1, 2, 3};
  EXPECT_DOUBLE_EQ(rmse(a, b), 0.0);
}

TEST(Stats, Correlation) {
  std::vector<double> a{1, 2, 3, 4};
  std::vector<double> b{2, 4, 6, 8};
  std::vector<double> c{8, 6, 4, 2};
  EXPECT_NEAR(correlation(a, b), 1.0, 1e-12);
  EXPECT_NEAR(correlation(a, c), -1.0, 1e-12);
}

TEST(Collector, SamplesProbesOnCollect) {
  Collector c(0.01);
  double value = 1.0;
  c.add_probe("v", [&value](Tick) { return value; });
  c.collect(100);
  value = 2.0;
  c.collect(200);
  const TimeSeries* s = c.find("v");
  ASSERT_NE(s, nullptr);
  ASSERT_EQ(s->size(), 2u);
  EXPECT_DOUBLE_EQ(s->samples()[0].t_seconds, 1.0);
  EXPECT_DOUBLE_EQ(s->samples()[0].value, 1.0);
  EXPECT_DOUBLE_EQ(s->samples()[1].value, 2.0);
}

TEST(Collector, FindUnknownReturnsNull) {
  Collector c(0.01);
  EXPECT_EQ(c.find("nope"), nullptr);
}

TEST(TableReport, PrintsAlignedTable) {
  TableReport t({"name", "value"});
  t.add_row({"alpha", "1.00"});
  t.add_row({"b", "22.50"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name "), std::string::npos);
  EXPECT_NE(out.find("| alpha"), std::string::npos);
  EXPECT_NE(out.find("22.50"), std::string::npos);
}

TEST(TableReport, RowWidthMismatchThrows) {
  TableReport t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TableReport, Formatters) {
  EXPECT_EQ(TableReport::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TableReport::pct(0.345, 1), "34.5%");
}

TEST(PrintSeries, DownsamplesLongSeries) {
  TimeSeries s("long");
  for (int i = 0; i < 1000; ++i) s.append(i, i);
  std::ostringstream os;
  print_series(os, s, 10);
  // Roughly 10 rows + header.
  int lines = 0;
  for (char ch : os.str()) {
    if (ch == '\n') ++lines;
  }
  EXPECT_LE(lines, 13);
}

TEST(PrintCsv, AlignedColumns) {
  TimeSeries a("a"), b("b");
  a.append(0, 1);
  a.append(1, 2);
  b.append(0, 10);
  b.append(1, 20);
  std::ostringstream os;
  print_csv(os, {&a, &b});
  EXPECT_EQ(os.str(), "t_seconds,a,b\n0,1,10\n1,2,20\n");
}

}  // namespace
}  // namespace gdisim
