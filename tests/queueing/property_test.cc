// Property tests: the discrete-time queues must converge to the closed-form
// M/M/c predictions under Poisson arrivals and exponential service demands.
// This is the simulation-vs-analytic-model comparison of thesis Ch. 2,
// turned into an executable invariant.
#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"
#include "queueing/analytic.h"
#include "queueing/fcfs_queue.h"
#include "queueing/ps_queue.h"

namespace gdisim {
namespace {

struct MmcCase {
  unsigned servers;
  double lambda;
  double mu;
};

class MmcConvergence : public ::testing::TestWithParam<MmcCase> {};

TEST_P(MmcConvergence, FcfsMatchesErlangC) {
  const MmcCase& p = GetParam();
  FcfsMultiServerQueue q(p.servers, 1.0);  // service unit: "work" at rate 1
  Rng rng(1234);

  const double dt = 0.002;
  const double horizon = 40000.0;
  double next_arrival = rng.next_exponential(1.0 / p.lambda);
  double t = 0.0;
  double area_jobs = 0.0;     // integral of jobs-in-system
  double busy_area = 0.0;     // integral of utilization
  std::uint64_t arrivals = 0;

  while (t < horizon) {
    while (next_arrival <= t) {
      q.enqueue(rng.next_exponential(1.0 / p.mu), nullptr);
      ++arrivals;
      next_arrival += rng.next_exponential(1.0 / p.lambda);
    }
    q.advance(dt);
    area_jobs += static_cast<double>(q.total_jobs()) * dt;
    busy_area += q.last_utilization() * dt;
    t += dt;
  }

  const double sim_mean_jobs = area_jobs / horizon;
  const double sim_util = busy_area / horizon;
  const double exp_mean_jobs = analytic::mmc_mean_in_system(p.servers, p.lambda, p.mu);
  const double exp_util = analytic::mmc_utilization(p.servers, p.lambda, p.mu);

  EXPECT_NEAR(sim_util, exp_util, 0.03) << "servers=" << p.servers;
  // Mean jobs-in-system is noisier; allow 12% relative error.
  EXPECT_NEAR(sim_mean_jobs, exp_mean_jobs, 0.12 * exp_mean_jobs + 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, MmcConvergence,
    ::testing::Values(MmcCase{1, 0.5, 1.0}, MmcCase{1, 0.7, 1.0}, MmcCase{2, 1.2, 1.0},
                      MmcCase{4, 2.8, 1.0}, MmcCase{8, 5.6, 1.0}),
    [](const ::testing::TestParamInfo<MmcCase>& tpi) {
      const auto& p = tpi.param;
      return "c" + std::to_string(p.servers) + "_rho" +
             std::to_string(static_cast<int>(100 * p.lambda / (p.servers * p.mu)));
    });

TEST(PsConvergence, Mm1PsMeanResponseMatchesAnalytic) {
  // M/M/1-PS has the same mean response time as M/M/1-FCFS.
  const double lambda = 0.6, mu = 1.0;
  PsQueue q(1.0, 0, 0.0);
  Rng rng(99);

  const double dt = 0.002;
  const double horizon = 40000.0;
  double next_arrival = rng.next_exponential(1.0 / lambda);
  double t = 0.0;
  double area_jobs = 0.0;

  while (t < horizon) {
    while (next_arrival <= t) {
      q.enqueue(rng.next_exponential(1.0 / mu), nullptr);
      next_arrival += rng.next_exponential(1.0 / lambda);
    }
    q.advance(dt);
    area_jobs += static_cast<double>(q.total_jobs()) * dt;
    t += dt;
  }
  // Little's law: E[N] = lambda * E[T].
  const double sim_mean_jobs = area_jobs / horizon;
  const double exp_mean_jobs = lambda * analytic::mm1_ps_mean_response_time(lambda, mu);
  EXPECT_NEAR(sim_mean_jobs, exp_mean_jobs, 0.12 * exp_mean_jobs + 0.05);
}

TEST(Stability, SaturatedQueueGrowsUnboundedly) {
  // rho > 1: backlog must keep growing — detects accidental work leaks.
  FcfsMultiServerQueue q(1, 1.0);
  Rng rng(7);
  const double lambda = 1.5, mu = 1.0;
  double next_arrival = rng.next_exponential(1.0 / lambda);
  double t = 0.0;
  std::size_t backlog_mid = 0;
  while (t < 2000.0) {
    while (next_arrival <= t) {
      q.enqueue(rng.next_exponential(1.0 / mu), nullptr);
      next_arrival += rng.next_exponential(1.0 / lambda);
    }
    q.advance(0.01);
    if (std::abs(t - 1000.0) < 0.005) backlog_mid = q.total_jobs();
    t += 0.01;
  }
  EXPECT_GT(q.total_jobs(), backlog_mid);
  EXPECT_GT(q.total_jobs(), 100u);
}

TEST(TickInvariance, ResultsIndependentOfStepSize) {
  // Deterministic arrival pattern served with two different step sizes must
  // complete the same jobs at (nearly) the same times.
  auto run = [](double dt) {
    FcfsMultiServerQueue q(2, 10.0);
    std::vector<double> completion_times;
    const int steps_per_second = static_cast<int>(1.0 / dt + 0.5);
    int enqueued = 0;
    for (int step = 0; step < 50 * steps_per_second; ++step) {
      // One arrival at each whole second, counted in integer steps so both
      // grids see the identical arrival pattern.
      if (step % steps_per_second == 0 && enqueued < 40) {
        q.enqueue(15.0, nullptr);
        ++enqueued;
      }
      auto r = q.advance(dt);
      const double t = (step + 1) * dt;
      for (std::size_t k = 0; k < r.completed.size(); ++k) completion_times.push_back(t);
    }
    return completion_times;
  };
  const auto coarse = run(0.1);
  const auto fine = run(0.01);
  ASSERT_EQ(coarse.size(), fine.size());
  for (std::size_t i = 0; i < coarse.size(); ++i) {
    EXPECT_NEAR(coarse[i], fine[i], 0.2) << "job " << i;
  }
}

}  // namespace
}  // namespace gdisim
