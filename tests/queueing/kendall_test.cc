#include "queueing/kendall.h"

#include <gtest/gtest.h>

namespace gdisim {
namespace {

TEST(Kendall, ParsesThreeFactorForm) {
  KendallSpec s = parse_kendall("M/M/4");
  EXPECT_EQ(s.arrival, ArrivalProcess::kMarkov);
  EXPECT_EQ(s.service, ServiceProcess::kMarkov);
  EXPECT_EQ(s.servers, 4u);
  EXPECT_FALSE(s.capacity.has_value());
  EXPECT_EQ(s.discipline, Discipline::kFcfs);
}

TEST(Kendall, ParsesCapacityAndDiscipline) {
  KendallSpec s = parse_kendall("M/M/1/32-PS");
  EXPECT_EQ(s.servers, 1u);
  ASSERT_TRUE(s.capacity.has_value());
  EXPECT_EQ(*s.capacity, 32u);
  EXPECT_EQ(s.discipline, Discipline::kProcessorSharing);
}

TEST(Kendall, ParsesGeneralAndDeterministicProcesses) {
  EXPECT_EQ(parse_kendall("G/G/2").arrival, ArrivalProcess::kGeneral);
  EXPECT_EQ(parse_kendall("GI/M/1").arrival, ArrivalProcess::kGeneral);
  EXPECT_EQ(parse_kendall("D/M/1").arrival, ArrivalProcess::kDeterministic);
  EXPECT_EQ(parse_kendall("M/D/1").service, ServiceProcess::kDeterministic);
  EXPECT_EQ(parse_kendall("M/G/1-PS").service, ServiceProcess::kGeneral);
}

TEST(Kendall, RoundTripsToString) {
  for (const char* n : {"M/M/4-FCFS", "M/M/1/32-PS", "G/G/2-FCFS", "M/G/1-PS", "D/M/7-FCFS"}) {
    EXPECT_EQ(parse_kendall(n).to_string(), n);
  }
}

TEST(Kendall, RejectsMalformedNotation) {
  for (const char* bad : {"", "M", "M/M", "X/M/1", "M/X/1", "M/M/0", "M/M/-1", "M/M/abc",
                          "M/M/1/0", "M/M/1/2/3/4", "M/M/1-LIFO"}) {
    EXPECT_THROW(parse_kendall(bad), std::invalid_argument) << bad;
  }
}

TEST(Kendall, MaterializesFcfsQueue) {
  auto q = make_fcfs_queue(parse_kendall("M/M/3"), 100.0);
  EXPECT_EQ(q->servers(), 3u);
  EXPECT_DOUBLE_EQ(q->rate_per_server(), 100.0);
  EXPECT_THROW(make_fcfs_queue(parse_kendall("M/M/1-PS"), 1.0), std::invalid_argument);
}

TEST(Kendall, MaterializesPsQueue) {
  auto q = make_ps_queue(parse_kendall("M/M/1/8-PS"), 1e6, 0.01);
  EXPECT_EQ(q->max_concurrent(), 8u);
  EXPECT_DOUBLE_EQ(q->total_rate(), 1e6);
  EXPECT_DOUBLE_EQ(q->latency_seconds(), 0.01);
  EXPECT_THROW(make_ps_queue(parse_kendall("M/M/1"), 1.0), std::invalid_argument);
  EXPECT_THROW(make_ps_queue(parse_kendall("M/M/2-PS"), 1.0), std::invalid_argument);
}

TEST(Kendall, ThesisNotationsAllParse) {
  // Every queue family named in thesis §3.4.2 / Ch. 2.
  for (const char* n : {"M/M/4", "M/M/1", "M/M/1/64-PS", "M/G/1-PS", "G/G/1", "M/M/1/20"}) {
    EXPECT_NO_THROW(parse_kendall(n)) << n;
  }
}

}  // namespace
}  // namespace gdisim
