#include "queueing/analytic.h"

#include <gtest/gtest.h>

namespace gdisim::analytic {
namespace {

TEST(Analytic, OfferedLoad) {
  EXPECT_DOUBLE_EQ(offered_load(2.0, 4.0), 0.5);
  EXPECT_THROW(offered_load(1.0, 0.0), std::invalid_argument);
}

TEST(Analytic, ErlangCSingleServerEqualsRho) {
  // For c=1 the probability of waiting equals rho.
  EXPECT_NEAR(erlang_c(1, 0.5, 1.0), 0.5, 1e-12);
  EXPECT_NEAR(erlang_c(1, 0.9, 1.0), 0.9, 1e-12);
}

TEST(Analytic, ErlangCKnownValue) {
  // Classic table value: c=2, a=1 (rho=0.5) -> C = 1/3.
  EXPECT_NEAR(erlang_c(2, 1.0, 1.0), 1.0 / 3.0, 1e-9);
}

TEST(Analytic, ErlangCDecreasesWithMoreServers) {
  const double lambda = 4.0, mu = 1.0;
  double prev = 1.0;
  for (unsigned c = 5; c <= 12; ++c) {
    const double pc = erlang_c(c, lambda, mu);
    EXPECT_LT(pc, prev);
    prev = pc;
  }
}

TEST(Analytic, ErlangCRejectsUnstable) {
  EXPECT_THROW(erlang_c(1, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(erlang_c(2, 3.0, 1.0), std::invalid_argument);
}

TEST(Analytic, Mm1Formulas) {
  const double lambda = 0.5, mu = 1.0;
  EXPECT_NEAR(mm1_mean_in_system(lambda, mu), 1.0, 1e-12);
  EXPECT_NEAR(mm1_mean_response_time(lambda, mu), 2.0, 1e-12);
  EXPECT_NEAR(mm1_mean_wait(lambda, mu), 1.0, 1e-12);
}

TEST(Analytic, Mm1LittleLawConsistency) {
  const double lambda = 0.7, mu = 1.0;
  EXPECT_NEAR(mm1_mean_in_system(lambda, mu),
              lambda * mm1_mean_response_time(lambda, mu), 1e-9);
}

TEST(Analytic, MmcReducesToMm1) {
  const double lambda = 0.6, mu = 1.0;
  EXPECT_NEAR(mmc_mean_response_time(1, lambda, mu), mm1_mean_response_time(lambda, mu), 1e-9);
  EXPECT_NEAR(mmc_mean_wait(1, lambda, mu), mm1_mean_wait(lambda, mu), 1e-9);
}

TEST(Analytic, MmcLittleLawConsistency) {
  const double lambda = 3.0, mu = 1.0;
  EXPECT_NEAR(mmc_mean_in_system(4, lambda, mu),
              lambda * mmc_mean_response_time(4, lambda, mu), 1e-9);
}

TEST(Analytic, MmcUtilization) {
  EXPECT_NEAR(mmc_utilization(4, 2.0, 1.0), 0.5, 1e-12);
}

TEST(Analytic, PsMeanEqualsFcfsMean) {
  EXPECT_NEAR(mm1_ps_mean_response_time(0.5, 1.0), mm1_mean_response_time(0.5, 1.0), 1e-12);
}

TEST(Analytic, Mm1kBlocking) {
  // rho = 1 special case: 1/(k+1).
  EXPECT_NEAR(mm1k_blocking_probability(1.0, 1.0, 4), 0.2, 1e-9);
  // Low load: nearly no blocking.
  EXPECT_LT(mm1k_blocking_probability(0.1, 1.0, 10), 1e-9);
  // Blocking decreases with larger k.
  EXPECT_GT(mm1k_blocking_probability(0.8, 1.0, 2),
            mm1k_blocking_probability(0.8, 1.0, 8));
}

}  // namespace
}  // namespace gdisim::analytic
