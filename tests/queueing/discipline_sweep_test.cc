// Parameterized invariant sweeps over the queue disciplines: conservation,
// monotonicity and fairness properties that must hold for every
// configuration the hardware layer can instantiate.
#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"
#include "queueing/fcfs_queue.h"
#include "queueing/fork_join.h"
#include "queueing/ps_queue.h"

namespace gdisim {
namespace {

// ---------------------------------------------------------------------------
// FCFS sweep: (servers, rate, dt).

struct FcfsCase {
  unsigned servers;
  double rate;
  double dt;
};

class FcfsSweep : public ::testing::TestWithParam<FcfsCase> {};

TEST_P(FcfsSweep, ConservesWorkAndCompletesEverything) {
  const FcfsCase& p = GetParam();
  FcfsMultiServerQueue q(p.servers, p.rate);
  Rng rng(11);
  double total_in = 0.0;
  const int jobs = 50;
  for (int i = 0; i < jobs; ++i) {
    const double w = rng.next_exponential(p.rate * 0.05);
    q.enqueue(w, nullptr);
    total_in += w;
  }
  double served = 0.0;
  std::uint64_t done = 0;
  for (int step = 0; step < 200000 && done < jobs; ++step) {
    auto r = q.advance(p.dt);
    served += r.work_done;
    done += r.completed.size();
    // Utilization is a fraction by construction.
    EXPECT_GE(q.last_utilization(), 0.0);
    EXPECT_LE(q.last_utilization(), 1.0 + 1e-9);
  }
  EXPECT_EQ(done, static_cast<std::uint64_t>(jobs));
  EXPECT_NEAR(served, total_in, 1e-6 * total_in + 1e-9);
  EXPECT_EQ(q.total_jobs(), 0u);
}

TEST_P(FcfsSweep, BusySecondsNeverExceedElapsedTimesServers) {
  const FcfsCase& p = GetParam();
  FcfsMultiServerQueue q(p.servers, p.rate);
  for (int i = 0; i < 20; ++i) q.enqueue(p.rate * p.dt * 3.0, nullptr);
  for (int step = 0; step < 500; ++step) q.advance(p.dt);
  EXPECT_LE(q.busy_server_seconds(), q.elapsed_seconds() * p.servers + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FcfsSweep,
    ::testing::Values(FcfsCase{1, 1.0, 0.01}, FcfsCase{1, 1e9, 0.05}, FcfsCase{4, 100.0, 0.001},
                      FcfsCase{8, 2.5e9, 0.05}, FcfsCase{16, 10.0, 0.1},
                      FcfsCase{3, 7.5, 0.02}),
    [](const ::testing::TestParamInfo<FcfsCase>& tpi) {
      return "c" + std::to_string(tpi.param.servers) + "_i" + std::to_string(tpi.index);
    });

// ---------------------------------------------------------------------------
// PS sweep: (k, latency).

struct PsCase {
  std::size_t k;
  double latency;
};

class PsSweep : public ::testing::TestWithParam<PsCase> {};

TEST_P(PsSweep, EqualJobsFinishTogetherAndFairly) {
  const PsCase& p = GetParam();
  PsQueue q(100.0, p.k, p.latency);
  const int jobs = 6;
  for (int i = 0; i < jobs; ++i) q.enqueue(50.0, nullptr);
  // All jobs identical: completion count jumps in batches of at most k.
  int done = 0;
  int batches = 0;
  for (int step = 0; step < 100000 && done < jobs; ++step) {
    auto r = q.advance(0.01);
    if (!r.completed.empty()) {
      ++batches;
      EXPECT_LE(r.completed.size(), p.k == 0 ? jobs : p.k);
      done += static_cast<int>(r.completed.size());
    }
  }
  EXPECT_EQ(done, jobs);
  if (p.k == 0) {
    EXPECT_EQ(batches, 1);  // unlimited sharing: all at once
  }
}

TEST_P(PsSweep, LatencyIsAdditive) {
  const PsCase& p = GetParam();
  // Completion time of a lone job = work/rate + latency.
  PsQueue q(100.0, p.k, p.latency);
  q.enqueue(100.0, nullptr);
  double t = 0.0;
  const double dt = 0.005;
  while (q.total_jobs() > 0 && t < 100.0) {
    q.advance(dt);
    t += dt;
  }
  EXPECT_NEAR(t, 1.0 + p.latency, 2 * dt);
}

INSTANTIATE_TEST_SUITE_P(Grid, PsSweep,
                         ::testing::Values(PsCase{0, 0.0}, PsCase{0, 0.25}, PsCase{2, 0.0},
                                           PsCase{2, 0.1}, PsCase{4, 0.5}, PsCase{1, 0.05}),
                         [](const ::testing::TestParamInfo<PsCase>& tpi) {
                           return "k" + std::to_string(tpi.param.k) + "_i" +
                                  std::to_string(tpi.index);
                         });

// ---------------------------------------------------------------------------
// Fork-join: striping invariants.

class ForkJoinSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(ForkJoinSweep, LoneJobLatencyScalesInverselyWithBranches) {
  const unsigned branches = GetParam();
  ForkJoinQueue q(branches, 100.0);
  q.enqueue(400.0, nullptr);
  double t = 0.0;
  const double dt = 0.001;
  while (q.total_jobs() > 0 && t < 100.0) {
    q.advance(dt);
    t += dt;
  }
  EXPECT_NEAR(t, 4.0 / branches, 3 * dt);
}

TEST_P(ForkJoinSweep, CompletionOrderIsFifoForUniformJobs) {
  const unsigned branches = GetParam();
  ForkJoinQueue q(branches, 100.0);
  for (std::intptr_t i = 1; i <= 5; ++i) q.enqueue(100.0, reinterpret_cast<JobCtx>(i));
  std::vector<std::intptr_t> order;
  for (int step = 0; step < 100000 && order.size() < 5; ++step) {
    for (JobCtx c : q.advance(0.001).completed) {
      order.push_back(reinterpret_cast<std::intptr_t>(c));
    }
  }
  ASSERT_EQ(order.size(), 5u);
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], static_cast<std::intptr_t>(i + 1));
  }
}

INSTANTIATE_TEST_SUITE_P(Branches, ForkJoinSweep, ::testing::Values(1u, 2u, 4u, 12u, 40u),
                         [](const ::testing::TestParamInfo<unsigned>& tpi) {
                           return "n" + std::to_string(tpi.param);
                         });

}  // namespace
}  // namespace gdisim
