#include "queueing/fork_join.h"

#include <gtest/gtest.h>

namespace gdisim {
namespace {

int ctx_id(JobCtx c) { return static_cast<int>(reinterpret_cast<std::intptr_t>(c)); }
JobCtx make_ctx(int i) { return reinterpret_cast<JobCtx>(static_cast<std::intptr_t>(i)); }

TEST(ForkJoin, CompletesWhenAllBranchesDone) {
  ForkJoinQueue q(4, 100.0);  // 4 disks, 100 B/s each
  q.enqueue(400.0, make_ctx(1));  // 100 per branch -> 1 s
  auto r = q.advance(0.5);
  EXPECT_TRUE(r.completed.empty());
  r = q.advance(0.5);
  ASSERT_EQ(r.completed.size(), 1u);
  EXPECT_EQ(ctx_id(r.completed[0]), 1);
}

TEST(ForkJoin, StripingSpeedsUpSingleJob) {
  // Same total work, more branches -> proportionally faster.
  ForkJoinQueue q1(1, 100.0);
  ForkJoinQueue q8(8, 100.0);
  q1.enqueue(800.0, make_ctx(1));
  q8.enqueue(800.0, make_ctx(1));
  auto r8 = q8.advance(1.0);
  auto r1 = q1.advance(1.0);
  EXPECT_EQ(r8.completed.size(), 1u);
  EXPECT_TRUE(r1.completed.empty());
}

TEST(ForkJoin, MultipleJobsQueuePerBranch) {
  ForkJoinQueue q(2, 100.0);
  q.enqueue(200.0, make_ctx(1));
  q.enqueue(200.0, make_ctx(2));
  EXPECT_EQ(q.total_jobs(), 2u);
  auto r = q.advance(1.0);
  ASSERT_EQ(r.completed.size(), 1u);
  EXPECT_EQ(ctx_id(r.completed[0]), 1);
  r = q.advance(1.0);
  ASSERT_EQ(r.completed.size(), 1u);
  EXPECT_EQ(ctx_id(r.completed[1 - 1]), 2);
  EXPECT_EQ(q.completed_jobs(), 2u);
}

TEST(ForkJoin, UtilizationAveragesBranches) {
  ForkJoinQueue q(2, 100.0);
  q.enqueue(100.0, make_ctx(1));  // 50 per branch over 1 s -> 50% each
  q.advance(1.0);
  EXPECT_NEAR(q.last_utilization(), 0.5, 1e-9);
}

TEST(ForkJoin, RejectsZeroBranches) {
  EXPECT_THROW(ForkJoinQueue(0, 100.0), std::invalid_argument);
}

TEST(ForkJoin, DestructorReleasesInFlightJobs) {
  // No leak / crash when destroyed with live joins (checked by ASan builds;
  // here we just exercise the path).
  auto* q = new ForkJoinQueue(4, 100.0);
  q->enqueue(1e9, make_ctx(1));
  delete q;
  SUCCEED();
}

}  // namespace
}  // namespace gdisim
