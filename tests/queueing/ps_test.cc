#include "queueing/ps_queue.h"

#include <gtest/gtest.h>

namespace gdisim {
namespace {

int ctx_id(JobCtx c) { return static_cast<int>(reinterpret_cast<std::intptr_t>(c)); }
JobCtx make_ctx(int i) { return reinterpret_cast<JobCtx>(static_cast<std::intptr_t>(i)); }

TEST(PsQueue, SingleJobGetsFullRate) {
  PsQueue q(100.0, 0, 0.0);
  q.enqueue(100.0, make_ctx(1));
  auto r = q.advance(1.0);
  ASSERT_EQ(r.completed.size(), 1u);
}

TEST(PsQueue, TwoJobsShareBandwidth) {
  PsQueue q(100.0, 0, 0.0);
  q.enqueue(100.0, make_ctx(1));
  q.enqueue(100.0, make_ctx(2));
  auto r = q.advance(1.0);
  EXPECT_TRUE(r.completed.empty());  // each got 50 of 100 units
  r = q.advance(1.0);
  EXPECT_EQ(r.completed.size(), 2u);
}

TEST(PsQueue, ShortJobFinishesEarlyAndReleasesShare) {
  // Job A: 10 units, job B: 100 units, rate 100/s. A finishes at t=0.2
  // (share 50/s); B then gets the full rate: served 10 + 80 = 90 by t=1.0,
  // finishing at t ~ 1.1.
  PsQueue q(100.0, 0, 0.0);
  q.enqueue(10.0, make_ctx(1));
  q.enqueue(100.0, make_ctx(2));
  auto r = q.advance(1.0);
  ASSERT_EQ(r.completed.size(), 1u);
  EXPECT_EQ(ctx_id(r.completed[0]), 1);
  r = q.advance(0.15);
  ASSERT_EQ(r.completed.size(), 1u);
  EXPECT_EQ(ctx_id(r.completed[0]), 2);
}

TEST(PsQueue, AdmissionCapLimitsActiveSet) {
  PsQueue q(100.0, 2, 0.0);
  for (int i = 0; i < 5; ++i) q.enqueue(50.0, make_ctx(i));
  EXPECT_EQ(q.active(), 2u);
  EXPECT_EQ(q.waiting(), 3u);
  // The two active jobs each get 50/s -> both finish in 1s; two more admit.
  auto r = q.advance(1.0);
  EXPECT_EQ(r.completed.size(), 2u);
  EXPECT_EQ(q.active(), 2u);
  EXPECT_EQ(q.waiting(), 1u);
}

TEST(PsQueue, LatencyDelaysCompletion) {
  PsQueue q(100.0, 0, 0.5);
  q.enqueue(100.0, make_ctx(1));
  auto r = q.advance(1.0);  // service done exactly at t=1.0
  EXPECT_TRUE(r.completed.empty());
  r = q.advance(0.4);
  EXPECT_TRUE(r.completed.empty());
  r = q.advance(0.2);
  EXPECT_EQ(r.completed.size(), 1u);
}

TEST(PsQueue, ZeroWorkJobOnlyPaysLatency) {
  PsQueue q(100.0, 0, 0.3);
  q.enqueue(0.0, make_ctx(1));
  EXPECT_EQ(q.in_latency(), 1u);
  auto r = q.advance(0.2);
  EXPECT_TRUE(r.completed.empty());
  r = q.advance(0.2);
  EXPECT_EQ(r.completed.size(), 1u);
}

TEST(PsQueue, MidStepFinishNotOverchargedLatency) {
  // Service finishes at t=0.1 within a 1.0 s step; latency 0.95 s means the
  // job must NOT complete inside this step (0.1 + 0.95 > 1.0).
  PsQueue q(100.0, 0, 0.95);
  q.enqueue(10.0, make_ctx(1));
  auto r = q.advance(1.0);
  EXPECT_TRUE(r.completed.empty());
  r = q.advance(0.06);
  EXPECT_EQ(r.completed.size(), 1u);
}

TEST(PsQueue, UtilizationReflectsLoad) {
  PsQueue q(100.0, 0, 0.0);
  q.enqueue(25.0, make_ctx(1));
  q.advance(1.0);
  EXPECT_NEAR(q.last_utilization(), 0.25, 1e-9);
}

TEST(PsQueue, CompletionOrderFifoAmongEqualJobs) {
  PsQueue q(100.0, 0, 0.0);
  q.enqueue(50.0, make_ctx(1));
  q.enqueue(50.0, make_ctx(2));
  auto r = q.advance(1.0);
  ASSERT_EQ(r.completed.size(), 2u);
  EXPECT_EQ(ctx_id(r.completed[0]), 1);
  EXPECT_EQ(ctx_id(r.completed[1]), 2);
}

TEST(PsQueue, RejectsInvalidConstruction) {
  EXPECT_THROW(PsQueue(0.0, 0, 0.0), std::invalid_argument);
  EXPECT_THROW(PsQueue(1.0, 0, -0.1), std::invalid_argument);
}

TEST(PsQueue, WorkConservation) {
  PsQueue q(50.0, 3, 0.1);
  double total_in = 0.0;
  for (int i = 0; i < 10; ++i) {
    q.enqueue(20.0, make_ctx(i));
    total_in += 20.0;
  }
  double served = 0.0;
  std::size_t done = 0;
  for (int step = 0; step < 500 && done < 10; ++step) {
    auto r = q.advance(0.05);
    served += r.work_done;
    done += r.completed.size();
  }
  EXPECT_EQ(done, 10u);
  EXPECT_NEAR(served, total_in, 1e-6);
}

}  // namespace
}  // namespace gdisim
