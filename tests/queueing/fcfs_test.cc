#include "queueing/fcfs_queue.h"

#include <gtest/gtest.h>

namespace gdisim {
namespace {

int ctx_id(JobCtx c) { return static_cast<int>(reinterpret_cast<std::intptr_t>(c)); }
JobCtx make_ctx(int i) { return reinterpret_cast<JobCtx>(static_cast<std::intptr_t>(i)); }

TEST(FcfsQueue, SingleJobCompletesAfterServiceTime) {
  FcfsMultiServerQueue q(1, 100.0);  // 100 units/s
  q.enqueue(50.0, make_ctx(1));
  auto r = q.advance(0.25);
  EXPECT_TRUE(r.completed.empty());
  r = q.advance(0.25);
  ASSERT_EQ(r.completed.size(), 1u);
  EXPECT_EQ(ctx_id(r.completed[0]), 1);
}

TEST(FcfsQueue, FcfsOrdering) {
  FcfsMultiServerQueue q(1, 100.0);
  q.enqueue(10.0, make_ctx(1));
  q.enqueue(10.0, make_ctx(2));
  q.enqueue(10.0, make_ctx(3));
  auto r = q.advance(1.0);
  ASSERT_EQ(r.completed.size(), 3u);
  EXPECT_EQ(ctx_id(r.completed[0]), 1);
  EXPECT_EQ(ctx_id(r.completed[1]), 2);
  EXPECT_EQ(ctx_id(r.completed[2]), 3);
}

TEST(FcfsQueue, LeftoverCapacityServesNextJob) {
  // One server, two jobs of 30 units each, 100 units/s: both finish in one
  // 0.6 s step despite being sequential.
  FcfsMultiServerQueue q(1, 100.0);
  q.enqueue(30.0, make_ctx(1));
  q.enqueue(30.0, make_ctx(2));
  auto r = q.advance(0.6);
  EXPECT_EQ(r.completed.size(), 2u);
}

TEST(FcfsQueue, MultipleServersWorkInParallel) {
  FcfsMultiServerQueue q(2, 100.0);
  q.enqueue(100.0, make_ctx(1));
  q.enqueue(100.0, make_ctx(2));
  auto r = q.advance(1.0);
  EXPECT_EQ(r.completed.size(), 2u);
}

TEST(FcfsQueue, WaitingRoomHoldsExcessJobs) {
  FcfsMultiServerQueue q(2, 100.0);
  for (int i = 0; i < 5; ++i) q.enqueue(100.0, make_ctx(i));
  EXPECT_EQ(q.in_service(), 2u);
  EXPECT_EQ(q.waiting(), 3u);
  EXPECT_EQ(q.total_jobs(), 5u);
}

TEST(FcfsQueue, UtilizationFullWhenSaturated) {
  FcfsMultiServerQueue q(2, 100.0);
  for (int i = 0; i < 10; ++i) q.enqueue(1000.0, make_ctx(i));
  q.advance(1.0);
  EXPECT_NEAR(q.last_utilization(), 1.0, 1e-9);
}

TEST(FcfsQueue, UtilizationPartialWhenUnderloaded) {
  FcfsMultiServerQueue q(2, 100.0);
  q.enqueue(50.0, make_ctx(1));  // half of one server's 1s budget
  q.advance(1.0);
  EXPECT_NEAR(q.last_utilization(), 0.25, 1e-9);  // 50 of 200 unit capacity
}

TEST(FcfsQueue, UtilizationZeroWhenIdle) {
  FcfsMultiServerQueue q(1, 100.0);
  q.advance(1.0);
  EXPECT_DOUBLE_EQ(q.last_utilization(), 0.0);
}

TEST(FcfsQueue, WorkConservation) {
  FcfsMultiServerQueue q(3, 50.0);
  double total_in = 0.0;
  for (int i = 0; i < 20; ++i) {
    q.enqueue(10.0 + i, make_ctx(i));
    total_in += 10.0 + i;
  }
  double total_served = 0.0;
  std::size_t completed = 0;
  for (int step = 0; step < 100 && completed < 20; ++step) {
    auto r = q.advance(0.05);
    total_served += r.work_done;
    completed += r.completed.size();
  }
  EXPECT_EQ(completed, 20u);
  EXPECT_NEAR(total_served, total_in, 1e-6);
  EXPECT_EQ(q.completed_jobs(), 20u);
}

TEST(FcfsQueue, RejectsInvalidConstruction) {
  EXPECT_THROW(FcfsMultiServerQueue(0, 1.0), std::invalid_argument);
  EXPECT_THROW(FcfsMultiServerQueue(1, 0.0), std::invalid_argument);
  EXPECT_THROW(FcfsMultiServerQueue(1, -1.0), std::invalid_argument);
}

TEST(FcfsQueue, ZeroDtIsNoop) {
  FcfsMultiServerQueue q(1, 100.0);
  q.enqueue(10.0, make_ctx(1));
  auto r = q.advance(0.0);
  EXPECT_TRUE(r.completed.empty());
  EXPECT_EQ(q.total_jobs(), 1u);
}

TEST(FcfsQueue, BusyAccountingAccumulates) {
  FcfsMultiServerQueue q(1, 100.0);
  q.enqueue(100.0, make_ctx(1));
  q.advance(0.5);
  q.advance(0.5);
  EXPECT_NEAR(q.busy_server_seconds(), 1.0, 1e-9);
  EXPECT_NEAR(q.elapsed_seconds(), 1.0, 1e-9);
}

}  // namespace
}  // namespace gdisim
