#include <gtest/gtest.h>

#include <vector>

#include "core/engine.h"
#include "core/sim_loop.h"
#include "hardware/cpu.h"
#include "hardware/delay.h"
#include "hardware/link.h"
#include "hardware/memory.h"
#include "hardware/nic.h"
#include "hardware/network_switch.h"
#include "hardware/raid.h"
#include "hardware/san.h"

namespace gdisim {
namespace {

/// Records completions (component, tick, tag).
class RecordingHandler final : public StageCompletionHandler {
 public:
  void on_stage_complete(Component& at, Tick now, std::uint64_t tag) override {
    completions.push_back({&at, now, tag});
  }
  struct Rec {
    Component* at;
    Tick now;
    std::uint64_t tag;
  };
  std::vector<Rec> completions;
};

/// Drives a single component through the tick/interaction protocol.
class ComponentHarness {
 public:
  explicit ComponentHarness(Component& c, double tick_seconds) : c_(c) {
    c_.set_tick_seconds(tick_seconds);
    c_.set_id(0);
  }
  void submit(double work, StageCompletionHandler* h, std::uint64_t tag = 0) {
    c_.submit(now_ + 1, 99, seq_++, StageJob{work, h, tag});
  }
  void step() {
    c_.on_tick(now_);
    c_.on_interactions(now_ + 1);
    ++now_;
  }
  void run(int n) {
    for (int i = 0; i < n; ++i) step();
  }
  Tick now() const { return now_; }

 private:
  Component& c_;
  Tick now_ = 0;
  std::uint64_t seq_ = 0;
};

TEST(CpuComponent, ConsumesCyclesAtClockRate) {
  CpuSpec spec{1, 1, 1e9, 1.0};  // one core at 1 GHz
  CpuComponent cpu(spec);
  RecordingHandler h;
  ComponentHarness harness(cpu, 0.01);
  harness.submit(5e6, &h);  // 5 Mcycles -> 5 ms -> done within one 10ms tick
  harness.step();           // job not yet absorbed (arrives via inbox)
  EXPECT_TRUE(h.completions.empty());
  harness.step();  // first service tick
  ASSERT_EQ(h.completions.size(), 1u);
}

TEST(CpuComponent, MulticoreParallelism) {
  CpuSpec spec{1, 4, 1e9, 1.0};
  CpuComponent cpu(spec);
  RecordingHandler h;
  ComponentHarness harness(cpu, 0.01);
  for (int i = 0; i < 4; ++i) harness.submit(1e7, &h, i);  // 10 ms each
  harness.run(3);
  EXPECT_EQ(h.completions.size(), 4u);  // all four served in parallel
}

TEST(CpuComponent, LeastLoadedSocketPlacement) {
  CpuSpec spec{2, 1, 1e9, 1.0};
  CpuComponent cpu(spec);
  RecordingHandler h;
  ComponentHarness harness(cpu, 0.01);
  harness.submit(1e7, &h, 0);
  harness.submit(1e7, &h, 1);
  harness.run(3);
  // Both finish in the same tick because they went to different sockets.
  ASSERT_EQ(h.completions.size(), 2u);
  EXPECT_EQ(h.completions[0].now, h.completions[1].now);
}

TEST(CpuComponent, UtilizationTracksLoad) {
  CpuSpec spec{1, 2, 1e9, 1.0};
  CpuComponent cpu(spec);
  RecordingHandler h;
  ComponentHarness harness(cpu, 0.01);
  harness.submit(1e7, &h);  // one of two cores busy for one tick
  harness.step();
  harness.step();
  EXPECT_NEAR(cpu.utilization(), 0.5, 1e-9);
}

TEST(CpuComponent, SmtInflatesEffectiveCores) {
  CpuSpec smt{1, 4, 2e9, 1.5};
  EXPECT_EQ(smt.effective_cores_per_socket(), 6u);
  CpuSpec no_smt{1, 4, 2e9, 1.0};
  EXPECT_EQ(no_smt.effective_cores_per_socket(), 4u);
}

TEST(NicComponent, ServesBitsAtLineRate) {
  NicComponent nic(NicSpec{1e9});
  RecordingHandler h;
  ComponentHarness harness(nic, 0.01);
  harness.submit(2e7, &h);  // 20 Mbit at 1 Gb/s -> 20 ms -> 2 ticks
  harness.run(4);
  ASSERT_EQ(h.completions.size(), 1u);
  EXPECT_EQ(h.completions[0].now, 2);
}

TEST(SwitchComponent, FasterThanNic) {
  SwitchComponent sw(SwitchSpec{1e10});
  RecordingHandler h;
  ComponentHarness harness(sw, 0.01);
  harness.submit(2e7, &h);  // 2 ms at 10 Gb/s
  harness.run(3);
  ASSERT_EQ(h.completions.size(), 1u);
}

TEST(LinkComponent, AddsLatency) {
  LinkComponent link(LinkSpec{1e9, 0.05, 0, 1.0});
  RecordingHandler h;
  ComponentHarness harness(link, 0.01);
  harness.submit(1e7, &h);  // 10 ms transfer + 50 ms latency
  harness.run(5);
  EXPECT_TRUE(h.completions.empty());
  harness.run(3);
  EXPECT_EQ(h.completions.size(), 1u);
}

TEST(LinkComponent, AllocatedFractionLimitsCapacity) {
  LinkComponent link(LinkSpec{1e9, 0.0, 0, 0.2});
  EXPECT_DOUBLE_EQ(link.capacity_per_second(), 2e8);
  RecordingHandler h;
  ComponentHarness harness(link, 0.01);
  harness.submit(2e6, &h);  // 2 Mbit at 200 Mb/s -> 10 ms
  harness.run(3);
  EXPECT_EQ(h.completions.size(), 1u);
}

TEST(LinkComponent, SharedBandwidthSlowsTransfers) {
  LinkComponent link(LinkSpec{1e8, 0.0, 0, 1.0});
  RecordingHandler h;
  ComponentHarness harness(link, 0.01);
  harness.submit(1e6, &h, 0);
  harness.submit(1e6, &h, 1);
  // Each 1 Mb transfer alone: 10 ms; sharing: 20 ms.
  harness.run(2);
  EXPECT_TRUE(h.completions.empty());
  harness.run(2);
  EXPECT_EQ(h.completions.size(), 2u);
}

TEST(DelayComponent, PureDelayNoContention) {
  DelayComponent delay;
  RecordingHandler h;
  ComponentHarness harness(delay, 0.01);
  for (int i = 0; i < 100; ++i) harness.submit(0.03, &h, i);
  harness.run(2);
  EXPECT_TRUE(h.completions.empty());
  harness.run(3);
  EXPECT_EQ(h.completions.size(), 100u);  // all 100 complete together
}

TEST(MemoryComponent, OccupancyAllocateRelease) {
  MemoryComponent mem(MemorySpec{1e9, 0.5, 0.0});
  EXPECT_DOUBLE_EQ(mem.occupied_bytes(), 0.0);
  mem.allocate(1e6);
  mem.allocate(2e6);
  EXPECT_NEAR(mem.occupied_bytes(), 3e6, 1.0);
  EXPECT_NEAR(mem.utilization(), 3e-3, 1e-6);
  mem.release(1e6);
  EXPECT_NEAR(mem.occupied_bytes(), 2e6, 1.0);
}

TEST(MemoryComponent, CacheDecisionFromCallerUniform) {
  MemoryComponent mem(MemorySpec{1e9, 0.3, 0.0});
  EXPECT_TRUE(mem.storage_access_hits_cache(0.1));
  EXPECT_FALSE(mem.storage_access_hits_cache(0.5));
}

TEST(MemoryComponent, PoolFloorDominatesObservedBytes) {
  MemorySpec spec{32e9, 0.0, 28e9};
  MemoryComponent mem(spec);
  mem.allocate(1e6);
  EXPECT_DOUBLE_EQ(mem.observed_bytes(), 28e9);  // flat §5.3.3 profile
  EXPECT_NEAR(mem.occupied_bytes(), 1e6, 1.0);   // model profile
}

TEST(RaidComponent, ServesThroughControllerAndDisks) {
  RaidSpec spec;
  spec.disks = 4;
  spec.dacc_rate_Bps = 1e9;
  spec.dacc_hit_rate = 0.0;
  spec.dcc_rate_Bps = 1e9;
  spec.dcc_hit_rate = 0.0;
  spec.hdd_rate_Bps = 100e6;
  RaidComponent raid(spec, Rng(1));
  RecordingHandler h;
  ComponentHarness harness(raid, 0.01);
  harness.submit(4e6, &h);  // 1 MB/disk at 100 MB/s -> 10 ms + controller hops
  harness.run(8);
  ASSERT_EQ(h.completions.size(), 1u);
  EXPECT_EQ(raid.queue_length(), 0u);
}

TEST(RaidComponent, CacheHitBypassesDisks) {
  RaidSpec spec;
  spec.disks = 2;
  spec.dacc_rate_Bps = 1e9;
  spec.dacc_hit_rate = 1.0;  // always hit
  spec.hdd_rate_Bps = 1.0;   // disks effectively unusable
  RaidComponent raid(spec, Rng(1));
  RecordingHandler h;
  ComponentHarness harness(raid, 0.01);
  harness.submit(1e6, &h);
  harness.run(4);
  ASSERT_EQ(h.completions.size(), 1u);
}

TEST(SanComponent, FullPipelineCompletes) {
  SanSpec spec;
  spec.disks = 8;
  spec.dacc_hit_rate = 0.0;
  spec.dcc_hit_rate = 0.0;
  SanComponent san(spec, Rng(2));
  RecordingHandler h;
  ComponentHarness harness(san, 0.01);
  harness.submit(8e6, &h);
  harness.run(12);
  ASSERT_EQ(h.completions.size(), 1u);
  EXPECT_EQ(san.queue_length(), 0u);
}

TEST(SanComponent, HitRateOneNeverTouchesDisks) {
  SanSpec spec;
  spec.disks = 2;
  spec.dacc_hit_rate = 1.0;
  spec.hdd_rate_Bps = 1.0;
  SanComponent san(spec, Rng(3));
  RecordingHandler h;
  ComponentHarness harness(san, 0.01);
  for (int i = 0; i < 5; ++i) harness.submit(1e6, &h, i);
  harness.run(10);
  EXPECT_EQ(h.completions.size(), 5u);
}

TEST(CpuComponent, ParallelJobForksAcrossCores) {
  // 4 cores at 1 GHz; a 4e7-cycle job takes 40 ms serial but 10 ms at
  // parallelism 4 (thesis §9.1.1).
  CpuSpec spec{1, 4, 1e9, 1.0};
  CpuComponent serial_cpu(spec), parallel_cpu(spec);
  RecordingHandler hs, hp;
  ComponentHarness serial(serial_cpu, 0.01), parallel(parallel_cpu, 0.01);
  serial.submit(4e7, &hs);
  parallel.submit(4e7, &hp);
  // Give the parallel job its fork hint.
  parallel_cpu.set_tick_seconds(0.01);
  // Re-submit with parallelism via the raw submit API.
  CpuComponent cpu2(spec);
  cpu2.set_tick_seconds(0.01);
  cpu2.set_id(1);
  RecordingHandler h2;
  cpu2.submit(1, 99, 0, StageJob{4e7, &h2, 0, 4});
  for (Tick t = 0; t < 3; ++t) {
    cpu2.on_tick(t);
    cpu2.on_interactions(t + 1);
  }
  ASSERT_EQ(h2.completions.size(), 1u);  // done within ~1 service tick
  serial.run(6);
  ASSERT_EQ(hs.completions.size(), 1u);
  EXPECT_GT(hs.completions[0].now, h2.completions[0].now);
}

TEST(CpuComponent, ParallelismCappedAtSocketCores) {
  CpuSpec spec{1, 2, 1e9, 1.0};
  CpuComponent cpu(spec);
  cpu.set_tick_seconds(0.01);
  cpu.set_id(1);
  RecordingHandler h;
  // parallelism 16 capped to the 2 cores of the socket: 2e7 cycles split
  // into two 1e7 shares => done after one 10 ms service tick.
  cpu.submit(1, 99, 0, StageJob{2e7, &h, 0, 16});
  for (Tick t = 0; t < 4; ++t) {
    cpu.on_tick(t);
    cpu.on_interactions(t + 1);
  }
  EXPECT_EQ(h.completions.size(), 1u);
}

TEST(CpuComponent, ParallelJobConsumesSameTotalCycles) {
  CpuSpec spec{1, 4, 1e9, 1.0};
  CpuComponent cpu(spec);
  cpu.set_tick_seconds(0.01);
  cpu.set_id(1);
  RecordingHandler h;
  cpu.submit(1, 99, 0, StageJob{4e7, &h, 0, 4});
  cpu.on_tick(0);
  cpu.on_interactions(1);
  cpu.on_tick(1);  // all four cores busy the whole tick
  EXPECT_NEAR(cpu.utilization(), 1.0, 1e-9);
  cpu.on_interactions(2);
  cpu.on_tick(2);
  EXPECT_EQ(h.completions.size(), 1u);
}

TEST(Component, InstantAccountingRaisesUtilization) {
  NicComponent nic(NicSpec{1e9});
  nic.set_tick_seconds(0.01);
  nic.account_instant(5e6, 0);  // 5 Mb of sub-tick work accounted at tick 0
  nic.on_tick(0);
  EXPECT_NEAR(nic.utilization(), 0.0, 1e-9);  // folds at the tick after accounting
  nic.on_tick(1);
  EXPECT_NEAR(nic.utilization(), 0.5, 1e-9);  // 5e6 / (1e9 * 0.01)
  nic.on_tick(2);
  EXPECT_NEAR(nic.utilization(), 0.0, 1e-9);  // accounted once only
}

}  // namespace
}  // namespace gdisim
