#include "hardware/server.h"

#include <gtest/gtest.h>

#include "config/spec.h"

namespace gdisim {
namespace {

ServerSpec raid_spec() { return make_server_spec(TierNotation{1, 8, 32.0}, true); }
ServerSpec san_spec() { return make_server_spec(TierNotation{1, 8, 32.0}, false); }

TEST(Server, LocalRaidIsTheStorage) {
  Server server(raid_spec(), "s0", Rng(1), nullptr);
  ASSERT_NE(server.storage(), nullptr);
  EXPECT_NE(server.storage(), static_cast<Component*>(&server.nic()));
  // nic + cpu + raid owned.
  EXPECT_EQ(server.owned_components().size(), 3u);
}

TEST(Server, SharedSanIsTheStorageWhenNoRaid) {
  SanComponent san(SanSpec{}, Rng(2));
  Server server(san_spec(), "s0", Rng(1), &san);
  EXPECT_EQ(server.storage(), static_cast<Component*>(&san));
  // Only nic + cpu owned; the SAN belongs to the data center.
  EXPECT_EQ(server.owned_components().size(), 2u);
}

TEST(Server, NoStorageAtAll) {
  Server server(san_spec(), "s0", Rng(1), nullptr);
  EXPECT_EQ(server.storage(), nullptr);
}

TEST(Server, ComponentNamesDeriveFromServerName) {
  Server server(raid_spec(), "dc/app/s3", Rng(1), nullptr);
  EXPECT_EQ(server.nic().name(), "dc/app/s3/nic");
  EXPECT_EQ(server.cpu().name(), "dc/app/s3/cpu");
}

TEST(Server, SpecPlumbing) {
  Server server(raid_spec(), "s0", Rng(1), nullptr);
  EXPECT_EQ(server.cpu().spec().sockets, 2u);
  EXPECT_EQ(server.cpu().spec().cores_per_socket, 4u);
  EXPECT_DOUBLE_EQ(server.memory().spec().capacity_bytes, 32.0 * (1ull << 30));
}

TEST(Server, MemoryIsPerServer) {
  Server a(raid_spec(), "a", Rng(1), nullptr);
  Server b(raid_spec(), "b", Rng(2), nullptr);
  a.memory().allocate(1e6);
  EXPECT_NEAR(a.memory().occupied_bytes(), 1e6, 1.0);
  EXPECT_DOUBLE_EQ(b.memory().occupied_bytes(), 0.0);
}

TEST(CpuSpecNotation, SocketSplit) {
  // < 8 cores: single socket; >= 8: dual socket (thesis examples).
  EXPECT_EQ(make_server_spec(TierNotation{1, 4, 16.0}, true).cpu.sockets, 1u);
  EXPECT_EQ(make_server_spec(TierNotation{1, 8, 16.0}, true).cpu.sockets, 2u);
  EXPECT_EQ(make_server_spec(TierNotation{1, 48, 16.0}, true).cpu.sockets, 2u);
  EXPECT_EQ(make_server_spec(TierNotation{1, 48, 16.0}, true).cpu.cores_per_socket, 24u);
}

}  // namespace
}  // namespace gdisim
