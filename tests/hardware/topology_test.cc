#include "hardware/topology.h"

#include <gtest/gtest.h>

#include "config/builder.h"

namespace gdisim {
namespace {

std::unique_ptr<DataCenter> make_dc(const std::string& name, std::uint64_t seed = 1) {
  return std::make_unique<DataCenter>(name, SwitchSpec{1e10}, std::nullopt, Rng(seed));
}

LinkSpec wan() { return LinkSpec{155e6, 0.09, 0, 0.2}; }

TEST(Topology, FindDcByName) {
  Topology topo;
  topo.add_datacenter(make_dc("NA"));
  topo.add_datacenter(make_dc("EU"));
  EXPECT_EQ(topo.find_dc("NA"), 0u);
  EXPECT_EQ(topo.find_dc("EU"), 1u);
  EXPECT_THROW(topo.find_dc("XX"), std::out_of_range);
}

TEST(Topology, DirectRoute) {
  Topology topo;
  const DcId na = topo.add_datacenter(make_dc("NA"));
  const DcId eu = topo.add_datacenter(make_dc("EU"));
  topo.add_duplex_link(na, eu, wan());
  topo.compute_routes();
  const auto& r = topo.route(na, eu);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], topo.link(na, eu));
  EXPECT_TRUE(topo.route(na, na).empty());
}

TEST(Topology, MultiHopRouteViaHub) {
  // NA -- AS1 -- AUS: traffic NA->AUS must traverse both links in order.
  Topology topo;
  const DcId na = topo.add_datacenter(make_dc("NA"));
  const DcId as1 = topo.add_datacenter(make_dc("AS1"));
  const DcId aus = topo.add_datacenter(make_dc("AUS"));
  topo.add_duplex_link(na, as1, wan());
  topo.add_duplex_link(as1, aus, wan());
  topo.compute_routes();
  const auto& r = topo.route(na, aus);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0], topo.link(na, as1));
  EXPECT_EQ(r[1], topo.link(as1, aus));
}

TEST(Topology, BackupLinksIgnoredByRouting) {
  Topology topo;
  const DcId na = topo.add_datacenter(make_dc("NA"));
  const DcId eu = topo.add_datacenter(make_dc("EU"));
  const DcId afr = topo.add_datacenter(make_dc("AFR"));
  topo.add_duplex_link(na, eu, wan());
  topo.add_duplex_link(na, afr, wan());
  topo.add_duplex_link(eu, afr, wan(), /*usable=*/false);  // backup
  topo.compute_routes();
  const auto& r = topo.route(eu, afr);
  ASSERT_EQ(r.size(), 2u);  // EU -> NA -> AFR, not the backup direct link
  EXPECT_EQ(r[0], topo.link(eu, na));
  EXPECT_EQ(r[1], topo.link(na, afr));
}

TEST(Topology, UnreachableThrows) {
  Topology topo;
  const DcId a = topo.add_datacenter(make_dc("A"));
  const DcId b = topo.add_datacenter(make_dc("B"));
  topo.compute_routes();
  EXPECT_THROW(topo.route(a, b), std::logic_error);
}

TEST(Topology, RouteBeforeComputeThrows) {
  Topology topo;
  const DcId a = topo.add_datacenter(make_dc("A"));
  EXPECT_THROW(topo.route(a, a), std::logic_error);
}

TEST(Topology, DuplicateLinkRejected) {
  Topology topo;
  const DcId a = topo.add_datacenter(make_dc("A"));
  const DcId b = topo.add_datacenter(make_dc("B"));
  topo.add_link(a, b, wan());
  EXPECT_THROW(topo.add_link(a, b, wan()), std::logic_error);
}

TEST(DataCenter, TiersAndComponents) {
  auto dc = make_dc("NA");
  ServerSpec server = make_server_spec(TierNotation{2, 4, 32.0}, /*has_local_raid=*/true);
  dc->add_tier(TierKind::App, 2, server, LinkSpec{1e9, 0.0005, 0, 1.0});
  Tier* app = dc->tier(TierKind::App);
  ASSERT_NE(app, nullptr);
  EXPECT_EQ(app->server_count(), 2u);
  EXPECT_EQ(dc->tier(TierKind::Db), nullptr);
  // switch + client station + 2 x (nic + cpu + raid) + tier link.
  EXPECT_EQ(dc->owned_components().size(), 2u + 2u * 3u + 1u);
}

TEST(DataCenter, DuplicateTierRejected) {
  auto dc = make_dc("NA");
  ServerSpec server = make_server_spec(TierNotation{1, 4, 32.0}, true);
  dc->add_tier(TierKind::App, 1, server, LinkSpec{1e9, 0.0, 0, 1.0});
  EXPECT_THROW(dc->add_tier(TierKind::App, 1, server, LinkSpec{1e9, 0.0, 0, 1.0}),
               std::logic_error);
}

TEST(DataCenter, SanlessServerWithoutRaidRejected) {
  auto dc = make_dc("NA");
  ServerSpec server = make_server_spec(TierNotation{1, 4, 32.0}, /*has_local_raid=*/false);
  EXPECT_THROW(dc->add_tier(TierKind::Fs, 1, server, LinkSpec{1e9, 0.0, 0, 1.0}),
               std::logic_error);
}

TEST(Tier, DeterministicLoadBalancing) {
  auto dc = make_dc("NA");
  ServerSpec server = make_server_spec(TierNotation{3, 4, 32.0}, true);
  Tier& tier = dc->add_tier(TierKind::App, 3, server, LinkSpec{1e9, 0.0, 0, 1.0});
  EXPECT_EQ(&tier.pick_server(0), &tier.server(0));
  EXPECT_EQ(&tier.pick_server(4), &tier.server(1));
  EXPECT_EQ(&tier.pick_server(5), &tier.server(2));
}

TEST(Topology, RegisterWithSetsTickAndIds) {
  SerialEngine engine;
  SimulationLoop loop({0.02, 0}, engine);
  Topology topo;
  const DcId na = topo.add_datacenter(make_dc("NA"));
  ServerSpec server = make_server_spec(TierNotation{1, 4, 32.0}, true);
  topo.dc(na).add_tier(TierKind::App, 1, server, LinkSpec{1e9, 0.0, 0, 1.0});
  topo.compute_routes();
  topo.register_with(loop);
  EXPECT_EQ(loop.agent_count(), topo.all_components().size());
  for (Component* c : topo.all_components()) {
    EXPECT_DOUBLE_EQ(c->tick_seconds(), 0.02);
    EXPECT_NE(c->id(), kInvalidAgent);
  }
}

TEST(SpecConversion, ServerNotation) {
  ServerSpec s = make_server_spec(TierNotation{1, 16, 64.0, 3.0}, true);
  EXPECT_EQ(s.cpu.sockets, 2u);
  EXPECT_EQ(s.cpu.cores_per_socket, 8u);
  EXPECT_DOUBLE_EQ(s.cpu.frequency_hz, 3e9);
  EXPECT_DOUBLE_EQ(s.memory.capacity_bytes, 64.0 * (1ull << 30));
  EXPECT_TRUE(s.raid.has_value());

  ServerSpec small = make_server_spec(TierNotation{1, 4, 8.0}, false);
  EXPECT_EQ(small.cpu.sockets, 1u);
  EXPECT_EQ(small.cpu.cores_per_socket, 4u);
  EXPECT_FALSE(small.raid.has_value());
}

TEST(SpecConversion, SanNotationRpmToRate) {
  EXPECT_DOUBLE_EQ(make_san_spec(SanNotation{1, 10, 15000.0}).hdd_rate_Bps, 180e6);
  EXPECT_DOUBLE_EQ(make_san_spec(SanNotation{1, 10, 10000.0}).hdd_rate_Bps, 140e6);
  EXPECT_DOUBLE_EQ(make_san_spec(SanNotation{1, 10, 7200.0}).hdd_rate_Bps, 110e6);
}

TEST(SpecConversion, LinkNotation) {
  LinkSpec l = make_link_spec(LinkNotation{0.155, 90.0, 0.2});
  EXPECT_DOUBLE_EQ(l.bandwidth_bps, 155e6);
  EXPECT_DOUBLE_EQ(l.latency_seconds, 0.09);
  EXPECT_DOUBLE_EQ(l.allocated_fraction, 0.2);
}

}  // namespace
}  // namespace gdisim
