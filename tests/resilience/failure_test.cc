#include "resilience/failure.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "config/builder.h"
#include "core/engine.h"
#include "hardware/component.h"

namespace gdisim {
namespace {

struct FailoverWorld {
  std::unique_ptr<Topology> topology;
  std::unique_ptr<SerialEngine> engine;
  std::unique_ptr<SimulationLoop> loop;
  DcId na = 0, eu = 0, afr = 0;

  FailoverWorld() {
    InfrastructureBuilder builder(3);
    for (const char* name : {"NA", "EU", "AFR"}) {
      DataCenterBlueprint bp;
      bp.name = name;
      bp.tiers[TierKind::App] = TierNotation{2, 2, 16.0};
      builder.add_datacenter(bp);
    }
    builder.connect_duplex("NA", "EU", LinkNotation{0.155, 50.0, 1.0});
    builder.connect_duplex("NA", "AFR", LinkNotation{0.155, 50.0, 1.0});
    // Backup path, unused by default (thesis Table 6.1 EU->AFR rows).
    builder.connect_duplex("EU", "AFR", LinkNotation{0.045, 80.0, 1.0}, /*usable=*/false);
    topology = builder.finish();
    na = topology->find_dc("NA");
    eu = topology->find_dc("EU");
    afr = topology->find_dc("AFR");
    engine = std::make_unique<SerialEngine>();
    loop = std::make_unique<SimulationLoop>(SimLoopConfig{0.01, 0}, *engine);
    topology->register_with(*loop);
  }
};

TEST(FailureEvent, Factories) {
  FailureEvent down = FailureEvent::link_down(5.0, 1, 2);
  EXPECT_EQ(down.kind, FailureEvent::Kind::kLinkDown);
  EXPECT_DOUBLE_EQ(down.at_seconds, 5.0);
  EXPECT_EQ(down.from, 1u);
  EXPECT_EQ(down.to, 2u);
  FailureEvent up = FailureEvent::server_up(6.0, 0, TierKind::Db, 3);
  EXPECT_EQ(up.kind, FailureEvent::Kind::kServerUp);
  EXPECT_EQ(up.tier, TierKind::Db);
  EXPECT_EQ(up.server_index, 3u);
}

TEST(FailureInjector, LinkFailoverReroutesToBackup) {
  FailoverWorld world;
  // Initially NA->AFR is direct.
  ASSERT_EQ(world.topology->route(world.na, world.afr).size(), 1u);

  FailureInjector injector(*world.topology);
  injector.schedule(FailureEvent::link_down(0.5, world.na, world.afr));
  injector.schedule(FailureEvent::link_up(0.5, world.eu, world.afr));
  injector.install(*world.loop);
  EXPECT_EQ(injector.pending(), 2u);

  world.loop->run_for_seconds(1.0);
  EXPECT_EQ(injector.pending(), 0u);
  ASSERT_EQ(injector.applied().size(), 2u);

  // New route: NA -> EU -> AFR over the activated backup.
  const auto& r = world.topology->route(world.na, world.afr);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0], world.topology->link(world.na, world.eu));
  EXPECT_EQ(r[1], world.topology->link(world.eu, world.afr));
  EXPECT_FALSE(world.topology->link_usable(world.na, world.afr));
  EXPECT_TRUE(world.topology->link_usable(world.eu, world.afr));
}

TEST(FailureInjector, LinkRecoveryRestoresDirectRoute) {
  FailoverWorld world;
  FailureInjector injector(*world.topology);
  injector.schedule(FailureEvent::link_down(0.1, world.na, world.afr));
  injector.schedule(FailureEvent::link_up(0.1, world.eu, world.afr));
  injector.schedule(FailureEvent::link_up(0.5, world.na, world.afr));
  injector.install(*world.loop);
  world.loop->run_for_seconds(1.0);
  // Direct link is back; fewest-hop routing prefers it again.
  EXPECT_EQ(world.topology->route(world.na, world.afr).size(), 1u);
}

TEST(FailureInjector, ServerFailureSkipsDeadServer) {
  FailoverWorld world;
  Tier* app = world.topology->dc(world.na).tier(TierKind::App);
  ASSERT_EQ(app->alive_count(), 2u);

  FailureInjector injector(*world.topology);
  injector.schedule(FailureEvent::server_down(0.2, world.na, TierKind::App, 0));
  injector.install(*world.loop);
  world.loop->run_for_seconds(0.5);

  EXPECT_EQ(app->alive_count(), 1u);
  EXPECT_FALSE(app->server_alive(0));
  for (std::uint64_t key = 0; key < 16; ++key) {
    EXPECT_EQ(&app->pick_server(key), &app->server(1));
  }
}

TEST(FailureInjector, ServerRecoveryRestoresBalancing) {
  FailoverWorld world;
  Tier* app = world.topology->dc(world.na).tier(TierKind::App);
  FailureInjector injector(*world.topology);
  injector.schedule(FailureEvent::server_down(0.1, world.na, TierKind::App, 1));
  injector.schedule(FailureEvent::server_up(0.4, world.na, TierKind::App, 1));
  injector.install(*world.loop);
  world.loop->run_for_seconds(1.0);
  EXPECT_EQ(app->alive_count(), 2u);
  EXPECT_EQ(&app->pick_server(1), &app->server(1));
}

TEST(Tier, AllServersDeadFallsBackToFirst) {
  FailoverWorld world;
  Tier* app = world.topology->dc(world.na).tier(TierKind::App);
  app->set_server_alive(0, false);
  app->set_server_alive(1, false);
  EXPECT_EQ(app->alive_count(), 0u);
  EXPECT_EQ(&app->pick_server(7), &app->server(0));  // degraded mode
}

TEST(FailureInjector, EventsApplyAtTheScheduledTick) {
  FailoverWorld world;
  FailureInjector injector(*world.topology);
  injector.schedule(FailureEvent::link_down(0.5, world.na, world.afr));
  injector.install(*world.loop);
  world.loop->run_for_seconds(0.4);
  EXPECT_TRUE(world.topology->link_usable(world.na, world.afr));
  world.loop->run_for_seconds(0.2);
  EXPECT_FALSE(world.topology->link_usable(world.na, world.afr));
}

TEST(Topology, SetUsableOnUnknownLinkThrows) {
  FailoverWorld world;
  EXPECT_THROW(world.topology->set_link_usable(world.eu, world.eu, false), std::out_of_range);
}

// ---------------------------------------------------------------------------
// Failures interacting with quiesced (kNeverTick) agents under the
// active-set scheduler: a component that has been parked since registration
// must still serve work that arrives after a failover routes traffic to it.

struct StageRecorder final : StageCompletionHandler {
  std::vector<std::pair<Tick, std::uint64_t>> done;
  void on_stage_complete(Component& /*at*/, Tick now, std::uint64_t tag) override {
    done.emplace_back(now, tag);
  }
};

/// Stays in the active set until it has sent its one job, then parks itself.
class OneShotSender final : public Agent {
 public:
  OneShotSender(Component* target, Tick send_at, double work, StageCompletionHandler* handler)
      : target_(target), send_at_(send_at), work_(work), handler_(handler) {}

  void on_tick(Tick now) override {
    if (!sent_ && now >= send_at_) {
      target_->submit(now + 1, id(), next_send_seq(), StageJob{work_, handler_, 99, 1});
      sent_ = true;
    }
  }
  Tick next_wake_tick(Tick next_now) const override { return sent_ ? kNeverTick : next_now; }

 private:
  Component* target_;
  Tick send_at_;
  double work_;
  StageCompletionHandler* handler_;
  bool sent_ = false;
};

TEST(FailureInjector, TrafficAfterFailoverWakesParkedBackupLink) {
  FailoverWorld world;
  ASSERT_EQ(world.loop->scheduler_mode(), SchedulerMode::kActiveSet);

  // The backup link EU->AFR has never carried a job: it is parked
  // (kNeverTick) from the first iteration. Fail the primary over to it,
  // then submit a transfer after the failover tick.
  FailureInjector injector(*world.topology);
  injector.schedule(FailureEvent::link_down(0.5, world.na, world.afr));
  injector.schedule(FailureEvent::link_up(0.5, world.eu, world.afr));
  injector.install(*world.loop);

  LinkComponent* backup = world.topology->link(world.eu, world.afr);
  ASSERT_NE(backup, nullptr);
  StageRecorder rec;
  OneShotSender sender(backup, world.loop->clock().to_ticks(0.7), 1000.0, &rec);
  sender.set_name("test/sender");
  world.loop->add_agent(&sender);

  world.loop->run_for_seconds(1.5);

  // The delivery must have woken the parked component and been served.
  ASSERT_EQ(rec.done.size(), 1u);
  EXPECT_EQ(rec.done[0].second, 99u);
  EXPECT_EQ(backup->queue_length(), 0u);
}

TEST(FailureInjector, ServerEventsOnParkedServerDoNotLoseLaterWork) {
  FailoverWorld world;
  Tier* app = world.topology->dc(world.na).tier(TierKind::App);

  // Server 0 crashes and recovers while completely idle (its components are
  // parked the whole time). Work submitted after recovery must be served.
  FailureInjector injector(*world.topology);
  injector.schedule(FailureEvent::server_down(0.2, world.na, TierKind::App, 0));
  injector.schedule(FailureEvent::server_up(0.4, world.na, TierKind::App, 0));
  injector.install(*world.loop);

  StageRecorder rec;
  OneShotSender sender(&app->server(0).cpu(), world.loop->clock().to_ticks(0.6), 1e6, &rec);
  sender.set_name("test/sender");
  world.loop->add_agent(&sender);

  world.loop->run_for_seconds(1.5);

  EXPECT_TRUE(app->server_alive(0));
  ASSERT_EQ(rec.done.size(), 1u);
  EXPECT_EQ(rec.done[0].second, 99u);
}

}  // namespace
}  // namespace gdisim
