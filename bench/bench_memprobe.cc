// Counting replacements of the global allocation functions, linked into
// every bench target (see bench/CMakeLists.txt). The count is a relaxed
// atomic: benches only diff readings taken on the measuring thread, and a
// handful of lost updates under contention would not change the order of
// magnitude the perf trajectory tracks.
#include "bench_memprobe.h"

#include <sys/resource.h>

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>

namespace gdisim::bench {

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

std::uint64_t alloc_count() { return g_alloc_count.load(std::memory_order_relaxed); }

double peak_rss_mb() {
  struct rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0.0;
  return static_cast<double>(ru.ru_maxrss) / 1024.0;  // Linux reports KB
}

namespace {
void* counted_alloc(std::size_t size, std::size_t align) {
  if (size == 0) size = 1;
  void* p = align > alignof(std::max_align_t)
                ? std::aligned_alloc(align, (size + align - 1) / align * align)
                : std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return p;
}
}  // namespace

}  // namespace gdisim::bench

void* operator new(std::size_t size) { return gdisim::bench::counted_alloc(size, 0); }
void* operator new[](std::size_t size) { return gdisim::bench::counted_alloc(size, 0); }
void* operator new(std::size_t size, std::align_val_t al) {
  return gdisim::bench::counted_alloc(size, static_cast<std::size_t>(al));
}
void* operator new[](std::size_t size, std::align_val_t al) {
  return gdisim::bench::counted_alloc(size, static_cast<std::size_t>(al));
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return gdisim::bench::counted_alloc(size, 0);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return gdisim::bench::counted_alloc(size, 0);
  } catch (...) {
    return nullptr;
  }
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
