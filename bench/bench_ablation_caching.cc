// Ablation: memory cache-hit rate (thesis Figure 3-5 — "a cache hit is
// modeled by bypassing the subsequent queues"). Sweeping the hit rate shows
// how much the storage path (RAID/SAN) is shielded by RAM caching, and the
// knock-on effect on transfer-heavy operation latencies.
#include "bench_util.h"

using namespace gdisim;

namespace {

struct Point {
  double open_s = 0.0;
  double save_s = 0.0;
  double fs_util = 0.0;
};

Point run(double hit_rate) {
  ValidationOptions opt;
  opt.experiment = 3;  // heaviest disk pressure
  opt.mem_cache_hit = hit_rate;
  const double horizon = bench::fast_mode() ? 6.0 * 60.0 : 12.0 * 60.0;
  opt.stop_launch_s = horizon;
  Scenario scenario = make_validation_scenario(opt);
  SimulatorConfig cfg;
  cfg.threads = bench::bench_threads();
  GdiSimulator sim(std::move(scenario), cfg);
  sim.run_for(horizon);

  Point p;
  p.fs_util = sim.collector().find("cpu/NA/fs")->mean_between(horizon / 2, horizon);
  std::uint64_t n_open = 0, n_save = 0;
  for (auto& l : sim.scenario().launchers) {
    const auto& stats = l->stats();
    if (stats.count("CAD.OPEN")) {
      p.open_s += stats.at("CAD.OPEN").total_s;
      n_open += stats.at("CAD.OPEN").count;
    }
    if (stats.count("CAD.SAVE")) {
      p.save_s += stats.at("CAD.SAVE").total_s;
      n_save += stats.at("CAD.SAVE").count;
    }
  }
  if (n_open) p.open_s /= n_open;
  if (n_save) p.save_s /= n_save;
  return p;
}

}  // namespace

int main() {
  bench::header("Ablation: memory cache-hit rate",
                "Thesis Figure 3-5 — cache bypass of the storage queues");

  TableReport t({"hit rate", "OPEN mean (s)", "SAVE mean (s)", "fs cpu util"});
  for (double hit : {0.0, 0.30, 0.60, 0.90}) {
    const Point p = run(hit);
    t.add_row({TableReport::pct(hit, 0), TableReport::fmt(p.open_s), TableReport::fmt(p.save_s),
               TableReport::pct(p.fs_util)});
  }
  t.print(std::cout);
  bench::footnote(
      "Expected: higher hit rates bypass the SAN fork-join for a growing "
      "fraction of accesses; OPEN/SAVE shed their disk component while the "
      "CPU-bound share of fs utilization persists.");
  return 0;
}
