// Figure 7-6: SYNCHREP and INDEXBUILD response times in D_NA under the
// multiple-master configuration — roughly halved vs Figure 6-14
// (R_SR^max 31 -> ~19 min, R_IB^max 63 -> ~37 min in the thesis).
#include "background/file_tracker.h"
#include "bench_util.h"

using namespace gdisim;

namespace {

struct BgSummary {
  double sr_max_min, sr_exposure_min, ib_max_min, ib_exposure_min;
  double file_mean_stale_min = 0.0, file_p95_stale_min = 0.0;
  std::uint64_t files = 0;
};

BgSummary run(bool multimaster, double scale) {
  GlobalOptions opt;
  opt.scale = scale;
  Scenario scenario =
      multimaster ? make_multimaster_scenario(opt) : make_consolidated_scenario(opt);

  // Per-file staleness tracking (thesis §9.2.3 extension).
  FileTracker tracker(scenario.growth, scenario.apm, {0, 1, 2, 3, 4, 5, 6},
                      scenario.master_dc, 99);
  for (auto& sr : scenario.synchreps) sr->set_file_tracker(&tracker);

  SimulatorConfig cfg;
  cfg.collect_every_s = 60.0;
  cfg.threads = bench::bench_threads();
  GdiSimulator sim(std::move(scenario), cfg);
  sim.run_for(10.0 * 3600.0);
  sim.run_for(8.0 * 3600.0);  // cover the peak and the post-peak backlog

  SynchRepDaemon* sr = sim.scenario().synchrep_at(0);
  IndexBuildDaemon* ib = sim.scenario().indexbuild_at(0);
  BgSummary out;
  out.sr_max_min = sr->ledger().max_duration_s() / 60.0;
  out.sr_exposure_min = sr->max_staleness_s() / 60.0;
  out.ib_max_min = ib->ledger().max_duration_s() / 60.0;
  out.ib_exposure_min = ib->max_unsearchable_s() / 60.0;

  const StalenessDistribution staleness = tracker.pooled();
  out.file_mean_stale_min = staleness.mean_s() / 60.0;
  out.file_p95_stale_min = staleness.percentile_s(0.95) / 60.0;
  out.files = staleness.count();

  if (multimaster) {
    std::cout << "\nD_NA SYNCHREP runs (multiple master), by launch hour:\n";
    TableReport t({"Hour", "duration (min)", "volume (MB)"});
    for (const auto& rec : sr->ledger().runs()) {
      t.add_row({TableReport::fmt(rec.launch_hour, 2), TableReport::fmt(rec.duration_s / 60.0),
                 TableReport::fmt(rec.total_mb, 0)});
    }
    t.print(std::cout);
  }
  return out;
}

}  // namespace

int main() {
  bench::header("Multiple-master background process response times",
                "Figure 7-6 (D_NA SR & IB, vs Figure 6-14)");
  const double scale = bench::fast_mode() ? 0.05 : 0.10;

  const BgSummary mm = run(true, scale);
  const BgSummary single = run(false, scale);

  TableReport t({"Metric", "single master", "multiple master", "paper single", "paper mm"});
  t.add_row({"SR longest run (min)", TableReport::fmt(single.sr_max_min),
             TableReport::fmt(mm.sr_max_min), "~16", "~4-8"});
  t.add_row({"R_SR^max (min)", TableReport::fmt(single.sr_exposure_min),
             TableReport::fmt(mm.sr_exposure_min), "31", "19"});
  t.add_row({"IB longest run (min)", TableReport::fmt(single.ib_max_min),
             TableReport::fmt(mm.ib_max_min), "~55", "~30"});
  t.add_row({"R_IB^max (min)", TableReport::fmt(single.ib_exposure_min),
             TableReport::fmt(mm.ib_exposure_min), "63", "37"});
  t.add_row({"per-file staleness mean (min)", TableReport::fmt(single.file_mean_stale_min),
             TableReport::fmt(mm.file_mean_stale_min), "-", "-"});
  t.add_row({"per-file staleness p95 (min)", TableReport::fmt(single.file_p95_stale_min),
             TableReport::fmt(mm.file_p95_stale_min), "-", "-"});
  t.add_row({"files tracked", std::to_string(single.files), std::to_string(mm.files), "-",
             "-"});
  t.print(std::cout);
  bench::footnote(
      "Shape: per-owner volumes shrink, so both background processes finish "
      "faster and the worst-case staleness/unsearchability windows drop to "
      "roughly 55-60% of the single-master values.");
  return 0;
}
