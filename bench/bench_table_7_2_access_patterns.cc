// Tables 7.1 and 7.2: the access pattern matrices of the consolidated
// (single-master) and multiple-master infrastructures, plus the empirical
// owner distribution the client populations actually sample.
#include "bench_util.h"
#include "core/rng.h"

using namespace gdisim;

namespace {

void print_apm(const AccessPatternMatrix& apm, const char* title) {
  std::cout << "\n" << title << " (row = accessing DC, column = owner, %):\n";
  std::vector<std::string> headers{"Access \\ Owner"};
  for (int d = 0; d < 7; ++d) headers.push_back(kGlobalDcNames[d]);
  headers.push_back("Total");
  TableReport t(headers);
  for (DcId origin = 0; origin < 7; ++origin) {
    std::vector<std::string> row{kGlobalDcNames[origin]};
    double total = 0.0;
    for (DcId owner = 0; owner < 7; ++owner) {
      const double pct = apm.fraction(origin, owner) * 100.0;
      total += pct;
      row.push_back(TableReport::fmt(pct, 2));
    }
    row.push_back(TableReport::fmt(total, 0));
    t.add_row(row);
  }
  t.print(std::cout);
}

}  // namespace

int main() {
  bench::header("Access pattern matrices", "Tables 7.1 / 7.2");

  print_apm(AccessPatternMatrix::single_master(7, 0), "Table 7.1 — consolidated (all owned by D_NA)");
  print_apm(multimaster_apm(), "Table 7.2 — multiple master (measured APM)");

  // Empirical check: sampling the matrix converges to its rows.
  std::cout << "\nEmpirical owner sampling from D_EU (1M draws):\n";
  AccessPatternMatrix apm = multimaster_apm();
  Rng rng(7);
  std::vector<std::uint64_t> counts(7, 0);
  const int n = 1000000;
  for (int i = 0; i < n; ++i) ++counts[apm.sample_owner(1, rng.next_double())];
  TableReport t({"Owner", "sampled %", "table %"});
  for (DcId owner = 0; owner < 7; ++owner) {
    t.add_row({kGlobalDcNames[owner], TableReport::fmt(100.0 * counts[owner] / n, 2),
               TableReport::fmt(apm.fraction(1, owner) * 100.0, 2)});
  }
  t.print(std::cout);
  return 0;
}
