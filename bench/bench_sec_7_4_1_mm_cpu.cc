// §7.4.1: computational performance of the multiple-master infrastructure —
// D_NA keeps comparable utilization on half the app servers / half the db
// cores thanks to the global-workload and synchronization offload, while
// D_EU steps up as the second-largest master.
#include "bench_util.h"

using namespace gdisim;

int main() {
  bench::header("Multiple-master CPU utilization",
                "Section 7.4.1 (D_NA on half the hardware; D_EU as 2nd master)");
  GlobalOptions opt;
  opt.scale = bench::fast_mode() ? 0.05 : 0.10;

  Scenario scenario = make_multimaster_scenario(opt);
  SimulatorConfig cfg;
  cfg.collect_every_s = 60.0;
  cfg.threads = bench::bench_threads();
  GdiSimulator sim(std::move(scenario), cfg);

  sim.run_for(11.0 * 3600.0);
  sim.run_for(5.0 * 3600.0);  // cover 11:00-16:00 GMT

  const double t0 = 12.0 * 3600.0, t1 = 16.0 * 3600.0;
  struct Row {
    const char* label;
    const char* paper;
  };
  const Row rows[] = {
      {"cpu/NA/app", "~78% (4 servers vs 8)"},
      {"cpu/NA/db", "~39% (half the cores)"},
      {"cpu/EU/app", "~57% (3 servers)"},
      {"cpu/EU/db", "~48%"},
      {"cpu/AS1/app", "(small master)"},
      {"cpu/SA/app", "(small master)"},
  };
  TableReport t({"Tier", "mean util 12-16 GMT", "peak", "paper"});
  for (const Row& r : rows) {
    const TimeSeries* s = sim.collector().find(r.label);
    if (s == nullptr) continue;
    t.add_row({r.label, TableReport::pct(s->mean_between(t0, t1)),
               TableReport::pct(s->max_value()), r.paper});
  }
  t.print(std::cout);
  bench::footnote(
      "Shape: D_NA stays in a healthy band on half the hardware because "
      "~82% of its requests are local and other regions now route most "
      "traffic to their own masters (Table 7.2); D_EU needs real capacity "
      "as the second-largest owner.");
  return 0;
}
