// Figures 6-10 and 6-11: data growth (MB/h) by data center, and the volume
// to be transferred during the SYNCHREP pull/push phases to/from D_NA.
#include "bench_util.h"

using namespace gdisim;

int main() {
  bench::header("Data growth and SYNCHREP transfer volumes",
                "Figures 6-10 / 6-11 (MB per hour / per 15-min run)");
  GlobalOptions opt;
  opt.scale = 0.10;
  Scenario scenario = make_consolidated_scenario(opt);

  std::cout << "\nData growth (MB/h) by data center (Figure 6-10):\n";
  {
    std::vector<std::string> headers{"Hour"};
    for (int d = 0; d < 7; ++d) headers.push_back(kGlobalDcNames[d]);
    headers.push_back("Global");
    TableReport t(headers);
    for (int h = 0; h < 24; h += 2) {
      std::vector<std::string> row{std::to_string(h) + ":00"};
      double total = 0.0;
      for (DcId d = 0; d < 7; ++d) {
        const double v = scenario.growth.rate_mb_per_hour(d, h);
        total += v;
        row.push_back(TableReport::fmt(v, 0));
      }
      row.push_back(TableReport::fmt(total, 0));
      t.add_row(row);
    }
    t.print(std::cout);
  }

  std::cout << "\nPull/Push volumes per 15-min SYNCHREP run to/from D_NA (Figure 6-11):\n";
  {
    std::vector<std::string> headers{"Hour"};
    for (int d = 1; d < 7; ++d) headers.push_back(std::string(kGlobalDcNames[d]) + " pull");
    for (int d = 1; d < 7; ++d) headers.push_back(std::string(kGlobalDcNames[d]) + " push");
    headers.push_back("Total");
    TableReport t(headers);
    double peak_total = 0.0;
    for (int h = 0; h < 24; h += 2) {
      std::vector<std::string> row{std::to_string(h) + ":00"};
      const double h0 = h, h1 = h + 0.25;
      double new_mb[7];
      double total_new = 0.0;
      for (DcId d = 0; d < 7; ++d) {
        new_mb[d] = scenario.growth.generated_mb(d, h0, h1);
        total_new += new_mb[d];
      }
      double run_total = 0.0;
      for (DcId d = 1; d < 7; ++d) {
        row.push_back(TableReport::fmt(new_mb[d], 0));
        run_total += new_mb[d];
      }
      for (DcId d = 1; d < 7; ++d) {
        const double push = total_new - new_mb[d];
        row.push_back(TableReport::fmt(push, 0));
        run_total += push;
      }
      peak_total = std::max(peak_total, run_total);
      row.push_back(TableReport::fmt(run_total, 0));
      t.add_row(row);
    }
    t.print(std::cout);
    std::cout << "peak pull+push per run: " << TableReport::fmt(peak_total, 0)
              << " MB (thesis at full scale: ~14250 MB; scaled target ~"
              << TableReport::fmt(14250 * opt.scale, 0) << ")\n";
  }
  bench::footnote(
      "Shape: volumes peak during 12:00-15:00 GMT when NA and EU overlap; NA "
      "and EU dominate generation, so their pushes dominate the WAN load.");
  return 0;
}
