// Ablation: parallelizable index build (thesis §9.1.1/§6.3.3).
//
// The thesis keeps INDEXBUILD single-threaded because relationship analysis
// "might not be parallelizable", and this serialization is what produces the
// cumulative backlog of Figure 6-14 (R_IB^max well above R_SR^max). This
// bench answers the thesis' own future-work question: how much of that
// exposure disappears if the index build could fork across q cores?
#include "bench_util.h"

using namespace gdisim;

namespace {

struct Point {
  double ib_longest_min = 0.0;
  double r_ib_max_min = 0.0;
  double idx_util = 0.0;
  std::size_t runs = 0;
};

Point run(unsigned parallelism) {
  GlobalOptions opt;
  opt.scale = 0.05;
  opt.indexbuild_parallelism = parallelism;
  Scenario scenario = make_consolidated_scenario(opt);
  SimulatorConfig cfg;
  cfg.collect_every_s = 60.0;
  cfg.threads = bench::bench_threads();
  GdiSimulator sim(std::move(scenario), cfg);
  sim.run_for(10.0 * 3600.0);
  sim.run_for(8.0 * 3600.0);

  Point p;
  IndexBuildDaemon* ib = sim.scenario().indexbuild_at(0);
  p.ib_longest_min = ib->ledger().max_duration_s() / 60.0;
  p.r_ib_max_min = ib->max_unsearchable_s() / 60.0;
  p.runs = ib->ledger().runs().size();
  p.idx_util =
      sim.collector().find("cpu/NA/idx")->mean_between(12.0 * 3600.0, 18.0 * 3600.0);
  return p;
}

}  // namespace

int main() {
  bench::header("Ablation: parallelizable INDEXBUILD",
                "Thesis §9.1.1 future work — multithreaded index build what-if");

  TableReport t({"index cores", "longest run (min)", "R_IB^max (min)", "runs", "idx util"});
  for (unsigned cores : {1u, 2u, 4u, 8u}) {
    const Point p = run(cores);
    t.add_row({std::to_string(cores), TableReport::fmt(p.ib_longest_min, 1),
               TableReport::fmt(p.r_ib_max_min, 1), std::to_string(p.runs),
               TableReport::pct(p.idx_util)});
  }
  t.print(std::cout);
  bench::footnote(
      "Expected: the single-core build accumulates backlog through the peak "
      "(the Figure 6-14 lag); each doubling of index cores cuts run duration "
      "and lets more runs fit in the day, collapsing R_IB^max toward the "
      "launch delay + interval floor. Total cycles are unchanged, so idx "
      "utilization stays flat.");
  return 0;
}
