// Figures 5-7..5-10 and Table 5.2: CPU utilization of T_app, T_db, T_fs and
// T_idx per experiment — steady-state mean and standard deviation, physical
// reference vs simulated.
//
// Substitution (DESIGN.md §1): the "physical" system is a reference
// realization of the same scenario with an independent seed plus
// measurement noise; the "simulated" system is the default-seed run. Both
// exercise the full model; Table 5.2 compares their steady-state moments.
#include "bench_util.h"
#include "core/rng.h"

using namespace gdisim;

namespace {

struct TierMoments {
  double mean[4];    // app, db, fs, idx
  double stddev[4];
};

TierMoments run(int experiment, std::uint64_t seed, bool add_noise) {
  ValidationOptions opt;
  opt.experiment = experiment;
  opt.seed = seed;
  const double horizon_s = bench::fast_mode() ? 14.0 * 60.0 : 38.0 * 60.0;
  opt.stop_launch_s = horizon_s - 4.0 * 60.0;
  Scenario scenario = make_validation_scenario(opt);

  SimulatorConfig cfg;
  cfg.collect_every_s = 6.0;
  cfg.threads = bench::bench_threads();
  GdiSimulator sim(std::move(scenario), cfg);
  sim.run_for(horizon_s);

  const char* labels[4] = {"cpu/NA/app", "cpu/NA/db", "cpu/NA/fs", "cpu/NA/idx"};
  const double t0 = 4.0 * 60.0;
  const double t1 = horizon_s - 4.0 * 60.0;
  TierMoments m{};
  Rng noise(seed * 31 + 7);
  for (int i = 0; i < 4; ++i) {
    const TimeSeries* s = sim.collector().find(labels[i]);
    if (!add_noise) {
      m.mean[i] = s->mean_between(t0, t1);
      m.stddev[i] = s->stddev_between(t0, t1);
    } else {
      // Measurement noise of a real profiler: ~2% multiplicative jitter.
      TimeSeries noisy(labels[i]);
      for (const Sample& sample : s->samples()) {
        noisy.append(sample.t_seconds, sample.value * (1.0 + noise.next_normal(0.0, 0.02)));
      }
      m.mean[i] = noisy.mean_between(t0, t1);
      m.stddev[i] = noisy.stddev_between(t0, t1);
    }
  }
  return m;
}

}  // namespace

int main() {
  bench::header("CPU utilization by tier and experiment",
                "Figures 5-7..5-10 / Table 5.2 (steady-state mean & stddev, %)");

  const char* tiers[4] = {"T_app", "T_db", "T_fs", "T_idx"};
  // Table 5.2 paper values (physical mean, simulated mean) per experiment.
  const double paper_mean[3][4] = {{55.84, 39.04, 40.60, 19.04},
                                   {71.60, 49.20, 49.87, 29.20},
                                   {81.81, 57.20, 56.68, 36.99}};

  for (int exp = 1; exp <= 3; ++exp) {
    std::cout << "\nExperiment-" << exp << ":\n";
    const TierMoments phys = run(exp, /*seed=*/1000 + exp, /*add_noise=*/true);
    const TierMoments simu = run(exp, /*seed=*/42, /*add_noise=*/false);
    TableReport t({"Tier", "mu phys (sim)", "mu sim (sim)", "sigma phys", "sigma sim",
                   "mu paper-phys"});
    for (int i = 0; i < 4; ++i) {
      t.add_row({tiers[i], TableReport::pct(phys.mean[i]), TableReport::pct(simu.mean[i]),
                 TableReport::pct(phys.stddev[i]), TableReport::pct(simu.stddev[i]),
                 TableReport::fmt(paper_mean[exp - 1][i], 2) + "%"});
    }
    t.print(std::cout);
  }
  bench::footnote(
      "Shape: utilization ordering app > db ~ fs > idx in every experiment; "
      "Experiment-3 loads every tier hardest; simulated moments track the "
      "reference within a few percentage points.");
  return 0;
}
