// Ablation: SYNCHREP launch interval (thesis §6.3.3): "it is necessary to
// find a synchronization operation frequency that yields a compromise,
// keeping R^max_SR at acceptable levels whilst not exposing the
// infrastructure to the risk of saturation." This bench sweeps dT_SR and
// reports both sides of that compromise.
#include "bench_util.h"

using namespace gdisim;

namespace {

struct Point {
  double r_sr_max_min = 0.0;
  double longest_run_min = 0.0;
  double na_as1_util = 0.0;
  double na_app_util = 0.0;
};

Point run(double interval_s) {
  GlobalOptions opt;
  opt.scale = 0.05;
  opt.synchrep_interval_s = interval_s;
  Scenario scenario = make_consolidated_scenario(opt);
  SimulatorConfig cfg;
  cfg.collect_every_s = 60.0;
  cfg.threads = bench::bench_threads();
  GdiSimulator sim(std::move(scenario), cfg);
  sim.run_for(11.0 * 3600.0);
  sim.run_for(6.0 * 3600.0);

  Point p;
  SynchRepDaemon* sr = sim.scenario().synchrep_at(0);
  p.r_sr_max_min = sr->max_staleness_s() / 60.0;
  p.longest_run_min = sr->ledger().max_duration_s() / 60.0;
  const double t0 = 12.0 * 3600.0, t1 = 16.0 * 3600.0;
  p.na_as1_util = sim.collector().find("net/NA->AS1")->mean_between(t0, t1);
  p.na_app_util = sim.collector().find("cpu/NA/app")->mean_between(t0, t1);
  return p;
}

}  // namespace

int main() {
  bench::header("Ablation: SYNCHREP interval vs staleness and saturation",
                "Thesis §6.3.3 — the dT_SR compromise");

  TableReport t({"dT_SR (min)", "R_SR^max (min)", "longest run (min)", "NA->AS1 util",
                 "NA app util"});
  for (double minutes : {5.0, 15.0, 30.0, 60.0}) {
    const Point p = run(minutes * 60.0);
    t.add_row({TableReport::fmt(minutes, 0), TableReport::fmt(p.r_sr_max_min, 1),
               TableReport::fmt(p.longest_run_min, 1), TableReport::pct(p.na_as1_util),
               TableReport::pct(p.na_app_util)});
  }
  t.print(std::cout);
  bench::footnote(
      "Expected: shorter intervals reduce staleness exposure but overlap "
      "more concurrent runs on the WAN; very long intervals batch huge "
      "transfers whose duration grows, so R_SR^max stops improving. The "
      "thesis operates at 15 min.");
  return 0;
}
