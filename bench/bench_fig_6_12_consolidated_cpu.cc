// Figures 6-12 and 6-13: CPU utilization through the day in D_NA (all four
// tiers) and D_AUS (file tier), with the logged-in/active client counts.
#include "bench_util.h"

using namespace gdisim;

int main() {
  bench::header("Consolidated infrastructure: CPU utilization through the day",
                "Figures 6-12 (D_NA tiers) / 6-13 (D_AUS file tier)");
  GlobalOptions opt;
  opt.scale = bench::fast_mode() ? 0.05 : 0.10;

  Scenario scenario = make_consolidated_scenario(opt);
  SimulatorConfig cfg;
  cfg.collect_every_s = 60.0;
  cfg.threads = bench::bench_threads();
  GdiSimulator sim(std::move(scenario), cfg);

  const double hours = bench::fast_mode() ? 8.0 : 24.0;
  const double start_h = bench::fast_mode() ? 9.0 : 0.0;
  if (start_h > 0) sim.run_for(start_h * 3600.0);
  sim.run_for(hours * 3600.0);

  auto print_hourly = [&](const std::vector<const char*>& labels) {
    std::vector<std::string> headers{"Hour"};
    for (const char* l : labels) headers.push_back(l);
    TableReport t(headers);
    for (double h = start_h; h < start_h + hours; h += 1.0) {
      std::vector<std::string> row{TableReport::fmt(h, 0) + ":00"};
      for (const char* l : labels) {
        const TimeSeries* s = sim.collector().find(l);
        if (s == nullptr) {
          row.push_back("-");
          continue;
        }
        const double v = s->mean_between(h * 3600, (h + 1) * 3600);
        const bool is_count = std::string(l).rfind("clients/", 0) == 0;
        row.push_back(is_count ? TableReport::fmt(v, 0) : TableReport::pct(v));
      }
      t.add_row(row);
    }
    t.print(std::cout);
  };

  std::cout << "\nD_NA tiers + world client counts (Figure 6-12):\n";
  print_hourly({"cpu/NA/app", "cpu/NA/db", "cpu/NA/idx", "cpu/NA/fs", "clients/logged_in",
                "clients/active"});
  std::cout << "\nD_AUS file tier (Figure 6-13):\n";
  print_hourly({"cpu/AUS/fs"});

  const TimeSeries* app = sim.collector().find("cpu/NA/app");
  std::cout << "\nPeak D_NA app-tier utilization: " << TableReport::pct(app->max_value())
            << " (thesis: ~73% at 15:00 GMT)\n";
  bench::footnote(
      "Shape: every operation is authorized through D_NA, so T_app in NA is "
      "the hottest tier, peaking with the 12:00-16:00 GMT overlap; T_fs in "
      "AUS tracks only the local (small) population.");
  return 0;
}
