// Figures 7-4 and 7-5: pull/push volumes per SYNCHREP run to/from D_NA and
// D_EU in the multiple-master infrastructure, and the headline reduction of
// D_NA's peak volume vs the consolidated infrastructure (~43%).
#include "bench_util.h"

using namespace gdisim;

namespace {

double peak_run_volume(const AccessPatternMatrix& apm, const DataGrowthModel& growth,
                       DcId home, bool apply_apm, TableReport* table) {
  double peak = 0.0;
  for (int h = 0; h < 24; h += 2) {
    const double h0 = h, h1 = h + 0.25;
    double new_mb[7];
    double total_new = 0.0;
    for (DcId d = 0; d < 7; ++d) {
      const double frac = apply_apm ? owned_growth_fraction(apm, d, home) : 1.0;
      new_mb[d] = growth.generated_mb(d, h0, h1) * frac;
      total_new += new_mb[d];
    }
    double pull = 0.0, push = 0.0;
    for (DcId d = 0; d < 7; ++d) {
      if (d != home) pull += new_mb[d];
    }
    for (DcId d = 0; d < 7; ++d) {
      if (d != home) push += total_new - new_mb[d];
    }
    peak = std::max(peak, pull + push);
    if (table != nullptr) {
      table->add_row({std::to_string(h) + ":00", TableReport::fmt(pull, 0),
                      TableReport::fmt(push, 0), TableReport::fmt(pull + push, 0)});
    }
  }
  return peak;
}

}  // namespace

int main() {
  bench::header("Multiple-master SYNCHREP transfer volumes",
                "Figures 7-4 (D_NA) / 7-5 (D_EU); headline ~43% reduction");
  GlobalOptions opt;
  opt.scale = 0.10;
  Scenario mm = make_multimaster_scenario(opt);

  std::cout << "\nD_NA pull/push per 15-min run (Figure 7-4):\n";
  TableReport tna({"Hour", "Pull (MB)", "Push (MB)", "Total (MB)"});
  const double na_peak = peak_run_volume(mm.apm, mm.growth, 0, true, &tna);
  tna.print(std::cout);

  std::cout << "\nD_EU pull/push per 15-min run (Figure 7-5):\n";
  TableReport teu({"Hour", "Pull (MB)", "Push (MB)", "Total (MB)"});
  const double eu_peak = peak_run_volume(mm.apm, mm.growth, 1, true, &teu);
  teu.print(std::cout);

  const double single_peak =
      peak_run_volume(mm.apm, mm.growth, 0, /*apply_apm=*/false, nullptr);
  std::cout << "\nPeak per-run volume, D_NA single-master: " << TableReport::fmt(single_peak, 0)
            << " MB\n"
            << "Peak per-run volume, D_NA multiple-master: " << TableReport::fmt(na_peak, 0)
            << " MB (reduction " << TableReport::pct(1.0 - na_peak / single_peak)
            << ", thesis ~43%)\n"
            << "Peak per-run volume, D_EU multiple-master: " << TableReport::fmt(eu_peak, 0)
            << " MB\n";
  bench::footnote(
      "Shape: each master now moves only its owned subset; NA's peak volume "
      "drops to roughly 55-60% of the single-master volume, and EU carries "
      "the second-largest share.");
  return 0;
}
