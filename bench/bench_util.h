// Shared helpers for the per-table/per-figure bench binaries.
#pragma once

#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_memprobe.h"
#include "metrics/report.h"
#include "sim/gdisim.h"

namespace gdisim::bench {

/// Wall-clock stopwatch for reporting bench runtimes.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void header(const std::string& title, const std::string& paper_ref) {
  std::cout << "==============================================================\n"
            << title << "\n"
            << "Reproduces: " << paper_ref << "\n"
            << "==============================================================\n";
}

inline void footnote(const std::string& note) {
  std::cout << "\nNOTE: " << note << "\n\n";
}

/// Environment knob: GDISIM_BENCH_FAST=1 shrinks simulated horizons so the
/// whole bench suite finishes quickly in CI; default runs the full windows.
inline bool fast_mode() {
  const char* v = std::getenv("GDISIM_BENCH_FAST");
  return v != nullptr && v[0] == '1';
}

inline std::size_t bench_threads() {
  const char* v = std::getenv("GDISIM_BENCH_THREADS");
  if (v != nullptr) return static_cast<std::size_t>(std::atoi(v));
  // Default to the host's spare parallelism; 0 => run phases inline.
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 1 ? hw - 1 : 0;
}

/// Machine-readable bench results: an ordered flat map of string/number
/// fields written to BENCH_<name>.json (in $GDISIM_BENCH_JSON_DIR, or the
/// working directory) — the raw material for the perf trajectory. Typical
/// fields: scenario, wall_seconds, sim_ticks, ticks_per_second,
/// active_set_occupancy.
class JsonResult {
 public:
  explicit JsonResult(std::string bench_name)
      : name_(std::move(bench_name)), alloc_base_(alloc_count()) {
    set("bench", name_);
    set("fast_mode", fast_mode() ? 1.0 : 0.0);
  }

  void set(const std::string& key, const std::string& value) {
    fields_.emplace_back(key, quote(value));
  }
  void set(const std::string& key, double value) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    fields_.emplace_back(key, std::string(buf));
  }

  /// Convenience: wall time + derived rate + scheduler occupancy in one go.
  void set_run(const std::string& scenario, double wall_seconds, double sim_ticks,
               const SchedulerStats& sched) {
    set("scenario", scenario);
    set("wall_seconds", wall_seconds);
    set("sim_ticks", sim_ticks);
    set("ticks_per_second", wall_seconds > 0.0 ? sim_ticks / wall_seconds : 0.0);
    set("mean_active_agents", sched.mean_active());
    set("active_set_occupancy", sched.occupancy());
    set("agents", static_cast<double>(sched.agents));
  }

  /// Writes BENCH_<name>.json; returns false (with a note on stderr) if the
  /// file cannot be opened. Every bench JSON automatically carries the
  /// process peak RSS and the heap-allocation count since this JsonResult
  /// was constructed, so memory regressions show up in the perf trajectory
  /// without per-bench plumbing.
  bool write() {
    set("peak_rss_mb", peak_rss_mb());
    set("alloc_delta", static_cast<double>(alloc_count() - alloc_base_));
    return write_file();
  }

 private:
  bool write_file() const {
    const char* dir = std::getenv("GDISIM_BENCH_JSON_DIR");
    const std::string path =
        (dir != nullptr && dir[0] != '\0' ? std::string(dir) + "/" : std::string()) +
        "BENCH_" + name_ + ".json";
    std::ofstream out(path);
    if (!out) {
      std::cerr << "bench: cannot write " << path << "\n";
      return false;
    }
    out << "{\n";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      out << "  " << quote(fields_[i].first) << ": " << fields_[i].second
          << (i + 1 < fields_.size() ? "," : "") << "\n";
    }
    out << "}\n";
    std::cout << "wrote " << path << "\n";
    return true;
  }

  static std::string quote(const std::string& s) {
    std::string q = "\"";
    for (char c : s) {
      if (c == '"' || c == '\\') q += '\\';
      q += c;
    }
    q += '"';
    return q;
  }

  std::string name_;
  std::uint64_t alloc_base_;
  std::vector<std::pair<std::string, std::string>> fields_;
};

}  // namespace gdisim::bench
