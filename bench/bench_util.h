// Shared helpers for the per-table/per-figure bench binaries.
#pragma once

#include <chrono>
#include <thread>
#include <iostream>
#include <string>

#include "metrics/report.h"
#include "sim/gdisim.h"

namespace gdisim::bench {

/// Wall-clock stopwatch for reporting bench runtimes.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void header(const std::string& title, const std::string& paper_ref) {
  std::cout << "==============================================================\n"
            << title << "\n"
            << "Reproduces: " << paper_ref << "\n"
            << "==============================================================\n";
}

inline void footnote(const std::string& note) {
  std::cout << "\nNOTE: " << note << "\n\n";
}

/// Environment knob: GDISIM_BENCH_FAST=1 shrinks simulated horizons so the
/// whole bench suite finishes quickly in CI; default runs the full windows.
inline bool fast_mode() {
  const char* v = std::getenv("GDISIM_BENCH_FAST");
  return v != nullptr && v[0] == '1';
}

inline std::size_t bench_threads() {
  const char* v = std::getenv("GDISIM_BENCH_THREADS");
  if (v != nullptr) return static_cast<std::size_t>(std::atoi(v));
  // Default to the host's spare parallelism; 0 => run phases inline.
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 1 ? hw - 1 : 0;
}

}  // namespace gdisim::bench
