// Scale frontier (ISSUE 7): sweep the consolidated global scenario across
// population scales and chart, per scale point, the client capacity, the
// simulation rate, and the memory footprint. "Sustainable" means the
// simulator advances simulated time at least as fast as wall time on this
// host (realtime ratio >= 1); the frontier is the largest sustainable scale.
//
// Scales sweep ascending so the per-point peak-RSS delta approximates the
// footprint of that scenario: each simulator is destroyed before the next
// point starts, and a larger scenario pushes the process high-water mark up
// by roughly its own incremental footprint.
#include <iomanip>

#include "bench_util.h"

using namespace gdisim;

namespace {

struct ScalePoint {
  double scale = 0.0;
  double clients = 0.0;  // summed population slot capacity
  double wall_seconds = 0.0;
  double sim_ticks = 0.0;
  double ticks_per_second = 0.0;
  double realtime_ratio = 0.0;  // sim seconds per wall second
  double rss_before_mb = 0.0;
  double rss_after_mb = 0.0;
  double bytes_per_client = 0.0;
  double alloc_delta = 0.0;
};

std::string key(double scale, const char* suffix) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "s%g_%s", scale, suffix);
  return buf;
}

}  // namespace

int main() {
  bench::header("Scale frontier: consolidated scenario beyond the default 10% scale",
                "Ch. 6 infrastructure at scale 0.1 .. 2.0 (DESIGN.md, Memory layout)");

  // CI perf-smoke (fast mode) runs a tiny simulated window on two scales so
  // the leg finishes in seconds while still exercising scale-1.0
  // construction; the full sweep charts the whole frontier.
  const bool fast = bench::fast_mode();
  const std::vector<double> scales =
      fast ? std::vector<double>{0.1, 1.0} : std::vector<double>{0.1, 0.25, 0.5, 1.0, 2.0};
  const double hours = fast ? 0.05 : 2.0;

  bench::JsonResult json("scale_frontier");
  json.set("scenario", "consolidated");
  json.set("hours", hours);

  std::vector<ScalePoint> points;
  for (double scale : scales) {
    GlobalOptions opt;
    opt.scale = scale;

    ScalePoint pt;
    pt.scale = scale;
    pt.rss_before_mb = bench::peak_rss_mb();
    const std::uint64_t alloc_before = bench::alloc_count();
    {
      Scenario scenario = make_consolidated_scenario(opt);
      for (const auto& p : scenario.populations)
        pt.clients += static_cast<double>(p->slot_count());

      SimulatorConfig cfg;
      cfg.threads = bench::bench_threads();
      GdiSimulator sim(std::move(scenario), cfg);

      bench::Stopwatch watch;
      sim.run_for(hours * 3600.0);
      pt.wall_seconds = watch.seconds();
      pt.sim_ticks = static_cast<double>(sim.loop().now());
    }
    pt.rss_after_mb = bench::peak_rss_mb();
    pt.alloc_delta = static_cast<double>(bench::alloc_count() - alloc_before);
    pt.ticks_per_second = pt.wall_seconds > 0 ? pt.sim_ticks / pt.wall_seconds : 0.0;
    pt.realtime_ratio =
        pt.wall_seconds > 0 ? hours * 3600.0 / pt.wall_seconds : 0.0;
    pt.bytes_per_client =
        pt.clients > 0 ? (pt.rss_after_mb - pt.rss_before_mb) * 1024.0 * 1024.0 / pt.clients
                       : 0.0;
    points.push_back(pt);

    json.set(key(scale, "clients"), pt.clients);
    json.set(key(scale, "wall_seconds"), pt.wall_seconds);
    json.set(key(scale, "sim_ticks"), pt.sim_ticks);
    json.set(key(scale, "ticks_per_second"), pt.ticks_per_second);
    json.set(key(scale, "realtime_ratio"), pt.realtime_ratio);
    json.set(key(scale, "peak_rss_mb"), pt.rss_after_mb);
    json.set(key(scale, "bytes_per_client"), pt.bytes_per_client);
    json.set(key(scale, "alloc_delta"), pt.alloc_delta);
  }

  // The frontier: largest sustainable scale (and its client count).
  double frontier_scale = 0.0, frontier_clients = 0.0;
  for (const ScalePoint& pt : points) {
    if (pt.realtime_ratio >= 1.0 && pt.scale > frontier_scale) {
      frontier_scale = pt.scale;
      frontier_clients = pt.clients;
    }
  }
  json.set("max_sustainable_scale", frontier_scale);
  json.set("max_sustainable_clients", frontier_clients);

  TableReport t({"Scale", "Clients", "Ticks/s", "xRealtime", "PeakRSS MB", "B/client"});
  for (const ScalePoint& pt : points) {
    t.add_row({TableReport::fmt(pt.scale, 2), TableReport::fmt(pt.clients, 0),
               TableReport::fmt(pt.ticks_per_second, 0), TableReport::fmt(pt.realtime_ratio, 1),
               TableReport::fmt(pt.rss_after_mb, 1), TableReport::fmt(pt.bytes_per_client, 0)});
  }
  t.print(std::cout);
  std::cout << "\nMax sustainable scale on this host: " << frontier_scale << " ("
            << static_cast<std::size_t>(frontier_clients) << " clients)\n";

  const bool ok = json.write();
  bench::footnote(
      "Realtime ratio is simulated seconds per wall second; the frontier is "
      "the largest scale that still runs at least as fast as real time. "
      "Bytes/client uses the peak-RSS delta of the ascending sweep and is an "
      "upper-bound approximation.");
  return ok ? 0 : 1;
}
