// Shared agent population for the Ch. 4 scalability benches.
//
// The thesis measured engine scalability while simulating a six-data-center
// infrastructure with 432 cores and 168 disks — every agent integrates real
// queueing work on every tick. This header builds an equivalent population:
// queue-backed agents that are never idle, so the per-tick computation per
// agent matches the workload regime in which Table 4.1/4.2 were measured.
#pragma once

#include <memory>
#include <vector>

#include "core/agent.h"
#include "core/engine.h"
#include "core/sim_loop.h"
#include "queueing/fcfs_queue.h"
#include "queueing/fork_join.h"

namespace gdisim::bench {

/// A hardware-like agent whose queues always have work: each tick advances
/// a multi-socket CPU model and a disk model, refilling jobs as they
/// complete (a saturated server, the worst case for the engine). The agent
/// is allocation-free after warmup — cross-thread heap churn would
/// otherwise serialize the run on the allocator, which is a property of the
/// *memory manager*, not of the dispatch mechanism Table 4.2 measures (the
/// thesis makes the same point about C# garbage collection).
class BusyQueueAgent final : public Agent {
 public:
  BusyQueueAgent() : cpu_(8, 2.5e9), disks_(4, 150e6) { refill(); }

  void on_tick(Tick) override {
    cpu_.advance(0.001);
    disks_.advance(0.001);
    refill();
  }

 private:
  void refill() {
    while (cpu_.total_jobs() < 48) cpu_.enqueue(2e6, nullptr);
    while (disks_.total_jobs() < 12) disks_.enqueue(3e5, nullptr);
  }

  FcfsMultiServerQueue cpu_;
  FcfsMultiServerQueue disks_;
};

struct ScalabilityWorld {
  std::vector<std::unique_ptr<BusyQueueAgent>> agents;
  std::unique_ptr<SimulationLoop> loop;

  ScalabilityWorld(std::size_t agent_count, ExecutionEngine& engine) {
    loop = std::make_unique<SimulationLoop>(SimLoopConfig{0.001, 0}, engine);
    agents.reserve(agent_count);
    for (std::size_t i = 0; i < agent_count; ++i) {
      agents.push_back(std::make_unique<BusyQueueAgent>());
      loop->add_agent(agents.back().get());
    }
  }
};

/// Agents mirroring the thesis infrastructure size: 14 servers' worth of
/// sockets, SAN/RAID arrays, switches, links and client populations.
inline constexpr std::size_t kScalabilityAgents = 600;

}  // namespace gdisim::bench
