// Table 4.1 / Figure 4-4: multicore scalability of the classic
// Scatter-Gather mechanism. One dispatcher work item is created per agent
// per phase; the per-handler overhead of pairing the message with the
// handler and pushing it through the dispatcher queue cancels the parallel
// speedup, exactly as the thesis reports.
#include <atomic>

#include "bench_scenario_scalability.h"
#include "bench_util.h"
#include "core/scatter_gather.h"

using namespace gdisim;

namespace {

double run_ticks(ExecutionEngine& engine, Tick ticks) {
  bench::ScalabilityWorld world(bench::kScalabilityAgents, engine);
  world.loop->run_until(ticks / 10);  // warmup
  bench::Stopwatch sw;
  world.loop->run_until(world.loop->now() + ticks);
  return sw.seconds();
}

/// Per-handler dispatch overhead: time to push an (almost) empty handler
/// through the mechanism, amortized per agent. This isolates the quantity
/// the thesis blames for Table 4.1's flat speedup, and is measurable even
/// on a single-core host.
double dispatch_overhead_ns(ExecutionEngine& engine) {
  std::atomic<std::uint64_t> sink{0};
  const std::size_t agents = 4096;
  const int rounds = 200;
  bench::Stopwatch sw;
  for (int r = 0; r < rounds; ++r) {
    engine.for_each(agents, [&sink](std::size_t i) {
      sink.fetch_add(i, std::memory_order_relaxed);
    });
  }
  return sw.seconds() / (double(agents) * rounds) * 1e9;
}

void environment_note() {
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw <= 1) {
    std::cout << "\nENVIRONMENT: this host exposes a single CPU core; wall-clock\n"
                 "speedup > 1x is physically impossible here. The per-handler\n"
                 "dispatch overhead above is the thread-count-independent quantity\n"
                 "that produces the thesis' speedup curves on multicore hosts.\n";
  }
}

}  // namespace

int main() {
  bench::header("Classic Scatter-Gather multicore scalability",
                "Table 4.1 / Figure 4-4 (simulation time & speedup vs #threads)");

  const Tick ticks = bench::fast_mode() ? 500 : 2000;
  TableReport t({"# of Threads", "Wall time (s)", "Speedup (x)", "Linear (x)",
                 "Dispatch overhead (ns/handler)"});
  double base = 0.0;
  for (std::size_t threads : {1u, 2u, 4u, 8u, 16u}) {
    ScatterGatherEngine engine(threads);
    const double wall = run_ticks(engine, ticks);
    if (threads == 1) base = wall;
    ScatterGatherEngine probe(threads);
    t.add_row({std::to_string(threads), TableReport::fmt(wall, 2),
               TableReport::fmt(base / wall, 2), TableReport::fmt(double(threads), 2),
               TableReport::fmt(dispatch_overhead_ns(probe), 0)});
  }
  t.print(std::cout);
  environment_note();
  bench::footnote(
      "Thesis shape (Table 4.1): speedup pinned near 1.0x at every thread "
      "count — the work inside each handler is too small to amortize the "
      "per-handler dispatch overhead shown in the last column.");
  return 0;
}
