// §5.3.3 memory validation: the physical servers show a *flat* memory
// profile (kernel/runtime pools dominate) while the workload-driven model
// predicts orders-of-magnitude smaller dynamic occupancy — the thesis'
// honest negative result, reproduced here by reporting both views.
#include "bench_util.h"

using namespace gdisim;

int main() {
  bench::header("Memory validation: model vs observed (pool-dominated)",
                "Section 5.3.3 (flat physical profile vs workload-driven model)");

  ValidationOptions opt;
  opt.experiment = 2;
  const double horizon_s = bench::fast_mode() ? 10.0 * 60.0 : 20.0 * 60.0;
  opt.stop_launch_s = horizon_s;
  Scenario scenario = make_validation_scenario(opt);

  SimulatorConfig cfg;
  cfg.threads = bench::bench_threads();
  GdiSimulator sim(std::move(scenario), cfg);
  sim.run_for(horizon_s);

  struct TierInfo {
    const char* label;
    TierKind kind;
    double paper_observed_gb;
  };
  const TierInfo tiers[] = {{"T_app", TierKind::App, 32.0},
                            {"T_db", TierKind::Db, 28.0},
                            {"T_fs", TierKind::Fs, 12.0},
                            {"T_idx", TierKind::Idx, 12.0}};

  TableReport t({"Tier", "model peak (GB)", "observed/pool (GB)", "paper observed (GB)"});
  DataCenter& na = sim.scenario().dc("NA");
  for (const TierInfo& ti : tiers) {
    Tier* tier = na.tier(ti.kind);
    const std::string label = std::string("mem/NA/") + tier_kind_name(ti.kind);
    const TimeSeries* s = sim.collector().find(label);
    const double model_peak_gb = s->max_value() / (1ull << 30);
    double observed_gb = 0.0;
    for (std::size_t i = 0; i < tier->server_count(); ++i) {
      observed_gb += tier->server(i).memory().observed_bytes() / (1ull << 30);
    }
    t.add_row({ti.label, TableReport::fmt(model_peak_gb, 3), TableReport::fmt(observed_gb, 1),
               TableReport::fmt(ti.paper_observed_gb, 1)});
  }
  t.print(std::cout);
  bench::footnote(
      "Thesis conclusion (reproduced): the workload-driven occupancy is "
      "orders of magnitude below the flat pool reservation, so the memory "
      "model needs OS/runtime effects to be useful. The 'observed' column is "
      "flat at the pool size regardless of workload.");
  return 0;
}
