// Figure 6-14: response time of the SYNCHREP and INDEXBUILD background
// processes through the day, plus R_SR^max and R_IB^max.
#include "bench_util.h"

using namespace gdisim;

int main() {
  bench::header("Background process response times",
                "Figure 6-14 (SR & IB durations by hour; R_SR^max, R_IB^max)");
  GlobalOptions opt;
  opt.scale = bench::fast_mode() ? 0.05 : 0.10;

  Scenario scenario = make_consolidated_scenario(opt);
  SimulatorConfig cfg;
  cfg.collect_every_s = 60.0;
  cfg.threads = bench::bench_threads();
  GdiSimulator sim(std::move(scenario), cfg);

  const double hours = bench::fast_mode() ? 12.0 : 24.0;
  const double start_h = bench::fast_mode() ? 8.0 : 0.0;
  bench::Stopwatch sw;
  if (start_h > 0) sim.run_for(start_h * 3600.0);
  sim.run_for(hours * 3600.0);
  const double wall = sw.seconds();

  bench::JsonResult json("fig_6_14_background");
  json.set_run("consolidated", wall, static_cast<double>(sim.loop().now()),
               sim.loop().scheduler_stats());
  json.write();

  SynchRepDaemon* sr = sim.scenario().synchreps.at(0).get();
  IndexBuildDaemon* ib = sim.scenario().indexbuilds.at(0).get();

  std::cout << "\nSYNCHREP run durations by launch hour:\n";
  TableReport t({"Hour", "SR duration (min)", "SR volume (MB)"});
  for (const auto& run : sr->ledger().runs()) {
    t.add_row({TableReport::fmt(run.launch_hour, 2), TableReport::fmt(run.duration_s / 60.0),
               TableReport::fmt(run.total_mb, 0)});
  }
  t.print(std::cout);

  std::cout << "\nINDEXBUILD run durations by launch hour:\n";
  TableReport t2({"Hour", "IB duration (min)", "IB volume (MB)"});
  for (const auto& run : ib->ledger().runs()) {
    t2.add_row({TableReport::fmt(run.launch_hour, 2), TableReport::fmt(run.duration_s / 60.0),
                TableReport::fmt(run.total_mb, 0)});
  }
  t2.print(std::cout);

  std::cout << "\nR_SR^max = " << TableReport::fmt(sr->max_staleness_s() / 60.0)
            << " min (thesis ~31 min)\n"
            << "R_IB^max = " << TableReport::fmt(ib->max_unsearchable_s() / 60.0)
            << " min (thesis ~63 min)\n";
  bench::footnote(
      "Shape: SR durations peak with the 12:00-15:00 GMT data-generation "
      "peak; IB lags it (launch-after-completion accumulates backlog), so "
      "its worst response lands *after* the workload peak (~17:00 in the "
      "thesis).");
  return 0;
}
