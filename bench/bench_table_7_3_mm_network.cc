// Table 7.3: WAN link utilization of the multiple-master infrastructure
// during 12:00-16:00 GMT — higher than Table 6.1 because six concurrent
// SYNCHREP processes share the same links.
#include "bench_util.h"

using namespace gdisim;

int main() {
  bench::header("Multiple-master WAN link utilization",
                "Table 7.3 (12:00-16:00 GMT, % of allocated capacity)");
  GlobalOptions opt;
  opt.scale = bench::fast_mode() ? 0.05 : 0.10;

  Scenario scenario = make_multimaster_scenario(opt);
  SimulatorConfig cfg;
  cfg.collect_every_s = 30.0;
  cfg.threads = bench::bench_threads();
  GdiSimulator sim(std::move(scenario), cfg);

  sim.run_for(11.0 * 3600.0);
  sim.run_for(5.0 * 3600.0);

  struct Row {
    const char* link;
    double paper_pct;
  };
  const Row rows[] = {
      {"net/NA->SA", 53},  {"net/NA->EU", 51},   {"net/NA->AS1", 76},
      {"net/EU->AFR", 0},  {"net/EU->AS1", 0},   {"net/AS1->AFR", 67},
      {"net/AS1->AS2", 56}, {"net/AS1->AUS", 66},
  };
  const double t0 = 12.0 * 3600.0, t1 = 16.0 * 3600.0;
  TableReport t({"Link", "mu_U sim", "mu_U paper (Table 7.3)", "Table 6.1 (single)"});
  const double single_paper[] = {48, 43, 59, 0, 0, 53, 47, 54};
  int i = 0;
  for (const Row& r : rows) {
    const TimeSeries* s = sim.collector().find(r.link);
    t.add_row({r.link, s ? TableReport::pct(s->mean_between(t0, t1)) : "-",
               TableReport::fmt(r.paper_pct, 0) + "%",
               TableReport::fmt(single_paper[i], 0) + "%"});
    ++i;
  }
  t.print(std::cout);
  bench::footnote(
      "Shape: every row rises vs Table 6.1 (concurrent SYNCHREP transfers "
      "from six masters share the links); NA->AS1 remains the busiest. The "
      "thesis suggests activating the EU backup links to relieve it.");
  return 0;
}
