// Table 5.1: duration of each CAD operation by series type (Light / Average
// / Heavy), measured as the canonical cost — a single isolated operation on
// the downscaled validation infrastructure.
#include "bench_util.h"

using namespace gdisim;

namespace {

double canonical_duration_s(const std::string& op, double size_mb) {
  ValidationOptions opt;
  opt.stop_launch_s = 0.0;
  Scenario scenario = make_validation_scenario(opt);
  HDispatchEngine engine(0, 64);
  SimulationLoop loop({scenario.tick_seconds, 0}, engine);
  scenario.register_with(loop);

  LaunchParams params;
  params.origin_dc = scenario.master_dc;
  params.size_mb = size_mb;
  params.instance_serial = 1;
  params.launcher_id = 9999;
  params.rng_seed = 4242;

  bool done = false;
  Tick end = 0;
  OperationInstance instance(scenario.catalog->get(op), *scenario.ctx, params,
                             [&](OperationInstance&, Tick t) {
                               done = true;
                               end = t;
                             });
  instance.start(loop.now());
  while (!done && loop.now() < 100000) loop.step();
  return done ? end * scenario.tick_seconds : -1.0;
}

}  // namespace

int main() {
  bench::header("Canonical operation durations by series",
                "Table 5.1 (Light / Average / Heavy series, seconds)");

  struct Row {
    const char* op;
    double paper_light, paper_avg, paper_heavy;
  };
  const Row rows[] = {
      {"CAD.LOGIN", 1.94, 2.2, 2.35},
      {"CAD.TEXT-SEARCH", 4.9, 5.11, 4.99},
      {"CAD.FILTER", 2.89, 2.6, 3.0},
      {"CAD.EXPLORE", 6.6, 6.43, 5.92},
      {"CAD.SPATIAL-SEARCH", 12.18, 12.15, 12.38},
      {"CAD.SELECT", 5.7, 6.2, 5.34},
      {"CAD.OPEN", 30.67, 64.68, 96.48},
      {"CAD.SAVE", 36.8, 78.21, 113.01},
  };

  TableReport t({"Operation", "Light (sim)", "Light (paper)", "Avg (sim)", "Avg (paper)",
                 "Heavy (sim)", "Heavy (paper)"});
  double total_l = 0, total_a = 0, total_h = 0;
  for (const Row& r : rows) {
    const double l = canonical_duration_s(r.op, SeriesSizes::kLightMb);
    const double a = canonical_duration_s(r.op, SeriesSizes::kAverageMb);
    const double h = canonical_duration_s(r.op, SeriesSizes::kHeavyMb);
    total_l += l;
    total_a += a;
    total_h += h;
    t.add_row({r.op, TableReport::fmt(l), TableReport::fmt(r.paper_light), TableReport::fmt(a),
               TableReport::fmt(r.paper_avg), TableReport::fmt(h),
               TableReport::fmt(r.paper_heavy)});
  }
  t.add_row({"TOTAL", TableReport::fmt(total_l), "101.68", TableReport::fmt(total_a), "177.58",
             TableReport::fmt(total_h), "243.47"});
  t.print(std::cout);
  bench::footnote(
      "Shape check: metadata ops are size-invariant; OPEN/SAVE scale with the "
      "file (~1.1 s/MB slope, SAVE ~20% above OPEN).");
  return 0;
}
