// Table 4.2 / Figure 4-6: multicore scalability of the H-Dispatch mechanism
// (agent set = 64), plus an ablation over agent-set sizes (the thesis notes
// 64 delivered the best results).
#include <atomic>

#include "bench_scenario_scalability.h"
#include "bench_util.h"
#include "core/h_dispatch.h"

using namespace gdisim;

namespace {

double run_ticks(ExecutionEngine& engine, Tick ticks, double* occupancy = nullptr) {
  bench::ScalabilityWorld world(bench::kScalabilityAgents, engine);
  world.loop->run_until(ticks / 10);  // warmup
  bench::Stopwatch sw;
  world.loop->run_until(world.loop->now() + ticks);
  if (occupancy != nullptr) *occupancy = world.loop->scheduler_stats().occupancy();
  return sw.seconds();
}

/// Per-handler dispatch overhead: time to push an (almost) empty handler
/// through the mechanism, amortized per agent. This isolates the quantity
/// the thesis blames for Table 4.1's flat speedup, and is measurable even
/// on a single-core host.
double dispatch_overhead_ns(ExecutionEngine& engine) {
  std::atomic<std::uint64_t> sink{0};
  const std::size_t agents = 4096;
  const int rounds = 200;
  bench::Stopwatch sw;
  for (int r = 0; r < rounds; ++r) {
    engine.for_each(agents, [&sink](std::size_t i) {
      sink.fetch_add(i, std::memory_order_relaxed);
    });
  }
  return sw.seconds() / (double(agents) * rounds) * 1e9;
}

void environment_note() {
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw <= 1) {
    std::cout << "\nENVIRONMENT: this host exposes a single CPU core; wall-clock\n"
                 "speedup > 1x is physically impossible here. The per-handler\n"
                 "dispatch overhead above is the thread-count-independent quantity\n"
                 "that produces the thesis' speedup curves on multicore hosts.\n";
  }
}

}  // namespace

int main() {
  bench::header("H-Dispatch multicore scalability (Agent Set = 64)",
                "Table 4.2 / Figure 4-6 (simulation time & speedup vs #threads)");

  const Tick ticks = bench::fast_mode() ? 500 : 2000;
  TableReport t({"# of Threads", "Wall time (s)", "Speedup (x)", "Linear (x)",
                 "Dispatch overhead (ns/handler)"});
  bench::JsonResult json("scalability_h_dispatch");
  json.set("scenario", "busy-queue full load");
  json.set("sim_ticks", static_cast<double>(ticks));
  double base = 0.0;
  for (std::size_t threads : {1u, 2u, 4u, 8u, 16u}) {
    HDispatchEngine engine(threads, 64);
    double occupancy = 1.0;
    const double wall = run_ticks(engine, ticks, &occupancy);
    if (threads == 1) {
      base = wall;
      json.set("wall_seconds", wall);
      json.set("ticks_per_second", wall > 0.0 ? static_cast<double>(ticks) / wall : 0.0);
      json.set("active_set_occupancy", occupancy);
    }
    json.set("wall_seconds_t" + std::to_string(threads), wall);
    HDispatchEngine probe(threads, 64);
    t.add_row({std::to_string(threads), TableReport::fmt(wall, 2),
               TableReport::fmt(base / wall, 2), TableReport::fmt(double(threads), 2),
               TableReport::fmt(dispatch_overhead_ns(probe), 1)});
  }
  t.print(std::cout);

  std::cout << "\nAblation: agent-set size at " << bench::bench_threads()
            << " threads (thesis: 64 is best):\n";
  TableReport a({"Agent Set", "Wall time (s)"});
  for (std::size_t set : {1u, 8u, 64u, 256u}) {
    HDispatchEngine engine(bench::bench_threads(), set);
    a.add_row({std::to_string(set), TableReport::fmt(run_ticks(engine, ticks), 2)});
  }
  a.print(std::cout);
  json.write();
  environment_note();
  bench::footnote(
      "Thesis shape (Table 4.2): 1.7x @ 2 threads growing to ~8x @ 16 with "
      "efficiency decaying from ~85% to ~50%. The enabling property is the "
      "order-of-magnitude smaller per-handler overhead vs Scatter-Gather "
      "(last column; compare bench_scalability_scatter_gather).");
  return 0;
}
