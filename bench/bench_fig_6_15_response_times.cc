// Figures 6-15..6-20 and Table 6.2: operation response times through the
// day for CAD / VIS / PDM in D_NA and D_AUS, and the latency penalty of
// operating far from the master.
#include "bench_util.h"

using namespace gdisim;

namespace {

void print_population(ClientPopulation* pop) {
  if (pop == nullptr) {
    std::cout << "(population not present at this scale)\n";
    return;
  }
  TableReport t({"Operation", "count", "mean (s)", "min (s)", "max (s)"});
  for (const auto& [op, stats] : pop->stats()) {
    t.add_row({op, std::to_string(stats.count), TableReport::fmt(stats.mean()),
               TableReport::fmt(stats.min_s), TableReport::fmt(stats.max_s)});
  }
  t.print(std::cout);
}

}  // namespace

int main() {
  bench::header("Client response times by application and data center",
                "Figures 6-15..6-20 / Table 6.2");
  GlobalOptions opt;
  opt.scale = bench::fast_mode() ? 0.05 : 0.10;

  Scenario scenario = make_consolidated_scenario(opt);
  SimulatorConfig cfg;
  cfg.collect_every_s = 60.0;
  cfg.threads = bench::bench_threads();
  GdiSimulator sim(std::move(scenario), cfg);

  // Cover both the NA and AUS business windows.
  const double hours = bench::fast_mode() ? 10.0 : 24.0;
  const double start_h = bench::fast_mode() ? 12.0 : 0.0;
  if (start_h > 0) sim.run_for(start_h * 3600.0);
  sim.run_for(hours * 3600.0);

  for (const char* app : {"CAD", "VIS", "PDM"}) {
    std::cout << "\n" << app << " response times in D_NA:\n";
    print_population(sim.scenario().population(std::string(app) + "@NA"));
  }
  for (const char* app : {"CAD", "VIS", "PDM"}) {
    std::cout << "\n" << app << " response times in D_AUS:\n";
    print_population(sim.scenario().population(std::string(app) + "@AUS"));
  }

  // Table 6.2: latency penalty for CAD operations launched from D_AUS.
  std::cout << "\nTable 6.2 — CAD latency penalty in D_AUS vs D_NA:\n";
  ClientPopulation* na = sim.scenario().population("CAD@NA");
  ClientPopulation* aus = sim.scenario().population("CAD@AUS");
  if (na != nullptr && aus != nullptr) {
    struct PaperRow {
      const char* op;
      double paper_pct;
    };
    const PaperRow paper[] = {
        {"CAD.LOGIN", 64.54},         {"CAD.TEXT-SEARCH", 27.39}, {"CAD.FILTER", 53.84},
        {"CAD.EXPLORE", 141.52},      {"CAD.SPATIAL-SEARCH", 80.65}, {"CAD.SELECT", 79.03},
        {"CAD.OPEN", 1.08},           {"CAD.SAVE", 0.89},
    };
    TableReport t({"Operation", "R_NA (s)", "R_AUS (s)", "dR (s)", "dR/R_NA", "paper dR/R_NA"});
    for (const PaperRow& pr : paper) {
      const auto ita = na->stats().find(pr.op);
      const auto itb = aus->stats().find(pr.op);
      if (ita == na->stats().end() || itb == aus->stats().end()) continue;
      const double rna = ita->second.mean();
      const double raus = itb->second.mean();
      t.add_row({pr.op, TableReport::fmt(rna), TableReport::fmt(raus),
                 TableReport::fmt(raus - rna), TableReport::pct((raus - rna) / rna),
                 TableReport::fmt(pr.paper_pct, 1) + "%"});
    }
    t.print(std::cout);
  }
  bench::footnote(
      "Shape: response times are workload-agnostic below saturation; chatty "
      "metadata operations (EXPLORE, SPATIAL-SEARCH, SELECT) suffer large "
      "relative latency penalties from AUS, bulky OPEN/SAVE ~1% (files are "
      "served by the local T_fs).");
  return 0;
}
