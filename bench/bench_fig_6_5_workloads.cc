// Figures 6-5, 6-6, 6-7: CAD / VIS / PDM hourly workloads by data center —
// the synthetic enterprise workload generator output, printed as hourly
// logged-in client counts (scaled populations; see EXPERIMENTS.md).
#include "bench_util.h"

using namespace gdisim;

namespace {

void print_app(Scenario& scenario, const std::string& app, double expected_global_peak,
               double scale) {
  std::cout << "\n" << app << " workload (logged-in clients by hour, scale=" << scale
            << "):\n";
  std::vector<std::string> headers{"Hour"};
  std::vector<ClientPopulation*> pops;
  for (auto& p : scenario.populations) {
    if (p->config().name.rfind(app + "@", 0) == 0) {
      pops.push_back(p.get());
      headers.push_back(p->config().name.substr(app.size() + 1));
    }
  }
  headers.push_back("Global");
  TableReport t(headers);
  double global_peak = 0.0;
  for (int h = 0; h < 24; h += 2) {
    std::vector<std::string> row{std::to_string(h) + ":00"};
    double total = 0.0;
    for (ClientPopulation* p : pops) {
      const double v = p->config().curve.at_hour(h);
      total += v;
      row.push_back(TableReport::fmt(v, 0));
    }
    global_peak = std::max(global_peak, total);
    row.push_back(TableReport::fmt(total, 0));
    t.add_row(row);
  }
  t.print(std::cout);
  std::cout << "global peak: " << TableReport::fmt(global_peak, 0) << " (paper at scale 1.0: ~"
            << TableReport::fmt(expected_global_peak, 0) << ", scaled: ~"
            << TableReport::fmt(expected_global_peak * scale, 0) << ")\n";
}

}  // namespace

int main() {
  bench::header("Application workloads by data center",
                "Figures 6-5 / 6-6 / 6-7 (hourly CAD, VIS, PDM client curves)");
  GlobalOptions opt;
  opt.scale = 0.10;
  Scenario scenario = make_consolidated_scenario(opt);
  print_app(scenario, "CAD", 2000, opt.scale);
  print_app(scenario, "VIS", 2500, opt.scale);
  print_app(scenario, "PDM", 1400, opt.scale);
  bench::footnote(
      "Shape: per-DC business-hour trapezoids; the global peak lands in the "
      "12:00-16:00 GMT window where NA and SA overlap EU.");
  return 0;
}
