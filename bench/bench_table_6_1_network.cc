// Table 6.1: average utilization of the allocated (20%) capacity during the
// 12:00-16:00 GMT interval for each WAN link of the consolidated
// infrastructure, including the idle EU backup links.
#include "bench_util.h"

using namespace gdisim;

int main() {
  bench::header("WAN link utilization during the global peak",
                "Table 6.1 (12:00-16:00 GMT, % of allocated capacity)");
  GlobalOptions opt;
  opt.scale = bench::fast_mode() ? 0.05 : 0.10;

  Scenario scenario = make_consolidated_scenario(opt);
  SimulatorConfig cfg;
  cfg.collect_every_s = 30.0;
  cfg.threads = bench::bench_threads();
  GdiSimulator sim(std::move(scenario), cfg);

  sim.run_for(11.0 * 3600.0);         // warm up to just before the window
  sim.run_for(5.0 * 3600.0);          // cover 11:00-16:00

  struct Row {
    const char* link;
    double paper_pct;
  };
  const Row rows[] = {
      {"net/NA->SA", 48},  {"net/NA->EU", 43},   {"net/NA->AS1", 59},
      {"net/EU->AFR", 0},  {"net/EU->AS1", 0},   {"net/AS1->AFR", 53},
      {"net/AS1->AS2", 47}, {"net/AS1->AUS", 54},
  };
  const double t0 = 12.0 * 3600.0, t1 = 16.0 * 3600.0;
  TableReport t({"Link", "mu_U sim", "mu_U paper"});
  for (const Row& r : rows) {
    const TimeSeries* s = sim.collector().find(r.link);
    t.add_row({r.link, s ? TableReport::pct(s->mean_between(t0, t1)) : "-",
               TableReport::fmt(r.paper_pct, 0) + "%"});
  }
  t.print(std::cout);
  bench::footnote(
      "Shape: NA->AS1 is the busiest (it carries pushes to four data "
      "centers); the EU backup links stay at 0% because routing ignores "
      "them; spoke links from AS1 run ~50%.");
  return 0;
}
