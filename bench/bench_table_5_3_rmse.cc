// Table 5.3: Root Mean Square Error between the physical reference and the
// simulated run, for CPU per tier, concurrent clients, and response times.
#include "bench_util.h"
#include "core/rng.h"
#include "metrics/stats.h"

using namespace gdisim;

namespace {

struct RunSeries {
  TimeSeries cpu[4] = {TimeSeries("app"), TimeSeries("db"), TimeSeries("fs"),
                       TimeSeries("idx")};
  TimeSeries clients{"clients"};
  double mean_response_s = 0.0;
};

RunSeries run(int experiment, std::uint64_t seed, bool add_noise) {
  ValidationOptions opt;
  opt.experiment = experiment;
  opt.seed = seed;
  const double horizon_s = bench::fast_mode() ? 14.0 * 60.0 : 38.0 * 60.0;
  opt.stop_launch_s = horizon_s - 4.0 * 60.0;
  Scenario scenario = make_validation_scenario(opt);

  SimulatorConfig cfg;
  cfg.collect_every_s = 6.0;
  cfg.threads = bench::bench_threads();
  GdiSimulator sim(std::move(scenario), cfg);
  sim.run_for(horizon_s);

  RunSeries out;
  const char* labels[4] = {"cpu/NA/app", "cpu/NA/db", "cpu/NA/fs", "cpu/NA/idx"};
  Rng noise(seed * 17 + 3);
  for (int i = 0; i < 4; ++i) {
    const TimeSeries* s = sim.collector().find(labels[i]);
    for (const Sample& sample : s->samples()) {
      const double v =
          add_noise ? sample.value * (1.0 + noise.next_normal(0.0, 0.02)) : sample.value;
      out.cpu[i].append(sample.t_seconds, v);
    }
  }
  // Concurrent clients: sum of the three series launchers.
  const TimeSeries* light = sim.collector().find("series/series/light");
  const TimeSeries* avg = sim.collector().find("series/series/average");
  const TimeSeries* heavy = sim.collector().find("series/series/heavy");
  if (light && avg && heavy) {
    for (std::size_t i = 0; i < light->size(); ++i) {
      out.clients.append(light->samples()[i].t_seconds,
                         light->samples()[i].value + avg->samples()[i].value +
                             heavy->samples()[i].value);
    }
  }
  double total = 0.0;
  std::uint64_t count = 0;
  for (auto& l : sim.scenario().launchers) {
    for (const auto& [op, stats] : l->stats()) {
      total += stats.total_s;
      count += stats.count;
    }
  }
  out.mean_response_s = count ? total / count : 0.0;
  return out;
}

}  // namespace

int main() {
  bench::header("Validation accuracy: RMSE by experiment and measurement",
                "Table 5.3 (RMSE between physical reference and simulation)");

  TableReport t({"Experiment", "CPU Tapp", "CPU Tdb", "CPU Tfs", "CPU Tidx", "#C", "R"});
  for (int exp = 1; exp <= 3; ++exp) {
    const RunSeries phys = run(exp, 1000 + exp, /*add_noise=*/true);
    const RunSeries simu = run(exp, 42, /*add_noise=*/false);
    std::string cells[4];
    for (int i = 0; i < 4; ++i) {
      cells[i] = TableReport::pct(rmse(phys.cpu[i], simu.cpu[i]));
    }
    // Concurrent-client RMSE normalized by the mean level, as a fraction.
    const double client_rmse = rmse(phys.clients, simu.clients);
    const double client_mean =
        phys.clients.mean_between(0, phys.clients.samples().back().t_seconds + 1);
    const double resp_err = std::abs(phys.mean_response_s - simu.mean_response_s) /
                            std::max(1e-9, phys.mean_response_s);
    t.add_row({"Exp-" + std::to_string(exp), cells[0], cells[1], cells[2], cells[3],
               TableReport::pct(client_mean > 0 ? client_rmse / client_mean : 0.0),
               TableReport::pct(resp_err)});
  }
  t.print(std::cout);
  bench::footnote(
      "Thesis: CPU RMSE ~5-13% (Tdb/Tapp largest), concurrent clients "
      "5.1-6.5%, response time 5.0-6.9%. Our reference differs only by seed "
      "and profiler noise, so errors land at the low end of those bands.");
  return 0;
}
