// Ablation: the sub-tick "instant stage" optimization (DESIGN.md §4,
// hardware/component.h). Sweeping the threshold shows the accuracy/speed
// trade: 0 disables the optimization (every metadata hop costs a full tick
// of queueing machinery), larger values skip more stages. The default 0.25
// must leave canonical durations essentially unchanged while cutting wall
// time substantially.
#include "bench_util.h"

using namespace gdisim;

namespace {

struct Point {
  double login_s = 0.0;
  double open_s = 0.0;
  double app_util = 0.0;
  double wall_s = 0.0;
};

Point run(double threshold) {
  ValidationOptions opt;
  opt.experiment = 2;
  const double horizon = bench::fast_mode() ? 6.0 * 60.0 : 12.0 * 60.0;
  opt.stop_launch_s = horizon;
  Scenario scenario = make_validation_scenario(opt);
  scenario.ctx->set_instant_fraction(threshold);

  SimulatorConfig cfg;
  cfg.threads = bench::bench_threads();
  GdiSimulator sim(std::move(scenario), cfg);
  bench::Stopwatch sw;
  sim.run_for(horizon);

  Point p;
  p.wall_s = sw.seconds();
  p.app_util = sim.collector().find("cpu/NA/app")->mean_between(horizon / 2, horizon);
  for (auto& l : sim.scenario().launchers) {
    const auto& stats = l->stats();
    if (stats.count("CAD.LOGIN")) p.login_s = stats.at("CAD.LOGIN").mean();
    if (stats.count("CAD.OPEN")) p.open_s = stats.at("CAD.OPEN").mean();
    break;  // light series is representative
  }
  return p;
}

}  // namespace

int main() {
  bench::header("Ablation: sub-tick stage threshold",
                "DESIGN.md §4 — accuracy vs speed of the instant-stage optimization");

  TableReport t({"threshold (x tick)", "LOGIN mean (s)", "OPEN mean (s)", "app util",
                 "wall time (s)"});
  for (double threshold : {0.0, 0.1, 0.25, 0.5, 1.0}) {
    const Point p = run(threshold);
    t.add_row({TableReport::fmt(threshold, 2), TableReport::fmt(p.login_s),
               TableReport::fmt(p.open_s), TableReport::pct(p.app_util),
               TableReport::fmt(p.wall_s, 2)});
  }
  t.print(std::cout);
  bench::footnote(
      "Expected: durations shift by at most a few tick-lengths per message "
      "hop across thresholds <= 0.5, while wall time drops as tiny network "
      "stages stop consuming full scheduling rounds. Utilization is "
      "threshold-invariant because skipped work is still accounted.");
  return 0;
}
