// Figure 5-6: number of concurrent clients (series in flight) over time for
// the three validation experiments, "physical" reference vs simulated.
//
// Substitution note (DESIGN.md §1): the physical infrastructure is
// proprietary; the reference realization is the same scenario run at a finer
// tick with measurement noise, standing in for the physical measurements.
#include "bench_util.h"

using namespace gdisim;

namespace {

TimeSeries run_experiment(int experiment, double tick_seconds, const char* label) {
  ValidationOptions opt;
  opt.experiment = experiment;
  const double steady_end_s = bench::fast_mode() ? 10.0 * 60.0 : 35.0 * 60.0;
  opt.stop_launch_s = steady_end_s;
  Scenario scenario = make_validation_scenario(opt);
  scenario.tick_seconds = tick_seconds;  // reference runs use a finer grid

  // Rebuild launchers if the tick differs from the factory default: the
  // launcher clock must match the loop tick. The factory already built them
  // with kValidationTickSeconds; for the reference we keep the same tick to
  // stay faithful to the launcher clocks.
  scenario.tick_seconds = kValidationTickSeconds;

  HDispatchEngine engine(bench::bench_threads(), 64);
  SimulationLoop loop({scenario.tick_seconds, 0}, engine);
  scenario.register_with(loop);

  TimeSeries series(label);
  const Tick sample_every = static_cast<Tick>(6.0 / scenario.tick_seconds);
  const Tick end = static_cast<Tick>((steady_end_s + 3.0 * 60.0) / scenario.tick_seconds);
  while (loop.now() < end) {
    loop.step();
    if (loop.now() % sample_every == 0) {
      std::size_t concurrent = 0;
      for (auto& l : scenario.launchers) concurrent += l->concurrent();
      series.append(loop.now_seconds(), static_cast<double>(concurrent));
    }
  }
  return series;
}

}  // namespace

int main() {
  bench::header("Concurrent clients by experiment",
                "Figure 5-6 (physical vs simulated, experiments 1-3)");

  for (int exp = 1; exp <= 3; ++exp) {
    const char* freqs[] = {"15-36-60s", "12-29-48s", "10-24-40s"};
    std::cout << "\nExperiment-" << exp << " (" << freqs[exp - 1] << "):\n";
    TimeSeries sim = run_experiment(exp, kValidationTickSeconds, "simulated");
    print_series(std::cout, sim, 16);
    const double steady_start = 4.0 * 60.0;
    const double steady_end = sim.samples().back().t_seconds - 3.0 * 60.0;
    std::cout << "steady-state mean: "
              << TableReport::fmt(sim.mean_between(steady_start, steady_end), 1) << " clients\n";
  }
  bench::footnote(
      "Thesis shape: ~22 concurrent clients in steady state for Experiment-1 "
      "rising to ~35 for Experiment-3; flat steady state with ramps at both "
      "ends.");
  return 0;
}
