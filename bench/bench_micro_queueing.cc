// Microbenchmarks (google-benchmark) for the queueing substrate and the
// execution engines: per-tick costs that determine how much simulated time
// the platform can cover per wall-clock second.
#include <benchmark/benchmark.h>

#include "core/h_dispatch.h"
#include "core/scatter_gather.h"
#include "queueing/fcfs_queue.h"
#include "queueing/fork_join.h"
#include "queueing/ps_queue.h"

namespace gdisim {
namespace {

void BM_FcfsAdvance(benchmark::State& state) {
  const std::size_t jobs = static_cast<std::size_t>(state.range(0));
  FcfsMultiServerQueue q(8, 1e9);
  for (auto _ : state) {
    state.PauseTiming();
    for (std::size_t i = 0; i < jobs; ++i) q.enqueue(1e7, nullptr);
    state.ResumeTiming();
    while (q.total_jobs() > 0) benchmark::DoNotOptimize(q.advance(0.01));
  }
  state.SetItemsProcessed(state.iterations() * jobs);
}
BENCHMARK(BM_FcfsAdvance)->Arg(16)->Arg(256)->Arg(4096);

void BM_PsAdvance(benchmark::State& state) {
  const std::size_t jobs = static_cast<std::size_t>(state.range(0));
  PsQueue q(1e9, 0, 0.0);
  for (auto _ : state) {
    state.PauseTiming();
    for (std::size_t i = 0; i < jobs; ++i) q.enqueue(1e6, nullptr);
    state.ResumeTiming();
    while (q.total_jobs() > 0) benchmark::DoNotOptimize(q.advance(0.001));
  }
  state.SetItemsProcessed(state.iterations() * jobs);
}
BENCHMARK(BM_PsAdvance)->Arg(16)->Arg(256);

void BM_ForkJoinAdvance(benchmark::State& state) {
  ForkJoinQueue q(static_cast<unsigned>(state.range(0)), 1e8);
  for (auto _ : state) {
    state.PauseTiming();
    for (int i = 0; i < 64; ++i) q.enqueue(1e6, nullptr);
    state.ResumeTiming();
    while (q.total_jobs() > 0) benchmark::DoNotOptimize(q.advance(0.001));
  }
}
BENCHMARK(BM_ForkJoinAdvance)->Arg(2)->Arg(12)->Arg(40);

void BM_IdleTick(benchmark::State& state) {
  // The cost of ticking an idle queue — the dominant operation in off-peak
  // simulation phases.
  FcfsMultiServerQueue q(8, 1e9);
  for (auto _ : state) benchmark::DoNotOptimize(q.advance(0.01));
}
BENCHMARK(BM_IdleTick);

void BM_EngineForEach_ScatterGather(benchmark::State& state) {
  ScatterGatherEngine engine(static_cast<std::size_t>(state.range(0)));
  std::atomic<std::uint64_t> sink{0};
  for (auto _ : state) {
    engine.for_each(512, [&sink](std::size_t i) { sink.fetch_add(i, std::memory_order_relaxed); });
  }
  state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_EngineForEach_ScatterGather)->Arg(1)->Arg(4)->Arg(8);

void BM_EngineForEach_HDispatch(benchmark::State& state) {
  HDispatchEngine engine(static_cast<std::size_t>(state.range(0)), 64);
  std::atomic<std::uint64_t> sink{0};
  for (auto _ : state) {
    engine.for_each(512, [&sink](std::size_t i) { sink.fetch_add(i, std::memory_order_relaxed); });
  }
  state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_EngineForEach_HDispatch)->Arg(1)->Arg(4)->Arg(8);

}  // namespace
}  // namespace gdisim
