// Memory probes linked into every bench binary (bench_memprobe.cc): a
// counting replacement of the global allocation functions plus a peak-RSS
// reading, so every bench JSON carries memory figures alongside wall time.
#pragma once

#include <cstdint>

namespace gdisim::bench {

/// Number of successful global operator new / new[] calls since process
/// start. Monotone; diff two readings to get the allocation count of a
/// measured section.
std::uint64_t alloc_count();

/// Process peak resident set size in MB (getrusage ru_maxrss); monotone
/// high-water mark.
double peak_rss_mb();

}  // namespace gdisim::bench
