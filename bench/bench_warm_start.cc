// Warm-start scenario sweeps (DESIGN.md §8): instead of simulating every
// what-if variant from t=0, run the shared prefix once, snapshot it with
// save_state(), and fork each perturbed scenario from the warm snapshot with
// load_state(). The prefix cost is paid once instead of N times, so the
// sweep approaches prefix + N * suffix instead of N * (prefix + suffix).
//
// Perturbations must be structural no-ops (think times, growth rates) —
// exactly the knobs a capacity-planning sweep turns.
#include <sstream>

#include "bench_util.h"
#include "config/loader.h"
#include "sim/fingerprint.h"

using namespace gdisim;

namespace {

// Two-site scenario (configs/two_site.gdisim, inlined so the bench is
// self-contained): HQ + branch office over a 155 Mbps WAN.
constexpr const char* kBaseScenario = R"(
tick 0.02
seed 2024
master HQ

datacenter HQ
  switch 40
  san 2 24 15000
  tier app 2 4 32
  tier db 1 8 64
  tier fs 1 4 16
  tier idx 1 4 32
end

datacenter BRANCH
  switch 40
  san 1 8 15000
  tier fs 1 4 16
end

link HQ BRANCH 0.155 40 0.2

population CAD@BRANCH BRANCH CAD 20
  think 30
  size 25
end

population VIS@HQ HQ VIS 30
  think 20
  size 5
end

growth HQ 1500 8 17
growth BRANCH 400 8 17

synchrep HQ 900
indexbuild HQ 300
)";

struct Variant {
  const char* label;
  const char* from;  // substring of kBaseScenario to perturb
  const char* to;
};

// A think-time / growth-rate sweep: every variant is structurally identical
// to the base scenario, so each can fork from the base warm snapshot.
constexpr Variant kVariants[] = {
    {"baseline", "think 30", "think 30"},
    {"think-15", "think 30", "think 15"},
    {"think-45", "think 30", "think 45"},
    {"growth-x3", "growth HQ 1500", "growth HQ 4500"},
};

GdiSimulator make_sim(const Variant& v) {
  std::string text = kBaseScenario;
  const auto pos = text.find(v.from);
  text.replace(pos, std::string(v.from).size(), v.to);
  std::istringstream is(text);
  Scenario scenario = load_scenario(is, "<warm-start-bench>");
  SimulatorConfig cfg;
  cfg.threads = bench::bench_threads();
  return GdiSimulator(std::move(scenario), cfg);
}

}  // namespace

int main() {
  bench::header("Warm-start scenario forking vs cold sweeps",
                "DESIGN.md §8 — checkpoint/restore as a sweep accelerator");

  const double warm_s = bench::fast_mode() ? 900.0 : 3600.0;
  const double end_s = bench::fast_mode() ? 1200.0 : 4800.0;
  const std::size_t n = sizeof(kVariants) / sizeof(kVariants[0]);

  // Cold baseline: every variant simulates the full window from t=0.
  bench::Stopwatch cold_sw;
  std::vector<std::uint64_t> cold_fps;
  for (const Variant& v : kVariants) {
    GdiSimulator sim = make_sim(v);
    sim.run_for(end_s);
    cold_fps.push_back(result_fingerprint(sim));
  }
  const double cold_seconds = cold_sw.seconds();

  // Warm sweep: shared prefix once, then fork each variant from the
  // snapshot and simulate only the suffix.
  bench::Stopwatch warmup_sw;
  std::vector<std::uint8_t> snapshot;
  {
    GdiSimulator base = make_sim(kVariants[0]);
    base.run_for(warm_s);
    snapshot = base.save_state();
  }
  const double warmup_seconds = warmup_sw.seconds();

  bench::Stopwatch sweep_sw;
  std::vector<std::uint64_t> warm_fps;
  for (const Variant& v : kVariants) {
    GdiSimulator sim = make_sim(v);
    sim.load_state(snapshot);
    sim.run_until_seconds(end_s);
    warm_fps.push_back(result_fingerprint(sim));
  }
  const double sweep_seconds = sweep_sw.seconds();
  const double warm_seconds = warmup_seconds + sweep_seconds;
  const double speedup = warm_seconds > 0.0 ? cold_seconds / warm_seconds : 0.0;

  // The baseline variant's warm fork replays the identical scenario, so it
  // must land on the cold baseline's fingerprint bit-for-bit; the perturbed
  // forks must diverge from it (the perturbation actually took effect).
  const bool baseline_matches = warm_fps[0] == cold_fps[0];
  std::size_t diverged = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (warm_fps[i] != warm_fps[0]) ++diverged;
  }

  TableReport t({"sweep", "wall (s)", "per variant (s)"});
  t.add_row({"cold (from t=0)", TableReport::fmt(cold_seconds),
             TableReport::fmt(cold_seconds / static_cast<double>(n))});
  t.add_row({"warm (forked)", TableReport::fmt(warm_seconds),
             TableReport::fmt(warm_seconds / static_cast<double>(n))});
  t.print(std::cout);
  std::cout << "\nvariants: " << n << ", warm prefix " << warm_s << " s of " << end_s
            << " s window\nwarmup " << warmup_seconds << " s + sweep " << sweep_seconds
            << " s; speedup vs cold: " << speedup << "x\n"
            << "baseline fork reproduces cold fingerprint: "
            << (baseline_matches ? "yes" : "NO") << "; perturbed forks diverged: " << diverged
            << "/" << (n - 1) << "\n";

  bench::JsonResult json("warm_start");
  json.set("variants", static_cast<double>(n));
  json.set("warm_prefix_s", warm_s);
  json.set("window_s", end_s);
  json.set("cold_wall_seconds", cold_seconds);
  json.set("warmup_wall_seconds", warmup_seconds);
  json.set("sweep_wall_seconds", sweep_seconds);
  json.set("warm_wall_seconds", warm_seconds);
  json.set("speedup", speedup);
  json.set("baseline_fingerprint_match", baseline_matches ? 1.0 : 0.0);
  json.set("perturbed_forks_diverged", static_cast<double>(diverged));
  json.write();

  bench::footnote(
      "Expected: warm total ~= warmup + N * suffix, beating N cold windows "
      "whenever the shared prefix dominates; the baseline fork is "
      "bit-identical to its cold run because snapshots capture every layer.");
  return baseline_matches && diverged == n - 1 ? 0 : 1;
}
