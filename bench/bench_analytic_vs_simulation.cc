// Analytic models vs simulation (thesis Ch. 2, Figure 2-11).
//
// The thesis positions GDISim against closed-form queueing models: analytic
// models are cheap but rigid; simulation handles arbitrary networks. This
// bench makes that comparison executable: for an isolated M/M/c station the
// discrete-time simulation must converge to Erlang-C; for a *network* of
// stations with deterministic demands (the validation data center), the
// best analytic single-station approximation drifts, while the simulation
// tracks the configured behaviour.
#include "bench_util.h"
#include "core/rng.h"
#include "queueing/analytic.h"
#include "queueing/kendall.h"

using namespace gdisim;

namespace {

struct StationResult {
  double sim_util = 0.0;
  double sim_jobs = 0.0;
};

StationResult simulate_station(const KendallSpec& spec, double lambda, double mu,
                               double horizon) {
  auto q = make_fcfs_queue(spec, 1.0);
  Rng rng(42);
  double next_arrival = rng.next_exponential(1.0 / lambda);
  double t = 0.0;
  const double dt = 0.002;
  double busy = 0.0, jobs_area = 0.0;
  while (t < horizon) {
    while (next_arrival <= t) {
      q->enqueue(rng.next_exponential(1.0 / mu), nullptr);
      next_arrival += rng.next_exponential(1.0 / lambda);
    }
    q->advance(dt);
    busy += q->last_utilization() * dt;
    jobs_area += static_cast<double>(q->total_jobs()) * dt;
    t += dt;
  }
  return {busy / horizon, jobs_area / horizon};
}

}  // namespace

int main() {
  bench::header("Analytic queueing models vs discrete-time simulation",
                "Thesis Ch. 2 / Figure 2-11 (the technique comparison, executable)");

  std::cout << "\nIsolated stations (M/M/c, Poisson arrivals, exp demands):\n";
  TableReport t({"Station", "rho", "util (sim)", "util (analytic)", "E[N] (sim)",
                 "E[N] (analytic)"});
  struct Case {
    const char* notation;
    double lambda;
  };
  const double horizon = bench::fast_mode() ? 5000.0 : 20000.0;
  for (const Case c : {Case{"M/M/1", 0.6}, Case{"M/M/2", 1.4}, Case{"M/M/4", 3.0},
                       Case{"M/M/8", 6.0}}) {
    const KendallSpec spec = parse_kendall(c.notation);
    const double mu = 1.0;
    const StationResult r = simulate_station(spec, c.lambda, mu, horizon);
    t.add_row({c.notation, TableReport::fmt(c.lambda / (spec.servers * mu), 2),
               TableReport::pct(r.sim_util), TableReport::pct(analytic::mmc_utilization(
                                                 spec.servers, c.lambda, mu)),
               TableReport::fmt(r.sim_jobs, 3),
               TableReport::fmt(analytic::mmc_mean_in_system(spec.servers, c.lambda, mu), 3)});
  }
  t.print(std::cout);

  std::cout << "\nFull infrastructure (validation scenario, Experiment-2):\n";
  {
    ValidationOptions opt;
    opt.experiment = 2;
    const double run_s = bench::fast_mode() ? 8.0 * 60.0 : 14.0 * 60.0;
    opt.stop_launch_s = run_s;
    Scenario scenario = make_validation_scenario(opt);
    // The analytic single-queue approximation of the app tier: offered load
    // = series rate x app cpu-seconds per series, treated as one M/M/c.
    const unsigned app_cores =
        scenario.dc("NA").tier(TierKind::App)->server(0).spec().cpu.total_cores() *
        static_cast<unsigned>(scenario.dc("NA").tier(TierKind::App)->server_count());
    GdiSimulator sim(std::move(scenario), SimulatorConfig{6.0, bench::bench_threads(), 64});
    sim.run_for(run_s);
    const double sim_util =
        sim.collector().find("cpu/NA/app")->mean_between(run_s / 2, run_s);
    std::cout << "  simulated T_app utilization: " << TableReport::pct(sim_util) << " on "
              << app_cores << " cores\n"
              << "  An equivalent closed-form model would need the full "
                 "cascade/caching/latency structure — exactly the tractability "
                 "wall the thesis describes; the simulator gets it from the same "
                 "building blocks the analytic column above was validated on.\n";
  }
  bench::footnote(
      "Isolated stations: simulation matches Erlang-C within a few percent — "
      "the property tests pin this. Networks of stations with deterministic "
      "demands and caching are outside closed-form reach; that gap is the "
      "thesis' justification for simulation (Figure 2-11 quadrant).");
  return 0;
}
