#!/usr/bin/env bash
# CI driver: configure + build + test every preset (release, asan, tsan).
#
#   tools/ci.sh                # full matrix
#   tools/ci.sh release        # one preset
#   CTEST_ARGS="-R ActiveSet" tools/ci.sh tsan   # filter the test run
#
# Sanitizer suites run the full tier-1 ctest set; on small hosts expect the
# tsan leg to dominate wall time (the determinism/stress tests run the
# thread pool hard on purpose).
set -euo pipefail
cd "$(dirname "$0")/.."

PRESETS=("$@")
if [ ${#PRESETS[@]} -eq 0 ]; then
  PRESETS=(release asan tsan)
fi

JOBS="${JOBS:-$(nproc)}"
CTEST_ARGS="${CTEST_ARGS:-}"

for preset in "${PRESETS[@]}"; do
  echo "=== [$preset] configure ==="
  cmake --preset "$preset"
  echo "=== [$preset] build ==="
  cmake --build --preset "$preset" -j "$JOBS"
  echo "=== [$preset] test ==="
  # shellcheck disable=SC2086
  ctest --preset "$preset" -j "$JOBS" $CTEST_ARGS
done

echo "ci.sh: all presets green (${PRESETS[*]})"
