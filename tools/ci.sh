#!/usr/bin/env bash
# CI driver: configure + build + test every leg of the matrix.
#
#   tools/ci.sh                # full matrix (see LEGS default below)
#   tools/ci.sh release        # one leg
#   tools/ci.sh lint audit     # just the correctness tooling
#   CTEST_ARGS="-R ActiveSet" tools/ci.sh tsan   # filter the test run
#
# Legs:
#   lint     tools/lint/gdisim_lint.py over src/ (determinism lint; no build)
#   archive-coverage  tools/lint/gdisim_archive_coverage.py over src/: every
#            field of every snapshotable type is archived or declared
#            // ARCHIVE-TRANSIENT, and save/load bodies stay symmetric
#   isolation tools/lint/gdisim_isolation.py over src/: the agent-isolation
#            model holds — no cross-agent writes from tick paths, no
#            unguarded shared state, serial-only fast paths stay gated, and
#            sync primitives outside src/core/ carry // GDISIM-SHARED reasons
#   tidy     clang-tidy with the repo .clang-tidy profile (skipped with a
#            notice when clang-tidy is not installed)
#   smoke    determinism smoke: diff release fingerprints of the consolidated
#            scenario between a -j1 and a -jN run (builds `release` if needed)
#   snapshot checkpoint/restore equivalence: a run that checkpoints mid-flight
#            and a fresh process that restores the snapshot must both produce
#            the uninterrupted run's fingerprint (release and audit binaries)
#   sanitize-snapshot  the snapshot/archive test suite (round trips,
#            corruption rollback, restore equivalence) under ASan+UBSan and
#            standalone UBSan builds
#   perf-smoke  bench_scale_frontier in fast mode with a tiny tick budget;
#            fails when the bench exits nonzero or its JSON is missing,
#            malformed, or lacks the frontier fields
#   release/audit/asan/ubsan/tsan   CMake presets: configure + build + ctest
#
# Sanitizer suites run the full tier-1 ctest set; on small hosts expect the
# tsan leg to dominate wall time (the determinism/stress tests run the
# thread pool hard on purpose).
set -euo pipefail
cd "$(dirname "$0")/.."

LEGS=("$@")
if [ ${#LEGS[@]} -eq 0 ]; then
  LEGS=(lint archive-coverage isolation release audit smoke perf-smoke snapshot sanitize-snapshot asan tsan)
fi

JOBS="${JOBS:-$(nproc)}"
CTEST_ARGS="${CTEST_ARGS:-}"
SMOKE_ARGS="${SMOKE_ARGS:---scenario consolidated --hours 1 --scale 0.05}"
# Worker threads for the smoke step's multi-threaded run; floored at 4 so the
# determinism check still means something on small/1-CPU CI hosts.
SMOKE_THREADS="${SMOKE_THREADS:-$(( JOBS > 4 ? JOBS : 4 ))}"

run_preset() {
  local preset="$1"
  echo "=== [$preset] configure ==="
  cmake --preset "$preset"
  echo "=== [$preset] build ==="
  cmake --build --preset "$preset" -j "$JOBS"
  echo "=== [$preset] test ==="
  # shellcheck disable=SC2086
  ctest --preset "$preset" -j "$JOBS" $CTEST_ARGS
}

run_lint() {
  echo "=== [lint] gdisim determinism lint ==="
  mkdir -p build
  python3 tools/lint/gdisim_lint.py src --json build/lint-report.json || {
    echo "lint: active findings (see above); suppress intentionally with // NOLINT(gdisim-*)" >&2
    return 1
  }
}

run_archive_coverage() {
  echo "=== [archive-coverage] snapshot field coverage ==="
  mkdir -p build
  python3 tools/lint/gdisim_archive_coverage.py src \
      --json build/archive-coverage-report.json || {
    echo "archive-coverage: unarchived fields (see above); archive them or" \
         "annotate // ARCHIVE-TRANSIENT: <why>" >&2
    return 1
  }
}

run_isolation() {
  echo "=== [isolation] concurrency-discipline analyzer ==="
  mkdir -p build
  python3 tools/lint/gdisim_isolation.py src \
      --json build/isolation-report.json || {
    echo "isolation: concurrency-model violations (see above); route" \
         "cross-agent effects through Inbox::post or annotate sanctioned" \
         "shared state with // GDISIM-SHARED: <why>" >&2
    return 1
  }
}

run_tidy() {
  echo "=== [tidy] clang-tidy ==="
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "tidy: clang-tidy not installed; skipping (profile: .clang-tidy)"
    return 0
  fi
  cmake --preset release >/dev/null
  local sources
  sources=$(git ls-files 'src/*.cc' 'tools/*.cc')
  if command -v run-clang-tidy >/dev/null 2>&1; then
    # shellcheck disable=SC2086
    run-clang-tidy -p build -quiet -j "$JOBS" $sources
  else
    # shellcheck disable=SC2086
    clang-tidy -p build --quiet $sources
  fi
}

run_smoke() {
  echo "=== [smoke] determinism fingerprint: -j1 vs -j$SMOKE_THREADS ==="
  cmake --preset release >/dev/null
  cmake --build --preset release -j "$JOBS" --target gdisim_run >/dev/null
  local bin=build/tools/gdisim_run
  local fp1 fpN
  # shellcheck disable=SC2086
  fp1=$("$bin" $SMOKE_ARGS --threads 1 --quiet --fingerprint | grep '^fingerprint:')
  # shellcheck disable=SC2086
  fpN=$("$bin" $SMOKE_ARGS --threads "$SMOKE_THREADS" --quiet --fingerprint | grep '^fingerprint:')
  echo "  -j1: $fp1"
  echo "  -j$SMOKE_THREADS: $fpN"
  if [ "$fp1" != "$fpN" ]; then
    echo "smoke: FINGERPRINT MISMATCH — results depend on thread count" >&2
    return 1
  fi
  # shellcheck disable=SC2086
  local fpD
  fpD=$("$bin" $SMOKE_ARGS --threads "$SMOKE_THREADS" --quiet --fingerprint --dense-sweep | grep '^fingerprint:')
  echo "  dense: $fpD"
  if [ "$fp1" != "$fpD" ]; then
    echo "smoke: FINGERPRINT MISMATCH — active-set scheduler diverges from dense sweep" >&2
    return 1
  fi
  echo "smoke: fingerprints identical across thread counts and scheduler modes"
}

snapshot_check() {
  local preset="$1" bin="$2"
  local config="${SNAPSHOT_CONFIG:-configs/two_site.gdisim}"
  local workdir
  workdir=$(mktemp -d)
  # Clear the trap as it fires: RETURN traps outlive the function otherwise.
  trap 'rm -rf "${workdir:-}"; trap - RETURN' RETURN
  echo "--- [$preset] $config: uninterrupted vs checkpoint->restore ---"
  local full mid resumed periodic
  full=$("$bin" --config "$config" --hours 0.2 --quiet --fingerprint | grep '^fingerprint:')
  # Checkpoint halfway through, then finish the run from a fresh process.
  mid=$("$bin" --config "$config" --hours 0.1 --quiet --fingerprint \
        --checkpoint "$workdir/mid.snap" | grep '^fingerprint:')
  resumed=$("$bin" --config "$config" --restore "$workdir/mid.snap" --hours 0.2 \
        --quiet --fingerprint | grep '^fingerprint:')
  # Periodic checkpointing must not perturb the run it observes.
  periodic=$("$bin" --config "$config" --hours 0.2 --quiet --fingerprint \
        --checkpoint "$workdir/periodic.snap" --checkpoint-every 120 | grep '^fingerprint:')
  echo "  full:     $full"
  echo "  resumed:  $resumed"
  echo "  periodic: $periodic"
  if [ "$full" != "$resumed" ]; then
    echo "snapshot[$preset]: FINGERPRINT MISMATCH — restore diverges from uninterrupted run" >&2
    return 1
  fi
  if [ "$full" != "$periodic" ]; then
    echo "snapshot[$preset]: FINGERPRINT MISMATCH — periodic checkpointing perturbed the run" >&2
    return 1
  fi
  : "$mid"  # the half-run fingerprint differs by construction; only used for the snapshot
}

run_snapshot() {
  echo "=== [snapshot] checkpoint/restore fingerprint equivalence ==="
  local preset
  for preset in release audit; do
    cmake --preset "$preset" >/dev/null
    cmake --build --preset "$preset" -j "$JOBS" --target gdisim_run >/dev/null
  done
  snapshot_check release build/tools/gdisim_run
  snapshot_check audit build-audit/tools/gdisim_run
  echo "snapshot: restore and periodic-checkpoint runs match the uninterrupted fingerprint"
}

run_perf_smoke() {
  echo "=== [perf-smoke] scale-frontier bench (fast mode) ==="
  cmake --preset release >/dev/null
  cmake --build --preset release -j "$JOBS" --target bench_scale_frontier >/dev/null
  local workdir
  workdir=$(mktemp -d)
  trap 'rm -rf "${workdir:-}"; trap - RETURN' RETURN
  GDISIM_BENCH_FAST=1 GDISIM_BENCH_JSON_DIR="$workdir" \
      build/bench/bench_scale_frontier || {
    echo "perf-smoke: bench_scale_frontier failed" >&2
    return 1
  }
  local json="$workdir/BENCH_scale_frontier.json"
  if [ ! -f "$json" ]; then
    echo "perf-smoke: $json was not written" >&2
    return 1
  fi
  # Malformed JSON or missing frontier fields both fail the leg: the bench
  # JSON is the perf trajectory's raw material, so an emitter regression is
  # a CI failure, not a silently empty chart.
  python3 - "$json" <<'EOF' || return 1
import json, sys
with open(sys.argv[1]) as f:
    data = json.load(f)
required = ["max_sustainable_scale", "max_sustainable_clients", "peak_rss_mb", "alloc_delta"]
missing = [k for k in required if k not in data]
per_scale = [k for k in data if k.startswith("s") and k.endswith("_ticks_per_second")]
if missing:
    sys.exit(f"perf-smoke: {sys.argv[1]} missing fields: {missing}")
if not per_scale:
    sys.exit(f"perf-smoke: {sys.argv[1]} has no per-scale ticks_per_second fields")
print(f"perf-smoke: JSON ok ({len(per_scale)} scale points)")
EOF
}

run_tsan() {
  run_preset tsan
  # Pin the serial<->parallel transition chain under -fsanitize=thread even
  # when CTEST_ARGS filtered it out of the main pass: crossing thread-count
  # boundaries through checkpoints is exactly where the engine-serial fast
  # path would race if the isolation model were wrong.
  echo "--- [tsan] serial<->parallel transition chain ---"
  # shellcheck disable=SC2086
  ctest --preset tsan -j "$JOBS" -R 'SerialTransition' --output-on-failure
}

run_sanitize_snapshot() {
  echo "=== [sanitize-snapshot] snapshot suite under ASan+UBSan and UBSan ==="
  local preset
  for preset in asan ubsan; do
    cmake --preset "$preset" >/dev/null
    cmake --build --preset "$preset" -j "$JOBS"
    echo "--- [$preset] snapshot/archive tests ---"
    ctest --preset "$preset" -j "$JOBS" \
        -R 'Snapshot|StateArchive|ArchiveCorruption'
  done
  echo "sanitize-snapshot: snapshot suite clean under both sanitizer builds"
}

for leg in "${LEGS[@]}"; do
  case "$leg" in
    lint) run_lint ;;
    archive-coverage) run_archive_coverage ;;
    isolation) run_isolation ;;
    tidy) run_tidy ;;
    smoke) run_smoke ;;
    snapshot) run_snapshot ;;
    perf-smoke) run_perf_smoke ;;
    sanitize-snapshot) run_sanitize_snapshot ;;
    tsan) run_tsan ;;
    *) run_preset "$leg" ;;
  esac
done

echo "ci.sh: all legs green (${LEGS[*]})"
