// gdisim_run — command-line front end for the canned scenarios.
//
//   gdisim_run --scenario consolidated --hours 24 --scale 0.1 --csv out.csv
//
// Options:
//   --scenario validation|consolidated|multimaster   (default consolidated)
//   --experiment 1|2|3       validation series frequencies (default 1)
//   --hours H                simulated horizon (default 24; validation: 0.65)
//   --scale S                population/hardware scale (default 0.1)
//   --threads N              worker threads (default: cores - 1)
//   --seed N                 run seed (default 42)
//   --csv PATH               dump every collector series as CSV
//   --dense-sweep            disable active-set scheduling (reference oracle)
//   --quiet                  suppress the summary tables
//   --validate               parse + build the scenario, report, and exit
//   --checkpoint PATH        write a snapshot at the end of the run
//   --checkpoint-every S     also snapshot every S simulated seconds
//   --restore PATH           start from a snapshot instead of t=0 (the
//                            scenario must be structurally identical;
//                            --hours remains the absolute horizon)
#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "config/loader.h"
#include "core/audit.h"
#include "sim/fingerprint.h"
#include "sim/gdisim.h"

using namespace gdisim;

namespace {

struct CliOptions {
  std::string scenario = "consolidated";
  std::string config_path;
  int experiment = 1;
  double hours = -1.0;
  double scale = 0.10;
  bool scale_set = false;
  std::size_t threads = 0;
  bool threads_set = false;
  std::uint64_t seed = 42;
  std::string csv_path;
  bool dense_sweep = false;
  bool quiet = false;
  bool fingerprint = false;
  bool validate = false;
  std::string checkpoint_path;
  double checkpoint_every_s = 0.0;
  std::string restore_path;
};

[[noreturn]] void usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--scenario validation|consolidated|multimaster | --config FILE]\n"
               "       [--experiment N] [--hours H] [--scale S] [--threads N] [--seed N]\n"
               "       [--csv PATH] [--dense-sweep] [--quiet] [--fingerprint] [--validate]\n"
               "       [--checkpoint PATH] [--checkpoint-every S] [--restore PATH]\n";
  std::exit(2);
}

CliOptions parse(int argc, char** argv) {
  CliOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--scenario") {
      opt.scenario = next();
    } else if (arg == "--config") {
      opt.config_path = next();
    } else if (arg == "--experiment") {
      opt.experiment = std::atoi(next());
    } else if (arg == "--hours") {
      opt.hours = std::atof(next());
    } else if (arg == "--scale") {
      opt.scale = std::atof(next());
      opt.scale_set = true;
      if (!(opt.scale > 0.0)) {
        std::cerr << argv[0] << ": --scale must be > 0\n";
        std::exit(2);
      }
    } else if (arg == "--threads") {
      opt.threads = static_cast<std::size_t>(std::atoi(next()));
      opt.threads_set = true;
    } else if (arg == "--seed") {
      opt.seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--csv") {
      opt.csv_path = next();
    } else if (arg == "--dense-sweep") {
      opt.dense_sweep = true;
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else if (arg == "--fingerprint") {
      opt.fingerprint = true;
    } else if (arg == "--validate") {
      opt.validate = true;
    } else if (arg == "--checkpoint") {
      opt.checkpoint_path = next();
    } else if (arg == "--checkpoint-every") {
      opt.checkpoint_every_s = std::atof(next());
    } else if (arg == "--restore") {
      opt.restore_path = next();
    } else {
      usage(argv[0]);
    }
  }
  if (opt.config_path.empty() && opt.scenario != "validation" &&
      opt.scenario != "consolidated" && opt.scenario != "multimaster") {
    usage(argv[0]);
  }
  if (!opt.threads_set) {
    const unsigned hw = std::thread::hardware_concurrency();
    opt.threads = hw > 1 ? hw - 1 : 0;
  }
  if (opt.hours < 0) opt.hours = opt.scenario == "validation" ? 38.0 / 60.0 : 24.0;
  if (!opt.config_path.empty() && !opt.scale_set) opt.scale = 1.0;
  return opt;
}

Scenario make_scenario(const CliOptions& opt) {
  // A config file describes the operator's real inventory, so it runs
  // unscaled unless --scale is given explicitly (parse() normalizes the
  // default to 1.0); the canned scenarios keep their 0.1 default.
  if (!opt.config_path.empty()) return load_scenario_file(opt.config_path, opt.scale);
  if (opt.scenario == "validation") {
    ValidationOptions v;
    v.experiment = opt.experiment;
    v.seed = opt.seed;
    v.stop_launch_s = opt.hours * 3600.0 - 3.0 * 60.0;
    return make_validation_scenario(v);
  }
  GlobalOptions g;
  g.scale = opt.scale;
  g.seed = opt.seed;
  return opt.scenario == "multimaster" ? make_multimaster_scenario(g)
                                       : make_consolidated_scenario(g);
}

void print_summary(GdiSimulator& sim, double horizon_s) {
  std::cout << "\nUtilization (mean over run / peak):\n";
  TableReport util({"resource", "mean", "peak"});
  Topology& topo = *sim.scenario().topology;
  for (DcId d = 0; d < topo.dc_count(); ++d) {
    for (unsigned k = 0; k < static_cast<unsigned>(TierKind::kCount); ++k) {
      const std::string label = "cpu/" + topo.dc(d).name() + "/" +
                                tier_kind_name(static_cast<TierKind>(k));
      const TimeSeries* s = sim.collector().find(label);
      if (s == nullptr || s->empty()) continue;
      util.add_row({label, TableReport::pct(s->mean_between(0, horizon_s)),
                    TableReport::pct(s->max_value())});
    }
  }
  for (DcId a = 0; a < topo.dc_count(); ++a) {
    for (DcId b = 0; b < topo.dc_count(); ++b) {
      if (topo.link(a, b) == nullptr) continue;
      const std::string label = "net/" + topo.dc(a).name() + "->" + topo.dc(b).name();
      const TimeSeries* s = sim.collector().find(label);
      if (s == nullptr || s->empty()) continue;
      util.add_row({label, TableReport::pct(s->mean_between(0, horizon_s)),
                    TableReport::pct(s->max_value())});
    }
  }
  util.print(std::cout);

  std::cout << "\nResponse times:\n";
  TableReport resp({"population", "operation", "count", "mean (s)", "max (s)"});
  for (auto& p : sim.scenario().populations) {
    for (const auto& [op, stats] : p->stats()) {
      resp.add_row({p->config().name, op, std::to_string(stats.count),
                    TableReport::fmt(stats.mean()), TableReport::fmt(stats.max_s)});
    }
  }
  for (auto& l : sim.scenario().launchers) {
    for (const auto& [op, stats] : l->stats()) {
      resp.add_row({l->name(), op, std::to_string(stats.count),
                    TableReport::fmt(stats.mean()), TableReport::fmt(stats.max_s)});
    }
  }
  resp.print(std::cout);

  for (auto& sr : sim.scenario().synchreps) {
    std::cout << "\n" << sr->name() << ": " << sr->ledger().runs().size()
              << " runs, R_SR^max = " << TableReport::fmt(sr->max_staleness_s() / 60.0)
              << " min";
  }
  for (auto& ib : sim.scenario().indexbuilds) {
    std::cout << "\n" << ib->name() << ": " << ib->ledger().runs().size()
              << " runs, R_IB^max = " << TableReport::fmt(ib->max_unsearchable_s() / 60.0)
              << " min";
  }
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions opt = parse(argc, argv);

  if (opt.validate) {
    // Parse + build only: loader errors carry "<file>:<line>: ..." and the
    // offending token, so a bad config fails here with an editor-friendly
    // message instead of minutes into a run.
    try {
      Scenario scenario = make_scenario(opt);
      SimulatorConfig cfg;
      cfg.threads = 0;
      GdiSimulator sim(std::move(scenario), cfg);
      std::cout << "config OK: "
                << (opt.config_path.empty() ? opt.scenario : opt.config_path) << ": "
                << sim.loop().agent_count() << " agents, "
                << sim.scenario().populations.size() << " populations, "
                << sim.scenario().synchreps.size() << " synchreps, "
                << sim.scenario().indexbuilds.size() << " indexbuilds\n";
      return 0;
    } catch (const std::exception& e) {
      std::cerr << e.what() << "\n";
      return 1;
    }
  }

  std::cout << "GDISim: scenario="
            << (opt.config_path.empty() ? opt.scenario : opt.config_path) << " hours=" << opt.hours
            << " scale=" << opt.scale << " threads=" << opt.threads << " seed=" << opt.seed
            << "\n";

  Scenario scenario = make_scenario(opt);
  SimulatorConfig cfg;
  cfg.threads = opt.threads;
  cfg.collect_every_s = opt.scenario == "validation" ? 6.0 : 30.0;
  if (opt.dense_sweep) cfg.scheduler = SchedulerMode::kDenseSweep;
  GdiSimulator sim(std::move(scenario), cfg);

  if (!opt.restore_path.empty()) {
    try {
      sim.restore(opt.restore_path);
    } catch (const std::exception& e) {
      // restore() diagnostics are `path:byte N: why` (loader format);
      // surface them like a compile error instead of an uncaught throw.
      std::cerr << "gdisim_run: --restore failed\n" << e.what() << "\n";
      return 1;
    }
    std::cout << "restored " << opt.restore_path << " at t=" << format_sim_time(sim.now_seconds())
              << "\n";
  }

  // Absolute horizon: a restored run continues to the same end tick the
  // uninterrupted run would reach, so fingerprints stay comparable.
  const double horizon_s = opt.hours * 3600.0;
  if (!opt.checkpoint_path.empty() && opt.checkpoint_every_s > 0.0) {
    double next_cp = sim.now_seconds() + opt.checkpoint_every_s;
    while (next_cp < horizon_s) {
      sim.run_until_seconds(next_cp);
      sim.checkpoint(opt.checkpoint_path);
      next_cp += opt.checkpoint_every_s;
    }
  }
  sim.run_until_seconds(horizon_s);
  if (!opt.checkpoint_path.empty()) sim.checkpoint(opt.checkpoint_path);
  std::cout << "simulated " << format_sim_time(horizon_s) << " of operation ("
            << sim.loop().now() << " ticks, " << sim.loop().agent_count() << " agents)\n";
  const SchedulerStats& sched = sim.loop().scheduler_stats();
  std::cout << "scheduler: "
            << (sim.loop().scheduler_mode() == SchedulerMode::kActiveSet ? "active-set"
                                                                         : "dense-sweep")
            << ", mean active agents = " << TableReport::fmt(sched.mean_active())
            << " (occupancy " << TableReport::fmt(100.0 * sched.occupancy()) << "%)\n";
  if (!opt.quiet && sim.loop().scheduler_mode() == SchedulerMode::kActiveSet) {
    std::vector<AgentId> order(sched.per_agent_runs.size());
    for (AgentId i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&sched](AgentId a, AgentId b) {
      return sched.per_agent_runs[a] > sched.per_agent_runs[b];
    });
    std::cout << "most-active agents (share of iterations):\n";
    for (std::size_t i = 0; i < order.size() && i < 12; ++i) {
      const AgentId id = order[i];
      std::cout << "  " << sim.loop().agent(id)->name() << "  "
                << TableReport::pct(static_cast<double>(sched.per_agent_runs[id]) /
                                    static_cast<double>(sched.iterations))
                << "\n";
    }
  }

  if (!opt.quiet) print_summary(sim, horizon_s);

  if (opt.fingerprint) {
    // Stable digest of the run's observable results. CI's determinism smoke
    // step (tools/ci.sh smoke) diffs this line between -j1 and -jN runs; any
    // mismatch is a thread-count-dependent divergence.
    std::cout << "fingerprint: " << std::hex << result_fingerprint(sim) << std::dec << "\n";
  }

#if GDISIM_AUDIT_ENABLED
  {
    const audit::Report r = audit::snapshot();
    std::cout << "audit: drain_hash=" << std::hex << r.drain_hash << std::dec
              << " failures=" << r.failures;
    for (unsigned c = 0; c < static_cast<unsigned>(audit::Category::kCount); ++c) {
      const auto cat = static_cast<audit::Category>(c);
      if (r.spawned[c] == 0) continue;
      std::cout << " " << audit::category_name(cat) << "=" << r.completed[c] << "/"
                << r.spawned[c];
    }
    std::cout << "\n";
  }
#endif

  if (!opt.csv_path.empty()) {
    std::ofstream out(opt.csv_path);
    if (!out) {
      std::cerr << "cannot open " << opt.csv_path << "\n";
      return 1;
    }
    std::vector<const TimeSeries*> series;
    for (std::size_t i = 0; i < sim.collector().probe_count(); ++i) {
      series.push_back(&sim.collector().series(i));
    }
    print_csv(out, series);
    std::cout << "wrote " << series.size() << " series to " << opt.csv_path << "\n";
  }
  return 0;
}
