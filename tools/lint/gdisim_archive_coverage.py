#!/usr/bin/env python3
"""gdisim archive-coverage analyzer.

Proves, at lint time, that every non-static data member of every snapshotable
type is either threaded through the snapshot codec or explicitly declared
transient — the static complement to the runtime fingerprint equivalence
suite. PR 4's checkpoint/restore guarantee ("restore reproduces the
uninterrupted fingerprint bit-for-bit") silently dies the first time someone
adds a member and forgets to archive it; this tool turns that omission into a
CI failure at the exact field.

A type is *snapshotable* when it

  * declares or defines an ``archive*`` method (``archive_state``,
    ``archive_discipline``, ``archive_failure_state``, ...),
  * inherits from a snapshotable type (every ``Agent`` subclass), or
  * is taken by reference/pointer by an ``archive_*`` free function
    (``archive_stage_job(..., StageJob&)``).

For each snapshotable type the analyzer collects the non-static data members
and the set of members referenced inside every archive body attributed to the
type — its own ``archive*`` methods (inline or out-of-line) plus free
``archive_*`` functions taking it by reference, which covers the delegation
patterns in the tree (``member_.archive_state(ar)``, the
``Inbox::archive_state``/payload_fn shape, ``Base::archive_state(ar, reg)``).

Rules:

  gdisim-archive-missing-field        member neither referenced in any archive
                                      body nor annotated transient
  gdisim-archive-asymmetric           the save path and the load path of one
                                      archive body touch members / sections /
                                      delegates in different sequences
  gdisim-archive-transient-no-reason  an ARCHIVE-TRANSIENT annotation without
                                      a reason

Annotation: mark an intentionally-unarchived field with a structured comment
on its declaration line (or the line above)::

    double cache_ = 0.0;  // ARCHIVE-TRANSIENT: recomputed on first tick

The reason is mandatory — the annotation converts implicit knowledge ("this
is loop wiring / a cache / immutable config") into a checked declaration.
``// NOLINT(gdisim-archive-<rule>)`` suppressions work as in gdisim_lint.

Backends: prefers libclang (python bindings) when importable — structural
member/field resolution — and falls back to the same comment-stripping lexer
gdisim_lint uses. Both emit the same finding schema; ``--backend`` pins one.

Usage:
  gdisim_archive_coverage.py [paths...] [--json FILE] [--list-rules]
                             [--backend auto|regex|libclang] [--list-types]

Exit status: 0 when no active findings, 1 otherwise, 2 on usage error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import gdisim_lint_common as common  # noqa: E402  (shared lexer/NOLINT/report)

RULES = {
    "gdisim-archive-missing-field": {
        "message": "field of a snapshotable type is neither archived nor "
        "declared transient: thread it through archive_state or annotate it "
        "with // ARCHIVE-TRANSIENT: <reason>",
    },
    "gdisim-archive-asymmetric": {
        "message": "archive body is asymmetric: the save and load paths "
        "touch members/sections/delegates in different sequences, which "
        "desynchronizes the byte stream on restore",
    },
    "gdisim-archive-transient-no-reason": {
        "message": "ARCHIVE-TRANSIENT without a reason: state why the field "
        "is intentionally not archived (// ARCHIVE-TRANSIENT: <reason>)",
    },
}

# Stream-advancing primitives. expect_equal is deliberately absent: it is a
# read-side validation that consumes no bytes, so it may legitimately appear
# on only one path.
ARCHIVE_PRIMS = ("u8", "u32", "u64", "i64", "f64", "boolean", "str",
                 "size_value", "section")

_TRANSIENT = re.compile(r"ARCHIVE-TRANSIENT(?!\w)(?:\s*:\s*(\S[^\n]*?))?\s*(?:\*/)?\s*$")

# Types never treated as archive-body owners when taken by reference.
_INFRA_TYPES = {"StateArchive", "HandlerRegistry", "JobCtxEncoder",
                "JobCtxDecoder", "Fn", "T", "Queue"}

_KEYWORD_STARTS = re.compile(
    r"^(?:using|typedef|friend|static|template|struct|class|enum|union|"
    r"return|if|else|for|while|switch|case|break|continue|explicit|virtual|"
    r"operator|public|private|protected|namespace|goto|do|extern)\b")


# --------------------------------------------------------------------------
# Small lexical helpers
# --------------------------------------------------------------------------


def _strip_angles(s: str) -> str:
    """Remove balanced <...> template-argument regions (handles nesting)."""
    out = []
    depth = 0
    for ch in s:
        if ch == "<":
            depth += 1
        elif ch == ">" and depth > 0:
            depth -= 1
        elif depth == 0:
            out.append(ch)
    return "".join(out)


def _balanced(text: str, start: int, open_ch: str = "(", close_ch: str = ")"):
    """Given text[start] == open_ch, return index one past the matching
    close_ch, or -1 when unbalanced."""
    depth = 0
    for i in range(start, len(text)):
        c = text[i]
        if c == open_ch:
            depth += 1
        elif c == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


def _line_of(offsets: list[int], pos: int) -> int:
    """1-based line number for a character offset (offsets = line starts)."""
    lo, hi = 0, len(offsets) - 1
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if offsets[mid] <= pos:
            lo = mid
        else:
            hi = mid - 1
    return lo + 1


def _parse_field(code_line: str) -> str | None:
    """Field name when `code_line` (comment-stripped, at class-body depth)
    declares a non-static data member; None otherwise."""
    s = code_line.strip()
    if not s or s.startswith("#") or not s.endswith(";"):
        return None
    if _KEYWORD_STARTS.match(s):
        return None
    body = _strip_angles(s[:-1])
    # Declaration portion: everything before an initializer.
    decl = re.split(r"[={]", body, 1)[0]
    if "(" in decl or ")" in decl or ":" in decl.replace("::", ""):
        return None  # functions, member-init lists, bitfields, labels
    if "," in decl or "operator" in decl:
        return None  # wrapped parameter lists, operator decls
    decl = re.sub(r"\[[^\]]*\]", " ", decl)  # array extents
    toks = re.findall(r"[A-Za-z_]\w*", decl)
    toks = [t for t in toks if t not in ("const", "mutable", "volatile",
                                         "unsigned", "signed", "long",
                                         "short", "struct", "class")]
    if len(toks) < 2:
        # `unsigned servers_;`-style: the qualifier was the whole type.
        all_toks = re.findall(r"[A-Za-z_]\w*", decl)
        if len(all_toks) >= 2 and re.search(r"[*&\s]" + all_toks[-1] + r"\s*$", decl):
            return all_toks[-1]
        return None
    if not re.search(r"[*&\s]" + toks[-1] + r"\s*$", decl):
        return None
    return toks[-1]


# --------------------------------------------------------------------------
# File model (regex backend)
# --------------------------------------------------------------------------


class TypeInfo:
    def __init__(self, name: str, file: str, line: int):
        self.name = name
        self.file = file
        self.line = line
        self.bases: list[str] = []
        # fields: list of dicts {name, file, line}
        self.fields: list[dict] = []
        self.declares_archive = False
        # bodies: list of dicts {file, line, code, raw}
        self.bodies: list[dict] = []
        self.snapshotable = False


class ParsedFile:
    def __init__(self, path: str, rel: str):
        self.rel = rel
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
        self.code_lines, self.raw_lines = common.strip_comments(text)
        self.code_text = "\n".join(self.code_lines)
        self.raw_text = "\n".join(self.raw_lines)
        self.offsets = [0]
        for cl in self.code_lines:
            self.offsets.append(self.offsets[-1] + len(cl) + 1)
        self.offsets.pop()


def _scan_regions(pf: ParsedFile) -> tuple[list[dict], list[int]]:
    """Brace-walk into struct/class regions, recording base-class lists.
    Returns (regions, line_depth); mirrors gdisim_lint._scan_type_regions
    with base-clause capture added."""
    regions: list[dict] = []
    open_stack: list[int | None] = []
    line_depth: list[int] = []
    pending = ""
    for line in pf.code_lines:
        line_depth.append(len(open_stack))
        for ch in line:
            if ch == "{":
                header = None
                intro = re.sub(r"\btemplate\s*<[^<>]*>", " ", pending)
                if not re.search(r"\benum\b", intro):
                    for m in re.finditer(r"\b(struct|class)\s+(?:alignas\s*\([^)]*\)\s*)?"
                                         r"([A-Za-z_]\w*)", intro):
                        header = m
                if header:
                    parent = next(
                        (i for i in reversed(open_stack) if i is not None), None)
                    bases: list[str] = []
                    tail = intro[header.end():]
                    bm = re.match(r"\s*(?:final\s*)?:\s*(.*)$", tail, re.S)
                    if bm:
                        for part in _strip_angles(bm.group(1)).split(","):
                            ids = re.findall(r"[A-Za-z_]\w*", part)
                            ids = [t for t in ids
                                   if t not in ("public", "private", "protected",
                                                "virtual", "final", "std")]
                            if ids:
                                bases.append(ids[-1])
                    regions.append({
                        "name": header.group(2),
                        "start": len(line_depth),
                        "end": None,
                        "depth": len(open_stack) + 1,
                        "parent": parent,
                        "bases": bases,
                    })
                    open_stack.append(len(regions) - 1)
                else:
                    open_stack.append(None)
                pending = ""
            elif ch == "}":
                if open_stack:
                    idx = open_stack.pop()
                    if idx is not None:
                        regions[idx]["end"] = len(line_depth)
                pending = ""
            elif ch == ";":
                pending = ""
            else:
                pending += ch
        pending += " "
    for r in regions:
        if r["end"] is None:
            r["end"] = len(pf.code_lines)
    return regions, line_depth


_ARCHIVE_FN = re.compile(r"(?:\b([A-Za-z_]\w*)\s*::\s*)?\b(archive\w*)\s*\(")


def _enclosing_region(regions: list[dict], line_depth: list[int],
                      lineno: int) -> dict | None:
    """Innermost struct/class region containing `lineno`."""
    best = None
    for r in regions:
        if r["start"] <= lineno <= r["end"]:
            if best is None or r["depth"] > best["depth"]:
                best = r
    return best


def _param_owner_types(params: str) -> list[str]:
    """Type names taken by reference/pointer in a free archive_* function's
    parameter list, excluding the codec infrastructure types."""
    owners = []
    depth = 0
    part = ""
    parts = []
    for ch in params:
        if ch in "<([":
            depth += 1
        elif ch in ">)]":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append(part)
            part = ""
        else:
            part += ch
    parts.append(part)
    for p in parts:
        if "&" not in p and "*" not in p:
            continue
        ids = re.findall(r"[A-Za-z_]\w*", _strip_angles(p.split("&")[0].split("*")[0]))
        ids = [t for t in ids if t not in ("const", "std", "gdisim")]
        if not ids:
            continue
        t = ids[-1]
        if t not in _INFRA_TYPES:
            owners.append(t)
    return owners


def _collect(pf: ParsedFile, types: dict[str, TypeInfo],
             free_bodies: list[dict]) -> None:
    """Populate `types` (fields, bases, inline archive bodies) and
    `free_bodies` (free archive_* functions with their owner types)."""
    regions, line_depth = _scan_regions(pf)

    for r in regions:
        qname = r["name"]
        ti = types.setdefault(qname, TypeInfo(qname, pf.rel, r["start"]))
        for b in r["bases"]:
            if b not in ti.bases:
                ti.bases.append(b)
        for lineno in range(r["start"], min(r["end"], len(pf.code_lines)) + 1):
            if line_depth[lineno - 1] != r["depth"]:
                continue
            name = _parse_field(pf.code_lines[lineno - 1])
            if name is not None:
                ti.fields.append({"name": name, "file": pf.rel, "line": lineno})

    for m in _ARCHIVE_FN.finditer(pf.code_text):
        pos = m.start()
        # Skip member-access calls (x.archive_state / x->archive_state) and
        # string-ish contexts; a declaration/definition is preceded by a
        # return-type token (or a :: qualifier handled by the regex itself).
        j = pos - 1
        while j >= 0 and pf.code_text[j] in " \t\n":
            j -= 1
        if j >= 0 and (pf.code_text[j] in ".(" or
                       (pf.code_text[j] == ">" and j > 0 and pf.code_text[j - 1] == "-")):
            continue
        if m.group(1) is None:
            if j < 0 or not (pf.code_text[j].isalnum() or pf.code_text[j] == "_"):
                continue  # expression-statement call, not a declaration
            prev_tok = re.search(r"([A-Za-z_]\w*)$", pf.code_text[:j + 1])
            if prev_tok and prev_tok.group(1) in ("return", "co_return", "new"):
                continue
        paren = pf.code_text.find("(", m.end() - 1)
        close = _balanced(pf.code_text, paren)
        if close < 0:
            continue
        params = pf.code_text[paren + 1:close - 1]
        k = close
        while k < len(pf.code_text):
            rest = pf.code_text[k:]
            tok = re.match(r"\s*(const|noexcept|override|final)\b", rest)
            if tok:
                k += tok.end()
                continue
            break
        rest = pf.code_text[k:].lstrip()
        k2 = len(pf.code_text) - len(rest)
        lineno = _line_of(pf.offsets, pos)
        region = _enclosing_region(regions, line_depth, lineno)
        is_def = rest.startswith("{")
        body_code = body_raw = None
        if is_def:
            bend = _balanced(pf.code_text, k2, "{", "}")
            if bend < 0:
                continue
            body_code = pf.code_text[k2:bend]
            body_raw = pf.raw_text[k2:bend]
        is_decl = rest.startswith(";") or is_def

        if m.group(1) is not None:
            owner = m.group(1)  # out-of-line definition Type::archive_x
            ti = types.setdefault(owner, TypeInfo(owner, pf.rel, lineno))
            ti.declares_archive = True
            if is_def:
                ti.bodies.append({"file": pf.rel, "line": lineno,
                                  "code": body_code, "raw": body_raw,
                                  "method": m.group(2)})
        elif region is not None and line_depth[lineno - 1] >= region["depth"] and is_decl:
            ti = types.setdefault(region["name"],
                                  TypeInfo(region["name"], pf.rel, region["start"]))
            ti.declares_archive = True
            if is_def:
                ti.bodies.append({"file": pf.rel, "line": lineno,
                                  "code": body_code, "raw": body_raw,
                                  "method": m.group(2)})
        elif region is None and is_decl:
            owners = _param_owner_types(params)
            if owners:
                free_bodies.append({"file": pf.rel, "line": lineno,
                                    "owners": owners, "code": body_code,
                                    "raw": body_raw, "method": m.group(2)})


def _collect_transients(pf: ParsedFile) -> dict[int, dict]:
    """line -> {reason|None, line}. An annotation applies to the field on its
    own line, or to the next line when the annotation line holds no code."""
    out = {}
    for lineno, raw in enumerate(pf.raw_lines, start=1):
        if "ARCHIVE-TRANSIENT" not in raw:
            continue
        comment = raw
        ci = raw.find("//")
        if ci >= 0:
            comment = raw[ci:]
        m = _TRANSIENT.search(comment.rstrip())
        reason = m.group(1) if m else None
        if reason is not None:
            reason = reason.strip()
        out[lineno] = {"reason": reason or None, "line": lineno}
    return out


# --------------------------------------------------------------------------
# Symmetry: write-path vs read-path event traces
# --------------------------------------------------------------------------

_COND = re.compile(r"\bif\s*\(\s*(!?)\s*ar\s*\.\s*(writing|reading)\s*\(\s*\)\s*\)")


def _block_extent(text: str, start: int) -> tuple[str, int]:
    """Content of the statement starting at text[start:] (either a braced
    block or a single statement up to ';'); returns (content, end_index)."""
    i = start
    while i < len(text) and text[i] in " \t\n":
        i += 1
    if i < len(text) and text[i] == "{":
        end = _balanced(text, i, "{", "}")
        if end < 0:
            return text[i + 1:], len(text)
        return text[i + 1:end - 1], end
    semi = text.find(";", i)
    if semi < 0:
        return text[i:], len(text)
    return text[i:semi + 1], semi + 1


def _select_path(body: str, mode: str) -> str:
    """Linearize `body` for one direction: keep common code, keep the branch
    that executes when the archive is in `mode` ('w'|'r'), drop the other."""
    out = []
    i = 0
    while True:
        m = _COND.search(body, i)
        if not m:
            out.append(body[i:])
            break
        out.append(body[i:m.start()])
        negated = m.group(1) == "!"
        which = m.group(2)
        then_content, after = _block_extent(body, m.end())
        else_content = ""
        em = re.match(r"\s*else\b", body[after:])
        if em:
            else_content, after2 = _block_extent(body, after + em.end())
            after = after2
        cond_true = (mode == "w") == (which == "writing")
        if negated:
            cond_true = not cond_true
        chosen = then_content if cond_true else else_content
        out.append(_select_path(chosen, mode))
        i = after
    return "".join(out)


_EVENT = re.compile(
    r"ar\s*\.\s*(" + "|".join(ARCHIVE_PRIMS) + r")\s*\(|"
    r"(?:[A-Za-z_]\w*\s*(?:\[[^\[\]]*\]\s*)?(?:\.|->)|[A-Za-z_]\w*\s*::\s*)?"
    r"\b(archive\w*)\s*\(")


def _trace(code: str, raw: str, fields: set[str]) -> list[tuple]:
    """Ordered archive events in `code` (one linearized path): primitives
    (with the member they touch, when it is a known field), section markers
    (labels recovered from `raw`), and archive calls.

    Archive calls are normalized to ("call", method) without the receiver:
    the save path often iterates a container (structured binding locals)
    while the load path indexes it (`stats_[key]`), so receiver spellings
    differ while the byte stream is identical."""
    events: list[tuple] = []
    for m in _EVENT.finditer(code):
        if m.group(1):  # ar.<prim>(...)
            prim = m.group(1)
            paren = code.find("(", m.end() - 1)
            close = _balanced(code, paren)
            if close < 0:
                continue
            if prim == "section":
                lit = re.search(r'"([^"]*)"', raw[paren:close])
                events.append(("section", lit.group(1) if lit else "?"))
                continue
            args = code[paren + 1:close - 1]
            ref = next((t for t in re.findall(r"[A-Za-z_]\w*", args)
                        if t in fields), None)
            events.append(("prim", prim, ref) if ref is not None
                          else ("prim", prim))
        else:  # any archive call: member, Base::, or free
            events.append(("call", m.group(2)))
    return events


def _first_divergence(a: list[tuple], b: list[tuple]) -> int:
    n = min(len(a), len(b))
    for i in range(n):
        if a[i] != b[i]:
            return i
    return n


# --------------------------------------------------------------------------
# Analysis driver (regex backend)
# --------------------------------------------------------------------------


def analyze(files: list[str], root: str) -> tuple[list[dict], dict]:
    parsed = []
    types: dict[str, TypeInfo] = {}
    free_bodies: list[dict] = []
    for path in files:
        rel = os.path.relpath(path, root)
        pf = ParsedFile(path, rel)
        parsed.append(pf)
        _collect(pf, types, free_bodies)

    by_rel = {pf.rel: pf for pf in parsed}
    transients = {pf.rel: _collect_transients(pf) for pf in parsed}

    # Free archive_* functions mark their owner types snapshotable and
    # contribute their bodies to each owner's coverage text.
    for fb in free_bodies:
        for owner in fb["owners"]:
            ti = types.setdefault(owner, TypeInfo(owner, fb["file"], fb["line"]))
            ti.declares_archive = True
            if fb["code"] is not None:
                ti.bodies.append({"file": fb["file"], "line": fb["line"],
                                  "code": fb["code"], "raw": fb["raw"],
                                  "method": fb["method"]})

    # Snapshotable closure over inheritance.
    def snapshotable(name: str, seen: frozenset = frozenset()) -> bool:
        ti = types.get(name)
        if ti is None or name in seen:
            return False
        if ti.snapshotable or ti.declares_archive:
            ti.snapshotable = True
            return True
        if any(snapshotable(b, seen | {name}) for b in ti.bases):
            ti.snapshotable = True
            return True
        return False

    for name in list(types):
        snapshotable(name)

    findings: list[dict] = []

    def add(file: str, line: int, rule: str, detail: str) -> None:
        pf = by_rel.get(file)
        raw = pf.raw_lines[line - 1].strip() if pf and line <= len(pf.raw_lines) else ""
        findings.append({
            "file": file,
            "line": line,
            "rule": rule,
            "message": RULES[rule]["message"] + " [" + detail + "]",
            "snippet": raw[:160],
            "suppressed": bool(pf) and common.line_suppressed(pf.raw_lines, line, rule),
        })

    checked = 0
    for name in sorted(types):
        ti = types[name]
        if not ti.snapshotable or not ti.fields:
            continue
        checked += 1
        cover = "\n".join(b["code"] for b in ti.bodies)
        for f in ti.fields:
            ann = transients.get(f["file"], {})
            t = ann.get(f["line"]) or ann.get(f["line"] - 1)
            # A previous-line annotation must not have claimed that line's own
            # field declaration.
            if (t is not None and t["line"] == f["line"] - 1
                    and _parse_field(by_rel[f["file"]].code_lines[t["line"] - 1])):
                t = None
            if t is not None:
                if t["reason"] is None:
                    add(f["file"], t["line"], "gdisim-archive-transient-no-reason",
                        name + "::" + f["name"])
                continue
            if re.search(r"\b" + re.escape(f["name"]) + r"\b", cover):
                continue
            add(f["file"], f["line"], "gdisim-archive-missing-field",
                name + "::" + f["name"])

        field_names = {f["name"] for f in ti.fields}
        for b in ti.bodies:
            wcode = _select_path(b["code"], "w")
            rcode = _select_path(b["code"], "r")
            if wcode == rcode:
                continue  # no direction-dependent branches
            wraw = _select_path(b["raw"], "w")
            rraw = _select_path(b["raw"], "r")
            wt = _trace(wcode, wraw, field_names)
            rt = _trace(rcode, rraw, field_names)
            if wt != rt:
                i = _first_divergence(wt, rt)
                wd = wt[i] if i < len(wt) else "(end)"
                rd = rt[i] if i < len(rt) else "(end)"
                add(b["file"], b["line"], "gdisim-archive-asymmetric",
                    "%s::%s event %d: save=%s load=%s"
                    % (name, b["method"], i, wd, rd))

    stats = {"types_checked": checked}
    return findings, stats


# --------------------------------------------------------------------------
# libclang backend
# --------------------------------------------------------------------------


def analyze_libclang(files: list[str], root: str) -> tuple[list[dict], dict]:
    """AST-assisted pass: resolves fields and member references structurally,
    then reuses the regex symmetry/transient machinery (trace comparison is
    inherently textual). Falls back by raising when libclang misbehaves."""
    from clang import cindex
    from clang.cindex import CursorKind

    index = cindex.Index.create()
    regex_findings, stats = analyze(files, root)
    # Keep transient/asymmetry/no-reason findings from the lexer pass; replace
    # the missing-field set with AST-derived coverage.
    kept = [f for f in regex_findings if f["rule"] != "gdisim-archive-missing-field"]

    fields_by_type: dict[str, list[dict]] = {}
    refs_by_type: dict[str, set] = {}
    bases_by_type: dict[str, list[str]] = {}
    declares: set[str] = set()

    def record_body_refs(cursor, bucket: set) -> None:
        for c in cursor.walk_preorder():
            if c.kind in (CursorKind.MEMBER_REF_EXPR, CursorKind.MEMBER_REF,
                          CursorKind.DECL_REF_EXPR):
                if c.spelling:
                    bucket.add(c.spelling)

    for path in files:
        rel = os.path.relpath(path, root)
        tu = index.parse(path, args=["-std=c++20", "-I" + os.path.join(root, "src")])

        def walk(cursor):
            for c in cursor.get_children():
                if c.location.file and c.location.file.name != path:
                    continue
                if c.kind in (CursorKind.CLASS_DECL, CursorKind.STRUCT_DECL,
                              CursorKind.CLASS_TEMPLATE):
                    tname = c.spelling
                    for cc in c.get_children():
                        if cc.kind == CursorKind.CXX_BASE_SPECIFIER:
                            base = cc.type.spelling.split("<")[0].split("::")[-1]
                            bases_by_type.setdefault(tname, []).append(base)
                        elif cc.kind == CursorKind.FIELD_DECL:
                            fields_by_type.setdefault(tname, []).append({
                                "name": cc.spelling, "file": rel,
                                "line": cc.location.line})
                        elif (cc.kind == CursorKind.CXX_METHOD
                              and cc.spelling.startswith("archive")):
                            declares.add(tname)
                            if cc.is_definition():
                                record_body_refs(
                                    cc, refs_by_type.setdefault(tname, set()))
                elif (c.kind == CursorKind.CXX_METHOD
                      and c.spelling.startswith("archive")
                      and c.semantic_parent is not None):
                    tname = c.semantic_parent.spelling
                    declares.add(tname)
                    if c.is_definition():
                        record_body_refs(c, refs_by_type.setdefault(tname, set()))
                elif (c.kind == CursorKind.FUNCTION_DECL
                      and c.spelling.startswith("archive")):
                    owners = []
                    for arg in c.get_arguments():
                        t = arg.type.get_pointee().spelling or arg.type.spelling
                        t = t.replace("const", "").strip().split("<")[0].split("::")[-1]
                        if t and t not in _INFRA_TYPES:
                            owners.append(t)
                    for owner in owners:
                        declares.add(owner)
                        if c.is_definition():
                            record_body_refs(
                                c, refs_by_type.setdefault(owner, set()))
                walk(c)

        walk(tu.cursor)

    def snapshotable(name: str, seen: frozenset = frozenset()) -> bool:
        if name in declares:
            return True
        if name in seen:
            return False
        return any(snapshotable(b, seen | {name})
                   for b in bases_by_type.get(name, []))

    # Transient annotations come from the lexer pass (comments are invisible
    # to the AST).
    transient_lines: dict[str, dict[int, dict]] = {}
    raw_by_rel: dict[str, list[str]] = {}
    for path in files:
        rel = os.path.relpath(path, root)
        pf = ParsedFile(path, rel)
        transient_lines[rel] = _collect_transients(pf)
        raw_by_rel[rel] = pf.raw_lines

    for tname in sorted(fields_by_type):
        if not snapshotable(tname):
            continue
        refs = refs_by_type.get(tname, set())
        for f in fields_by_type[tname]:
            ann = transient_lines.get(f["file"], {})
            if ann.get(f["line"]) or ann.get(f["line"] - 1):
                continue
            if f["name"] in refs:
                continue
            raw_lines = raw_by_rel.get(f["file"], [])
            raw = raw_lines[f["line"] - 1].strip() if f["line"] <= len(raw_lines) else ""
            kept.append({
                "file": f["file"], "line": f["line"],
                "rule": "gdisim-archive-missing-field",
                "message": RULES["gdisim-archive-missing-field"]["message"]
                + " [" + tname + "::" + f["name"] + "]",
                "snippet": raw[:160],
                "suppressed": common.line_suppressed(
                    raw_lines, f["line"], "gdisim-archive-missing-field")
                if raw_lines else False,
            })
    return kept, stats


# --------------------------------------------------------------------------
# CLI
# --------------------------------------------------------------------------


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description="gdisim archive-coverage analyzer")
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories to scan (default: src/)")
    parser.add_argument("--json", metavar="FILE",
                        help="write a machine-readable report ('-' for stdout)")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--backend", choices=("auto", "regex", "libclang"),
                        default="auto")
    parser.add_argument("--include-suppressed", action="store_true")
    parser.add_argument("--root", default=None,
                        help="repo root for relative paths (default: auto)")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, spec in sorted(RULES.items()):
            print(f"{rule}: {spec['message']}")
        return 0

    root = args.root or common.default_root(__file__)
    paths = args.paths or ["src"]
    files = common.collect_sources(paths, root)
    if not files:
        print("gdisim_archive_coverage: no C++ sources found under",
              ", ".join(paths), file=sys.stderr)
        return 2

    backend = args.backend
    if backend == "auto":
        try:
            from clang import cindex  # noqa: F401
            backend = "libclang"
        except Exception:
            backend = "regex"

    if backend == "libclang":
        try:
            findings, stats = analyze_libclang(files, root)
        except Exception:
            if args.backend == "libclang":
                raise
            backend = "regex"
            findings, stats = analyze(files, root)
    else:
        findings, stats = analyze(files, root)

    active = common.finish_report(findings, files, backend, args.json,
                                  args.include_suppressed)
    print("gdisim_archive_coverage [%s]: %d files, %d snapshotable type(s), "
          "%d active finding(s), %d suppressed"
          % (backend, len(files), stats["types_checked"], len(active),
             len(findings) - len(active)), file=sys.stderr)
    return 1 if active else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
