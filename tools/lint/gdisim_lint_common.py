#!/usr/bin/env python3
"""Shared machinery for the gdisim static analyzers.

Three analyzers scan the C++ tree — the determinism lint
(``gdisim_lint.py``), the snapshot-coverage analyzer
(``gdisim_archive_coverage.py``) and the concurrency-isolation analyzer
(``gdisim_isolation.py``). They share, through this module:

  * the comment/string-stripping lexer (``strip_comments``) — the regex
    backends all operate on code with comments and literals blanked out,
    positions preserved, so a banned token inside a string never fires;
  * the NOLINT suppression protocol (``line_suppressed``,
    ``nolint_reason_findings``) — ``// NOLINT(gdisim-<rule>) <reason>`` on
    the finding line or ``// NOLINTNEXTLINE(...)`` above it, reason text
    mandatory for gdisim-scoped markers;
  * small lexical helpers (balanced-delimiter scanning, template-argument
    stripping, offset→line mapping) used by the body parsers;
  * source collection and the JSON report contract (top-level keys
    ``version/backend/scanned_files/counts/findings``, per-finding keys
    ``file/line/rule/message/snippet/suppressed``) that the lint self-tests
    pin.

Behaviour here is covered indirectly by all three self-tests in
``tests/lint/``; a change that alters finding lines, suppression semantics
or the JSON schema fails them.
"""

from __future__ import annotations

import json
import re

CXX_EXTS = (".h", ".hpp", ".hh", ".cc", ".cpp", ".cxx")

NOLINT = re.compile(r"NOLINT(NEXTLINE)?(?:\(([^)]*)\))?")

NOLINT_REASON_RULE = "gdisim-nolint-reason"
NOLINT_REASON_MESSAGE = (
    "NOLINT covering gdisim rules without a reason: say why "
    "the suppression is sound (// NOLINT(gdisim-<rule>) <reason>); this "
    "finding cannot itself be suppressed")


def suppresses(nolint_rules: str | None, rule: str) -> bool:
    """True when a NOLINT rule list covers `rule` (empty list = all)."""
    if nolint_rules is None:
        return True
    names = [r.strip() for r in nolint_rules.split(",")]
    return rule in names or "gdisim-*" in names


def line_suppressed(raw_lines: list[str], lineno: int, rule: str) -> bool:
    """Whether `rule` at `lineno` (1-based) is suppressed by a same-line
    NOLINT or a NOLINTNEXTLINE on the line above."""
    m = NOLINT.search(raw_lines[lineno - 1])
    if m and not m.group(1) and suppresses(m.group(2), rule):
        return True
    if lineno >= 2:
        m = NOLINT.search(raw_lines[lineno - 2])
        if m and m.group(1) and suppresses(m.group(2), rule):
            return True
    return False


def nolint_reason_findings(raw_lines: list[str], repo_rel: str) -> list[dict]:
    """Flag NOLINT markers that suppress gdisim rules without saying why.

    A marker is in scope when its rule list is empty (bare NOLINT covers
    everything, gdisim rules included) or names any gdisim rule. The reason
    is whatever comment text survives once the markers themselves are
    removed; punctuation alone does not count. Findings are always active:
    letting a NOLINT suppress the rule that audits NOLINTs would defeat it.
    """
    findings = []
    for lineno, raw in enumerate(raw_lines, start=1):
        markers = [
            m for m in NOLINT.finditer(raw)
            if m.group(2) is None
            or any(r.strip().startswith("gdisim") for r in m.group(2).split(","))
        ]
        if not markers:
            continue
        ci = raw.find("//")
        comment = raw[ci + 2:] if ci >= 0 else raw[markers[0].start():]
        text = NOLINT.sub("", comment).replace("*/", " ")
        if re.search(r"\w", text):
            continue
        findings.append(
            {
                "file": repo_rel,
                "line": lineno,
                "rule": NOLINT_REASON_RULE,
                "message": NOLINT_REASON_MESSAGE,
                "snippet": raw.strip()[:160],
                "suppressed": False,
            }
        )
    return findings


# --------------------------------------------------------------------------
# Comment/string stripping
# --------------------------------------------------------------------------


def strip_comments(text: str) -> tuple[list[str], list[str]]:
    """Return (code_lines, raw_lines) with comments and string/char literals
    blanked out of code_lines. Line count and column positions preserved."""
    raw_lines = text.splitlines()
    out = []
    in_block = False
    for line in raw_lines:
        buf = []
        i, n = 0, len(line)
        while i < n:
            c = line[i]
            if in_block:
                if c == "*" and i + 1 < n and line[i + 1] == "/":
                    in_block = False
                    buf.append("  ")
                    i += 2
                else:
                    buf.append(" ")
                    i += 1
            elif c == "/" and i + 1 < n and line[i + 1] == "/":
                buf.append(" " * (n - i))
                break
            elif c == "/" and i + 1 < n and line[i + 1] == "*":
                in_block = True
                buf.append("  ")
                i += 2
            elif c in "\"'":
                quote = c
                buf.append(c)
                i += 1
                while i < n:
                    if line[i] == "\\" and i + 1 < n:
                        buf.append("  ")
                        i += 2
                    elif line[i] == quote:
                        buf.append(quote)
                        i += 1
                        break
                    else:
                        buf.append(" ")
                        i += 1
            else:
                buf.append(c)
                i += 1
        out.append("".join(buf))
    return out, raw_lines


# --------------------------------------------------------------------------
# Small lexical helpers
# --------------------------------------------------------------------------


def strip_angles(s: str) -> str:
    """Remove balanced <...> template-argument regions (handles nesting)."""
    out = []
    depth = 0
    for ch in s:
        if ch == "<":
            depth += 1
        elif ch == ">" and depth > 0:
            depth -= 1
        elif depth == 0:
            out.append(ch)
    return "".join(out)


def balanced(text: str, start: int, open_ch: str = "(", close_ch: str = ")") -> int:
    """Given text[start] == open_ch, return index one past the matching
    close_ch, or -1 when unbalanced."""
    depth = 0
    for i in range(start, len(text)):
        c = text[i]
        if c == open_ch:
            depth += 1
        elif c == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


def line_of(offsets: list[int], pos: int) -> int:
    """1-based line number for a character offset (offsets = line starts)."""
    lo, hi = 0, len(offsets) - 1
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if offsets[mid] <= pos:
            lo = mid
        else:
            hi = mid - 1
    return lo + 1


# --------------------------------------------------------------------------
# Source collection + report contract
# --------------------------------------------------------------------------


def collect_sources(paths: list[str], root: str) -> list[str]:
    import os

    files = []
    for p in paths:
        ap = p if os.path.isabs(p) else os.path.join(root, p)
        if os.path.isfile(ap):
            files.append(ap)
        else:
            for dirpath, _dirnames, filenames in os.walk(ap):
                for fn in sorted(filenames):
                    if fn.endswith(CXX_EXTS):
                        files.append(os.path.join(dirpath, fn))
    return sorted(set(files))


def default_root(tool_file: str) -> str:
    """Repo root assuming the tool lives at <root>/tools/lint/<tool>.py."""
    import os

    return os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(tool_file))))


def finish_report(findings: list[dict], files: list[str], backend: str,
                  json_dest: str | None, include_suppressed: bool) -> list[dict]:
    """Shared CLI tail: sort findings, write the JSON report, print the
    human-readable listing. Returns the active (unsuppressed) findings; the
    caller prints its own stderr summary and derives the exit status."""
    findings.sort(key=lambda f: (f["file"], f["line"], f["rule"]))
    active = [f for f in findings if not f["suppressed"]]

    if json_dest:
        report = {
            "version": 1,
            "backend": backend,
            "scanned_files": len(files),
            "counts": {
                "active": len(active),
                "suppressed": len(findings) - len(active),
            },
            "findings": findings,
        }
        payload = json.dumps(report, indent=2)
        if json_dest == "-":
            print(payload)
        else:
            with open(json_dest, "w", encoding="utf-8") as f:
                f.write(payload + "\n")

    shown = findings if include_suppressed else active
    for f in shown:
        tag = " (suppressed)" if f["suppressed"] else ""
        print(f"{f['file']}:{f['line']}: [{f['rule']}]{tag} {f['message']}")
        print(f"    {f['snippet']}")
    return active
