#!/usr/bin/env python3
"""gdisim determinism lint.

Scans C++ sources for constructs that break run-to-run or thread-count
determinism in the simulator:

  gdisim-ptr-key-iter     range-for / iterator loop over a pointer-keyed
                          unordered container (iteration order depends on
                          allocator addresses)
  gdisim-ptr-key-decl     declaration of a pointer-keyed unordered container
                          (a loop over it is one refactor away)
  gdisim-addr-ordered     ordered container / comparator keyed on pointers
                          (std::set<T*>, std::map<T*, ...>, std::less<T*>)
  gdisim-raw-rand         std::rand / srand / std::random_device / std::mt19937
                          outside the seeding shim (src/core/rng.h|cc)
  gdisim-wall-clock       wall-clock reads in sim code (system_clock,
                          steady_clock, high_resolution_clock, time(),
                          gettimeofday, clock_gettime, localtime, gmtime)
  gdisim-getenv           getenv in sim code (behaviour varies by environment)
  gdisim-snapshot-ptr     raw-pointer field in a snapshotable type (one whose
                          body declares an archive method, that is lexically
                          nested in such a type, or that an archive_* free
                          function takes by reference); addresses don't
                          survive a snapshot round trip
  gdisim-nolint-reason    a NOLINT that covers gdisim rules but carries no
                          reason text; suppressions must say why they are
                          sound so they can be audited

Suppression: append ``// NOLINT(gdisim-<rule>) <reason>`` to the offending
line, or put ``// NOLINTNEXTLINE(gdisim-<rule>) <reason>`` on the line above.
A bare ``NOLINT`` / ``NOLINTNEXTLINE`` (no rule list) suppresses every rule,
as does ``NOLINT(gdisim-*)``. The reason text is mandatory: a gdisim-scoped
marker whose comment says nothing beyond the marker itself is flagged by
gdisim-nolint-reason, and that finding is deliberately not suppressible —
the only fix is to write the reason.

The scanner prefers libclang (python bindings) when importable, which lets it
resolve typedefs and distinguish declarations from comments structurally.
The container image this repo targets does not ship libclang, so the default
path is a comment/string-stripping lexer plus regex rules; both paths emit
the same finding schema.

Usage:
  gdisim_lint.py [paths...] [--json FILE] [--list-rules] [--include-suppressed]

Exit status: 0 when no active (unsuppressed) findings, 1 otherwise,
2 on usage error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import gdisim_lint_common as common  # noqa: E402

# Shared machinery (tools/lint/gdisim_lint_common.py), re-exported under the
# historical names so the sibling analyzers and any external callers keep
# working; see that module for the lexer/suppression/report contracts.
CXX_EXTS = common.CXX_EXTS
collect_sources = common.collect_sources
_NOLINT = common.NOLINT
_suppresses = common.suppresses
_strip_comments = common.strip_comments
_line_suppressed = common.line_suppressed
_nolint_reason_findings = common.nolint_reason_findings

# --------------------------------------------------------------------------
# Rules
# --------------------------------------------------------------------------

# Matches a pointer type as the first template argument of an associative
# container, e.g. `std::unordered_map<OperationInstance*, ...>` or
# `std::unordered_set<const Foo *>`. Allows nested namespace qualifiers.
_PTR_KEY = r"<\s*(?:const\s+)?[A-Za-z_][A-Za-z0-9_:<>]*\s*\*\s*[,>]"

RULES = {
    "gdisim-ptr-key-iter": {
        "pattern": re.compile(
            r"for\s*\(\s*(?:const\s+)?auto\s*&{0,2}\s*[A-Za-z_\[\]"
            r"][^)]*:\s*[A-Za-z_][A-Za-z0-9_.\->]*_?\s*\)"
        ),
        "message": "range-for over a container; if it is pointer-keyed and "
        "unordered, iteration order is allocator-dependent",
        # Only fires when the loop target was declared pointer-keyed in the
        # same file (see _ptr_key_names below); standalone regex would drown
        # every range-for in noise.
        "needs_ptr_key_target": True,
    },
    "gdisim-ptr-key-decl": {
        "pattern": re.compile(r"std\s*::\s*unordered_(?:map|set|multimap|multiset)\s*" + _PTR_KEY),
        "message": "pointer-keyed unordered container: iteration order depends "
        "on allocation addresses; key by a stable ID (e.g. instance_serial) "
        "or use a JobPool",
    },
    "gdisim-addr-ordered": {
        "pattern": re.compile(
            r"std\s*::\s*(?:map|set|multimap|multiset)\s*" + _PTR_KEY
            + r"|std\s*::\s*less\s*<\s*[A-Za-z_][A-Za-z0-9_:<>]*\s*\*\s*>"
        ),
        "message": "address-ordered comparator: ordering follows allocation "
        "addresses, which vary across runs and thread counts",
    },
    "gdisim-raw-rand": {
        "pattern": re.compile(
            r"std\s*::\s*rand\b|(?<![A-Za-z0-9_])s?rand\s*\(|"
            r"random_device\b|mt19937(?:_64)?\b"
        ),
        "message": "raw RNG outside the seeding shim: draw from core/rng.h "
        "(xoshiro256** seeded from the run seed) so streams are reproducible",
        "exempt_files": ("src/core/rng.h", "src/core/rng.cc"),
    },
    "gdisim-wall-clock": {
        "pattern": re.compile(
            r"system_clock\b|steady_clock\b|high_resolution_clock\b|"
            r"gettimeofday\b|clock_gettime\b|localtime\b|gmtime\b|"
            r"(?<![A-Za-z0-9_.])time\s*\(\s*(?:NULL|nullptr|0|\))"
        ),
        "message": "wall-clock read in sim code: simulated time must come from "
        "the tick counter, never the host clock",
    },
    "gdisim-getenv": {
        "pattern": re.compile(r"(?<![A-Za-z0-9_])(?:std\s*::\s*)?getenv\s*\("),
        "message": "getenv in sim code: behaviour must not depend on the host "
        "environment; thread configuration through Scenario/GlobalOptions",
    },
    "gdisim-snapshot-ptr": {
        # File-level rule: needs struct/class region tracking, not a line
        # regex. Findings come from _snapshot_ptr_findings below.
        "pattern": None,
        "file_level": True,
        "message": "raw-pointer field in a snapshotable type: the archive "
        "path must re-express it as a stable id (AgentId, instance serial, "
        "pool/queue index); once it does, acknowledge with "
        "NOLINT(gdisim-snapshot-ptr)",
    },
    "gdisim-nolint-reason": {
        # File-level rule: inspects comment text, which the line regexes
        # never see. Findings come from common.nolint_reason_findings.
        "pattern": None,
        "file_level": True,
        "message": common.NOLINT_REASON_MESSAGE,
    },
}


def _ptr_key_names(code_lines: list[str]) -> set[str]:
    """Names of variables declared with a pointer-keyed unordered container
    anywhere in the file — used to make gdisim-ptr-key-iter precise."""
    decl = re.compile(
        r"std\s*::\s*unordered_(?:map|set|multimap|multiset)\s*" + _PTR_KEY
    )
    name = re.compile(r">\s*([A-Za-z_][A-Za-z0-9_]*)\s*[;{=]")
    names: set[str] = set()
    for line in code_lines:
        if decl.search(line):
            m = name.search(line)
            if m:
                names.add(m.group(1))
    return names


# --------------------------------------------------------------------------
# Snapshot-pointer rule (file level)
# --------------------------------------------------------------------------

_TYPE_HEADER = re.compile(r"\b(struct|class)\s+([A-Za-z_]\w*)")
_ARCHIVE_CALLISH = re.compile(r"\barchive\w*\s*\(")
# A raw-pointer member declaration: `Type* name;`, `const T* n = nullptr;`.
# Parens are excluded everywhere so function/method declarations returning
# pointers (and function-pointer members) never match.
_PTR_FIELD = re.compile(
    r"^\s*(?:const\s+)?[A-Za-z_][\w:]*(?:<[^;()]*>)?\s*\*\s*(?:const\s+)?"
    r"[A-Za-z_]\w*\s*(?:=\s*[^;()]*|\{[^;()]*\})?\s*;"
)


def _scan_type_regions(code_lines: list[str]) -> tuple[list[dict], list[int]]:
    """Brace-walk the file into struct/class body regions.

    Returns (regions, line_depth): each region records its name, body line
    span, body brace depth, and enclosing region; line_depth[i] is the open
    brace count at the start of line i+1. Pointer fields are recognised as
    lines matching _PTR_FIELD whose start-of-line depth equals the region's
    body depth (deeper lines sit in nested scopes/method bodies)."""
    regions: list[dict] = []
    open_stack: list[int | None] = []  # region index per open brace, or None
    line_depth: list[int] = []
    pending = ""
    for line in code_lines:
        line_depth.append(len(open_stack))
        for ch in line:
            if ch == "{":
                header = None
                # `template <class T>` introduces type keywords that are not
                # type definitions; drop template intros before matching.
                intro = re.sub(r"\btemplate\s*<[^<>]*>", " ", pending)
                if not re.search(r"\benum\b", intro):
                    for m in _TYPE_HEADER.finditer(intro):
                        header = m  # last struct/class before the brace
                if header:
                    parent = next(
                        (i for i in reversed(open_stack) if i is not None), None)
                    regions.append({
                        "name": header.group(2),
                        "start": len(line_depth),
                        "end": None,
                        "depth": len(open_stack) + 1,
                        "parent": parent,
                        "snap": None,
                    })
                    open_stack.append(len(regions) - 1)
                else:
                    open_stack.append(None)
                pending = ""
            elif ch == "}":
                if open_stack:
                    idx = open_stack.pop()
                    if idx is not None:
                        regions[idx]["end"] = len(line_depth)
                pending = ""
            elif ch == ";":
                pending = ""
            else:
                pending += ch
        pending += " "
    for r in regions:
        if r["end"] is None:
            r["end"] = len(code_lines)
    return regions, line_depth


def _snapshot_ptr_findings(code_lines: list[str], raw_lines: list[str],
                           repo_rel: str) -> list[dict]:
    """gdisim-snapshot-ptr: raw-pointer fields in snapshotable types.

    A type is snapshotable when its body declares an archive method, when it
    is lexically nested inside a snapshotable type (nested job/message
    structs are archived by the enclosing type's method), or when the file
    declares an archive_* free function taking it by reference/pointer
    (e.g. archive_stage_job(..., StageJob&))."""
    regions, line_depth = _scan_type_regions(code_lines)
    joined = " ".join(code_lines)

    def snapshotable(idx: int) -> bool:
        r = regions[idx]
        if r["snap"] is None:
            body = " ".join(code_lines[r["start"] - 1:r["end"]])
            r["snap"] = bool(
                _ARCHIVE_CALLISH.search(body)
                or re.search(
                    r"\barchive\w*\s*\([^;{)]*\b" + re.escape(r["name"]) + r"\s*[&*]",
                    joined)
                or (r["parent"] is not None and snapshotable(r["parent"]))
            )
        return r["snap"]

    spec = RULES["gdisim-snapshot-ptr"]
    findings = []
    for idx, r in enumerate(regions):
        if not snapshotable(idx):
            continue
        for lineno in range(r["start"], min(r["end"], len(code_lines)) + 1):
            if line_depth[lineno - 1] != r["depth"]:
                continue
            if not _PTR_FIELD.match(code_lines[lineno - 1]):
                continue
            findings.append({
                "file": repo_rel,
                "line": lineno,
                "rule": "gdisim-snapshot-ptr",
                "message": spec["message"],
                "snippet": raw_lines[lineno - 1].strip()[:160],
                "suppressed": _line_suppressed(raw_lines, lineno,
                                               "gdisim-snapshot-ptr"),
            })
    return findings


# --------------------------------------------------------------------------
# Scanners
# --------------------------------------------------------------------------


def scan_file_regex(path: str, repo_rel: str) -> list[dict]:
    with open(path, encoding="utf-8", errors="replace") as f:
        text = f.read()
    code_lines, raw_lines = _strip_comments(text)
    ptr_names = _ptr_key_names(code_lines)
    findings = _snapshot_ptr_findings(code_lines, raw_lines, repo_rel)
    findings.extend(_nolint_reason_findings(raw_lines, repo_rel))
    for lineno, (code, raw) in enumerate(zip(code_lines, raw_lines), start=1):
        for rule, spec in RULES.items():
            if spec.get("file_level"):
                continue
            exempt = spec.get("exempt_files", ())
            if any(repo_rel.endswith(e) for e in exempt):
                continue
            m = spec["pattern"].search(code)
            if not m:
                continue
            if spec.get("needs_ptr_key_target"):
                target = re.search(r":\s*([A-Za-z_][A-Za-z0-9_]*)", m.group(0))
                if not target or target.group(1) not in ptr_names:
                    continue
            suppressed = _line_suppressed(raw_lines, lineno, rule)
            findings.append(
                {
                    "file": repo_rel,
                    "line": lineno,
                    "rule": rule,
                    "message": spec["message"],
                    "snippet": raw.strip()[:160],
                    "suppressed": suppressed,
                }
            )
    return findings


def scan_file_libclang(path: str, repo_rel: str, index) -> list[dict]:
    """AST-assisted pass: walks range-for statements and checks whether the
    range expression's type is a pointer-keyed unordered container, then
    falls back to the regex rules for the token-level checks. Requires the
    libclang python bindings; the caller handles their absence."""
    from clang import cindex  # noqa: F401  (import checked by caller)

    findings = scan_file_regex(path, repo_rel)
    tu = index.parse(path, args=["-std=c++20", "-Isrc"])
    with open(path, encoding="utf-8", errors="replace") as f:
        raw_lines = f.read().splitlines()

    def container_is_ptr_keyed(type_spelling: str) -> bool:
        return bool(
            re.search(r"unordered_(?:map|set|multimap|multiset)\s*" + _PTR_KEY,
                      type_spelling)
        )

    from clang.cindex import CursorKind

    def walk(cursor):
        if cursor.kind == CursorKind.CXX_FOR_RANGE_STMT:
            children = list(cursor.get_children())
            if children:
                range_expr = children[-2] if len(children) >= 2 else children[0]
                spelling = range_expr.type.get_canonical().spelling
                if container_is_ptr_keyed(spelling):
                    line = cursor.location.line
                    if not any(
                        f["rule"] == "gdisim-ptr-key-iter" and f["line"] == line
                        for f in findings
                    ):
                        findings.append(
                            {
                                "file": repo_rel,
                                "line": line,
                                "rule": "gdisim-ptr-key-iter",
                                "message": RULES["gdisim-ptr-key-iter"]["message"],
                                "snippet": raw_lines[line - 1].strip()[:160]
                                if 0 < line <= len(raw_lines)
                                else "",
                                "suppressed": _line_suppressed(
                                    raw_lines, line, "gdisim-ptr-key-iter"
                                ),
                            }
                        )
        for child in cursor.get_children():
            if child.location.file and child.location.file.name == path:
                walk(child)

    walk(tu.cursor)
    return findings


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description="gdisim determinism lint")
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories to scan (default: src/)")
    parser.add_argument("--json", metavar="FILE",
                        help="write a machine-readable report to FILE ('-' for stdout)")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--include-suppressed", action="store_true",
                        help="print suppressed findings too (always in JSON)")
    parser.add_argument("--root", default=None,
                        help="repo root for relative paths (default: auto)")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, spec in sorted(RULES.items()):
            print(f"{rule}: {spec['message']}")
        return 0

    root = args.root or common.default_root(__file__)
    paths = args.paths or ["src"]
    files = collect_sources(paths, root)
    if not files:
        print("gdisim_lint: no C++ sources found under", ", ".join(paths),
              file=sys.stderr)
        return 2

    index = None
    backend = "regex"
    try:
        from clang import cindex

        index = cindex.Index.create()
        backend = "libclang"
    except Exception:
        pass

    findings: list[dict] = []
    for path in files:
        rel = os.path.relpath(path, root)
        if backend == "libclang":
            try:
                findings.extend(scan_file_libclang(path, rel, index))
            except Exception:
                findings.extend(scan_file_regex(path, rel))
        else:
            findings.extend(scan_file_regex(path, rel))

    active = common.finish_report(findings, files, backend, args.json,
                                  args.include_suppressed)
    summary = (f"gdisim_lint [{backend}]: {len(files)} files, "
               f"{len(active)} active finding(s), "
               f"{len(findings) - len(active)} suppressed")
    print(summary, file=sys.stderr)
    return 1 if active else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
