// Lint self-test fixture: every construct is NOLINT'd; the linter must
// report each finding with suppressed=true and exit 0 for this file.
#include <cstdlib>
#include <ctime>
#include <unordered_map>

struct Job {};

void suppressed_cases() {
  std::unordered_map<Job*, int> live;  // NOLINT(gdisim-ptr-key-decl)
  // NOLINTNEXTLINE(gdisim-ptr-key-iter)
  for (auto& [job, refs] : live) {
    (void)job;
    (void)refs;
  }
  // NOLINTNEXTLINE(gdisim-*)
  const long t = time(nullptr);
  (void)t;
  const char* env = std::getenv("HOME");  // NOLINT
  (void)env;
}

class StateArchive;

struct SnapshotState {
  Job* owner;  // travels as a stable id  NOLINT(gdisim-snapshot-ptr)
  void archive_state(StateArchive& ar);
};
