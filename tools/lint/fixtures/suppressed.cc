// Lint self-test fixture: every construct is NOLINT'd; the linter must
// report each finding with suppressed=true and exit 0 for this file.
#include <cstdlib>
#include <ctime>
#include <unordered_map>

struct Job {};

void suppressed_cases() {
  std::unordered_map<Job*, int> live;  // NOLINT(gdisim-ptr-key-decl) fixture: lookup only
  // NOLINTNEXTLINE(gdisim-ptr-key-iter) fixture: order not observable
  for (auto& [job, refs] : live) {
    (void)job;
    (void)refs;
  }
  // NOLINTNEXTLINE(gdisim-*) fixture: replay shim, not sim time
  const long t = time(nullptr);
  (void)t;
  const char* env = std::getenv("HOME");  // NOLINT fixture: host-tool probe
  (void)env;
}

class StateArchive;

struct SnapshotState {
  Job* owner;  // travels as a stable id  NOLINT(gdisim-snapshot-ptr)
  void archive_state(StateArchive& ar);
};
