// Lint self-test fixture: every construct below must be flagged.
// This file is never compiled; it exists so tests/lint_self_test can pin
// the linter's behaviour (and its JSON schema) against known-bad input.
#include <cstdlib>
#include <ctime>
#include <map>
#include <random>
#include <set>
#include <unordered_map>
#include <unordered_set>

struct Job {};

void ptr_key_decls() {
  std::unordered_map<Job*, int> live;       // gdisim-ptr-key-decl
  std::unordered_set<const Job*> seen;      // gdisim-ptr-key-decl
  for (auto& [job, refs] : live) {          // gdisim-ptr-key-iter
    (void)job;
    (void)refs;
  }
  for (const auto& j : seen) {              // gdisim-ptr-key-iter
    (void)j;
  }
}

void addr_ordered() {
  std::map<Job*, int> ordered;              // gdisim-addr-ordered
  std::set<Job*, std::less<Job*>> by_addr;  // gdisim-addr-ordered
  (void)ordered;
  (void)by_addr;
}

int raw_rand() {
  std::random_device rd;                    // gdisim-raw-rand
  std::mt19937 gen(rd());                   // gdisim-raw-rand
  return std::rand() + static_cast<int>(gen());  // gdisim-raw-rand
}

long wall_clock() {
  const long t = time(nullptr);             // gdisim-wall-clock
  return t;
}

const char* env_read() {
  return std::getenv("GDISIM_THREADS");     // gdisim-getenv
}

class StateArchive;

// Snapshotable (declares an archive method): raw-pointer fields flagged.
struct SnapshotQueue {
  Job* head;                                // gdisim-snapshot-ptr
  int depth = 0;
  void archive_state(StateArchive& ar);
  // Nested structs are archived by the enclosing type's method.
  struct Entry {
    Job* parent;                            // gdisim-snapshot-ptr
    double work = 0.0;
  };
};

// Snapshotable via a free archive_* function taking it by reference.
struct WireJob {
  Job* origin;                              // gdisim-snapshot-ptr
  long tag = 0;
};
void archive_wire_job(StateArchive& ar, WireJob& job);

// Reasonless gdisim suppressions are themselves findings; the suppressed
// finding still surfaces in the JSON report, marked suppressed.
const char* reasonless_suppression() {
  return std::getenv("HOME");               // NOLINT(gdisim-getenv)
}

long reasonless_nextline() {
  // NOLINTNEXTLINE
  return time(nullptr);
}
