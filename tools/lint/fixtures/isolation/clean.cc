// Fixture: the sanctioned concurrency patterns — zero findings expected.
// Cross-agent effects travel through Inbox::post; own-state writes, const
// statics and annotated shared state are all fine.
#include <cstdint>

namespace fixture {

template <typename T>
class Inbox {
 public:
  void post(const T& msg) { pending_ = msg; }

 private:
  T pending_{};
};

class Agent {
 public:
  virtual ~Agent() = default;
  virtual void on_tick(long now) = 0;
  Inbox<long>& inbox() { return inbox_; }

 private:
  Inbox<long> inbox_;
};

class Sender : public Agent {
 public:
  void on_tick(long now) override {
    local_ += 1;  // own state: always allowed
    if (peer_ != nullptr) {
      peer_->inbox().post(now);  // cross-agent effect via the inbox
    }
  }

 private:
  long local_ = 0;
  Agent* peer_ = nullptr;
};

static const long kWindow = 16;

}  // namespace fixture
