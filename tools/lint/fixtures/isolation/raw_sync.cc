// Fixture: synchronization primitives declared outside src/core/ must carry
// a GDISIM-SHARED reason so the concurrency inventory stays auditable.
// Lock *usage* (lock_guard) and annotated declarations are exempt.
#include <atomic>
#include <mutex>

namespace fixture {

class Widget {
 public:
  long read() const {
    std::lock_guard<std::mutex> hold(mu_);  // usage, not a declaration
    return slow_;
  }

 private:
  std::atomic<long> hits_{0};  // unannotated primitive: flagged
  mutable std::mutex mu_;      // unannotated primitive: flagged
  std::atomic<long> ticks_{0};  // GDISIM-SHARED: relaxed metrics counter
  long slow_ = 0;
};

}  // namespace fixture
