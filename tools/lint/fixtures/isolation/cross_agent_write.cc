// Fixture: tick-phase code writing through pointers/references to another
// agent's state. Every write below must be flagged gdisim-cross-agent-write;
// the sanctioned path (Inbox::post) is exercised in clean.cc.
#include <cstdint>

namespace fixture {

class Agent {
 public:
  virtual ~Agent() = default;
  virtual void on_tick(long now) = 0;
  virtual void on_interactions(long now) {}
};

class Peer : public Agent {
 public:
  void on_tick(long now) override { last_ = now; }
  long hp_ = 0;
  long heat_ = 0;
  long last_ = 0;
};

class Attacker : public Agent {
 public:
  void on_tick(long now) override {
    target_->hp_ -= 5;  // direct cross-agent write from a tick entry
    splash(now);
  }
  void on_interactions(long now) override {
    Peer& p = *target_;
    p.heat_ += 1;  // write through a reference to another agent
  }

 private:
  // Reached from on_tick through the lexical call closure.
  void splash(long now) { target_->heat_ = now; }

  Peer* target_ = nullptr;
};

}  // namespace fixture
