// Fixture: mutable statics and namespace-scope globals without
// synchronization or a GDISIM-SHARED sanction. The const / thread_local /
// annotated declarations must NOT be flagged.
namespace fixture {

int g_total = 0;  // mutable global: flagged

static const int kLimit = 64;       // const: exempt
thread_local int tl_scratch = 0;    // thread-local: exempt
int g_annotated = 0;  // GDISIM-SHARED: test-only tally, single writer
int g_bare = 0;  // GDISIM-SHARED

inline int bump() {
  static int hits = 0;  // mutable function-local static: flagged
  return ++hits;
}

}  // namespace fixture
