// Fixture: NOLINT suppression of isolation rules. Markers with reasons
// suppress their finding; the reasonless marker on bare_ is itself flagged
// by gdisim-nolint-reason (which cannot be suppressed).
#include <atomic>

namespace fixture {

int g_tuning = 0;  // NOLINT(gdisim-unguarded-shared) test knob, harness is single-threaded

class Box {
 private:
  // NOLINTNEXTLINE(gdisim-raw-sync) fixture primitive, inventory tracked here
  std::atomic<int> counter_{0};
  std::atomic<int> bare_{0};  // NOLINT(gdisim-raw-sync)
};

}  // namespace fixture
