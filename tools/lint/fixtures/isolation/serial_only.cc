// Fixture: a class with an engine-serial fast path. fast_ loses its lock
// protection inside the `if (serial_)` branch, so any method touching it
// must check the gate, hold the lock, or carry a GDISIM-SERIAL-OK reason.
#include <vector>

namespace fixture {

class Gate {
 public:
  void lock() {}
  void unlock() {}
};

class Channel {
 public:
  void set_serial(bool on) { serial_ = on; }

  void post(int v) {
    if (serial_) {
      fast_.push_back(v);  // synchronization dropped behind the gate
      return;
    }
    gate_.lock();
    fast_.push_back(v);
    gate_.unlock();
  }

  int unsafe_peek() const { return fast_.back(); }  // no gate, no lock: flagged

  // GDISIM-SERIAL-OK: only called while the engine is paused between runs
  int audited_size() const { return static_cast<int>(fast_.size()); }

 private:
  bool serial_ = false;
  Gate gate_;
  std::vector<int> fast_;
};

}  // namespace fixture
