// Archive-coverage fixture: ARCHIVE-TRANSIENT annotations with and without a
// reason. Exercised by tests/lint/archive_coverage_self_test.py -- keep line
// numbers stable or update EXPECTED there.
#include <cstdint>

namespace fx {

struct StateArchive {
  void u64(std::uint64_t&);
  void section(const char*);
};

class Cache {
 public:
  void archive_state(StateArchive& ar) {
    ar.section("cache");
    ar.u64(entries_);
  }

 private:
  std::uint64_t entries_ = 0;
  double hit_rate_ = 0.0;  // ARCHIVE-TRANSIENT
  // ARCHIVE-TRANSIENT: rebuilt from entries_ on first access
  double miss_rate_ = 0.0;
};

}  // namespace fx
