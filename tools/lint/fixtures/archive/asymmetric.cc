// Archive-coverage fixture: save/load paths that disagree. Exercised by
// tests/lint/archive_coverage_self_test.py -- keep line numbers stable or
// update EXPECTED there.
#include <cstdint>

namespace fx {

struct StateArchive {
  bool writing() const;
  bool reading() const;
  void u64(std::uint64_t&);
  void section(const char*);
};

// Reordered: the load path consumes b_ from bytes that held a_.
class Pair {
 public:
  void archive_state(StateArchive& ar) {
    ar.section("pair");
    if (ar.writing()) {
      ar.u64(a_);
      ar.u64(b_);
    } else {
      ar.u64(b_);
      ar.u64(a_);
    }
  }

 private:
  std::uint64_t a_ = 0;
  std::uint64_t b_ = 0;
};

// One-sided: the save path emits y_ but the load path never consumes it.
class Skew {
 public:
  void archive_state(StateArchive& ar) {
    ar.section("skew");
    ar.u64(x_);
    if (ar.writing()) ar.u64(y_);
    if (ar.reading()) y_ = 0;
  }

 private:
  std::uint64_t x_ = 0;
  std::uint64_t y_ = 0;
};

}  // namespace fx
