// Archive-coverage fixture: every field is covered through delegation --
// nested archive_state calls, Base::archive_state, and a free archive_*
// function. The analyzer must report ZERO findings here; a false positive
// on any of these patterns fails the self-test.
#include <cstdint>

namespace fx {

struct StateArchive {
  bool writing() const;
  bool reading() const;
  void u64(std::uint64_t&);
  void f64(double&);
  void section(const char*);
};

class Inner {
 public:
  void archive_state(StateArchive& ar) { ar.u64(ticks_); }

 private:
  std::uint64_t ticks_ = 0;
};

struct Slot {
  double load = 0.0;
};

inline void archive_slot(StateArchive& ar, Slot& s) { ar.f64(s.load); }

class Base {
 public:
  void archive_state(StateArchive& ar) { ar.u64(serial_); }

 private:
  std::uint64_t serial_ = 0;
};

class Outer : public Base {
 public:
  void archive_state(StateArchive& ar) {
    Base::archive_state(ar);
    ar.section("outer");
    inner_.archive_state(ar);
    archive_slot(ar, slot_);
  }

 private:
  Inner inner_;
  Slot slot_;
};

}  // namespace fx
