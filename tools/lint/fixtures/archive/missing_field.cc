// Archive-coverage fixture: a snapshotable type with one field that is
// neither archived nor annotated. Exercised by
// tests/lint/archive_coverage_self_test.py -- keep line numbers stable or
// update EXPECTED there.
#include <cstdint>

namespace fx {

struct StateArchive {
  bool writing() const;
  bool reading() const;
  void u64(std::uint64_t&);
  void f64(double&);
  void section(const char*);
};

class Meter {
 public:
  void archive_state(StateArchive& ar) {
    ar.section("meter");
    ar.u64(count_);
    ar.f64(rate_);
  }

 private:
  std::uint64_t count_ = 0;
  double rate_ = 0.0;
  double dropped_ = 0.0;
  double cache_ = 0.0;  // ARCHIVE-TRANSIENT: derived from rate_; rebuilt on demand
  double debug_gauge_ = 0.0;  // NOLINT(gdisim-archive-missing-field) fixture: suppressed finding
};

}  // namespace fx
