// Lint self-test fixture: nothing here may be flagged. Exercises the
// comment/string stripper and the stable-ID idioms the lint steers toward.
#include <cstdint>
#include <string>
#include <unordered_map>

struct Op {};

// Mentions of system_clock, std::rand and getenv inside comments are fine.
void clean_cases() {
  // Stable-ID keyed map: the recommended replacement for pointer keys.
  std::unordered_map<std::uint64_t, Op> live;
  for (auto& [serial, op] : live) {
    (void)serial;
    (void)op;
  }
  // String literals must not trip the rules either:
  const std::string msg = "call std::rand() or time(nullptr) at your peril";
  (void)msg;
  // An identifier merely *containing* a banned token is fine:
  int uptime(int);  // "time(" preceded by letters
  (void)uptime;
}

class StateArchive;

// Raw-pointer fields are fine in types with no archive path at all.
struct TransientView {
  Op* current = nullptr;
  Op* next = nullptr;
};

// Snapshotable types may hold smart pointers and plain values freely; only
// raw-pointer fields need the stable-id treatment. Pointer-returning
// methods and pointer locals inside method bodies are not fields.
struct SnapshotClean {
  std::uint64_t serial = 0;
  void archive_state(StateArchive& ar);
  Op* find(std::uint64_t key);
  int drain() {
    Op* scratch = nullptr;
    (void)scratch;
    return 0;
  }
};
