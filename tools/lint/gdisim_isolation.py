#!/usr/bin/env python3
"""gdisim concurrency-isolation analyzer.

Statically proves the engine's agent-isolation model — the discipline that
makes parallel tick execution and the engine-serial fast path sound. The
model (DESIGN.md "Concurrency model"):

  * during the tick phase each agent may mutate only its own state; all
    cross-agent effects travel through ``Inbox::post`` / port APIs;
  * genuinely shared mutable state (dispatcher handshakes, wake calendar,
    metric counters) must be atomic, lock-guarded, or explicitly sanctioned
    with ``// GDISIM-SHARED: <reason>``;
  * state whose synchronization is conditionally dropped by the
    engine-serial hint (``set_serial`` / ``on_engine_serial``) may only be
    touched behind the serial gate, under the shard lock, via atomic
    accessors, or at sites annotated ``// GDISIM-SERIAL-OK: <reason>``;
  * new synchronization primitives outside ``src/core/`` must carry a
    ``// GDISIM-SHARED: <reason>`` so the concurrency inventory stays
    auditable.

Rules:

  gdisim-cross-agent-write      tick-phase code (reachable from an
                                ``on_tick`` / ``on_interactions`` override)
                                writes through a pointer or reference to
                                another agent's state
  gdisim-unguarded-shared       mutable static or namespace-scope global
                                that is neither const, atomic, thread_local
                                nor annotated GDISIM-SHARED
  gdisim-serial-only            member whose synchronization the serial
                                fast path drops, touched without checking
                                the gate / taking the lock / atomic access
  gdisim-raw-sync               atomic/mutex/spinlock declaration outside
                                src/core/ without a GDISIM-SHARED
                                annotation
  gdisim-isolation-annotation-no-reason
                                a GDISIM-SHARED / GDISIM-SERIAL-OK
                                annotation without a reason
  gdisim-nolint-reason          a NOLINT covering gdisim rules without a
                                reason (shared with the sibling analyzers)

Annotations are structured comments on the declaration line or the line
above::

    std::atomic<long> hits_{0};   // GDISIM-SHARED: relaxed metrics counter
    int cache_size() const;       // GDISIM-SERIAL-OK: engine paused here

``// NOLINT(gdisim-<rule>) <reason>`` suppressions work as in gdisim_lint.

Backends: prefers libclang (python bindings) when importable — the class
hierarchy (which types are Agents) is then resolved from the AST — and
falls back to a comment-stripping lexer plus regex rules. Both emit the
same finding schema; ``--backend`` pins one.

Usage:
  gdisim_isolation.py [paths...] [--json FILE] [--list-rules]
                      [--backend auto|regex|libclang] [--include-suppressed]

Exit status: 0 when no active findings, 1 otherwise, 2 on usage error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import gdisim_lint_common as common  # noqa: E402  (shared lexer/NOLINT/report)

RULES = {
    "gdisim-cross-agent-write": {
        "message": "tick-phase code writes through a pointer/reference to "
        "another agent's state; cross-agent effects must go through "
        "Inbox::post or a port API so parallel ticks stay race-free",
    },
    "gdisim-unguarded-shared": {
        "message": "mutable static/global shared state without "
        "synchronization: make it atomic or lock-guarded, or sanction it "
        "with // GDISIM-SHARED: <reason>",
    },
    "gdisim-serial-only": {
        "message": "member whose synchronization the engine-serial fast "
        "path drops is touched without checking the serial gate, holding "
        "the lock, or using atomic accessors; annotate the site with "
        "// GDISIM-SERIAL-OK: <reason> if it provably runs single-threaded",
    },
    "gdisim-raw-sync": {
        "message": "synchronization primitive declared outside src/core/: "
        "keep the concurrency inventory auditable with "
        "// GDISIM-SHARED: <reason>",
    },
    "gdisim-isolation-annotation-no-reason": {
        "message": "GDISIM-SHARED / GDISIM-SERIAL-OK without a reason: "
        "state why the shared access is sound "
        "(// GDISIM-SHARED: <reason>)",
    },
    common.NOLINT_REASON_RULE: {
        "message": common.NOLINT_REASON_MESSAGE,
    },
}

# Agent tick-phase entry points; the per-class lexical call closure extends
# the set to helpers those entries call.
TICK_ENTRIES = {"on_tick", "on_interactions", "advance_tick", "accept",
                "next_wake_tick", "on_run_complete"}

# The engine-serial gate tokens (Inbox::serial_, SimulationLoop's
# engine_serial_ mirror). Word-bounded so e.g. serial_hint_state_ does not
# count as a gate check.
_GATE = re.compile(r"\b(?:engine_)?serial_(?![\w])")

_ASSIGN_OP = r"(?:=(?!=)|\+=|-=|\*=|/=|%=|\|=|&=|\^=|<<=|>>=|\+\+|--)"

_SYNC_PRIM = (
    r"(?:std::\s*)?(?:atomic\s*<|atomic_flag\b|atomic_u?int\w*\b|mutex\b|"
    r"timed_mutex\b|recursive_mutex\b|recursive_timed_mutex\b|"
    r"shared_mutex\b|shared_timed_mutex\b|condition_variable(?:_any)?\b|"
    r"counting_semaphore\b|binary_semaphore\b|barrier\b|latch\b|"
    r"once_flag\b|SpinLock\b|pthread_(?:mutex|rwlock|cond|spinlock)_t\b)")
_SYNC_DECL = re.compile(
    r"^\s*(?:mutable\s+|static\s+|inline\s+|alignas\s*\([^)]*\)\s*)*"
    + _SYNC_PRIM)
_SYNC_ANYWHERE = re.compile(_SYNC_PRIM)

# Lock-holding idioms that make a touch synchronized.
_LOCKED = re.compile(r"lock_guard|unique_lock|scoped_lock|shared_lock|"
                     r"\.lock\s*\(|\block\b")

_ATOMIC_ACCESS = re.compile(
    r"\s*(?:\[[^][]*\]\s*)?\.\s*(?:load|store|fetch_\w+|exchange|"
    r"compare_exchange\w*|wait|notify_\w+)\s*\(")

_ANN_TOKEN = re.compile(r"GDISIM-(SHARED|SERIAL-OK)(?![\w-])")

_CTRL_NAMES = {"if", "for", "while", "switch", "catch", "return", "sizeof",
               "alignof", "alignas", "decltype", "static_assert", "assert",
               "operator", "new", "delete", "defined", "co_await",
               "co_return", "co_yield"}

_KEYWORD_STARTS = re.compile(
    r"^(?:using|typedef|friend|template|extern|class|struct|enum|union|"
    r"namespace|return|if|else|for|while|switch|case|break|continue|"
    r"public|private|protected|goto|do|static_assert)\b")


# --------------------------------------------------------------------------
# Annotations
# --------------------------------------------------------------------------


def _annotations_on(raw_line: str) -> list[tuple[str, str | None]]:
    """(kind, reason) for each annotation on `raw_line`. A token counts as
    an annotation when a ``:`` introduces its reason or when nothing but
    whitespace / comment-close follows it; trailing prose without a colon
    is a mention, not an annotation."""
    out = []
    for m in _ANN_TOKEN.finditer(raw_line):
        rest = raw_line[m.end():]
        cm = re.match(r"\s*:\s*([^\n]*)", rest)
        if cm:
            out.append((m.group(1), cm.group(1)))
        elif not re.search(r"\w", rest.replace("*/", " ")):
            out.append((m.group(1), None))
    return out


def _annotated(raw_lines: list[str], lineno: int, kind: str) -> bool:
    """Whether line `lineno` (1-based) or the line above carries a
    GDISIM-<kind> annotation. Reason presence is audited separately."""
    for ln in (lineno, lineno - 1):
        if 1 <= ln <= len(raw_lines):
            if any(k == kind for k, _r in _annotations_on(raw_lines[ln - 1])):
                return True
    return False


def _annotation_reason_findings(raw_lines: list[str], rel: str) -> list[dict]:
    rule = "gdisim-isolation-annotation-no-reason"
    findings = []
    for lineno, raw in enumerate(raw_lines, start=1):
        for _kind, reason in _annotations_on(raw):
            text = (reason or "").replace("*/", " ")
            if re.search(r"\w", text):
                continue
            findings.append({
                "file": rel,
                "line": lineno,
                "rule": rule,
                "message": RULES[rule]["message"],
                "snippet": raw.strip()[:160],
                "suppressed": common.line_suppressed(raw_lines, lineno, rule),
            })
    return findings


# --------------------------------------------------------------------------
# Lexical structure: classes, methods, scopes
# --------------------------------------------------------------------------


def _class_regions(code: str):
    """Yield (name, bases, body_start, body_end) for every class/struct
    definition found lexically (including nested ones)."""
    for m in re.finditer(
            r"\b(?:class|struct)\s+([A-Za-z_]\w*)\s*(?:final\s*)?"
            r"(:[^{;]*)?\{", code):
        name = m.group(1)
        bases = []
        if m.group(2):
            for tok in re.findall(r"[A-Za-z_][\w:]*",
                                  common.strip_angles(m.group(2))):
                if tok in ("public", "private", "protected", "virtual"):
                    continue
                bases.append(tok.split("::")[-1])
        bo = m.end() - 1
        be = common.balanced(code, bo, "{", "}")
        if be > 0:
            yield name, bases, bo + 1, be - 1


def _methods_in(code: str, start: int, end: int) -> dict:
    """Map method name -> list of (params_text, body_start, body_end) for
    method definitions lexically inside code[start:end]."""
    out: dict[str, list] = {}
    sig = re.compile(r"\b([A-Za-z_]\w*)\s*\(")
    tail_re = re.compile(
        r"\s*(?:const|noexcept|final|override|mutable|&&?|"
        r"->\s*[\w:<>,\s*&]+?)*\s*\{")
    i = start
    while i < end:
        m = sig.search(code, i, end)
        if not m:
            break
        name = m.group(1)
        po = m.end() - 1
        pe = common.balanced(code, po)
        if pe < 0 or pe > end:
            i = m.end()
            continue
        if name in _CTRL_NAMES:
            i = pe
            continue
        mt = tail_re.match(code, pe, min(pe + 160, end + 1))
        if mt and mt.end() <= end + 1:
            bo = mt.end() - 1
            be = common.balanced(code, bo, "{", "}")
            if 0 < be <= end + 1:
                out.setdefault(name, []).append((code[po + 1:pe - 1], bo, be))
                i = be
                continue
        i = pe
    return out


def _ns_scope_mask(code_lines: list[str]) -> list[bool]:
    """For each line, whether its start sits at namespace (or global) scope:
    every enclosing brace is a namespace / extern-linkage block and no
    parenthesis is open (a multi-line parameter list is not a declaration
    site)."""
    mask = []
    stack: list[str] = []
    buf = ""
    paren = 0
    for line in code_lines:
        mask.append(all(k == "ns" for k in stack) and paren == 0)
        paren = max(0, paren + line.count("(") - line.count(")"))
        for ch in line:
            if ch == "{":
                if re.search(r"\bnamespace\b", buf) or "extern" in buf:
                    kind = "ns"
                elif re.search(r"\b(?:class|struct|union|enum)\b", buf):
                    kind = "type"
                else:
                    kind = "other"
                stack.append(kind)
                buf = ""
            elif ch == "}":
                if stack:
                    stack.pop()
                buf = ""
            elif ch == ";":
                buf = ""
            else:
                buf += ch
        buf += " "
    return mask


def _decl_part(code_line: str) -> str | None:
    """Declaration portion (before any initializer) when the line plausibly
    declares a variable; None for functions / keywords / non-decls."""
    s = code_line.strip()
    if not s or s.startswith("#") or not s.endswith(";"):
        return None
    if _KEYWORD_STARTS.match(s):
        return None
    decl = re.split(r"[={]", common.strip_angles(s[:-1]), 1)[0]
    if "(" in decl or ")" in decl:
        return None
    toks = re.findall(r"[A-Za-z_]\w*", decl)
    if len(toks) < 2:
        return None
    return decl


# --------------------------------------------------------------------------
# Rule passes
# --------------------------------------------------------------------------


def _finding(rel, lineno, rule, raw_lines):
    return {
        "file": rel,
        "line": lineno,
        "rule": rule,
        "message": RULES[rule]["message"],
        "snippet": raw_lines[lineno - 1].strip()[:160],
        "suppressed": common.line_suppressed(raw_lines, lineno, rule),
    }


def _cross_agent_findings(code, start, end, offsets, raw_lines, rel,
                          agent_types) -> list[dict]:
    """gdisim-cross-agent-write inside one agent-derived class region."""
    findings = []
    region = code[start:end]

    # Variables (fields, params, locals) declared as pointer/reference to an
    # agent-derived type anywhere in the region.
    agent_vars = set()
    for m in re.finditer(
            r"\b(?:const\s+)?([A-Za-z_]\w*)\s*[*&]+\s*(?:const\s+)?"
            r"([A-Za-z_]\w*)\s*[=;,)\[{:]", region):
        if m.group(1) in agent_types:
            agent_vars.add(m.group(2))
    agent_vars.discard("this")
    if not agent_vars:
        return findings

    methods = _methods_in(code, start, end)
    closure = set(n for n in methods if n in TICK_ENTRIES)
    changed = True
    while changed:
        changed = False
        for name in list(methods):
            if name in closure:
                continue
            for cname in closure.copy():
                for _params, bo, be in methods[cname]:
                    if re.search(r"\b" + re.escape(name) + r"\s*\(",
                                 code[bo:be]):
                        closure.add(name)
                        changed = True
                        break
                if name in closure:
                    break

    var_alt = "|".join(sorted(re.escape(v) for v in agent_vars))
    write_re = re.compile(
        r"\b(?:" + var_alt + r")"
        r"(?:\s*(?:->|\.)\s*[A-Za-z_]\w*(?:\[[^][]*\])?)+\s*" + _ASSIGN_OP)
    pre_re = re.compile(
        r"(?:\+\+|--)\s*(?:" + var_alt + r")\s*(?:->|\.)")

    rule = "gdisim-cross-agent-write"
    seen = set()
    for name in closure:
        for _params, bo, be in methods[name]:
            body = code[bo:be]
            for m in list(write_re.finditer(body)) + list(pre_re.finditer(body)):
                lineno = common.line_of(offsets, bo + m.start())
                if lineno in seen:
                    continue
                seen.add(lineno)
                findings.append(_finding(rel, lineno, rule, raw_lines))
    return findings


def _serial_only_findings(code, start, end, offsets, raw_lines, rel) -> list[dict]:
    """gdisim-serial-only inside one serial-gated class region."""
    region = code[start:end]
    if not (re.search(r"\bvoid\s+set_serial\s*\(", region)
            or re.search(r"\b(?:engine_)?serial_\s*[={;]", region)):
        return []

    # Members referenced inside branches conditioned on the serial gate —
    # exactly the state whose synchronization the fast path drops.
    gated: set[str] = set()
    for m in re.finditer(r"\bif\s*\(", region):
        pe = common.balanced(region, m.end() - 1)
        if pe < 0 or not _GATE.search(region[m.end():pe - 1]):
            continue
        j = pe
        while j < len(region) and region[j] in " \t\n":
            j += 1
        if j < len(region) and region[j] == "{":
            be = common.balanced(region, j, "{", "}")
            blk = region[j:be] if be > 0 else region[j:j + 200]
        else:
            semi = region.find(";", j)
            blk = region[j:semi + 1] if semi >= 0 else region[j:j + 200]
        gated |= set(re.findall(r"\b[A-Za-z]\w*_(?![\w])", blk))
    gated -= {"serial_", "engine_serial_"}
    if not gated:
        return []

    findings = []
    rule = "gdisim-serial-only"
    methods = _methods_in(code, start, end)
    for name, insts in methods.items():
        if name == "set_serial":
            continue
        for _params, bo, be in insts:
            body = code[bo:be]
            if _GATE.search(body) or _LOCKED.search(body):
                continue
            sig_line = common.line_of(offsets, bo)
            if _annotated(raw_lines, sig_line, "SERIAL-OK"):
                continue
            flagged = set()
            for gm in sorted(gated):
                for m in re.finditer(r"\b" + re.escape(gm) + r"(?![\w])",
                                     body):
                    if _ATOMIC_ACCESS.match(body, m.end()):
                        continue
                    lineno = common.line_of(offsets, bo + m.start())
                    if _annotated(raw_lines, lineno, "SERIAL-OK"):
                        continue
                    if (lineno, gm) in flagged:
                        continue
                    flagged.add((lineno, gm))
                    findings.append(_finding(rel, lineno, rule, raw_lines))
                    break  # one finding per member per method
    return findings


def _unguarded_shared_findings(code_lines, raw_lines, rel) -> list[dict]:
    findings = []
    rule = "gdisim-unguarded-shared"
    mask = _ns_scope_mask(code_lines)
    for lineno, line in enumerate(code_lines, start=1):
        s = line.strip()
        is_static = bool(re.match(r"(?:inline\s+)?static\s", s))
        if not is_static and not mask[lineno - 1]:
            continue
        if re.search(r"\b(?:const|constexpr|constinit|thread_local)\b"
                     r"|std::\s*atomic|GDISIM_", line):
            continue
        if _SYNC_ANYWHERE.search(line):
            continue  # the primitive *is* the guard; raw-sync audits it
        decl = _decl_part(s)
        if decl is None:
            continue
        if not is_static and not mask[lineno - 1]:
            continue
        if _annotated(raw_lines, lineno, "SHARED"):
            continue
        findings.append(_finding(rel, lineno, rule, raw_lines))
    return findings


def _raw_sync_findings(code_lines, raw_lines, rel) -> list[dict]:
    findings = []
    rule = "gdisim-raw-sync"
    for lineno, line in enumerate(code_lines, start=1):
        s = line.strip()
        if s.startswith("#") or _KEYWORD_STARTS.match(s):
            continue
        if not _SYNC_DECL.match(s):
            continue
        if re.search(r"lock_guard|unique_lock|scoped_lock|shared_lock", s):
            continue
        if re.search(r"[>)]\s*[*&]|&\s*[A-Za-z_]\w*\s*=", s):
            continue  # reference/pointer binding, not a new primitive
        if _annotated(raw_lines, lineno, "SHARED"):
            continue
        findings.append(_finding(rel, lineno, rule, raw_lines))
    return findings


# --------------------------------------------------------------------------
# Class hierarchy (which types are Agents)
# --------------------------------------------------------------------------


def build_hierarchy_regex(files: list[str]) -> dict[str, list[str]]:
    bases: dict[str, list[str]] = {}
    for path in files:
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
        code_lines, _raw = common.strip_comments(text)
        code = "\n".join(code_lines)
        for name, bs, _s, _e in _class_regions(code):
            bases.setdefault(name, [])
            bases[name].extend(b for b in bs if b not in bases[name])
    return bases


def agent_closure(bases: dict[str, list[str]]) -> set[str]:
    agents = {"Agent"}
    changed = True
    while changed:
        changed = False
        for name, bs in bases.items():
            if name not in agents and any(b in agents for b in bs):
                agents.add(name)
                changed = True
    return agents


def build_hierarchy_libclang(files: list[str]) -> dict[str, list[str]]:
    """AST-assisted hierarchy: resolves base specifiers structurally, so
    typedef'd or qualified bases still land in the Agent closure."""
    from clang import cindex
    from clang.cindex import CursorKind

    index = cindex.Index.create()
    bases: dict[str, list[str]] = {}

    def walk(cursor, path):
        if cursor.kind in (CursorKind.CLASS_DECL, CursorKind.STRUCT_DECL,
                           CursorKind.CLASS_TEMPLATE):
            name = cursor.spelling
            if name:
                bs = bases.setdefault(name, [])
                for child in cursor.get_children():
                    if child.kind == CursorKind.CXX_BASE_SPECIFIER:
                        base = child.type.spelling.split("<")[0]
                        base = base.split("::")[-1].strip()
                        if base and base not in bs:
                            bs.append(base)
        for child in cursor.get_children():
            if child.location.file and child.location.file.name == path:
                walk(child, path)

    for path in files:
        tu = index.parse(path, args=["-std=c++20", "-Isrc"])
        walk(tu.cursor, path)
    return bases


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------


def scan_file(path: str, rel: str, agent_types: set[str]) -> list[dict]:
    with open(path, encoding="utf-8", errors="replace") as f:
        text = f.read()
    code_lines, raw_lines = common.strip_comments(text)
    code = "\n".join(code_lines)
    offsets = [0]
    for line in code_lines:
        offsets.append(offsets[-1] + len(line) + 1)

    findings = common.nolint_reason_findings(raw_lines, rel)
    findings += _annotation_reason_findings(raw_lines, rel)
    findings += _unguarded_shared_findings(code_lines, raw_lines, rel)

    norm = rel.replace(os.sep, "/")
    if not norm.startswith("src/core/"):
        findings += _raw_sync_findings(code_lines, raw_lines, rel)

    for name, bases, start, end in _class_regions(code):
        if name in agent_types:
            findings += _cross_agent_findings(
                code, start, end, offsets, raw_lines, rel, agent_types)
        findings += _serial_only_findings(
            code, start, end, offsets, raw_lines, rel)
    return findings


def analyze(files: list[str], root: str,
            hierarchy: dict[str, list[str]] | None = None) -> list[dict]:
    bases = hierarchy if hierarchy is not None else build_hierarchy_regex(files)
    agent_types = agent_closure(bases)
    findings: list[dict] = []
    for path in files:
        rel = os.path.relpath(path, root)
        findings.extend(scan_file(path, rel, agent_types))
    return findings


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        description="gdisim concurrency-isolation analyzer")
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories to scan (default: src/)")
    parser.add_argument("--json", metavar="FILE",
                        help="write a machine-readable report ('-' for stdout)")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--backend", choices=("auto", "regex", "libclang"),
                        default="auto")
    parser.add_argument("--include-suppressed", action="store_true")
    parser.add_argument("--root", default=None,
                        help="repo root for relative paths (default: auto)")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, spec in sorted(RULES.items()):
            print(f"{rule}: {spec['message']}")
        return 0

    root = args.root or common.default_root(__file__)
    paths = args.paths or ["src"]
    files = common.collect_sources(paths, root)
    if not files:
        print("gdisim_isolation: no C++ sources found under",
              ", ".join(paths), file=sys.stderr)
        return 2

    backend = args.backend
    if backend == "auto":
        try:
            from clang import cindex  # noqa: F401
            backend = "libclang"
        except Exception:
            backend = "regex"

    if backend == "libclang":
        try:
            findings = analyze(files, root,
                               hierarchy=build_hierarchy_libclang(files))
        except Exception:
            if args.backend == "libclang":
                raise
            backend = "regex"
            findings = analyze(files, root)
    else:
        findings = analyze(files, root)

    active = common.finish_report(findings, files, backend, args.json,
                                  args.include_suppressed)
    print("gdisim_isolation [%s]: %d files, %d active finding(s), "
          "%d suppressed"
          % (backend, len(files), len(active), len(findings) - len(active)),
          file=sys.stderr)
    return 1 if active else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
