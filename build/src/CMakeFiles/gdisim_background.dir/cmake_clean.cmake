file(REMOVE_RECURSE
  "CMakeFiles/gdisim_background.dir/background/daemon.cc.o"
  "CMakeFiles/gdisim_background.dir/background/daemon.cc.o.d"
  "CMakeFiles/gdisim_background.dir/background/data_growth.cc.o"
  "CMakeFiles/gdisim_background.dir/background/data_growth.cc.o.d"
  "CMakeFiles/gdisim_background.dir/background/file_catalog.cc.o"
  "CMakeFiles/gdisim_background.dir/background/file_catalog.cc.o.d"
  "CMakeFiles/gdisim_background.dir/background/file_tracker.cc.o"
  "CMakeFiles/gdisim_background.dir/background/file_tracker.cc.o.d"
  "CMakeFiles/gdisim_background.dir/background/indexbuild.cc.o"
  "CMakeFiles/gdisim_background.dir/background/indexbuild.cc.o.d"
  "CMakeFiles/gdisim_background.dir/background/ownership.cc.o"
  "CMakeFiles/gdisim_background.dir/background/ownership.cc.o.d"
  "CMakeFiles/gdisim_background.dir/background/synchrep.cc.o"
  "CMakeFiles/gdisim_background.dir/background/synchrep.cc.o.d"
  "libgdisim_background.a"
  "libgdisim_background.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdisim_background.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
