file(REMOVE_RECURSE
  "libgdisim_background.a"
)
