
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/background/daemon.cc" "src/CMakeFiles/gdisim_background.dir/background/daemon.cc.o" "gcc" "src/CMakeFiles/gdisim_background.dir/background/daemon.cc.o.d"
  "/root/repo/src/background/data_growth.cc" "src/CMakeFiles/gdisim_background.dir/background/data_growth.cc.o" "gcc" "src/CMakeFiles/gdisim_background.dir/background/data_growth.cc.o.d"
  "/root/repo/src/background/file_catalog.cc" "src/CMakeFiles/gdisim_background.dir/background/file_catalog.cc.o" "gcc" "src/CMakeFiles/gdisim_background.dir/background/file_catalog.cc.o.d"
  "/root/repo/src/background/file_tracker.cc" "src/CMakeFiles/gdisim_background.dir/background/file_tracker.cc.o" "gcc" "src/CMakeFiles/gdisim_background.dir/background/file_tracker.cc.o.d"
  "/root/repo/src/background/indexbuild.cc" "src/CMakeFiles/gdisim_background.dir/background/indexbuild.cc.o" "gcc" "src/CMakeFiles/gdisim_background.dir/background/indexbuild.cc.o.d"
  "/root/repo/src/background/ownership.cc" "src/CMakeFiles/gdisim_background.dir/background/ownership.cc.o" "gcc" "src/CMakeFiles/gdisim_background.dir/background/ownership.cc.o.d"
  "/root/repo/src/background/synchrep.cc" "src/CMakeFiles/gdisim_background.dir/background/synchrep.cc.o" "gcc" "src/CMakeFiles/gdisim_background.dir/background/synchrep.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gdisim_software.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gdisim_hardware.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gdisim_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gdisim_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
