# Empty dependencies file for gdisim_background.
# This may be replaced when dependencies are built.
