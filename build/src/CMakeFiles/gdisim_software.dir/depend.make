# Empty dependencies file for gdisim_software.
# This may be replaced when dependencies are built.
