file(REMOVE_RECURSE
  "CMakeFiles/gdisim_software.dir/software/cascade.cc.o"
  "CMakeFiles/gdisim_software.dir/software/cascade.cc.o.d"
  "CMakeFiles/gdisim_software.dir/software/catalog.cc.o"
  "CMakeFiles/gdisim_software.dir/software/catalog.cc.o.d"
  "CMakeFiles/gdisim_software.dir/software/client.cc.o"
  "CMakeFiles/gdisim_software.dir/software/client.cc.o.d"
  "CMakeFiles/gdisim_software.dir/software/operation.cc.o"
  "CMakeFiles/gdisim_software.dir/software/operation.cc.o.d"
  "CMakeFiles/gdisim_software.dir/software/replay.cc.o"
  "CMakeFiles/gdisim_software.dir/software/replay.cc.o.d"
  "CMakeFiles/gdisim_software.dir/software/workload.cc.o"
  "CMakeFiles/gdisim_software.dir/software/workload.cc.o.d"
  "libgdisim_software.a"
  "libgdisim_software.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdisim_software.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
