file(REMOVE_RECURSE
  "libgdisim_software.a"
)
