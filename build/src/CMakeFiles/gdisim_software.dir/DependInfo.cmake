
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/software/cascade.cc" "src/CMakeFiles/gdisim_software.dir/software/cascade.cc.o" "gcc" "src/CMakeFiles/gdisim_software.dir/software/cascade.cc.o.d"
  "/root/repo/src/software/catalog.cc" "src/CMakeFiles/gdisim_software.dir/software/catalog.cc.o" "gcc" "src/CMakeFiles/gdisim_software.dir/software/catalog.cc.o.d"
  "/root/repo/src/software/client.cc" "src/CMakeFiles/gdisim_software.dir/software/client.cc.o" "gcc" "src/CMakeFiles/gdisim_software.dir/software/client.cc.o.d"
  "/root/repo/src/software/operation.cc" "src/CMakeFiles/gdisim_software.dir/software/operation.cc.o" "gcc" "src/CMakeFiles/gdisim_software.dir/software/operation.cc.o.d"
  "/root/repo/src/software/replay.cc" "src/CMakeFiles/gdisim_software.dir/software/replay.cc.o" "gcc" "src/CMakeFiles/gdisim_software.dir/software/replay.cc.o.d"
  "/root/repo/src/software/workload.cc" "src/CMakeFiles/gdisim_software.dir/software/workload.cc.o" "gcc" "src/CMakeFiles/gdisim_software.dir/software/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gdisim_hardware.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gdisim_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gdisim_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
