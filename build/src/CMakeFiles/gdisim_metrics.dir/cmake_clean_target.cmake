file(REMOVE_RECURSE
  "libgdisim_metrics.a"
)
