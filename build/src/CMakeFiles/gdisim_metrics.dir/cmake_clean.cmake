file(REMOVE_RECURSE
  "CMakeFiles/gdisim_metrics.dir/metrics/collector.cc.o"
  "CMakeFiles/gdisim_metrics.dir/metrics/collector.cc.o.d"
  "CMakeFiles/gdisim_metrics.dir/metrics/report.cc.o"
  "CMakeFiles/gdisim_metrics.dir/metrics/report.cc.o.d"
  "CMakeFiles/gdisim_metrics.dir/metrics/series.cc.o"
  "CMakeFiles/gdisim_metrics.dir/metrics/series.cc.o.d"
  "CMakeFiles/gdisim_metrics.dir/metrics/stats.cc.o"
  "CMakeFiles/gdisim_metrics.dir/metrics/stats.cc.o.d"
  "libgdisim_metrics.a"
  "libgdisim_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdisim_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
