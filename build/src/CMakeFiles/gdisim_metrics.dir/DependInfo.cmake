
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/collector.cc" "src/CMakeFiles/gdisim_metrics.dir/metrics/collector.cc.o" "gcc" "src/CMakeFiles/gdisim_metrics.dir/metrics/collector.cc.o.d"
  "/root/repo/src/metrics/report.cc" "src/CMakeFiles/gdisim_metrics.dir/metrics/report.cc.o" "gcc" "src/CMakeFiles/gdisim_metrics.dir/metrics/report.cc.o.d"
  "/root/repo/src/metrics/series.cc" "src/CMakeFiles/gdisim_metrics.dir/metrics/series.cc.o" "gcc" "src/CMakeFiles/gdisim_metrics.dir/metrics/series.cc.o.d"
  "/root/repo/src/metrics/stats.cc" "src/CMakeFiles/gdisim_metrics.dir/metrics/stats.cc.o" "gcc" "src/CMakeFiles/gdisim_metrics.dir/metrics/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gdisim_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
