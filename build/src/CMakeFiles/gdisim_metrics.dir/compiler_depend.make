# Empty compiler generated dependencies file for gdisim_metrics.
# This may be replaced when dependencies are built.
