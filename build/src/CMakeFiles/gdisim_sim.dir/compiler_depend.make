# Empty compiler generated dependencies file for gdisim_sim.
# This may be replaced when dependencies are built.
