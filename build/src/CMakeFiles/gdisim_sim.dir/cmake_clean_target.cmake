file(REMOVE_RECURSE
  "libgdisim_sim.a"
)
