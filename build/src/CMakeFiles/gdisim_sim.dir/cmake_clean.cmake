file(REMOVE_RECURSE
  "CMakeFiles/gdisim_sim.dir/sim/gdisim.cc.o"
  "CMakeFiles/gdisim_sim.dir/sim/gdisim.cc.o.d"
  "libgdisim_sim.a"
  "libgdisim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdisim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
