file(REMOVE_RECURSE
  "libgdisim_hardware.a"
)
