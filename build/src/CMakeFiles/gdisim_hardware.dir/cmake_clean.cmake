file(REMOVE_RECURSE
  "CMakeFiles/gdisim_hardware.dir/hardware/cpu.cc.o"
  "CMakeFiles/gdisim_hardware.dir/hardware/cpu.cc.o.d"
  "CMakeFiles/gdisim_hardware.dir/hardware/datacenter.cc.o"
  "CMakeFiles/gdisim_hardware.dir/hardware/datacenter.cc.o.d"
  "CMakeFiles/gdisim_hardware.dir/hardware/link.cc.o"
  "CMakeFiles/gdisim_hardware.dir/hardware/link.cc.o.d"
  "CMakeFiles/gdisim_hardware.dir/hardware/memory.cc.o"
  "CMakeFiles/gdisim_hardware.dir/hardware/memory.cc.o.d"
  "CMakeFiles/gdisim_hardware.dir/hardware/network_switch.cc.o"
  "CMakeFiles/gdisim_hardware.dir/hardware/network_switch.cc.o.d"
  "CMakeFiles/gdisim_hardware.dir/hardware/nic.cc.o"
  "CMakeFiles/gdisim_hardware.dir/hardware/nic.cc.o.d"
  "CMakeFiles/gdisim_hardware.dir/hardware/raid.cc.o"
  "CMakeFiles/gdisim_hardware.dir/hardware/raid.cc.o.d"
  "CMakeFiles/gdisim_hardware.dir/hardware/san.cc.o"
  "CMakeFiles/gdisim_hardware.dir/hardware/san.cc.o.d"
  "CMakeFiles/gdisim_hardware.dir/hardware/server.cc.o"
  "CMakeFiles/gdisim_hardware.dir/hardware/server.cc.o.d"
  "CMakeFiles/gdisim_hardware.dir/hardware/tier.cc.o"
  "CMakeFiles/gdisim_hardware.dir/hardware/tier.cc.o.d"
  "CMakeFiles/gdisim_hardware.dir/hardware/topology.cc.o"
  "CMakeFiles/gdisim_hardware.dir/hardware/topology.cc.o.d"
  "libgdisim_hardware.a"
  "libgdisim_hardware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdisim_hardware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
