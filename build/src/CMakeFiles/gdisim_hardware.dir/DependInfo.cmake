
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hardware/cpu.cc" "src/CMakeFiles/gdisim_hardware.dir/hardware/cpu.cc.o" "gcc" "src/CMakeFiles/gdisim_hardware.dir/hardware/cpu.cc.o.d"
  "/root/repo/src/hardware/datacenter.cc" "src/CMakeFiles/gdisim_hardware.dir/hardware/datacenter.cc.o" "gcc" "src/CMakeFiles/gdisim_hardware.dir/hardware/datacenter.cc.o.d"
  "/root/repo/src/hardware/link.cc" "src/CMakeFiles/gdisim_hardware.dir/hardware/link.cc.o" "gcc" "src/CMakeFiles/gdisim_hardware.dir/hardware/link.cc.o.d"
  "/root/repo/src/hardware/memory.cc" "src/CMakeFiles/gdisim_hardware.dir/hardware/memory.cc.o" "gcc" "src/CMakeFiles/gdisim_hardware.dir/hardware/memory.cc.o.d"
  "/root/repo/src/hardware/network_switch.cc" "src/CMakeFiles/gdisim_hardware.dir/hardware/network_switch.cc.o" "gcc" "src/CMakeFiles/gdisim_hardware.dir/hardware/network_switch.cc.o.d"
  "/root/repo/src/hardware/nic.cc" "src/CMakeFiles/gdisim_hardware.dir/hardware/nic.cc.o" "gcc" "src/CMakeFiles/gdisim_hardware.dir/hardware/nic.cc.o.d"
  "/root/repo/src/hardware/raid.cc" "src/CMakeFiles/gdisim_hardware.dir/hardware/raid.cc.o" "gcc" "src/CMakeFiles/gdisim_hardware.dir/hardware/raid.cc.o.d"
  "/root/repo/src/hardware/san.cc" "src/CMakeFiles/gdisim_hardware.dir/hardware/san.cc.o" "gcc" "src/CMakeFiles/gdisim_hardware.dir/hardware/san.cc.o.d"
  "/root/repo/src/hardware/server.cc" "src/CMakeFiles/gdisim_hardware.dir/hardware/server.cc.o" "gcc" "src/CMakeFiles/gdisim_hardware.dir/hardware/server.cc.o.d"
  "/root/repo/src/hardware/tier.cc" "src/CMakeFiles/gdisim_hardware.dir/hardware/tier.cc.o" "gcc" "src/CMakeFiles/gdisim_hardware.dir/hardware/tier.cc.o.d"
  "/root/repo/src/hardware/topology.cc" "src/CMakeFiles/gdisim_hardware.dir/hardware/topology.cc.o" "gcc" "src/CMakeFiles/gdisim_hardware.dir/hardware/topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gdisim_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gdisim_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
