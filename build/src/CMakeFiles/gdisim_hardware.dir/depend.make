# Empty dependencies file for gdisim_hardware.
# This may be replaced when dependencies are built.
