# Empty dependencies file for gdisim_queueing.
# This may be replaced when dependencies are built.
