
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/queueing/analytic.cc" "src/CMakeFiles/gdisim_queueing.dir/queueing/analytic.cc.o" "gcc" "src/CMakeFiles/gdisim_queueing.dir/queueing/analytic.cc.o.d"
  "/root/repo/src/queueing/fcfs_queue.cc" "src/CMakeFiles/gdisim_queueing.dir/queueing/fcfs_queue.cc.o" "gcc" "src/CMakeFiles/gdisim_queueing.dir/queueing/fcfs_queue.cc.o.d"
  "/root/repo/src/queueing/fork_join.cc" "src/CMakeFiles/gdisim_queueing.dir/queueing/fork_join.cc.o" "gcc" "src/CMakeFiles/gdisim_queueing.dir/queueing/fork_join.cc.o.d"
  "/root/repo/src/queueing/kendall.cc" "src/CMakeFiles/gdisim_queueing.dir/queueing/kendall.cc.o" "gcc" "src/CMakeFiles/gdisim_queueing.dir/queueing/kendall.cc.o.d"
  "/root/repo/src/queueing/ps_queue.cc" "src/CMakeFiles/gdisim_queueing.dir/queueing/ps_queue.cc.o" "gcc" "src/CMakeFiles/gdisim_queueing.dir/queueing/ps_queue.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gdisim_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
