file(REMOVE_RECURSE
  "libgdisim_queueing.a"
)
