file(REMOVE_RECURSE
  "CMakeFiles/gdisim_queueing.dir/queueing/analytic.cc.o"
  "CMakeFiles/gdisim_queueing.dir/queueing/analytic.cc.o.d"
  "CMakeFiles/gdisim_queueing.dir/queueing/fcfs_queue.cc.o"
  "CMakeFiles/gdisim_queueing.dir/queueing/fcfs_queue.cc.o.d"
  "CMakeFiles/gdisim_queueing.dir/queueing/fork_join.cc.o"
  "CMakeFiles/gdisim_queueing.dir/queueing/fork_join.cc.o.d"
  "CMakeFiles/gdisim_queueing.dir/queueing/kendall.cc.o"
  "CMakeFiles/gdisim_queueing.dir/queueing/kendall.cc.o.d"
  "CMakeFiles/gdisim_queueing.dir/queueing/ps_queue.cc.o"
  "CMakeFiles/gdisim_queueing.dir/queueing/ps_queue.cc.o.d"
  "libgdisim_queueing.a"
  "libgdisim_queueing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdisim_queueing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
