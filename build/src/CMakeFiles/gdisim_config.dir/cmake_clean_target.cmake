file(REMOVE_RECURSE
  "libgdisim_config.a"
)
