# Empty compiler generated dependencies file for gdisim_config.
# This may be replaced when dependencies are built.
