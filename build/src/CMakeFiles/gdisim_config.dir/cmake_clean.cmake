file(REMOVE_RECURSE
  "CMakeFiles/gdisim_config.dir/config/builder.cc.o"
  "CMakeFiles/gdisim_config.dir/config/builder.cc.o.d"
  "CMakeFiles/gdisim_config.dir/config/loader.cc.o"
  "CMakeFiles/gdisim_config.dir/config/loader.cc.o.d"
  "CMakeFiles/gdisim_config.dir/config/scenarios.cc.o"
  "CMakeFiles/gdisim_config.dir/config/scenarios.cc.o.d"
  "CMakeFiles/gdisim_config.dir/config/spec.cc.o"
  "CMakeFiles/gdisim_config.dir/config/spec.cc.o.d"
  "libgdisim_config.a"
  "libgdisim_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdisim_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
