file(REMOVE_RECURSE
  "libgdisim_resilience.a"
)
