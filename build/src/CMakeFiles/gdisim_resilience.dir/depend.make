# Empty dependencies file for gdisim_resilience.
# This may be replaced when dependencies are built.
