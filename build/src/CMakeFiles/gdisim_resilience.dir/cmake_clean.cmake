file(REMOVE_RECURSE
  "CMakeFiles/gdisim_resilience.dir/resilience/failure.cc.o"
  "CMakeFiles/gdisim_resilience.dir/resilience/failure.cc.o.d"
  "libgdisim_resilience.a"
  "libgdisim_resilience.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdisim_resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
