file(REMOVE_RECURSE
  "CMakeFiles/gdisim_core.dir/core/coordination.cc.o"
  "CMakeFiles/gdisim_core.dir/core/coordination.cc.o.d"
  "CMakeFiles/gdisim_core.dir/core/dispatcher.cc.o"
  "CMakeFiles/gdisim_core.dir/core/dispatcher.cc.o.d"
  "CMakeFiles/gdisim_core.dir/core/engine.cc.o"
  "CMakeFiles/gdisim_core.dir/core/engine.cc.o.d"
  "CMakeFiles/gdisim_core.dir/core/h_dispatch.cc.o"
  "CMakeFiles/gdisim_core.dir/core/h_dispatch.cc.o.d"
  "CMakeFiles/gdisim_core.dir/core/rng.cc.o"
  "CMakeFiles/gdisim_core.dir/core/rng.cc.o.d"
  "CMakeFiles/gdisim_core.dir/core/scatter_gather.cc.o"
  "CMakeFiles/gdisim_core.dir/core/scatter_gather.cc.o.d"
  "CMakeFiles/gdisim_core.dir/core/sim_loop.cc.o"
  "CMakeFiles/gdisim_core.dir/core/sim_loop.cc.o.d"
  "CMakeFiles/gdisim_core.dir/core/types.cc.o"
  "CMakeFiles/gdisim_core.dir/core/types.cc.o.d"
  "libgdisim_core.a"
  "libgdisim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdisim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
