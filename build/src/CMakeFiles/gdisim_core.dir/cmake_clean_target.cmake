file(REMOVE_RECURSE
  "libgdisim_core.a"
)
