
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/coordination.cc" "src/CMakeFiles/gdisim_core.dir/core/coordination.cc.o" "gcc" "src/CMakeFiles/gdisim_core.dir/core/coordination.cc.o.d"
  "/root/repo/src/core/dispatcher.cc" "src/CMakeFiles/gdisim_core.dir/core/dispatcher.cc.o" "gcc" "src/CMakeFiles/gdisim_core.dir/core/dispatcher.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/CMakeFiles/gdisim_core.dir/core/engine.cc.o" "gcc" "src/CMakeFiles/gdisim_core.dir/core/engine.cc.o.d"
  "/root/repo/src/core/h_dispatch.cc" "src/CMakeFiles/gdisim_core.dir/core/h_dispatch.cc.o" "gcc" "src/CMakeFiles/gdisim_core.dir/core/h_dispatch.cc.o.d"
  "/root/repo/src/core/rng.cc" "src/CMakeFiles/gdisim_core.dir/core/rng.cc.o" "gcc" "src/CMakeFiles/gdisim_core.dir/core/rng.cc.o.d"
  "/root/repo/src/core/scatter_gather.cc" "src/CMakeFiles/gdisim_core.dir/core/scatter_gather.cc.o" "gcc" "src/CMakeFiles/gdisim_core.dir/core/scatter_gather.cc.o.d"
  "/root/repo/src/core/sim_loop.cc" "src/CMakeFiles/gdisim_core.dir/core/sim_loop.cc.o" "gcc" "src/CMakeFiles/gdisim_core.dir/core/sim_loop.cc.o.d"
  "/root/repo/src/core/types.cc" "src/CMakeFiles/gdisim_core.dir/core/types.cc.o" "gcc" "src/CMakeFiles/gdisim_core.dir/core/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
