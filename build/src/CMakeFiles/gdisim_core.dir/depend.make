# Empty dependencies file for gdisim_core.
# This may be replaced when dependencies are built.
