file(REMOVE_RECURSE
  "CMakeFiles/bottleneck_detection.dir/bottleneck_detection.cpp.o"
  "CMakeFiles/bottleneck_detection.dir/bottleneck_detection.cpp.o.d"
  "bottleneck_detection"
  "bottleneck_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bottleneck_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
