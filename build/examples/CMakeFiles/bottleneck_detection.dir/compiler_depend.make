# Empty compiler generated dependencies file for bottleneck_detection.
# This may be replaced when dependencies are built.
