file(REMOVE_RECURSE
  "CMakeFiles/multimaster_study.dir/multimaster_study.cpp.o"
  "CMakeFiles/multimaster_study.dir/multimaster_study.cpp.o.d"
  "multimaster_study"
  "multimaster_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multimaster_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
