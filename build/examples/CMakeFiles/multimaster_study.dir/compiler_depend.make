# Empty compiler generated dependencies file for multimaster_study.
# This may be replaced when dependencies are built.
