file(REMOVE_RECURSE
  "CMakeFiles/consolidation_study.dir/consolidation_study.cpp.o"
  "CMakeFiles/consolidation_study.dir/consolidation_study.cpp.o.d"
  "consolidation_study"
  "consolidation_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consolidation_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
