# Empty dependencies file for gdisim_run.
# This may be replaced when dependencies are built.
