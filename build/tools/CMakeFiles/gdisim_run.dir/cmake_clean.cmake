file(REMOVE_RECURSE
  "CMakeFiles/gdisim_run.dir/gdisim_run.cc.o"
  "CMakeFiles/gdisim_run.dir/gdisim_run.cc.o.d"
  "gdisim_run"
  "gdisim_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdisim_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
