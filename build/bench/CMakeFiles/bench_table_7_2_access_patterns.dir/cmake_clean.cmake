file(REMOVE_RECURSE
  "CMakeFiles/bench_table_7_2_access_patterns.dir/bench_table_7_2_access_patterns.cc.o"
  "CMakeFiles/bench_table_7_2_access_patterns.dir/bench_table_7_2_access_patterns.cc.o.d"
  "bench_table_7_2_access_patterns"
  "bench_table_7_2_access_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table_7_2_access_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
