# Empty dependencies file for bench_table_7_2_access_patterns.
# This may be replaced when dependencies are built.
