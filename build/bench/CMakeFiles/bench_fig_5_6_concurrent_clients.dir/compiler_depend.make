# Empty compiler generated dependencies file for bench_fig_5_6_concurrent_clients.
# This may be replaced when dependencies are built.
