file(REMOVE_RECURSE
  "CMakeFiles/bench_fig_5_6_concurrent_clients.dir/bench_fig_5_6_concurrent_clients.cc.o"
  "CMakeFiles/bench_fig_5_6_concurrent_clients.dir/bench_fig_5_6_concurrent_clients.cc.o.d"
  "bench_fig_5_6_concurrent_clients"
  "bench_fig_5_6_concurrent_clients.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig_5_6_concurrent_clients.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
