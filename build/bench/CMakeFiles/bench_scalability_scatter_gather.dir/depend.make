# Empty dependencies file for bench_scalability_scatter_gather.
# This may be replaced when dependencies are built.
