file(REMOVE_RECURSE
  "CMakeFiles/bench_scalability_scatter_gather.dir/bench_scalability_scatter_gather.cc.o"
  "CMakeFiles/bench_scalability_scatter_gather.dir/bench_scalability_scatter_gather.cc.o.d"
  "bench_scalability_scatter_gather"
  "bench_scalability_scatter_gather.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scalability_scatter_gather.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
