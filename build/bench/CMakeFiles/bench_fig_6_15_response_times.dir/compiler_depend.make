# Empty compiler generated dependencies file for bench_fig_6_15_response_times.
# This may be replaced when dependencies are built.
