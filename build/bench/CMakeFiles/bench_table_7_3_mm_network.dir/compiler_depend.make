# Empty compiler generated dependencies file for bench_table_7_3_mm_network.
# This may be replaced when dependencies are built.
