file(REMOVE_RECURSE
  "CMakeFiles/bench_table_7_3_mm_network.dir/bench_table_7_3_mm_network.cc.o"
  "CMakeFiles/bench_table_7_3_mm_network.dir/bench_table_7_3_mm_network.cc.o.d"
  "bench_table_7_3_mm_network"
  "bench_table_7_3_mm_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table_7_3_mm_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
