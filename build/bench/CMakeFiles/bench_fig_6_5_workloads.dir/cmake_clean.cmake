file(REMOVE_RECURSE
  "CMakeFiles/bench_fig_6_5_workloads.dir/bench_fig_6_5_workloads.cc.o"
  "CMakeFiles/bench_fig_6_5_workloads.dir/bench_fig_6_5_workloads.cc.o.d"
  "bench_fig_6_5_workloads"
  "bench_fig_6_5_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig_6_5_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
