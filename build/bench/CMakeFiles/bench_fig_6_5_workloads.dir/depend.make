# Empty dependencies file for bench_fig_6_5_workloads.
# This may be replaced when dependencies are built.
