# Empty compiler generated dependencies file for bench_fig_7_6_mm_background.
# This may be replaced when dependencies are built.
