file(REMOVE_RECURSE
  "CMakeFiles/bench_fig_7_6_mm_background.dir/bench_fig_7_6_mm_background.cc.o"
  "CMakeFiles/bench_fig_7_6_mm_background.dir/bench_fig_7_6_mm_background.cc.o.d"
  "bench_fig_7_6_mm_background"
  "bench_fig_7_6_mm_background.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig_7_6_mm_background.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
