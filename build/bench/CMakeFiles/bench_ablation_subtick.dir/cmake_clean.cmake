file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_subtick.dir/bench_ablation_subtick.cc.o"
  "CMakeFiles/bench_ablation_subtick.dir/bench_ablation_subtick.cc.o.d"
  "bench_ablation_subtick"
  "bench_ablation_subtick.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_subtick.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
