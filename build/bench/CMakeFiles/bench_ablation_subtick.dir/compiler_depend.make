# Empty compiler generated dependencies file for bench_ablation_subtick.
# This may be replaced when dependencies are built.
