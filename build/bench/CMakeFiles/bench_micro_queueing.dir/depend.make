# Empty dependencies file for bench_micro_queueing.
# This may be replaced when dependencies are built.
