file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_queueing.dir/bench_micro_queueing.cc.o"
  "CMakeFiles/bench_micro_queueing.dir/bench_micro_queueing.cc.o.d"
  "bench_micro_queueing"
  "bench_micro_queueing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_queueing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
