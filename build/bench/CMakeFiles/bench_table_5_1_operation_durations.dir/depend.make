# Empty dependencies file for bench_table_5_1_operation_durations.
# This may be replaced when dependencies are built.
