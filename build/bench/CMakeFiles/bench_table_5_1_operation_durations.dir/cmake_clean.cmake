file(REMOVE_RECURSE
  "CMakeFiles/bench_table_5_1_operation_durations.dir/bench_table_5_1_operation_durations.cc.o"
  "CMakeFiles/bench_table_5_1_operation_durations.dir/bench_table_5_1_operation_durations.cc.o.d"
  "bench_table_5_1_operation_durations"
  "bench_table_5_1_operation_durations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table_5_1_operation_durations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
