# Empty dependencies file for bench_scalability_h_dispatch.
# This may be replaced when dependencies are built.
