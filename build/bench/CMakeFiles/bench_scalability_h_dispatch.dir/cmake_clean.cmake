file(REMOVE_RECURSE
  "CMakeFiles/bench_scalability_h_dispatch.dir/bench_scalability_h_dispatch.cc.o"
  "CMakeFiles/bench_scalability_h_dispatch.dir/bench_scalability_h_dispatch.cc.o.d"
  "bench_scalability_h_dispatch"
  "bench_scalability_h_dispatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scalability_h_dispatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
