# Empty dependencies file for bench_sec_5_3_3_memory.
# This may be replaced when dependencies are built.
