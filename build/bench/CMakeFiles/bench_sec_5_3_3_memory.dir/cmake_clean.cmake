file(REMOVE_RECURSE
  "CMakeFiles/bench_sec_5_3_3_memory.dir/bench_sec_5_3_3_memory.cc.o"
  "CMakeFiles/bench_sec_5_3_3_memory.dir/bench_sec_5_3_3_memory.cc.o.d"
  "bench_sec_5_3_3_memory"
  "bench_sec_5_3_3_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec_5_3_3_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
