file(REMOVE_RECURSE
  "CMakeFiles/bench_fig_6_10_data_growth.dir/bench_fig_6_10_data_growth.cc.o"
  "CMakeFiles/bench_fig_6_10_data_growth.dir/bench_fig_6_10_data_growth.cc.o.d"
  "bench_fig_6_10_data_growth"
  "bench_fig_6_10_data_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig_6_10_data_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
