# Empty compiler generated dependencies file for bench_fig_6_10_data_growth.
# This may be replaced when dependencies are built.
