# Empty dependencies file for bench_analytic_vs_simulation.
# This may be replaced when dependencies are built.
