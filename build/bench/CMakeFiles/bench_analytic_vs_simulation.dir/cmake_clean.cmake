file(REMOVE_RECURSE
  "CMakeFiles/bench_analytic_vs_simulation.dir/bench_analytic_vs_simulation.cc.o"
  "CMakeFiles/bench_analytic_vs_simulation.dir/bench_analytic_vs_simulation.cc.o.d"
  "bench_analytic_vs_simulation"
  "bench_analytic_vs_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_analytic_vs_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
