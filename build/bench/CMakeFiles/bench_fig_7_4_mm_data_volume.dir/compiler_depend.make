# Empty compiler generated dependencies file for bench_fig_7_4_mm_data_volume.
# This may be replaced when dependencies are built.
