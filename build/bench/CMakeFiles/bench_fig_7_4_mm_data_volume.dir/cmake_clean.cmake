file(REMOVE_RECURSE
  "CMakeFiles/bench_fig_7_4_mm_data_volume.dir/bench_fig_7_4_mm_data_volume.cc.o"
  "CMakeFiles/bench_fig_7_4_mm_data_volume.dir/bench_fig_7_4_mm_data_volume.cc.o.d"
  "bench_fig_7_4_mm_data_volume"
  "bench_fig_7_4_mm_data_volume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig_7_4_mm_data_volume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
