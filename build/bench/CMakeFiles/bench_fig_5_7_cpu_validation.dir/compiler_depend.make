# Empty compiler generated dependencies file for bench_fig_5_7_cpu_validation.
# This may be replaced when dependencies are built.
