# Empty dependencies file for bench_fig_6_12_consolidated_cpu.
# This may be replaced when dependencies are built.
