# Empty compiler generated dependencies file for bench_fig_6_14_background.
# This may be replaced when dependencies are built.
