file(REMOVE_RECURSE
  "CMakeFiles/bench_table_5_3_rmse.dir/bench_table_5_3_rmse.cc.o"
  "CMakeFiles/bench_table_5_3_rmse.dir/bench_table_5_3_rmse.cc.o.d"
  "bench_table_5_3_rmse"
  "bench_table_5_3_rmse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table_5_3_rmse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
