# Empty compiler generated dependencies file for bench_sec_7_4_1_mm_cpu.
# This may be replaced when dependencies are built.
