file(REMOVE_RECURSE
  "CMakeFiles/bench_sec_7_4_1_mm_cpu.dir/bench_sec_7_4_1_mm_cpu.cc.o"
  "CMakeFiles/bench_sec_7_4_1_mm_cpu.dir/bench_sec_7_4_1_mm_cpu.cc.o.d"
  "bench_sec_7_4_1_mm_cpu"
  "bench_sec_7_4_1_mm_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec_7_4_1_mm_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
