# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bench_sec_7_4_1_mm_cpu.
