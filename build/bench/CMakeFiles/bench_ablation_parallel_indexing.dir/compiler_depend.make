# Empty compiler generated dependencies file for bench_ablation_parallel_indexing.
# This may be replaced when dependencies are built.
