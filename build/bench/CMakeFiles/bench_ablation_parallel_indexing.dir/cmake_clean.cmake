file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_parallel_indexing.dir/bench_ablation_parallel_indexing.cc.o"
  "CMakeFiles/bench_ablation_parallel_indexing.dir/bench_ablation_parallel_indexing.cc.o.d"
  "bench_ablation_parallel_indexing"
  "bench_ablation_parallel_indexing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_parallel_indexing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
