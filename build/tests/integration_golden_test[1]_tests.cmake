add_test([=[Golden.FixedSeedMicroRunIsPinned]=]  /root/repo/build/tests/integration_golden_test [==[--gtest_filter=Golden.FixedSeedMicroRunIsPinned]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[Golden.FixedSeedMicroRunIsPinned]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==] TIMEOUT 600)
set(  integration_golden_test_TESTS Golden.FixedSeedMicroRunIsPinned)
