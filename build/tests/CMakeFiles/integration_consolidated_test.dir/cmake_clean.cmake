file(REMOVE_RECURSE
  "CMakeFiles/integration_consolidated_test.dir/integration/consolidated_test.cc.o"
  "CMakeFiles/integration_consolidated_test.dir/integration/consolidated_test.cc.o.d"
  "integration_consolidated_test"
  "integration_consolidated_test.pdb"
  "integration_consolidated_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_consolidated_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
