# Empty dependencies file for integration_consolidated_test.
# This may be replaced when dependencies are built.
