file(REMOVE_RECURSE
  "CMakeFiles/hardware_components_test.dir/hardware/components_test.cc.o"
  "CMakeFiles/hardware_components_test.dir/hardware/components_test.cc.o.d"
  "hardware_components_test"
  "hardware_components_test.pdb"
  "hardware_components_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hardware_components_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
