# Empty dependencies file for hardware_components_test.
# This may be replaced when dependencies are built.
