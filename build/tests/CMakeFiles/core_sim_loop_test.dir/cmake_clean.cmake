file(REMOVE_RECURSE
  "CMakeFiles/core_sim_loop_test.dir/core/sim_loop_test.cc.o"
  "CMakeFiles/core_sim_loop_test.dir/core/sim_loop_test.cc.o.d"
  "core_sim_loop_test"
  "core_sim_loop_test.pdb"
  "core_sim_loop_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_sim_loop_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
