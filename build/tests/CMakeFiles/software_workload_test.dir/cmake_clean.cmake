file(REMOVE_RECURSE
  "CMakeFiles/software_workload_test.dir/software/workload_test.cc.o"
  "CMakeFiles/software_workload_test.dir/software/workload_test.cc.o.d"
  "software_workload_test"
  "software_workload_test.pdb"
  "software_workload_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/software_workload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
