# Empty compiler generated dependencies file for software_workload_test.
# This may be replaced when dependencies are built.
