file(REMOVE_RECURSE
  "CMakeFiles/queueing_property_test.dir/queueing/property_test.cc.o"
  "CMakeFiles/queueing_property_test.dir/queueing/property_test.cc.o.d"
  "queueing_property_test"
  "queueing_property_test.pdb"
  "queueing_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/queueing_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
