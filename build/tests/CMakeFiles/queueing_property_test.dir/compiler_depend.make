# Empty compiler generated dependencies file for queueing_property_test.
# This may be replaced when dependencies are built.
