# Empty compiler generated dependencies file for software_catalog_test.
# This may be replaced when dependencies are built.
