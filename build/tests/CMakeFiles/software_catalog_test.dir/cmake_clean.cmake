file(REMOVE_RECURSE
  "CMakeFiles/software_catalog_test.dir/software/catalog_test.cc.o"
  "CMakeFiles/software_catalog_test.dir/software/catalog_test.cc.o.d"
  "software_catalog_test"
  "software_catalog_test.pdb"
  "software_catalog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/software_catalog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
