file(REMOVE_RECURSE
  "CMakeFiles/sim_gdisim_test.dir/sim/gdisim_test.cc.o"
  "CMakeFiles/sim_gdisim_test.dir/sim/gdisim_test.cc.o.d"
  "sim_gdisim_test"
  "sim_gdisim_test.pdb"
  "sim_gdisim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_gdisim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
