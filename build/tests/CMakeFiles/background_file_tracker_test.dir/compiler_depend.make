# Empty compiler generated dependencies file for background_file_tracker_test.
# This may be replaced when dependencies are built.
