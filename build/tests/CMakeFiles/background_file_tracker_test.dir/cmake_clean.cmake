file(REMOVE_RECURSE
  "CMakeFiles/background_file_tracker_test.dir/background/file_tracker_test.cc.o"
  "CMakeFiles/background_file_tracker_test.dir/background/file_tracker_test.cc.o.d"
  "background_file_tracker_test"
  "background_file_tracker_test.pdb"
  "background_file_tracker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/background_file_tracker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
