# Empty dependencies file for hardware_server_test.
# This may be replaced when dependencies are built.
