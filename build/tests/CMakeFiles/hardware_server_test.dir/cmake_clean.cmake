file(REMOVE_RECURSE
  "CMakeFiles/hardware_server_test.dir/hardware/server_test.cc.o"
  "CMakeFiles/hardware_server_test.dir/hardware/server_test.cc.o.d"
  "hardware_server_test"
  "hardware_server_test.pdb"
  "hardware_server_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hardware_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
