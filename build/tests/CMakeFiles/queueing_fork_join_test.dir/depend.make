# Empty dependencies file for queueing_fork_join_test.
# This may be replaced when dependencies are built.
