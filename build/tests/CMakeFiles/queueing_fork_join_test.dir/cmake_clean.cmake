file(REMOVE_RECURSE
  "CMakeFiles/queueing_fork_join_test.dir/queueing/fork_join_test.cc.o"
  "CMakeFiles/queueing_fork_join_test.dir/queueing/fork_join_test.cc.o.d"
  "queueing_fork_join_test"
  "queueing_fork_join_test.pdb"
  "queueing_fork_join_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/queueing_fork_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
