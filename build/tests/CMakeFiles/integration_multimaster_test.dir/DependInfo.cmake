
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/multimaster_test.cc" "tests/CMakeFiles/integration_multimaster_test.dir/integration/multimaster_test.cc.o" "gcc" "tests/CMakeFiles/integration_multimaster_test.dir/integration/multimaster_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gdisim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gdisim_config.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gdisim_background.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gdisim_software.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gdisim_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gdisim_resilience.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gdisim_hardware.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gdisim_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gdisim_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
