file(REMOVE_RECURSE
  "CMakeFiles/integration_multimaster_test.dir/integration/multimaster_test.cc.o"
  "CMakeFiles/integration_multimaster_test.dir/integration/multimaster_test.cc.o.d"
  "integration_multimaster_test"
  "integration_multimaster_test.pdb"
  "integration_multimaster_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_multimaster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
