# Empty compiler generated dependencies file for integration_multimaster_test.
# This may be replaced when dependencies are built.
