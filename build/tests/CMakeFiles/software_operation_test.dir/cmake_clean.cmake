file(REMOVE_RECURSE
  "CMakeFiles/software_operation_test.dir/software/operation_test.cc.o"
  "CMakeFiles/software_operation_test.dir/software/operation_test.cc.o.d"
  "software_operation_test"
  "software_operation_test.pdb"
  "software_operation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/software_operation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
