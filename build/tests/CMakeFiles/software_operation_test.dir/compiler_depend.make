# Empty compiler generated dependencies file for software_operation_test.
# This may be replaced when dependencies are built.
