file(REMOVE_RECURSE
  "CMakeFiles/queueing_discipline_sweep_test.dir/queueing/discipline_sweep_test.cc.o"
  "CMakeFiles/queueing_discipline_sweep_test.dir/queueing/discipline_sweep_test.cc.o.d"
  "queueing_discipline_sweep_test"
  "queueing_discipline_sweep_test.pdb"
  "queueing_discipline_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/queueing_discipline_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
