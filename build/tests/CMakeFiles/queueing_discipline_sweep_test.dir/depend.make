# Empty dependencies file for queueing_discipline_sweep_test.
# This may be replaced when dependencies are built.
