file(REMOVE_RECURSE
  "CMakeFiles/queueing_fcfs_test.dir/queueing/fcfs_test.cc.o"
  "CMakeFiles/queueing_fcfs_test.dir/queueing/fcfs_test.cc.o.d"
  "queueing_fcfs_test"
  "queueing_fcfs_test.pdb"
  "queueing_fcfs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/queueing_fcfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
