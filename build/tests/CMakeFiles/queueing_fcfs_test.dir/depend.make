# Empty dependencies file for queueing_fcfs_test.
# This may be replaced when dependencies are built.
