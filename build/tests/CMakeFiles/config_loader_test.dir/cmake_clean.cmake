file(REMOVE_RECURSE
  "CMakeFiles/config_loader_test.dir/config/loader_test.cc.o"
  "CMakeFiles/config_loader_test.dir/config/loader_test.cc.o.d"
  "config_loader_test"
  "config_loader_test.pdb"
  "config_loader_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/config_loader_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
