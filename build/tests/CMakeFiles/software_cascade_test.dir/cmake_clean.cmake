file(REMOVE_RECURSE
  "CMakeFiles/software_cascade_test.dir/software/cascade_test.cc.o"
  "CMakeFiles/software_cascade_test.dir/software/cascade_test.cc.o.d"
  "software_cascade_test"
  "software_cascade_test.pdb"
  "software_cascade_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/software_cascade_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
