# Empty dependencies file for software_cascade_test.
# This may be replaced when dependencies are built.
