# Empty dependencies file for core_coordination_test.
# This may be replaced when dependencies are built.
