file(REMOVE_RECURSE
  "CMakeFiles/core_coordination_test.dir/core/coordination_test.cc.o"
  "CMakeFiles/core_coordination_test.dir/core/coordination_test.cc.o.d"
  "core_coordination_test"
  "core_coordination_test.pdb"
  "core_coordination_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_coordination_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
