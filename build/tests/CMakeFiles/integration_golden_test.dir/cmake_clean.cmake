file(REMOVE_RECURSE
  "CMakeFiles/integration_golden_test.dir/integration/golden_test.cc.o"
  "CMakeFiles/integration_golden_test.dir/integration/golden_test.cc.o.d"
  "integration_golden_test"
  "integration_golden_test.pdb"
  "integration_golden_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_golden_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
