file(REMOVE_RECURSE
  "CMakeFiles/resilience_failure_test.dir/resilience/failure_test.cc.o"
  "CMakeFiles/resilience_failure_test.dir/resilience/failure_test.cc.o.d"
  "resilience_failure_test"
  "resilience_failure_test.pdb"
  "resilience_failure_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resilience_failure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
