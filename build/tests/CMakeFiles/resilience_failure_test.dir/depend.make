# Empty dependencies file for resilience_failure_test.
# This may be replaced when dependencies are built.
