# Empty compiler generated dependencies file for queueing_kendall_test.
# This may be replaced when dependencies are built.
