file(REMOVE_RECURSE
  "CMakeFiles/queueing_kendall_test.dir/queueing/kendall_test.cc.o"
  "CMakeFiles/queueing_kendall_test.dir/queueing/kendall_test.cc.o.d"
  "queueing_kendall_test"
  "queueing_kendall_test.pdb"
  "queueing_kendall_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/queueing_kendall_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
