file(REMOVE_RECURSE
  "CMakeFiles/queueing_ps_test.dir/queueing/ps_test.cc.o"
  "CMakeFiles/queueing_ps_test.dir/queueing/ps_test.cc.o.d"
  "queueing_ps_test"
  "queueing_ps_test.pdb"
  "queueing_ps_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/queueing_ps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
