# Empty dependencies file for queueing_ps_test.
# This may be replaced when dependencies are built.
