file(REMOVE_RECURSE
  "CMakeFiles/hardware_topology_test.dir/hardware/topology_test.cc.o"
  "CMakeFiles/hardware_topology_test.dir/hardware/topology_test.cc.o.d"
  "hardware_topology_test"
  "hardware_topology_test.pdb"
  "hardware_topology_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hardware_topology_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
