# Empty compiler generated dependencies file for hardware_topology_test.
# This may be replaced when dependencies are built.
