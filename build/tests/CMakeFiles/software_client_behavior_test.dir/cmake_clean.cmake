file(REMOVE_RECURSE
  "CMakeFiles/software_client_behavior_test.dir/software/client_behavior_test.cc.o"
  "CMakeFiles/software_client_behavior_test.dir/software/client_behavior_test.cc.o.d"
  "software_client_behavior_test"
  "software_client_behavior_test.pdb"
  "software_client_behavior_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/software_client_behavior_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
