# Empty dependencies file for software_client_behavior_test.
# This may be replaced when dependencies are built.
