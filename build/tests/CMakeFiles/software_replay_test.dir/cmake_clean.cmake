file(REMOVE_RECURSE
  "CMakeFiles/software_replay_test.dir/software/replay_test.cc.o"
  "CMakeFiles/software_replay_test.dir/software/replay_test.cc.o.d"
  "software_replay_test"
  "software_replay_test.pdb"
  "software_replay_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/software_replay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
