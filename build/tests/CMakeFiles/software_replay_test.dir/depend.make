# Empty dependencies file for software_replay_test.
# This may be replaced when dependencies are built.
