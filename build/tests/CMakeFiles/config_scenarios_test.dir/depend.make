# Empty dependencies file for config_scenarios_test.
# This may be replaced when dependencies are built.
