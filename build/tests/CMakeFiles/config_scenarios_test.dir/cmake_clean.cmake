file(REMOVE_RECURSE
  "CMakeFiles/config_scenarios_test.dir/config/scenarios_test.cc.o"
  "CMakeFiles/config_scenarios_test.dir/config/scenarios_test.cc.o.d"
  "config_scenarios_test"
  "config_scenarios_test.pdb"
  "config_scenarios_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/config_scenarios_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
