# Empty dependencies file for queueing_analytic_test.
# This may be replaced when dependencies are built.
