file(REMOVE_RECURSE
  "CMakeFiles/queueing_analytic_test.dir/queueing/analytic_test.cc.o"
  "CMakeFiles/queueing_analytic_test.dir/queueing/analytic_test.cc.o.d"
  "queueing_analytic_test"
  "queueing_analytic_test.pdb"
  "queueing_analytic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/queueing_analytic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
